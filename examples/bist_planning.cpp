// Self-test (BIST) planning — the sect. 8 application: "the optimal input
// signal probabilities calculated by PROTEST are used to design non-linear
// feedback shift registers (NLFSR), which generate such optimal pattern
// sequences ... reaching a higher fault detection probability in shorter
// test time" than a conventional BILBO.
//
// For the 24-bit comparator we compare, at equal pattern budget:
//   * BILBO-style uniform LFSR patterns (p = 0.5 everywhere), vs
//   * an NLFSR-modelled weighted generator programmed with PROTEST's
//     optimized k/16 weights.
#include <cstdio>

#include "analysis/table.hpp"
#include "circuits/zoo.hpp"
#include "optimize/weighted_patterns.hpp"
#include "protest/protest.hpp"

int main() {
  using namespace protest;
  const Netlist net = make_circuit("comp");
  ProtestOptions popts;
  popts.universe = FaultUniverse::Collapsed;
  const Protest tool(net, popts);
  std::printf("device under self-test: 24-bit cascaded comparator "
              "(%zu gates, %zu collapsed faults)\n",
              net.num_gates(), tool.faults().size());

  // 1. PROTEST proposes per-input weights (hill climbing on J_N).
  HillClimbOptions hopts;
  hopts.max_sweeps = 4;
  const HillClimbResult opt = tool.optimize(10'000, hopts);
  const auto weights = weights_from_probs(opt.probs, 16);
  std::printf("\noptimized weights (k of k/16):");
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (i % 12 == 0) std::printf("\n  ");
    std::printf("%s=%u ", net.name_of(net.inputs()[i]).c_str(), weights[i]);
  }
  std::printf("\n");

  // 2. Hardware model: one LFSR; each weighted bit derived from 4 stages
  //    through a threshold compare (the NLFSR of [KuWu84]).
  WeightedLfsrGenerator nlfsr(weights, 16, /*seed=*/0xACE1);
  // BILBO baseline: plain maximal-length LFSR bits, p = 0.5.
  WeightedLfsrGenerator bilbo(std::vector<unsigned>(weights.size(), 8), 16,
                              0xACE1);

  // 3. Equal-budget shoot-out.
  TextTable t({"patterns", "BILBO coverage", "NLFSR coverage"});
  for (std::size_t budget : {1'000u, 4'000u, 12'000u}) {
    const auto cov_b = tool.fault_simulate(bilbo.generate(budget),
                                           FaultSimMode::FirstDetection);
    const auto cov_n = tool.fault_simulate(nlfsr.generate(budget),
                                           FaultSimMode::FirstDetection);
    t.add_row({fmt_int(budget), fmt(100 * cov_b.coverage(), 1) + " %",
               fmt(100 * cov_n.coverage(), 1) + " %"});
  }
  std::printf("\n%s", t.str().c_str());
  std::printf("\nhardware overhead: 4 LFSR taps + one 4-bit comparator per "
              "weighted input — \"minimal hardware overhead compared to the "
              "standard BILBO\" (sect. 8).\n");
  return 0;
}
