// The async job API in one tour — submit/poll/cancel tickets against a
// ProtestService, the way a pipelining `protest serve` client uses them:
//
//   * `submit` wraps any work verb into a ticketed job and returns
//     immediately (the long Monte-Carlo analyze below keeps crunching in
//     the background),
//   * `poll` observes progress without blocking; `wait` blocks until the
//     ticket is terminal and embeds the inner verb's ServiceResponse
//     byte-identically to the synchronous path,
//   * `cancel` stops a job cooperatively at its next checkpoint (a
//     Monte-Carlo shard boundary here) — a cancelled ticket reports
//     `cancelled` and never a partial result.
//
//   ./async_jobs
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "analysis/json.hpp"
#include "protest/service.hpp"

namespace {

using protest::JsonValue;
using protest::ProtestService;
using protest::ServiceResponse;

/// The `wait` client helper: blocks until the ticket finishes and returns
/// the job payload ({"job":...,"state":...,"response":{...}}).  This is
/// one NDJSON line on the wire — any client language can do the same.
JsonValue wait_for_job(ProtestService& service, std::uint64_t job) {
  const std::string line = service.handle_line(
      "{\"verb\":\"wait\",\"id\":0,\"job\":" + std::to_string(job) + "}");
  return protest::parse_json(ServiceResponse::from_json(line).result_json);
}

std::uint64_t submit(ProtestService& service, const std::string& inner) {
  const std::string line = service.handle_line(
      "{\"verb\":\"submit\",\"id\":0,\"request\":" + inner + "}");
  const JsonValue ticket =
      protest::parse_json(ServiceResponse::from_json(line).result_json);
  std::printf("submitted %s -> job %d (%s)\n",
              ticket.at("verb").as_string().c_str(),
              static_cast<int>(ticket.at("job").as_number()),
              ticket.at("state").as_string().c_str());
  return static_cast<std::uint64_t>(ticket.at("job").as_number());
}

}  // namespace

int main() {
  using namespace std::chrono_literals;

  // A Monte-Carlo session with a hefty pattern budget makes the analyze
  // genuinely long-running — the point of ticketing it.
  protest::ServiceConfig config;
  config.session_defaults.monte_carlo.num_patterns = 20'000'000;
  ProtestService service(config);
  service.handle_line(
      "{\"verb\":\"load_netlist\",\"id\":1,\"netlist\":\"alu\","
      "\"circuit\":\"alu\",\"engine\":\"monte-carlo\"}");

  // 1. Ticket two long analyzes.  submit returns before either runs.
  const std::uint64_t keep = submit(
      service,
      "{\"verb\":\"analyze\",\"id\":2,\"netlist\":\"alu\",\"p\":0.5}");
  const std::uint64_t doomed = submit(
      service,
      "{\"verb\":\"analyze\",\"id\":3,\"netlist\":\"alu\",\"p\":0.25}");

  // 2. Poll while the jobs crunch shards.
  for (int i = 0; i < 3; ++i) {
    const std::string line = service.handle_line(
        "{\"verb\":\"poll\",\"id\":4,\"job\":" + std::to_string(keep) + "}");
    const JsonValue snap =
        protest::parse_json(ServiceResponse::from_json(line).result_json);
    std::printf("poll job %d: %s\n", static_cast<int>(keep),
                snap.at("state").as_string().c_str());
    std::this_thread::sleep_for(20ms);
  }

  // 3. Cancel the second ticket: cooperative, prompt (next shard), and
  //    terminal — the wait below reports `cancelled`, never a partial
  //    result.
  service.handle_line("{\"verb\":\"cancel\",\"id\":5,\"job\":" +
                      std::to_string(doomed) + "}");
  const JsonValue cancelled = wait_for_job(service, doomed);
  std::printf("job %d ended %s\n", static_cast<int>(doomed),
              cancelled.at("state").as_string().c_str());

  // 4. Wait out the first ticket and compare against the synchronous
  //    verb: the embedded response is byte-identical.
  const JsonValue finished = wait_for_job(service, keep);
  std::printf("job %d ended %s\n", static_cast<int>(keep),
              finished.at("state").as_string().c_str());
  const std::string sync = service.handle_line(
      "{\"verb\":\"analyze\",\"id\":2,\"netlist\":\"alu\",\"p\":0.5}");
  const std::string embedded = protest::to_json(finished.at("response"), 0);
  std::printf("embedded response == synchronous response: %s\n",
              embedded == sync ? "yes" : "NO");

  const bool ok = cancelled.at("state").as_string() == "cancelled" &&
                  finished.at("state").as_string() == "done" &&
                  embedded == sync;
  return ok ? 0 : 1;
}
