// Hybrid ATPG planning — the second sect. 8 application: "most ATPG first
// use fault simulation by random patterns, and second, when this becomes
// inefficient, they use other procedures like the D-algorithm.  Computing
// time for fault simulation is drastically reduced by using optimized
// pattern sets ... additionally the number of faults which are to be
// treated by the more expensive second procedure decreases."
//
// On the 16-bit divider we (a) predict the random phase's yield from the
// PROTEST estimates, (b) run it, and (c) hand the survivors to the
// "deterministic phase" (here: listed, with their estimated detection
// probabilities as difficulty hints).
#include <algorithm>
#include <cstdio>

#include "analysis/table.hpp"
#include "circuits/zoo.hpp"
#include "protest/protest.hpp"
#include "testlen/test_length.hpp"

int main() {
  using namespace protest;
  const Netlist net = make_circuit("div");
  ProtestOptions popts;
  popts.universe = FaultUniverse::Collapsed;
  popts.estimator.maxvers = 2;  // planning only needs coarse estimates
  popts.estimator.maxlist = 8;
  const Protest tool(net, popts);
  std::printf("target: 16-bit restoring divider (%zu gates, %zu faults)\n",
              net.num_gates(), tool.faults().size());

  // Plan the random phase: predicted coverage after N uniform patterns.
  const ProtestReport plan = tool.analyze(uniform_input_probs(net, 0.5));
  const std::size_t budget = 4'000;
  std::printf("\npredicted coverage after %zu uniform patterns: %.1f %%\n",
              budget,
              100 * expected_coverage(plan.detection_probs, budget));

  // Optimized phase: same budget with PROTEST weights.
  HillClimbOptions hopts;
  hopts.max_sweeps = 3;
  const HillClimbResult opt = tool.optimize(budget, hopts);
  const ProtestReport plan_opt = tool.analyze(opt.probs);
  std::printf("predicted coverage with optimized weights:  %.1f %%\n",
              100 * expected_coverage(plan_opt.detection_probs, budget));

  // Execute both random phases.
  const auto run = [&](const std::vector<double>& probs) {
    return tool.fault_simulate(tool.generate_patterns(probs, budget, 11),
                               FaultSimMode::FirstDetection);
  };
  const FaultSimResult uniform = run(uniform_input_probs(net, 0.5));
  const FaultSimResult weighted = run(opt.probs);

  TextTable t({"random phase", "coverage", "faults left for D-algorithm"});
  auto survivors = [&](const FaultSimResult& r) {
    std::size_t s = 0;
    for (std::int64_t f : r.first_detect) s += f < 0;
    return s;
  };
  t.add_row({"uniform p=0.5", fmt(100 * uniform.coverage(), 1) + " %",
             fmt_int(survivors(uniform))});
  t.add_row({"PROTEST weights", fmt(100 * weighted.coverage(), 1) + " %",
             fmt_int(survivors(weighted))});
  std::printf("\n%s", t.str().c_str());

  // The deterministic phase gets the survivors, hardest first.
  std::vector<std::size_t> left;
  for (std::size_t i = 0; i < tool.faults().size(); ++i)
    if (weighted.first_detect[i] < 0) left.push_back(i);
  std::sort(left.begin(), left.end(), [&](std::size_t a, std::size_t b) {
    return plan_opt.detection_probs[a] < plan_opt.detection_probs[b];
  });
  std::printf("\nhardest survivors handed to the deterministic ATPG:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(8, left.size()); ++i)
    std::printf("  %-16s estimated P_detect = %.2e\n",
                to_string(net, tool.faults()[left[i]]).c_str(),
                plan_opt.detection_probs[left[i]]);
  return 0;
}
