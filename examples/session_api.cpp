// The session-oriented analysis API in one tour:
//
//   * AnalysisRequest selects the artifacts a query wants,
//   * AnalysisResult computes and memoizes them lazily,
//   * repeated tuples hit the session cache,
//   * perturb() re-evaluates only the changed input's fanout cone,
//   * to_json() serializes the result for machine consumers.
//
//   ./session_api [circuit.bench]
#include <algorithm>
#include <cstdio>

#include "circuits/iscas.hpp"
#include "netlist/bench_io.hpp"
#include "protest/session.hpp"

int main(int argc, char** argv) {
  using namespace protest;
  const Netlist net = argc > 1 ? read_bench_file(argv[1]) : make_c17();
  AnalysisSession session(net);
  std::printf("session on %zu-gate circuit, engine '%s', %zu faults\n",
              net.num_gates(), std::string(session.engine().name()).c_str(),
              session.faults().size());

  // 1. A minimal request: signal probabilities only — nothing else is
  //    computed until somebody asks.
  AnalysisResult r =
      session.analyze(uniform_input_probs(net, 0.5), AnalysisRequest::minimal());
  std::printf("\nsignal probability of output %s: %.4f\n",
              net.name_of(net.outputs()[0]).c_str(),
              r.signal_probs()[net.outputs()[0]]);

  // 2. Lazy artifacts materialize on access and are memoized.
  std::printf("hardest fault detection probability: %.6f\n",
              *std::min_element(r.detection_probs().begin(),
                                r.detection_probs().end()));
  std::printf("test length (d=0.98, e=0.98): %llu patterns\n",
              static_cast<unsigned long long>(r.test_length(0.98, 0.98)));

  // 3. Repeating the tuple is a cache hit; perturbing one input
  //    re-evaluates only its fanout cone, bit-identical to from-scratch.
  session.analyze(uniform_input_probs(net, 0.5));
  const AnalysisResult perturbed = session.perturb(r, 0, 0.25);
  std::printf("\nafter input 0 -> 0.25, output probability: %.4f\n",
              perturbed.signal_probs()[net.outputs()[0]]);
  const SessionStats& s = session.stats();
  std::printf("session stats: %zu analyze calls, %zu cache hits, "
              "%zu incremental, %zu full\n",
              s.analyze_calls, s.cache_hits, s.incremental_evals,
              s.full_evals);

  // 4. JSON, with the (d, e) grid opted in.
  AnalysisRequest req;
  req.test_lengths = true;
  req.d_grid = {1.0};
  req.e_grid = {0.95};
  std::printf("\n%s\n",
              session.analyze(uniform_input_probs(net, 0.5), req)
                  .to_json()
                  .c_str());
  return 0;
}
