// Quickstart: the whole PROTEST pipeline in ~50 lines.
//
//   ./quickstart [circuit.bench]
//
// Loads a combinational circuit (ISCAS-85 c17 by default), estimates
// signal and fault-detection probabilities, computes the required random
// test length, and validates it by fault simulation.
#include <algorithm>
#include <cstdio>
#include <string>

#include "analysis/table.hpp"
#include "circuits/iscas.hpp"
#include "netlist/bench_io.hpp"
#include "protest/protest.hpp"

int main(int argc, char** argv) {
  using namespace protest;

  const Netlist net =
      argc > 1 ? read_bench_file(argv[1]) : make_c17();
  std::printf("circuit: %zu inputs, %zu outputs, %zu gates\n",
              net.inputs().size(), net.outputs().size(), net.num_gates());

  // 1. Analyze: signal probabilities + detection probability per fault.
  const Protest tool(net);
  const ProtestReport report = tool.analyze(uniform_input_probs(net, 0.5));

  std::printf("\nsignal probabilities (p = 0.5 at every input):\n");
  for (NodeId n = 0; n < net.size(); ++n)
    if (!net.is_input(n))
      std::printf("  %-8s p1 = %.4f   observability = %.4f\n",
                  net.name_of(n).c_str(), report.signal_probs[n],
                  report.observability.stem[n]);

  // 2. The hardest faults — the ones random test struggles with.
  std::printf("\nleast testable faults:\n");
  std::vector<std::size_t> order(tool.faults().size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return report.detection_probs[a] < report.detection_probs[b];
  });
  for (std::size_t i = 0; i < std::min<std::size_t>(5, order.size()); ++i)
    std::printf("  %-14s P_detect = %.4f\n",
                to_string(net, tool.faults()[order[i]]).c_str(),
                report.detection_probs[order[i]]);

  // 3. Test length for 98% of faults with 98% confidence (paper Table 2).
  const std::uint64_t n = tool.test_length(report, 0.98, 0.98);
  std::printf("\nrequired random patterns (d = 0.98, e = 0.98): %s\n",
              fmt_int(n).c_str());

  // 4. Validate by static fault simulation, exactly like the paper.
  const PatternSet ps = tool.generate_patterns(
      report.input_probs, static_cast<std::size_t>(n), /*seed=*/1);
  const FaultSimResult sim = tool.fault_simulate(ps, FaultSimMode::FirstDetection);
  std::printf("simulated fault coverage with %s patterns: %.1f %%\n",
              fmt_int(n).c_str(), 100.0 * sim.coverage());
  return 0;
}
