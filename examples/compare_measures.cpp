// Side-by-side comparison of testability measures on the SN74181 ALU —
// the sect. 4 story: probabilistic estimates (PROTEST, STAFAN) track the
// simulated detection probabilities; the combinatorial SCOAP numbers,
// squeezed through the [AgMe82] transformation, do not.
#include <cstdio>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "circuits/zoo.hpp"
#include "measures/scoap.hpp"
#include "measures/stafan.hpp"
#include "observe/miter.hpp"
#include "protest/protest.hpp"

int main() {
  using namespace protest;
  const Netlist net = make_circuit("alu");
  const Protest tool(net);
  const auto& faults = tool.faults();

  // Ground truth: exhaustive fault simulation (exact for 14 inputs).
  const PatternSet all = PatternSet::exhaustive(net.inputs().size());
  const auto psim =
      tool.fault_simulate(all, FaultSimMode::CountDetections).detection_probs();

  // Contenders.
  const auto report = tool.analyze(uniform_input_probs(net, 0.5));
  const auto scoap = compute_scoap(net);
  const auto pscoap = pscoap_detection_probs(net, faults, scoap);
  const auto stafan = compute_stafan(
      net, PatternSet::random(net.inputs().size(), 20'000, 3));
  const auto pstafan = stafan_detection_probs(net, faults, stafan);

  TextTable t({"measure", "correlation with P_SIM", "mean |error|"});
  auto add = [&](const char* name, const std::vector<double>& est) {
    const ErrorStats s = compare_estimates(est, psim);
    t.add_row({name, fmt(s.correlation, 3), fmt(s.mean_abs_error, 3)});
  };
  add("PROTEST estimate", report.detection_probs);
  add("STAFAN [AgJa84]", pstafan);
  add("P_SCOAP [AgMe82]", pscoap);
  std::printf("SN74181 ALU, %zu faults, exhaustive P_SIM\n\n%s", faults.size(),
              t.str().c_str());

  // Drill into a handful of faults, including the exact miter oracle.
  std::printf("\nper-fault view (first gate of the carry chain):\n");
  TextTable d({"fault", "P_SIM", "PROTEST", "STAFAN", "P_SCOAP", "exact miter"});
  const auto ip = uniform_input_probs(net, 0.5);
  int shown = 0;
  for (std::size_t i = 0; i < faults.size() && shown < 6; ++i) {
    if (psim[i] <= 0.0 || psim[i] > 0.05) continue;  // the interesting tail
    ++shown;
    d.add_row({to_string(net, faults[i]), fmt(psim[i], 4),
               fmt(report.detection_probs[i], 4), fmt(pstafan[i], 4),
               fmt(pscoap[i], 4),
               fmt(exact_detection_prob_bdd(net, faults[i], ip), 4)});
  }
  std::printf("%s", d.str().c_str());
  std::printf("\nnote how the probabilistic measures follow P_SIM into the "
              "hard tail while P_SCOAP's scale is unrelated.\n");
  return 0;
}
