// The service API in one tour — the in-process face of `protest serve`:
//
//   * ProtestService dispatches typed ServiceRequests against a
//     SessionRegistry of resident, named AnalysisSessions,
//   * handle_line() speaks the daemon's NDJSON wire format,
//   * sessions share ONE executor (no pool per netlist),
//   * eviction drops hot state but keeps the name registered.
//
//   ./service_client
#include <cstdio>

#include "protest/service.hpp"

int main() {
  using namespace protest;

  ServiceConfig config;
  config.max_resident_sessions = 4;
  ProtestService service(config);
  std::printf("service up: executor with %u worker(s), cap %zu resident\n",
              service.registry().executor()->num_workers(),
              service.registry().max_resident());

  // 1. Load two netlists under caller-chosen names.  Typed requests are
  //    plain structs; every verb also works as an NDJSON line (below).
  for (const char* name : {"alu", "div"}) {
    ServiceRequest load;
    load.verb = ServiceVerb::LoadNetlist;
    load.netlist = name;
    load.circuit = name;
    const ServiceResponse resp = service.handle(load);
    std::printf("load %s: %s\n", name, resp.result_json.c_str());
  }

  // 2. Analyze through the resident session.  The result payload is
  //    byte-identical to AnalysisResult::to_json(0) on a direct session.
  ServiceRequest analyze;
  analyze.verb = ServiceVerb::Analyze;
  analyze.id = 1;
  analyze.netlist = "alu";
  analyze.p = 0.5;
  const ServiceResponse first = service.handle(analyze);
  std::printf("\nanalyze ok=%d, %zu payload bytes\n", first.ok,
              first.result_json.size());

  // 3. Perturb one input: the base tuple is already cached in the
  //    resident session, so only input 0's fanout cone re-evaluates.
  ServiceRequest perturb;
  perturb.verb = ServiceVerb::Perturb;
  perturb.id = 2;
  perturb.netlist = "alu";
  perturb.p = 0.5;
  perturb.input_index = 0;
  perturb.new_p = 0.25;
  service.handle(perturb);

  // 4. The stats verb shows the residency payoff (and works as NDJSON —
  //    this is exactly what a `protest serve` client would send).
  std::printf("stats: %s\n",
              service
                  .handle_line(
                      "{\"verb\":\"stats\",\"id\":3,\"netlist\":\"alu\"}")
                  .c_str());

  // 5. Evict drops the hot state; the registration survives, so the next
  //    query transparently revives the session (cold caches).
  ServiceRequest evict;
  evict.verb = ServiceVerb::Evict;
  evict.netlist = "alu";
  service.handle(evict);
  std::printf("\nafter evict, resident: ");
  for (const std::string& name : service.registry().resident_names())
    std::printf("%s ", name.c_str());
  const ServiceResponse again = service.handle(analyze);
  std::printf("\nre-analyze after revival ok=%d, payload identical: %s\n",
              again.ok,
              again.result_json == first.result_json ? "yes" : "NO");
  return again.result_json == first.result_json ? 0 : 1;
}
