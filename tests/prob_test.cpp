// Signal probability engines: naive (AgAg75), exact (BDD + enumeration),
// Monte-Carlo, cutting bounds (BDS84), and the PROTEST estimator (sect. 2).
#include <gtest/gtest.h>

#include <random>

#include "circuits/iscas.hpp"
#include "circuits/random_circuit.hpp"
#include "circuits/sn74181.hpp"
#include "netlist/builder.hpp"
#include "prob/cutting.hpp"
#include "prob/exact.hpp"
#include "prob/monte_carlo.hpp"
#include "prob/naive.hpp"
#include "prob/protest_estimator.hpp"
#include "validate/stats.hpp"

namespace protest {
namespace {

Netlist make_tree() {
  // No fanout at all: y = OR(AND(a,b), XOR(c, NOT(d))).
  NetlistBuilder bld;
  const NodeId a = bld.input("a"), b = bld.input("b");
  const NodeId c = bld.input("c"), d = bld.input("d");
  bld.output(bld.or2(bld.and2(a, b), bld.xor2(c, bld.inv(d))), "y");
  return bld.build();
}

Netlist make_diamond() {
  // y = AND(NOT(s), BUF(s)) with s = AND(a,b): y is constant 0.
  NetlistBuilder bld;
  const NodeId a = bld.input("a"), b = bld.input("b");
  const NodeId s = bld.and2(a, b);
  bld.output(bld.and2(bld.inv(s), bld.buf(s)), "y");
  return bld.build();
}

TEST(NaiveProbs, ExactOnTrees) {
  const Netlist net = make_tree();
  EXPECT_TRUE(is_fanout_reconvergence_free(net));
  const double ip[] = {0.3, 0.6, 0.5, 0.9};
  const auto naive = naive_signal_probs(net, ip);
  const auto exact = exact_signal_probs_enum(net, ip);
  for (NodeId n = 0; n < net.size(); ++n)
    EXPECT_NEAR(naive[n], exact[n], 1e-12) << n;
}

TEST(NaiveProbs, WrongOnDiamond) {
  const Netlist net = make_diamond();
  EXPECT_FALSE(is_fanout_reconvergence_free(net));
  const auto naive = naive_signal_probs(net, uniform_input_probs(net));
  // True probability of y is 0; naive gives p(1-p) = 0.1875.
  EXPECT_NEAR(naive[net.outputs()[0]], 0.25 * 0.75, 1e-12);
}

TEST(ExactProbs, BddEqualsEnumeration) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    RandomCircuitParams params;
    params.num_inputs = 7;
    params.num_gates = 40;
    params.seed = seed;
    const Netlist net = make_random_circuit(params);
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> uni(0.05, 0.95);
    std::vector<double> ip(7);
    for (double& p : ip) p = uni(rng);
    const auto bdd = exact_signal_probs_bdd(net, ip);
    const auto num = exact_signal_probs_enum(net, ip);
    for (NodeId n = 0; n < net.size(); ++n)
      EXPECT_NEAR(bdd[n], num[n], 1e-9) << "seed " << seed << " node " << n;
  }
}

TEST(ExactProbs, EnumRejectsWideCircuits) {
  RandomCircuitParams params;
  params.num_inputs = 25;
  params.num_gates = 5;
  const Netlist net = make_random_circuit(params);
  EXPECT_THROW(exact_signal_probs_enum(net, uniform_input_probs(net)),
               std::invalid_argument);
}

TEST(MonteCarlo, ConvergesToExact) {
  const Netlist net = make_c17();
  const auto ip = uniform_input_probs(net, 0.5);
  const auto exact = exact_signal_probs_bdd(net, ip);
  constexpr std::size_t kPatterns = 200'000;
  const auto mc = monte_carlo_signal_probs(net, ip, kPatterns, 12345);
  // Hoeffding tolerance at aggregate false-positive rate 1e-6 across the
  // per-node comparisons (validate/stats.hpp) — no hand-tuned epsilon.
  const double tol =
      mc_tolerance(kPatterns, net.size(), net.inputs().size());
  for (NodeId n = 0; n < net.size(); ++n)
    EXPECT_NEAR(mc[n], exact[n], tol) << n;
}

TEST(CuttingBounds, ContainExactEverywhere) {
  for (std::uint64_t seed : {5u, 6u, 7u}) {
    RandomCircuitParams params;
    params.num_inputs = 7;
    params.num_gates = 50;
    params.seed = seed;
    const Netlist net = make_random_circuit(params);
    const auto ip = uniform_input_probs(net, 0.5);
    const auto exact = exact_signal_probs_bdd(net, ip);
    const auto bounds = cutting_signal_bounds(net, ip);
    for (NodeId n = 0; n < net.size(); ++n) {
      EXPECT_TRUE(bounds[n].contains(exact[n]))
          << "seed " << seed << " node " << n << ": " << exact[n]
          << " not in [" << bounds[n].lo << ", " << bounds[n].hi << "]";
    }
  }
}

TEST(CuttingBounds, TightOnTrees) {
  const Netlist net = make_tree();
  const double ip[] = {0.3, 0.6, 0.5, 0.9};
  const auto exact = exact_signal_probs_enum(net, ip);
  const auto bounds = cutting_signal_bounds(net, ip);
  for (NodeId n = 0; n < net.size(); ++n) {
    EXPECT_NEAR(bounds[n].lo, exact[n], 1e-12);
    EXPECT_NEAR(bounds[n].hi, exact[n], 1e-12);
  }
}

TEST(ProtestEstimator, ExactOnDiamond) {
  const Netlist net = make_diamond();
  const ProtestEstimator est(net);
  const auto p = est.signal_probs(uniform_input_probs(net));
  EXPECT_NEAR(p[net.outputs()[0]], 0.0, 1e-12);
  EXPECT_GE(est.stats().gates_conditioned, 1u);
}

TEST(ProtestEstimator, ExactOnDirectReconvergence) {
  // y = AND(a, NOT(a)) == 0 and z = OR(a, NOT(a)) == 1.
  NetlistBuilder bld;
  const NodeId a = bld.input("a");
  const NodeId na = bld.inv(a);
  bld.output(bld.and2(a, na), "y");
  bld.output(bld.or2(a, na), "z");
  const Netlist net = bld.build();
  const ProtestEstimator est(net);
  const auto p = est.signal_probs(uniform_input_probs(net));
  EXPECT_NEAR(p[net.find("y")], 0.0, 1e-12);
  EXPECT_NEAR(p[net.find("z")], 1.0, 1e-12);
}

TEST(ProtestEstimator, ExactOnC17) {
  // c17 is small enough that MAXVERS=4 covers every joining point set.
  const Netlist net = make_c17();
  const ProtestEstimator est(net);
  for (double p0 : {0.5, 0.3, 0.8}) {
    const auto ip = uniform_input_probs(net, p0);
    const auto est_p = est.signal_probs(ip);
    const auto exact = exact_signal_probs_bdd(net, ip);
    for (NodeId n = 0; n < net.size(); ++n)
      EXPECT_NEAR(est_p[n], exact[n], 1e-9) << "p0=" << p0 << " node " << n;
  }
}

TEST(ProtestEstimator, MaxversZeroDegeneratesToNaive) {
  const Netlist net = make_c17();
  ProtestParams params;
  params.maxvers = 0;
  const ProtestEstimator est(net, params);
  const auto ip = uniform_input_probs(net, 0.5);
  const auto est_p = est.signal_probs(ip);
  const auto naive = naive_signal_probs(net, ip);
  for (NodeId n = 0; n < net.size(); ++n)
    EXPECT_NEAR(est_p[n], naive[n], 1e-12) << n;
}

TEST(ProtestEstimator, MaxlistBoundsSearchDepth) {
  // Long asymmetric diamond: y = AND(NOT^4(s), BUF(s)).  NOT^4 is the
  // identity, so exactly p(y) = p(s) = 0.25, while naive propagation gives
  // p(s)^2 = 0.0625.  With MAXLIST=2 the stem's left branch lies 3 steps
  // from the left root, so the joining point is invisible -> naive value;
  // unbounded search recovers exactness.
  NetlistBuilder bld;
  const NodeId a = bld.input("a"), b = bld.input("b");
  const NodeId s = bld.and2(a, b);
  NodeId l = s;
  for (int i = 0; i < 4; ++i) l = bld.inv(l);
  bld.output(bld.and2(l, bld.buf(s)), "y");
  const Netlist net = bld.build();

  ProtestParams bounded;
  bounded.maxlist = 2;
  const auto p_bounded = ProtestEstimator(net, bounded)
                             .signal_probs(uniform_input_probs(net));
  EXPECT_NEAR(p_bounded[net.outputs()[0]], 0.0625, 1e-12);

  ProtestParams unbounded;
  unbounded.maxlist = 0;
  const auto p_full = ProtestEstimator(net, unbounded)
                          .signal_probs(uniform_input_probs(net));
  EXPECT_NEAR(p_full[net.outputs()[0]], 0.25, 1e-12);
}

// Property sweep: on random reconvergent circuits the estimator must be at
// least as accurate (in mean absolute error vs exact) as naive propagation.
class EstimatorAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(EstimatorAccuracy, BeatsOrMatchesNaive) {
  RandomCircuitParams params;
  params.num_inputs = 8;
  params.num_gates = 60;
  params.seed = static_cast<std::uint64_t>(GetParam());
  const Netlist net = make_random_circuit(params);
  const auto ip = uniform_input_probs(net, 0.5);
  const auto exact = exact_signal_probs_bdd(net, ip);
  const auto naive = naive_signal_probs(net, ip);
  const ProtestEstimator est(net);
  const auto guess = est.signal_probs(ip);
  double err_naive = 0, err_est = 0;
  for (NodeId n = 0; n < net.size(); ++n) {
    err_naive += std::abs(naive[n] - exact[n]);
    err_est += std::abs(guess[n] - exact[n]);
  }
  // Allow a tiny slack: conditioning is a heuristic and can locally lose.
  EXPECT_LE(err_est, err_naive + 0.05)
      << "estimator " << err_est << " vs naive " << err_naive;
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimatorAccuracy, ::testing::Range(1, 13));

TEST(ProtestEstimator, AccurateOnAlu) {
  const Netlist net = make_sn74181();
  const auto ip = uniform_input_probs(net, 0.5);
  const auto exact = exact_signal_probs_enum(net, ip);
  const auto naive = naive_signal_probs(net, ip);
  const ProtestEstimator est(net);
  const auto guess = est.signal_probs(ip);
  double err_naive = 0, err_est = 0, max_est = 0;
  for (NodeId n = 0; n < net.size(); ++n) {
    err_naive += std::abs(naive[n] - exact[n]);
    err_est += std::abs(guess[n] - exact[n]);
    max_est = std::max(max_est, std::abs(guess[n] - exact[n]));
  }
  err_naive /= static_cast<double>(net.size());
  err_est /= static_cast<double>(net.size());
  EXPECT_LT(err_est, err_naive);   // conditioning must help on the ALU
  EXPECT_LT(err_est, 0.03);        // and be accurate in absolute terms
}

TEST(ProtestEstimator, RejectsBadInputs) {
  const Netlist net = make_c17();
  const ProtestEstimator est(net);
  const double too_few[] = {0.5};
  EXPECT_THROW(est.signal_probs(too_few), std::invalid_argument);
  const double out_of_range[] = {0.5, 0.5, 1.5, 0.5, 0.5};
  EXPECT_THROW(est.signal_probs(out_of_range), std::invalid_argument);
}

}  // namespace
}  // namespace protest
