// The formatted testability report (the tool's sect. 1 output list).
#include <gtest/gtest.h>

#include "circuits/iscas.hpp"
#include "protest/report.hpp"
#include "protest/session.hpp"

namespace protest {
namespace {

TEST(Report, ContainsAllSections) {
  const Netlist net = make_c17();
  const Protest tool(net);
  const auto rep = tool.analyze(uniform_input_probs(net, 0.5));
  const std::string text = report_string(tool, rep);
  EXPECT_NE(text.find("PROTEST testability report"), std::string::npos);
  EXPECT_NE(text.find("signal probabilities and observabilities"), std::string::npos);
  EXPECT_NE(text.find("fault detection probabilities"), std::string::npos);
  EXPECT_NE(text.find("required random-pattern counts"), std::string::npos);
  // Every (d, e) of the default grid appears.
  EXPECT_NE(text.find("0.999"), std::string::npos);
}

TEST(Report, SectionsToggle) {
  const Netlist net = make_c17();
  const Protest tool(net);
  const auto rep = tool.analyze(uniform_input_probs(net, 0.5));
  ReportOptions opts;
  opts.signal_probabilities = false;
  opts.fault_list = false;
  const std::string text = report_string(tool, rep, opts);
  EXPECT_EQ(text.find("signal probabilities and observabilities"), std::string::npos);
  EXPECT_EQ(text.find("fault detection"), std::string::npos);
  EXPECT_NE(text.find("required random-pattern counts"), std::string::npos);
}

TEST(Report, FaultRowsCappedAndSorted) {
  const Netlist net = make_c17();
  const Protest tool(net);
  const auto rep = tool.analyze(uniform_input_probs(net, 0.5));
  ReportOptions opts;
  opts.max_fault_rows = 3;
  const std::string text = report_string(tool, rep, opts);
  EXPECT_NE(text.find("easier faults omitted"), std::string::npos);
  // The hardest c17 fault (a branch s-a-1 with P ~ 0.078) leads the list.
  EXPECT_NE(text.find("0.078"), std::string::npos);
}

TEST(Report, CustomGrid) {
  const Netlist net = make_c17();
  const Protest tool(net);
  const auto rep = tool.analyze(uniform_input_probs(net, 0.5));
  ReportOptions opts;
  // Owned vectors: temporaries are safe (the old span fields dangled here).
  opts.d_grid = {0.5};
  opts.e_grid = {0.9};
  opts.signal_probabilities = false;
  opts.fault_list = false;
  const std::string text = report_string(tool, rep, opts);
  EXPECT_NE(text.find("| 0.50 | 0.900 |"), std::string::npos);
  EXPECT_EQ(text.find("0.999"), std::string::npos);
}

TEST(Report, ZeroMaxFaultRowsRendersAllFaults) {
  const Netlist net = make_c17();
  const Protest tool(net);
  const auto rep = tool.analyze(uniform_input_probs(net, 0.5));
  ReportOptions opts;
  opts.max_fault_rows = 0;  // documented as "all"
  const std::string text = report_string(tool, rep, opts);
  EXPECT_EQ(text.find("easier faults omitted"), std::string::npos);
  // One table row per fault of the tool's list.
  std::size_t rows = 0;
  for (const Fault& f : tool.faults())
    rows += text.find(to_string(net, f)) != std::string::npos;
  EXPECT_EQ(rows, tool.faults().size());
}

TEST(Report, SessionResultRendersLikeFacadeReport) {
  const Netlist net = make_c17();
  const Protest tool(net);
  const InputProbs ip = uniform_input_probs(net, 0.5);
  const std::string via_facade = report_string(tool, tool.analyze(ip));
  AnalysisSession session(net);
  const std::string via_session = report_string(session.analyze(ip));
  EXPECT_EQ(via_facade, via_session);
}

}  // namespace
}  // namespace protest
