// Cone utilities and joining points V(a,b) — the structural machinery of
// sect. 2 (fig. 2).
#include <gtest/gtest.h>

#include <algorithm>

#include "circuits/iscas.hpp"
#include "netlist/cone.hpp"

namespace protest {
namespace {

bool contains(const std::vector<NodeId>& v, NodeId n) {
  return std::find(v.begin(), v.end(), n) != v.end();
}

// A diamond: s fans out to l and r, which reconverge at gate y.
struct Diamond {
  Netlist net;
  NodeId a, s, l, r, y;
};

Diamond make_diamond() {
  Diamond d;
  d.a = d.net.add_input("a");
  const NodeId b = d.net.add_input("b");
  d.s = d.net.add_gate(GateType::And, {d.a, b}, "s");
  d.l = d.net.add_gate(GateType::Not, {d.s}, "l");
  d.r = d.net.add_gate(GateType::Buf, {d.s}, "r");
  d.y = d.net.add_gate(GateType::And, {d.l, d.r}, "y");
  d.net.mark_output(d.y);
  d.net.finalize();
  return d;
}

TEST(Cone, TransitiveFaninIncludesRootsAndIsSorted) {
  const Diamond d = make_diamond();
  const NodeId roots[] = {d.y};
  const auto tfi = transitive_fanin(d.net, roots);
  EXPECT_EQ(tfi.size(), d.net.size());  // everything feeds y
  EXPECT_TRUE(std::is_sorted(tfi.begin(), tfi.end()));
}

TEST(Cone, TransitiveFaninHonorsDepthBound) {
  const Diamond d = make_diamond();
  const NodeId roots[] = {d.y};
  const auto tfi1 = transitive_fanin(d.net, roots, 1);
  EXPECT_TRUE(contains(tfi1, d.l));
  EXPECT_TRUE(contains(tfi1, d.r));
  EXPECT_FALSE(contains(tfi1, d.s));
  const auto tfi2 = transitive_fanin(d.net, roots, 2);
  EXPECT_TRUE(contains(tfi2, d.s));
  EXPECT_FALSE(contains(tfi2, d.a));
}

TEST(Cone, TransitiveFanoutReachesOutputs) {
  const Diamond d = make_diamond();
  const auto tfo = transitive_fanout(d.net, d.s);
  EXPECT_TRUE(contains(tfo, d.l));
  EXPECT_TRUE(contains(tfo, d.r));
  EXPECT_TRUE(contains(tfo, d.y));
  EXPECT_FALSE(contains(tfo, d.a));
}

TEST(JoiningPoints, DiamondStemFound) {
  const Diamond d = make_diamond();
  const auto v = joining_points(d.net, d.l, d.r);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], d.s);
}

TEST(JoiningPoints, EmptyOnTree) {
  // y = AND(a, b): no fanout at all.
  Netlist net;
  const NodeId a = net.add_input("a");
  const NodeId b = net.add_input("b");
  const NodeId y = net.add_gate(GateType::And, {a, b}, "y");
  net.mark_output(y);
  net.finalize();
  EXPECT_TRUE(joining_points(net, a, b).empty());
}

TEST(JoiningPoints, DepthBoundExcludesDeepStems) {
  // Chain of inverters between the stem and the reconvergence.
  Netlist net;
  const NodeId a = net.add_input("a");
  NodeId l = net.add_gate(GateType::Not, {a}, "l1");
  for (int i = 0; i < 4; ++i)
    l = net.add_gate(GateType::Not, {l});
  const NodeId r = net.add_gate(GateType::Buf, {a}, "r");
  const NodeId y = net.add_gate(GateType::And, {l, r}, "y");
  net.mark_output(y);
  net.finalize();
  EXPECT_FALSE(joining_points(net, l, r).empty());
  // The left path is 5 levels deep; bounding at 2 must lose the stem.
  EXPECT_TRUE(joining_points(net, l, r, 2).empty());
}

TEST(JoiningPoints, SingleRootModeFindsReconvergenceOnSameNode) {
  // Both of x's branches lie on paths to y, so x is in V(y, y); the stem s
  // of the diamond itself is not (its branches sit downstream of s, not on
  // paths *to* s).
  const Diamond d = make_diamond();
  const auto v = joining_points(d.net, d.y, d.y);
  ASSERT_FALSE(v.empty());
  EXPECT_TRUE(contains(v, d.s));
  EXPECT_TRUE(joining_points(d.net, d.s, d.s).empty());
}

TEST(JoiningPoints, ConsumerPinCatchesDirectReconvergence) {
  // y = AND(a, NOT(a)): the stem a reconverges directly at y's pin.
  Netlist net;
  const NodeId a = net.add_input("a");
  const NodeId na = net.add_gate(GateType::Not, {a}, "na");
  const NodeId y = net.add_gate(GateType::And, {a, na}, "y");
  net.mark_output(y);
  net.finalize();
  const NodeId roots[] = {a, na};
  // Without the consumer the direct pin branch is invisible...
  EXPECT_TRUE(joining_points(net, roots, 0).empty());
  // ...with it, a is recognized as the joining point.
  const auto v = joining_points(net, roots, 0, y);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], a);
}

TEST(JoiningPoints, DuplicatedPinIsJoiningPoint) {
  // y = AND(a, a).
  Netlist net;
  const NodeId a = net.add_input("a");
  const NodeId y = net.add_gate(GateType::And, {a, a}, "y");
  net.mark_output(y);
  net.finalize();
  const NodeId roots[] = {a, a};
  const auto v = joining_points(net, roots, 0, y);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], a);
}

TEST(JoiningPoints, C17KnownStems) {
  // In c17, net 11 fans out to gates 16 and 19, and net 16 to 22 and 23.
  const Netlist net = make_c17();
  const NodeId n11 = net.find("11");
  const NodeId n16 = net.find("16");
  const NodeId g22 = net.find("22");
  const NodeId g23 = net.find("23");
  ASSERT_NE(n11, kNoNode);
  // 16 joins the cones of 22's inputs? 22 = NAND(10, 16); 10 = NAND(1,3),
  // 16 = NAND(2, 11): their cones share net 3 via 10 and 11.
  const auto v22 = joining_points(net, net.gate(g22).fanin, 0, g22);
  EXPECT_TRUE(contains(v22, net.find("3")));
  // 23 = NAND(16, 19); both cones contain stem 11.
  const auto v23 = joining_points(net, net.gate(g23).fanin, 0, g23);
  EXPECT_TRUE(contains(v23, n11));
  EXPECT_FALSE(contains(v23, n16));  // 16 is an input itself, not a stem between them
}

TEST(ConeWorkspace, ReusableAcrossQueries) {
  const Diamond d = make_diamond();
  ConeWorkspace ws(d.net);
  const NodeId roots1[] = {d.l, d.r};
  ws.compute(roots1, 0);
  EXPECT_FALSE(ws.joining_points(d.y).empty());
  const NodeId roots2[] = {d.a};
  ws.compute(roots2, 0);
  EXPECT_EQ(ws.cone().size(), 1u);
  EXPECT_TRUE(ws.joining_points().empty());
  EXPECT_EQ(ws.reach_mask(d.a), 1u);
  EXPECT_EQ(ws.reach_mask(d.y), 0u);
}

}  // namespace
}  // namespace protest
