// The supervised multi-process serve stack: backoff schedules, fault-spec
// parsing, deadline-aware cancellation tokens, rendezvous placement, and
// end-to-end supervisor behavior against REAL worker processes (crash,
// wedge, garbage, deadline, ticket survival).  Process tests spawn the
// CLI binary named by PROTEST_BIN (set by CTest) and skip without it.
//
// Deliberately NOT in the TSan CI filter: it forks/spawns child
// processes, which TSan's runtime does not follow.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/json.hpp"
#include "protest/service.hpp"
#include "protest/supervisor.hpp"
#include "util/backoff.hpp"
#include "util/cancel.hpp"
#include "util/fault_inject.hpp"

namespace protest {
namespace {

using std::chrono::milliseconds;

// --- backoff ----------------------------------------------------------------

TEST(Backoff, CappedExponentialSequenceIsDeterministic) {
  BackoffPolicy policy;  // 100ms * 2^n capped at 5000ms
  EXPECT_EQ(policy.delay(0), milliseconds(100));
  EXPECT_EQ(policy.delay(1), milliseconds(200));
  EXPECT_EQ(policy.delay(2), milliseconds(400));
  EXPECT_EQ(policy.delay(5), milliseconds(3200));
  EXPECT_EQ(policy.delay(6), milliseconds(5000));  // capped
  EXPECT_EQ(policy.delay(63), milliseconds(5000));
  EXPECT_EQ(policy.delay(1000), milliseconds(5000));  // overflow-safe
}

TEST(Backoff, ZeroInitialAndCustomMultiplier) {
  BackoffPolicy zero;
  zero.initial = milliseconds(0);
  EXPECT_EQ(zero.delay(0), milliseconds(0));
  EXPECT_EQ(zero.delay(20), milliseconds(0));

  BackoffPolicy gentle;
  gentle.initial = milliseconds(10);
  gentle.max = milliseconds(100);
  gentle.multiplier = 1.5;
  EXPECT_EQ(gentle.delay(0), milliseconds(10));
  EXPECT_EQ(gentle.delay(1), milliseconds(15));
  EXPECT_EQ(gentle.delay(40), milliseconds(100));
}

// --- fault-spec parsing -----------------------------------------------------

TEST(FaultInject, ParsesActionsVerbsCountsAndWorkerScopes) {
  FaultInjector inj = FaultInjector::parse("crash@analyze");
  EXPECT_TRUE(inj.armed());
  FaultAction action{};
  EXPECT_FALSE(inj.should_fire("stats", &action));
  EXPECT_TRUE(inj.should_fire("analyze", &action));
  EXPECT_EQ(action, FaultAction::Crash);
  // Rules fire exactly once.
  EXPECT_FALSE(inj.should_fire("analyze", &action));

  // nth counts MATCHING requests; '*' matches any verb.
  FaultInjector nth = FaultInjector::parse("garbage@*:3");
  EXPECT_FALSE(nth.should_fire("analyze", &action));
  EXPECT_FALSE(nth.should_fire("stats", &action));
  EXPECT_TRUE(nth.should_fire("perturb", &action));
  EXPECT_EQ(action, FaultAction::Garbage);

  // Worker scoping: w1: rules arm only in worker 1.
  FaultInjector w0 = FaultInjector::parse("w1:stall@analyze", /*worker=*/0);
  EXPECT_FALSE(w0.armed());
  FaultInjector w1 = FaultInjector::parse("w1:stall@analyze", /*worker=*/1);
  EXPECT_TRUE(w1.armed());
  EXPECT_TRUE(w1.should_fire("analyze", &action));
  EXPECT_EQ(action, FaultAction::Stall);

  // Comma-separated rules arm independently.
  FaultInjector multi =
      FaultInjector::parse("w0:crash@analyze,w1:stall@stats:2", /*worker=*/1);
  EXPECT_TRUE(multi.armed());
  EXPECT_FALSE(multi.should_fire("analyze", &action));  // scoped to w0
  EXPECT_FALSE(multi.should_fire("stats", &action));
  EXPECT_TRUE(multi.should_fire("stats", &action));
}

TEST(FaultInject, MalformedSpecsAreHardErrors) {
  for (const char* spec :
       {"explode@analyze", "crash", "crash@", "crash@analyze:0",
        "crash@analyze:zillion", "w:crash@analyze", "wx:crash@analyze",
        "crash@analyze:9999999"}) {
    EXPECT_THROW(FaultInjector::parse(spec), std::invalid_argument) << spec;
  }
  // An inert injector never fires.
  FaultInjector none;
  FaultAction action{};
  EXPECT_FALSE(none.armed());
  EXPECT_FALSE(none.should_fire("analyze", &action));
}

// --- deadline-aware cancellation tokens -------------------------------------

TEST(CancelDeadline, ReasonDistinguishesCancelFromDeadline) {
  const CancelToken inert;
  EXPECT_FALSE(inert.cancellable());
  EXPECT_EQ(inert.reason(), CancelReason::None);
  inert.request_cancel();  // no-op
  EXPECT_EQ(inert.reason(), CancelReason::None);

  const CancelToken src = CancelToken::source();
  EXPECT_EQ(src.reason(), CancelReason::None);
  src.request_cancel();
  EXPECT_EQ(src.reason(), CancelReason::Cancelled);
  try {
    src.check();
    FAIL() << "expected OperationCancelled";
  } catch (const OperationCancelled& e) {
    EXPECT_EQ(e.reason(), CancelReason::Cancelled);
  }

  const auto past = std::chrono::steady_clock::now() - milliseconds(1);
  const CancelToken expired = CancelToken::deadline_source(past);
  EXPECT_EQ(expired.reason(), CancelReason::DeadlineExceeded);
  try {
    expired.check();
    FAIL() << "expected OperationCancelled";
  } catch (const OperationCancelled& e) {
    EXPECT_EQ(e.reason(), CancelReason::DeadlineExceeded);
  }

  const auto future = std::chrono::steady_clock::now() + std::chrono::hours(1);
  EXPECT_EQ(CancelToken::deadline_source(future).reason(), CancelReason::None);
}

TEST(CancelDeadline, ExplicitCancelWinsOverExpiredDeadline) {
  const auto past = std::chrono::steady_clock::now() - milliseconds(1);
  const CancelToken token = CancelToken::deadline_source(past);
  token.request_cancel();
  EXPECT_EQ(token.reason(), CancelReason::Cancelled);
}

TEST(CancelDeadline, DeadlineChildKeepsObservingItsParent) {
  // The service nests a deadline scope inside a job's cancel scope; the
  // job's cancel must reach checkpoints through the deadline token.
  const CancelToken job = CancelToken::source();
  const auto future = std::chrono::steady_clock::now() + std::chrono::hours(1);
  const CancelToken child = CancelToken::with_deadline(job, future);
  EXPECT_EQ(child.reason(), CancelReason::None);
  job.request_cancel();
  EXPECT_EQ(child.reason(), CancelReason::Cancelled);
  // ...but cancelling the child never cancels the parent.
  const CancelToken job2 = CancelToken::source();
  const CancelToken child2 = CancelToken::with_deadline(job2, future);
  child2.request_cancel();
  EXPECT_EQ(child2.reason(), CancelReason::Cancelled);
  EXPECT_EQ(job2.reason(), CancelReason::None);
}

TEST(CancelDeadline, ScopeInstallsAmbientToken) {
  EXPECT_FALSE(current_cancel_token().cancellable());
  {
    const CancelToken token = CancelToken::source();
    const CancelScope scope(token);
    EXPECT_TRUE(current_cancel_token().cancellable());
    token.request_cancel();
    EXPECT_THROW(check_cancelled(), OperationCancelled);
  }
  EXPECT_FALSE(current_cancel_token().cancellable());
  EXPECT_NO_THROW(check_cancelled());
}

// --- placement --------------------------------------------------------------

TEST(Placement, IsPureAndMatchesTheFingerprintArgmax) {
  for (const char* name : {"alu", "c17", "big", "x", ""}) {
    for (unsigned workers = 1; workers <= 8; ++workers) {
      const unsigned chosen = worker_for_netlist(name, workers);
      ASSERT_LT(chosen, workers);
      EXPECT_EQ(chosen, worker_for_netlist(name, workers)) << "not pure";
      for (unsigned w = 0; w < workers; ++w) {
        EXPECT_LE(placement_fingerprint(name, w),
                  placement_fingerprint(name, chosen))
            << name << " workers=" << workers << " w=" << w;
      }
    }
  }
  EXPECT_EQ(worker_for_netlist("anything", 1), 0u);
  EXPECT_EQ(worker_for_netlist("anything", 0), 0u);
}

TEST(Placement, RendezvousGrowthOnlyRehomesToTheNewWorker) {
  // Adding a worker must never move a name between PRE-EXISTING workers —
  // the rendezvous property that keeps fleet growth cheap.
  std::vector<std::string> names;
  for (int i = 0; i < 200; ++i) names.push_back("net" + std::to_string(i));
  for (unsigned workers = 1; workers < 8; ++workers) {
    for (const std::string& name : names) {
      const unsigned before = worker_for_netlist(name, workers);
      const unsigned after = worker_for_netlist(name, workers + 1);
      EXPECT_TRUE(after == before || after == workers)
          << name << " moved " << before << " -> " << after << " when worker "
          << workers << " joined";
    }
  }
  // Sanity: with a few workers every slot owns something.
  std::vector<int> owned(4, 0);
  for (const std::string& name : names) ++owned[worker_for_netlist(name, 4)];
  for (int count : owned) EXPECT_GT(count, 0);
}

// --- end-to-end against real worker processes -------------------------------

/// Builds supervisor options sized for test speed: tight heartbeats,
/// fast restarts, the CTest-provided worker binary.
SupervisorOptions fast_options(unsigned workers, const std::string& faults) {
  SupervisorOptions opts;
  opts.workers = workers;
  opts.fault_spec = faults;
  opts.heartbeat_interval = milliseconds(50);
  opts.heartbeat_timeout = milliseconds(250);
  opts.backoff.initial = milliseconds(20);
  opts.backoff.max = milliseconds(200);
  const char* bin = std::getenv("PROTEST_BIN");
  opts.worker_binary = bin ? bin : "";
  return opts;
}

#define REQUIRE_SUPERVISOR()                                              \
  do {                                                                    \
    if (!supervisor_supported())                                          \
      GTEST_SKIP() << "supervisor unsupported on this platform";          \
    const char* bin = std::getenv("PROTEST_BIN");                         \
    if (!bin || !*bin)                                                    \
      GTEST_SKIP() << "PROTEST_BIN not set (run under CTest)";            \
  } while (0)

ServiceResponse ask(Supervisor& sup, const std::string& line) {
  return ServiceResponse::from_json(sup.handle_line(line));
}

TEST(SupervisorProcess, ServesAConversationAndSurfacesFleetStats) {
  REQUIRE_SUPERVISOR();
  std::ostringstream log;
  Supervisor sup(fast_options(2, ""), log);

  const ServiceResponse load = ask(
      sup,
      "{\"verb\":\"load_netlist\",\"id\":1,\"netlist\":\"c17\","
      "\"circuit\":\"c17\"}");
  ASSERT_TRUE(load.ok) << load.error_message;
  const ServiceResponse analyze = ask(
      sup, "{\"verb\":\"analyze\",\"id\":2,\"netlist\":\"c17\",\"p\":0.5}");
  ASSERT_TRUE(analyze.ok) << analyze.error_message;

  // The analyze payload matches the single-process service byte for byte:
  // the router rewrites heads, never payloads.
  ProtestService reference;
  reference.handle_line(
      "{\"verb\":\"load_netlist\",\"id\":1,\"netlist\":\"c17\","
      "\"circuit\":\"c17\"}");
  const ServiceResponse direct = ServiceResponse::from_json(
      reference.handle_line(
          "{\"verb\":\"analyze\",\"id\":2,\"netlist\":\"c17\",\"p\":0.5}"));
  EXPECT_EQ(analyze.result_json, direct.result_json);

  const ServiceResponse stats = ask(sup, "{\"verb\":\"stats\",\"id\":3}");
  ASSERT_TRUE(stats.ok);
  const JsonValue doc = parse_json(stats.result_json);
  EXPECT_EQ(doc.at("workers").as_number(), 2.0);
  const auto& fleet = doc.at("supervisor").at("workers").as_array();
  ASSERT_EQ(fleet.size(), 2u);
  for (const JsonValue& w : fleet) {
    EXPECT_EQ(w.at("state").as_string(), "up");
    EXPECT_GT(w.at("pid").as_number(), 0.0);
  }

  const ServiceResponse bye = ask(sup, "{\"verb\":\"shutdown\",\"id\":4}");
  EXPECT_TRUE(bye.ok);
  EXPECT_TRUE(sup.shutdown_requested());
  const SupervisorCounters counters = sup.counters();
  EXPECT_EQ(counters.restarts, 0u);
  EXPECT_EQ(counters.worker_lost, 0u);
}

TEST(SupervisorProcess, WorkerCountNeverChangesServedPayloads) {
  REQUIRE_SUPERVISOR();
  // Placement only routes requests — it must never alter results: a
  // 1-worker and a 2-worker fleet serve byte-identical analyze payloads
  // for the same conversation, across several netlists so both workers
  // of the larger fleet own some of them.
  // Load responses echo the worker-local resident list (legitimately
  // fleet-dependent); only the analysis payloads must be byte-identical.
  const std::vector<std::string> loads = {
      "{\"verb\":\"load_netlist\",\"id\":1,\"netlist\":\"c17\","
      "\"circuit\":\"c17\"}",
      "{\"verb\":\"load_netlist\",\"id\":2,\"netlist\":\"alu\","
      "\"circuit\":\"alu\"}",
  };
  const std::vector<std::string> queries = {
      "{\"verb\":\"analyze\",\"id\":3,\"netlist\":\"c17\",\"p\":0.5,"
      "\"artifacts\":[\"signal_probs\",\"observability\","
      "\"detection_probs\",\"test_lengths\"]}",
      "{\"verb\":\"analyze\",\"id\":4,\"netlist\":\"alu\",\"p\":0.3}",
      "{\"verb\":\"perturb\",\"id\":5,\"netlist\":\"c17\",\"p\":0.5,"
      "\"input_index\":1,\"new_p\":0.9}",
  };
  std::ostringstream log1, log2;
  Supervisor one(fast_options(1, ""), log1);
  Supervisor two(fast_options(2, ""), log2);
  for (const std::string& line : loads) {
    ASSERT_TRUE(ask(one, line).ok) << line;
    ASSERT_TRUE(ask(two, line).ok) << line;
  }
  for (const std::string& line : queries) {
    const ServiceResponse a = ask(one, line);
    const ServiceResponse b = ask(two, line);
    ASSERT_TRUE(a.ok) << a.error_message;
    ASSERT_TRUE(b.ok) << b.error_message;
    EXPECT_EQ(a.result_json, b.result_json) << line;
  }
}

TEST(SupervisorProcess, CrashedWorkerRestartsAndIdempotentReadRetries) {
  REQUIRE_SUPERVISOR();
  std::ostringstream log;
  Supervisor sup(fast_options(2, "crash@analyze"), log);

  ASSERT_TRUE(ask(sup,
                  "{\"verb\":\"load_netlist\",\"id\":1,\"netlist\":\"c17\","
                  "\"circuit\":\"c17\"}")
                  .ok);
  // The worker owning c17 crashes mid-analyze; the supervisor restarts
  // it, replays the netlist, retries, and the client sees a plain result.
  const ServiceResponse analyze = ask(
      sup, "{\"verb\":\"analyze\",\"id\":2,\"netlist\":\"c17\",\"p\":0.5}");
  ASSERT_TRUE(analyze.ok) << analyze.error_message;

  const SupervisorCounters counters = sup.counters();
  EXPECT_EQ(counters.restarts, 1u);
  EXPECT_EQ(counters.retries, 1u);
  EXPECT_EQ(counters.worker_lost, 0u);
  EXPECT_NE(log.str().find("died"), std::string::npos);
  EXPECT_NE(log.str().find("back up"), std::string::npos);

  EXPECT_TRUE(ask(sup, "{\"verb\":\"shutdown\",\"id\":3}").ok);
}

TEST(SupervisorProcess, NonIdempotentVerbAnswersWorkerLost) {
  REQUIRE_SUPERVISOR();
  std::ostringstream log;
  Supervisor sup(fast_options(1, "crash@optimize"), log);

  ASSERT_TRUE(ask(sup,
                  "{\"verb\":\"load_netlist\",\"id\":1,\"netlist\":\"c17\","
                  "\"circuit\":\"c17\"}")
                  .ok);
  const ServiceResponse opt = ask(
      sup,
      "{\"verb\":\"optimize\",\"id\":2,\"netlist\":\"c17\",\"n\":100}");
  EXPECT_FALSE(opt.ok);
  EXPECT_EQ(opt.error_code, "worker_lost");
  EXPECT_EQ(opt.id, 2u);
  EXPECT_EQ(opt.verb, "optimize");
  EXPECT_GE(sup.counters().worker_lost, 1u);

  // The fleet recovers: the SAME name keeps answering after the restart.
  const ServiceResponse analyze = ask(
      sup, "{\"verb\":\"analyze\",\"id\":3,\"netlist\":\"c17\",\"p\":0.5}");
  EXPECT_TRUE(analyze.ok) << analyze.error_message;
  EXPECT_TRUE(ask(sup, "{\"verb\":\"shutdown\",\"id\":4}").ok);
}

TEST(SupervisorProcess, GarbageOutputKillsTheWorkerNeverTheClient) {
  REQUIRE_SUPERVISOR();
  std::ostringstream log;
  Supervisor sup(fast_options(1, "garbage@analyze"), log);

  ASSERT_TRUE(ask(sup,
                  "{\"verb\":\"load_netlist\",\"id\":1,\"netlist\":\"c17\","
                  "\"circuit\":\"c17\"}")
                  .ok);
  // The worker emits a corrupt line instead of the analyze response; the
  // supervisor kills it and the retried analyze still succeeds — the
  // client NEVER sees the corrupt bytes.
  const ServiceResponse analyze = ask(
      sup, "{\"verb\":\"analyze\",\"id\":2,\"netlist\":\"c17\",\"p\":0.5}");
  ASSERT_TRUE(analyze.ok) << analyze.error_message;
  EXPECT_EQ(analyze.id, 2u);
  EXPECT_GE(sup.counters().garbage, 1u);
  EXPECT_EQ(sup.counters().restarts, 1u);
  EXPECT_TRUE(ask(sup, "{\"verb\":\"shutdown\",\"id\":3}").ok);
}

TEST(SupervisorProcess, WedgedWorkerIsKilledByHeartbeatTimeout) {
  REQUIRE_SUPERVISOR();
  // The stalled reader never EOFs on its own — only the heartbeat
  // timeout catches it.  Shrink the stall so the killed worker's reader
  // thread doesn't outlive the test harness.
  ::setenv("PROTEST_FAULT_STALL_MS", "2000", 1);
  std::ostringstream log;
  Supervisor sup(fast_options(1, "stall@analyze"), log);
  ::unsetenv("PROTEST_FAULT_STALL_MS");

  ASSERT_TRUE(ask(sup,
                  "{\"verb\":\"load_netlist\",\"id\":1,\"netlist\":\"c17\","
                  "\"circuit\":\"c17\"}")
                  .ok);
  const ServiceResponse analyze = ask(
      sup, "{\"verb\":\"analyze\",\"id\":2,\"netlist\":\"c17\",\"p\":0.5}");
  ASSERT_TRUE(analyze.ok) << analyze.error_message;
  EXPECT_GE(sup.counters().wedges, 1u);
  EXPECT_GE(sup.counters().restarts, 1u);
  EXPECT_NE(log.str().find("wedged"), std::string::npos);
  EXPECT_TRUE(ask(sup, "{\"verb\":\"shutdown\",\"id\":3}").ok);
}

TEST(SupervisorProcess, TicketsSurviveWorkerLossAsObservableFailures) {
  REQUIRE_SUPERVISOR();
  std::ostringstream log;
  // The first poll crashes the worker with the job's process state in it.
  Supervisor sup(fast_options(1, "crash@poll"), log);

  ASSERT_TRUE(ask(sup,
                  "{\"verb\":\"load_netlist\",\"id\":1,\"netlist\":\"c17\","
                  "\"circuit\":\"c17\"}")
                  .ok);
  const ServiceResponse submit = ask(
      sup,
      "{\"verb\":\"submit\",\"id\":2,\"request\":{\"verb\":\"analyze\","
      "\"id\":100,\"netlist\":\"c17\",\"p\":0.5}}");
  ASSERT_TRUE(submit.ok) << submit.error_message;
  const JsonValue ticket = parse_json(submit.result_json);
  EXPECT_EQ(ticket.at("job").as_number(), 1.0);  // global numbering

  // This poll line kills the worker; the ticket must resolve as a FAILED
  // job — structured, pollable, never an orphan and never a hang.
  const ServiceResponse poll =
      ask(sup, "{\"verb\":\"poll\",\"id\":3,\"job\":1}");
  ASSERT_TRUE(poll.ok) << poll.error_message;
  const JsonValue lost = parse_json(poll.result_json);
  EXPECT_EQ(lost.at("state").as_string(), "failed");
  EXPECT_NE(lost.at("error").as_string().find("worker_lost"),
            std::string::npos);

  // ...and keeps answering the same way after the restart (wait + jobs).
  const ServiceResponse wait =
      ask(sup, "{\"verb\":\"wait\",\"id\":4,\"job\":1,\"timeout_ms\":100}");
  ASSERT_TRUE(wait.ok);
  EXPECT_EQ(parse_json(wait.result_json).at("state").as_string(), "failed");
  const ServiceResponse jobs = ask(sup, "{\"verb\":\"jobs\",\"id\":5}");
  ASSERT_TRUE(jobs.ok);
  const JsonValue jobs_doc = parse_json(jobs.result_json);
  const auto& listed = jobs_doc.at("jobs").as_array();
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed[0].at("job").as_number(), 1.0);
  EXPECT_EQ(listed[0].at("state").as_string(), "failed");
  // Cancel on a lost ticket: nothing left to cancel, still structured.
  const ServiceResponse cancel =
      ask(sup, "{\"verb\":\"cancel\",\"id\":6,\"job\":1}");
  ASSERT_TRUE(cancel.ok);
  EXPECT_EQ(parse_json(cancel.result_json).at("requested").as_bool(), false);
  EXPECT_TRUE(ask(sup, "{\"verb\":\"shutdown\",\"id\":7}").ok);
}

TEST(SupervisorProcess, TicketsRouteAndCompleteAcrossTheFleet) {
  REQUIRE_SUPERVISOR();
  std::ostringstream log;
  Supervisor sup(fast_options(2, ""), log);

  ASSERT_TRUE(ask(sup,
                  "{\"verb\":\"load_netlist\",\"id\":1,\"netlist\":\"c17\","
                  "\"circuit\":\"c17\"}")
                  .ok);
  ASSERT_TRUE(ask(sup,
                  "{\"verb\":\"load_netlist\",\"id\":2,\"netlist\":\"alu\","
                  "\"circuit\":\"alu\"}")
                  .ok);
  // Two tickets on (potentially) different workers share one global
  // numbering and both resolve through wait.
  ASSERT_TRUE(ask(sup,
                  "{\"verb\":\"submit\",\"id\":3,\"request\":{\"verb\":"
                  "\"analyze\",\"id\":100,\"netlist\":\"c17\",\"p\":0.5}}")
                  .ok);
  ASSERT_TRUE(ask(sup,
                  "{\"verb\":\"submit\",\"id\":4,\"request\":{\"verb\":"
                  "\"analyze\",\"id\":101,\"netlist\":\"alu\",\"p\":0.5}}")
                  .ok);
  for (int job = 1; job <= 2; ++job) {
    const ServiceResponse wait = ask(
        sup, "{\"verb\":\"wait\",\"id\":" + std::to_string(4 + job) +
                 ",\"job\":" + std::to_string(job) + ",\"timeout_ms\":15000}");
    ASSERT_TRUE(wait.ok) << wait.error_message;
    EXPECT_EQ(wait.verb, "wait");
    const JsonValue done = parse_json(wait.result_json);
    EXPECT_EQ(done.at("job").as_number(), static_cast<double>(job));
    EXPECT_EQ(done.at("state").as_string(), "done");
    // The embedded inner response keeps the client's inner id.
    EXPECT_EQ(done.at("response").at("id").as_number(),
              job == 1 ? 100.0 : 101.0);
  }
  const ServiceResponse unknown =
      ask(sup, "{\"verb\":\"poll\",\"id\":9,\"job\":42}");
  EXPECT_FALSE(unknown.ok);
  EXPECT_EQ(unknown.error_code, "unknown_job");
  EXPECT_TRUE(ask(sup, "{\"verb\":\"shutdown\",\"id\":10}").ok);
}

TEST(SupervisorProcess, DeadlineBudgetAnswersDeadlineExceeded) {
  REQUIRE_SUPERVISOR();
  std::ostringstream log;
  Supervisor sup(fast_options(1, ""), log);

  ASSERT_TRUE(ask(sup,
                  "{\"verb\":\"load_netlist\",\"id\":1,\"netlist\":\"mc\","
                  "\"circuit\":\"stress100k\",\"engine\":\"monte-carlo\","
                  "\"patterns\":2000000}")
                  .ok);
  // A 50 ms budget on a multi-second Monte-Carlo: the worker's checkpoint
  // cancels the work and answers structurally — no hang, no partial line.
  const ServiceResponse late = ask(
      sup,
      "{\"verb\":\"analyze\",\"id\":2,\"netlist\":\"mc\",\"p\":0.5,"
      "\"deadline_ms\":50}");
  EXPECT_FALSE(late.ok);
  EXPECT_EQ(late.error_code, "deadline_exceeded");
  EXPECT_EQ(late.id, 2u);
  EXPECT_GE(sup.counters().timeouts, 1u);
  // The worker survives a cancelled request (no restart needed).
  EXPECT_EQ(sup.counters().restarts, 0u);
  EXPECT_TRUE(ask(sup, "{\"verb\":\"shutdown\",\"id\":3}").ok);
}

TEST(SupervisorProcess, MalformedLinesAnswerStructuredErrors) {
  REQUIRE_SUPERVISOR();
  std::ostringstream log;
  Supervisor sup(fast_options(1, ""), log);

  const ServiceResponse bad = ask(sup, "this is not json");
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.error_code, "bad_request");
  const ServiceResponse bad_id =
      ask(sup, "{\"verb\":\"stats\",\"id\":-3}");
  EXPECT_FALSE(bad_id.ok);
  EXPECT_EQ(bad_id.error_code, "bad_request");
  EXPECT_EQ(bad_id.id, 0u);
  EXPECT_EQ(bad_id.verb, "stats");
  const ServiceResponse unknown_netlist = ask(
      sup, "{\"verb\":\"analyze\",\"id\":4,\"netlist\":\"nope\",\"p\":0.5}");
  EXPECT_FALSE(unknown_netlist.ok);
  EXPECT_EQ(unknown_netlist.error_code, "unknown_netlist");
  EXPECT_TRUE(ask(sup, "{\"verb\":\"shutdown\",\"id\":5}").ok);
}

}  // namespace
}  // namespace protest
