// End-to-end smoke: the full PROTEST pipeline on c17.
#include <gtest/gtest.h>

#include "circuits/iscas.hpp"
#include "prob/naive.hpp"
#include "protest/protest.hpp"

namespace protest {
namespace {

TEST(Smoke, FullPipelineOnC17) {
  const Netlist net = make_c17();
  const Protest tool(net);
  const auto report = tool.analyze(uniform_input_probs(net, 0.5));
  ASSERT_EQ(report.signal_probs.size(), net.size());
  ASSERT_EQ(report.detection_probs.size(), tool.faults().size());
  for (double p : report.signal_probs) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  const std::uint64_t n = tool.test_length(report, 1.0, 0.95);
  EXPECT_GT(n, 0u);
  EXPECT_LT(n, 10'000u);

  const PatternSet ps = tool.generate_patterns(report.input_probs, 256, 42);
  const FaultSimResult sim = tool.fault_simulate(ps, FaultSimMode::FirstDetection);
  EXPECT_GT(sim.coverage(), 0.95);
}

}  // namespace
}  // namespace protest
