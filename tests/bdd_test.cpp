// ROBDD package: canonicity, operations, sat-probability/count, limits.
#include <gtest/gtest.h>

#include <random>

#include "bdd/bdd.hpp"

namespace protest {
namespace {

TEST(Bdd, TerminalsAndVars) {
  Bdd bdd(3);
  EXPECT_NE(bdd.zero(), bdd.one());
  const auto x0 = bdd.var(0);
  EXPECT_EQ(bdd.var(0), x0);  // unique table canonicity
  EXPECT_FALSE(bdd.is_const(x0));
  EXPECT_THROW(bdd.var(3), std::out_of_range);
}

TEST(Bdd, BasicIdentities) {
  Bdd bdd(2);
  const auto a = bdd.var(0), b = bdd.var(1);
  EXPECT_EQ(bdd.apply_and(a, bdd.one()), a);
  EXPECT_EQ(bdd.apply_and(a, bdd.zero()), bdd.zero());
  EXPECT_EQ(bdd.apply_or(a, bdd.zero()), a);
  EXPECT_EQ(bdd.apply_and(a, a), a);
  EXPECT_EQ(bdd.apply_xor(a, a), bdd.zero());
  EXPECT_EQ(bdd.apply_not(bdd.apply_not(a)), a);
  EXPECT_EQ(bdd.apply_xor(a, b), bdd.apply_xor(b, a));
}

TEST(Bdd, DeMorgan) {
  Bdd bdd(2);
  const auto a = bdd.var(0), b = bdd.var(1);
  const auto lhs = bdd.apply_not(bdd.apply_and(a, b));
  const auto rhs = bdd.apply_or(bdd.apply_not(a), bdd.apply_not(b));
  EXPECT_EQ(lhs, rhs);
}

TEST(Bdd, SatCount) {
  Bdd bdd(3);
  const auto a = bdd.var(0), b = bdd.var(1), c = bdd.var(2);
  EXPECT_DOUBLE_EQ(bdd.sat_count(bdd.one()), 8.0);
  EXPECT_DOUBLE_EQ(bdd.sat_count(bdd.zero()), 0.0);
  EXPECT_DOUBLE_EQ(bdd.sat_count(a), 4.0);
  EXPECT_DOUBLE_EQ(bdd.sat_count(bdd.apply_and(a, b)), 2.0);
  EXPECT_DOUBLE_EQ(bdd.sat_count(bdd.apply_xor(a, bdd.apply_xor(b, c))), 4.0);
}

TEST(Bdd, SatProbMatchesFormula) {
  Bdd bdd(2);
  const auto a = bdd.var(0), b = bdd.var(1);
  const double probs[] = {0.3, 0.8};
  EXPECT_NEAR(bdd.sat_prob(bdd.apply_and(a, b), probs), 0.24, 1e-12);
  EXPECT_NEAR(bdd.sat_prob(bdd.apply_or(a, b), probs), 1 - 0.7 * 0.2, 1e-12);
  EXPECT_NEAR(bdd.sat_prob(bdd.apply_xor(a, b), probs),
              0.3 + 0.8 - 2 * 0.24, 1e-12);
}

TEST(Bdd, NodeLimitThrows) {
  // Force a blow-up with a tiny limit.
  Bdd bdd(16, 8);
  auto acc = bdd.zero();
  EXPECT_THROW(
      {
        for (unsigned i = 0; i < 16; ++i) acc = bdd.apply_xor(acc, bdd.var(i));
      },
      BddLimitExceeded);
}

// Property: for random 3-variable functions built from random gate
// applications, sat_count matches brute-force truth-table counting.
class BddRandomFunctions : public ::testing::TestWithParam<int> {};

TEST_P(BddRandomFunctions, SatCountMatchesTruthTable) {
  std::mt19937_64 rng(GetParam());
  Bdd bdd(4);
  // Build a random function and, in parallel, its 16-row truth table.
  struct Entry {
    Bdd::Ref f;
    std::uint16_t tt;
  };
  std::vector<Entry> pool;
  for (unsigned v = 0; v < 4; ++v) {
    std::uint16_t tt = 0;
    for (unsigned m = 0; m < 16; ++m)
      if ((m >> v) & 1) tt |= std::uint16_t(1u << m);
    pool.push_back({bdd.var(v), tt});
  }
  std::uniform_int_distribution<std::size_t> pick(0, 100);
  for (int step = 0; step < 30; ++step) {
    const Entry a = pool[pick(rng) % pool.size()];
    const Entry b = pool[pick(rng) % pool.size()];
    switch (pick(rng) % 4) {
      case 0: pool.push_back({bdd.apply_and(a.f, b.f), std::uint16_t(a.tt & b.tt)}); break;
      case 1: pool.push_back({bdd.apply_or(a.f, b.f), std::uint16_t(a.tt | b.tt)}); break;
      case 2: pool.push_back({bdd.apply_xor(a.f, b.f), std::uint16_t(a.tt ^ b.tt)}); break;
      case 3: pool.push_back({bdd.apply_not(a.f), std::uint16_t(~a.tt)}); break;
    }
    const Entry& e = pool.back();
    EXPECT_DOUBLE_EQ(bdd.sat_count(e.f), std::popcount(e.tt))
        << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddRandomFunctions, ::testing::Range(1, 9));

}  // namespace
}  // namespace protest
