// The session-oriented analysis API: request/response artifacts, the
// tuple cache, the incremental perturb() path, and JSON serialization.
#include <gtest/gtest.h>

#include "analysis/json.hpp"
#include "circuits/iscas.hpp"
#include "circuits/zoo.hpp"
#include "protest/session.hpp"

namespace protest {
namespace {

InputProbs varied_tuple(const Netlist& net, double base) {
  InputProbs t = uniform_input_probs(net, base);
  for (std::size_t i = 0; i < t.size(); ++i)
    t[i] = 0.1 + 0.05 * static_cast<double>(i % 16);
  return t;
}

TEST(AnalysisSession, RepeatedTupleIsACacheHit) {
  const Netlist net = make_c17();
  AnalysisSession session(net);
  const InputProbs ip = uniform_input_probs(net, 0.5);
  const AnalysisResult a = session.analyze(ip);
  const AnalysisResult b = session.analyze(ip);
  EXPECT_EQ(session.stats().analyze_calls, 2u);
  EXPECT_EQ(session.stats().cache_hits, 1u);
  EXPECT_EQ(session.stats().full_evals, 1u);
  // Identical vectors — in fact the same shared memoization state.
  EXPECT_EQ(a.signal_probs(), b.signal_probs());
  EXPECT_EQ(&a.signal_probs(), &b.signal_probs());
  EXPECT_EQ(&a.detection_probs(), &b.detection_probs());
}

TEST(AnalysisSession, StatsSerializeToJson) {
  // The wire form behind the daemon's `stats` verb: all counters plus the
  // resident cache occupancy, parseable by the library's own reader.
  const Netlist net = make_c17();
  AnalysisSession session(net);
  const InputProbs ip = uniform_input_probs(net, 0.5);
  const AnalysisResult base = session.analyze(ip);
  session.analyze(ip);             // hit
  session.perturb(base, 0, 0.25);  // incremental route
  session.perturb_screen(base, 0, 0.75);

  const JsonValue doc = parse_json(session.stats().to_json(0));
  EXPECT_EQ(doc.at("analyze_calls").as_number(), 2.0);
  EXPECT_EQ(doc.at("cache_hits").as_number(), 1.0);
  EXPECT_EQ(doc.at("cache_misses").as_number(), 1.0);
  EXPECT_EQ(doc.at("incremental_evals").as_number(), 1.0);
  EXPECT_EQ(doc.at("screen_evals").as_number(), 1.0);
  EXPECT_EQ(doc.at("full_evals").as_number(), 1.0);
  // Base tuple + exact perturb product are resident; the screened result
  // never enters the cache.
  EXPECT_EQ(doc.at("resident_results").as_number(), 2.0);
}

TEST(AnalysisSession, NearDuplicateTupleTakesTheIncrementalPath) {
  const Netlist net = make_c17();
  AnalysisSession session(net);
  InputProbs ip = uniform_input_probs(net, 0.5);
  session.analyze(ip);
  ip[2] = 0.25;  // one coordinate away from the cached tuple
  const AnalysisResult inc = session.analyze(ip);
  EXPECT_EQ(session.stats().incremental_evals, 1u);
  EXPECT_EQ(session.stats().full_evals, 1u);
  // Bit-for-bit what a cold session computes from scratch.
  AnalysisSession cold(net);
  EXPECT_EQ(inc.signal_probs(), cold.analyze(ip).signal_probs());
}

TEST(AnalysisSession, PerturbMatchesFromScratchAnalyze) {
  // Acceptance: perturb() == from-scratch analyze() on the same tuple,
  // bit for bit, on the PROTEST and naive engines.  The ALU has heavy
  // reconvergence, so the PROTEST conditioning path is fully exercised.
  const Netlist net = make_circuit("alu");
  for (const char* engine : {"protest", "naive"}) {
    SessionOptions opts;
    opts.engine = engine;
    AnalysisSession session(net, opts);
    const AnalysisResult base = session.analyze(varied_tuple(net, 0.5));
    for (std::size_t idx : {std::size_t{0}, net.inputs().size() - 1}) {
      for (double new_p : {0.0625, 0.9375}) {
        const AnalysisResult inc = session.perturb(base, idx, new_p);
        InputProbs perturbed = base.input_probs();
        perturbed[idx] = new_p;
        EXPECT_EQ(inc.input_probs(), perturbed);
        AnalysisSession cold(net, opts);
        const AnalysisResult scratch = cold.analyze(perturbed);
        EXPECT_EQ(inc.signal_probs(), scratch.signal_probs())
            << engine << " input " << idx << " p " << new_p;
        EXPECT_EQ(inc.detection_probs(), scratch.detection_probs())
            << engine << " input " << idx << " p " << new_p;
      }
    }
  }
}

TEST(AnalysisSession, ScreeningPerturbMatchesBatchSemantics) {
  // perturb_screen() freezes the conditioning sets selected at the base
  // tuple — bit-for-bit the engine-level batch semantics anchored there —
  // and must not pollute the exact-fidelity tuple cache.
  const Netlist net = make_circuit("alu");
  AnalysisSession session(net);
  const InputProbs base = varied_tuple(net, 0.5);
  const AnalysisResult base_r = session.analyze(base);
  InputProbs perturbed = base;
  perturbed[3] = 0.8125;

  const AnalysisResult screened = session.perturb_screen(base_r, 3, 0.8125);
  EXPECT_EQ(session.stats().screen_evals, 1u);

  const auto reference = make_engine("protest", net);
  const auto batch = reference->signal_probs_batch(
      std::vector<InputProbs>{base, perturbed});
  EXPECT_EQ(screened.signal_probs(), batch[1]);

  // The exact path disagrees with the frozen screening on a reconvergent
  // circuit (it re-selects), and analyze() must serve the exact value.
  const AnalysisResult exact = session.analyze(perturbed);
  EXPECT_EQ(session.stats().cache_hits, 0u);
  EXPECT_EQ(exact.signal_probs(),
            reference->signal_probs(perturbed));
}

TEST(AnalysisSession, PerturbFallsBackOnNonIncrementalEngines) {
  const Netlist net = make_c17();
  SessionOptions opts;
  opts.engine = "exact-enum";
  AnalysisSession session(net, opts);
  EXPECT_FALSE(session.engine().incremental());
  const AnalysisResult base = session.analyze(uniform_input_probs(net, 0.5));
  const AnalysisResult inc = session.perturb(base, 0, 0.25);
  InputProbs perturbed = uniform_input_probs(net, 0.5);
  perturbed[0] = 0.25;
  AnalysisSession cold(net, opts);
  EXPECT_EQ(inc.signal_probs(), cold.analyze(perturbed).signal_probs());
}

TEST(AnalysisSession, PerturbValidatesItsArguments) {
  const Netlist net = make_c17();
  AnalysisSession session(net);
  AnalysisSession other(net);
  const AnalysisResult base = session.analyze(uniform_input_probs(net, 0.5));
  EXPECT_THROW(session.perturb(base, 99, 0.5), std::invalid_argument);
  EXPECT_THROW(session.perturb(base, 0, 1.5), std::invalid_argument);
  EXPECT_THROW(session.perturb(AnalysisResult{}, 0, 0.5),
               std::invalid_argument);
  EXPECT_THROW(other.perturb(base, 0, 0.5), std::invalid_argument);
}

TEST(AnalysisSession, ScreenedResultsCannotSeedPerturbs) {
  // A perturb() chained off a screening result would smuggle
  // frozen-selection numbers into the exact-fidelity tuple cache.
  const Netlist net = make_c17();
  AnalysisSession session(net);
  const AnalysisResult base = session.analyze(uniform_input_probs(net, 0.5));
  const AnalysisResult screened = session.perturb_screen(base, 0, 0.25);
  EXPECT_THROW(session.perturb(screened, 1, 0.75), std::invalid_argument);
  EXPECT_THROW(session.perturb_screen(screened, 1, 0.75),
               std::invalid_argument);
}

TEST(AnalysisSession, LazyArtifactsAreMemoized) {
  const Netlist net = make_c17();
  AnalysisSession session(net);
  const AnalysisResult r =
      session.analyze(uniform_input_probs(net, 0.5), AnalysisRequest::minimal());
  const std::vector<double>& pf = r.detection_probs();  // computed on access
  EXPECT_EQ(pf.size(), session.faults().size());
  EXPECT_EQ(&r.detection_probs(), &pf);  // memoized, not recomputed
  EXPECT_EQ(r.observability().stem.size(), net.size());
  EXPECT_EQ(r.scoap().cc0.size(), net.size());
  EXPECT_EQ(r.stafan().c1.size(), net.size());
}

TEST(AnalysisSession, ResultsOutliveTheSessionAndItsCache) {
  const Netlist net = make_c17();
  AnalysisResult r;
  {
    AnalysisSession session(net);
    r = session.analyze(uniform_input_probs(net, 0.5),
                        AnalysisRequest::minimal());
  }
  EXPECT_EQ(r.detection_probs().size(), r.faults().size());
}

TEST(AnalysisSession, CacheRespectsItsBound) {
  const Netlist net = make_c17();
  SessionOptions opts;
  opts.max_cached_results = 2;
  AnalysisSession session(net, opts);
  const InputProbs a = uniform_input_probs(net, 0.1);
  session.analyze(a);
  session.analyze(uniform_input_probs(net, 0.2));
  session.analyze(uniform_input_probs(net, 0.3));  // evicts the 0.1 tuple
  session.analyze(a);
  EXPECT_EQ(session.stats().cache_hits, 0u);
  EXPECT_EQ(session.stats().full_evals, 4u);
}

TEST(AnalysisSession, ClearCacheForgetsTuples) {
  const Netlist net = make_c17();
  AnalysisSession session(net);
  const InputProbs ip = uniform_input_probs(net, 0.5);
  session.analyze(ip);
  session.clear_cache();
  session.analyze(ip);
  EXPECT_EQ(session.stats().cache_hits, 0u);
  EXPECT_EQ(session.stats().full_evals, 2u);
}

TEST(AnalysisSession, BatchHasExactPerTupleSemantics) {
  const Netlist net = make_c17();
  AnalysisSession session(net);
  const std::vector<InputProbs> tuples = {uniform_input_probs(net, 0.5),
                                          uniform_input_probs(net, 0.3),
                                          uniform_input_probs(net, 0.5)};
  const auto results = session.analyze_batch(tuples);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(session.stats().cache_hits, 1u);  // the repeated 0.5 tuple
  for (std::size_t t = 0; t < tuples.size(); ++t) {
    AnalysisSession cold(net);
    EXPECT_EQ(results[t].signal_probs(),
              cold.analyze(tuples[t]).signal_probs())
        << "tuple " << t;
  }
}

TEST(AnalysisSession, JsonContainsRequestedArtifactsOnly) {
  const Netlist net = make_c17();
  AnalysisSession session(net);
  AnalysisRequest req = AnalysisRequest::minimal();
  const std::string minimal =
      session.analyze(uniform_input_probs(net, 0.5), req).to_json();
  EXPECT_NE(minimal.find("\"signal_probs\""), std::string::npos);
  EXPECT_EQ(minimal.find("\"detection_probs\""), std::string::npos);
  EXPECT_EQ(minimal.find("\"observability\""), std::string::npos);
  EXPECT_EQ(minimal.find("\"scoap\""), std::string::npos);

  req = AnalysisRequest::everything();
  const std::string full =
      session.analyze(uniform_input_probs(net, 0.5), req).to_json();
  for (const char* key : {"\"engine\"", "\"circuit\"", "\"input_probs\"",
                          "\"signal_probs\"", "\"observability\"",
                          "\"detection_probs\"", "\"test_lengths\"",
                          "\"scoap\"", "\"stafan\""})
    EXPECT_NE(full.find(key), std::string::npos) << key;
}

TEST(AnalysisSession, JsonRoundTripsProbabilities) {
  // The writer must emit enough digits that a reader recovers the exact
  // doubles; spot-check one node value against its serialization.
  const Netlist net = make_c17();
  AnalysisSession session(net);
  const AnalysisResult r = session.analyze(varied_tuple(net, 0.5));
  const std::string json = r.to_json(0);  // compact mode, single line
  const NodeId out0 = net.outputs()[0];
  const std::string key = "\"node\":\"" + net.name_of(out0) + "\",\"p1\":";
  const std::size_t pos = json.find(key);
  ASSERT_NE(pos, std::string::npos) << json;
  const double parsed = std::stod(json.substr(pos + key.size()));
  EXPECT_EQ(parsed, r.signal_probs()[out0]);
}

TEST(AnalysisSession, EngineMismatchIsRejected) {
  const Netlist a = make_c17();
  const Netlist b = make_c17();
  auto engine_on_b = make_engine("naive", b);
  EXPECT_THROW(AnalysisSession(a, std::move(engine_on_b), {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace protest
