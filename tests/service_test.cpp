// The service layer: SessionRegistry residency/LRU, the
// ServiceRequest/ServiceResponse wire protocol, ProtestService dispatch,
// and the NDJSON daemon loop.  The parity test pins the acceptance
// guarantee: a scripted serve conversation produces byte-identical
// artifact payloads to the equivalent direct AnalysisSession calls.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "analysis/json.hpp"
#include "circuits/zoo.hpp"
#include "protest/service.hpp"

namespace protest {
namespace {

ParallelConfig with_threads(unsigned n) {
  ParallelConfig cfg;
  cfg.num_threads = n;
  return cfg;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// --- protocol round-trips ---------------------------------------------------

TEST(ServiceProtocol, RequestRoundTripsEveryVerb) {
  std::vector<ServiceRequest> requests;

  ServiceRequest load;
  load.verb = ServiceVerb::LoadNetlist;
  load.id = 1;
  load.netlist = "alu";
  load.circuit = "alu";
  load.engine = "monte-carlo";
  load.seed = 7;
  load.patterns = 200'000;
  load.max_cached_results = 64;
  requests.push_back(load);

  ServiceRequest load_src;
  load_src.verb = ServiceVerb::LoadNetlist;
  load_src.id = 2;
  load_src.netlist = "inline";
  load_src.source = "module m(input a, output y);\n  assign y = !a;\n";
  requests.push_back(load_src);

  ServiceRequest analyze;
  analyze.verb = ServiceVerb::Analyze;
  analyze.id = 3;
  analyze.netlist = "alu";
  analyze.input_probs = {0.5, 0.25, 0.125};
  AnalysisRequest artifacts = AnalysisRequest::everything();
  artifacts.d_grid = {1.0, 0.98};
  artifacts.e_grid = {0.95};
  analyze.artifacts = artifacts;
  requests.push_back(analyze);

  ServiceRequest perturb;
  perturb.verb = ServiceVerb::Perturb;
  perturb.id = 4;
  perturb.netlist = "alu";
  perturb.p = 0.5;
  perturb.input_index = 3;
  perturb.new_p = 0.8125;
  perturb.screen = true;
  requests.push_back(perturb);

  ServiceRequest optimize;
  optimize.verb = ServiceVerb::Optimize;
  optimize.id = 5;
  optimize.netlist = "alu";
  optimize.n_parameter = 20'000;
  optimize.sweeps = 2;
  requests.push_back(optimize);

  ServiceRequest stats;
  stats.verb = ServiceVerb::Stats;
  stats.id = 6;
  requests.push_back(stats);

  ServiceRequest evict;
  evict.verb = ServiceVerb::Evict;
  evict.id = 7;
  evict.netlist = "alu";
  requests.push_back(evict);

  ServiceRequest shutdown;
  shutdown.verb = ServiceVerb::Shutdown;
  shutdown.id = 8;
  requests.push_back(shutdown);

  ServiceRequest submit;
  submit.verb = ServiceVerb::Submit;
  submit.id = 9;
  submit.subrequest = std::make_shared<ServiceRequest>(analyze);
  requests.push_back(submit);

  ServiceRequest poll;
  poll.verb = ServiceVerb::Poll;
  poll.id = 10;
  poll.job = 3;
  requests.push_back(poll);

  ServiceRequest wait;
  wait.verb = ServiceVerb::Wait;
  wait.id = 11;
  wait.job = 3;
  wait.timeout_ms = 2'500;
  requests.push_back(wait);

  ServiceRequest cancel;
  cancel.verb = ServiceVerb::Cancel;
  cancel.id = 12;
  cancel.job = 3;
  requests.push_back(cancel);

  ServiceRequest jobs;
  jobs.verb = ServiceVerb::Jobs;
  jobs.id = 13;
  requests.push_back(jobs);

  ServiceRequest strict_load;
  strict_load.verb = ServiceVerb::LoadNetlist;
  strict_load.id = 14;
  strict_load.netlist = "alu";
  strict_load.circuit = "alu";
  strict_load.strict = true;
  requests.push_back(strict_load);

  ServiceRequest lint;
  lint.verb = ServiceVerb::Lint;
  lint.id = 15;
  lint.netlist = "alu";
  lint.p = 0.5;
  lint.passes = {"const-gate", "prob-bounds"};
  requests.push_back(lint);

  ServiceRequest lint_faults;
  lint_faults.verb = ServiceVerb::Lint;
  lint_faults.id = 16;
  lint_faults.netlist = "alu";
  lint_faults.faults = true;
  requests.push_back(lint_faults);

  ServiceRequest fault_bounds;
  fault_bounds.verb = ServiceVerb::FaultBounds;
  fault_bounds.id = 17;
  fault_bounds.netlist = "alu";
  fault_bounds.p = 0.25;
  requests.push_back(fault_bounds);

  for (const ServiceRequest& req : requests) {
    const std::string wire = req.to_json(0);
    const ServiceRequest decoded = ServiceRequest::from_json(wire);
    // Encode(decode(encode(x))) == encode(x): the canonical form is a
    // fixed point, which pins both directions of the codec at once.
    EXPECT_EQ(decoded.to_json(0), wire) << wire;
    // And the indented rendering decodes to the same canonical form.
    EXPECT_EQ(ServiceRequest::from_json(req.to_json(2)).to_json(0), wire);
  }
}

TEST(ServiceProtocol, ResponseRoundTrips) {
  ServiceRequest req;
  req.verb = ServiceVerb::Analyze;
  req.id = 42;

  for (const char* payload :
       {"{\"engine\":\"protest\",\"p\":[0.5,0.125]}", ""}) {
    const ServiceResponse ok = ServiceResponse::success(req, payload);
    const std::string wire = ok.to_json(0);
    const ServiceResponse decoded = ServiceResponse::from_json(wire);
    EXPECT_TRUE(decoded.ok);
    EXPECT_EQ(decoded.id, 42u);
    EXPECT_EQ(decoded.verb, "analyze");
    EXPECT_EQ(decoded.result_json, payload);
    EXPECT_EQ(decoded.to_json(0), wire);
  }

  const ServiceResponse err = ServiceResponse::failure(
      7, "analyze", "unknown_netlist", "no netlist registered under 'x'");
  const ServiceResponse decoded = ServiceResponse::from_json(err.to_json(0));
  EXPECT_FALSE(decoded.ok);
  EXPECT_EQ(decoded.error_code, "unknown_netlist");
  EXPECT_EQ(decoded.error_message, "no netlist registered under 'x'");
  EXPECT_EQ(decoded.to_json(0), err.to_json(0));
}

// --- malformed requests: structured errors, never a crash -------------------

TEST(ServiceProtocol, MalformedRequestsYieldStructuredErrors) {
  ProtestService service;
  const struct {
    const char* line;
    const char* code;
  } cases[] = {
      {"this is not json", "bad_request"},
      {"{\"verb\":\"analyze\",\"id\":1,", "bad_request"},    // truncated
      {"[1,2,3]", "bad_request"},                            // not an object
      {"{\"id\":1}", "bad_request"},                         // missing verb
      {"{\"verb\":\"frobnicate\",\"id\":1}", "unknown_verb"},
      {"{\"verb\":\"analyze\",\"id\":\"seven\"}", "bad_request"},  // bad type
      {"{\"verb\":\"analyze\",\"id\":1,\"input_probs\":[0.5,\"x\"]}",
       "bad_request"},
      {"{\"verb\":\"analyze\",\"id\":1,\"wibble\":true}", "bad_request"},
      {"{\"verb\":\"analyze\",\"id\":1,\"artifacts\":[\"wibble\"]}",
       "bad_request"},
      {"{\"verb\":\"analyze\",\"id\":1}", "bad_request"},  // missing netlist
      {"{\"verb\":\"analyze\",\"id\":1,\"netlist\":\"ghost\"}",
       "unknown_netlist"},
      {"{\"verb\":\"load_netlist\",\"id\":1,\"netlist\":\"x\"}",
       "bad_request"},  // neither circuit nor source
      {"{\"verb\":\"load_netlist\",\"id\":1,\"netlist\":\"x\","
       "\"circuit\":\"no-such-circuit\"}",
       "bad_request"},
      {"{\"verb\":\"load_netlist\",\"id\":1,\"netlist\":\"x\","
       "\"circuit\":\"c17\",\"engine\":\"no-such-engine\"}",
       "bad_request"},
  };
  for (const auto& c : cases) {
    const std::string out = service.handle_line(c.line);
    const ServiceResponse resp = ServiceResponse::from_json(out);
    EXPECT_FALSE(resp.ok) << c.line;
    EXPECT_EQ(resp.error_code, c.code) << c.line << " -> " << out;
  }
  // The id is echoed even when the request cannot be fully decoded.
  const ServiceResponse resp = ServiceResponse::from_json(
      service.handle_line("{\"verb\":\"frobnicate\",\"id\":33}"));
  EXPECT_EQ(resp.id, 33u);
  EXPECT_EQ(resp.verb, "frobnicate");
}

TEST(ServiceProtocol, MalformedIdEchoesZeroWithBadRequest) {
  // A request whose id is not a non-negative integer must answer with
  // id:0 and a bad_request error — never a partially-converted value —
  // while still echoing the verb.
  ProtestService service;
  const struct {
    const char* line;
    const char* verb;
  } cases[] = {
      {"{\"verb\":\"analyze\",\"id\":-3,\"netlist\":\"x\"}", "analyze"},
      {"{\"verb\":\"analyze\",\"id\":2.5,\"netlist\":\"x\"}", "analyze"},
      {"{\"verb\":\"stats\",\"id\":1e300}", "stats"},
      {"{\"verb\":\"stats\",\"id\":\"7\"}", "stats"},
      {"{\"verb\":\"stats\",\"id\":18446744073709551615}", "stats"},
      {"{\"verb\":\"stats\",\"id\":true}", "stats"},
      {"{\"id\":-1,\"verb\":\"stats\"}", "stats"},  // id decoded before verb
  };
  for (const auto& c : cases) {
    const ServiceResponse resp =
        ServiceResponse::from_json(service.handle_line(c.line));
    EXPECT_FALSE(resp.ok) << c.line;
    EXPECT_EQ(resp.error_code, "bad_request") << c.line;
    EXPECT_EQ(resp.id, 0u) << c.line;
    EXPECT_EQ(resp.verb, c.verb) << c.line;
  }
}

TEST(ServiceProtocol, MalformedBudgetsAnswerBadRequestWithVerbEcho) {
  // timeout_ms and deadline_ms ride the same guarded integer conversion
  // as request ids: negative, fractional, string, or beyond-2^53 budgets
  // are bad_request — never truncated or wrapped into a surprise
  // deadline — and the verb is still echoed for correlation.
  ProtestService service;
  const struct {
    const char* line;
    const char* verb;
  } cases[] = {
      {"{\"verb\":\"wait\",\"id\":1,\"job\":1,\"timeout_ms\":-1}", "wait"},
      {"{\"verb\":\"wait\",\"id\":2,\"job\":1,\"timeout_ms\":2.5}", "wait"},
      {"{\"verb\":\"wait\",\"id\":3,\"job\":1,\"timeout_ms\":\"100\"}",
       "wait"},
      {"{\"verb\":\"wait\",\"id\":4,\"job\":1,\"timeout_ms\":1e300}", "wait"},
      {"{\"verb\":\"wait\",\"id\":5,\"job\":1,\"timeout_ms\":true}", "wait"},
      {"{\"verb\":\"analyze\",\"id\":6,\"netlist\":\"x\",\"deadline_ms\":-5}",
       "analyze"},
      {"{\"verb\":\"analyze\",\"id\":7,\"netlist\":\"x\",\"deadline_ms\":0.5}",
       "analyze"},
      {"{\"verb\":\"analyze\",\"id\":8,\"netlist\":\"x\","
       "\"deadline_ms\":\"50\"}",
       "analyze"},
      {"{\"verb\":\"analyze\",\"id\":9,\"netlist\":\"x\","
       "\"deadline_ms\":18446744073709551615}",
       "analyze"},
      {"{\"verb\":\"optimize\",\"id\":10,\"netlist\":\"x\","
       "\"deadline_ms\":[50]}",
       "optimize"},
  };
  std::uint64_t expected_id = 1;
  for (const auto& c : cases) {
    const ServiceResponse resp =
        ServiceResponse::from_json(service.handle_line(c.line));
    EXPECT_FALSE(resp.ok) << c.line;
    EXPECT_EQ(resp.error_code, "bad_request") << c.line;
    // The (valid) id converts before the budget fails, so it echoes.
    EXPECT_EQ(resp.id, expected_id++) << c.line;
    EXPECT_EQ(resp.verb, c.verb) << c.line;
  }
}

TEST(ServiceDeadline, ExpiredBudgetAnswersDeadlineExceeded) {
  // A deadline_ms the work cannot meet answers a structured
  // deadline_exceeded error at the engine's next cancellation
  // checkpoint — the session stays resident and serves the next request.
  ProtestService service;
  ASSERT_TRUE(ServiceResponse::from_json(service.handle_line(
                  "{\"verb\":\"load_netlist\",\"id\":1,\"netlist\":\"mc\","
                  "\"circuit\":\"stress100k\",\"engine\":\"monte-carlo\","
                  "\"patterns\":2000000}"))
                  .ok);
  const ServiceResponse late = ServiceResponse::from_json(service.handle_line(
      "{\"verb\":\"analyze\",\"id\":2,\"netlist\":\"mc\",\"p\":0.5,"
      "\"deadline_ms\":1}"));
  EXPECT_FALSE(late.ok);
  EXPECT_EQ(late.error_code, "deadline_exceeded");
  EXPECT_EQ(late.id, 2u);
  EXPECT_EQ(late.verb, "analyze");
  EXPECT_NE(late.error_message.find("deadline"), std::string::npos);
  // A generous budget on the same request sails through.
  const ServiceResponse fine = ServiceResponse::from_json(service.handle_line(
      "{\"verb\":\"stats\",\"id\":3,\"deadline_ms\":60000}"));
  EXPECT_TRUE(fine.ok) << fine.error_message;
}

TEST(ServiceProtocol, OutOfRangeValuesYieldErrorsNotCrashes) {
  ProtestService service;
  service.handle_line(
      "{\"verb\":\"load_netlist\",\"id\":1,\"netlist\":\"c\","
      "\"circuit\":\"c17\"}");
  // Probability outside [0,1], tuple arity mismatch, perturb index out of
  // range: all structured failures.
  for (const char* line :
       {"{\"verb\":\"analyze\",\"id\":2,\"netlist\":\"c\",\"p\":1.5}",
        "{\"verb\":\"analyze\",\"id\":3,\"netlist\":\"c\","
        "\"input_probs\":[0.5]}",
        "{\"verb\":\"perturb\",\"id\":4,\"netlist\":\"c\",\"p\":0.5,"
        "\"input_index\":99,\"new_p\":0.5}",
        "{\"verb\":\"perturb\",\"id\":5,\"netlist\":\"c\",\"p\":0.5,"
        "\"input_index\":0,\"new_p\":-2}"}) {
    const ServiceResponse resp =
        ServiceResponse::from_json(service.handle_line(line));
    EXPECT_FALSE(resp.ok) << line;
    EXPECT_EQ(resp.error_code, "bad_request") << line;
  }
}

// --- the registry -----------------------------------------------------------

TEST(SessionRegistry, CapEvictsLeastRecentlyUsed) {
  SessionRegistry registry(/*max_resident=*/2, with_threads(1));
  for (const char* name : {"a", "b", "c"})
    registry.register_netlist(name, make_circuit("c17"));

  registry.open("a");
  registry.open("b");
  EXPECT_EQ(registry.num_resident(), 2u);
  EXPECT_EQ(registry.resident_names(), (std::vector<std::string>{"b", "a"}));

  // Touch a so b becomes the LRU victim when c arrives.
  registry.open("a");
  registry.open("c");
  EXPECT_EQ(registry.num_resident(), 2u);
  EXPECT_EQ(registry.resident_names(), (std::vector<std::string>{"c", "a"}));
  EXPECT_EQ(registry.find_resident("b"), nullptr);

  // b revives from its registration (cold caches, same name), evicting a.
  EXPECT_NE(registry.open("b"), nullptr);
  EXPECT_EQ(registry.resident_names(), (std::vector<std::string>{"b", "c"}));

  // All three names stay registered throughout.
  EXPECT_EQ(registry.registered_names(),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SessionRegistry, EvictionNeverInvalidatesLeasedSessions) {
  SessionRegistry registry(1, with_threads(1));
  registry.register_netlist("x", make_circuit("c17"));
  const std::shared_ptr<AnalysisSession> leased = registry.open("x");
  const AnalysisResult before =
      leased->analyze(uniform_input_probs(leased->netlist(), 0.5));

  EXPECT_TRUE(registry.evict("x"));
  EXPECT_FALSE(registry.evict("x"));  // already gone
  EXPECT_EQ(registry.find_resident("x"), nullptr);

  // The lease co-owns the resident state: still queryable after eviction.
  const AnalysisResult after =
      leased->analyze(uniform_input_probs(leased->netlist(), 0.5));
  EXPECT_EQ(before.signal_probs(), after.signal_probs());

  // Reopening builds a FRESH session (cold stats) on the same name.
  const std::shared_ptr<AnalysisSession> revived = registry.open("x");
  EXPECT_EQ(revived->stats().analyze_calls, 0u);
  EXPECT_NE(revived.get(), leased.get());
}

TEST(SessionRegistry, UnknownNamesAndUnregister) {
  SessionRegistry registry(0, with_threads(1));  // 0 = unbounded
  EXPECT_THROW(registry.open("ghost"), ServiceError);
  registry.register_netlist("x", make_circuit("c17"));
  registry.open("x");
  EXPECT_TRUE(registry.unregister("x"));
  EXPECT_FALSE(registry.unregister("x"));
  EXPECT_THROW(registry.open("x"), ServiceError);
}

TEST(SessionRegistry, ResidentSessionsShareOneExecutor) {
  SessionRegistry registry(4, with_threads(2));
  const Netlist external = make_circuit("c17");
  registry.register_netlist("a", make_circuit("c17"));
  registry.register_external("b", external);
  const std::shared_ptr<AnalysisSession> a = registry.open("a");
  const std::shared_ptr<AnalysisSession> b = registry.open("b");
  ASSERT_NE(registry.executor(), nullptr);
  EXPECT_EQ(registry.executor()->num_workers(), 2u);
  EXPECT_EQ(a->options().parallel.executor, registry.executor());
  EXPECT_EQ(b->options().parallel.executor, registry.executor());
  // External registration: no netlist copy, identity preserved.
  EXPECT_EQ(&b->netlist(), &external);
}

// --- the acceptance conversation --------------------------------------------

TEST(ServeNdjson, ConversationMatchesDirectSessionByteForByte) {
  // Direct equivalent of the scripted conversation below.
  const Netlist net = make_circuit("alu");
  AnalysisSession direct(net);
  const AnalysisResult base =
      direct.analyze(uniform_input_probs(net, 0.5), AnalysisRequest{});
  const AnalysisResult perturbed = direct.perturb(base, 0, 0.25);

  std::istringstream in(
      "{\"verb\":\"load_netlist\",\"id\":1,\"netlist\":\"alu\","
      "\"circuit\":\"alu\"}\n"
      "{\"verb\":\"analyze\",\"id\":2,\"netlist\":\"alu\",\"p\":0.5}\n"
      "{\"verb\":\"perturb\",\"id\":3,\"netlist\":\"alu\",\"p\":0.5,"
      "\"input_index\":0,\"new_p\":0.25}\n"
      "{\"verb\":\"stats\",\"id\":4,\"netlist\":\"alu\"}\n"
      "{\"verb\":\"evict\",\"id\":5,\"netlist\":\"alu\"}\n"
      "{\"verb\":\"shutdown\",\"id\":6}\n"
      "{\"verb\":\"stats\",\"id\":7}\n");  // after shutdown: unanswered
  std::ostringstream out;
  ProtestService service;
  EXPECT_EQ(serve_ndjson(service, in, out), 0);

  const std::vector<std::string> lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 6u);  // the post-shutdown request was not served

  // The analyze/perturb payloads embed the direct results byte for byte.
  EXPECT_NE(lines[1].find("\"result\":" + base.to_json(0)),
            std::string::npos);
  EXPECT_NE(lines[2].find("\"result\":" + perturbed.to_json(0)),
            std::string::npos);

  // The stats verb reports the resident-session counters: the perturb's
  // base analyze was a cache hit and the perturbation went incremental.
  const ServiceResponse stats = ServiceResponse::from_json(lines[3]);
  ASSERT_TRUE(stats.ok);
  const JsonValue doc = parse_json(stats.result_json);
  EXPECT_TRUE(doc.at("resident").as_bool());
  EXPECT_EQ(doc.at("stats").at("analyze_calls").as_number(), 2.0);
  EXPECT_EQ(doc.at("stats").at("cache_hits").as_number(), 1.0);
  EXPECT_EQ(doc.at("stats").at("incremental_evals").as_number(), 1.0);
  EXPECT_GE(doc.at("stats").at("resident_results").as_number(), 2.0);

  for (const std::size_t i : {std::size_t{4}, std::size_t{5}})
    EXPECT_TRUE(ServiceResponse::from_json(lines[i]).ok) << lines[i];
  EXPECT_TRUE(service.shutdown_requested());
}

// --- lint verb and strict loads ---------------------------------------------

TEST(ServiceLint, StrictLoadRejectsProvablyStuckOutput) {
  ProtestService service;
  const std::string source =
      "module top(a -> z) { c = CONST0()  z = AND(a, c) }\\ncircuit top";
  const ServiceResponse rejected = ServiceResponse::from_json(
      service.handle_line("{\"verb\":\"load_netlist\",\"id\":1,"
                          "\"netlist\":\"bad\",\"strict\":true,\"source\":\"" +
                          source + "\"}"));
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.error_code, "lint_failed");
  EXPECT_NE(rejected.error_message.find("stuck at 0"), std::string::npos)
      << rejected.error_message;

  // Non-strict load of the same netlist is admitted; the lint verb then
  // reports the same defect instead of blocking residency.
  const ServiceResponse loaded = ServiceResponse::from_json(
      service.handle_line("{\"verb\":\"load_netlist\",\"id\":2,"
                          "\"netlist\":\"bad\",\"source\":\"" +
                          source + "\"}"));
  ASSERT_TRUE(loaded.ok) << loaded.error_message;
  const ServiceResponse linted = ServiceResponse::from_json(service.handle_line(
      "{\"verb\":\"lint\",\"id\":3,\"netlist\":\"bad\"}"));
  ASSERT_TRUE(linted.ok) << linted.error_message;
  const JsonValue report = parse_json(linted.result_json).at("report");
  EXPECT_EQ(report.at("summary").at("errors").as_number(), 1.0);
  EXPECT_EQ(report.at("summary").at("clean").as_bool(), false);
}

TEST(ServiceLint, StrictLoadAdmitsCleanNetlistAndStatsCountRuns) {
  ProtestService service;
  const ServiceResponse loaded = ServiceResponse::from_json(
      service.handle_line("{\"verb\":\"load_netlist\",\"id\":1,"
                          "\"netlist\":\"alu\",\"circuit\":\"alu\","
                          "\"strict\":true}"));
  ASSERT_TRUE(loaded.ok) << loaded.error_message;
  const JsonValue load_doc = parse_json(loaded.result_json);
  EXPECT_EQ(load_doc.at("lint").at("errors").as_number(), 0.0);

  const ServiceResponse linted = ServiceResponse::from_json(service.handle_line(
      "{\"verb\":\"lint\",\"id\":2,\"netlist\":\"alu\","
      "\"passes\":[\"const-gate\",\"structure\"]}"));
  ASSERT_TRUE(linted.ok) << linted.error_message;
  const JsonValue report = parse_json(linted.result_json).at("report");
  EXPECT_EQ(report.at("passes").as_array().size(), 2u);

  const ServiceResponse stats = ServiceResponse::from_json(service.handle_line(
      "{\"verb\":\"stats\",\"id\":3,\"netlist\":\"alu\"}"));
  ASSERT_TRUE(stats.ok);
  const JsonValue doc = parse_json(stats.result_json);
  EXPECT_EQ(doc.at("stats").at("lint").at("runs").as_number(), 2.0);
}

TEST(ServiceFaultBounds, VerbReportsSummaryAndPerFaultIntervals) {
  ProtestService service;
  ASSERT_TRUE(ServiceResponse::from_json(
                  service.handle_line("{\"verb\":\"load_netlist\",\"id\":1,"
                                      "\"netlist\":\"c17\",\"circuit\":\"c17\"}"))
                  .ok);
  const ServiceResponse r = ServiceResponse::from_json(service.handle_line(
      "{\"verb\":\"fault_bounds\",\"id\":2,\"netlist\":\"c17\"}"));
  ASSERT_TRUE(r.ok) << r.error_message;
  const JsonValue doc = parse_json(r.result_json);
  const JsonValue& summary = doc.at("summary");
  const double total = summary.at("faults").as_number();
  EXPECT_GT(total, 0.0);
  // c17 is irredundant; the counts partition the fault list.
  EXPECT_EQ(summary.at("proven_undetectable").as_number(), 0.0);
  EXPECT_EQ(summary.at("proven_detectable").as_number() +
                summary.at("uncertain").as_number(),
            total);
  EXPECT_GT(summary.at("settled_fraction").as_number(), 0.0);
  const auto& faults = doc.at("faults").as_array();
  ASSERT_EQ(static_cast<double>(faults.size()), total);
  for (const JsonValue& f : faults) {
    EXPECT_LE(f.at("lo").as_number(), f.at("hi").as_number());
    EXPECT_FALSE(f.at("fault").as_string().empty());
    EXPECT_FALSE(f.at("verdict").as_string().empty());
  }
  // Unnamed netlists answer unknown_netlist like every session verb.
  const ServiceResponse missing = ServiceResponse::from_json(service.handle_line(
      "{\"verb\":\"fault_bounds\",\"id\":3,\"netlist\":\"nope\"}"));
  EXPECT_FALSE(missing.ok);
  EXPECT_EQ(missing.error_code, "unknown_netlist");
}

TEST(ServiceLint, FaultsFlagAddsFaultPasses) {
  ProtestService service;
  ASSERT_TRUE(ServiceResponse::from_json(
                  service.handle_line("{\"verb\":\"load_netlist\",\"id\":1,"
                                      "\"netlist\":\"c17\",\"circuit\":\"c17\"}"))
                  .ok);
  const ServiceResponse r = ServiceResponse::from_json(service.handle_line(
      "{\"verb\":\"lint\",\"id\":2,\"netlist\":\"c17\",\"faults\":true}"));
  ASSERT_TRUE(r.ok) << r.error_message;
  const JsonValue report = parse_json(r.result_json).at("report");
  bool saw = false;
  for (const JsonValue& p : report.at("passes").as_array())
    saw = saw || p.as_string() == "redundant-fault";
  EXPECT_TRUE(saw);
}

TEST(ServiceLint, UnknownPassIsABadRequest) {
  ProtestService service;
  ASSERT_TRUE(ServiceResponse::from_json(
                  service.handle_line("{\"verb\":\"load_netlist\",\"id\":1,"
                                      "\"netlist\":\"alu\",\"circuit\":\"alu\"}"))
                  .ok);
  const ServiceResponse r = ServiceResponse::from_json(service.handle_line(
      "{\"verb\":\"lint\",\"id\":2,\"netlist\":\"alu\","
      "\"passes\":[\"bogus\"]}"));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error_code, "bad_request");
}

// --- async job verbs --------------------------------------------------------

TEST(AsyncVerbs, WaitAndPollEmbedTheSynchronousResponseByteForByte) {
  ProtestService service;
  ASSERT_TRUE(ServiceResponse::from_json(
                  service.handle_line(
                      "{\"verb\":\"load_netlist\",\"id\":1,\"netlist\":\"c\","
                      "\"circuit\":\"c17\"}"))
                  .ok);

  // The synchronous answer is the reference; the async ticket must hand
  // back the exact same ServiceResponse bytes under "response".
  const std::string inner =
      "{\"verb\":\"analyze\",\"id\":2,\"netlist\":\"c\",\"p\":0.5}";
  const std::string sync = service.handle_line(inner);

  const ServiceResponse submit = ServiceResponse::from_json(
      service.handle_line("{\"verb\":\"submit\",\"id\":3,\"request\":" +
                          inner + "}"));
  ASSERT_TRUE(submit.ok);
  const JsonValue ticket = parse_json(submit.result_json);
  EXPECT_EQ(ticket.at("verb").as_string(), "analyze");
  EXPECT_EQ(ticket.at("state").as_string(), "queued");
  const std::string job = std::to_string(
      static_cast<std::uint64_t>(ticket.at("job").as_number()));

  const ServiceResponse waited = ServiceResponse::from_json(
      service.handle_line("{\"verb\":\"wait\",\"id\":4,\"job\":" + job + "}"));
  ASSERT_TRUE(waited.ok);
  EXPECT_NE(waited.result_json.find("\"state\":\"done\""), std::string::npos);
  EXPECT_NE(waited.result_json.find("\"response\":" + sync),
            std::string::npos)
      << waited.result_json;

  // poll() after completion returns the identical payload, repeatedly.
  const ServiceResponse polled = ServiceResponse::from_json(
      service.handle_line("{\"verb\":\"poll\",\"id\":5,\"job\":" + job + "}"));
  ASSERT_TRUE(polled.ok);
  EXPECT_EQ(polled.result_json, waited.result_json);

  // The jobs listing shows the finished ticket (payloads omitted).
  const ServiceResponse listing = ServiceResponse::from_json(
      service.handle_line("{\"verb\":\"jobs\",\"id\":6}"));
  ASSERT_TRUE(listing.ok);
  const JsonValue jobs_doc = parse_json(listing.result_json);
  ASSERT_EQ(jobs_doc.at("jobs").as_array().size(), 1u);
  EXPECT_EQ(jobs_doc.at("jobs").as_array()[0].at("state").as_string(),
            "done");
}

TEST(AsyncVerbs, SubmittedFailuresEmbedTheErrorResponse) {
  // A submitted verb that FAILS (unknown netlist) still completes as a
  // done job whose embedded response is the synchronous error response —
  // protocol failures are results, not job crashes.
  ProtestService service;
  const std::string inner =
      "{\"verb\":\"analyze\",\"id\":7,\"netlist\":\"ghost\"}";
  const std::string sync = service.handle_line(inner);
  const ServiceResponse submit = ServiceResponse::from_json(
      service.handle_line("{\"verb\":\"submit\",\"id\":8,\"request\":" +
                          inner + "}"));
  ASSERT_TRUE(submit.ok);
  const std::string job = std::to_string(static_cast<std::uint64_t>(
      parse_json(submit.result_json).at("job").as_number()));
  const ServiceResponse waited = ServiceResponse::from_json(
      service.handle_line("{\"verb\":\"wait\",\"id\":9,\"job\":" + job + "}"));
  ASSERT_TRUE(waited.ok);
  EXPECT_NE(waited.result_json.find("\"state\":\"done\""), std::string::npos);
  EXPECT_NE(waited.result_json.find("\"response\":" + sync),
            std::string::npos);
  EXPECT_NE(waited.result_json.find("unknown_netlist"), std::string::npos);
}

TEST(AsyncVerbs, JobControlErrorsAreStructured) {
  ProtestService service;
  const struct {
    const char* line;
    const char* code;
  } cases[] = {
      // poll/wait/cancel of a ticket that was never issued
      {"{\"verb\":\"poll\",\"id\":1,\"job\":42}", "unknown_job"},
      {"{\"verb\":\"wait\",\"id\":2,\"job\":42}", "unknown_job"},
      {"{\"verb\":\"cancel\",\"id\":3,\"job\":42}", "unknown_job"},
      // missing members
      {"{\"verb\":\"poll\",\"id\":4}", "bad_request"},
      {"{\"verb\":\"submit\",\"id\":5}", "bad_request"},
      // only the work verbs analyze/perturb/optimize are submittable
      {"{\"verb\":\"submit\",\"id\":6,\"request\":{\"verb\":\"shutdown\"}}",
       "bad_request"},
      {"{\"verb\":\"submit\",\"id\":7,\"request\":{\"verb\":\"submit\"}}",
       "bad_request"},
      {"{\"verb\":\"submit\",\"id\":8,\"request\":{\"verb\":\"wait\","
       "\"job\":1}}",
       "bad_request"},
      {"{\"verb\":\"submit\",\"id\":11,\"request\":{\"verb\":\"load_netlist\","
       "\"netlist\":\"x\",\"circuit\":\"c17\"}}",
       "bad_request"},
      {"{\"verb\":\"submit\",\"id\":12,\"request\":{\"verb\":\"evict\","
       "\"netlist\":\"x\"}}",
       "bad_request"},
      // a malformed wrapped request surfaces at decode time
      {"{\"verb\":\"submit\",\"id\":9,\"request\":{\"wibble\":1}}",
       "bad_request"},
      {"{\"verb\":\"submit\",\"id\":10,\"request\":7}", "bad_request"},
  };
  for (const auto& c : cases) {
    const ServiceResponse resp =
        ServiceResponse::from_json(service.handle_line(c.line));
    EXPECT_FALSE(resp.ok) << c.line;
    EXPECT_EQ(resp.error_code, c.code) << c.line << " -> "
                                       << service.handle_line(c.line);
  }
}

// --- pipelined dispatch -----------------------------------------------------

/// The workload both dispatch modes must answer identically: a load, a
/// spread of analyzes/perturbs (distinct ids), an evict (a barrier in
/// pipelined mode) with a revival analyze behind it, and a shutdown.
std::string pipelined_script() {
  return
      "{\"verb\":\"load_netlist\",\"id\":1,\"netlist\":\"alu\","
      "\"circuit\":\"alu\"}\n"
      "{\"verb\":\"analyze\",\"id\":2,\"netlist\":\"alu\",\"p\":0.5}\n"
      "{\"verb\":\"analyze\",\"id\":3,\"netlist\":\"alu\",\"p\":0.25}\n"
      "{\"verb\":\"perturb\",\"id\":4,\"netlist\":\"alu\",\"p\":0.5,"
      "\"input_index\":0,\"new_p\":0.125}\n"
      "{\"verb\":\"analyze\",\"id\":5,\"netlist\":\"alu\",\"p\":0.75}\n"
      "{\"verb\":\"perturb\",\"id\":6,\"netlist\":\"alu\",\"p\":0.5,"
      "\"input_index\":1,\"new_p\":0.875}\n"
      "{\"verb\":\"evict\",\"id\":7,\"netlist\":\"alu\"}\n"
      "{\"verb\":\"analyze\",\"id\":8,\"netlist\":\"alu\",\"p\":0.5}\n"
      "{\"verb\":\"shutdown\",\"id\":9}\n";
}

TEST(ServePipelined, OutOfOrderConversationYieldsTheSerialResponseSet) {
  // Serial reference run.
  std::istringstream serial_in(pipelined_script());
  std::ostringstream serial_out;
  ProtestService serial_service;
  EXPECT_EQ(serve_ndjson(serial_service, serial_in, serial_out), 0);
  std::vector<std::string> serial_lines = lines_of(serial_out.str());
  ASSERT_EQ(serial_lines.size(), 9u);

  // Pipelined run: up to 3 work verbs in flight, responses correlated by
  // id with UNSPECIFIED order — the response SET must match byte for
  // byte.
  std::istringstream pipe_in(pipelined_script());
  std::ostringstream pipe_out;
  ProtestService pipe_service;
  ServeOptions options;
  options.max_inflight = 3;
  EXPECT_EQ(serve_ndjson(pipe_service, pipe_in, pipe_out, options), 0);
  std::vector<std::string> pipe_lines = lines_of(pipe_out.str());
  ASSERT_EQ(pipe_lines.size(), 9u);
  EXPECT_TRUE(pipe_service.shutdown_requested());

  std::sort(serial_lines.begin(), serial_lines.end());
  std::sort(pipe_lines.begin(), pipe_lines.end());
  EXPECT_EQ(serial_lines, pipe_lines);
}

TEST(ServePipelined, TicketConversationInterleavesWithWorkVerbs) {
  // submit/poll/wait are INLINE in pipelined mode (deterministic order),
  // so a ticketed long job rides alongside out-of-order work verbs.
  const std::string script =
      "{\"verb\":\"load_netlist\",\"id\":1,\"netlist\":\"c\","
      "\"circuit\":\"c17\"}\n"
      "{\"verb\":\"submit\",\"id\":2,\"request\":{\"verb\":\"analyze\","
      "\"id\":100,\"netlist\":\"c\",\"p\":0.5}}\n"
      "{\"verb\":\"analyze\",\"id\":3,\"netlist\":\"c\",\"p\":0.25}\n"
      "{\"verb\":\"wait\",\"id\":4,\"job\":1}\n"
      "{\"verb\":\"shutdown\",\"id\":5}\n";
  std::istringstream in(script);
  std::ostringstream out;
  ProtestService service;
  ServeOptions options;
  options.max_inflight = 2;
  EXPECT_EQ(serve_ndjson(service, in, out, options), 0);
  const std::vector<std::string> lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 5u);
  for (const std::string& line : lines)
    EXPECT_TRUE(ServiceResponse::from_json(line).ok) << line;

  // The waited ticket embeds the analyze response with the inner id.
  const std::string direct = service.handle_line(
      "{\"verb\":\"analyze\",\"id\":100,\"netlist\":\"c\",\"p\":0.5}");
  bool found = false;
  for (const std::string& line : lines)
    if (line.find("\"response\":" + direct) != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

TEST(ServeNdjson, BlankLinesAndCrLfAreTolerated) {
  std::istringstream in(
      "\n"
      "   \n"
      "{\"verb\":\"stats\",\"id\":1}\r\n"
      "{\"verb\":\"shutdown\",\"id\":2}\n");
  std::ostringstream out;
  ProtestService service;
  serve_ndjson(service, in, out);
  const std::vector<std::string> lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(ServiceResponse::from_json(lines[0]).ok);
}

// --- concurrency ------------------------------------------------------------

TEST(ProtestService, ConcurrentMultiNetlistRequests) {
  // Several threads hammer two resident netlists through every hot verb;
  // every response must be ok and analyze payloads must equal the serial
  // answer.  Run under TSan in CI, with all sessions sharing one
  // executor.
  ServiceConfig cfg;
  cfg.parallel.num_threads = 2;
  ProtestService service(cfg);
  for (const char* name : {"c17", "mult4"}) {
    ServiceRequest load;
    load.verb = ServiceVerb::LoadNetlist;
    load.netlist = name;
    load.circuit = name;
    ASSERT_TRUE(service.handle(load).ok);
  }

  std::string expected[2];
  for (int c = 0; c < 2; ++c) {
    ServiceRequest analyze;
    analyze.verb = ServiceVerb::Analyze;
    analyze.netlist = c == 0 ? "c17" : "mult4";
    analyze.p = 0.5;
    const ServiceResponse resp = service.handle(analyze);
    ASSERT_TRUE(resp.ok);
    expected[c] = resp.result_json;
  }

  constexpr int kThreads = 4, kRounds = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        const int c = (t + r) % 2;
        const std::string name = c == 0 ? "c17" : "mult4";
        ServiceRequest req;
        req.netlist = name;
        switch (r % 3) {
          case 0:
            req.verb = ServiceVerb::Analyze;
            req.p = 0.5;
            break;
          case 1:
            req.verb = ServiceVerb::Perturb;
            req.p = 0.5;
            req.input_index = 0;
            req.new_p = 0.25;
            break;
          default:
            req.verb = ServiceVerb::Stats;
            break;
        }
        const ServiceResponse resp = service.handle(req);
        if (!resp.ok) ++failures;
        if (req.verb == ServiceVerb::Analyze && resp.result_json != expected[c])
          ++failures;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// --- TCP front end ----------------------------------------------------------

#if defined(__unix__) || defined(__APPLE__)
}  // namespace
}  // namespace protest

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace protest {
namespace {

TEST(ServeTcp, LoopbackConversation) {
  ASSERT_TRUE(tcp_serve_supported());
  ProtestService service;
  std::atomic<std::uint16_t> port{0};
  std::atomic<bool> serve_failed{false};
  std::ostringstream log;
  std::thread server([&] {
    try {
      serve_tcp(service, 0, log, &port);
    } catch (const std::exception&) {
      serve_failed.store(true);
    }
  });
  while (port.load() == 0 && !serve_failed.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  if (serve_failed.load()) {
    server.join();
    GTEST_SKIP() << "loopback sockets unavailable in this environment";
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  timeval timeout{10, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port.load());
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    // Stop the server and bail out rather than hang.
    ServiceRequest shutdown;
    shutdown.verb = ServiceVerb::Shutdown;
    service.handle(shutdown);
    server.join();
    ::close(fd);
    GTEST_SKIP() << "cannot connect over loopback in this environment";
  }

  const std::string script =
      "{\"verb\":\"load_netlist\",\"id\":1,\"netlist\":\"c17\","
      "\"circuit\":\"c17\"}\n"
      "{\"verb\":\"analyze\",\"id\":2,\"netlist\":\"c17\",\"p\":0.5}\n"
      "{\"verb\":\"shutdown\",\"id\":3}\n";
  ASSERT_EQ(::send(fd, script.data(), script.size(), 0),
            static_cast<ssize_t>(script.size()));

  std::string received;
  char buf[4096];
  while (std::count(received.begin(), received.end(), '\n') < 3) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    received.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  server.join();

  const std::vector<std::string> lines = lines_of(received);
  ASSERT_EQ(lines.size(), 3u) << received;
  for (const std::string& line : lines)
    EXPECT_TRUE(ServiceResponse::from_json(line).ok) << line;
  EXPECT_NE(log.str().find("listening on 127.0.0.1:"), std::string::npos);
  EXPECT_TRUE(service.shutdown_requested());
}

TEST(ServeTcp, PipelinedLoopbackConversation) {
  // The TCP front end with --inflight: work responses may arrive out of
  // order; every request must still be answered exactly once, correlated
  // by id, before the connection winds down.
  ASSERT_TRUE(tcp_serve_supported());
  ProtestService service;
  std::atomic<std::uint16_t> port{0};
  std::atomic<bool> serve_failed{false};
  std::ostringstream log;
  ServeOptions options;
  options.max_inflight = 2;
  std::thread server([&] {
    try {
      serve_tcp(service, 0, log, &port, options);
    } catch (const std::exception&) {
      serve_failed.store(true);
    }
  });
  while (port.load() == 0 && !serve_failed.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  if (serve_failed.load()) {
    server.join();
    GTEST_SKIP() << "loopback sockets unavailable in this environment";
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  timeval timeout{10, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port.load());
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    ServiceRequest shutdown;
    shutdown.verb = ServiceVerb::Shutdown;
    service.handle(shutdown);
    server.join();
    ::close(fd);
    GTEST_SKIP() << "cannot connect over loopback in this environment";
  }

  const std::string script =
      "{\"verb\":\"load_netlist\",\"id\":1,\"netlist\":\"c17\","
      "\"circuit\":\"c17\"}\n"
      "{\"verb\":\"analyze\",\"id\":2,\"netlist\":\"c17\",\"p\":0.5}\n"
      "{\"verb\":\"analyze\",\"id\":3,\"netlist\":\"c17\",\"p\":0.25}\n"
      "{\"verb\":\"perturb\",\"id\":4,\"netlist\":\"c17\",\"p\":0.5,"
      "\"input_index\":0,\"new_p\":0.75}\n"
      "{\"verb\":\"shutdown\",\"id\":5}\n";
  ASSERT_EQ(::send(fd, script.data(), script.size(), 0),
            static_cast<ssize_t>(script.size()));

  std::string received;
  char buf[4096];
  while (std::count(received.begin(), received.end(), '\n') < 5) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    received.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  server.join();

  const std::vector<std::string> lines = lines_of(received);
  ASSERT_EQ(lines.size(), 5u) << received;
  std::vector<std::uint64_t> ids;
  for (const std::string& line : lines) {
    const ServiceResponse resp = ServiceResponse::from_json(line);
    EXPECT_TRUE(resp.ok) << line;
    ids.push_back(resp.id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(service.shutdown_requested());
}

TEST(ServeTcp, EarlyDisconnectDoesNotKillTheDaemon) {
  // A client that sends requests and resets the connection without
  // reading the (large) responses must only fail ITS connection — the
  // daemon's writes into the dead socket must not raise a process-wide
  // SIGPIPE.  Without MSG_NOSIGNAL this whole test binary dies.
  ProtestService service;
  std::atomic<std::uint16_t> port{0};
  std::atomic<bool> serve_failed{false};
  std::ostringstream log;
  std::thread server([&] {
    try {
      serve_tcp(service, 0, log, &port);
    } catch (const std::exception&) {
      serve_failed.store(true);
    }
  });
  while (port.load() == 0 && !serve_failed.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  if (serve_failed.load()) {
    server.join();
    GTEST_SKIP() << "loopback sockets unavailable in this environment";
  }

  const auto connect_client = [&]() -> int {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port.load());
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) < 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  };

  const int rude = connect_client();
  if (rude < 0) {
    ServiceRequest shutdown;
    shutdown.verb = ServiceVerb::Shutdown;
    service.handle(shutdown);
    server.join();
    GTEST_SKIP() << "cannot connect over loopback in this environment";
  }
  // SO_LINGER(0) turns close() into a hard RST, so the daemon's next
  // write into this socket fails immediately instead of buffering.
  const linger hard_reset{1, 0};
  ::setsockopt(rude, SOL_SOCKET, SO_LINGER, &hard_reset, sizeof hard_reset);
  const std::string rude_script =
      "{\"verb\":\"load_netlist\",\"id\":1,\"netlist\":\"alu\","
      "\"circuit\":\"alu\"}\n"
      "{\"verb\":\"analyze\",\"id\":2,\"netlist\":\"alu\",\"p\":0.5}\n"
      "{\"verb\":\"analyze\",\"id\":3,\"netlist\":\"alu\",\"p\":0.25}\n";
  ::send(rude, rude_script.data(), rude_script.size(), 0);
  ::close(rude);  // never reads a byte of the ~35 KB responses

  // The daemon must still serve a well-behaved client afterwards.
  std::string received;
  for (int attempt = 0; attempt < 50 && received.empty(); ++attempt) {
    const int polite = connect_client();
    ASSERT_GE(polite, 0);
    timeval timeout{10, 0};
    ::setsockopt(polite, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    const std::string script = "{\"verb\":\"stats\",\"id\":4}\n";
    ::send(polite, script.data(), script.size(), 0);
    char buf[4096];
    const ssize_t n = ::recv(polite, buf, sizeof buf, 0);
    if (n > 0) received.assign(buf, static_cast<std::size_t>(n));
    ::close(polite);
  }
  ASSERT_FALSE(received.empty());
  EXPECT_TRUE(ServiceResponse::from_json(lines_of(received)[0]).ok)
      << received;

  ServiceRequest shutdown;
  shutdown.verb = ServiceVerb::Shutdown;
  EXPECT_TRUE(service.handle(shutdown).ok);
  server.join();
}
TEST(ServeTcp, ConnectionLossCancelsInlineWorkButKeepsTickets) {
  // A pipelined connection dropped with work in flight: the inline
  // request's cancellation token trips (no thread keeps crunching for a
  // dead socket), while the TICKETED job — owned by the service, not the
  // connection — stays pollable from a brand-new connection.  Run under
  // TSan this also proves the dropped connection leaks no threads.
  ProtestService service;
  std::atomic<std::uint16_t> port{0};
  std::atomic<bool> serve_failed{false};
  std::ostringstream log;
  ServeOptions options;
  options.max_inflight = 3;
  std::thread server([&] {
    try {
      serve_tcp(service, 0, log, &port, options);
    } catch (const std::exception&) {
      serve_failed.store(true);
    }
  });
  while (port.load() == 0 && !serve_failed.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  if (serve_failed.load()) {
    server.join();
    GTEST_SKIP() << "loopback sockets unavailable in this environment";
  }

  const auto connect_client = [&]() -> int {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port.load());
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) < 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  };

  const int rude = connect_client();
  if (rude < 0) {
    ServiceRequest shutdown;
    shutdown.verb = ServiceVerb::Shutdown;
    service.handle(shutdown);
    server.join();
    GTEST_SKIP() << "cannot connect over loopback in this environment";
  }
  const linger hard_reset{1, 0};
  ::setsockopt(rude, SOL_SOCKET, SO_LINGER, &hard_reset, sizeof hard_reset);
  // Fast netlist for the ticket, deliberately slow one for the inline
  // analyze that will be abandoned mid-flight.
  const std::string rude_script =
      "{\"verb\":\"load_netlist\",\"id\":1,\"netlist\":\"c17\","
      "\"circuit\":\"c17\"}\n"
      "{\"verb\":\"load_netlist\",\"id\":2,\"netlist\":\"slow\","
      "\"circuit\":\"stress100k\",\"engine\":\"monte-carlo\","
      "\"patterns\":2000000}\n"
      "{\"verb\":\"submit\",\"id\":3,\"request\":{\"verb\":\"analyze\","
      "\"id\":100,\"netlist\":\"c17\",\"p\":0.5}}\n"
      "{\"verb\":\"analyze\",\"id\":4,\"netlist\":\"slow\",\"p\":0.5}\n";
  ::send(rude, rude_script.data(), rude_script.size(), 0);
  // Give the slow analyze a moment to enter a dispatch slot, then reset
  // the connection under it.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ::close(rude);

  // The ticket resolves for a NEW connection: the job belongs to the
  // service, not to the connection that submitted it.
  std::string received;
  for (int attempt = 0; attempt < 50 && received.empty(); ++attempt) {
    const int polite = connect_client();
    ASSERT_GE(polite, 0);
    timeval timeout{30, 0};
    ::setsockopt(polite, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    const std::string script =
        "{\"verb\":\"wait\",\"id\":5,\"job\":1,\"timeout_ms\":20000}\n";
    ::send(polite, script.data(), script.size(), 0);
    char buf[65536];
    const ssize_t n = ::recv(polite, buf, sizeof buf, 0);
    if (n > 0) received.assign(buf, static_cast<std::size_t>(n));
    ::close(polite);
  }
  ASSERT_FALSE(received.empty());
  const ServiceResponse waited =
      ServiceResponse::from_json(lines_of(received)[0]);
  ASSERT_TRUE(waited.ok) << received;
  EXPECT_NE(waited.result_json.find("\"state\":\"done\""), std::string::npos)
      << waited.result_json;

  // Shutdown returns only after connection threads wind down; a leaked
  // worker thread stuck in the dead connection's analyze would hang the
  // join (and TSan would flag the leak).
  ServiceRequest shutdown;
  shutdown.verb = ServiceVerb::Shutdown;
  EXPECT_TRUE(service.handle(shutdown).ok);
  server.join();
}
#endif  // POSIX sockets

}  // namespace
}  // namespace protest