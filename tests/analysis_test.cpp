// Statistics and table formatting used by the experiment harnesses, plus
// the JSON layer (writer hardening + the recursive-descent reader).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "analysis/json.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"

namespace protest {
namespace {

TEST(Stats, PerfectCorrelation) {
  const double x[] = {0.1, 0.2, 0.3, 0.9};
  const double y[] = {0.2, 0.4, 0.6, 1.8};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
  const double z[] = {-0.1, -0.2, -0.3, -0.9};
  EXPECT_NEAR(pearson_correlation(x, z), -1.0, 1e-12);
}

TEST(Stats, ZeroForConstantSeries) {
  const double x[] = {0.5, 0.5, 0.5};
  const double y[] = {0.1, 0.9, 0.3};
  EXPECT_DOUBLE_EQ(pearson_correlation(x, y), 0.0);
}

TEST(Stats, UncorrelatedNearZero) {
  std::vector<double> x, y;
  // A deterministic "checkerboard" with zero linear relation.
  for (int i = 0; i < 1000; ++i) {
    x.push_back(i % 2);
    y.push_back((i / 2) % 2);
  }
  EXPECT_NEAR(pearson_correlation(x, y), 0.0, 0.01);
}

TEST(Stats, CompareEstimatesFields) {
  const double est[] = {0.5, 0.2, 0.9};
  const double ref[] = {0.4, 0.2, 1.0};
  const ErrorStats s = compare_estimates(est, ref);
  EXPECT_NEAR(s.max_abs_error, 0.1, 1e-12);
  EXPECT_NEAR(s.mean_abs_error, 0.2 / 3, 1e-12);
  EXPECT_NEAR(s.mean_signed_error, 0.0, 1e-12);
  EXPECT_EQ(s.count, 3u);
}

TEST(Stats, SignedErrorShowsUnderestimationBias) {
  // est systematically below ref, like fig. 6 (P_SIM > P_PROT).
  const double est[] = {0.1, 0.2, 0.3};
  const double ref[] = {0.3, 0.4, 0.5};
  EXPECT_NEAR(compare_estimates(est, ref).mean_signed_error, -0.2, 1e-12);
}

TEST(Stats, ScatterSeriesFormat) {
  const double x[] = {0.25};
  const double y[] = {0.75};
  EXPECT_EQ(scatter_series(x, y), "0.25 0.75\n");
}

TEST(Stats, AsciiScatterMarksPoints) {
  const double x[] = {0.0, 1.0};
  const double y[] = {0.0, 1.0};
  const std::string plot = ascii_scatter(x, y, 11, 5);
  EXPECT_NE(plot.find('.'), std::string::npos);
  EXPECT_NE(plot.find("P_PROT"), std::string::npos);
}

TEST(Stats, Validation) {
  const double x[] = {0.1};
  const double y2[] = {0.1, 0.2};
  EXPECT_THROW(pearson_correlation(x, y2), std::invalid_argument);
  EXPECT_THROW(compare_estimates(x, y2), std::invalid_argument);
}

TEST(Table, AlignsColumns) {
  TextTable t({"circuit", "N"});
  t.add_row({"ALU", "212"});
  t.add_row({"MULT", "607"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| circuit | N   |"), std::string::npos);
  EXPECT_NE(s.find("| ALU     | 212 |"), std::string::npos);
}

TEST(Table, RejectsBadRows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt(0.12345, 3), "0.123");
  EXPECT_EQ(fmt(2.0, 1), "2.0");
  EXPECT_EQ(fmt_int(1234567), "1 234 567");
  EXPECT_EQ(fmt_int(42), "42");
}

// --- JsonWriter hardening ---------------------------------------------------

TEST(JsonWriter, EscapesControlCharacters) {
  // Every control character < 0x20 must come out escaped — either as the
  // short form or as \u00XX — so NDJSON consumers never see a raw
  // control byte inside a string.
  EXPECT_EQ(JsonWriter::quote("a\nb\tc\rd"), "\"a\\nb\\tc\\rd\"");
  EXPECT_EQ(JsonWriter::quote(std::string_view("x\x01y\x1f", 4)),
            "\"x\\u0001y\\u001f\"");
  EXPECT_EQ(JsonWriter::quote("quote\" back\\slash"),
            "\"quote\\\" back\\\\slash\"");
}

TEST(JsonWriter, NonFiniteDoublesEmitNull) {
  JsonWriter w(0);
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.value(-std::numeric_limits<double>::infinity());
  w.value(1.5);
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null,null,1.5]");
}

TEST(JsonWriter, DoublesRoundTripShortest) {
  JsonWriter w(0);
  w.begin_array();
  w.value(0.1);
  w.value(1.0 / 3.0);
  w.value(1e-300);
  w.end_array();
  const JsonValue doc = parse_json(w.str());
  const JsonValue::Array& a = doc.as_array();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0].as_number(), 0.1);
  EXPECT_EQ(a[1].as_number(), 1.0 / 3.0);
  EXPECT_EQ(a[2].as_number(), 1e-300);
}

TEST(JsonWriter, RawSplicesVerbatim) {
  JsonWriter w(0);
  w.begin_object();
  w.key("result").raw("{\"p\":0.25}");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"result\":{\"p\":0.25}}");
}

// --- JsonValue / parse_json -------------------------------------------------

TEST(JsonReader, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_EQ(parse_json("42").as_number(), 42.0);
  EXPECT_EQ(parse_json("-0.5e2").as_number(), -50.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
  EXPECT_TRUE(parse_json("  [ ]\n").as_array().empty());
  EXPECT_TRUE(parse_json("{}").as_object().empty());
}

TEST(JsonReader, ParsesNestedAndPreservesOrder) {
  const JsonValue doc =
      parse_json("{\"b\":[1,2,{\"c\":null}],\"a\":{\"x\":true}}");
  const JsonValue::Object& o = doc.as_object();
  ASSERT_EQ(o.size(), 2u);
  EXPECT_EQ(o[0].first, "b");  // insertion order, not sorted
  EXPECT_EQ(o[1].first, "a");
  EXPECT_EQ(doc.at("b").as_array()[1].as_number(), 2.0);
  EXPECT_TRUE(doc.at("b").as_array()[2].at("c").is_null());
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(doc.at("missing"), std::runtime_error);
}

TEST(JsonReader, DecodesEscapes) {
  EXPECT_EQ(parse_json("\"a\\n\\t\\\\\\\"\\/\"").as_string(), "a\n\t\\\"/");
  EXPECT_EQ(parse_json("\"\\u0041\\u00e9\"").as_string(), "A\xc3\xa9");
  // Surrogate pair U+1F600 -> 4-byte UTF-8.
  EXPECT_EQ(parse_json("\"\\ud83d\\ude00\"").as_string(),
            "\xf0\x9f\x98\x80");
  // Writer's control-character form decodes back.
  EXPECT_EQ(parse_json(JsonWriter::quote("x\x01y")).as_string(), "x\x01y");
}

TEST(JsonReader, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), JsonParseError);
  EXPECT_THROW(parse_json("{\"a\":1,}"), JsonParseError);   // trailing comma
  EXPECT_THROW(parse_json("{\"a\" 1}"), JsonParseError);    // missing colon
  EXPECT_THROW(parse_json("[1 2]"), JsonParseError);
  EXPECT_THROW(parse_json("\"unterminated"), JsonParseError);
  EXPECT_THROW(parse_json("\"bad\\q\""), JsonParseError);
  EXPECT_THROW(parse_json("\"\\ud83d\""), JsonParseError);  // lone surrogate
  EXPECT_THROW(parse_json("\"raw\ntab\""), JsonParseError); // bare control
  EXPECT_THROW(parse_json("01"), JsonParseError);           // leading zero
  EXPECT_THROW(parse_json("1."), JsonParseError);
  EXPECT_THROW(parse_json("nul"), JsonParseError);
  EXPECT_THROW(parse_json("{} trailing"), JsonParseError);
  try {
    parse_json("[1,");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.offset(), 3u);  // failure position is reported
  }
}

TEST(JsonReader, DepthBombFailsCleanly) {
  // 100k unclosed arrays must raise JsonParseError, not overflow the
  // stack — the parser caps nesting.
  const std::string bomb(100'000, '[');
  EXPECT_THROW(parse_json(bomb), JsonParseError);
}

TEST(JsonReader, TypeMismatchesThrowDescriptively) {
  const JsonValue v = parse_json("[1]");
  EXPECT_THROW(v.as_bool(), std::runtime_error);
  EXPECT_THROW(v.as_string(), std::runtime_error);
  EXPECT_THROW(v.as_object(), std::runtime_error);
  EXPECT_THROW(v.find("k"), std::runtime_error);  // not an object
  try {
    v.as_number();
    FAIL() << "expected type error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("array"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("number"), std::string::npos);
  }
}

TEST(JsonReader, ParseWriteRoundTripIsByteIdentical) {
  // Writer output -> parse -> write must reproduce the exact bytes (the
  // property the service protocol's embedded payloads rely on).
  JsonWriter w(0);
  w.begin_object();
  w.key("engine").value("protest");
  w.key("probs").begin_array();
  w.value(0.1);
  w.value(1.0 / 3.0);
  w.value(true);
  w.null();
  w.end_array();
  w.key("count").value(std::uint64_t{123456789});
  w.key("text").value("line\nbreak \x01 end");
  w.end_object();
  const std::string original = w.str();
  EXPECT_EQ(to_json(parse_json(original), 0), original);
  // Indented output parses to the same tree as compact.
  JsonWriter wi(2);
  write_value(wi, parse_json(original));
  EXPECT_EQ(to_json(parse_json(wi.str()), 0), original);
}

}  // namespace
}  // namespace protest
