// Statistics and table formatting used by the experiment harnesses.
#include <gtest/gtest.h>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"

namespace protest {
namespace {

TEST(Stats, PerfectCorrelation) {
  const double x[] = {0.1, 0.2, 0.3, 0.9};
  const double y[] = {0.2, 0.4, 0.6, 1.8};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
  const double z[] = {-0.1, -0.2, -0.3, -0.9};
  EXPECT_NEAR(pearson_correlation(x, z), -1.0, 1e-12);
}

TEST(Stats, ZeroForConstantSeries) {
  const double x[] = {0.5, 0.5, 0.5};
  const double y[] = {0.1, 0.9, 0.3};
  EXPECT_DOUBLE_EQ(pearson_correlation(x, y), 0.0);
}

TEST(Stats, UncorrelatedNearZero) {
  std::vector<double> x, y;
  // A deterministic "checkerboard" with zero linear relation.
  for (int i = 0; i < 1000; ++i) {
    x.push_back(i % 2);
    y.push_back((i / 2) % 2);
  }
  EXPECT_NEAR(pearson_correlation(x, y), 0.0, 0.01);
}

TEST(Stats, CompareEstimatesFields) {
  const double est[] = {0.5, 0.2, 0.9};
  const double ref[] = {0.4, 0.2, 1.0};
  const ErrorStats s = compare_estimates(est, ref);
  EXPECT_NEAR(s.max_abs_error, 0.1, 1e-12);
  EXPECT_NEAR(s.mean_abs_error, 0.2 / 3, 1e-12);
  EXPECT_NEAR(s.mean_signed_error, 0.0, 1e-12);
  EXPECT_EQ(s.count, 3u);
}

TEST(Stats, SignedErrorShowsUnderestimationBias) {
  // est systematically below ref, like fig. 6 (P_SIM > P_PROT).
  const double est[] = {0.1, 0.2, 0.3};
  const double ref[] = {0.3, 0.4, 0.5};
  EXPECT_NEAR(compare_estimates(est, ref).mean_signed_error, -0.2, 1e-12);
}

TEST(Stats, ScatterSeriesFormat) {
  const double x[] = {0.25};
  const double y[] = {0.75};
  EXPECT_EQ(scatter_series(x, y), "0.25 0.75\n");
}

TEST(Stats, AsciiScatterMarksPoints) {
  const double x[] = {0.0, 1.0};
  const double y[] = {0.0, 1.0};
  const std::string plot = ascii_scatter(x, y, 11, 5);
  EXPECT_NE(plot.find('.'), std::string::npos);
  EXPECT_NE(plot.find("P_PROT"), std::string::npos);
}

TEST(Stats, Validation) {
  const double x[] = {0.1};
  const double y2[] = {0.1, 0.2};
  EXPECT_THROW(pearson_correlation(x, y2), std::invalid_argument);
  EXPECT_THROW(compare_estimates(x, y2), std::invalid_argument);
}

TEST(Table, AlignsColumns) {
  TextTable t({"circuit", "N"});
  t.add_row({"ALU", "212"});
  t.add_row({"MULT", "607"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| circuit | N   |"), std::string::npos);
  EXPECT_NE(s.find("| ALU     | 212 |"), std::string::npos);
}

TEST(Table, RejectsBadRows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt(0.12345, 3), "0.123");
  EXPECT_EQ(fmt(2.0, 1), "2.0");
  EXPECT_EQ(fmt_int(1234567), "1 234 567");
  EXPECT_EQ(fmt_int(42), "42");
}

}  // namespace
}  // namespace protest
