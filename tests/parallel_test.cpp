// The parallel evaluation layer: the thread pool, the sharded Monte-Carlo
// engine (thread-count invariance + the seeding contract), the per-clone
// ParallelBatchEvaluator, the parallel neighborhood sweep, and concurrent
// AnalysisSession access.  This suite (with session_test) is what the CI
// ThreadSanitizer job runs.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "circuits/iscas.hpp"
#include "circuits/zoo.hpp"
#include "optimize/objective.hpp"
#include "prob/engine.hpp"
#include "prob/monte_carlo.hpp"
#include "prob/parallel_eval.hpp"
#include "protest/session.hpp"
#include "util/thread_pool.hpp"

namespace protest {
namespace {

ParallelConfig with_threads(unsigned n) {
  ParallelConfig cfg;
  cfg.num_threads = n;
  return cfg;
}

InputProbs varied_tuple(const Netlist& net, double base) {
  InputProbs t = uniform_input_probs(net, base);
  for (std::size_t i = 0; i < t.size(); ++i)
    t[i] = 0.1 + 0.05 * static_cast<double>(i % 16);
  return t;
}

// --- thread pool ------------------------------------------------------------

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  for (const unsigned workers : {1u, 2u, 8u}) {
    ThreadPool pool(workers);
    EXPECT_EQ(pool.num_workers(), workers);
    constexpr std::size_t kTasks = 1000;
    std::vector<std::atomic<int>> hits(kTasks);
    pool.parallel_for(kTasks, [&](std::size_t t, unsigned w) {
      ASSERT_LT(w, workers);
      hits[t].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t t = 0; t < kTasks; ++t)
      EXPECT_EQ(hits[t].load(), 1) << "task " << t << " @ " << workers;
  }
}

TEST(ThreadPool, ResolvesZeroToHardwareConcurrency) {
  EXPECT_GE(with_threads(0).resolved(), 1u);
  EXPECT_EQ(with_threads(1).resolved(), 1u);
  EXPECT_EQ(with_threads(5).resolved(), 5u);
}

TEST(ThreadPool, PropagatesTheFirstException) {
  for (const unsigned workers : {1u, 4u}) {
    ThreadPool pool(workers);
    EXPECT_THROW(
        pool.parallel_for(64,
                          [&](std::size_t t, unsigned) {
                            if (t == 7) throw std::runtime_error("task 7");
                          }),
        std::runtime_error);
    // The pool survives a failed job.
    std::atomic<std::size_t> done{0};
    pool.parallel_for(64, [&](std::size_t, unsigned) { ++done; });
    EXPECT_EQ(done.load(), 64u);
  }
}

// --- sharded Monte-Carlo ----------------------------------------------------

TEST(ParallelMonteCarlo, BitIdenticalForAnyThreadCount) {
  // Acceptance: the sharded estimate must not depend on the worker count
  // — same shards, same per-shard streams, exact integer reduction.
  const Netlist net = make_circuit("alu");
  const InputProbs ip = varied_tuple(net, 0.5);
  MonteCarloEngineParams params;
  params.num_patterns = 50'000;  // 7 shards: more shards than workers
  params.seed = 99;
  params.parallel.num_threads = 1;
  const std::vector<double> serial =
      MonteCarloEngine(net, params).signal_probs(ip);
  for (const unsigned threads : {2u, 8u}) {
    params.parallel.num_threads = threads;
    const MonteCarloEngine engine(net, params);
    EXPECT_TRUE(engine.internally_parallel());
    EXPECT_EQ(engine.signal_probs(ip), serial) << threads << " threads";
  }
}

TEST(ParallelMonteCarlo, BatchBitIdenticalAcrossThreadCountsAndToSingles) {
  const Netlist net = make_c17();
  std::vector<InputProbs> batch = {uniform_input_probs(net, 0.5),
                                   varied_tuple(net, 0.3),
                                   uniform_input_probs(net, 0.125)};
  MonteCarloEngineParams params;
  params.num_patterns = 20'000;
  params.parallel.num_threads = 1;
  const MonteCarloEngine serial(net, params);
  const auto want = serial.signal_probs_batch(batch);
  // Regression for the seeding contract: batch element i equals the
  // single-call evaluation of tuple i (both derive shard streams from
  // (seed, shard) only — nothing depends on the position in the batch).
  for (std::size_t t = 0; t < batch.size(); ++t)
    EXPECT_EQ(want[t], serial.signal_probs(batch[t])) << "tuple " << t;
  params.parallel.num_threads = 4;
  EXPECT_EQ(MonteCarloEngine(net, params).signal_probs_batch(batch), want);
}

TEST(ParallelMonteCarlo, FreeFunctionSharesTheEngineDerivation) {
  // monte_carlo_signal_probs and the engine follow one stream-derivation
  // rule, so the scalable reference stays comparable across entry points.
  const Netlist net = make_c17();
  const InputProbs ip = uniform_input_probs(net, 0.25);
  MonteCarloEngineParams params;
  params.num_patterns = 10'000;
  params.seed = 7;
  params.parallel.num_threads = 2;
  EXPECT_EQ(monte_carlo_signal_probs(net, ip, 10'000, 7),
            MonteCarloEngine(net, params).signal_probs(ip));
}

TEST(ParallelMonteCarlo, StreamSeedsAreShardUnique) {
  // Pin the derivation rule: distinct shards of one seed — and the same
  // shard of adjacent seeds — start distinct RNG streams.
  EXPECT_NE(monte_carlo_stream_seed(1, 0), monte_carlo_stream_seed(1, 1));
  EXPECT_NE(monte_carlo_stream_seed(1, 0), monte_carlo_stream_seed(2, 0));
  EXPECT_EQ(monte_carlo_num_shards(1), 1u);
  EXPECT_EQ(monte_carlo_num_shards(kMonteCarloShardPatterns), 1u);
  EXPECT_EQ(monte_carlo_num_shards(kMonteCarloShardPatterns + 1), 2u);
  // Out-of-range probabilities throw on every entry point (a negative
  // double cast to the unsigned threshold would be UB).
  const std::vector<double> bad = {-0.5};
  EXPECT_THROW(monte_carlo_thresholds(bad), std::invalid_argument);
}

// --- per-clone batch evaluation ---------------------------------------------

TEST(ParallelBatchEval, MatchesSerialSingleCallsOnEveryEngine) {
  const Netlist net = make_c17();
  std::vector<InputProbs> batch;
  for (double p : {0.5, 0.25, 0.125, 0.75, 0.0625})
    batch.push_back(uniform_input_probs(net, p));
  EngineConfig cfg;
  cfg.monte_carlo.num_patterns = 4096;
  for (const std::string& name : engine_names()) {
    const auto engine = make_engine(name, net, cfg);
    const ParallelBatchEvaluator eval(*engine, with_threads(4));
    const auto got = eval.signal_probs_batch(batch);
    ASSERT_EQ(got.size(), batch.size()) << name;
    for (std::size_t t = 0; t < batch.size(); ++t)
      EXPECT_EQ(got[t], engine->signal_probs(batch[t]))
          << name << " tuple " << t;
  }
}

TEST(ParallelBatchEval, CloneSharesParametersNotState) {
  const Netlist net = make_c17();
  ProtestParams params;
  params.maxvers = 2;
  const ProtestEngine engine(net, params);
  const auto clone = engine.clone();
  EXPECT_EQ(clone->name(), "protest");
  EXPECT_EQ(dynamic_cast<const ProtestEngine&>(*clone).params().maxvers, 2u);
  const InputProbs ip = uniform_input_probs(net, 0.5);
  EXPECT_EQ(clone->signal_probs(ip), engine.signal_probs(ip));
}

// --- parallel neighborhood sweep --------------------------------------------

TEST(ParallelSweep, BitIdenticalForAnyThreadCount) {
  // Acceptance: session perturb_screen_sweep — and through it the hill
  // climber's neighborhoods — must be bit-identical at 1/2/8 threads.
  const Netlist net = make_circuit("alu");
  const InputProbs base = varied_tuple(net, 0.5);
  const std::vector<double> values = {0.0625, 0.25, 0.4375, 0.625, 0.9375};
  const std::size_t coord = 3;

  std::vector<std::vector<std::vector<double>>> probs_by_threads;
  for (const unsigned threads : {1u, 2u, 8u}) {
    SessionOptions opts;
    opts.parallel.num_threads = threads;
    AnalysisSession session(net, opts);
    const AnalysisResult base_result = session.analyze(base);
    const std::vector<AnalysisResult> swept =
        session.perturb_screen_sweep(base_result, coord, values);
    ASSERT_EQ(swept.size(), values.size());
    std::vector<std::vector<double>> probs;
    for (const AnalysisResult& r : swept) probs.push_back(r.signal_probs());
    probs_by_threads.push_back(std::move(probs));
    // The sweep has perturb_screen semantics element by element.
    for (std::size_t i = 0; i < values.size(); ++i)
      EXPECT_EQ(swept[i].signal_probs(),
                session.perturb_screen(base_result, coord, values[i])
                    .signal_probs())
          << threads << " threads, value " << i;
  }
  EXPECT_EQ(probs_by_threads[1], probs_by_threads[0]);
  EXPECT_EQ(probs_by_threads[2], probs_by_threads[0]);
}

TEST(ParallelSweep, NeighborhoodObjectivesInvariantUnderThreads) {
  const Netlist net = make_c17();
  const std::vector<Fault> faults = structural_fault_list(net);
  const InputProbs base = uniform_input_probs(net, 0.5);
  const std::vector<double> values = {0.125, 0.375, 0.875};

  ObjectiveEvaluator serial(net, faults, 1000, {}, {}, with_threads(1));
  const auto want = serial.log_objectives_neighborhood(base, 1, values);
  for (const unsigned threads : {2u, 8u}) {
    ObjectiveEvaluator parallel(net, faults, 1000, {}, {},
                                with_threads(threads));
    const auto got = parallel.log_objectives_neighborhood(base, 1, values);
    EXPECT_EQ(got.base, want.base) << threads;
    EXPECT_EQ(got.candidates, want.candidates) << threads;
  }
}

// --- concurrent session access ----------------------------------------------

TEST(ConcurrentSession, ParallelCallersMatchTheSerialResults) {
  // Four threads hammer one session with overlapping analyze/perturb
  // queries; every answer must equal the serial reference.  Run under
  // TSan in CI to prove the mutex tier actually covers the caches.
  const Netlist net = make_c17();
  AnalysisSession reference(net);
  std::vector<InputProbs> tuples;
  std::vector<std::vector<double>> want;
  for (double p : {0.5, 0.25, 0.75, 0.125})
    tuples.push_back(uniform_input_probs(net, p));
  for (const InputProbs& t : tuples)
    want.push_back(reference.analyze(t).signal_probs());

  AnalysisSession session(net);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int th = 0; th < 4; ++th)
    threads.emplace_back([&, th] {
      for (int rep = 0; rep < 8; ++rep) {
        const std::size_t i = static_cast<std::size_t>(th + rep) % tuples.size();
        const AnalysisResult r = session.analyze(tuples[i]);
        if (r.signal_probs() != want[i]) ++mismatches;
        // Shared lazy artifacts memoize once under the result lock.
        if (r.detection_probs().size() != session.faults().size())
          ++mismatches;
      }
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(session.stats().analyze_calls, 32u);
}

TEST(ConcurrentSession, ParallelPerturbsMatchFromScratch) {
  const Netlist net = make_c17();
  AnalysisSession session(net);
  const AnalysisResult base = session.analyze(uniform_input_probs(net, 0.5));
  std::vector<std::vector<double>> got(net.inputs().size());
  std::vector<std::thread> threads;
  for (std::size_t idx = 0; idx < net.inputs().size(); ++idx)
    threads.emplace_back([&, idx] {
      got[idx] = session.perturb(base, idx, 0.2).signal_probs();
    });
  for (std::thread& t : threads) t.join();
  for (std::size_t idx = 0; idx < net.inputs().size(); ++idx) {
    InputProbs ip = uniform_input_probs(net, 0.5);
    ip[idx] = 0.2;
    AnalysisSession cold(net);
    EXPECT_EQ(got[idx], cold.analyze(ip).signal_probs()) << "input " << idx;
  }
}

}  // namespace
}  // namespace protest
