// Stuck-at fault model: universes, equivalence collapsing, display names.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <span>

#include "circuits/iscas.hpp"
#include "netlist/builder.hpp"
#include "sim/fault.hpp"
#include "sim/logic_sim.hpp"
#include "sim/pattern.hpp"

namespace protest {
namespace {

/// Brute-force: bitmask (over exhaustive patterns) of patterns detecting f.
std::uint64_t detection_set(const Netlist& net, const Fault& f) {
  const std::size_t ni = net.inputs().size();
  std::uint64_t det = 0;
  for (std::size_t pat = 0; pat < (std::size_t{1} << ni); ++pat) {
    std::vector<bool> in(ni);
    for (std::size_t i = 0; i < ni; ++i) in[i] = (pat >> i) & 1;
    const auto good = simulate_single(net, in);
    // Faulty evaluation: recompute in topo order with the fault injected.
    std::vector<bool> bad(net.size());
    const auto inputs = net.inputs();
    for (std::size_t i = 0; i < ni; ++i) bad[inputs[i]] = in[i];
    for (NodeId n = 0; n < net.size(); ++n) {
      const Gate& g = net.gate(n);
      if (g.type != GateType::Input) {
        std::array<bool, 64> ins{};
        for (std::size_t k = 0; k < g.fanin.size(); ++k) {
          bool v = bad[g.fanin[k]];
          if (!f.is_stem() && f.node == n && static_cast<int>(k) == f.pin)
            v = f.sa == StuckAt::One;
          ins[k] = v;
        }
        bad[n] = eval_gate(
            g.type, std::span<const bool>(ins.data(), g.fanin.size()));
      }
      if (f.is_stem() && f.node == n) bad[n] = f.sa == StuckAt::One;
    }
    for (NodeId o : net.outputs())
      if (good[o] != bad[o]) {
        det |= std::uint64_t{1} << pat;
        break;
      }
  }
  return det;
}

TEST(FaultList, FullListCountsC17) {
  const Netlist net = make_c17();
  // 11 nodes * 2 stem faults + 12 gate pins * 2 branch faults.
  EXPECT_EQ(full_fault_list(net).size(), 22u + 24u);
}

TEST(FaultList, StructuralListSkipsSingleBranchPins) {
  const Netlist net = make_c17();
  const auto list = structural_fault_list(net);
  // Branch faults only on pins fed by multi-branch stems (nets 3, 11, 16).
  std::size_t branch_faults = 0;
  for (const Fault& f : list) branch_faults += !f.is_stem();
  EXPECT_EQ(branch_faults, 2u * 6u);  // stems 3, 11, 16 have 2 branches each
  EXPECT_EQ(list.size(), 22u + 12u);
}

TEST(FaultList, CollapsedIsSmallerAndCoversAllBehaviours) {
  const Netlist net = make_c17();
  const auto full = full_fault_list(net);
  const auto collapsed = collapsed_fault_list(net);
  ASSERT_LT(collapsed.size(), full.size());

  // Every fault's detection set must be represented in the collapsed list
  // (equivalence collapsing must not lose behaviours).
  std::set<std::uint64_t> rep_sets;
  for (const Fault& f : collapsed) rep_sets.insert(detection_set(net, f));
  for (const Fault& f : full)
    EXPECT_TRUE(rep_sets.contains(detection_set(net, f)))
        << to_string(net, f) << " lost by collapsing";
}

TEST(FaultList, CollapseRulesNand) {
  // y = NAND(a, b): input s-a-0 is equivalent to output s-a-1.
  Netlist net;
  const NodeId a = net.add_input("a");
  const NodeId b = net.add_input("b");
  const NodeId y = net.add_gate(GateType::Nand, {a, b}, "y");
  net.mark_output(y);
  net.finalize();
  const auto collapsed = collapsed_fault_list(net);
  // Full list: 6 stem + 4 branch = 10.  Classes: {y sa1, a sa0, b sa0 (pins
  // collapse to stems since single fanout), ...}.
  // a-sa0 == pin0-sa0 == y-sa1; b-sa0 likewise: so {a0,b0,y1} one class;
  // a1, b1, y0 remain distinct: total classes = 4.
  EXPECT_EQ(collapsed.size(), 4u);
}

TEST(FaultList, PinOnPrimaryOutputStemDoesNotCollapse) {
  // c is both a PO and feeds d = AND(c, e).  The stem fault c s-a-0 is
  // always visible at PO c; the pin fault on d only when e = 1 — they are
  // NOT equivalent, and the collapser must keep both behaviours.
  Netlist net;
  const NodeId a = net.add_input("a");
  const NodeId b = net.add_input("b");
  const NodeId e = net.add_input("e");
  const NodeId c = net.add_gate(GateType::Xor, {a, b}, "c");
  const NodeId d = net.add_gate(GateType::And, {c, e}, "d");
  net.mark_output(c);
  net.mark_output(d);
  net.finalize();
  const std::uint64_t c_sa0 = detection_set(net, {c, -1, StuckAt::Zero});
  const std::uint64_t d_pin_sa0 = detection_set(net, {d, 0, StuckAt::Zero});
  EXPECT_NE(c_sa0, d_pin_sa0);
  const auto collapsed = collapsed_fault_list(net);
  std::set<std::uint64_t> rep_sets;
  for (const Fault& f : collapsed) rep_sets.insert(detection_set(net, f));
  EXPECT_TRUE(rep_sets.contains(d_pin_sa0));
  EXPECT_TRUE(rep_sets.contains(c_sa0));
}

TEST(FaultList, ToStringFormats) {
  const Netlist net = make_c17();
  const Fault stem{net.find("22"), -1, StuckAt::One};
  EXPECT_EQ(to_string(net, stem), "22 s-a-1");
  const Fault pin{net.find("22"), 0, StuckAt::Zero};
  EXPECT_EQ(to_string(net, pin), "22/0 s-a-0");
}

}  // namespace
}  // namespace protest
