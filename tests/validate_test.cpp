// The validation harness (src/validate): statistical-oracle math, the
// independent payload re-checker, the differential fuzz loop with its
// repro-artifact replay cycle, and the random-circuit shape knobs the
// fuzzer drives.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/json.hpp"
#include "circuits/random_circuit.hpp"
#include "netlist/bench_io.hpp"
#include "protest/session.hpp"
#include "validate/fuzz.hpp"
#include "validate/recheck.hpp"
#include "validate/stats.hpp"

namespace protest {
namespace {

// --- statistical oracle -----------------------------------------------------

TEST(Stats, HoeffdingToleranceMatchesClosedForm) {
  // t = sqrt(ln(2/alpha) / (2n)).
  EXPECT_DOUBLE_EQ(hoeffding_tolerance(32'768, 1e-9),
                   std::sqrt(std::log(2.0 / 1e-9) / (2.0 * 32'768)));
  // Quadrupling the samples halves the tolerance.
  EXPECT_NEAR(hoeffding_tolerance(4 * 10'000, 1e-6),
              hoeffding_tolerance(10'000, 1e-6) / 2.0, 1e-15);
  // Stricter alpha widens it.
  EXPECT_GT(hoeffding_tolerance(10'000, 1e-9),
            hoeffding_tolerance(10'000, 1e-3));
}

TEST(Stats, HoeffdingToleranceRejectsDegenerateInputs) {
  EXPECT_THROW(hoeffding_tolerance(0, 0.5), std::invalid_argument);
  EXPECT_THROW(hoeffding_tolerance(100, 0.0), std::invalid_argument);
  EXPECT_THROW(hoeffding_tolerance(100, 1.0), std::invalid_argument);
  EXPECT_THROW(hoeffding_tolerance(100, -1.0), std::invalid_argument);
}

TEST(Stats, McToleranceSplitsAlphaAndAddsThresholdBias) {
  // Bonferroni: the per-comparison alpha is aggregate / comparisons.
  EXPECT_DOUBLE_EQ(mc_tolerance(10'000, 5, 0, 1e-6),
                   hoeffding_tolerance(10'000, 1e-6 / 5));
  // The 32-bit threshold-truncation bias rides on top, once per input.
  EXPECT_DOUBLE_EQ(mc_tolerance(10'000, 5, 7, 1e-6),
                   hoeffding_tolerance(10'000, 1e-6 / 5) +
                       mc_threshold_bias(7));
  EXPECT_DOUBLE_EQ(mc_threshold_bias(3), 3.0 / 4294967296.0);
  EXPECT_THROW(mc_tolerance(10'000, 0), std::invalid_argument);
}

// --- independent re-checker -------------------------------------------------

Netlist small_net() {
  return read_bench_string(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\n"
      "s = AND(a, b)\nt = NAND(s, c)\ny = XOR(s, t)\nz = NOR(t, a)\n");
}

std::string analyze_payload(const Netlist& net,
                            const std::vector<double>& probs) {
  AnalysisRequest artifacts;
  artifacts.test_lengths = true;
  artifacts.fault_bounds = true;
  SessionOptions opts;
  opts.engine = "exact-bdd";
  AnalysisSession session(net, opts);
  return session.analyze(probs, artifacts).to_json(0);
}

TEST(Recheck, CleanExactPayloadPasses) {
  const Netlist net = small_net();
  const std::string payload = analyze_payload(net, {0.3, 0.6, 0.5});
  const recheck::RecheckReport report =
      recheck::recheck_analyze_payload(net, payload);
  EXPECT_TRUE(report.ok()) << (report.issues.empty()
                                   ? ""
                                   : report.issues.front().check + " @ " +
                                         report.issues.front().where + ": " +
                                         report.issues.front().detail);
  EXPECT_GT(report.checks, 20u);
}

TEST(Recheck, CatchesATamperedSignalProbability) {
  const Netlist net = small_net();
  std::string payload = analyze_payload(net, {0.3, 0.6, 0.5});
  // Corrupt the first signal probability to an impossible value.
  const std::size_t at = payload.find("\"p1\":");
  ASSERT_NE(at, std::string::npos);
  const std::size_t end = payload.find_first_of(",}", at);
  payload.replace(at, end - at, "\"p1\":0.987654321");
  const recheck::RecheckReport report =
      recheck::recheck_analyze_payload(net, payload);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.issues.front().check, "signal_probs");
}

TEST(Recheck, MalformedJsonBecomesAnIssueNotAThrow) {
  const Netlist net = small_net();
  const recheck::RecheckReport report =
      recheck::recheck_analyze_payload(net, "{\"engine\": ");
  EXPECT_FALSE(report.ok());
}

// --- fuzz spec serialization ------------------------------------------------

TEST(FuzzSpec, JsonRoundTripPreservesFull64BitSeeds) {
  validate::FuzzCircuitSpec spec;
  spec.name = "rt";
  spec.gen.num_inputs = 6;
  spec.gen.num_gates = 30;
  spec.gen.max_fanin = 3;
  spec.gen.inverter_fraction = 0.22;
  spec.gen.xor_fraction = 0.1;
  spec.gen.xnor_ratio = 0.4;
  spec.gen.reconvergence_fraction = 0.15;
  spec.gen.reconvergence_depth = 3;
  spec.gen.fanout_skew = 0.25;
  // Both seeds exceed 2^53: a JSON double would silently round them.
  spec.gen.seed = 0xFFFFFFFFFFFFFFFFULL;
  spec.mc_seed = (1ULL << 53) + 12'345;
  spec.input_probs = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
  spec.perturb_index = 4;
  spec.perturb_p = 0.77;
  spec.mc_patterns = 9'999;
  spec.threads = 3;
  spec.per_net_alpha = 3.5e-10;
  spec.inject = true;
  spec.max_exhaustive_inputs = 9;

  const validate::FuzzCircuitSpec back =
      validate::FuzzCircuitSpec::from_json_value(parse_json(spec.to_json(2)));
  EXPECT_EQ(back.gen.seed, spec.gen.seed);
  EXPECT_EQ(back.mc_seed, spec.mc_seed);
  EXPECT_EQ(back.name, spec.name);
  EXPECT_EQ(back.gen.num_inputs, spec.gen.num_inputs);
  EXPECT_EQ(back.gen.num_gates, spec.gen.num_gates);
  EXPECT_EQ(back.gen.max_fanin, spec.gen.max_fanin);
  EXPECT_EQ(back.gen.inverter_fraction, spec.gen.inverter_fraction);
  EXPECT_EQ(back.gen.xor_fraction, spec.gen.xor_fraction);
  EXPECT_EQ(back.gen.xnor_ratio, spec.gen.xnor_ratio);
  EXPECT_EQ(back.gen.reconvergence_fraction, spec.gen.reconvergence_fraction);
  EXPECT_EQ(back.gen.reconvergence_depth, spec.gen.reconvergence_depth);
  EXPECT_EQ(back.gen.fanout_skew, spec.gen.fanout_skew);
  EXPECT_EQ(back.input_probs, spec.input_probs);
  EXPECT_EQ(back.perturb_index, spec.perturb_index);
  EXPECT_EQ(back.perturb_p, spec.perturb_p);
  EXPECT_EQ(back.mc_patterns, spec.mc_patterns);
  EXPECT_EQ(back.threads, spec.threads);
  EXPECT_EQ(back.per_net_alpha, spec.per_net_alpha);
  EXPECT_EQ(back.inject, spec.inject);
  EXPECT_EQ(back.max_exhaustive_inputs, spec.max_exhaustive_inputs);
}

TEST(FuzzSpec, BenchSpecRoundTrips) {
  validate::FuzzCircuitSpec spec;
  spec.name = "c17";
  spec.from_bench = true;
  spec.bench_text = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
  spec.input_probs = {0.5};
  const validate::FuzzCircuitSpec back =
      validate::FuzzCircuitSpec::from_json_value(parse_json(spec.to_json(0)));
  EXPECT_TRUE(back.from_bench);
  EXPECT_EQ(back.bench_text, spec.bench_text);
}

// --- fuzz loop, injection, replay -------------------------------------------

TEST(Fuzz, SmallCleanRunAgrees) {
  validate::FuzzOptions opts;
  opts.num_circuits = 4;
  opts.seed = 11;
  opts.mc_patterns = 8'192;
  const validate::FuzzReport report = validate::run_fuzz(opts);
  EXPECT_TRUE(report.ok()) << (report.disagreements.empty()
                                   ? ""
                                   : report.disagreements.front().check);
  EXPECT_EQ(report.circuits, 4u);
  EXPECT_GT(report.checks, 1'000u);
}

TEST(Fuzz, InjectedBugIsCaughtAndReplaysDeterministically) {
  const std::filesystem::path corpus =
      std::filesystem::path(::testing::TempDir()) / "fuzz_corpus";
  std::filesystem::remove_all(corpus);

  validate::FuzzOptions opts;
  opts.num_circuits = 2;
  opts.seed = 11;
  opts.mc_patterns = 8'192;
  opts.inject_disagreement = true;
  opts.corpus_dir = corpus.string();
  const validate::FuzzReport report = validate::run_fuzz(opts);

  // The watcher-watcher: the planted bug must be reported...
  ASSERT_FALSE(report.ok());
  ASSERT_FALSE(report.artifact_paths.empty());
  const std::string& artifact = report.artifact_paths.front();
  ASSERT_TRUE(std::filesystem::exists(artifact));

  // ...and the serialized artifact must reproduce it exactly: same
  // check, same node, same expected-vs-actual detail line.
  const validate::FuzzReport replay = validate::run_replay(artifact);
  ASSERT_FALSE(replay.ok());
  const validate::FuzzDisagreement& original = report.disagreements.front();
  bool reproduced = false;
  for (const validate::FuzzDisagreement& d : replay.disagreements)
    reproduced = reproduced || (d.check == original.check &&
                                d.where == original.where &&
                                d.detail == original.detail);
  EXPECT_TRUE(reproduced) << original.check << " @ " << original.where;
}

TEST(Fuzz, ReplayRejectsNonArtifactFiles) {
  const std::filesystem::path bogus =
      std::filesystem::path(::testing::TempDir()) / "not_a_repro.json";
  std::ofstream(bogus) << "{\"hello\": 1}\n";
  EXPECT_THROW(validate::run_replay(bogus.string()), std::runtime_error);
  EXPECT_THROW(validate::run_replay("/nonexistent/path.json"),
               std::runtime_error);
}

// --- random-circuit shape knobs ---------------------------------------------

RandomCircuitParams base_params(std::uint64_t seed) {
  RandomCircuitParams p;
  p.num_inputs = 6;
  p.num_gates = 60;
  p.max_fanin = 3;
  p.inverter_fraction = 0.15;
  p.xor_fraction = 0.25;
  p.seed = seed;
  return p;
}

TEST(RandomCircuit, SameParamsSameCircuit) {
  for (std::uint64_t seed : {1u, 99u}) {
    RandomCircuitParams p = base_params(seed);
    p.xnor_ratio = 0.3;
    p.reconvergence_fraction = 0.2;
    p.fanout_skew = 0.25;
    EXPECT_EQ(write_bench_string(make_random_circuit(p)),
              write_bench_string(make_random_circuit(p)));
  }
}

TEST(RandomCircuit, XnorRatioSteersTheXorMix) {
  RandomCircuitParams p = base_params(5);
  auto count = [](const Netlist& net, GateType t) {
    std::size_t c = 0;
    for (NodeId n = 0; n < net.size(); ++n) c += net.gate(n).type == t;
    return c;
  };
  p.xnor_ratio = 0.0;
  const Netlist all_xor = make_random_circuit(p);
  EXPECT_GT(count(all_xor, GateType::Xor), 0u);
  EXPECT_EQ(count(all_xor, GateType::Xnor), 0u);
  p.xnor_ratio = 1.0;
  const Netlist all_xnor = make_random_circuit(p);
  EXPECT_EQ(count(all_xnor, GateType::Xor), 0u);
  EXPECT_GT(count(all_xnor, GateType::Xnor), 0u);
}

TEST(RandomCircuit, FanoutSkewConcentratesFanout) {
  auto max_fanout = [](const Netlist& net) {
    std::vector<std::size_t> fo(net.size(), 0);
    for (NodeId n = 0; n < net.size(); ++n)
      for (NodeId f : net.gate(n).fanin) ++fo[f];
    std::size_t mx = 0;
    for (std::size_t c : fo) mx = std::max(mx, c);
    return mx;
  };
  RandomCircuitParams p = base_params(5);
  const std::size_t baseline = max_fanout(make_random_circuit(p));
  p.fanout_skew = 0.9;
  EXPECT_GT(max_fanout(make_random_circuit(p)), baseline);
}

TEST(RandomCircuit, ReconvergenceKnobValidatesAndProducesGates) {
  RandomCircuitParams p = base_params(5);
  p.reconvergence_fraction = 1.0;
  p.reconvergence_depth = 2;
  const Netlist net = make_random_circuit(p);
  EXPECT_EQ(net.size(), p.num_inputs + p.num_gates);
  p.reconvergence_depth = 0;
  EXPECT_THROW(make_random_circuit(p), std::invalid_argument);
}

}  // namespace
}  // namespace protest
