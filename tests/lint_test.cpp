// The static-analysis subsystem: one positive and one clean case per
// pass, the diagnostic cap, the golden JSON shape, the constant fold's
// bit-parity contract under WordSimulator, and the static probability
// intervals as a containment oracle for every registered engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "circuits/zoo.hpp"
#include "lint/fold.hpp"
#include "lint/lint.hpp"
#include "lint/prob_bounds.hpp"
#include "netlist/bench_io.hpp"
#include "prob/engine.hpp"
#include "prob/signal_prob.hpp"
#include "sim/word_sim.hpp"
#include "validate/stats.hpp"

namespace protest {
namespace {

LintReport lint_pass(const Netlist& net, const std::string& pass) {
  LintOptions opts;
  opts.passes = {pass};
  return run_lint(net, opts);
}

const LintDiagnostic* find_named(const LintReport& rep,
                                 std::string_view name) {
  for (const LintDiagnostic& d : rep.diagnostics)
    if (d.name == name) return &d;
  return nullptr;
}

std::uint64_t splitmix64(std::uint64_t& s) {
  std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// --- pass registry ----------------------------------------------------------

TEST(Lint, PassNamesAreStableAndUnknownNamesThrow) {
  const auto names = lint_pass_names();
  ASSERT_EQ(names.size(), 8u);
  EXPECT_EQ(names[0], "unused-net");
  EXPECT_EQ(names[5], "structure");
  // The fault passes append AFTER the original six, so historical
  // indices stay stable.
  EXPECT_EQ(names[6], "redundant-fault");
  EXPECT_EQ(names[7], "untestable-fault");
  LintOptions opts;
  opts.passes = {"bogus-pass"};
  EXPECT_THROW(run_lint(make_circuit("c17"), opts), std::invalid_argument);
}

TEST(Lint, FaultPassesAreOptIn) {
  // Default "all passes" excludes the fault passes; --faults (or naming
  // them) brings them in.
  const Netlist net = make_circuit("c17");
  const LintReport all = run_lint(net, {});
  for (const std::string& p : all.passes_run)
    EXPECT_TRUE(p != "redundant-fault" && p != "untestable-fault") << p;
  LintOptions opts;
  opts.faults = true;
  const LintReport with = run_lint(net, opts);
  EXPECT_NE(std::find(with.passes_run.begin(), with.passes_run.end(),
                      "redundant-fault"),
            with.passes_run.end());
  EXPECT_NE(std::find(with.passes_run.begin(), with.passes_run.end(),
                      "untestable-fault"),
            with.passes_run.end());
}

TEST(Lint, RequiresFinalizedNetlist) {
  Netlist net;
  net.add_input("a");
  EXPECT_THROW(run_lint(net, {}), std::invalid_argument);
}

// --- unused-net -------------------------------------------------------------

TEST(LintUnusedNet, FlagsFloatingInputAndSinklessGate) {
  const Netlist net = read_bench_string(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
      "y = AND(a, b)\n"
      "t = NOT(a)\n");  // c floats; t feeds nothing
  const LintReport rep = lint_pass(net, "unused-net");
  EXPECT_EQ(rep.warnings, 2u);
  ASSERT_NE(find_named(rep, "c"), nullptr);
  EXPECT_NE(find_named(rep, "c")->message.find("feeds no gate"),
            std::string::npos);
  ASSERT_NE(find_named(rep, "t"), nullptr);
  EXPECT_EQ(find_named(rep, "t")->severity, LintSeverity::Warning);
}

TEST(LintUnusedNet, CleanOnZooCircuit) {
  EXPECT_TRUE(lint_pass(make_circuit("c17"), "unused-net").clean());
}

// --- dead-gate --------------------------------------------------------------

TEST(LintDeadGate, FlagsConeBehindFloatingSink) {
  // u2 floats (unused-net's finding); u1 and d feed only that dead cone.
  const Netlist net = read_bench_string(
      "INPUT(a)\nINPUT(d)\nOUTPUT(y)\n"
      "y = BUF(a)\n"
      "u1 = NOT(d)\n"
      "u2 = NOT(u1)\n");
  const LintReport rep = lint_pass(net, "dead-gate");
  EXPECT_EQ(rep.warnings, 2u);
  ASSERT_NE(find_named(rep, "u1"), nullptr);
  EXPECT_NE(find_named(rep, "u1")->message.find("no path to any primary"),
            std::string::npos);
  ASSERT_NE(find_named(rep, "d"), nullptr);  // the input branch
  EXPECT_EQ(find_named(rep, "u2"), nullptr);  // unused-net territory
}

TEST(LintDeadGate, CleanOnZooCircuit) {
  EXPECT_TRUE(lint_pass(make_circuit("alu"), "dead-gate").clean());
}

// --- const-gate -------------------------------------------------------------

TEST(LintConstGate, ErrorsOnStuckOutputWarnsOnInternalConstant) {
  const Netlist net = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\n"
      "c0 = CONST0()\n"
      "c1 = CONST1()\n"
      "t = OR(c1, a)\n"    // stuck at 1, internal
      "z = AND(a, c0)\n"   // stuck at 0, primary output
      "y = AND(t, b)\n");  // y == b: not lattice-decidable, clean
  const LintReport rep = lint_pass(net, "const-gate");
  EXPECT_EQ(rep.errors, 1u);
  EXPECT_EQ(rep.warnings, 1u);
  ASSERT_NE(find_named(rep, "z"), nullptr);
  EXPECT_EQ(find_named(rep, "z")->severity, LintSeverity::Error);
  EXPECT_NE(find_named(rep, "z")->message.find("stuck at 0"),
            std::string::npos);
  ASSERT_NE(find_named(rep, "t"), nullptr);
  EXPECT_EQ(find_named(rep, "t")->severity, LintSeverity::Warning);
  EXPECT_NE(find_named(rep, "t")->message.find("stuck at 1"),
            std::string::npos);
  EXPECT_EQ(find_named(rep, "y"), nullptr);
}

TEST(LintConstGate, CleanOnZooCircuit) {
  EXPECT_TRUE(lint_pass(make_circuit("c17"), "const-gate").clean());
}

// --- duplicate-gate ---------------------------------------------------------

TEST(LintDuplicateGate, FlagsCommutedFaninsOnce) {
  const Netlist net = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
      "g1 = AND(a, b)\n"
      "g2 = AND(b, a)\n"  // same multiset of fanins
      "g3 = OR(a, b)\n"   // distinct type: clean
      "y = XOR(g2, g3)\n");
  const LintReport rep = lint_pass(net, "duplicate-gate");
  EXPECT_EQ(rep.warnings, 1u);
  ASSERT_NE(find_named(rep, "g2"), nullptr);
  EXPECT_NE(find_named(rep, "g2")->message.find("duplicates gate 'g1'"),
            std::string::npos);
}

TEST(LintDuplicateGate, CleanOnZooCircuit) {
  EXPECT_TRUE(lint_pass(make_circuit("c17"), "duplicate-gate").clean());
}

// --- prob-bounds ------------------------------------------------------------

TEST(LintProbBounds, FlagsNearConstantNetsBothPolarities) {
  // An 8-wide AND sits at P(1) = 2^-8 < 0.01; its NAND twin at 1 - 2^-8.
  std::string bench;
  for (int i = 0; i < 8; ++i) bench += "INPUT(i" + std::to_string(i) + ")\n";
  bench += "OUTPUT(lo)\nOUTPUT(hi)\n";
  bench += "lo = AND(i0, i1, i2, i3, i4, i5, i6, i7)\n";
  bench += "hi = NAND(i0, i1, i2, i3, i4, i5, i6, i7)\n";
  const Netlist net = read_bench_string(bench);
  const LintReport rep = lint_pass(net, "prob-bounds");
  EXPECT_EQ(rep.warnings, 2u);
  ASSERT_NE(find_named(rep, "lo"), nullptr);
  EXPECT_NE(find_named(rep, "lo")->message.find("near-constant 0"),
            std::string::npos);
  ASSERT_NE(find_named(rep, "hi"), nullptr);
  EXPECT_NE(find_named(rep, "hi")->message.find("near-constant 1"),
            std::string::npos);
}

TEST(LintProbBounds, CleanOnZooCircuit) {
  EXPECT_TRUE(lint_pass(make_circuit("c17"), "prob-bounds").clean());
}

// --- structure --------------------------------------------------------------

TEST(LintStructurePass, ReportsCensusAndReconvergence) {
  const Netlist net = make_circuit("c17");
  const LintReport rep = lint_pass(net, "structure");
  EXPECT_EQ(rep.infos, 1u);
  EXPECT_TRUE(rep.clean());  // info-only
  EXPECT_EQ(rep.structure.gates, net.num_gates());
  EXPECT_EQ(rep.structure.depth, net.depth());
  EXPECT_GT(rep.structure.reconvergent_gates, 0u);  // c17 reconverges
  ASSERT_EQ(rep.diagnostics.size(), 1u);
  EXPECT_NE(rep.diagnostics[0].message.find("depth "), std::string::npos);
}

TEST(LintStructurePass, FanoutFreeTreeHasNoReconvergence) {
  const Netlist net = read_bench_string(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\n"
      "l = AND(a, b)\nr = OR(c, d)\ny = XOR(l, r)\n");
  const LintReport rep = lint_pass(net, "structure");
  EXPECT_EQ(rep.structure.reconvergent_gates, 0u);
  EXPECT_EQ(rep.structure.stems, 0u);
}

// --- diagnostic cap ---------------------------------------------------------

TEST(Lint, MaxPerPassCapsEmissionButTotalsKeepCounting) {
  std::string bench = "OUTPUT(y)\nINPUT(a)\ny = BUF(a)\n";
  for (int i = 0; i < 5; ++i)
    bench += "INPUT(f" + std::to_string(i) + ")\n";  // five floating inputs
  const Netlist net = read_bench_string(bench);
  LintOptions opts;
  opts.passes = {"unused-net"};
  opts.max_per_pass = 2;
  const LintReport rep = run_lint(net, opts);
  EXPECT_EQ(rep.warnings, 5u);  // totals see past the cap
  ASSERT_EQ(rep.diagnostics.size(), 3u);  // two findings + the closing note
  const LintDiagnostic& note = rep.diagnostics.back();
  EXPECT_EQ(note.severity, LintSeverity::Info);
  EXPECT_NE(note.message.find("3 further findings suppressed"),
            std::string::npos);
  EXPECT_EQ(rep.infos, 0u);  // the note is bookkeeping, not a finding
}

// --- golden JSON ------------------------------------------------------------

TEST(Lint, GoldenJsonReport) {
  const Netlist net = read_bench_string(
      "INPUT(a)\nOUTPUT(z)\nc = CONST0()\nz = AND(a, c)\n");
  LintOptions opts;
  opts.passes = {"const-gate"};
  const std::string json = run_lint(net, opts).to_json(0);
  EXPECT_EQ(
      json,
      "{\"netlist\":{\"nodes\":3,\"inputs\":1,\"outputs\":1,\"gates\":2},"
      "\"passes\":[\"const-gate\"],"
      "\"summary\":{\"errors\":1,\"warnings\":0,\"infos\":0,\"clean\":false},"
      "\"structure\":{\"depth\":1,\"stems\":0,\"max_fanin\":2,"
      "\"max_fanout\":1,\"widest_level\":2,\"reconvergent_gates\":0},"
      "\"diagnostics\":[{\"pass\":\"const-gate\",\"severity\":\"error\","
      "\"node\":2,\"name\":\"z\",\"message\":\"primary output 'z' is "
      "provably stuck at 0 — every fault in its cone is undetectable "
      "through it\",\"hint\":\"a constant output is almost certainly a "
      "capture bug; fix the netlist or drop the output\"}]}");
}

// --- constant fold ----------------------------------------------------------

void expect_fold_parity(const Netlist& net, std::uint64_t seed) {
  const FoldResult fold = fold_constants(net);
  ASSERT_TRUE(fold.netlist.finalized());
  ASSERT_EQ(fold.netlist.inputs().size(), net.inputs().size());
  ASSERT_EQ(fold.netlist.outputs().size(), net.outputs().size());

  constexpr std::size_t kWords = 4;  // 256 patterns per pass
  WordSimulator sim(net, kWords);
  WordSimulator folded(fold.netlist, kWords);
  for (int pass = 0; pass < 4; ++pass) {
    for (std::size_t i = 0; i < net.inputs().size(); ++i) {
      const auto a = sim.input_words(i);
      const auto b = folded.input_words(i);
      for (std::size_t w = 0; w < kWords; ++w) a[w] = b[w] = splitmix64(seed);
    }
    sim.run();
    folded.run();
    for (std::size_t k = 0; k < net.outputs().size(); ++k) {
      const auto a = sim.node_words(net.outputs()[k]);
      const auto b = folded.node_words(fold.netlist.outputs()[k]);
      for (std::size_t w = 0; w < kWords; ++w)
        ASSERT_EQ(a[w], b[w]) << "output " << k << " word " << w;
    }
  }
}

TEST(Fold, RemovesDecidedGatesAndKeepsOutputsBitIdentical) {
  const Netlist net = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\n"
      "c1 = CONST1()\n"
      "t = AND(a, c1)\n"  // not lattice-decidable: kept, fanin folded
      "u = OR(b, c1)\n"   // stuck at 1: removed
      "y = XOR(t, u)\n"
      "z = AND(u, b)\n");
  const FoldResult fold = fold_constants(net);
  EXPECT_EQ(fold.removed, 2u);  // c1 and u
  EXPECT_GT(fold.const_nodes, 0u);
  expect_fold_parity(net, /*seed=*/7);
}

TEST(Fold, ConstantOutputKeepsNameAndValue) {
  const Netlist net = read_bench_string(
      "INPUT(a)\nOUTPUT(z)\nc = CONST0()\nz = AND(a, c)\n");
  const FoldResult fold = fold_constants(net);
  const NodeId z = fold.netlist.outputs()[0];
  EXPECT_EQ(fold.netlist.gate(z).type, GateType::Const0);
  EXPECT_EQ(fold.netlist.gate(z).name, "z");
  expect_fold_parity(net, /*seed=*/11);
}

TEST(Fold, ParityOnZooCircuits) {
  std::uint64_t seed = 1;
  for (const char* name : {"c17", "alu", "div"})
    expect_fold_parity(make_circuit(name), seed++);
}

TEST(Fold, PrimaryOutputIsPrimaryInputPassthrough) {
  // Corner: a PO that IS a PI (and a Buf passthrough next to it).  The
  // input survives by the all-inputs rule, and the output loop must remap
  // it to the folded input, not to a dangling kNoNode.
  Netlist net;
  const NodeId a = net.add_input("a");
  const NodeId b = net.add_input("b");
  net.mark_output(a);
  net.mark_output(net.add_gate(GateType::Buf, {b}, "y"));
  net.finalize();
  const FoldResult fold = fold_constants(net);
  ASSERT_NE(fold.remap[a], kNoNode);
  EXPECT_EQ(fold.netlist.gate(fold.remap[a]).type, GateType::Input);
  EXPECT_EQ(fold.netlist.outputs()[0], fold.remap[a]);
  expect_fold_parity(net, /*seed=*/23);
}

// --- fault passes -----------------------------------------------------------

TEST(LintFaultPasses, FlagRedundantFaultsOnLearnedConstant) {
  // t = XOR(a, a) is 0 for every input vector — invisible to the plain
  // forward lattice, proven by the implication engine's recursive
  // learning.  Faults needing t = 1 to excite are then undetectable.
  const Netlist net = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
      "t = XOR(a, a)\n"
      "y = OR(t, b)\n");
  const LintReport rep = lint_pass(net, "redundant-fault");
  EXPECT_GE(rep.warnings, 1u);
  bool saw = false;
  for (const LintDiagnostic& d : rep.diagnostics) {
    EXPECT_EQ(d.pass, "redundant-fault");
    if (d.message.find("provably undetectable") != std::string::npos)
      saw = true;
  }
  EXPECT_TRUE(saw);
}

TEST(LintFaultPasses, UntestableFaultPassEmitsCensus) {
  const LintReport rep = lint_pass(make_circuit("c17"), "untestable-fault");
  // c17 is small and irredundant: no warnings, but the census Info line
  // always closes the pass.
  EXPECT_EQ(rep.warnings, 0u);
  ASSERT_GE(rep.diagnostics.size(), 1u);
  const LintDiagnostic& census = rep.diagnostics.back();
  EXPECT_EQ(census.severity, LintSeverity::Info);
  EXPECT_NE(census.message.find("collapsed faults"), std::string::npos);
}

TEST(LintFaultPasses, BundledCorpusClassifiesAsKnown) {
  // The checked-in corpus loads from PROTEST_DATA.  c17 is irredundant:
  // zero redundant-fault findings.  The SN74181 ALU model genuinely
  // contains constant nodes (the implication engine proves four const-1
  // nets), so it MUST produce redundant-fault warnings.
  const char* data = std::getenv("PROTEST_DATA");
  ASSERT_NE(data, nullptr) << "PROTEST_DATA not set (see CMakeLists.txt)";
  LintOptions opts;
  opts.faults = true;
  const Netlist c17 =
      read_bench_file(std::string(data) + "/c17.bench");
  const LintReport c17_rep = run_lint(c17, opts);
  EXPECT_EQ(c17_rep.errors, 0u);
  for (const LintDiagnostic& d : c17_rep.diagnostics)
    EXPECT_NE(d.pass, "redundant-fault") << d.message;
  const Netlist alu =
      read_bench_file(std::string(data) + "/alu74181.bench");
  const LintReport alu_rep = run_lint(alu, opts);
  EXPECT_EQ(alu_rep.errors, 0u);
  std::size_t redundant = 0;
  for (const LintDiagnostic& d : alu_rep.diagnostics)
    redundant += d.pass == "redundant-fault";
  EXPECT_GT(redundant, 0u);
}

// --- interval containment ---------------------------------------------------

TEST(ProbBounds, IntervalsContainEveryEngineEstimateOnZoo) {
  for (const char* circuit : {"c17", "alu"}) {
    const Netlist net = make_circuit(circuit);
    const InputProbs probs = uniform_input_probs(net, 0.5);
    const SignalProbBounds bounds = signal_prob_bounds(net, probs);
    for (const std::string& engine : engine_names()) {
      EngineConfig cfg;
      cfg.monte_carlo.seed = 12345;
      cfg.monte_carlo.num_patterns = 100'000;
      const std::vector<double> est =
          make_engine(engine, net, cfg)->signal_probs(probs);
      ASSERT_EQ(est.size(), net.size());
      // Monte Carlo estimates scatter around the true value: the slack
      // is the Hoeffding tolerance (validate/stats.hpp) at aggregate
      // false-positive rate 1e-6, Bonferroni-split across the two zoo
      // circuits and each circuit's per-node comparisons; exact and
      // estimator engines only get float dust.
      const double slack =
          engine == "monte-carlo"
              ? mc_tolerance(100'000, net.size(), net.inputs().size(),
                             1e-6 / 2)
              : 1e-9;
      for (NodeId n = 0; n < net.size(); ++n) {
        EXPECT_GE(est[n], bounds.lo[n] - slack)
            << circuit << "/" << engine << " node " << n;
        EXPECT_LE(est[n], bounds.hi[n] + slack)
            << circuit << "/" << engine << " node " << n;
      }
    }
  }
}

TEST(ProbBounds, ExactOnFanoutFreeTree) {
  const Netlist net = read_bench_string(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\n"
      "l = AND(a, b)\nr = OR(c, d)\ny = XOR(l, r)\n");
  const SignalProbBounds bounds =
      signal_prob_bounds(net, uniform_input_probs(net, 0.5));
  EXPECT_EQ(bounds.frechet_gates, 0u);
  for (NodeId n = 0; n < net.size(); ++n) {
    EXPECT_TRUE(bounds.exact[n]) << "node " << n;
    EXPECT_DOUBLE_EQ(bounds.lo[n], bounds.hi[n]) << "node " << n;
  }
  const NodeId y = net.outputs()[0];
  // P(l) = 1/4, P(r) = 3/4, independent: P(y) = p + q - 2pq = 5/8.
  EXPECT_DOUBLE_EQ(bounds.lo[y], 0.625);
}

}  // namespace
}  // namespace protest
