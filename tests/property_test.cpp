// Parameterized property sweeps: invariants that must hold on whole
// families of random circuits and parameter grids, not just hand-picked
// examples.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "circuits/random_circuit.hpp"
#include "lint/fault_analyze.hpp"
#include "lint/prob_bounds.hpp"
#include "measures/scoap.hpp"
#include "observe/detect.hpp"
#include "prob/cutting.hpp"
#include "prob/exact.hpp"
#include "prob/naive.hpp"
#include "prob/protest_estimator.hpp"
#include "sim/fault_sim.hpp"
#include "sim/logic_sim.hpp"
#include "sim/signature.hpp"
#include "testlen/test_length.hpp"
#include "validate/stats.hpp"

namespace protest {
namespace {

Netlist random_net(std::uint64_t seed, std::size_t inputs = 7,
                   std::size_t gates = 45) {
  RandomCircuitParams p;
  p.num_inputs = inputs;
  p.num_gates = gates;
  p.seed = seed;
  return make_random_circuit(p);
}

// ---------------------------------------------------------------------
// Estimator accuracy is monotone-ish in MAXVERS: more conditioning never
// hurts much (allowing heuristic slack), and MAXVERS=6 beats naive.
class EstimatorParamSweep
    : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(EstimatorParamSweep, ConditioningBeatsNaive) {
  const auto [seed, maxlist] = GetParam();
  const Netlist net = random_net(static_cast<std::uint64_t>(seed));
  const auto ip = uniform_input_probs(net, 0.5);
  const auto exact = exact_signal_probs_bdd(net, ip);

  auto total_err = [&](unsigned maxvers) {
    ProtestParams params;
    params.maxvers = maxvers;
    params.maxlist = maxlist;
    const auto est = ProtestEstimator(net, params).signal_probs(ip);
    double e = 0;
    for (NodeId n = 0; n < net.size(); ++n) e += std::abs(est[n] - exact[n]);
    return e;
  };
  const double naive_err = total_err(0);
  const double cond_err = total_err(6);
  EXPECT_LE(cond_err, naive_err + 0.05)
      << "maxlist=" << maxlist << ": " << cond_err << " vs " << naive_err;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EstimatorParamSweep,
    ::testing::Combine(::testing::Values(21, 22, 23, 24),
                       ::testing::Values(4u, 12u, 0u)));

// ---------------------------------------------------------------------
// Detection estimates must track exhaustive simulation on random circuits.
class DetectionTracking : public ::testing::TestWithParam<int> {};

TEST_P(DetectionTracking, EstimateCorrelatesWithExhaustiveSim) {
  const Netlist net = random_net(static_cast<std::uint64_t>(GetParam()), 8, 50);
  const auto faults = structural_fault_list(net);
  const auto ip = uniform_input_probs(net, 0.5);
  const ProtestEstimator est(net);
  const auto p = est.signal_probs(ip);
  const auto obs = compute_observability(net, p);
  const auto dp = detection_probs(net, faults, p, obs);
  const auto psim = simulate_faults(net, faults, PatternSet::exhaustive(8),
                                    FaultSimMode::CountDetections)
                        .detection_probs();
  // Pearson over the pairs; random circuits are messy, so the bar is
  // modest — but it must be clearly positive tracking.
  double sx = 0, sy = 0, sxy = 0, sxx = 0, syy = 0;
  const double n = static_cast<double>(dp.size());
  for (std::size_t i = 0; i < dp.size(); ++i) {
    sx += dp[i];
    sy += psim[i];
  }
  const double mx = sx / n, my = sy / n;
  for (std::size_t i = 0; i < dp.size(); ++i) {
    sxy += (dp[i] - mx) * (psim[i] - my);
    sxx += (dp[i] - mx) * (dp[i] - mx);
    syy += (psim[i] - my) * (psim[i] - my);
  }
  ASSERT_GT(sxx, 0.0);
  ASSERT_GT(syy, 0.0);
  EXPECT_GT(sxy / std::sqrt(sxx * syy), 0.6) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectionTracking, ::testing::Range(31, 39));

// ---------------------------------------------------------------------
// Cutting bounds contain the exact probability — swept wider than the
// unit test, including biased input tuples.
class CuttingContainment : public ::testing::TestWithParam<int> {};

TEST_P(CuttingContainment, BoundsHoldUnderBiasedInputs) {
  const Netlist net = random_net(static_cast<std::uint64_t>(GetParam()), 7, 60);
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  std::uniform_real_distribution<double> uni(0.02, 0.98);
  std::vector<double> ip(7);
  for (double& p : ip) p = uni(rng);
  const auto exact = exact_signal_probs_bdd(net, ip);
  const auto bounds = cutting_signal_bounds(net, ip);
  for (NodeId n = 0; n < net.size(); ++n)
    ASSERT_TRUE(bounds[n].contains(exact[n]))
        << "node " << n << ": " << exact[n] << " not in [" << bounds[n].lo
        << "," << bounds[n].hi << "]";
}

INSTANTIATE_TEST_SUITE_P(Seeds, CuttingContainment, ::testing::Range(41, 47));

// ---------------------------------------------------------------------
// Fault-simulation invariants: a pattern cannot detect both polarities of
// the same stem fault, and counts are bounded by the pattern count.
class FaultSimInvariants : public ::testing::TestWithParam<int> {};

TEST_P(FaultSimInvariants, PolarityDisjointAndBounded) {
  const Netlist net = random_net(static_cast<std::uint64_t>(GetParam()), 6, 40);
  std::vector<Fault> faults;
  for (NodeId n = 0; n < net.size(); ++n) {
    faults.push_back({n, -1, StuckAt::Zero});
    faults.push_back({n, -1, StuckAt::One});
  }
  const PatternSet ps = PatternSet::random(6, 512, GetParam());
  const auto res =
      simulate_faults(net, faults, ps, FaultSimMode::CountDetections);
  for (std::size_t i = 0; i < faults.size(); i += 2) {
    EXPECT_LE(res.detect_count[i] + res.detect_count[i + 1], 512u)
        << to_string(net, faults[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSimInvariants, ::testing::Range(51, 57));

// ---------------------------------------------------------------------
// Weighted pattern sources realize their probabilities.  The band is the
// Hoeffding tolerance from validate/stats.hpp at aggregate false-positive
// rate 1e-6 Bonferroni-split across every (seed, input) comparison the
// suite makes — replacing the old hand-tuned 4-sigma band whose aggregate
// rate was ~2e-3.
class WeightedSourceAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(WeightedSourceAccuracy, FrequenciesWithinDerivedBound) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::uniform_int_distribution<int> kdist(1, 15);
  std::vector<double> probs(6);
  for (double& p : probs) p = kdist(rng) / 16.0;
  const std::size_t n = 30'000;
  constexpr std::size_t kSeeds = 6;  // ::testing::Range(61, 67) below
  const double tol = mc_tolerance(n, kSeeds * 6, probs.size());
  const PatternSet ps = PatternSet::weighted(probs, n, rng());
  for (std::size_t i = 0; i < probs.size(); ++i) {
    std::size_t ones = 0;
    for (std::size_t p = 0; p < n; ++p) ones += ps.get(p, i);
    const double freq = static_cast<double>(ones) / static_cast<double>(n);
    EXPECT_NEAR(freq, probs[i], tol) << "input " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedSourceAccuracy,
                         ::testing::Range(61, 67));

// ---------------------------------------------------------------------
// required_test_length returns the *minimal* N on random profiles.
class TestLengthMinimality : public ::testing::TestWithParam<int> {};

TEST_P(TestLengthMinimality, NIsTightAtTheConfidence) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::uniform_real_distribution<double> uni(0.001, 0.9);
  std::vector<double> pf(20);
  for (double& p : pf) p = uni(rng);
  for (double e : {0.9, 0.99}) {
    const std::uint64_t n = required_test_length(pf, 1.0, e);
    ASSERT_NE(n, kInfiniteTestLength);
    EXPECT_GE(set_detection_prob(pf, n), e);
    if (n > 1) {
      EXPECT_LT(set_detection_prob(pf, n - 1), e);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TestLengthMinimality, ::testing::Range(71, 77));

// ---------------------------------------------------------------------
// SCOAP structural invariants on random circuits.
class ScoapInvariants : public ::testing::TestWithParam<int> {};

TEST_P(ScoapInvariants, StemCoIsMinOfPinCos) {
  const Netlist net = random_net(static_cast<std::uint64_t>(GetParam()), 6, 40);
  const auto m = compute_scoap(net);
  for (NodeId n = 0; n < net.size(); ++n) {
    unsigned best = net.is_output(n) ? 0u : 1'000'000'000u;
    for (NodeId c : net.fanout(n)) {
      const auto& fanin = net.gate(c).fanin;
      for (std::size_t k = 0; k < fanin.size(); ++k)
        if (fanin[k] == n) best = std::min(best, m.pin_co[c][k]);
    }
    EXPECT_EQ(m.co[n], best) << "node " << n;
  }
}

TEST_P(ScoapInvariants, ControllabilityAtLeastOneForReachableValues) {
  const Netlist net = random_net(static_cast<std::uint64_t>(GetParam()), 6, 40);
  const auto m = compute_scoap(net);
  // Exhaustively find which values each node can take; any attainable
  // value must have finite SCOAP controllability.
  const PatternSet all = PatternSet::exhaustive(6);
  const auto ones = count_ones(net, all);
  for (NodeId n = 0; n < net.size(); ++n) {
    if (ones[n] > 0) {
      EXPECT_LT(m.cc1[n], 1'000'000'000u) << n;
    }
    if (ones[n] < all.num_patterns()) {
      EXPECT_LT(m.cc0[n], 1'000'000'000u) << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScoapInvariants, ::testing::Range(81, 86));

// ---------------------------------------------------------------------
// Signature BIST: signature-detected is a subset of output-detected and
// the subset property holds across MISR widths.
class SignatureInvariants : public ::testing::TestWithParam<int> {};

TEST_P(SignatureInvariants, SignatureDetectionSubset) {
  const Netlist net = random_net(static_cast<std::uint64_t>(GetParam()), 6, 35);
  const auto faults = collapsed_fault_list(net);
  const PatternSet ps = PatternSet::random(6, 128, GetParam());
  for (unsigned width : {3u, 8u, 24u}) {
    const BistResult r = signature_bist(net, faults, ps, width);
    EXPECT_LE(r.detected_by_signature, r.detected_by_outputs);
    EXPECT_EQ(r.detected_by_outputs - r.aliased, r.detected_by_signature);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SignatureInvariants, ::testing::Range(91, 95));

// ---------------------------------------------------------------------
// Static interval soundness, the full chain: every exact signal
// probability sits inside its static interval, and every Monte-Carlo
// detection estimate sits inside its static fault interval (pattern-seed
// independent — simulate_faults_pruned throws past 6 sigma).
class StaticIntervalSoundness : public ::testing::TestWithParam<int> {};

TEST_P(StaticIntervalSoundness, ExactSignalProbsInsideStaticBounds) {
  const Netlist net = random_net(static_cast<std::uint64_t>(GetParam()), 7, 50);
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 2663);
  std::uniform_real_distribution<double> uni(0.05, 0.95);
  InputProbs ip(7);
  for (double& p : ip) p = uni(rng);
  const auto exact = exact_signal_probs_bdd(net, ip);
  const SignalProbBounds bounds = signal_prob_bounds(net, ip);
  for (NodeId n = 0; n < net.size(); ++n) {
    ASSERT_GE(exact[n], bounds.lo[n] - 1e-9) << "node " << n;
    ASSERT_LE(exact[n], bounds.hi[n] + 1e-9) << "node " << n;
  }
}

TEST_P(StaticIntervalSoundness, McDetectionEstimatesInsideFaultIntervals) {
  const Netlist net = random_net(static_cast<std::uint64_t>(GetParam()), 7, 50);
  const auto faults = collapsed_fault_list(net);
  const FaultAnalysis fa = analyze_faults(net, faults);
  // Any pattern seed must land inside the intervals: the pruned
  // simulator's built-in 6-sigma cross-check is the assertion.
  for (const std::uint64_t pseed : {1u, 77u, 4242u}) {
    const PatternSet ps = PatternSet::random(net.inputs().size(), 2048, pseed);
    EXPECT_NO_THROW(simulate_faults_pruned(
        net, faults, ps, FaultSimMode::CountDetections, fa))
        << "circuit seed " << GetParam() << " pattern seed " << pseed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StaticIntervalSoundness,
                         ::testing::Range(201, 207));

}  // namespace
}  // namespace protest
