// Scan-path extraction: sequential .bench -> combinational core.
#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"
#include "protest/protest.hpp"
#include "sim/scan.hpp"

namespace protest {
namespace {

// A 2-bit synchronous counter with enable:
//   q0' = q0 XOR en;  q1' = q1 XOR (q0 AND en);  out = q1 AND q0
const char* kCounter = R"(
INPUT(en)
OUTPUT(out)
q0 = DFF(n0)
q1 = DFF(n1)
n0 = XOR(q0, en)
t = AND(q0, en)
n1 = XOR(q1, t)
out = AND(q1, q0)
)";

TEST(Scan, ExtractsCoreStructure) {
  const ScanDesign d = extract_scan_design(kCounter);
  EXPECT_EQ(d.num_primary_inputs, 1u);
  EXPECT_EQ(d.num_primary_outputs, 1u);
  EXPECT_EQ(d.num_flops(), 2u);
  EXPECT_EQ(d.flop_names, (std::vector<std::string>{"q0", "q1"}));
  // Core: 1 PI + 2 pseudo-inputs; 1 PO + 2 pseudo-outputs.
  EXPECT_EQ(d.comb.inputs().size(), 3u);
  EXPECT_EQ(d.comb.outputs().size(), 3u);
}

TEST(Scan, ClockCycleMatchesCounterSemantics) {
  const ScanDesign d = extract_scan_design(kCounter);
  std::vector<bool> state{false, false};  // q0, q1
  unsigned count = 0;
  for (int step = 0; step < 10; ++step) {
    const CycleResult r = clock_cycle(d, {true}, state);
    // Counter semantics: with en=1 the state increments mod 4.
    count = (count + 1) % 4;
    state = r.next_state;
    const unsigned got = unsigned(state[0]) | (unsigned(state[1]) << 1);
    EXPECT_EQ(got, count) << "step " << step;
  }
  // en = 0 holds the state.
  const CycleResult hold = clock_cycle(d, {false}, state);
  EXPECT_EQ(hold.next_state, state);
}

TEST(Scan, OutputReflectsState) {
  const ScanDesign d = extract_scan_design(kCounter);
  const CycleResult r = clock_cycle(d, {false}, {true, true});
  EXPECT_TRUE(r.outputs[0]);  // out = q1 & q0
  const CycleResult r2 = clock_cycle(d, {false}, {true, false});
  EXPECT_FALSE(r2.outputs[0]);
}

TEST(Scan, CombinationalInputPassesThrough) {
  const ScanDesign d = extract_scan_design(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n");
  EXPECT_EQ(d.num_flops(), 0u);
  EXPECT_EQ(d.comb.inputs().size(), 2u);
  const CycleResult r = clock_cycle(d, {true, true}, {});
  EXPECT_TRUE(r.outputs[0]);
}

TEST(Scan, FullProtestPipelineOnCore) {
  // The paper's whole premise: analyze the scan core like any
  // combinational circuit.
  const ScanDesign d = extract_scan_design(kCounter);
  const Protest tool(d.comb);
  const auto report = tool.analyze(uniform_input_probs(d.comb, 0.5));
  const std::uint64_t n = tool.test_length(report, 1.0, 0.95);
  EXPECT_LT(n, 1'000u);
  const auto sim = tool.fault_simulate(
      tool.generate_patterns(report.input_probs, n, 1),
      FaultSimMode::FirstDetection);
  EXPECT_GT(sim.coverage(), 0.95);
}

TEST(Scan, RejectsMalformedDff) {
  EXPECT_THROW(extract_scan_design("INPUT(a)\nOUTPUT(q)\nq = DFF(a, b)\n"),
               BenchParseError);
  EXPECT_THROW(extract_scan_design("INPUT(a)\nOUTPUT(q)\nq = DFF(\n"),
               BenchParseError);
}

}  // namespace
}  // namespace protest
