// The polymorphic SignalProbEngine layer: registry round-trips, uniform
// input validation, cross-engine parity on fanout-reconvergence-free
// circuits (where independence propagation is provably exact, so every
// point-estimate engine must agree with the exact oracles), and the
// batched evaluation contract.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "circuits/iscas.hpp"
#include "circuits/random_circuit.hpp"
#include "netlist/builder.hpp"
#include "prob/engine.hpp"
#include "prob/naive.hpp"
#include "protest/protest.hpp"
#include "validate/stats.hpp"

namespace protest {
namespace {

/// Seeded random tree circuit: every node feeds exactly one consumer, so
/// the result is fanout-reconvergence-free by construction.
Netlist make_random_tree(std::uint64_t seed, std::size_t num_leaves = 12) {
  NetlistBuilder bld;
  std::mt19937_64 rng(seed);
  std::vector<NodeId> pool;
  for (std::size_t i = 0; i < num_leaves; ++i)
    pool.push_back(bld.input("i" + std::to_string(i)));
  const GateType kinds[] = {GateType::And,  GateType::Nand, GateType::Or,
                            GateType::Nor,  GateType::Xor,  GateType::Xnor,
                            GateType::Not,  GateType::Buf};
  while (pool.size() > 1) {
    std::uniform_int_distribution<std::size_t> pick_kind(0, 7);
    const GateType t = kinds[pick_kind(rng)];
    const std::size_t arity =
        (t == GateType::Not || t == GateType::Buf)
            ? 1
            : std::min<std::size_t>(
                  pool.size(),
                  std::uniform_int_distribution<std::size_t>(2, 3)(rng));
    std::vector<NodeId> fanin;
    for (std::size_t i = 0; i < arity; ++i) {
      std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
      const std::size_t j = pick(rng);
      fanin.push_back(pool[j]);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(j));
    }
    pool.push_back(bld.gate(t, std::move(fanin)));
  }
  bld.output(pool[0], "y");
  return bld.build();
}

InputProbs random_tuple(const Netlist& net, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.05, 0.95);
  InputProbs ip(net.inputs().size());
  for (double& p : ip) p = uni(rng);
  return ip;
}

TEST(EngineRegistry, RoundTripsEveryAdvertisedName) {
  const Netlist net = make_c17();
  const auto names = engine_names();
  // >= because the process-wide registry may have picked up extra engines
  // (CustomEnginesPlugIn runs in this binary); the five builtins are
  // checked by name below.
  EXPECT_GE(names.size(), 5u);
  for (const std::string& name : names) {
    const auto engine = make_engine(name, net);
    ASSERT_NE(engine, nullptr) << name;
    const auto p = engine->signal_probs(uniform_input_probs(net, 0.5));
    EXPECT_EQ(p.size(), net.size()) << name;
  }
  // name() round-trips for the builtins; custom registrations may wrap a
  // builtin engine and legitimately keep its name.
  for (const char* name :
       {"exact-bdd", "exact-enum", "monte-carlo", "naive", "protest"})
    EXPECT_EQ(make_engine(name, net)->name(), name);
}

TEST(EngineRegistry, AdvertisesTheFiveBuiltins) {
  const auto names = engine_names();
  for (const char* expected :
       {"exact-bdd", "exact-enum", "monte-carlo", "naive", "protest"})
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
}

TEST(EngineRegistry, ThrowsOnUnknownName) {
  const Netlist net = make_c17();
  EXPECT_THROW(make_engine("no-such-engine", net), std::invalid_argument);
  try {
    make_engine("no-such-engine", net);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The message must list the registered engines.
    EXPECT_NE(std::string(e.what()).find("protest"), std::string::npos);
  }
}

TEST(EngineRegistry, CustomEnginesPlugIn) {
  register_engine("custom-naive",
                  [](const Netlist& net, const EngineConfig&) {
                    return std::make_unique<NaiveEngine>(net);
                  });
  const Netlist net = make_c17();
  const auto engine = make_engine("custom-naive", net);
  EXPECT_EQ(engine->name(), "naive");  // wrapper keeps its own name
  const auto names = engine_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "custom-naive"),
            names.end());
}

TEST(EngineRegistry, ConfigReachesTheEngines) {
  const Netlist net = make_c17();
  EngineConfig cfg;
  cfg.protest.maxvers = 2;
  cfg.monte_carlo.num_patterns = 64;
  const auto prot = make_engine("protest", net, cfg);
  EXPECT_EQ(dynamic_cast<const ProtestEngine&>(*prot).params().maxvers, 2u);
  const auto mc = make_engine("monte-carlo", net, cfg);
  EXPECT_EQ(dynamic_cast<const MonteCarloEngine&>(*mc).params().num_patterns,
            64u);
}

TEST(EngineValidation, UniformAcrossEngines) {
  const Netlist net = make_c17();
  const double too_few[] = {0.5};
  std::vector<double> out_of_range(net.inputs().size(), 0.5);
  out_of_range[2] = 1.5;
  for (const std::string& name : engine_names()) {
    const auto engine = make_engine(name, net);
    EXPECT_THROW(engine->signal_probs(too_few), std::invalid_argument) << name;
    EXPECT_THROW(engine->signal_probs(out_of_range), std::invalid_argument)
        << name;
    const std::vector<InputProbs> bad_batch = {
        uniform_input_probs(net, 0.5), InputProbs{0.5}};
    EXPECT_THROW(engine->signal_probs_batch(bad_batch), std::invalid_argument)
        << name;
  }
}

TEST(EngineValidation, RejectsUnfinalizedNetlist) {
  Netlist net;
  net.add_input("a");
  EXPECT_THROW(NaiveEngine{net}, std::invalid_argument);
  try {
    const MonteCarloEngine engine(net);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("finalized"), std::string::npos);
  }
}

// On fanout-reconvergence-free circuits every point-estimate engine is
// exact, so naive == exact-bdd == exact-enum == protest (within 1e-9) and
// Monte-Carlo lands within the Hoeffding tolerance derived from an
// aggregate 1e-6 false-positive budget split across the six seeds and
// each circuit's per-node comparisons (validate/stats.hpp).
class EngineParity : public ::testing::TestWithParam<int> {};

TEST_P(EngineParity, AgreeOnReconvergenceFreeCircuits) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const Netlist net = make_random_tree(seed);
  ASSERT_TRUE(is_fanout_reconvergence_free(net));
  const InputProbs ip = random_tuple(net, seed * 977 + 1);

  EngineConfig cfg;
  cfg.monte_carlo.num_patterns = 200'000;
  cfg.monte_carlo.seed = seed + 42;
  const auto exact = make_engine("exact-bdd", net, cfg)->signal_probs(ip);
  for (const std::string name : {"naive", "exact-enum", "protest"}) {
    const auto p = make_engine(name, net, cfg)->signal_probs(ip);
    ASSERT_EQ(p.size(), exact.size());
    for (NodeId n = 0; n < net.size(); ++n)
      EXPECT_NEAR(p[n], exact[n], 1e-9) << name << " node " << n;
  }
  const auto mc = make_engine("monte-carlo", net, cfg)->signal_probs(ip);
  const double tol = mc_tolerance(cfg.monte_carlo.num_patterns, net.size(),
                                  net.inputs().size(), 1e-6 / 6);
  for (NodeId n = 0; n < net.size(); ++n)
    EXPECT_NEAR(mc[n], exact[n], tol) << "node " << n;
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineParity, ::testing::Range(1, 7));

TEST(EngineBatch, MatchesSingleCallsOnEveryEngine) {
  // Batch contract on a reconvergence-free circuit: every engine's batch
  // result equals its per-tuple single calls bit for bit (no conditioning
  // happens, so even the PROTEST frozen-selection semantics coincide).
  const Netlist net = make_random_tree(11);
  ASSERT_TRUE(is_fanout_reconvergence_free(net));
  std::vector<InputProbs> batch;
  for (std::uint64_t s = 0; s < 4; ++s)
    batch.push_back(random_tuple(net, 1000 + s));

  EngineConfig cfg;
  cfg.monte_carlo.num_patterns = 4096;
  for (const std::string& name : engine_names()) {
    const auto engine = make_engine(name, net, cfg);
    const auto got = engine->signal_probs_batch(batch);
    ASSERT_EQ(got.size(), batch.size()) << name;
    for (std::size_t t = 0; t < batch.size(); ++t) {
      const auto want = engine->signal_probs(batch[t]);
      for (NodeId n = 0; n < net.size(); ++n)
        EXPECT_EQ(got[t][n], want[n]) << name << " tuple " << t << " node "
                                      << n;
    }
  }
}

TEST(EngineBatch, ProtestAnchorsSelectionOnFirstTuple) {
  // On a reconvergent circuit the PROTEST batch reuses the conditioning
  // sets selected at batch[0]: element 0 must equal the single call
  // exactly, and the remaining tuples must stay close to their fresh
  // evaluations (c17 is small enough that the selection coincides and the
  // estimator stays exact for every uniform tuple).
  const Netlist net = make_c17();
  const auto engine = make_engine("protest", net);
  const std::vector<InputProbs> batch = {uniform_input_probs(net, 0.5),
                                         uniform_input_probs(net, 0.3),
                                         uniform_input_probs(net, 0.8)};
  const auto got = engine->signal_probs_batch(batch);
  ASSERT_EQ(got.size(), 3u);
  for (std::size_t t = 0; t < batch.size(); ++t) {
    const auto want = engine->signal_probs(batch[t]);
    for (NodeId n = 0; n < net.size(); ++n)
      EXPECT_NEAR(got[t][n], want[n], 1e-9) << "tuple " << t << " node " << n;
  }
}

TEST(EngineBatch, FacadeAnalyzeBatchMatchesPerTupleAnalyze) {
  // The facade's batched analysis goes through the engine's batch entry
  // point but must produce the same reports as per-tuple analyze():
  // bit-identical for an engine on the default loop fallback (naive),
  // within estimator tolerance for the PROTEST frozen-selection batch.
  const Netlist net = make_c17();
  const std::vector<InputProbs> batch = {uniform_input_probs(net, 0.5),
                                         uniform_input_probs(net, 0.3),
                                         uniform_input_probs(net, 0.8)};
  for (const char* name : {"naive", "protest"}) {
    ProtestOptions o;
    o.engine = name;
    const Protest tool(net, o);
    const auto reports = tool.analyze_batch(batch);
    ASSERT_EQ(reports.size(), batch.size()) << name;
    for (std::size_t t = 0; t < batch.size(); ++t) {
      const auto want = tool.analyze(batch[t]);
      EXPECT_EQ(reports[t].engine, name);
      EXPECT_EQ(reports[t].input_probs, batch[t]);
      ASSERT_EQ(reports[t].signal_probs.size(), want.signal_probs.size());
      for (NodeId n = 0; n < net.size(); ++n)
        EXPECT_NEAR(reports[t].signal_probs[n], want.signal_probs[n], 1e-9)
            << name << " tuple " << t << " node " << n;
      ASSERT_EQ(reports[t].detection_probs.size(),
                want.detection_probs.size());
      for (std::size_t f = 0; f < want.detection_probs.size(); ++f)
        EXPECT_NEAR(reports[t].detection_probs[f], want.detection_probs[f],
                    1e-9)
            << name << " tuple " << t << " fault " << f;
    }
  }
}

TEST(EnginePerturb, ExactModeMatchesSingleCallOnEveryEngine) {
  // The perturb contract: Exact mode is bit-for-bit the single call on
  // the perturbed tuple — incremental engines via fanout-cone
  // re-evaluation, the rest via deterministic full recomputation.  c17
  // has reconvergent fanout, so the PROTEST conditioning is exercised.
  const Netlist net = make_c17();
  EngineConfig cfg;
  cfg.monte_carlo.num_patterns = 4096;
  const InputProbs base = uniform_input_probs(net, 0.5);
  for (const std::string& name : engine_names()) {
    const auto engine = make_engine(name, net, cfg);
    const std::vector<double> base_probs = engine->signal_probs(base);
    for (std::size_t idx : {std::size_t{0}, std::size_t{4}}) {
      InputProbs perturbed = base;
      perturbed[idx] = 0.125;
      const auto got =
          engine->signal_probs_perturb(base, base_probs, idx, 0.125);
      const auto want = engine->signal_probs(perturbed);
      EXPECT_EQ(got, want) << name << " input " << idx;
    }
  }
}

TEST(EnginePerturb, ValidatesArguments) {
  const Netlist net = make_c17();
  const auto engine = make_engine("protest", net);
  const InputProbs base = uniform_input_probs(net, 0.5);
  const std::vector<double> probs = engine->signal_probs(base);
  EXPECT_THROW(engine->signal_probs_perturb(base, probs, 99, 0.5),
               std::invalid_argument);
  EXPECT_THROW(engine->signal_probs_perturb(base, probs, 0, -0.1),
               std::invalid_argument);
  const std::vector<double> short_probs(3, 0.5);
  EXPECT_THROW(engine->signal_probs_perturb(base, short_probs, 0, 0.5),
               std::invalid_argument);
}

TEST(EnginePerturb, FrozenSelectionMatchesBatchElement) {
  // FrozenSelection reproduces what a batch anchored at the base computes
  // for the perturbed tuple — even when the selection state belongs to a
  // different tuple and must be re-anchored first.
  const Netlist net = make_c17();
  const auto engine = make_engine("protest", net);
  const InputProbs base = uniform_input_probs(net, 0.5);
  const std::vector<double> base_probs = engine->signal_probs(base);
  InputProbs perturbed = base;
  perturbed[1] = 0.8125;
  const auto want = engine->signal_probs_batch(
      std::vector<InputProbs>{base, perturbed})[1];
  engine->signal_probs(uniform_input_probs(net, 0.3));  // de-anchor
  const auto got = engine->signal_probs_perturb(
      base, base_probs, 1, 0.8125, PerturbMode::FrozenSelection);
  EXPECT_EQ(got, want);
}

TEST(EngineBatch, EmptyBatchYieldsEmptyResult) {
  const Netlist net = make_c17();
  for (const std::string& name : engine_names()) {
    const auto engine = make_engine(name, net);
    EXPECT_TRUE(engine->signal_probs_batch({}).empty()) << name;
  }
}

}  // namespace
}  // namespace protest
