// Observability s(x), detection probabilities, miter transform and the
// single-path option (sect. 3).
#include <gtest/gtest.h>

#include "circuits/iscas.hpp"
#include "circuits/random_circuit.hpp"
#include "netlist/builder.hpp"
#include "observe/detect.hpp"
#include "observe/miter.hpp"
#include "observe/single_path.hpp"
#include "prob/exact.hpp"
#include "prob/naive.hpp"
#include "prob/protest_estimator.hpp"
#include "sim/fault_sim.hpp"

namespace protest {
namespace {

/// Exhaustive-simulation detection probability (the P_SIM oracle).
std::vector<double> psim_exhaustive(const Netlist& net,
                                    std::span<const Fault> faults) {
  const PatternSet all = PatternSet::exhaustive(net.inputs().size());
  return simulate_faults(net, faults, all, FaultSimMode::CountDetections)
      .detection_probs();
}

TEST(Observability, ChainOfBuffers) {
  // i -> BUF -> NOT -> PO: every stem fully observable.
  NetlistBuilder bld;
  const NodeId a = bld.input("a");
  const NodeId b = bld.buf(a);
  const NodeId c = bld.inv(b);
  bld.output(c);
  const Netlist net = bld.build();
  const auto p = naive_signal_probs(net, uniform_input_probs(net));
  const auto obs = compute_observability(net, p);
  for (NodeId n = 0; n < net.size(); ++n) EXPECT_DOUBLE_EQ(obs.stem[n], 1.0);
}

TEST(Observability, AndGateSideInput) {
  // y = AND(a, b), p_b = 0.25: s(a-pin) = 0.25.
  NetlistBuilder bld;
  const NodeId a = bld.input("a");
  const NodeId b = bld.input("b");
  const NodeId y = bld.and2(a, b);
  bld.output(y);
  const Netlist net = bld.build();
  const double ip[] = {0.5, 0.25};
  const auto p = naive_signal_probs(net, ip);
  const auto obs = compute_observability(net, p);
  EXPECT_DOUBLE_EQ(obs.pin[y][0], 0.25);
  EXPECT_DOUBLE_EQ(obs.pin[y][1], 0.5);
  EXPECT_DOUBLE_EQ(obs.stem[a], 0.25);
}

TEST(Observability, PaperXorTransferUnderestimates) {
  // Paper formula on XOR: f0 (*) f1 = 1 - 2 p (1-p) < 1; Boolean
  // difference gives exactly 1.  This is the documented fig. 6 bias.
  NetlistBuilder bld;
  const NodeId a = bld.input("a");
  const NodeId b = bld.input("b");
  bld.output(bld.xor2(a, b));
  const Netlist net = bld.build();
  const auto p = naive_signal_probs(net, uniform_input_probs(net, 0.5));
  const NodeId y = net.outputs()[0];
  EXPECT_DOUBLE_EQ(
      gate_transfer(net, y, 0, p, TransferModel::PaperArithmetic), 0.5);
  EXPECT_DOUBLE_EQ(
      gate_transfer(net, y, 0, p, TransferModel::BooleanDifference), 1.0);
}

TEST(Observability, StemModelsDifferOnReconvergence) {
  // Model A (xor-chain) can cancel reconvergent paths; model B cannot.
  const Netlist net = make_c17();
  const auto p = naive_signal_probs(net, uniform_input_probs(net));
  ObservabilityOptions a, b;
  a.stem = StemModel::XorChain;
  b.stem = StemModel::OrChain;
  const auto oa = compute_observability(net, p, a);
  const auto ob = compute_observability(net, p, b);
  const NodeId stem11 = net.find("11");  // fans out to two gates
  EXPECT_LE(oa.stem[stem11], ob.stem[stem11] + 1e-12);
  for (NodeId n = 0; n < net.size(); ++n) {
    EXPECT_GE(oa.stem[n], 0.0);
    EXPECT_LE(oa.stem[n], 1.0);
  }
}

TEST(DetectionProbs, ExactOnTreeCircuit) {
  // On a fanout-free AND-gate circuit with BooleanDifference transfer the
  // estimate equals the exhaustive-simulation value for stem faults.
  NetlistBuilder bld;
  const NodeId a = bld.input("a");
  const NodeId b = bld.input("b");
  const NodeId c = bld.input("c");
  const NodeId y = bld.and2(bld.and2(a, b), c);
  bld.output(y);
  const Netlist net = bld.build();
  const auto faults = structural_fault_list(net);
  const auto p = naive_signal_probs(net, uniform_input_probs(net));
  ObservabilityOptions opts;
  opts.transfer = TransferModel::BooleanDifference;
  const auto obs = compute_observability(net, p, opts);
  const auto est = detection_probs(net, faults, p, obs);
  const auto ref = psim_exhaustive(net, faults);
  for (std::size_t i = 0; i < faults.size(); ++i)
    EXPECT_NEAR(est[i], ref[i], 1e-12) << to_string(net, faults[i]);
}

TEST(DetectionProbs, StuckAtZeroAndOneComplementary) {
  const Netlist net = make_c17();
  const auto p = naive_signal_probs(net, uniform_input_probs(net));
  const auto obs = compute_observability(net, p);
  for (NodeId n = 0; n < net.size(); ++n) {
    const Fault f0{n, -1, StuckAt::Zero};
    const Fault f1{n, -1, StuckAt::One};
    const double d0 = detection_prob(net, f0, p, obs);
    const double d1 = detection_prob(net, f1, p, obs);
    EXPECT_NEAR(d0 + d1, obs.stem[n], 1e-12) << n;
  }
}

TEST(Miter, ExactDetectionEqualsExhaustiveSim) {
  const Netlist net = make_c17();
  const auto faults = structural_fault_list(net);
  const auto ref = psim_exhaustive(net, faults);
  const auto ip = uniform_input_probs(net, 0.5);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const double d = exact_detection_prob_bdd(net, faults[i], ip);
    EXPECT_NEAR(d, ref[i], 1e-12) << to_string(net, faults[i]);
  }
}

TEST(Miter, ExactDetectionRandomCircuits) {
  for (std::uint64_t seed : {11u, 12u}) {
    RandomCircuitParams params;
    params.num_inputs = 6;
    params.num_gates = 35;
    params.seed = seed;
    const Netlist net = make_random_circuit(params);
    const auto faults = structural_fault_list(net);
    const auto ref = psim_exhaustive(net, faults);
    const auto ip = uniform_input_probs(net, 0.5);
    for (std::size_t i = 0; i < faults.size(); i += 3) {  // sample
      const double d = exact_detection_prob_bdd(net, faults[i], ip);
      EXPECT_NEAR(d, ref[i], 1e-12)
          << "seed " << seed << " " << to_string(net, faults[i]);
    }
  }
}

TEST(Miter, EstimatedDetectionTracksExact) {
  // The miter doubles the circuit and correlates every node with its
  // faulty twin, so conditioning needs a deeper W than on c17 itself.
  const Netlist net = make_c17();
  const auto faults = structural_fault_list(net);
  const auto ip = uniform_input_probs(net, 0.5);
  ProtestParams params;
  params.maxvers = 10;
  params.max_candidates = 32;
  double total_err = 0.0;
  for (const Fault& f : faults) {
    const double exact = exact_detection_prob_bdd(net, f, ip);
    const double est = estimated_detection_prob_miter(net, f, ip, params);
    EXPECT_NEAR(est, exact, 0.30) << to_string(net, f);
    total_err += std::abs(est - exact);
  }
  EXPECT_LT(total_err / static_cast<double>(faults.size()), 0.05);
}

TEST(Miter, UnobservableFaultGetsConstMiter) {
  // A node with no path to any output: detection probability 0.
  Netlist net;
  const NodeId a = net.add_input("a");
  const NodeId dead = net.add_gate(GateType::Not, {a}, "dead");
  (void)dead;
  const NodeId y = net.add_gate(GateType::Buf, {a}, "y");
  net.mark_output(y);
  net.finalize();
  const Fault f{net.find("dead"), -1, StuckAt::One};
  const double ip[] = {0.5};
  EXPECT_DOUBLE_EQ(exact_detection_prob_bdd(net, f, ip), 0.0);
}

TEST(SinglePath, LowerBoundsExactDetection) {
  // The best single path is one way to detect: its probability can not
  // exceed the exact detection probability on circuits where the paper's
  // side-input independence holds exactly (tree circuits).
  NetlistBuilder bld;
  const NodeId a = bld.input("a");
  const NodeId b = bld.input("b");
  const NodeId c = bld.input("c");
  bld.output(bld.or2(bld.and2(a, b), c));
  const Netlist net = bld.build();
  const auto faults = structural_fault_list(net);
  const auto p = naive_signal_probs(net, uniform_input_probs(net));
  const auto sp = single_path_detection_probs(net, faults, p);
  const auto ref = psim_exhaustive(net, faults);
  for (std::size_t i = 0; i < faults.size(); ++i)
    EXPECT_LE(sp[i], ref[i] + 1e-12) << to_string(net, faults[i]);
}

TEST(SinglePath, ObservabilityWithinUnit) {
  const Netlist net = make_c17();
  const auto p = naive_signal_probs(net, uniform_input_probs(net));
  const auto sp = single_path_observability(net, p);
  for (NodeId n = 0; n < net.size(); ++n) {
    EXPECT_GE(sp[n], 0.0);
    EXPECT_LE(sp[n], 1.0);
  }
  for (NodeId o : net.outputs()) EXPECT_DOUBLE_EQ(sp[o], 1.0);
}

}  // namespace
}  // namespace protest
