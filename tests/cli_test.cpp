// The command-line front end, driven through run_cli().
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "circuits/iscas.hpp"
#include "prob/engine.hpp"
#include "protest/cli.hpp"

namespace protest {
namespace {

/// Writes text to a temp file and returns its path.
class TempFile {
 public:
  TempFile(const std::string& name, const std::string& text)
      : path_(std::string(::testing::TempDir()) + "/" + name) {
    std::ofstream f(path_);
    f << text;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

struct CliRun {
  int code;
  std::string out, err;
};

CliRun cli(std::vector<std::string> args) {
  std::ostringstream out, err;
  const int code = run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

TEST(Cli, HelpPrintsUsage) {
  const CliRun r = cli({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("protest analyze"), std::string::npos);
  EXPECT_NE(r.out.find("protest serve"), std::string::npos);
}

TEST(Cli, ServeFlagValidation) {
  const TempFile f("c17.bench", c17_bench_text());
  // serve's flags are daemon-scoped; per-query flags are rejected rather
  // than silently ignored, and vice versa.
  EXPECT_EQ(cli({"serve", "--json"}).code, 2);
  EXPECT_EQ(cli({"serve", "--engine", "naive"}).code, 2);
  EXPECT_EQ(cli({"serve", "--artifacts", "scoap"}).code, 2);
  EXPECT_EQ(cli({"serve", "--port", "65536"}).code, 2);
  EXPECT_EQ(cli({"serve", "--p", "0.3"}).code, 2);
  EXPECT_EQ(cli({"serve", "--sweeps", "9"}).code, 2);
  EXPECT_EQ(cli({"serve", "--seed", "7"}).code, 2);
  EXPECT_EQ(cli({"analyze", f.path(), "--cap", "4"}).code, 2);
  EXPECT_EQ(cli({"analyze", f.path(), "--port", "9000"}).code, 2);
  // --inflight is serve-only, and its value is capped before narrowing
  // (each slot is a dispatch thread).
  EXPECT_EQ(cli({"analyze", f.path(), "--inflight", "4"}).code, 2);
  EXPECT_EQ(cli({"serve", "--inflight", "1025"}).code, 2);
  EXPECT_EQ(cli({"serve", "--inflight", "-1"}).code, 2);
  EXPECT_EQ(cli({"serve", "--inflight", "many"}).code, 2);
  const CliRun r = cli({"serve", "--wibble"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown flag"), std::string::npos);
}

TEST(Cli, SupervisedServeFlagValidation) {
  const TempFile f("c17.bench", c17_bench_text());
  // --workers bounds, and the supervision flags that require it.
  EXPECT_EQ(cli({"serve", "--workers", "0"}).code, 2);
  EXPECT_EQ(cli({"serve", "--workers", "65"}).code, 2);
  EXPECT_EQ(cli({"serve", "--workers", "two"}).code, 2);
  EXPECT_EQ(cli({"serve", "--heartbeat-ms", "100"}).code, 2);
  EXPECT_EQ(cli({"serve", "--max-restarts", "3"}).code, 2);
  EXPECT_EQ(cli({"serve", "--workers", "2", "--heartbeat-ms", "5"}).code, 2);
  EXPECT_EQ(cli({"serve", "--workers", "2", "--heartbeat-ms", "600001"}).code,
            2);
  EXPECT_EQ(cli({"serve", "--workers", "2", "--max-restarts", "1001"}).code,
            2);
  // Supervision flags belong to serve, not to one-shot commands.
  EXPECT_EQ(cli({"analyze", f.path(), "--workers", "2"}).code, 2);
  EXPECT_EQ(cli({"analyze", f.path(), "--fault-inject", "crash@analyze"}).code,
            2);
  // A malformed fault spec is a usage error at startup, never a
  // silently-inert injector.
  const CliRun bad_spec =
      cli({"serve", "--workers", "2", "--fault-inject", "explode@analyze"});
  EXPECT_EQ(bad_spec.code, 2);
  EXPECT_NE(bad_spec.err.find("fault-inject"), std::string::npos);
  EXPECT_EQ(
      cli({"serve", "--workers", "2", "--fault-inject", "crash@analyze:0"})
          .code,
      2);
}

TEST(Cli, DeadlineFlagValidation) {
  const TempFile f("c17.bench", c17_bench_text());
  // --deadline-ms bounds a query's wall clock; it belongs to the work
  // commands, not to serve (where budgets arrive per-request) and not to
  // simulate (which has no cancellation checkpoints).
  EXPECT_EQ(cli({"serve", "--deadline-ms", "100"}).code, 2);
  EXPECT_EQ(cli({"simulate", f.path(), "--deadline-ms", "100"}).code, 2);
  EXPECT_EQ(cli({"analyze", f.path(), "--deadline-ms", "0"}).code, 2);
  EXPECT_EQ(cli({"analyze", f.path(), "--deadline-ms", "-1"}).code, 2);
  EXPECT_EQ(cli({"analyze", f.path(), "--deadline-ms", "soon"}).code, 2);
  // A generous budget leaves the result untouched.
  const CliRun r = cli({"analyze", f.path(), "--deadline-ms", "60000"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("5 inputs"), std::string::npos);
}

TEST(Cli, AnalyzeBenchFile) {
  const TempFile f("c17.bench", c17_bench_text());
  const CliRun r = cli({"analyze", f.path()});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("5 inputs"), std::string::npos);
  EXPECT_NE(r.out.find("required random patterns"), std::string::npos);
  EXPECT_NE(r.out.find("least testable faults"), std::string::npos);
}

TEST(Cli, AnalyzeWithFlags) {
  const TempFile f("c17.bench", c17_bench_text());
  const CliRun r = cli({"analyze", f.path(), "--p", "0.3", "--d", "1.0",
                        "--e", "0.999"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("p = 0.30"), std::string::npos);
  EXPECT_NE(r.out.find("e = 0.999"), std::string::npos);
}

TEST(Cli, AnalyzeDslFileAutodetected) {
  const TempFile f("top.dsl", R"(
    module top(a, b -> y) { y = NAND(a, b) }
    circuit top
  )");
  const CliRun r = cli({"analyze", f.path()});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("2 inputs"), std::string::npos);
}

TEST(Cli, AnalyzeWithEngineFlag) {
  const TempFile f("c17.bench", c17_bench_text());
  for (const char* engine :
       {"protest", "naive", "exact-bdd", "exact-enum", "monte-carlo"}) {
    const CliRun r = cli({"analyze", f.path(), "--engine", engine});
    EXPECT_EQ(r.code, 0) << engine << ": " << r.err;
    EXPECT_NE(r.out.find(std::string("signal-probability engine: ") + engine),
              std::string::npos)
        << engine;
  }
}

TEST(Cli, ThreadsFlagIsValidatedAndDeterministic) {
  const TempFile f("c17.bench", c17_bench_text());
  // Same numbers at every thread count (the documented guarantee), for
  // both the internally-parallel engine and the default.
  const CliRun serial =
      cli({"analyze", f.path(), "--engine", "monte-carlo", "--threads", "1"});
  EXPECT_EQ(serial.code, 0) << serial.err;
  const CliRun threaded =
      cli({"analyze", f.path(), "--engine", "monte-carlo", "--threads", "4"});
  EXPECT_EQ(threaded.code, 0) << threaded.err;
  EXPECT_EQ(serial.out, threaded.out);
  // Out-of-range values are usage errors (status 2), including "-1"
  // wrapping through stoul and 2^32+1 (which must not truncate to a
  // silently-accepted 1), not a thread-spawn attempt.
  for (const char* bad :
       {"-1", "4294967295", "4294967297", "99999999999999999999"}) {
    const CliRun r = cli({"analyze", f.path(), "--threads", bad});
    EXPECT_EQ(r.code, 2) << bad;
  }
  // simulate never evaluates an engine; --threads there is a usage error.
  const CliRun sim = cli({"simulate", f.path(), "--patterns", "64",
                          "--threads", "2"});
  EXPECT_EQ(sim.code, 2);
}

TEST(Cli, UnknownEngineIsAUsageError) {
  // Status 2 with every registered name on stderr — not a raw exception.
  const TempFile f("c17.bench", c17_bench_text());
  const CliRun r = cli({"analyze", f.path(), "--engine", "bogus"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown engine 'bogus'"), std::string::npos);
  for (const std::string& name : engine_names())
    EXPECT_NE(r.err.find(name), std::string::npos) << name;
}

TEST(Cli, AnalyzeJsonEmitsValidRequestedArtifacts) {
  const TempFile f("c17.bench", c17_bench_text());
  const CliRun r = cli({"analyze", f.path(), "--json"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out.front(), '{');
  for (const char* key : {"\"engine\"", "\"signal_probs\"",
                          "\"detection_probs\"", "\"test_lengths\""})
    EXPECT_NE(r.out.find(key), std::string::npos) << key;
  EXPECT_EQ(r.out.find("\"scoap\""), std::string::npos);
}

TEST(Cli, ArtifactsFlagSelectsJsonContent) {
  const TempFile f("c17.bench", c17_bench_text());
  const CliRun r = cli({"analyze", f.path(), "--json", "--artifacts",
                        "signal_probs,scoap"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"scoap\""), std::string::npos);
  EXPECT_EQ(r.out.find("\"detection_probs\""), std::string::npos);
  EXPECT_EQ(r.out.find("\"test_lengths\""), std::string::npos);
}

TEST(Cli, UnknownArtifactIsAUsageError) {
  const TempFile f("c17.bench", c17_bench_text());
  const CliRun r =
      cli({"analyze", f.path(), "--json", "--artifacts", "wibble"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown artifact 'wibble'"), std::string::npos);
  EXPECT_NE(r.err.find("stafan"), std::string::npos);  // lists alternatives
}

TEST(Cli, ArtifactsWithoutJsonIsAUsageError) {
  // The text report has a fixed layout; accepting --artifacts without
  // --json would silently compute-and-drop the requested artifacts.
  const TempFile f("c17.bench", c17_bench_text());
  const CliRun r = cli({"analyze", f.path(), "--artifacts", "scoap"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--artifacts requires --json"), std::string::npos);
}

TEST(Cli, OptimizeJsonReportsTupleAndTestLengths) {
  const TempFile f("c17.bench", c17_bench_text());
  const CliRun r = cli({"optimize", f.path(), "--n", "100", "--sweeps", "1",
                        "--json"});
  EXPECT_EQ(r.code, 0) << r.err;
  for (const char* key :
       {"\"optimized_probs\"", "\"test_length\"", "\"log_objective\""})
    EXPECT_NE(r.out.find(key), std::string::npos) << key;
}

TEST(Cli, ScanSupportsJson) {
  const TempFile f("counter.bench", R"(
INPUT(en)
OUTPUT(out)
q0 = DFF(n0)
n0 = XOR(q0, en)
out = BUFF(q0)
)");
  const CliRun r = cli({"scan", f.path(), "--json"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out.front(), '{');
  EXPECT_NE(r.out.find("\"signal_probs\""), std::string::npos);
}

TEST(Cli, SimulateRejectsJsonAndArtifacts) {
  const TempFile f("c17.bench", c17_bench_text());
  EXPECT_EQ(cli({"simulate", f.path(), "--patterns", "16", "--json"}).code, 2);
  EXPECT_EQ(cli({"simulate", f.path(), "--patterns", "16", "--artifacts",
                 "scoap"}).code,
            2);
}

TEST(Cli, SimulateRejectsEngineFlag) {
  // simulate never evaluates a probability engine; silently accepting the
  // flag would let users believe it changed the run.
  const TempFile f("c17.bench", c17_bench_text());
  const CliRun r =
      cli({"simulate", f.path(), "--patterns", "16", "--engine", "naive"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--engine is not valid for 'simulate'"),
            std::string::npos);
}

TEST(Cli, SimulateReportsCoverage) {
  const TempFile f("c17.bench", c17_bench_text());
  const CliRun r = cli({"simulate", f.path(), "--patterns", "256"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("fault coverage after 256 patterns"), std::string::npos);
}

TEST(Cli, OptimizeReducesOrKeepsTestLength) {
  const TempFile f("c17.bench", c17_bench_text());
  const CliRun r = cli({"optimize", f.path(), "--n", "100", "--sweeps", "2"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("optimized input probabilities"), std::string::npos);
  EXPECT_NE(r.out.find("test length"), std::string::npos);
}

TEST(Cli, ScanExtractsAndAnalyzes) {
  const TempFile f("counter.bench", R"(
INPUT(en)
OUTPUT(out)
q0 = DFF(n0)
n0 = XOR(q0, en)
out = BUFF(q0)
)");
  const CliRun r = cli({"scan", f.path()});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("1 scan cells"), std::string::npos);
  EXPECT_NE(r.out.find("scan-test length"), std::string::npos);
}

TEST(Cli, ErrorsAreReported) {
  EXPECT_EQ(cli({"analyze", "/nonexistent/file.bench"}).code, 2);
  EXPECT_EQ(cli({"frobnicate", "x"}).code, 2);
  EXPECT_EQ(cli({}).code, 2);
  EXPECT_EQ(cli({"analyze"}).code, 2);
  const CliRun r = cli({"analyze", "/nonexistent/file.bench"});
  EXPECT_NE(r.err.find("error:"), std::string::npos);
}

TEST(Cli, BadBenchContentFailsGracefully) {
  const TempFile f("bad.bench", "INPUT(a)\nOUTPUT(y)\ny = WAT(a)\n");
  const CliRun r = cli({"analyze", f.path()});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("error:"), std::string::npos);
}

TEST(Cli, LintGatesExitCodeOnErrorFindings) {
  const TempFile bad("stuck.bench",
                     "INPUT(a)\nOUTPUT(z)\nc = CONST0()\nz = AND(a, c)\n");
  const CliRun r = cli({"lint", bad.path()});
  EXPECT_EQ(r.code, 1);  // error-severity findings gate the exit code
  EXPECT_NE(r.out.find("stuck at 0"), std::string::npos) << r.out;

  const CliRun clean = cli({"lint", "zoo:c17"});
  EXPECT_EQ(clean.code, 0) << clean.err;
  EXPECT_NE(clean.out.find("lint: 0 error(s)"), std::string::npos);
}

TEST(Cli, LintJsonAndPassSelection) {
  const CliRun r = cli({"lint", "zoo:c17", "--json", "--passes", "structure"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"passes\":[\"structure\"]"), std::string::npos);

  EXPECT_EQ(cli({"lint", "zoo:c17", "--passes", "bogus"}).code, 2);
  EXPECT_EQ(cli({"lint", "zoo:no-such-circuit"}).code, 2);
  // --passes is lint-scoped, engine flags are analysis-scoped.
  EXPECT_EQ(cli({"analyze", "zoo:c17", "--passes", "structure"}).code, 2);
  EXPECT_EQ(cli({"lint", "zoo:c17", "--engine", "naive"}).code, 2);
}

TEST(Cli, LintFaultsFlagRunsFaultPasses) {
  const CliRun r = cli({"lint", "zoo:c17", "--faults", "--json"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"redundant-fault\""), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"untestable-fault\""), std::string::npos);
  EXPECT_NE(r.out.find("collapsed faults"), std::string::npos);
  // Without the flag the fault passes stay out of the default set.
  const CliRun plain = cli({"lint", "zoo:c17", "--json"});
  EXPECT_EQ(plain.out.find("redundant-fault"), std::string::npos);
  // --faults is lint-scoped.
  EXPECT_EQ(cli({"analyze", "zoo:c17", "--faults"}).code, 2);
}

}  // namespace
}  // namespace protest
