// The async job layer: the cooperative-cancellation substrate
// (util/cancel.hpp), its checkpoints in the long-running paths (the
// Monte-Carlo shard loop, the hill-climb sweep, the parallel batch
// evaluator), the JobManager ticket machine, and the service-level
// cancellation semantics the ISSUE pins: a cancelled Monte-Carlo job
// stops within one shard, a cancelled optimize stops within one sweep,
// and poll() on a cancelled ticket reports `cancelled` — never a partial
// result.  This suite runs under TSan in CI (real threads throughout).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "analysis/json.hpp"
#include "circuits/iscas.hpp"
#include "circuits/zoo.hpp"
#include "optimize/hill_climb.hpp"
#include "optimize/objective.hpp"
#include "prob/engine.hpp"
#include "prob/monte_carlo.hpp"
#include "prob/naive.hpp"
#include "prob/parallel_eval.hpp"
#include "protest/jobs.hpp"
#include "protest/service.hpp"
#include "util/cancel.hpp"
#include "util/executor.hpp"

namespace protest {
namespace {

using namespace std::chrono_literals;

// --- the token --------------------------------------------------------------

TEST(CancelToken, InertTokenNeverCancels) {
  const CancelToken inert;
  EXPECT_FALSE(inert.cancellable());
  inert.request_cancel();  // no-op
  EXPECT_FALSE(inert.cancel_requested());
  EXPECT_NO_THROW(inert.check());
}

TEST(CancelToken, EveryCopyObservesTheCancellation) {
  const CancelToken token = CancelToken::source();
  const CancelToken copy = token;
  EXPECT_TRUE(token.cancellable());
  EXPECT_FALSE(copy.cancel_requested());
  token.request_cancel();
  EXPECT_TRUE(copy.cancel_requested());
  EXPECT_THROW(copy.check(), OperationCancelled);
}

TEST(CancelScope, InstallsAndRestoresTheAmbientToken) {
  EXPECT_FALSE(current_cancel_token().cancellable());
  const CancelToken outer = CancelToken::source();
  {
    const CancelScope outer_scope(outer);
    EXPECT_TRUE(current_cancel_token().cancellable());
    {
      const CancelScope inner_scope(CancelToken{});  // scopes nest
      EXPECT_FALSE(current_cancel_token().cancellable());
    }
    outer.request_cancel();
    EXPECT_THROW(check_cancelled(), OperationCancelled);
  }
  EXPECT_NO_THROW(check_cancelled());
}

// --- propagation through the executor ---------------------------------------

TEST(Executor, ForwardsTheAmbientTokenToPoolTasks) {
  Executor exec(2);
  const CancelToken token = CancelToken::source();
  const CancelScope scope(token);
  // Every task — on pool threads and on the caller acting as worker 0 —
  // must observe the submitting thread's token.
  std::atomic<int> observed{0};
  exec.parallel_for(8, [&](std::size_t, unsigned) {
    if (current_cancel_token().cancellable()) ++observed;
  });
  EXPECT_EQ(observed.load(), 8);

  token.request_cancel();
  EXPECT_THROW(
      exec.parallel_for(8, [&](std::size_t, unsigned) { check_cancelled(); }),
      OperationCancelled);
}

// --- checkpoints in the long-running paths ----------------------------------

TEST(MonteCarloCancel, CancelledAnalyzeThrowsAtTheShardBoundary) {
  const Netlist net = make_circuit("alu");
  const InputProbs probs = uniform_input_probs(net, 0.5);

  // Pre-cancelled: both the free function (serial shard loop) and the
  // engine (executor shard loop, any thread count) stop without
  // simulating a single shard.
  const CancelToken token = CancelToken::source();
  token.request_cancel();
  const CancelScope scope(token);
  EXPECT_THROW(monte_carlo_signal_probs(net, probs, 100'000, 1),
               OperationCancelled);
  for (const unsigned threads : {1u, 2u}) {
    MonteCarloEngineParams params;
    params.num_patterns = 100'000;
    params.parallel.num_threads = threads;
    const MonteCarloEngine engine(net, params);
    EXPECT_THROW(engine.signal_probs(probs), OperationCancelled);
  }
}

TEST(MonteCarloCancel, MidFlightCancelStopsWithoutFinishingTheBudget) {
  // A pattern budget that takes far longer than the cancellation delay:
  // if the shard checkpoint were missing, the evaluation would grind
  // through all 50M patterns and the throw below would never happen.
  const Netlist net = make_circuit("alu");
  MonteCarloEngineParams params;
  params.num_patterns = 50'000'000;
  params.parallel.num_threads = 2;
  const MonteCarloEngine engine(net, params);

  const CancelToken token = CancelToken::source();
  std::thread canceller([&] {
    std::this_thread::sleep_for(20ms);
    token.request_cancel();
  });
  const CancelScope scope(token);
  EXPECT_THROW(engine.signal_probs(uniform_input_probs(net, 0.5)),
               OperationCancelled);
  canceller.join();
}

TEST(HillClimbCancel, CancelledOptimizeStopsWithinOneSweep) {
  const Netlist net = make_c17();
  const ObjectiveEvaluator eval(net, structural_fault_list(net), 1'000);
  const CancelToken token = CancelToken::source();
  token.request_cancel();
  const CancelScope scope(token);
  // The per-coordinate checkpoint fires before the first neighborhood —
  // well within one sweep.
  EXPECT_THROW(optimize_input_probs(eval), OperationCancelled);
}

TEST(ParallelEvalCancel, CancelledSweepStopsAtATaskBoundary) {
  const Netlist net = make_c17();
  ParallelConfig two_workers;
  two_workers.num_threads = 2;
  const ParallelBatchEvaluator eval(net, "protest", {}, two_workers);
  const CancelToken token = CancelToken::source();
  token.request_cancel();
  const CancelScope scope(token);
  const std::vector<InputProbs> batch(8, uniform_input_probs(net, 0.5));
  EXPECT_THROW(eval.signal_probs_batch(batch), OperationCancelled);
}

// --- the job manager --------------------------------------------------------

TEST(JobManager, SubmitWaitPollRoundTrip) {
  JobManager jobs(2);
  const JobTicket ticket = jobs.submit("demo", [] { return "payload"; });
  EXPECT_EQ(ticket.id, 1u);

  const std::optional<JobInfo> done = jobs.wait(ticket.id);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->state, JobState::Done);
  EXPECT_EQ(done->payload, "payload");
  EXPECT_EQ(done->label, "demo");

  // poll() keeps answering after completion, byte-for-byte.
  const std::optional<JobInfo> again = jobs.poll(ticket.id);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->state, JobState::Done);
  EXPECT_EQ(again->payload, "payload");

  EXPECT_EQ(jobs.num_pending(), 0u);
  const std::vector<JobInfo> listing = jobs.jobs();
  ASSERT_EQ(listing.size(), 1u);
  EXPECT_EQ(listing[0].id, 1u);
  EXPECT_EQ(listing[0].state, JobState::Done);
  EXPECT_TRUE(listing[0].payload.empty());  // listings omit payloads
}

TEST(JobManager, UnknownTicketsAreNullopt) {
  JobManager jobs(1);
  EXPECT_FALSE(jobs.poll(99).has_value());
  EXPECT_FALSE(jobs.wait(99, 1ms).has_value());
  EXPECT_FALSE(jobs.cancel(99));
}

TEST(JobManager, ThrowingJobIsFailedWithItsError) {
  JobManager jobs(1);
  const JobTicket ticket = jobs.submit(
      "boom", []() -> std::string { throw std::runtime_error("kaput"); });
  const std::optional<JobInfo> info = jobs.wait(ticket.id);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->state, JobState::Failed);
  EXPECT_EQ(info->error, "kaput");
  EXPECT_TRUE(info->payload.empty());
}

TEST(JobManager, CancelledQueuedJobNeverRuns) {
  JobManager jobs(1);  // one worker, so the second job must queue
  std::atomic<bool> release{false};
  std::atomic<bool> second_ran{false};
  const JobTicket first = jobs.submit("blocker", [&] {
    while (!release.load()) {
      check_cancelled();
      std::this_thread::sleep_for(1ms);
    }
    return "first";
  });
  const JobTicket second = jobs.submit("victim", [&] {
    second_ran.store(true);
    return "second";
  });

  EXPECT_TRUE(jobs.cancel(second.id));
  const std::optional<JobInfo> cancelled = jobs.poll(second.id);
  ASSERT_TRUE(cancelled.has_value());
  EXPECT_EQ(cancelled->state, JobState::Cancelled);  // immediate: never ran
  EXPECT_FALSE(jobs.cancel(second.id));  // already finished

  release.store(true);
  const std::optional<JobInfo> done = jobs.wait(first.id);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->state, JobState::Done);
  EXPECT_FALSE(second_ran.load());
  EXPECT_TRUE(jobs.poll(second.id)->payload.empty());
}

TEST(JobManager, CancelledRunningJobStopsAtItsNextCheckpoint) {
  JobManager jobs(1);
  std::atomic<bool> started{false};
  const JobTicket ticket = jobs.submit("spin", [&] {
    started.store(true);
    // Bounded spin so a broken cancel fails the test instead of hanging.
    for (int i = 0; i < 20'000; ++i) {
      check_cancelled();
      std::this_thread::sleep_for(1ms);
    }
    return "finished anyway";
  });
  while (!started.load()) std::this_thread::sleep_for(1ms);

  EXPECT_TRUE(jobs.cancel(ticket.id));
  const std::optional<JobInfo> info = jobs.wait(ticket.id);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->state, JobState::Cancelled);
  EXPECT_TRUE(info->payload.empty());  // never a partial result
}

TEST(JobManager, WaitTimeoutReturnsTheLiveSnapshot) {
  JobManager jobs(1);
  std::atomic<bool> release{false};
  const JobTicket ticket = jobs.submit("slow", [&] {
    while (!release.load()) {
      check_cancelled();
      std::this_thread::sleep_for(1ms);
    }
    return "ok";
  });
  const std::optional<JobInfo> pending = jobs.wait(ticket.id, 5ms);
  ASSERT_TRUE(pending.has_value());
  EXPECT_FALSE(job_finished(pending->state));  // timed out: queued/running
  release.store(true);
  EXPECT_EQ(jobs.wait(ticket.id)->state, JobState::Done);
}

TEST(JobManager, RetentionCapPrunesOldestFinishedJobs) {
  JobManager jobs(1, /*max_retained=*/2);
  EXPECT_EQ(jobs.max_retained(), 2u);
  for (int i = 0; i < 4; ++i) {
    const JobTicket t = jobs.submit("j", [] { return "r"; });
    ASSERT_EQ(jobs.wait(t.id)->state, JobState::Done);
  }
  // The 5th submit prunes the oldest finished tickets beyond the cap.
  jobs.submit("j", [] { return "r"; });
  EXPECT_FALSE(jobs.poll(1).has_value());
  EXPECT_FALSE(jobs.poll(2).has_value());
  EXPECT_TRUE(jobs.poll(4).has_value());
  EXPECT_EQ(jobs.wait(5)->state, JobState::Done);
}

TEST(JobManager, DestructorCancelsOutstandingJobs) {
  std::atomic<bool> started{false};
  {
    JobManager jobs(1);
    jobs.submit("held", [&] {
      started.store(true);
      for (;;) {
        check_cancelled();
        std::this_thread::sleep_for(1ms);
      }
      return "";  // unreachable
    });
    jobs.submit("queued", [] { return "never runs"; });
    while (!started.load()) std::this_thread::sleep_for(1ms);
  }  // ~JobManager: cancels both, joins — reaching the next line IS the test
  SUCCEED();
}

// --- service-level cancellation semantics (the ISSUE's acceptance) ----------

JsonValue result_of(const std::string& response_line) {
  const ServiceResponse resp = ServiceResponse::from_json(response_line);
  EXPECT_TRUE(resp.ok) << response_line;
  return parse_json(resp.result_json);
}

TEST(ServiceJobs, CancelledMonteCarloAnalyzeReportsCancelledNotAResult) {
  // A Monte-Carlo budget (50M patterns) far beyond what can finish before
  // the cancel lands; the job must stop at a shard boundary and poll must
  // report `cancelled` with NO response member.
  ServiceConfig cfg;
  cfg.session_defaults.monte_carlo.num_patterns = 50'000'000;
  ProtestService service(cfg);
  ASSERT_TRUE(ServiceResponse::from_json(
                  service.handle_line(
                      "{\"verb\":\"load_netlist\",\"id\":1,\"netlist\":\"a\","
                      "\"circuit\":\"alu\",\"engine\":\"monte-carlo\"}"))
                  .ok);

  const JsonValue submit = result_of(service.handle_line(
      "{\"verb\":\"submit\",\"id\":2,\"request\":{\"verb\":\"analyze\","
      "\"id\":3,\"netlist\":\"a\",\"p\":0.5}}"));
  const std::uint64_t job =
      static_cast<std::uint64_t>(submit.at("job").as_number());

  std::this_thread::sleep_for(20ms);  // let the job start crunching shards
  const JsonValue cancel = result_of(service.handle_line(
      "{\"verb\":\"cancel\",\"id\":4,\"job\":" + std::to_string(job) + "}"));
  EXPECT_TRUE(cancel.at("requested").as_bool());

  const JsonValue waited = result_of(service.handle_line(
      "{\"verb\":\"wait\",\"id\":5,\"job\":" + std::to_string(job) + "}"));
  EXPECT_EQ(waited.at("state").as_string(), "cancelled");
  EXPECT_EQ(waited.find("response"), nullptr);

  const JsonValue polled = result_of(service.handle_line(
      "{\"verb\":\"poll\",\"id\":6,\"job\":" + std::to_string(job) + "}"));
  EXPECT_EQ(polled.at("state").as_string(), "cancelled");
  EXPECT_EQ(polled.find("response"), nullptr);
}

TEST(ServiceJobs, CancelledOptimizeReportsCancelled) {
  // A deliberately slow engine makes each objective evaluation take tens
  // of milliseconds, so the hill climb is mid-sweep when the cancel
  // arrives and must abandon the climb at a coordinate checkpoint.
  class SlowNaiveEngine final : public SignalProbEngine {
   public:
    explicit SlowNaiveEngine(const Netlist& net)
        : SignalProbEngine(net, "slow-naive") {}
    std::unique_ptr<SignalProbEngine> clone() const override {
      return std::make_unique<SlowNaiveEngine>(netlist());
    }

   protected:
    std::vector<double> compute(
        std::span<const double> input_probs) const override {
      std::this_thread::sleep_for(25ms);
      return naive_signal_probs(netlist(), input_probs);
    }
  };
  register_engine("slow-naive",
                  [](const Netlist& net, const EngineConfig&) {
                    return std::make_unique<SlowNaiveEngine>(net);
                  });

  ProtestService service;
  ASSERT_TRUE(ServiceResponse::from_json(
                  service.handle_line(
                      "{\"verb\":\"load_netlist\",\"id\":1,\"netlist\":\"c\","
                      "\"circuit\":\"c17\",\"engine\":\"slow-naive\"}"))
                  .ok);
  const JsonValue submit = result_of(service.handle_line(
      "{\"verb\":\"submit\",\"id\":2,\"request\":{\"verb\":\"optimize\","
      "\"id\":3,\"netlist\":\"c\",\"n\":1000,\"sweeps\":8}}"));
  const std::uint64_t job =
      static_cast<std::uint64_t>(submit.at("job").as_number());

  std::this_thread::sleep_for(40ms);  // a couple of evaluations in
  result_of(service.handle_line(
      "{\"verb\":\"cancel\",\"id\":4,\"job\":" + std::to_string(job) + "}"));
  const JsonValue waited = result_of(service.handle_line(
      "{\"verb\":\"wait\",\"id\":5,\"job\":" + std::to_string(job) + "}"));
  EXPECT_EQ(waited.at("state").as_string(), "cancelled");
  EXPECT_EQ(waited.find("response"), nullptr);
}

TEST(ServiceJobs, ShutdownCancelsOutstandingJobs) {
  ServiceConfig cfg;
  cfg.session_defaults.monte_carlo.num_patterns = 50'000'000;
  ProtestService service(cfg);
  ASSERT_TRUE(ServiceResponse::from_json(
                  service.handle_line(
                      "{\"verb\":\"load_netlist\",\"id\":1,\"netlist\":\"a\","
                      "\"circuit\":\"alu\",\"engine\":\"monte-carlo\"}"))
                  .ok);
  const JsonValue submit = result_of(service.handle_line(
      "{\"verb\":\"submit\",\"id\":2,\"request\":{\"verb\":\"analyze\","
      "\"id\":3,\"netlist\":\"a\",\"p\":0.5}}"));
  const std::uint64_t job =
      static_cast<std::uint64_t>(submit.at("job").as_number());

  ASSERT_TRUE(
      ServiceResponse::from_json(
          service.handle_line("{\"verb\":\"shutdown\",\"id\":4}"))
          .ok);
  const JsonValue waited = result_of(service.handle_line(
      "{\"verb\":\"wait\",\"id\":5,\"job\":" + std::to_string(job) + "}"));
  EXPECT_EQ(waited.at("state").as_string(), "cancelled");
}

}  // namespace
}  // namespace protest
