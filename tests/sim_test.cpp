// Pattern storage and 64-way parallel logic simulation.
#include <gtest/gtest.h>

#include <bit>

#include "circuits/iscas.hpp"
#include "netlist/builder.hpp"
#include "sim/logic_sim.hpp"
#include "sim/pattern.hpp"

namespace protest {
namespace {

TEST(PatternSet, GetSetRoundTrip) {
  PatternSet ps(3, 130);
  EXPECT_EQ(ps.num_blocks(), 3u);
  ps.set(0, 0, true);
  ps.set(64, 1, true);
  ps.set(129, 2, true);
  EXPECT_TRUE(ps.get(0, 0));
  EXPECT_FALSE(ps.get(1, 0));
  EXPECT_TRUE(ps.get(64, 1));
  EXPECT_TRUE(ps.get(129, 2));
  ps.set(129, 2, false);
  EXPECT_FALSE(ps.get(129, 2));
}

TEST(PatternSet, ValidMask) {
  PatternSet ps(1, 70);
  EXPECT_EQ(ps.valid_mask(0), ~std::uint64_t{0});
  EXPECT_EQ(std::popcount(ps.valid_mask(1)), 6);
  PatternSet full(1, 128);
  EXPECT_EQ(full.valid_mask(1), ~std::uint64_t{0});
}

TEST(PatternSet, RandomIsRoughlyBalanced) {
  const PatternSet ps = PatternSet::random(4, 10'000, 7);
  for (std::size_t i = 0; i < 4; ++i) {
    std::size_t ones = 0;
    for (std::size_t p = 0; p < ps.num_patterns(); ++p) ones += ps.get(p, i);
    EXPECT_NEAR(static_cast<double>(ones) / 10'000, 0.5, 0.03);
  }
}

TEST(PatternSet, WeightedMatchesProbabilities) {
  const double probs[] = {0.1, 0.5, 0.9375};
  const PatternSet ps = PatternSet::weighted(probs, 20'000, 11);
  for (std::size_t i = 0; i < 3; ++i) {
    std::size_t ones = 0;
    for (std::size_t p = 0; p < ps.num_patterns(); ++p) ones += ps.get(p, i);
    EXPECT_NEAR(static_cast<double>(ones) / 20'000, probs[i], 0.02) << i;
  }
}

TEST(PatternSet, WeightedIsDeterministicPerSeed) {
  const double probs[] = {0.25, 0.75};
  const PatternSet a = PatternSet::weighted(probs, 100, 3);
  const PatternSet b = PatternSet::weighted(probs, 100, 3);
  const PatternSet c = PatternSet::weighted(probs, 100, 4);
  bool all_same_ab = true, all_same_ac = true;
  for (std::size_t p = 0; p < 100; ++p)
    for (std::size_t i = 0; i < 2; ++i) {
      all_same_ab &= a.get(p, i) == b.get(p, i);
      all_same_ac &= a.get(p, i) == c.get(p, i);
    }
  EXPECT_TRUE(all_same_ab);
  EXPECT_FALSE(all_same_ac);
}

TEST(PatternSet, ExhaustiveCountsInOrder) {
  const PatternSet ps = PatternSet::exhaustive(3);
  ASSERT_EQ(ps.num_patterns(), 8u);
  for (std::size_t p = 0; p < 8; ++p)
    for (std::size_t i = 0; i < 3; ++i)
      EXPECT_EQ(ps.get(p, i), bool((p >> i) & 1));
}

TEST(PatternSet, Validation) {
  EXPECT_THROW(PatternSet(2, 0), std::invalid_argument);
  EXPECT_THROW(PatternSet::exhaustive(30), std::invalid_argument);
  const double bad[] = {1.5};
  EXPECT_THROW(PatternSet::weighted(bad, 8, 1), std::invalid_argument);
}

TEST(LogicSim, C17TruthSpotChecks) {
  // c17: 22 = NAND(NAND(1,3), NAND(2, NAND(3,6)));
  //      23 = NAND(NAND(2,NAND(3,6)), NAND(NAND(3,6), 7)).
  const Netlist net = make_c17();
  auto eval = [&](bool i1, bool i2, bool i3, bool i6, bool i7) {
    const auto v = simulate_single(net, {i1, i2, i3, i6, i7});
    return std::pair{v[net.find("22")], v[net.find("23")]};
  };
  auto ref = [](bool i1, bool i2, bool i3, bool i6, bool i7) {
    const bool n10 = !(i1 && i3);
    const bool n11 = !(i3 && i6);
    const bool n16 = !(i2 && n11);
    const bool n19 = !(n11 && i7);
    return std::pair{!(n10 && n16), !(n16 && n19)};
  };
  for (unsigned m = 0; m < 32; ++m) {
    const bool i1 = m & 1, i2 = m & 2, i3 = m & 4, i6 = m & 8, i7 = m & 16;
    EXPECT_EQ(eval(i1, i2, i3, i6, i7), ref(i1, i2, i3, i6, i7)) << m;
  }
}

TEST(LogicSim, BlockSimulatorMatchesSingle) {
  const Netlist net = make_c17();
  const PatternSet ps = PatternSet::random(5, 64, 99);
  BlockSimulator sim(net);
  const auto& words = sim.run(ps, 0);
  for (std::size_t p = 0; p < 64; ++p) {
    std::vector<bool> in(5);
    for (std::size_t i = 0; i < 5; ++i) in[i] = ps.get(p, i);
    const auto single = simulate_single(net, in);
    for (NodeId n = 0; n < net.size(); ++n)
      EXPECT_EQ(bool((words[n] >> p) & 1), single[n]) << "p=" << p << " n=" << n;
  }
}

TEST(LogicSim, CountOnesMatchesManualCount) {
  NetlistBuilder bld;
  const NodeId a = bld.input("a");
  const NodeId b = bld.input("b");
  bld.output(bld.and2(a, b), "y");
  const Netlist net = bld.build();
  const PatternSet ps = PatternSet::exhaustive(2);
  const auto ones = count_ones(net, ps);
  EXPECT_EQ(ones[net.find("y")], 1u);  // AND true on exactly 1 of 4
  EXPECT_EQ(ones[net.find("a")], 2u);
}

TEST(LogicSim, ConstantsEvaluate) {
  NetlistBuilder bld;
  const NodeId a = bld.input("a");
  const NodeId c1 = bld.constant(true);
  const NodeId c0 = bld.constant(false);
  bld.output(bld.and2(a, c1), "y1");
  bld.output(bld.or2(a, c0), "y0");
  const Netlist net = bld.build();
  const auto v = simulate_single(net, {true});
  EXPECT_TRUE(v[net.find("y1")]);
  EXPECT_TRUE(v[net.find("y0")]);
}

TEST(LogicSim, RejectsArityMismatch) {
  const Netlist net = make_c17();
  const PatternSet ps = PatternSet::random(3, 64, 1);
  BlockSimulator sim(net);
  EXPECT_THROW(sim.run(ps, 0), std::invalid_argument);
}

}  // namespace
}  // namespace protest
