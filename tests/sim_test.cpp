// Pattern storage, 64-way parallel logic simulation, and the multi-word
// compiled-core parity suite (WordSimulator == BlockSimulator ==
// LegacyBlockSimulator == simulate_single, bit for bit).
#include <gtest/gtest.h>

#include <bit>

#include "circuits/iscas.hpp"
#include "circuits/random_circuit.hpp"
#include "circuits/zoo.hpp"
#include "netlist/builder.hpp"
#include "prob/monte_carlo.hpp"
#include "sim/logic_sim.hpp"
#include "sim/pattern.hpp"
#include "sim/word_sim.hpp"

namespace protest {
namespace {

TEST(PatternSet, GetSetRoundTrip) {
  PatternSet ps(3, 130);
  EXPECT_EQ(ps.num_blocks(), 3u);
  ps.set(0, 0, true);
  ps.set(64, 1, true);
  ps.set(129, 2, true);
  EXPECT_TRUE(ps.get(0, 0));
  EXPECT_FALSE(ps.get(1, 0));
  EXPECT_TRUE(ps.get(64, 1));
  EXPECT_TRUE(ps.get(129, 2));
  ps.set(129, 2, false);
  EXPECT_FALSE(ps.get(129, 2));
}

TEST(PatternSet, ValidMask) {
  PatternSet ps(1, 70);
  EXPECT_EQ(ps.valid_mask(0), ~std::uint64_t{0});
  EXPECT_EQ(std::popcount(ps.valid_mask(1)), 6);
  PatternSet full(1, 128);
  EXPECT_EQ(full.valid_mask(1), ~std::uint64_t{0});
}

TEST(PatternSet, RandomIsRoughlyBalanced) {
  const PatternSet ps = PatternSet::random(4, 10'000, 7);
  for (std::size_t i = 0; i < 4; ++i) {
    std::size_t ones = 0;
    for (std::size_t p = 0; p < ps.num_patterns(); ++p) ones += ps.get(p, i);
    EXPECT_NEAR(static_cast<double>(ones) / 10'000, 0.5, 0.03);
  }
}

TEST(PatternSet, WeightedMatchesProbabilities) {
  const double probs[] = {0.1, 0.5, 0.9375};
  const PatternSet ps = PatternSet::weighted(probs, 20'000, 11);
  for (std::size_t i = 0; i < 3; ++i) {
    std::size_t ones = 0;
    for (std::size_t p = 0; p < ps.num_patterns(); ++p) ones += ps.get(p, i);
    EXPECT_NEAR(static_cast<double>(ones) / 20'000, probs[i], 0.02) << i;
  }
}

TEST(PatternSet, WeightedIsDeterministicPerSeed) {
  const double probs[] = {0.25, 0.75};
  const PatternSet a = PatternSet::weighted(probs, 100, 3);
  const PatternSet b = PatternSet::weighted(probs, 100, 3);
  const PatternSet c = PatternSet::weighted(probs, 100, 4);
  bool all_same_ab = true, all_same_ac = true;
  for (std::size_t p = 0; p < 100; ++p)
    for (std::size_t i = 0; i < 2; ++i) {
      all_same_ab &= a.get(p, i) == b.get(p, i);
      all_same_ac &= a.get(p, i) == c.get(p, i);
    }
  EXPECT_TRUE(all_same_ab);
  EXPECT_FALSE(all_same_ac);
}

TEST(PatternSet, ExhaustiveCountsInOrder) {
  const PatternSet ps = PatternSet::exhaustive(3);
  ASSERT_EQ(ps.num_patterns(), 8u);
  for (std::size_t p = 0; p < 8; ++p)
    for (std::size_t i = 0; i < 3; ++i)
      EXPECT_EQ(ps.get(p, i), bool((p >> i) & 1));
}

TEST(PatternSet, Validation) {
  EXPECT_THROW(PatternSet(2, 0), std::invalid_argument);
  EXPECT_THROW(PatternSet::exhaustive(30), std::invalid_argument);
  const double bad[] = {1.5};
  EXPECT_THROW(PatternSet::weighted(bad, 8, 1), std::invalid_argument);
}

TEST(LogicSim, C17TruthSpotChecks) {
  // c17: 22 = NAND(NAND(1,3), NAND(2, NAND(3,6)));
  //      23 = NAND(NAND(2,NAND(3,6)), NAND(NAND(3,6), 7)).
  const Netlist net = make_c17();
  auto eval = [&](bool i1, bool i2, bool i3, bool i6, bool i7) {
    const auto v = simulate_single(net, {i1, i2, i3, i6, i7});
    return std::pair{v[net.find("22")], v[net.find("23")]};
  };
  auto ref = [](bool i1, bool i2, bool i3, bool i6, bool i7) {
    const bool n10 = !(i1 && i3);
    const bool n11 = !(i3 && i6);
    const bool n16 = !(i2 && n11);
    const bool n19 = !(n11 && i7);
    return std::pair{!(n10 && n16), !(n16 && n19)};
  };
  for (unsigned m = 0; m < 32; ++m) {
    const bool i1 = m & 1, i2 = m & 2, i3 = m & 4, i6 = m & 8, i7 = m & 16;
    EXPECT_EQ(eval(i1, i2, i3, i6, i7), ref(i1, i2, i3, i6, i7)) << m;
  }
}

TEST(LogicSim, BlockSimulatorMatchesSingle) {
  const Netlist net = make_c17();
  const PatternSet ps = PatternSet::random(5, 64, 99);
  BlockSimulator sim(net);
  const auto& words = sim.run(ps, 0);
  for (std::size_t p = 0; p < 64; ++p) {
    std::vector<bool> in(5);
    for (std::size_t i = 0; i < 5; ++i) in[i] = ps.get(p, i);
    const auto single = simulate_single(net, in);
    for (NodeId n = 0; n < net.size(); ++n)
      EXPECT_EQ(bool((words[n] >> p) & 1), single[n]) << "p=" << p << " n=" << n;
  }
}

TEST(LogicSim, CountOnesMatchesManualCount) {
  NetlistBuilder bld;
  const NodeId a = bld.input("a");
  const NodeId b = bld.input("b");
  bld.output(bld.and2(a, b), "y");
  const Netlist net = bld.build();
  const PatternSet ps = PatternSet::exhaustive(2);
  const auto ones = count_ones(net, ps);
  EXPECT_EQ(ones[net.find("y")], 1u);  // AND true on exactly 1 of 4
  EXPECT_EQ(ones[net.find("a")], 2u);
}

TEST(LogicSim, ConstantsEvaluate) {
  NetlistBuilder bld;
  const NodeId a = bld.input("a");
  const NodeId c1 = bld.constant(true);
  const NodeId c0 = bld.constant(false);
  bld.output(bld.and2(a, c1), "y1");
  bld.output(bld.or2(a, c0), "y0");
  const Netlist net = bld.build();
  const auto v = simulate_single(net, {true});
  EXPECT_TRUE(v[net.find("y1")]);
  EXPECT_TRUE(v[net.find("y0")]);
}

TEST(LogicSim, RejectsArityMismatch) {
  const Netlist net = make_c17();
  const PatternSet ps = PatternSet::random(3, 64, 1);
  BlockSimulator sim(net);
  EXPECT_THROW(sim.run(ps, 0), std::invalid_argument);
}

// --- compiled-core parity suite ---------------------------------------------

/// Every node word of every simulator must agree with the legacy
/// Gate-struct walker on every valid pattern bit — exact, not approximate.
void expect_full_parity(const Netlist& net, const PatternSet& ps) {
  LegacyBlockSimulator legacy(net);
  BlockSimulator block(net);
  // 5 exercises the runtime-width fallback; the rest hit specializations.
  for (const std::size_t w :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{5},
        std::size_t{8}, std::size_t{16}}) {
    WordSimulator sim(net, w);
    ASSERT_EQ(sim.patterns_per_pass(), w * 64);
    for (std::size_t b = 0; b < ps.num_blocks(); b += w) {
      const std::size_t count = std::min(w, ps.num_blocks() - b);
      sim.run_blocks(ps, b, count);
      for (std::size_t k = 0; k < count; ++k) {
        const auto& ref = legacy.run(ps, b + k);
        const auto& adapter = block.run(ps, b + k);
        const std::uint64_t mask = ps.valid_mask(b + k);
        for (NodeId n = 0; n < net.size(); ++n) {
          ASSERT_EQ(sim.word(n, k) & mask, ref[n] & mask)
              << "W=" << w << " block=" << b + k << " node=" << n;
          ASSERT_EQ(adapter[n] & mask, ref[n] & mask)
              << "block=" << b + k << " node=" << n;
        }
      }
    }
  }
}

TEST(WordSim, ParityAcrossRandomCircuits) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    for (const unsigned fanin : {2u, 5u}) {
      for (const double xor_frac : {0.0, 0.5}) {
        RandomCircuitParams p;
        p.num_inputs = 12;
        p.num_gates = 300;
        p.max_fanin = fanin;
        p.xor_fraction = xor_frac;
        p.seed = seed;
        const Netlist net = make_random_circuit(p);
        // 200 patterns: full blocks plus a partial tail block.
        expect_full_parity(net, PatternSet::random(12, 200, seed * 31 + 7));
      }
    }
  }
}

TEST(WordSim, ParityOnC17AndAlu) {
  const Netlist c17 = make_c17();
  expect_full_parity(c17, PatternSet::exhaustive(5));
  const Netlist alu = make_circuit("alu");
  expect_full_parity(alu,
                     PatternSet::random(alu.inputs().size(), 130, 2024));
}

TEST(WordSim, MatchesSimulateSingle) {
  const Netlist net = make_random_circuit(stress_circuit_params(500, 9));
  const std::size_t ni = net.inputs().size();
  const PatternSet ps = PatternSet::random(ni, 128, 5);
  WordSimulator sim(net, 2);
  sim.run_blocks(ps, 0, 2);
  for (const std::size_t p : {std::size_t{0}, std::size_t{63},
                              std::size_t{64}, std::size_t{127}}) {
    std::vector<bool> in(ni);
    for (std::size_t i = 0; i < ni; ++i) in[i] = ps.get(p, i);
    const auto single = simulate_single(net, in);
    for (NodeId n = 0; n < net.size(); ++n)
      ASSERT_EQ(bool((sim.word(n, p / 64) >> (p % 64)) & 1), single[n])
          << "p=" << p << " n=" << n;
  }
}

TEST(WordSim, CountOnesMatchesBlockOverload) {
  const Netlist net = make_random_circuit(stress_circuit_params(400, 4));
  // 330 patterns: the word path sees a partial group AND a partial block.
  const PatternSet ps = PatternSet::random(net.inputs().size(), 330, 12);
  BlockSimulator block(net);
  const auto ref = count_ones(block, ps);
  for (const std::size_t w : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    WordSimulator sim(net, w);
    EXPECT_EQ(count_ones(sim, ps), ref) << "W=" << w;
  }
}

TEST(WordSim, MonteCarloWordPathIsBitIdentical) {
  const Netlist net = make_random_circuit(stress_circuit_params(400, 2));
  std::vector<double> probs(net.inputs().size());
  for (std::size_t i = 0; i < probs.size(); ++i)
    probs[i] = 0.1 + 0.8 * static_cast<double>(i) / probs.size();
  const auto thresholds = monte_carlo_thresholds(probs);
  const std::size_t num_patterns = 10'000;  // 2 shards, last one partial
  const std::uint64_t seed = 77;

  BlockSimulator block(net);
  std::vector<std::size_t> ref(net.size(), 0);
  std::vector<std::uint64_t> word_buf;
  for (std::size_t s = 0; s < monte_carlo_num_shards(num_patterns); ++s)
    monte_carlo_accumulate_shard(block, thresholds, s, num_patterns, seed,
                                 ref, word_buf);

  for (const std::size_t w : {std::size_t{1}, std::size_t{4}, std::size_t{8},
                              std::size_t{13}}) {
    WordSimulator sim(net, w);
    std::vector<std::size_t> ones(net.size(), 0);
    for (std::size_t s = 0; s < monte_carlo_num_shards(num_patterns); ++s)
      monte_carlo_accumulate_shard(sim, thresholds, s, num_patterns, seed,
                                   ones);
    EXPECT_EQ(ones, ref) << "W=" << w;
  }
}

TEST(WordSim, Validation) {
  const Netlist net = make_c17();
  EXPECT_THROW(WordSimulator(net, 0), std::invalid_argument);
  EXPECT_THROW(WordSimulator(net, 65), std::invalid_argument);
  WordSimulator sim(net, 4);
  const PatternSet wrong = PatternSet::random(3, 64, 1);
  EXPECT_THROW(sim.run_blocks(wrong, 0, 1), std::invalid_argument);
  const PatternSet ok = PatternSet::random(5, 256, 1);
  EXPECT_THROW(sim.run_blocks(ok, 0, 5), std::invalid_argument);  // count > W
  EXPECT_THROW(sim.run_blocks(ok, 3, 4), std::invalid_argument);  // past end
}

}  // namespace
}  // namespace protest
