// Baseline testability measures: SCOAP / P_SCOAP and STAFAN.
#include <gtest/gtest.h>

#include "circuits/iscas.hpp"
#include "measures/scoap.hpp"
#include "measures/stafan.hpp"
#include "netlist/builder.hpp"
#include "prob/exact.hpp"
#include "prob/naive.hpp"
#include "sim/fault_sim.hpp"

namespace protest {
namespace {

TEST(Scoap, PrimaryInputsCostOne) {
  const Netlist net = make_c17();
  const auto m = compute_scoap(net);
  for (NodeId i : net.inputs()) {
    EXPECT_EQ(m.cc0[i], 1u);
    EXPECT_EQ(m.cc1[i], 1u);
  }
}

TEST(Scoap, AndGateRules) {
  NetlistBuilder bld;
  const NodeId a = bld.input("a");
  const NodeId b = bld.input("b");
  const NodeId y = bld.gate(GateType::And, {a, b}, "y");
  bld.output(y);  // direct mark: no output buffer in between
  const Netlist net = bld.build();
  const auto m = compute_scoap(net);
  EXPECT_EQ(m.cc1[y], 3u);  // CC1(a) + CC1(b) + 1
  EXPECT_EQ(m.cc0[y], 2u);  // min CC0 + 1
  // Observability of a through the AND: CO(y) + CC1(b) + 1 = 0 + 1 + 1.
  EXPECT_EQ(m.pin_co[y][0], 2u);
  EXPECT_EQ(m.co[a], 2u);
}

TEST(Scoap, InverterSwapsControllabilities) {
  NetlistBuilder bld;
  const NodeId a = bld.input("a");
  const NodeId b = bld.input("b");
  const NodeId y = bld.and2(a, b);
  const NodeId z = bld.inv(y);
  bld.output(z, "z");
  const Netlist net = bld.build();
  const auto m = compute_scoap(net);
  EXPECT_EQ(m.cc0[z], m.cc1[y] + 1);
  EXPECT_EQ(m.cc1[z], m.cc0[y] + 1);
}

TEST(Scoap, XorRules) {
  NetlistBuilder bld;
  const NodeId a = bld.input("a");
  const NodeId b = bld.input("b");
  const NodeId y = bld.xor2(a, b);
  bld.output(y, "y");
  const Netlist net = bld.build();
  const auto m = compute_scoap(net);
  EXPECT_EQ(m.cc1[y], 3u);  // one input 1, the other 0
  EXPECT_EQ(m.cc0[y], 3u);  // both 0 (or both 1)
}

TEST(Scoap, ConstantsAreUncontrollableToOtherValue) {
  NetlistBuilder bld;
  const NodeId a = bld.input("a");
  const NodeId c1 = bld.constant(true);
  bld.output(bld.and2(a, c1), "y");
  const Netlist net = bld.build();
  const auto m = compute_scoap(net);
  EXPECT_EQ(m.cc1[c1], 0u);
  EXPECT_GT(m.cc0[c1], 1'000'000u);  // "infinite"
}

TEST(Scoap, StemObservabilityIsMinOverBranches) {
  // a feeds an AND (cheap side pin) and a 3-input AND (costlier).
  NetlistBuilder bld;
  const NodeId a = bld.input("a");
  const NodeId b = bld.input("b");
  const NodeId c = bld.input("c");
  const NodeId d = bld.input("d");
  const NodeId y1 = bld.and2(a, b);
  const NodeId y2 = bld.gate(GateType::And, {a, c, d});
  bld.output(y1);  // direct marks: no output buffers
  bld.output(y2);
  const Netlist net = bld.build();
  const auto m = compute_scoap(net);
  EXPECT_EQ(m.pin_co[y1][0], 2u);
  EXPECT_EQ(m.pin_co[y2][0], 3u);
  EXPECT_EQ(m.co[a], 2u);
}

TEST(Pscoap, MonotoneInEffortAndBounded) {
  const Netlist net = make_c17();
  const auto m = compute_scoap(net);
  const auto faults = structural_fault_list(net);
  const auto probs = pscoap_detection_probs(net, faults, m);
  ASSERT_EQ(probs.size(), faults.size());
  for (double p : probs) {
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(Stafan, ControllabilityMatchesSignalProbability) {
  const Netlist net = make_c17();
  const auto ps = PatternSet::random(5, 50'000, 321);
  const auto m = compute_stafan(net, ps);
  const auto exact = exact_signal_probs_bdd(net, uniform_input_probs(net));
  for (NodeId n = 0; n < net.size(); ++n)
    EXPECT_NEAR(m.c1[n], exact[n], 0.02) << n;
}

TEST(Stafan, ObservabilityBoundsAndOutputs) {
  const Netlist net = make_c17();
  const auto m = compute_stafan(net, PatternSet::random(5, 10'000, 5));
  for (NodeId n = 0; n < net.size(); ++n) {
    EXPECT_GE(m.obs[n], 0.0);
    EXPECT_LE(m.obs[n], 1.0);
  }
  for (NodeId o : net.outputs()) EXPECT_DOUBLE_EQ(m.obs[o], 1.0);
}

TEST(Stafan, DetectionEstimatesCorrelateWithSimulation) {
  const Netlist net = make_c17();
  const auto faults = structural_fault_list(net);
  const auto ps = PatternSet::random(5, 20'000, 9);
  const auto m = compute_stafan(net, ps);
  const auto est = stafan_detection_probs(net, faults, m);
  const auto sim = simulate_faults(net, faults, PatternSet::exhaustive(5),
                                   FaultSimMode::CountDetections)
                       .detection_probs();
  // STAFAN is a one-level approximation; expect good but not perfect match.
  double err = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) err += std::abs(est[i] - sim[i]);
  EXPECT_LT(err / static_cast<double>(faults.size()), 0.15);
}

}  // namespace
}  // namespace protest
