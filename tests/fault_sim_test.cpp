// Fault simulator vs a brute-force reference on small circuits, plus mode
// semantics (count vs first-detection with dropping).
#include <gtest/gtest.h>

#include <array>
#include <span>

#include "circuits/iscas.hpp"
#include "circuits/random_circuit.hpp"
#include "netlist/builder.hpp"
#include "sim/fault_sim.hpp"
#include "sim/logic_sim.hpp"

namespace protest {
namespace {

/// Per-pattern reference: does pattern `in` detect fault f?
bool detects(const Netlist& net, const Fault& f, const std::vector<bool>& in) {
  const auto good = simulate_single(net, in);
  std::vector<bool> bad(net.size());
  const auto inputs = net.inputs();
  for (std::size_t i = 0; i < in.size(); ++i) bad[inputs[i]] = in[i];
  for (NodeId n = 0; n < net.size(); ++n) {
    const Gate& g = net.gate(n);
    if (g.type != GateType::Input) {
      std::array<bool, 64> ins{};
      for (std::size_t k = 0; k < g.fanin.size(); ++k) {
        bool v = bad[g.fanin[k]];
        if (!f.is_stem() && f.node == n && static_cast<int>(k) == f.pin)
          v = f.sa == StuckAt::One;
        ins[k] = v;
      }
      bad[n] = eval_gate(g.type,
                         std::span<const bool>(ins.data(), g.fanin.size()));
    }
    if (f.is_stem() && f.node == n) bad[n] = f.sa == StuckAt::One;
  }
  for (NodeId o : net.outputs())
    if (good[o] != bad[o]) return true;
  return false;
}

void check_against_reference(const Netlist& net, const PatternSet& ps) {
  const auto faults = full_fault_list(net);
  const auto res =
      simulate_faults(net, faults, ps, FaultSimMode::CountDetections);
  ASSERT_EQ(res.detect_count.size(), faults.size());
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    std::uint64_t count = 0;
    std::int64_t first = -1;
    for (std::size_t p = 0; p < ps.num_patterns(); ++p) {
      std::vector<bool> in(ps.num_inputs());
      for (std::size_t i = 0; i < in.size(); ++i) in[i] = ps.get(p, i);
      if (detects(net, faults[fi], in)) {
        ++count;
        if (first < 0) first = static_cast<std::int64_t>(p);
      }
    }
    EXPECT_EQ(res.detect_count[fi], count) << to_string(net, faults[fi]);
    EXPECT_EQ(res.first_detect[fi], first) << to_string(net, faults[fi]);
  }
}

TEST(FaultSim, MatchesBruteForceOnC17Exhaustive) {
  const Netlist net = make_c17();
  check_against_reference(net, PatternSet::exhaustive(5));
}

TEST(FaultSim, MatchesBruteForceOnRandomCircuits) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    RandomCircuitParams params;
    params.num_inputs = 6;
    params.num_gates = 30;
    params.seed = seed;
    const Netlist net = make_random_circuit(params);
    check_against_reference(net, PatternSet::random(6, 100, seed + 77));
  }
}

TEST(FaultSim, DropModeAgreesWithCountModeOnCoverage) {
  const Netlist net = make_c17();
  const auto faults = structural_fault_list(net);
  const PatternSet ps = PatternSet::random(5, 200, 5);
  const auto count =
      simulate_faults(net, faults, ps, FaultSimMode::CountDetections);
  const auto drop =
      simulate_faults(net, faults, ps, FaultSimMode::FirstDetection);
  EXPECT_EQ(count.coverage(), drop.coverage());
  for (std::size_t i = 0; i < faults.size(); ++i)
    EXPECT_EQ(count.first_detect[i], drop.first_detect[i]);
}

TEST(FaultSim, CoverageCurveIsMonotone) {
  const Netlist net = make_c17();
  const auto faults = structural_fault_list(net);
  const PatternSet ps = PatternSet::random(5, 128, 3);
  const auto res =
      simulate_faults(net, faults, ps, FaultSimMode::FirstDetection);
  double prev = 0.0;
  for (std::size_t n = 1; n <= 128; n *= 2) {
    const double c = res.coverage_at(n);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_EQ(res.coverage_at(129), res.coverage());
}

TEST(FaultSim, UndetectableFaultStaysUndetected) {
  // y = OR(a, NOT(a)) == 1: the output s-a-1 is undetectable.
  NetlistBuilder bld;
  const NodeId a = bld.input("a");
  const NodeId y = bld.or2(a, bld.inv(a));
  bld.output(y, "y");
  const Netlist net = bld.build();
  const Fault f{net.find("y"), -1, StuckAt::One};
  const std::vector<Fault> faults{f};
  const auto res = simulate_faults(net, faults, PatternSet::exhaustive(1),
                                   FaultSimMode::CountDetections);
  EXPECT_EQ(res.detect_count[0], 0u);
  EXPECT_EQ(res.first_detect[0], -1);
}

TEST(FaultSim, DetectionProbsNormalized) {
  const Netlist net = make_c17();
  const auto faults = structural_fault_list(net);
  const PatternSet ps = PatternSet::exhaustive(5);
  const auto res =
      simulate_faults(net, faults, ps, FaultSimMode::CountDetections);
  const auto probs = res.detection_probs();
  for (double p : probs) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(FaultSim, PartialLastBlockHandled) {
  const Netlist net = make_c17();
  const auto faults = structural_fault_list(net);
  // 70 patterns: the second block has only 6 valid bits.
  const PatternSet ps = PatternSet::random(5, 70, 9);
  const auto res =
      simulate_faults(net, faults, ps, FaultSimMode::CountDetections);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_LE(res.detect_count[i], 70u);
    EXPECT_LT(res.first_detect[i], 70);
  }
}

}  // namespace
}  // namespace protest
