// .bench reader/writer: grammar coverage, forward references, error
// reporting, and round-trip identity.
#include <gtest/gtest.h>

#include "circuits/iscas.hpp"
#include "circuits/random_circuit.hpp"
#include "netlist/bench_io.hpp"
#include "sim/logic_sim.hpp"
#include "sim/pattern.hpp"

namespace protest {
namespace {

TEST(BenchIo, ParsesC17) {
  const Netlist net = read_bench_string(c17_bench_text());
  EXPECT_EQ(net.inputs().size(), 5u);
  EXPECT_EQ(net.outputs().size(), 2u);
  EXPECT_EQ(net.num_gates(), 6u);
  for (NodeId n = 0; n < net.size(); ++n) {
    if (!net.is_input(n)) {
      EXPECT_EQ(net.gate(n).type, GateType::Nand);
    }
  }
}

TEST(BenchIo, ForwardReferencesResolve) {
  const Netlist net = read_bench_string(R"(
    INPUT(a)
    INPUT(b)
    OUTPUT(y)
    y = AND(t, b)   # t defined after use
    t = NOT(a)
  )");
  EXPECT_EQ(net.num_gates(), 2u);
  EXPECT_NE(net.find("t"), kNoNode);
}

TEST(BenchIo, AllGateTypesParse) {
  const Netlist net = read_bench_string(R"(
    INPUT(a)
    INPUT(b)
    OUTPUT(o)
    g1 = AND(a, b)
    g2 = NAND(a, b)
    g3 = OR(a, b)
    g4 = NOR(a, b)
    g5 = XOR(a, b)
    g6 = XNOR(a, b)
    g7 = NOT(a)
    g8 = BUFF(b)
    g9 = BUF(b)
    g10 = CONST0()
    g11 = CONST1()
    o = OR(g1, g2, g3, g4, g5, g6, g7, g8, g9, g10, g11)
  )");
  EXPECT_EQ(net.num_gates(), 12u);
  EXPECT_EQ(net.gate(net.find("g10")).type, GateType::Const0);
  EXPECT_EQ(net.gate(net.find("g8")).type, GateType::Buf);
}

TEST(BenchIo, CaseInsensitiveKeywords) {
  const Netlist net = read_bench_string(
      "input(a)\ninput(b)\noutput(y)\ny = nand(a, b)\n");
  EXPECT_EQ(net.gate(net.find("y")).type, GateType::Nand);
}

TEST(BenchIo, RejectsSequentialElements) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n"),
               BenchParseError);
}

TEST(BenchIo, RejectsCycle) {
  EXPECT_THROW(read_bench_string(R"(
    INPUT(a)
    OUTPUT(x)
    x = AND(a, y)
    y = NOT(x)
  )"),
               BenchParseError);
}

TEST(BenchIo, CycleDiagnosticListsFullPathWithLineNumbers) {
  try {
    read_bench_string(
        "INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = NOT(z)\nz = BUF(x)\n");
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("x (line 3) -> y (line 4) -> z (line 5) -> x"),
              std::string::npos)
        << msg;
  }
}

TEST(BenchIo, RejectsDuplicateOutput) {
  try {
    read_bench_string("INPUT(a)\nOUTPUT(y)\nOUTPUT(y)\ny = NOT(a)\n");
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(":3:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("duplicate OUTPUT y"), std::string::npos) << msg;
  }
}

TEST(BenchIo, RejectsUndefinedNet) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n"),
               BenchParseError);
}

TEST(BenchIo, RejectsUndefinedOutput) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(zz)\ny = NOT(a)\n"),
               BenchParseError);
}

TEST(BenchIo, RejectsDuplicateDefinition) {
  EXPECT_THROW(read_bench_string(
                   "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n"),
               BenchParseError);
}

TEST(BenchIo, RejectsRedefinedInput) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(a)\na = CONST1()\n"),
               BenchParseError);
}

TEST(BenchIo, RejectsGarbage) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(a)\nwhat is this\n"),
               BenchParseError);
}

TEST(BenchIo, ErrorsCarryLineNumbers) {
  try {
    read_bench_string("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n");
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    EXPECT_NE(std::string(e.what()).find(":3:"), std::string::npos) << e.what();
  }
}

TEST(BenchIo, RoundTripPreservesFunction) {
  const Netlist original = make_c17();
  const Netlist copy = read_bench_string(write_bench_string(original));
  ASSERT_EQ(copy.inputs().size(), original.inputs().size());
  ASSERT_EQ(copy.outputs().size(), original.outputs().size());
  // Exhaustive functional equivalence over all 32 input combinations.
  const PatternSet all = PatternSet::exhaustive(original.inputs().size());
  BlockSimulator s1(original), s2(copy);
  const auto& v1 = s1.run(all, 0);
  const std::vector<std::uint64_t> out1 = [&] {
    std::vector<std::uint64_t> o;
    for (NodeId n : original.outputs()) o.push_back(v1[n]);
    return o;
  }();
  const auto& v2 = s2.run(all, 0);
  const std::uint64_t mask = all.valid_mask(0);
  for (std::size_t i = 0; i < out1.size(); ++i)
    EXPECT_EQ(out1[i] & mask, v2[copy.outputs()[i]] & mask);
}

TEST(BenchIo, RoundTripIsByteStable) {
  // Definitions resolve in file order, so re-reading the writer's output
  // reproduces the exact node numbering: write∘read is the identity on the
  // emitted text.  100k gates exercises the reserve/string_view fast path.
  const Netlist net = make_random_circuit(stress_circuit_params(100'000));
  const std::string first = write_bench_string(net);
  const Netlist reread = read_bench_string(first);
  const std::string second = write_bench_string(reread);
  ASSERT_EQ(reread.size(), net.size());
  EXPECT_EQ(first, second);
  // And once more: the fixed point holds.
  EXPECT_EQ(write_bench_string(read_bench_string(second)), second);
}

TEST(BenchIo, WriterEmitsParsableTextForUnnamedNets) {
  Netlist net;
  const NodeId a = net.add_input("a");
  const NodeId b = net.add_input("b");
  const NodeId c = net.add_gate(GateType::Xor, {a, b});  // unnamed
  net.mark_output(c);
  net.finalize();
  const Netlist again = read_bench_string(write_bench_string(net));
  EXPECT_EQ(again.num_gates(), 1u);
  EXPECT_EQ(again.gate(again.outputs()[0]).type, GateType::Xor);
}

}  // namespace
}  // namespace protest
