// MISR signature compaction and BIST aliasing analysis.
#include <gtest/gtest.h>

#include "circuits/iscas.hpp"
#include "circuits/zoo.hpp"
#include "sim/signature.hpp"

namespace protest {
namespace {

TEST(Misr, ShiftsAndFolds) {
  Misr m(8, 0);
  EXPECT_EQ(m.state(), 0u);
  m.clock(0b1);  // XOR into stage 0 after shift of zero state
  EXPECT_EQ(m.state(), 1u);
  m.clock(0);  // plain shift (no taps hit)
  EXPECT_EQ(m.state(), 2u);
  m.reset(0xAB);
  EXPECT_EQ(m.state(), 0xABu);
}

TEST(Misr, StateStaysInWidth) {
  Misr m(5, 0x1F);
  for (int i = 0; i < 100; ++i) {
    m.clock(static_cast<std::uint64_t>(i));
    EXPECT_LT(m.state(), 32u);
  }
}

TEST(Misr, DifferentStreamsDifferentSignatures) {
  Misr a(16, 0), b(16, 0);
  for (int i = 0; i < 50; ++i) {
    a.clock(static_cast<std::uint64_t>(i & 3));
    b.clock(static_cast<std::uint64_t>((i + 1) & 3));
  }
  EXPECT_NE(a.state(), b.state());
}

TEST(Signature, GoodSignatureDeterministic) {
  const Netlist net = make_c17();
  const PatternSet ps = PatternSet::random(5, 500, 9);
  const std::uint64_t s1 = good_signature(net, ps, 16);
  const std::uint64_t s2 = good_signature(net, ps, 16);
  EXPECT_EQ(s1, s2);
  // A different seed gives a different run, almost surely a different sig.
  const PatternSet ps2 = PatternSet::random(5, 500, 10);
  EXPECT_NE(s1, good_signature(net, ps2, 16));
}

TEST(Signature, BistDetectsWhatOutputsDetect) {
  const Netlist net = make_c17();
  const auto faults = structural_fault_list(net);
  const PatternSet ps = PatternSet::exhaustive(5);
  const BistResult r = signature_bist(net, faults, ps, 16);
  EXPECT_EQ(r.faults, faults.size());
  // With a 16-bit MISR aliasing is ~2^-16: expect none on this tiny list.
  EXPECT_EQ(r.aliased, 0u);
  EXPECT_EQ(r.detected_by_signature, r.detected_by_outputs);
  EXPECT_GT(r.detected_by_outputs, 0u);
}

TEST(Signature, TinyMisrAliases) {
  // A 2-bit MISR has a 1-in-4 chance per fault of aliasing; on a big fault
  // list some aliasing should appear, and it must never exceed the
  // output-detected count.
  const Netlist net = make_circuit("alu");
  const auto faults = structural_fault_list(net);
  const PatternSet ps = PatternSet::random(net.inputs().size(), 64, 5);
  const BistResult r = signature_bist(net, faults, ps, 2);
  EXPECT_LE(r.detected_by_signature, r.detected_by_outputs);
  EXPECT_GT(r.aliased, 0u);
  EXPECT_LT(r.aliasing_rate(), 0.5);  // far below 1, near 2^-2 in theory
}

TEST(Signature, WiderMisrAliasesLess) {
  const Netlist net = make_circuit("alu");
  const auto faults = structural_fault_list(net);
  const PatternSet ps = PatternSet::random(net.inputs().size(), 64, 5);
  const BistResult narrow = signature_bist(net, faults, ps, 4);
  const BistResult wide = signature_bist(net, faults, ps, 32);
  EXPECT_LE(wide.aliased, narrow.aliased);
  EXPECT_EQ(wide.aliased, 0u);  // 2^-32 on a few hundred faults
}

}  // namespace
}  // namespace protest
