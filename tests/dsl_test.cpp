// The hierarchical structure-description language: parsing, elaboration,
// flattening, and error reporting.
#include <gtest/gtest.h>

#include "netlist/dsl.hpp"
#include "sim/logic_sim.hpp"
#include "sim/pattern.hpp"

namespace protest {
namespace {

const char* kFullAdder = R"(
# gate-level adder built from two half adders
module half_adder(a, b -> s, c) {
  s = XOR(a, b)
  c = AND(a, b)
}
module full_adder(a, b, cin -> s, cout) {
  (s1, c1) = half_adder(a, b)
  (s, c2) = half_adder(s1, cin)
  cout = OR(c1, c2)
}
circuit full_adder
)";

TEST(Dsl, ElaboratesFullAdder) {
  const Netlist net = elaborate_dsl(kFullAdder);
  EXPECT_EQ(net.inputs().size(), 3u);
  EXPECT_EQ(net.outputs().size(), 2u);
  // Functional check against arithmetic.
  for (unsigned m = 0; m < 8; ++m) {
    const bool a = m & 1, b = m & 2, cin = m & 4;
    const auto vals = simulate_single(net, {a, b, cin});
    const unsigned sum = unsigned(a) + unsigned(b) + unsigned(cin);
    EXPECT_EQ(vals[net.outputs()[0]], bool(sum & 1)) << m;
    EXPECT_EQ(vals[net.outputs()[1]], bool(sum >> 1)) << m;
  }
}

TEST(Dsl, TopLevelNetsKeepNames) {
  const Netlist net = elaborate_dsl(R"(
    module top(a, b -> y) { y = NAND(a, b) }
    circuit top
  )");
  EXPECT_NE(net.find("a"), kNoNode);
  EXPECT_NE(net.find("y"), kNoNode);
  EXPECT_EQ(net.gate(net.find("y")).type, GateType::Nand);
}

TEST(Dsl, NestedInstantiationFlattens) {
  const Netlist net = elaborate_dsl(R"(
    module inv2(a -> y) { t = NOT(a)  y = NOT(t) }
    module inv4(a -> y) { t = inv2(a)  y = inv2(t) }
    module top(a -> y) { y = inv4(a) }
    circuit top
  )");
  EXPECT_EQ(net.num_gates(), 4u);
  const auto vals = simulate_single(net, {true});
  EXPECT_TRUE(vals[net.outputs()[0]]);
}

TEST(Dsl, ConstantsAndAllPrimitives) {
  const Netlist net = elaborate_dsl(R"(
    module top(a, b -> y) {
      one = CONST1()
      zero = CONST0()
      g1 = AND(a, b)   g2 = OR(a, b)    g3 = NAND(a, b)
      g4 = NOR(a, b)   g5 = XOR(a, b)   g6 = XNOR(a, b)
      g7 = NOT(a)      g8 = BUF(b)
      y = OR(g1, g2, g3, g4, g5, g6, g7, g8, one, zero)
    }
    circuit top
  )");
  EXPECT_EQ(net.num_gates(), 11u);
  const auto vals = simulate_single(net, {false, false});
  EXPECT_TRUE(vals[net.outputs()[0]]);  // const1 dominates the OR
}

TEST(Dsl, ErrorUnknownModule) {
  EXPECT_THROW(elaborate_dsl("module top(a -> y) { y = ghost(a) }\ncircuit top"),
               DslParseError);
}

TEST(Dsl, ErrorArityMismatch) {
  const char* text = R"(
    module ha(a, b -> s, c) { s = XOR(a, b)  c = AND(a, b) }
    module top(a -> y) { (y) = ha(a) }
    circuit top
  )";
  EXPECT_THROW(elaborate_dsl(text), DslParseError);
}

TEST(Dsl, ErrorOutputCountMismatch) {
  const char* text = R"(
    module ha(a, b -> s, c) { s = XOR(a, b)  c = AND(a, b) }
    module top(a, b -> y) { y = ha(a, b) }
    circuit top
  )";
  EXPECT_THROW(elaborate_dsl(text), DslParseError);
}

TEST(Dsl, ErrorUseBeforeDefinition) {
  EXPECT_THROW(
      elaborate_dsl("module top(a -> y) { y = NOT(t)  t = NOT(a) }\ncircuit top"),
      DslParseError);
}

TEST(Dsl, ErrorRecursion) {
  const char* text = R"(
    module loop(a -> y) { y = loop(a) }
    module top(a -> y) { y = loop(a) }
    circuit top
  )";
  EXPECT_THROW(elaborate_dsl(text), DslParseError);
}

TEST(Dsl, ErrorMissingTop) {
  EXPECT_THROW(elaborate_dsl("module t(a -> y) { y = NOT(a) }"), DslParseError);
  EXPECT_THROW(elaborate_dsl("module t(a -> y) { y = NOT(a) }\ncircuit other"),
               DslParseError);
}

TEST(Dsl, ErrorDuplicateNet) {
  EXPECT_THROW(
      elaborate_dsl(
          "module top(a -> y) { y = NOT(a)  y = BUF(a) }\ncircuit top"),
      DslParseError);
}

TEST(Dsl, ErrorUndrivenOutput) {
  EXPECT_THROW(
      elaborate_dsl("module top(a -> y) { t = NOT(a) }\ncircuit top"),
      DslParseError);
}

TEST(Dsl, ErrorsCarryLineNumbers) {
  try {
    elaborate_dsl("module top(a -> y) {\n  y = FROB(a)\n}\ncircuit top");
    FAIL() << "expected DslParseError";
  } catch (const DslParseError& e) {
    EXPECT_NE(std::string(e.what()).find(":2:"), std::string::npos) << e.what();
  }
}

TEST(Dsl, LargeStructuredCircuit) {
  // 8-bit ripple adder assembled from DSL modules; verified functionally.
  std::string text = R"(
    module ha(a, b -> s, c) { s = XOR(a, b)  c = AND(a, b) }
    module fa(a, b, cin -> s, cout) {
      (s1, c1) = ha(a, b)
      (s, c2) = ha(s1, cin)
      cout = OR(c1, c2)
    }
    module top(a0,a1,a2,a3,a4,a5,a6,a7,b0,b1,b2,b3,b4,b5,b6,b7
               -> s0,s1,s2,s3,s4,s5,s6,s7,cout) {
      (s0, c0) = ha(a0, b0)
  )";
  for (int i = 1; i < 8; ++i) {
    text += "  (s" + std::to_string(i) + ", c" + std::to_string(i) + ") = fa(a" +
            std::to_string(i) + ", b" + std::to_string(i) + ", c" +
            std::to_string(i - 1) + ")\n";
  }
  text += "  cout = BUF(c7)\n}\ncircuit top\n";
  const Netlist net = elaborate_dsl(text);
  for (unsigned trial = 0; trial < 50; ++trial) {
    const unsigned a = (trial * 37 + 11) & 0xFF, b = (trial * 91 + 5) & 0xFF;
    std::vector<bool> in;
    for (int i = 0; i < 8; ++i) in.push_back((a >> i) & 1);
    for (int i = 0; i < 8; ++i) in.push_back((b >> i) & 1);
    const auto vals = simulate_single(net, in);
    unsigned got = 0;
    for (int i = 0; i < 9; ++i) got |= unsigned(vals[net.outputs()[i]]) << i;
    EXPECT_EQ(got, a + b);
  }
}

}  // namespace
}  // namespace protest
