// Input-probability optimization (sect. 6), LFSRs and weighted pattern
// generation (sect. 8).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "circuits/comp24.hpp"
#include "circuits/iscas.hpp"
#include "netlist/builder.hpp"
#include "optimize/hill_climb.hpp"
#include "sim/lfsr.hpp"
#include "optimize/objective.hpp"
#include "optimize/weighted_patterns.hpp"
#include "prob/naive.hpp"
#include "testlen/test_length.hpp"

namespace protest {
namespace {

TEST(Objective, LogObjectiveIncreasesWithDetectability) {
  const Netlist net = make_c17();
  ObjectiveEvaluator eval(net, structural_fault_list(net), 100);
  const auto lo = eval.log_objective(uniform_input_probs(net, 0.05));
  const auto hi = eval.log_objective(uniform_input_probs(net, 0.5));
  EXPECT_GT(hi, lo);
  EXPECT_LE(hi, 0.0);  // log of a probability
}

TEST(Objective, MatchesManualFormula) {
  const Netlist net = make_c17();
  ObjectiveEvaluator eval(net, structural_fault_list(net), 50);
  const auto ip = uniform_input_probs(net, 0.5);
  const auto pf = eval.detection_probs(ip);
  const double direct = eval.log_objective(ip);
  const double via_probs = eval.log_objective_from_probs(pf);
  EXPECT_DOUBLE_EQ(direct, via_probs);
  EXPECT_NEAR(std::exp(direct), set_detection_prob(pf, 50), 1e-9);
}

TEST(HillClimb, ImprovesObjectiveOnAsymmetricCircuit) {
  // y = AND of 6 inputs: optimal probabilities push every input toward 1
  // for the sa-0 faults while keeping sa-1 detectable.
  NetlistBuilder bld;
  std::vector<NodeId> ins;
  for (int i = 0; i < 6; ++i) ins.push_back(bld.input("i" + std::to_string(i)));
  bld.output(bld.andn(std::move(ins)), "y");
  const Netlist net = bld.build();
  ObjectiveEvaluator eval(net, structural_fault_list(net), 100);
  const double at_half = eval.log_objective(uniform_input_probs(net, 0.5));
  const HillClimbResult res = optimize_input_probs(eval);
  EXPECT_GT(res.log_objective, at_half);
  for (double p : res.probs) EXPECT_GT(p, 0.5);  // climbed toward 1
}

TEST(HillClimb, StaysOnGrid) {
  const Netlist net = make_c17();
  ObjectiveEvaluator eval(net, structural_fault_list(net), 100);
  HillClimbOptions opts;
  opts.grid_denominator = 16;
  const HillClimbResult res = optimize_input_probs(eval, opts);
  for (double p : res.probs) {
    const double k = p * 16;
    EXPECT_NEAR(k, std::round(k), 1e-9);
    EXPECT_GE(p, 1.0 / 16);
    EXPECT_LE(p, 15.0 / 16);
  }
  EXPECT_GT(res.evaluations, 0u);
}

TEST(HillClimb, ReducesComparatorTestLength) {
  // The headline effect of Table 5: optimized probabilities cut the
  // required pattern count for the 24-bit comparator by orders of
  // magnitude.
  const Netlist net = make_comp24();
  const auto faults = structural_fault_list(net);
  ObjectiveEvaluator eval(net, faults, 2000);
  const auto pf_uniform = eval.detection_probs(uniform_input_probs(net, 0.5));
  const std::uint64_t n_uniform = required_test_length(pf_uniform, 0.98, 0.95);

  HillClimbOptions opts;
  opts.max_sweeps = 4;  // keep the unit test fast
  const HillClimbResult res = optimize_input_probs(eval, opts);
  const auto pf_opt = eval.detection_probs(res.probs);
  const std::uint64_t n_opt = required_test_length(pf_opt, 0.98, 0.95);

  ASSERT_NE(n_uniform, kInfiniteTestLength);
  ASSERT_NE(n_opt, kInfiniteTestLength);
  EXPECT_LT(n_opt, n_uniform / 100) << "uniform " << n_uniform
                                    << " vs optimized " << n_opt;
}

TEST(Lfsr, MaximalPeriodSmallWidths) {
  for (unsigned width : {2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    Lfsr lfsr(width, 1);
    std::set<std::uint64_t> seen;
    const std::uint64_t period = (1ull << width) - 1;
    for (std::uint64_t i = 0; i < period; ++i) seen.insert(lfsr.step());
    EXPECT_EQ(seen.size(), period) << "width " << width;
    EXPECT_FALSE(seen.contains(0)) << "width " << width;
  }
}

TEST(Lfsr, ZeroSeedAvoidsLockup) {
  Lfsr lfsr(8, 0);
  EXPECT_NE(lfsr.state(), 0u);
  lfsr.step();
  EXPECT_NE(lfsr.state(), 0u);
}

TEST(Lfsr, RejectsUnknownWidth) {
  EXPECT_THROW(Lfsr(33, 1), std::invalid_argument);
  EXPECT_THROW(Lfsr(1, 1), std::invalid_argument);
}

TEST(Quantize, SnapsToGridAvoidingConstants) {
  const double probs[] = {0.0, 1.0, 0.5, 0.634, 0.031, 0.97};
  const auto q = quantize_to_grid(probs, 16);
  EXPECT_DOUBLE_EQ(q[0], 1.0 / 16);   // never 0
  EXPECT_DOUBLE_EQ(q[1], 15.0 / 16);  // never 1
  EXPECT_DOUBLE_EQ(q[2], 8.0 / 16);
  EXPECT_DOUBLE_EQ(q[3], 10.0 / 16);
  EXPECT_DOUBLE_EQ(q[4], 1.0 / 16);
  EXPECT_DOUBLE_EQ(q[5], 15.0 / 16);
}

TEST(WeightedLfsr, RealizedProbabilitiesMatchWeights) {
  // Weights 1..15 of 16: empirical frequency must track k/16 closely.
  std::vector<unsigned> weights;
  for (unsigned k = 1; k <= 15; ++k) weights.push_back(k);
  WeightedLfsrGenerator gen(weights, 16, 0xBEEF);
  const PatternSet ps = gen.generate(20'000);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    std::size_t ones = 0;
    for (std::size_t p = 0; p < ps.num_patterns(); ++p) ones += ps.get(p, i);
    const double freq = static_cast<double>(ones) / 20'000;
    EXPECT_NEAR(freq, weights[i] / 16.0, 0.02) << "weight " << weights[i];
  }
}

TEST(WeightedLfsr, ValidatesParameters) {
  EXPECT_THROW(WeightedLfsrGenerator({1, 2}, 12), std::invalid_argument);
  EXPECT_THROW(WeightedLfsrGenerator({0}, 16), std::invalid_argument);
  EXPECT_THROW(WeightedLfsrGenerator({16}, 16), std::invalid_argument);
}

TEST(WeightedLfsr, RoundTripThroughWeightHelpers) {
  const double probs[] = {0.25, 0.9375, 0.5};
  const auto q = quantize_to_grid(probs, 16);
  const auto w = weights_from_probs(q, 16);
  EXPECT_EQ(w, (std::vector<unsigned>{4, 15, 8}));
}

}  // namespace
}  // namespace protest
