// Netlist core: construction, validation, levels, fanout, stems, names,
// gate evaluation semantics, the compiled columnar view, and the
// technology model.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "circuits/random_circuit.hpp"
#include "netlist/builder.hpp"
#include "netlist/compiled.hpp"
#include "netlist/gate.hpp"
#include "netlist/netlist.hpp"
#include "netlist/tech.hpp"

namespace protest {
namespace {

Netlist small_example() {
  // c = AND(a, b); d = NOT(c); outputs: c, d
  Netlist net;
  const NodeId a = net.add_input("a");
  const NodeId b = net.add_input("b");
  const NodeId c = net.add_gate(GateType::And, {a, b}, "c");
  const NodeId d = net.add_gate(GateType::Not, {c}, "d");
  net.mark_output(c);
  net.mark_output(d);
  net.finalize();
  return net;
}

TEST(Netlist, BuildsAndFinalizes) {
  const Netlist net = small_example();
  EXPECT_EQ(net.size(), 4u);
  EXPECT_EQ(net.inputs().size(), 2u);
  EXPECT_EQ(net.outputs().size(), 2u);
  EXPECT_EQ(net.num_gates(), 2u);
  EXPECT_TRUE(net.finalized());
}

TEST(Netlist, LevelsAreLongestPaths) {
  const Netlist net = small_example();
  EXPECT_EQ(net.level(net.find("a")), 0u);
  EXPECT_EQ(net.level(net.find("c")), 1u);
  EXPECT_EQ(net.level(net.find("d")), 2u);
  EXPECT_EQ(net.depth(), 2u);
}

TEST(Netlist, FanoutListsArePerPin) {
  Netlist net;
  const NodeId a = net.add_input("a");
  const NodeId g = net.add_gate(GateType::And, {a, a}, "g");
  net.mark_output(g);
  net.finalize();
  // One fanout entry per pin connection.
  EXPECT_EQ(net.fanout(a).size(), 2u);
}

TEST(Netlist, StemsIncludePrimaryOutputBranch) {
  // A node that is both a PO and feeds a gate has two branches.
  Netlist net;
  const NodeId a = net.add_input("a");
  const NodeId b = net.add_input("b");
  const NodeId c = net.add_gate(GateType::And, {a, b}, "c");
  const NodeId d = net.add_gate(GateType::Not, {c}, "d");
  net.mark_output(c);
  net.mark_output(d);
  net.finalize();
  const auto stems = net.stems();
  EXPECT_NE(std::find(stems.begin(), stems.end(), c), stems.end());
}

TEST(Netlist, RejectsForwardReferences) {
  Netlist net;
  const NodeId a = net.add_input("a");
  (void)a;
  EXPECT_THROW(net.add_gate(GateType::And, {a, 5}, "g"), std::invalid_argument);
}

TEST(Netlist, RejectsWrongArity) {
  Netlist net;
  const NodeId a = net.add_input("a");
  EXPECT_THROW(net.add_gate(GateType::Not, {a, a}, ""), std::invalid_argument);
  EXPECT_THROW(net.add_gate(GateType::And, {}, ""), std::invalid_argument);
  EXPECT_THROW(net.add_gate(GateType::Const0, {a}, ""), std::invalid_argument);
}

TEST(Netlist, RejectsDuplicateNames) {
  Netlist net;
  net.add_input("a");
  const NodeId b = net.add_input("a");
  net.mark_output(b);
  EXPECT_THROW(net.finalize(), std::logic_error);
}

TEST(Netlist, RejectsDoubleOutputMark) {
  Netlist net;
  const NodeId a = net.add_input("a");
  net.mark_output(a);
  EXPECT_THROW(net.mark_output(a), std::invalid_argument);
}

TEST(Netlist, RequiresOutputs) {
  Netlist net;
  net.add_input("a");
  EXPECT_THROW(net.finalize(), std::logic_error);
}

TEST(Netlist, FrozenAfterFinalize) {
  Netlist net = small_example();
  EXPECT_THROW(net.add_input("x"), std::logic_error);
  EXPECT_THROW(net.mark_output(0), std::logic_error);
}

TEST(Netlist, FindByName) {
  const Netlist net = small_example();
  EXPECT_NE(net.find("c"), kNoNode);
  EXPECT_EQ(net.find("nope"), kNoNode);
  EXPECT_EQ(net.name_of(net.find("c")), "c");
}

TEST(GateEval, TruthTables) {
  using enum GateType;
  const bool f = false, t = true;
  {
    const bool in[] = {t, t, f};
    EXPECT_FALSE(eval_gate(And, in));
    EXPECT_TRUE(eval_gate(Nand, in));
    EXPECT_TRUE(eval_gate(Or, in));
    EXPECT_FALSE(eval_gate(Nor, in));
    EXPECT_FALSE(eval_gate(Xor, in));  // parity of 2 ones
    EXPECT_TRUE(eval_gate(Xnor, in));
  }
  {
    const bool in[] = {t};
    EXPECT_FALSE(eval_gate(Not, in));
    EXPECT_TRUE(eval_gate(Buf, in));
  }
}

TEST(GateEval, WordMatchesScalar) {
  using enum GateType;
  for (GateType ty : {And, Nand, Or, Nor, Xor, Xnor}) {
    for (unsigned m = 0; m < 8; ++m) {
      const bool in[] = {bool(m & 1), bool(m & 2), bool(m & 4)};
      const std::uint64_t w[] = {in[0] ? ~0ull : 0, in[1] ? ~0ull : 0,
                                 in[2] ? ~0ull : 0};
      EXPECT_EQ(eval_gate(ty, in), bool(eval_gate_word(ty, w) & 1))
          << to_string(ty) << " m=" << m;
    }
  }
}

TEST(GateEval, ProbMatchesTruthOnCorners) {
  using enum GateType;
  for (GateType ty : {And, Nand, Or, Nor, Xor, Xnor}) {
    for (unsigned m = 0; m < 4; ++m) {
      const bool in[] = {bool(m & 1), bool(m & 2)};
      const double p[] = {in[0] ? 1.0 : 0.0, in[1] ? 1.0 : 0.0};
      EXPECT_DOUBLE_EQ(eval_gate_prob(ty, p), eval_gate(ty, in) ? 1.0 : 0.0)
          << to_string(ty) << " m=" << m;
    }
  }
}

TEST(GateEval, ProbAndGate) {
  const double p[] = {0.5, 0.25};
  EXPECT_DOUBLE_EQ(eval_gate_prob(GateType::And, p), 0.125);
  EXPECT_DOUBLE_EQ(eval_gate_prob(GateType::Or, p), 1 - 0.5 * 0.75);
  EXPECT_DOUBLE_EQ(eval_gate_prob(GateType::Xor, p),
                   0.5 + 0.25 - 2 * 0.5 * 0.25);
}

TEST(GateEval, ControllingValues) {
  EXPECT_EQ(controlling_value(GateType::And), 0);
  EXPECT_EQ(controlling_value(GateType::Nor), 1);
  EXPECT_EQ(controlling_value(GateType::Xor), -1);
  EXPECT_FALSE(controlled_output(GateType::And));
  EXPECT_TRUE(controlled_output(GateType::Nand));
}

TEST(Tech, TransistorCounts) {
  EXPECT_EQ(transistor_count(GateType::Not, 1), 2u);
  EXPECT_EQ(transistor_count(GateType::Nand, 2), 4u);
  EXPECT_EQ(transistor_count(GateType::And, 2), 6u);
  EXPECT_EQ(transistor_count(GateType::Xor, 2), 10u);
  EXPECT_EQ(transistor_count(GateType::Input, 0), 0u);
}

TEST(Tech, NetlistTotals) {
  const Netlist net = small_example();
  // AND2 (6) + NOT (2) = 8 transistors; 2 + 1 gate equivalents.
  EXPECT_EQ(transistor_count(net), 8u);
  EXPECT_EQ(gate_equivalents(net), 3u);
}

TEST(CompiledNetlist, MirrorsGateStructure) {
  const Netlist net = make_random_circuit(stress_circuit_params(500, 3));
  const CompiledNetlist& cn = net.compiled();
  ASSERT_EQ(cn.num_nodes(), net.size());
  EXPECT_EQ(cn.num_inputs(), net.inputs().size());
  for (NodeId n = 0; n < net.size(); ++n) {
    const Gate& g = net.gate(n);
    EXPECT_EQ(cn.type(n), g.type);
    const auto fanin = cn.fanin(n);
    ASSERT_EQ(fanin.size(), g.fanin.size()) << n;
    EXPECT_TRUE(std::equal(fanin.begin(), fanin.end(), g.fanin.begin())) << n;
  }
}

TEST(CompiledNetlist, LevelRangesPartitionOrderTopologically) {
  const Netlist net = make_random_circuit(stress_circuit_params(500, 5));
  const CompiledNetlist& cn = net.compiled();
  EXPECT_EQ(cn.level_range(0).size(), 0u);
  std::size_t covered = 0;
  for (unsigned l = 0; l <= cn.depth(); ++l) {
    for (NodeId n : cn.level_range(l)) {
      EXPECT_EQ(net.level(n), l);
      // Levelization is what makes the schedule topological: every fanin
      // sits strictly below its consumer.
      for (NodeId f : cn.fanin(n)) EXPECT_LT(net.level(f), l);
    }
    covered += cn.level_range(l).size();
  }
  EXPECT_EQ(covered, cn.num_eval_gates());
  // order() holds exactly the non-input, non-constant nodes.
  EXPECT_EQ(cn.num_eval_gates() + net.inputs().size() + cn.constants().size(),
            net.size());
}

TEST(CompiledNetlist, RunsTileOrderWithUniformTypes) {
  const Netlist net = make_random_circuit(stress_circuit_params(500, 7));
  const CompiledNetlist& cn = net.compiled();
  std::uint32_t expect_begin = 0;
  for (const CompiledNetlist::Run& r : cn.runs()) {
    EXPECT_EQ(r.begin, expect_begin);
    ASSERT_LT(r.begin, r.end);
    for (std::uint32_t p = r.begin; p < r.end; ++p)
      EXPECT_EQ(cn.type(cn.order()[p]), r.type);
    expect_begin = r.end;
  }
  EXPECT_EQ(expect_begin, cn.num_eval_gates());
}

TEST(CompiledNetlist, RequiresFinalize) {
  Netlist net;
  const NodeId a = net.add_input("a");
  net.mark_output(net.add_gate(GateType::Not, {a}, "y"));
  EXPECT_THROW(net.compiled(), std::logic_error);
  net.finalize();
  EXPECT_EQ(net.compiled().num_eval_gates(), 1u);
}

TEST(Builder, BusAndMux) {
  NetlistBuilder bld;
  const Bus a = bld.input_bus("a", 3);
  EXPECT_EQ(a.size(), 3u);
  const NodeId sel = bld.input("sel");
  const NodeId m = bld.mux(sel, a[0], a[1]);
  bld.output(m, "y");
  const Netlist net = bld.build();
  EXPECT_NE(net.find("a0"), kNoNode);
  EXPECT_NE(net.find("a2"), kNoNode);
  EXPECT_NE(net.find("y"), kNoNode);
}

}  // namespace
}  // namespace protest
