// The static fault analyzer: implication-engine learning, per-fault
// classification on hand-built redundant circuits, interval soundness
// against the exact BDD miter oracle, and the pruned/bounded consumers
// (detection_probs_bounded, simulate_faults_pruned).
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "circuits/random_circuit.hpp"
#include "circuits/zoo.hpp"
#include "lint/fault_analyze.hpp"
#include "lint/implication.hpp"
#include "netlist/bench_io.hpp"
#include "observe/detect.hpp"
#include "observe/miter.hpp"
#include "observe/observability.hpp"
#include "prob/protest_estimator.hpp"
#include "prob/signal_prob.hpp"
#include "sim/fault_sim.hpp"
#include "sim/word_sim.hpp"

namespace protest {
namespace {

Netlist random_net(std::uint64_t seed, std::size_t inputs, std::size_t gates) {
  RandomCircuitParams p;
  p.num_inputs = inputs;
  p.num_gates = gates;
  p.seed = seed;
  return make_random_circuit(p);
}

// --- implication engine -----------------------------------------------------

TEST(Implication, LearnsXorOfSameSignalIsZero) {
  // The forward lattice cannot see XOR(a, a) = 0; one level of recursive
  // learning (split on a) proves it.
  const Netlist net = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
      "t = XOR(a, a)\n"
      "y = OR(t, b)\n");
  ImplicationStats stats;
  const std::vector<signed char> learned =
      learn_constants(net, ImplicationOptions{}, &stats);
  NodeId t = kNoNode;
  for (NodeId n = 0; n < net.size(); ++n)
    if (net.name_of(n) == "t") t = n;
  ASSERT_NE(t, kNoNode);
  EXPECT_EQ(learned[t], 0);
  EXPECT_GT(stats.conflicts, 0u);
}

TEST(Implication, ForwardLatticeConstantsAreAlsoLearned) {
  const Netlist net = read_bench_string(
      "INPUT(a)\nOUTPUT(y)\nc = CONST1()\ny = AND(a, c)\n");
  const std::vector<signed char> learned = learn_constants(net);
  for (NodeId n = 0; n < net.size(); ++n)
    if (net.gate(n).type == GateType::Const1) EXPECT_EQ(learned[n], 1);
}

TEST(Implication, LearnedConstantsAgreeWithExhaustiveTruth) {
  // Soundness: every learned constant must hold on EVERY input vector.
  // (The 74181 ALU model genuinely contains four const-1 nodes, which the
  // engine finds; c17 is irredundant and must learn nothing.)
  for (const char* name : {"c17", "alu"}) {
    const Netlist net = make_circuit(name);
    const std::vector<signed char> learned = learn_constants(net);
    const std::size_t ni = net.inputs().size();
    ASSERT_LE(ni, 16u);
    WordSimulator sim(net, 1);
    std::vector<std::uint64_t> ones(net.size(), 0), zeros(net.size(), 0);
    for (std::uint64_t base = 0; base < (1ull << ni); base += 64) {
      for (std::size_t i = 0; i < ni; ++i) {
        std::uint64_t w = 0;
        for (int b = 0; b < 64; ++b) w |= (((base + b) >> i) & 1ull) << b;
        sim.input_words(i)[0] = w;
      }
      sim.run();
      for (NodeId n = 0; n < net.size(); ++n) {
        ones[n] |= sim.node_words(n)[0];
        zeros[n] |= ~sim.node_words(n)[0];
      }
    }
    for (NodeId n = 0; n < net.size(); ++n) {
      if (learned[n] < 0) continue;
      if (learned[n] == 1)
        EXPECT_EQ(zeros[n], 0u) << name << " node " << n;
      else
        EXPECT_EQ(ones[n], 0u) << name << " node " << n;
    }
    if (std::string(name) == "c17")
      for (NodeId n = 0; n < net.size(); ++n)
        EXPECT_EQ(learned[n], -1) << "c17 node " << n;
  }
}

// --- classification ---------------------------------------------------------

const FaultBound& bound_for(const Netlist& net,
                            const std::vector<Fault>& faults,
                            const FaultAnalysis& fa, std::string_view name,
                            StuckAt sa) {
  for (std::size_t i = 0; i < faults.size(); ++i)
    if (faults[i].is_stem() && net.name_of(faults[i].node) == name &&
        faults[i].sa == sa)
      return fa.bounds[i];
  throw std::logic_error("fault not in collapsed list");
}

TEST(FaultAnalyze, LearnedConstantMakesStuckAtItUnexcitable) {
  const Netlist net = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
      "t = XOR(a, a)\n"
      "y = OR(t, b)\n");
  const std::vector<Fault> faults = collapsed_fault_list(net);
  const FaultAnalysis fa = analyze_faults(net, faults);
  // t is provably 0: s-a-0 at t can never be excited...
  const FaultBound& sa0 = bound_for(net, faults, fa, "t", StuckAt::Zero);
  EXPECT_EQ(sa0.verdict, FaultClass::ProvenUndetectable);
  EXPECT_EQ(sa0.cause, UndetectableCause::Unexcitable);
  EXPECT_EQ(sa0.hi, 0.0);
  // ...while the s-a-1 class (t s-a-1 ~ y s-a-1, collapsed onto the
  // b stem) forces y to 1 and shows exactly when b = 0: p = 1/2.
  const FaultBound& sa1 = bound_for(net, faults, fa, "b", StuckAt::One);
  EXPECT_EQ(sa1.verdict, FaultClass::ProvenDetectable);
  EXPECT_DOUBLE_EQ(sa1.lo, 0.5);
  EXPECT_DOUBLE_EQ(sa1.hi, 0.5);
  EXPECT_GT(fa.undetectable, 0u);
  EXPECT_GT(fa.learned_constants, 0u);
}

TEST(FaultAnalyze, FanoutFreeFaultsAreProvenDetectableWithExactBounds) {
  const Netlist net = read_bench_string(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
      "u = AND(a, b)\n"
      "y = OR(u, c)\n");
  const std::vector<Fault> faults = collapsed_fault_list(net);
  const FaultAnalysis fa = analyze_faults(net, faults);
  EXPECT_EQ(fa.undetectable, 0u);
  // a s-a-0 (the representative of the collapsed u-s-a-0 class): excite
  // P(a=1) = 1/2, then sensitize b = 1 and c = 0 — all independent on a
  // fanout-free tree, so the interval must collapse on exactly 1/8.
  const FaultBound& b = bound_for(net, faults, fa, "a", StuckAt::Zero);
  EXPECT_EQ(b.verdict, FaultClass::ProvenDetectable);
  EXPECT_DOUBLE_EQ(b.lo, 0.125);
  EXPECT_DOUBLE_EQ(b.hi, 0.125);
}

TEST(FaultAnalyze, EveryFaultGetsAVerdictAndCountsAddUp) {
  for (const char* name : {"c17", "alu", "mult"}) {
    const Netlist net = make_circuit(name);
    const std::vector<Fault> faults = collapsed_fault_list(net);
    const FaultAnalysis fa = analyze_faults(net, faults);
    ASSERT_EQ(fa.bounds.size(), faults.size());
    EXPECT_EQ(fa.undetectable, fa.unexcitable + fa.unobservable);
    EXPECT_EQ(fa.undetectable + fa.detectable + fa.uncertain, faults.size());
    for (const FaultBound& b : fa.bounds) {
      EXPECT_LE(b.lo, b.hi);
      EXPECT_GE(b.lo, 0.0);
      EXPECT_LE(b.hi, 1.0);
      if (b.verdict == FaultClass::ProvenUndetectable) {
        EXPECT_EQ(b.hi, 0.0);
        EXPECT_NE(b.cause, UndetectableCause::None);
      }
      if (b.verdict == FaultClass::ProvenDetectable) EXPECT_GT(b.lo, 0.0);
    }
  }
}

// --- soundness against the exact miter oracle -------------------------------

TEST(FaultAnalyze, IntervalsContainExactDetectionProbability) {
  // The BDD miter computes the TRUE detection probability; every static
  // interval must contain it (modulo float dust), across biased tuples.
  for (int seed = 101; seed < 105; ++seed) {
    const Netlist net = random_net(static_cast<std::uint64_t>(seed), 7, 45);
    const std::vector<Fault> faults = collapsed_fault_list(net);
    std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 6151);
    std::uniform_real_distribution<double> uni(0.1, 0.9);
    FaultAnalyzeOptions fo;
    fo.input_probs.resize(net.inputs().size());
    for (double& p : fo.input_probs) p = uni(rng);
    const FaultAnalysis fa = analyze_faults(net, faults, fo);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      const double exact =
          exact_detection_prob_bdd(net, faults[i], fo.input_probs);
      EXPECT_GE(exact, fa.bounds[i].lo - 1e-9)
          << "seed " << seed << " fault " << to_string(net, faults[i]);
      EXPECT_LE(exact, fa.bounds[i].hi + 1e-9)
          << "seed " << seed << " fault " << to_string(net, faults[i]);
    }
  }
}

TEST(FaultAnalyze, BundledCorpusSettlesAndStaysSound) {
  const char* data = std::getenv("PROTEST_DATA");
  ASSERT_NE(data, nullptr) << "PROTEST_DATA not set (see CMakeLists.txt)";
  const Netlist net = read_bench_file(std::string(data) + "/c17.bench");
  const std::vector<Fault> faults = collapsed_fault_list(net);
  const FaultAnalysis fa = analyze_faults(net, faults);
  // c17 is irredundant: no fault is provably undetectable, and on a
  // circuit this small many faults settle as proven detectable.
  EXPECT_EQ(fa.undetectable, 0u);
  EXPECT_GT(fa.detectable, 0u);
  const InputProbs ip = uniform_input_probs(net, 0.5);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const double exact = exact_detection_prob_bdd(net, faults[i], ip);
    EXPECT_GE(exact, fa.bounds[i].lo - 1e-9) << to_string(net, faults[i]);
    EXPECT_LE(exact, fa.bounds[i].hi + 1e-9) << to_string(net, faults[i]);
  }
}

// --- bounded estimator ------------------------------------------------------

TEST(DetectProbsBounded, ClampsIntoIntervalAndZeroesProvenUndetectable) {
  const Netlist net = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
      "t = XOR(a, a)\n"
      "y = OR(t, b)\n");
  const std::vector<Fault> faults = collapsed_fault_list(net);
  const FaultAnalysis fa = analyze_faults(net, faults);
  const InputProbs ip = uniform_input_probs(net, 0.5);
  const ProtestEstimator est(net);
  const std::vector<double> p = est.signal_probs(ip);
  const Observability obs = compute_observability(net, p);
  const std::vector<double> dp =
      detection_probs_bounded(net, faults, p, obs, fa);
  ASSERT_EQ(dp.size(), faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const FaultBound& b = fa.bounds[i];
    if (b.verdict == FaultClass::ProvenUndetectable)
      EXPECT_EQ(dp[i], 0.0) << to_string(net, faults[i]);
    EXPECT_GE(dp[i], b.lo) << to_string(net, faults[i]);
    EXPECT_LE(dp[i], b.hi) << to_string(net, faults[i]);
  }
  EXPECT_THROW(
      detection_probs_bounded(net, std::span<const Fault>(faults).first(1), p,
                              obs, fa),
      std::invalid_argument);
}

// --- pruned fault simulation ------------------------------------------------

TEST(FaultSimPruned, SkipsProvenUndetectableAndMatchesPlainElsewhere) {
  const Netlist net = read_bench_string(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
      "t = XOR(a, a)\n"
      "u = AND(b, c)\n"
      "y = OR(t, u)\n");
  const std::vector<Fault> faults = collapsed_fault_list(net);
  const FaultAnalysis fa = analyze_faults(net, faults);
  ASSERT_GT(fa.undetectable, 0u);
  const PatternSet ps = PatternSet::exhaustive(net.inputs().size());
  const FaultSimResult plain =
      simulate_faults(net, faults, ps, FaultSimMode::CountDetections);
  const FaultSimResult pruned =
      simulate_faults_pruned(net, faults, ps, FaultSimMode::CountDetections, fa);
  ASSERT_EQ(pruned.detect_count.size(), faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (fa.bounds[i].verdict == FaultClass::ProvenUndetectable) {
      // The proof and the simulator must agree: zero either way, and the
      // pruned run never touched the fault.
      EXPECT_EQ(plain.detect_count[i], 0u) << to_string(net, faults[i]);
      EXPECT_EQ(pruned.detect_count[i], 0u);
      EXPECT_EQ(pruned.first_detect[i], -1);
    } else {
      EXPECT_EQ(pruned.detect_count[i], plain.detect_count[i])
          << to_string(net, faults[i]);
      EXPECT_EQ(pruned.first_detect[i], plain.first_detect[i]);
    }
  }
}

TEST(FaultSimPruned, OracleThrowsOnImpossibleInterval) {
  const Netlist net = make_circuit("c17");
  const std::vector<Fault> faults = collapsed_fault_list(net);
  FaultAnalysis fa = analyze_faults(net, faults);
  // Sabotage one interval to exclude the true detection probability by
  // far more than the 6-sigma slack: the cross-check must fail loudly.
  // (4096 patterns -> slack ~0.047; no c17 fault detects above ~0.95.)
  fa.bounds[0].lo = 0.999;
  fa.bounds[0].hi = 1.0;
  fa.bounds[0].verdict = FaultClass::ProvenDetectable;
  const PatternSet ps = PatternSet::random(net.inputs().size(), 4096, 99);
  EXPECT_THROW(simulate_faults_pruned(net, faults, ps,
                                      FaultSimMode::CountDetections, fa),
               std::logic_error);
  EXPECT_THROW(
      simulate_faults_pruned(net, std::span<const Fault>(faults).first(2), ps,
                             FaultSimMode::CountDetections, fa),
      std::invalid_argument);
}

}  // namespace
}  // namespace protest
