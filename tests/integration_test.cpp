// Integration tests reproducing the paper's headline claims end-to-end:
//  * sect. 4 / Table 1: correlation(P_PROT, P_SIM) > 0.9 on the ALU, far
//    above the SCOAP-based baseline;
//  * fig. 6: systematic under-estimation on MULT (P_SIM >= P_PROT);
//  * sect. 5 / Table 2: the computed test length reaches ~full coverage of
//    detectable faults in fault simulation;
//  * sect. 6 / Table 6: weighted patterns dominate uniform ones on the
//    random-pattern-resistant divider.
#include <gtest/gtest.h>

#include "analysis/stats.hpp"
#include "circuits/zoo.hpp"
#include "measures/scoap.hpp"
#include "protest/protest.hpp"
#include "testlen/test_length.hpp"

namespace protest {
namespace {

TEST(PaperClaims, AluCorrelationAboveNinety) {
  const Netlist net = make_circuit("alu");
  const Protest tool(net);
  const auto report = tool.analyze(uniform_input_probs(net, 0.5));

  // Exhaustive fault simulation: P_SIM is exact for the ALU (2^14 inputs).
  const PatternSet all = PatternSet::exhaustive(net.inputs().size());
  const auto sim = tool.fault_simulate(all, FaultSimMode::CountDetections);
  const auto psim = sim.detection_probs();

  const ErrorStats protest_stats =
      compare_estimates(report.detection_probs, psim);
  EXPECT_GT(protest_stats.correlation, 0.9);  // the paper's claim
  EXPECT_LT(protest_stats.mean_abs_error, 0.08);

  // The SCOAP-derived baseline must correlate far worse ([AgMe82]: ~0.4).
  const auto scoap = compute_scoap(net);
  const auto pscoap = pscoap_detection_probs(net, tool.faults(), scoap);
  const double c_scoap = pearson_correlation(pscoap, psim);
  EXPECT_LT(c_scoap, protest_stats.correlation - 0.15)
      << "PROTEST " << protest_stats.correlation << " vs SCOAP " << c_scoap;
}

TEST(PaperClaims, MultShowsUnderestimationBias) {
  const Netlist net = make_circuit("mult");
  const Protest tool(net);
  const auto report = tool.analyze(uniform_input_probs(net, 0.5));
  const PatternSet ps = PatternSet::random(net.inputs().size(), 20'000, 77);
  const auto psim =
      tool.fault_simulate(ps, FaultSimMode::CountDetections).detection_probs();
  const ErrorStats s = compare_estimates(report.detection_probs, psim);
  EXPECT_GT(s.correlation, 0.85);
  // Fig. 6: "in general P_SIM is higher than P_PROT" — the signed error of
  // the estimate must be negative.
  EXPECT_LT(s.mean_signed_error, 0.0);
}

TEST(PaperClaims, AluTestLengthReachesFullCoverage) {
  const Netlist net = make_circuit("alu");
  const Protest tool(net);
  const auto report = tool.analyze(uniform_input_probs(net, 0.5));
  const std::uint64_t n = tool.test_length(report, 0.98, 0.98);
  ASSERT_NE(n, kInfiniteTestLength);
  // Table 2: a few hundred patterns.
  EXPECT_GT(n, 20u);
  EXPECT_LT(n, 5'000u);

  // Validate like the paper: simulate a set of that size; nearly all
  // detectable faults must fall (99.9..100% in the paper).
  const PatternSet ps = tool.generate_patterns(
      report.input_probs, static_cast<std::size_t>(n), 2024);
  const auto sim = tool.fault_simulate(ps, FaultSimMode::FirstDetection);
  // Detectable = detected by exhaustive simulation.
  const PatternSet all = PatternSet::exhaustive(net.inputs().size());
  const auto oracle = tool.fault_simulate(all, FaultSimMode::FirstDetection);
  std::size_t detectable = 0, detected = 0;
  for (std::size_t i = 0; i < tool.faults().size(); ++i) {
    if (oracle.first_detect[i] < 0) continue;
    ++detectable;
    detected += sim.first_detect[i] >= 0;
  }
  ASSERT_GT(detectable, 0u);
  EXPECT_GE(static_cast<double>(detected) / static_cast<double>(detectable),
            0.97);
}

TEST(PaperClaims, OptimizedPatternsDominateUniformOnComparator) {
  // Table 6 on COMP: uniform random patterns plateau far below the
  // optimized weighted set at the same pattern count (paper: 76.5% vs
  // 97.2% at 2000 patterns; our comparator is even more resistant).
  const Netlist net = make_circuit("comp");
  ProtestOptions popts;
  popts.universe = FaultUniverse::Collapsed;
  const Protest tool(net, popts);

  HillClimbOptions opts;
  opts.max_sweeps = 3;
  const HillClimbResult opt = tool.optimize(2000, opts);

  const std::size_t budget = 2000;
  const auto uniform = tool.fault_simulate(
      tool.generate_patterns(uniform_input_probs(net, 0.5), budget, 5),
      FaultSimMode::FirstDetection);
  const auto weighted = tool.fault_simulate(
      tool.generate_patterns(opt.probs, budget, 5),
      FaultSimMode::FirstDetection);
  EXPECT_GT(weighted.coverage(), 0.90);
  EXPECT_GT(weighted.coverage(), uniform.coverage() + 0.20)
      << "uniform " << uniform.coverage() << " vs weighted "
      << weighted.coverage();
}

TEST(PaperClaims, EstimatedTestLengthIsNotOverconfident) {
  // Sect. 5: "PROTEST does not need such a [weighting] factor, because its
  // estimations were systematically higher than P_f" — i.e. N computed
  // from the estimates must not be wildly *smaller* than what the
  // simulated probabilities require.  Compare over the detectable faults
  // (the ALU's flattened carry lookahead contains redundant, untestable
  // faults for which no N exists).
  const Netlist net = make_circuit("alu");
  const Protest tool(net);
  const auto report = tool.analyze(uniform_input_probs(net, 0.5));
  const PatternSet all = PatternSet::exhaustive(net.inputs().size());
  const auto psim =
      tool.fault_simulate(all, FaultSimMode::CountDetections).detection_probs();
  std::vector<double> est_d, sim_d;
  for (std::size_t i = 0; i < psim.size(); ++i) {
    if (psim[i] <= 0.0) continue;
    est_d.push_back(report.detection_probs[i]);
    sim_d.push_back(psim[i]);
  }
  const std::uint64_t n_est = required_test_length(est_d, 1.0, 0.98);
  const std::uint64_t n_sim = required_test_length(sim_d, 1.0, 0.98);
  ASSERT_NE(n_sim, kInfiniteTestLength);
  ASSERT_NE(n_est, kInfiniteTestLength);
  EXPECT_LT(n_sim, 4 * n_est) << "estimates dangerously optimistic";
}

}  // namespace
}  // namespace protest
