// Test length computation — formula (3) of sect. 5 and its inverse.
#include <gtest/gtest.h>

#include <cmath>

#include "testlen/test_length.hpp"

namespace protest {
namespace {

TEST(TestLength, SetDetectionProbMatchesClosedForm) {
  const double pf[] = {0.5, 0.25};
  // P_F(N) = (1 - 0.5^N)(1 - 0.75^N)
  for (std::uint64_t n : {1ull, 2ull, 10ull, 100ull}) {
    const double expect = (1 - std::pow(0.5, double(n))) *
                          (1 - std::pow(0.75, double(n)));
    EXPECT_NEAR(set_detection_prob(pf, n), expect, 1e-12) << n;
  }
}

TEST(TestLength, SetDetectionEdgeCases) {
  const double none[] = {0.0, 0.5};
  EXPECT_DOUBLE_EQ(set_detection_prob(none, 1000), 0.0);
  const double sure[] = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(set_detection_prob(sure, 1), 1.0);
  const double tiny[] = {1e-9};
  EXPECT_NEAR(set_detection_prob(tiny, 1), 1e-9, 1e-15);
}

TEST(TestLength, RequiredLengthSingleFault) {
  // One fault with p: N = ceil(log(1-e)/log(1-p)).
  const double pf[] = {0.1};
  const std::uint64_t n = required_test_length(pf, 1.0, 0.95);
  EXPECT_EQ(n, static_cast<std::uint64_t>(
                   std::ceil(std::log(0.05) / std::log(0.9))));
  // Verify minimality.
  EXPECT_GE(set_detection_prob(pf, n), 0.95);
  EXPECT_LT(set_detection_prob(pf, n - 1), 0.95);
}

TEST(TestLength, MonotoneInConfidence) {
  const double pf[] = {0.3, 0.02, 0.5};
  std::uint64_t prev = 0;
  for (double e : {0.5, 0.9, 0.95, 0.98, 0.999}) {
    const std::uint64_t n = required_test_length(pf, 1.0, e);
    EXPECT_GE(n, prev) << e;
    prev = n;
  }
}

TEST(TestLength, DroppingHardFaultsShortensTest) {
  // One resistant fault dominates N; d = 0.75 removes it (4 faults).
  const double pf[] = {0.5, 0.4, 0.3, 1e-6};
  const std::uint64_t full = required_test_length(pf, 1.0, 0.98);
  const std::uint64_t d75 = required_test_length(pf, 0.75, 0.98);
  EXPECT_GT(full, 1'000'000u);
  EXPECT_LT(d75, 100u);
}

TEST(TestLength, UndetectableMakesInfinite) {
  const double pf[] = {0.5, 0.0};
  EXPECT_EQ(required_test_length(pf, 1.0, 0.95), kInfiniteTestLength);
  // ...unless d excludes the undetectable fault.
  EXPECT_LT(required_test_length(pf, 0.5, 0.95), kInfiniteTestLength);
}

TEST(TestLength, EasiestFractionPicksDescending) {
  const double pf[] = {0.1, 0.9, 0.5, 0.7};
  const auto f50 = easiest_fraction(pf, 0.5);
  ASSERT_EQ(f50.size(), 2u);
  EXPECT_DOUBLE_EQ(f50[0], 0.9);
  EXPECT_DOUBLE_EQ(f50[1], 0.7);
  EXPECT_EQ(easiest_fraction(pf, 1.0).size(), 4u);
  // d so small that it still keeps one fault.
  EXPECT_EQ(easiest_fraction(pf, 0.01).size(), 1u);
}

TEST(TestLength, ExpectedCoverageMonotoneAndBounded) {
  const double pf[] = {0.5, 0.1, 0.01};
  double prev = 0.0;
  for (std::uint64_t n : {1ull, 10ull, 100ull, 1000ull, 100000ull}) {
    const double c = expected_coverage(pf, n);
    EXPECT_GE(c, prev);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_NEAR(expected_coverage(pf, 1'000'000), 1.0, 1e-9);
  const double with_undet[] = {0.5, 0.0};
  EXPECT_NEAR(expected_coverage(with_undet, 1'000'000), 0.5, 1e-12);
}

TEST(TestLength, ValidatesArguments) {
  const double pf[] = {0.5};
  EXPECT_THROW(required_test_length(pf, 0.0, 0.95), std::invalid_argument);
  EXPECT_THROW(required_test_length(pf, 1.5, 0.95), std::invalid_argument);
  EXPECT_THROW(required_test_length(pf, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(required_test_length(pf, 1.0, 1.0), std::invalid_argument);
}

TEST(TestLength, PaperScaleResistantFaults) {
  // A COMP-like profile: equality-chain faults with p ~ 2^-24 need ~10^8
  // patterns, the Table 3 order of magnitude.
  const double pf[] = {0.5, 0.25, 5.96e-8};
  const std::uint64_t n = required_test_length(pf, 1.0, 0.95);
  EXPECT_GT(n, 10'000'000u);
  EXPECT_LT(n, 200'000'000u);
}

}  // namespace
}  // namespace protest
