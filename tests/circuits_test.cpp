// Functional correctness of every generated circuit against integer
// arithmetic / behavioural references.
#include <gtest/gtest.h>

#include <random>

#include "circuits/arith.hpp"
#include "circuits/comp24.hpp"
#include "circuits/div16.hpp"
#include "circuits/mult.hpp"
#include "circuits/random_circuit.hpp"
#include "circuits/sn74181.hpp"
#include "circuits/sn7485.hpp"
#include "circuits/zoo.hpp"
#include "netlist/tech.hpp"
#include "sim/logic_sim.hpp"

namespace protest {
namespace {

/// Reads a named bus ("F0", "F1", ...) from simulated values.
std::uint64_t read_bus(const Netlist& net, const std::vector<bool>& vals,
                       const std::string& name, std::size_t width) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < width; ++i) {
    const NodeId n = net.find(name + std::to_string(i));
    EXPECT_NE(n, kNoNode) << name << i;
    if (vals[n]) v |= std::uint64_t{1} << i;
  }
  return v;
}

std::vector<bool> bus_inputs(std::initializer_list<std::pair<std::uint64_t, int>>
                                 fields) {
  std::vector<bool> in;
  for (const auto& [value, width] : fields)
    for (int i = 0; i < width; ++i) in.push_back((value >> i) & 1);
  return in;
}

TEST(Arith, RippleAdderRandom) {
  NetlistBuilder bld;
  const Bus a = bld.input_bus("A", 8);
  const Bus b = bld.input_bus("B", 8);
  AddResult r = ripple_adder(bld, a, b);
  Bus sum = r.sum;
  sum.push_back(r.carry);
  bld.output_bus(sum, "S");
  const Netlist net = bld.build();
  std::mt19937_64 rng(1);
  for (int t = 0; t < 200; ++t) {
    const unsigned x = rng() & 0xFF, y = rng() & 0xFF;
    const auto vals = simulate_single(net, bus_inputs({{x, 8}, {y, 8}}));
    EXPECT_EQ(read_bus(net, vals, "S", 9), x + y) << x << "+" << y;
  }
}

TEST(Arith, RippleAdderUnequalWidths) {
  NetlistBuilder bld;
  const Bus a = bld.input_bus("A", 10);
  const Bus b = bld.input_bus("B", 4);
  AddResult r = ripple_adder(bld, a, b);
  Bus sum = r.sum;
  sum.push_back(r.carry == kNoNode ? bld.constant(false) : r.carry);
  bld.output_bus(sum, "S");
  const Netlist net = bld.build();
  std::mt19937_64 rng(2);
  for (int t = 0; t < 100; ++t) {
    const unsigned x = rng() & 0x3FF, y = rng() & 0xF;
    const auto vals = simulate_single(net, bus_inputs({{x, 10}, {y, 4}}));
    EXPECT_EQ(read_bus(net, vals, "S", 11), x + y);
  }
}

TEST(Arith, SubtractorComputesDifferenceAndBorrow) {
  NetlistBuilder bld;
  const Bus a = bld.input_bus("A", 8);
  const Bus b = bld.input_bus("B", 8);
  SubResult r = ripple_subtractor(bld, a, b);
  bld.output_bus(r.diff, "D");
  bld.output(r.borrow, "BO");
  const Netlist net = bld.build();
  std::mt19937_64 rng(3);
  for (int t = 0; t < 200; ++t) {
    const unsigned x = rng() & 0xFF, y = rng() & 0xFF;
    const auto vals = simulate_single(net, bus_inputs({{x, 8}, {y, 8}}));
    EXPECT_EQ(read_bus(net, vals, "D", 8), (x - y) & 0xFF);
    EXPECT_EQ(vals[net.find("BO")], x < y);
  }
}

TEST(Arith, MultiplierExhaustive4x4) {
  const Netlist net = make_multiplier(4);
  for (unsigned x = 0; x < 16; ++x)
    for (unsigned y = 0; y < 16; ++y) {
      const auto vals = simulate_single(net, bus_inputs({{x, 4}, {y, 4}}));
      EXPECT_EQ(read_bus(net, vals, "P", 8), x * y) << x << "*" << y;
    }
}

TEST(Arith, MultiplierRandom8x8) {
  const Netlist net = make_multiplier(8);
  std::mt19937_64 rng(4);
  for (int t = 0; t < 200; ++t) {
    const unsigned x = rng() & 0xFF, y = rng() & 0xFF;
    const auto vals = simulate_single(net, bus_inputs({{x, 8}, {y, 8}}));
    EXPECT_EQ(read_bus(net, vals, "P", 16), x * y);
  }
}

TEST(Arith, EqualityAndMux) {
  NetlistBuilder bld;
  const Bus a = bld.input_bus("A", 4);
  const Bus b = bld.input_bus("B", 4);
  const NodeId sel = bld.input("SEL");
  bld.output(equality(bld, a, b), "EQ");
  bld.output_bus(mux_bus(bld, sel, a, b), "M");
  const Netlist net = bld.build();
  std::mt19937_64 rng(5);
  for (int t = 0; t < 100; ++t) {
    const unsigned x = rng() & 0xF, y = rng() & 0xF, s = rng() & 1;
    const auto vals =
        simulate_single(net, bus_inputs({{x, 4}, {y, 4}, {s, 1}}));
    EXPECT_EQ(vals[net.find("EQ")], x == y);
    EXPECT_EQ(read_bus(net, vals, "M", 4), s ? y : x);
  }
}

TEST(Alu181, MatchesReferenceExhaustively) {
  const Netlist net = make_sn74181();
  ASSERT_EQ(net.inputs().size(), 14u);
  for (unsigned pattern = 0; pattern < (1u << 14); ++pattern) {
    const unsigned a = pattern & 0xF, b = (pattern >> 4) & 0xF;
    const unsigned s = (pattern >> 8) & 0xF;
    const bool m = (pattern >> 12) & 1, cn = (pattern >> 13) & 1;
    const auto vals = simulate_single(
        net, bus_inputs({{a, 4}, {b, 4}, {s, 4}, {m, 1}, {cn, 1}}));
    const Alu181Out ref = alu181_reference(a, b, s, m, cn);
    ASSERT_EQ(read_bus(net, vals, "F", 4), ref.f) << pattern;
    ASSERT_EQ(vals[net.find("COUT")], ref.cout) << pattern;
    ASSERT_EQ(vals[net.find("POUT")], ref.pout) << pattern;
    ASSERT_EQ(vals[net.find("GOUT")], ref.gout) << pattern;
    ASSERT_EQ(vals[net.find("AEQB")], ref.aeqb) << pattern;
  }
}

TEST(Alu181, DatasheetFunctionSpotChecks) {
  const Netlist net = make_sn74181();
  auto run = [&](unsigned a, unsigned b, unsigned s, bool m, bool cn) {
    const auto vals = simulate_single(
        net, bus_inputs({{a, 4}, {b, 4}, {s, 4}, {m, 1}, {cn, 1}}));
    return read_bus(net, vals, "F", 4);
  };
  for (unsigned a = 0; a < 16; ++a)
    for (unsigned b = 0; b < 16; ++b) {
      // Logic mode (M=1): S=0000 -> NOT A; S=0110 -> A XOR B;
      // S=1001 -> XNOR; S=1111 -> A; S=0011 -> 0; S=1100 -> 1.
      EXPECT_EQ(run(a, b, 0b0000, true, false), (~a) & 0xF);
      EXPECT_EQ(run(a, b, 0b0110, true, false), a ^ b);
      EXPECT_EQ(run(a, b, 0b1001, true, false), (~(a ^ b)) & 0xF);
      EXPECT_EQ(run(a, b, 0b1111, true, false), a);
      EXPECT_EQ(run(a, b, 0b0011, true, false), 0u);
      EXPECT_EQ(run(a, b, 0b1100, true, false), 0xFu);
      // Arithmetic mode (M=0): S=1001 -> A plus B (plus carry);
      // S=0000 -> A (plus carry); S=0110 -> A minus B minus 1 (plus carry).
      EXPECT_EQ(run(a, b, 0b1001, false, false), (a + b) & 0xF);
      EXPECT_EQ(run(a, b, 0b1001, false, true), (a + b + 1) & 0xF);
      EXPECT_EQ(run(a, b, 0b0000, false, false), a);
      EXPECT_EQ(run(a, b, 0b0110, false, false), (a - b - 1) & 0xF);
      EXPECT_EQ(run(a, b, 0b0110, false, true), (a - b) & 0xF);
    }
}

TEST(Alu181, AeqbFlagsEqualityInSubtractMode) {
  const Netlist net = make_sn74181();
  for (unsigned a = 0; a < 16; ++a)
    for (unsigned b = 0; b < 16; ++b) {
      const auto vals = simulate_single(
          net, bus_inputs({{a, 4}, {b, 4}, {0b0110u, 4}, {0, 1}, {0, 1}}));
      EXPECT_EQ(vals[net.find("AEQB")], a == b) << a << " " << b;
    }
}

TEST(Sn7485, ExhaustiveCompare) {
  const Netlist net = make_sn7485();
  for (unsigned a = 0; a < 16; ++a)
    for (unsigned b = 0; b < 16; ++b)
      for (unsigned casc = 0; casc < 3; ++casc) {
        const bool lti = casc == 0, eqi = casc == 1, gti = casc == 2;
        const auto vals = simulate_single(
            net, bus_inputs({{a, 4}, {b, 4}, {lti, 1}, {eqi, 1}, {gti, 1}}));
        const bool lt = a < b || (a == b && lti);
        const bool eq = a == b && eqi;
        const bool gt = a > b || (a == b && gti);
        EXPECT_EQ(vals[net.find("LT")], lt) << a << " " << b << " " << casc;
        EXPECT_EQ(vals[net.find("EQ")], eq) << a << " " << b << " " << casc;
        EXPECT_EQ(vals[net.find("GT")], gt) << a << " " << b << " " << casc;
      }
}

TEST(Comp24, RandomWordComparisons) {
  const Netlist net = make_comp24();
  ASSERT_EQ(net.inputs().size(), 51u);  // A0..23, B0..23, TI1..3 (Table 4)
  std::mt19937_64 rng(6);
  for (int t = 0; t < 300; ++t) {
    const std::uint64_t a = rng() & 0xFFFFFF, b = rng() & 0xFFFFFF;
    const unsigned casc = static_cast<unsigned>(rng() % 3);
    const bool lti = casc == 0, eqi = casc == 1, gti = casc == 2;
    const auto vals = simulate_single(
        net,
        bus_inputs({{a, 24}, {b, 24}, {lti, 1}, {eqi, 1}, {gti, 1}}));
    EXPECT_EQ(vals[net.find("LT")], a < b || (a == b && lti));
    EXPECT_EQ(vals[net.find("EQ")], a == b && eqi);
    EXPECT_EQ(vals[net.find("GT")], a > b || (a == b && gti));
  }
}

TEST(Comp24, EqualWordsExerciseCascade) {
  const Netlist net = make_comp24();
  std::mt19937_64 rng(7);
  for (int t = 0; t < 50; ++t) {
    const std::uint64_t a = rng() & 0xFFFFFF;
    const auto vals = simulate_single(
        net, bus_inputs({{a, 24}, {a, 24}, {0, 1}, {1, 1}, {0, 1}}));
    EXPECT_TRUE(vals[net.find("EQ")]);
    EXPECT_FALSE(vals[net.find("LT")]);
    EXPECT_FALSE(vals[net.find("GT")]);
  }
}

TEST(Mult, ComputesAPlusBPlusCTimesD) {
  const Netlist net = make_mult();
  ASSERT_EQ(net.inputs().size(), 32u);
  std::mt19937_64 rng(8);
  for (int t = 0; t < 300; ++t) {
    const unsigned a = rng() & 0xFF, b = rng() & 0xFF;
    const unsigned c = rng() & 0xFF, d = rng() & 0xFF;
    const auto vals = simulate_single(
        net, bus_inputs({{a, 8}, {b, 8}, {c, 8}, {d, 8}}));
    EXPECT_EQ(read_bus(net, vals, "F", 17), a + b + c * d);
  }
}

TEST(Div16, RandomDivisions) {
  const Netlist net = make_div16();
  std::mt19937_64 rng(9);
  for (int t = 0; t < 200; ++t) {
    const unsigned n = rng() & 0xFFFF;
    const unsigned d = 1 + (rng() % 0xFFFF);
    const auto vals = simulate_single(net, bus_inputs({{n, 16}, {d, 16}}));
    EXPECT_EQ(read_bus(net, vals, "Q", 16), n / d) << n << "/" << d;
    EXPECT_EQ(read_bus(net, vals, "R", 16), n % d) << n << "%" << d;
  }
}

TEST(Div16, EdgeCases) {
  const Netlist net = make_div16();
  // n < d, n == d, d == 1, and the documented d == 0 convention.
  struct Case {
    unsigned n, d, q, r;
  };
  for (const Case c : {Case{5, 9, 0, 5}, Case{9, 9, 1, 0},
                       Case{0xFFFF, 1, 0xFFFF, 0}, Case{0, 7, 0, 0}}) {
    const auto vals = simulate_single(net, bus_inputs({{c.n, 16}, {c.d, 16}}));
    EXPECT_EQ(read_bus(net, vals, "Q", 16), c.q) << c.n << "/" << c.d;
    EXPECT_EQ(read_bus(net, vals, "R", 16), c.r);
  }
  const auto vals = simulate_single(net, bus_inputs({{1234u, 16}, {0u, 16}}));
  EXPECT_EQ(read_bus(net, vals, "Q", 16), 0xFFFFu);
  EXPECT_EQ(read_bus(net, vals, "R", 16), 1234u);
}

TEST(Divider, SmallWidthExhaustive) {
  const Netlist net = make_divider(4);
  for (unsigned n = 0; n < 16; ++n)
    for (unsigned d = 1; d < 16; ++d) {
      const auto vals = simulate_single(net, bus_inputs({{n, 4}, {d, 4}}));
      EXPECT_EQ(read_bus(net, vals, "Q", 4), n / d) << n << "/" << d;
      EXPECT_EQ(read_bus(net, vals, "R", 4), n % d);
    }
}

TEST(Zoo, AllCircuitsBuildAndHaveSaneSizes) {
  for (const std::string& name : zoo_names()) {
    const Netlist net = make_circuit(name);
    EXPECT_GT(net.inputs().size(), 0u) << name;
    EXPECT_GT(net.outputs().size(), 0u) << name;
    EXPECT_GT(transistor_count(net), 0u) << name;
  }
  EXPECT_THROW(make_circuit("nope"), std::invalid_argument);
}

TEST(Zoo, ScalingFamilyGrows) {
  std::size_t prev = 0;
  for (const std::string& name : scaling_family()) {
    const std::size_t t = transistor_count(make_circuit(name));
    EXPECT_GT(t, prev) << name;
    prev = t;
  }
  // The family spans the paper's Table 7 range (hundreds to tens of
  // thousands of transistors).
  EXPECT_LT(transistor_count(make_circuit(scaling_family().front())), 2'000u);
  EXPECT_GT(transistor_count(make_circuit(scaling_family().back())), 30'000u);
}

TEST(Zoo, PaperCircuitSizesRoughlyMatch) {
  // MULT is "1568 gate equivalents" in the paper; ours must land in the
  // same order of magnitude.
  const std::size_t ge = gate_equivalents(make_circuit("mult"));
  EXPECT_GT(ge, 400u);
  EXPECT_LT(ge, 4'000u);
  // The ALU is a ~75-gate SSI part (368 transistors in the paper).
  const std::size_t alu_t = transistor_count(make_circuit("alu"));
  EXPECT_GT(alu_t, 150u);
  EXPECT_LT(alu_t, 1'000u);
}

TEST(RandomCircuits, DeterministicPerSeed) {
  RandomCircuitParams p;
  p.seed = 42;
  const Netlist a = make_random_circuit(p);
  const Netlist b = make_random_circuit(p);
  ASSERT_EQ(a.size(), b.size());
  for (NodeId n = 0; n < a.size(); ++n) {
    EXPECT_EQ(a.gate(n).type, b.gate(n).type);
    EXPECT_EQ(a.gate(n).fanin, b.gate(n).fanin);
  }
}

}  // namespace
}  // namespace protest
