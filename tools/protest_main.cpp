// Thin executable wrapper around the PROTEST CLI (src/protest/cli.hpp).
#include <iostream>
#include <string>
#include <vector>

#include "protest/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) args.push_back("help");
  return protest::run_cli(args, std::cout, std::cerr);
}
