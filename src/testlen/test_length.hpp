// Random test length computation (sect. 5, formula (3)):
//
//   P_F = prod_{f in F} ( 1 - (1 - P_f)^N )
//
// the probability that N random patterns detect every fault in F, assuming
// statistically independent detection.  PROTEST solves the inverse problem:
// the smallest N reaching confidence e, optionally restricted to F_d — the
// d*100% faults with the highest detection probabilities.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace protest {

/// Returned when no finite pattern count can reach the confidence (some
/// fault in F_d has detection probability 0).
inline constexpr std::uint64_t kInfiniteTestLength =
    std::numeric_limits<std::uint64_t>::max();

/// P_F for a given N (formula (3)), computed in log space.
double set_detection_prob(std::span<const double> detection_probs,
                          std::uint64_t n);

/// Expected stuck-at coverage after n patterns: mean_f (1 - (1-P_f)^n).
double expected_coverage(std::span<const double> detection_probs,
                         std::uint64_t n);

/// The d*100% easiest faults of the list (descending detection
/// probability), d in (0,1].
std::vector<double> easiest_fraction(std::span<const double> detection_probs,
                                     double d);

/// Smallest N with P_{F_d} >= e (the paper's Table 2/3/5 quantity).
/// Returns kInfiniteTestLength when unreachable.
std::uint64_t required_test_length(std::span<const double> detection_probs,
                                   double d, double e);

}  // namespace protest
