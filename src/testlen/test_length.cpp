#include "testlen/test_length.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace protest {
namespace {

/// log(1 - (1-p)^n) computed stably; -inf when p == 0.
double log_term(double p, std::uint64_t n) {
  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return 0.0;
  // (1-p)^n = exp(n log(1-p)); for tiny exponents use log1p(-x) directly.
  const double miss_log = static_cast<double>(n) * std::log1p(-p);
  if (miss_log < -745.0) return 0.0;  // (1-p)^n underflows: term is log(1)
  return std::log1p(-std::exp(miss_log));
}

}  // namespace

double set_detection_prob(std::span<const double> detection_probs,
                          std::uint64_t n) {
  double acc = 0.0;
  for (double p : detection_probs) {
    const double t = log_term(p, n);
    if (t == -std::numeric_limits<double>::infinity()) return 0.0;
    acc += t;
  }
  return std::exp(acc);
}

double expected_coverage(std::span<const double> detection_probs,
                         std::uint64_t n) {
  if (detection_probs.empty()) return 1.0;
  double acc = 0.0;
  for (double p : detection_probs) {
    if (p <= 0.0) continue;
    if (p >= 1.0) {
      acc += 1.0;
      continue;
    }
    const double miss_log = static_cast<double>(n) * std::log1p(-p);
    acc += 1.0 - std::exp(miss_log);
  }
  return acc / static_cast<double>(detection_probs.size());
}

std::vector<double> easiest_fraction(std::span<const double> detection_probs,
                                     double d) {
  if (!(d > 0.0 && d <= 1.0))
    throw std::invalid_argument("easiest_fraction: d must be in (0,1]");
  std::vector<double> sorted(detection_probs.begin(), detection_probs.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>{});
  const std::size_t keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(d * static_cast<double>(sorted.size()) - 1e-9)));
  sorted.resize(std::min(keep, sorted.size()));
  return sorted;
}

std::uint64_t required_test_length(std::span<const double> detection_probs,
                                   double d, double e) {
  if (!(e > 0.0 && e < 1.0))
    throw std::invalid_argument("required_test_length: e must be in (0,1)");
  const std::vector<double> fd = easiest_fraction(detection_probs, d);
  if (fd.empty()) return 1;
  if (fd.back() <= 0.0) return kInfiniteTestLength;

  // Exponential bracketing + binary search on the monotone predicate.
  auto reaches = [&](std::uint64_t n) { return set_detection_prob(fd, n) >= e; };
  std::uint64_t hi = 1;
  const std::uint64_t cap = std::uint64_t{1} << 62;
  while (!reaches(hi)) {
    if (hi >= cap) return kInfiniteTestLength;
    hi *= 2;
  }
  std::uint64_t lo = hi / 2;  // reaches(lo) is false (or lo == 0)
  while (lo + 1 < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (reaches(mid))
      hi = mid;
    else
      lo = mid;
  }
  return hi;
}

}  // namespace protest
