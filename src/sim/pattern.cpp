#include "sim/pattern.hpp"

#include <random>
#include <stdexcept>

namespace protest {

PatternSet::PatternSet(std::size_t num_inputs, std::size_t num_patterns)
    : num_inputs_(num_inputs),
      num_patterns_(num_patterns),
      num_blocks_((num_patterns + 63) / 64),
      words_(num_inputs * num_blocks_, 0) {
  if (num_patterns == 0)
    throw std::invalid_argument("PatternSet: need at least one pattern");
}

bool PatternSet::get(std::size_t pattern, std::size_t input) const {
  return (word(input, pattern / 64) >> (pattern % 64)) & 1u;
}

void PatternSet::set(std::size_t pattern, std::size_t input, bool v) {
  std::uint64_t w = word(input, pattern / 64);
  const std::uint64_t bit = std::uint64_t{1} << (pattern % 64);
  w = v ? (w | bit) : (w & ~bit);
  set_word(input, pattern / 64, w);
}

std::uint64_t PatternSet::valid_mask(std::size_t block) const {
  if (block + 1 < num_blocks_) return ~std::uint64_t{0};
  const std::size_t rem = num_patterns_ % 64;
  if (rem == 0) return ~std::uint64_t{0};
  return (std::uint64_t{1} << rem) - 1;
}

PatternSet PatternSet::random(std::size_t num_inputs,
                              std::size_t num_patterns, std::uint64_t seed) {
  PatternSet ps(num_inputs, num_patterns);
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < num_inputs; ++i)
    for (std::size_t b = 0; b < ps.num_blocks_; ++b)
      ps.set_word(i, b, rng());
  return ps;
}

PatternSet PatternSet::weighted(std::span<const double> probs,
                                std::size_t num_patterns,
                                std::uint64_t seed) {
  PatternSet ps(probs.size(), num_patterns);
  std::mt19937_64 rng(seed);
  // Threshold comparison on 32-bit draws: bias < 2^-32, far below any
  // quantity the tool works with.
  for (std::size_t i = 0; i < probs.size(); ++i) {
    if (probs[i] < 0.0 || probs[i] > 1.0)
      throw std::invalid_argument("PatternSet::weighted: probability outside [0,1]");
    const std::uint64_t threshold =
        static_cast<std::uint64_t>(probs[i] * 4294967296.0);
    for (std::size_t b = 0; b < ps.num_blocks_; ++b) {
      std::uint64_t w = 0;
      for (int bit = 0; bit < 64; ++bit) {
        const std::uint64_t draw = rng() >> 32;
        if (draw < threshold) w |= std::uint64_t{1} << bit;
      }
      ps.set_word(i, b, w);
    }
  }
  return ps;
}

PatternSet PatternSet::exhaustive(std::size_t num_inputs) {
  if (num_inputs > 24)
    throw std::invalid_argument("PatternSet::exhaustive: > 24 inputs");
  const std::size_t n = std::size_t{1} << num_inputs;
  PatternSet ps(num_inputs, n);
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t i = 0; i < num_inputs; ++i)
      if ((p >> i) & 1u) ps.set(p, i, true);
  return ps;
}

}  // namespace protest
