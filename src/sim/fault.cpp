#include "sim/fault.hpp"

#include <algorithm>
#include <numeric>

namespace protest {
namespace {

/// Union-find over fault indices.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

std::vector<Fault> full_fault_list(const Netlist& net) {
  std::vector<Fault> out;
  for (NodeId n = 0; n < net.size(); ++n) {
    out.push_back({n, -1, StuckAt::Zero});
    out.push_back({n, -1, StuckAt::One});
  }
  for (NodeId n = 0; n < net.size(); ++n) {
    const Gate& g = net.gate(n);
    for (int k = 0; k < static_cast<int>(g.fanin.size()); ++k) {
      out.push_back({n, k, StuckAt::Zero});
      out.push_back({n, k, StuckAt::One});
    }
  }
  return out;
}

std::vector<Fault> structural_fault_list(const Netlist& net) {
  std::vector<Fault> out;
  for (NodeId n = 0; n < net.size(); ++n) {
    out.push_back({n, -1, StuckAt::Zero});
    out.push_back({n, -1, StuckAt::One});
  }
  for (NodeId n = 0; n < net.size(); ++n) {
    const Gate& g = net.gate(n);
    for (int k = 0; k < static_cast<int>(g.fanin.size()); ++k) {
      const NodeId driver = g.fanin[k];
      const std::size_t branches =
          net.fanout(driver).size() + (net.is_output(driver) ? 1 : 0);
      if (branches >= 2) {
        out.push_back({n, k, StuckAt::Zero});
        out.push_back({n, k, StuckAt::One});
      }
    }
  }
  return out;
}

std::vector<Fault> collapsed_fault_list(const Netlist& net) {
  const std::vector<Fault> all = full_fault_list(net);

  // Index layout of full_fault_list: stems first (2 per node), then branch
  // faults in (node, pin, sa) order.
  const std::size_t num_stem = 2 * net.size();
  auto stem_index = [](NodeId n, StuckAt sa) {
    return 2 * static_cast<std::size_t>(n) + static_cast<std::size_t>(sa);
  };
  std::vector<std::size_t> branch_base(net.size(), 0);
  {
    std::size_t next = num_stem;
    for (NodeId n = 0; n < net.size(); ++n) {
      branch_base[n] = next;
      next += 2 * net.gate(n).fanin.size();
    }
  }
  auto branch_index = [&](NodeId g, int pin, StuckAt sa) {
    return branch_base[g] + 2 * static_cast<std::size_t>(pin) +
           static_cast<std::size_t>(sa);
  };

  DisjointSets sets(all.size());
  for (NodeId n = 0; n < net.size(); ++n) {
    const Gate& g = net.gate(n);
    switch (g.type) {
      case GateType::Buf:
        sets.unite(branch_index(n, 0, StuckAt::Zero), stem_index(n, StuckAt::Zero));
        sets.unite(branch_index(n, 0, StuckAt::One), stem_index(n, StuckAt::One));
        break;
      case GateType::Not:
        sets.unite(branch_index(n, 0, StuckAt::Zero), stem_index(n, StuckAt::One));
        sets.unite(branch_index(n, 0, StuckAt::One), stem_index(n, StuckAt::Zero));
        break;
      case GateType::And:
        for (int k = 0; k < static_cast<int>(g.fanin.size()); ++k)
          sets.unite(branch_index(n, k, StuckAt::Zero), stem_index(n, StuckAt::Zero));
        break;
      case GateType::Nand:
        for (int k = 0; k < static_cast<int>(g.fanin.size()); ++k)
          sets.unite(branch_index(n, k, StuckAt::Zero), stem_index(n, StuckAt::One));
        break;
      case GateType::Or:
        for (int k = 0; k < static_cast<int>(g.fanin.size()); ++k)
          sets.unite(branch_index(n, k, StuckAt::One), stem_index(n, StuckAt::One));
        break;
      case GateType::Nor:
        for (int k = 0; k < static_cast<int>(g.fanin.size()); ++k)
          sets.unite(branch_index(n, k, StuckAt::One), stem_index(n, StuckAt::Zero));
        break;
      default:
        break;
    }
    // A pin on a single-branch net is the same electrical node as its stem
    // (unless the stem is additionally observed as a primary output).
    for (int k = 0; k < static_cast<int>(g.fanin.size()); ++k) {
      const NodeId d = g.fanin[k];
      if (net.fanout(d).size() == 1 && !net.is_output(d)) {
        sets.unite(branch_index(n, k, StuckAt::Zero), stem_index(d, StuckAt::Zero));
        sets.unite(branch_index(n, k, StuckAt::One), stem_index(d, StuckAt::One));
      }
    }
  }

  // Emit the class representative: union by min index and stems come first,
  // so find() already yields the stem-most, topologically earliest fault.
  std::vector<Fault> out;
  for (std::size_t i = 0; i < all.size(); ++i)
    if (sets.find(i) == i) out.push_back(all[i]);
  return out;
}

std::string to_string(const Netlist& net, const Fault& f) {
  std::string s = net.name_of(f.node);
  if (!f.is_stem()) s += "/" + std::to_string(f.pin);
  s += f.sa == StuckAt::Zero ? " s-a-0" : " s-a-1";
  return s;
}

}  // namespace protest
