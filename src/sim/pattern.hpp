// Pattern storage for 64-way parallel simulation: bit i of a word is
// pattern (block*64 + i).  Generators cover the paper's pattern sources —
// uniform random (p = 0.5), weighted random (per-input probabilities, the
// output of PROTEST's optimizer), and exhaustive (for oracle tests).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace protest {

class PatternSet {
 public:
  PatternSet(std::size_t num_inputs, std::size_t num_patterns);

  std::size_t num_inputs() const { return num_inputs_; }
  std::size_t num_patterns() const { return num_patterns_; }
  std::size_t num_blocks() const { return num_blocks_; }

  /// Word of 64 pattern bits for one input in one block.
  std::uint64_t word(std::size_t input, std::size_t block) const {
    return words_[input * num_blocks_ + block];
  }
  void set_word(std::size_t input, std::size_t block, std::uint64_t w) {
    words_[input * num_blocks_ + block] = w;
  }

  /// `count` consecutive block words of one input (the row-major layout
  /// makes a block range contiguous) — the multi-word simulator's bulk
  /// load path.
  std::span<const std::uint64_t> words(std::size_t input, std::size_t block,
                                       std::size_t count) const {
    return {words_.data() + input * num_blocks_ + block, count};
  }

  bool get(std::size_t pattern, std::size_t input) const;
  void set(std::size_t pattern, std::size_t input, bool v);

  /// Mask of valid bits in `block` (all-ones except possibly the last).
  std::uint64_t valid_mask(std::size_t block) const;

  /// Uniform random patterns, each input '1' with probability 0.5.
  static PatternSet random(std::size_t num_inputs, std::size_t num_patterns,
                           std::uint64_t seed);

  /// Weighted random patterns: input i is '1' with probability probs[i].
  static PatternSet weighted(std::span<const double> probs,
                             std::size_t num_patterns, std::uint64_t seed);

  /// All 2^num_inputs patterns in counting order (num_inputs <= 24).
  static PatternSet exhaustive(std::size_t num_inputs);

 private:
  std::size_t num_inputs_;
  std::size_t num_patterns_;
  std::size_t num_blocks_;
  std::vector<std::uint64_t> words_;  // [input][block], row-major by input
};

}  // namespace protest
