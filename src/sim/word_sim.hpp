// Multi-word bit-parallel logic simulation over the columnar netlist view:
// one run() evaluates W x 64 patterns for every node (W = words_per_block,
// default 8 — 512 patterns per pass).
//
// Layout: node-major value store, W consecutive words per node
// (values()[n * W + w]).  A gate evaluation reads W contiguous words per
// fanin and writes W contiguous words — with W = 4 that is exactly one
// AVX2 vector, with W = 8 one cache line — so the AND/OR/XOR reduction
// kernels auto-vectorize, and explicit SIMD paths are used where
// __AVX2__ / __ARM_NEON are available.  The per-gate type dispatch is
// hoisted out of the gate loop entirely: evaluation walks the compiled
// view's same-type runs (CompiledNetlist::runs()) with one tight kernel
// per run.
//
// BlockSimulator (sim/logic_sim.hpp) is the W = 1 adapter over this
// class; the Monte-Carlo shard loop, count_ones, and the throughput
// benches drive it at W >= 4.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/compiled.hpp"
#include "netlist/netlist.hpp"
#include "sim/pattern.hpp"

namespace protest {

class WordSimulator {
 public:
  /// 8 x 64 = 512 patterns per pass: one cache line of values per node,
  /// the empirical sweet spot on the throughput bench.
  static constexpr std::size_t kDefaultWordsPerBlock = 8;
  static constexpr std::size_t kMaxWordsPerBlock = 64;

  /// Throws std::invalid_argument unless 1 <= words_per_block <= 64.
  /// Widths {1, 2, 4, 8, 16} run fully specialized kernels; other widths
  /// fall back to a runtime-width loop.
  explicit WordSimulator(const Netlist& net,
                         std::size_t words_per_block = kDefaultWordsPerBlock);

  const Netlist& netlist() const { return net_; }
  std::size_t words_per_block() const { return words_; }
  std::size_t patterns_per_pass() const { return words_ * 64; }

  /// Writable W-word slice for one primary input (netlist input order);
  /// fill it, then call run().
  std::span<std::uint64_t> input_words(std::size_t input_index) {
    return {values_.data() + std::size_t{net_.inputs()[input_index]} * words_,
            words_};
  }

  /// Evaluates every gate from the current input words.
  void run();

  /// Loads blocks [first_block, first_block + count) of `ps` into the
  /// input words (count <= W; the remaining words are zero-filled) and
  /// runs.  Returns the value store.
  const std::vector<std::uint64_t>& run_blocks(const PatternSet& ps,
                                               std::size_t first_block,
                                               std::size_t count);

  /// Node-major value store: word w of node n is values()[n * W + w].
  const std::vector<std::uint64_t>& values() const { return values_; }
  std::span<const std::uint64_t> node_words(NodeId n) const {
    return {values_.data() + std::size_t{n} * words_, words_};
  }
  std::uint64_t word(NodeId n, std::size_t w) const {
    return values_[std::size_t{n} * words_ + w];
  }

 private:
  const Netlist& net_;
  const CompiledNetlist& cn_;
  std::size_t words_;
  std::vector<std::uint64_t> values_;
};

}  // namespace protest
