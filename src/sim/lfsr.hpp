// Linear feedback shift registers — the pseudo-random pattern source of
// self-test hardware (sect. 1: "all storing components ... configured as
// one or more feedback shift registers ... generate pseudo-random patterns"
// [Much81], and sect. 8's BILBO / NLFSR application).
#pragma once

#include <cstdint>
#include <vector>

namespace protest {

/// Fibonacci-style LFSR over a primitive polynomial (maximal period
/// 2^width - 1).  Widths 2..32 and 64 are supported.
class Lfsr {
 public:
  explicit Lfsr(unsigned width, std::uint64_t seed = 1);

  unsigned width() const { return width_; }
  std::uint64_t state() const { return state_; }

  /// Advances one step and returns the new state.
  std::uint64_t step();

  /// The low bit of the state after one step (a pseudo-random bit stream).
  bool next_bit() { return step() & 1u; }

  /// Primitive feedback tap mask for the width (bit i = tap on stage i).
  static std::uint64_t taps_for(unsigned width);

 private:
  unsigned width_;
  std::uint64_t mask_;
  std::uint64_t taps_;
  std::uint64_t state_;
};

}  // namespace protest
