#include "sim/word_sim.hpp"

#include <algorithm>
#include <stdexcept>

#if defined(__AVX2__)
#include <immintrin.h>
#elif defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace protest {
namespace {

// --- W-word bitwise kernels -------------------------------------------------
// Each helper processes `w` consecutive 64-bit words.  In the hot
// instantiations `w` is a compile-time constant (the eval loop is templated
// on the width), so these fully unroll; the explicit SIMD bodies kick in
// when the build enables AVX2/NEON, the scalar tail covers the rest.

inline void w_and(std::uint64_t* dst, const std::uint64_t* a,
                  const std::uint64_t* b, std::size_t w) {
  std::size_t i = 0;
#if defined(__AVX2__)
  for (; i + 4 <= w; i += 4)
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_and_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i))));
#elif defined(__ARM_NEON)
  for (; i + 2 <= w; i += 2)
    vst1q_u64(dst + i, vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
#endif
  for (; i < w; ++i) dst[i] = a[i] & b[i];
}

inline void w_or(std::uint64_t* dst, const std::uint64_t* a,
                 const std::uint64_t* b, std::size_t w) {
  std::size_t i = 0;
#if defined(__AVX2__)
  for (; i + 4 <= w; i += 4)
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_or_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i))));
#elif defined(__ARM_NEON)
  for (; i + 2 <= w; i += 2)
    vst1q_u64(dst + i, vorrq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
#endif
  for (; i < w; ++i) dst[i] = a[i] | b[i];
}

inline void w_xor(std::uint64_t* dst, const std::uint64_t* a,
                  const std::uint64_t* b, std::size_t w) {
  std::size_t i = 0;
#if defined(__AVX2__)
  for (; i + 4 <= w; i += 4)
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_xor_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i))));
#elif defined(__ARM_NEON)
  for (; i + 2 <= w; i += 2)
    vst1q_u64(dst + i, veorq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
#endif
  for (; i < w; ++i) dst[i] = a[i] ^ b[i];
}

inline void w_copy(std::uint64_t* dst, const std::uint64_t* a, std::size_t w) {
  for (std::size_t i = 0; i < w; ++i) dst[i] = a[i];
}

inline void w_not(std::uint64_t* dst, const std::uint64_t* a, std::size_t w) {
  for (std::size_t i = 0; i < w; ++i) dst[i] = ~a[i];
}

// --- per-run evaluation -----------------------------------------------------
// SW is the compile-time width (0 = runtime width `rw`): the five
// supported power-of-two widths get fully specialized, constant-folded
// kernels; anything else shares the SW = 0 instantiation.

template <std::size_t SW>
void eval_gates_impl(const CompiledNetlist& cn, std::uint64_t* vals,
                     std::size_t rw) {
  const std::size_t W = SW ? SW : rw;
  // Distinct lambda types per op keep reduce() a separate, fully inlined
  // instantiation per gate class (a raw function pointer would not).
  constexpr auto kAnd = [](std::uint64_t* d, const std::uint64_t* a,
                           const std::uint64_t* b, std::size_t w) {
    w_and(d, a, b, w);
  };
  constexpr auto kOr = [](std::uint64_t* d, const std::uint64_t* a,
                          const std::uint64_t* b, std::size_t w) {
    w_or(d, a, b, w);
  };
  constexpr auto kXor = [](std::uint64_t* d, const std::uint64_t* a,
                           const std::uint64_t* b, std::size_t w) {
    w_xor(d, a, b, w);
  };
  const NodeId* order = cn.order().data();
  const NodeId* edges = cn.fanin_edges().data();
  const std::uint32_t* off = cn.fanin_offsets().data();

  // n-ary reduction: dst = reduce(op, fanins), two-input fast path first
  // (the dominant arity in every workload this repo carries).
  const auto reduce = [&](NodeId n, auto&& op) {
    const NodeId* e = edges + off[n];
    const std::size_t k = off[n + 1] - off[n];
    std::uint64_t* dst = vals + std::size_t{n} * W;
    if (k == 2) {
      op(dst, vals + std::size_t{e[0]} * W, vals + std::size_t{e[1]} * W, W);
      return dst;
    }
    w_copy(dst, vals + std::size_t{e[0]} * W, W);
    for (std::size_t j = 1; j < k; ++j)
      op(dst, dst, vals + std::size_t{e[j]} * W, W);
    return dst;
  };

  for (const CompiledNetlist::Run& r : cn.runs()) {
    switch (r.type) {
      case GateType::Buf:
        for (std::uint32_t p = r.begin; p < r.end; ++p) {
          const NodeId n = order[p];
          w_copy(vals + std::size_t{n} * W,
                 vals + std::size_t{edges[off[n]]} * W, W);
        }
        break;
      case GateType::Not:
        for (std::uint32_t p = r.begin; p < r.end; ++p) {
          const NodeId n = order[p];
          w_not(vals + std::size_t{n} * W,
                vals + std::size_t{edges[off[n]]} * W, W);
        }
        break;
      case GateType::And:
        for (std::uint32_t p = r.begin; p < r.end; ++p) reduce(order[p], kAnd);
        break;
      case GateType::Nand:
        for (std::uint32_t p = r.begin; p < r.end; ++p) {
          std::uint64_t* dst = reduce(order[p], kAnd);
          w_not(dst, dst, W);
        }
        break;
      case GateType::Or:
        for (std::uint32_t p = r.begin; p < r.end; ++p) reduce(order[p], kOr);
        break;
      case GateType::Nor:
        for (std::uint32_t p = r.begin; p < r.end; ++p) {
          std::uint64_t* dst = reduce(order[p], kOr);
          w_not(dst, dst, W);
        }
        break;
      case GateType::Xor:
        for (std::uint32_t p = r.begin; p < r.end; ++p) reduce(order[p], kXor);
        break;
      case GateType::Xnor:
        for (std::uint32_t p = r.begin; p < r.end; ++p) {
          std::uint64_t* dst = reduce(order[p], kXor);
          w_not(dst, dst, W);
        }
        break;
      case GateType::Input:
      case GateType::Const0:
      case GateType::Const1:
        break;  // never in runs(): inputs are loaded, constants pre-filled
    }
  }
}

}  // namespace

WordSimulator::WordSimulator(const Netlist& net, std::size_t words_per_block)
    : net_(net), cn_(net.compiled()), words_(words_per_block) {
  if (words_ < 1 || words_ > kMaxWordsPerBlock)
    throw std::invalid_argument(
        "WordSimulator: words_per_block must be in [1, 64]");
  values_.assign(net.size() * words_, 0);
  // Constants never change: evaluate them once here, not per pass.
  for (NodeId c : cn_.constants()) {
    const std::uint64_t v =
        cn_.type(c) == GateType::Const1 ? ~std::uint64_t{0} : 0;
    std::fill_n(values_.data() + std::size_t{c} * words_, words_, v);
  }
}

void WordSimulator::run() {
  switch (words_) {
    case 1: eval_gates_impl<1>(cn_, values_.data(), 1); break;
    case 2: eval_gates_impl<2>(cn_, values_.data(), 2); break;
    case 4: eval_gates_impl<4>(cn_, values_.data(), 4); break;
    case 8: eval_gates_impl<8>(cn_, values_.data(), 8); break;
    case 16: eval_gates_impl<16>(cn_, values_.data(), 16); break;
    default: eval_gates_impl<0>(cn_, values_.data(), words_); break;
  }
}

const std::vector<std::uint64_t>& WordSimulator::run_blocks(
    const PatternSet& ps, std::size_t first_block, std::size_t count) {
  const auto inputs = net_.inputs();
  if (ps.num_inputs() != inputs.size())
    throw std::invalid_argument("WordSimulator: pattern/input arity mismatch");
  if (count > words_ || first_block + count > ps.num_blocks())
    throw std::invalid_argument("WordSimulator: block range out of bounds");
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const std::span<std::uint64_t> dst = input_words(i);
    const std::span<const std::uint64_t> src = ps.words(i, first_block, count);
    std::copy(src.begin(), src.end(), dst.begin());
    std::fill(dst.begin() + count, dst.end(), 0);
  }
  run();
  return values_;
}

}  // namespace protest
