#include "sim/signature.hpp"

#include <bit>
#include <stdexcept>

#include "sim/lfsr.hpp"
#include "sim/logic_sim.hpp"

namespace protest {

Misr::Misr(unsigned width, std::uint64_t init)
    : width_(width),
      mask_(width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1),
      taps_(Lfsr::taps_for(width)),
      state_(init & mask_) {}

void Misr::clock(std::uint64_t inputs) {
  const auto feedback =
      static_cast<std::uint64_t>(std::popcount(state_ & taps_) & 1);
  state_ = (((state_ << 1) | feedback) ^ inputs) & mask_;
}

namespace {

/// Packs the primary-output values of pattern `bit` of a block into a MISR
/// input word (output i drives stage i mod width).
std::uint64_t pack_outputs(const Netlist& net,
                           const std::vector<std::uint64_t>& vals,
                           std::size_t bit, unsigned width) {
  std::uint64_t w = 0;
  unsigned stage = 0;
  for (NodeId o : net.outputs()) {
    w ^= ((vals[o] >> bit) & 1u) << stage;
    stage = (stage + 1) % width;
  }
  return w;
}

/// Full-array faulty evaluation of one block (validation-grade: O(circuit)).
void faulty_block(const Netlist& net, const Fault& f,
                  const std::vector<std::uint64_t>& good,
                  std::vector<std::uint64_t>& out) {
  out = good;
  std::vector<std::uint64_t> ins;
  const std::uint64_t forced = f.sa == StuckAt::One ? ~std::uint64_t{0} : 0;
  for (NodeId n = f.node; n < net.size(); ++n) {
    const Gate& g = net.gate(n);
    if (n == f.node) {
      if (f.is_stem()) {
        out[n] = forced;
      } else {
        ins.clear();
        for (std::size_t k = 0; k < g.fanin.size(); ++k)
          ins.push_back(static_cast<int>(k) == f.pin ? forced
                                                     : out[g.fanin[k]]);
        out[n] = eval_gate_word(g.type, ins);
      }
      continue;
    }
    if (g.type == GateType::Input) continue;
    ins.clear();
    for (NodeId x : g.fanin) ins.push_back(out[x]);
    out[n] = eval_gate_word(g.type, ins);
  }
}

}  // namespace

std::uint64_t good_signature(const Netlist& net, const PatternSet& ps,
                             unsigned width, std::uint64_t init) {
  BlockSimulator sim(net);
  Misr misr(width, init);
  for (std::size_t b = 0; b < ps.num_blocks(); ++b) {
    const auto& vals = sim.run(ps, b);
    const std::uint64_t mask = ps.valid_mask(b);
    for (std::size_t bit = 0; bit < 64; ++bit) {
      if (!((mask >> bit) & 1u)) break;
      misr.clock(pack_outputs(net, vals, bit, width));
    }
  }
  return misr.state();
}

BistResult signature_bist(const Netlist& net, std::span<const Fault> faults,
                          const PatternSet& ps, unsigned width,
                          std::uint64_t init) {
  // Precompute the good values of every block once.
  BlockSimulator sim(net);
  std::vector<std::vector<std::uint64_t>> good_blocks;
  good_blocks.reserve(ps.num_blocks());
  for (std::size_t b = 0; b < ps.num_blocks(); ++b)
    good_blocks.push_back(sim.run(ps, b));

  Misr good_misr(width, init);
  for (std::size_t b = 0; b < ps.num_blocks(); ++b) {
    const std::uint64_t mask = ps.valid_mask(b);
    for (std::size_t bit = 0; bit < 64; ++bit) {
      if (!((mask >> bit) & 1u)) break;
      good_misr.clock(pack_outputs(net, good_blocks[b], bit, width));
    }
  }

  BistResult r;
  r.faults = faults.size();
  std::vector<std::uint64_t> fvals;
  for (const Fault& f : faults) {
    Misr misr(width, init);
    bool any_diff = false;
    for (std::size_t b = 0; b < ps.num_blocks(); ++b) {
      faulty_block(net, f, good_blocks[b], fvals);
      const std::uint64_t mask = ps.valid_mask(b);
      for (NodeId o : net.outputs())
        any_diff |= ((fvals[o] ^ good_blocks[b][o]) & mask) != 0;
      for (std::size_t bit = 0; bit < 64; ++bit) {
        if (!((mask >> bit) & 1u)) break;
        misr.clock(pack_outputs(net, fvals, bit, width));
      }
    }
    const bool sig_diff = misr.state() != good_misr.state();
    r.detected_by_outputs += any_diff;
    r.detected_by_signature += sig_diff;
    r.aliased += any_diff && !sig_diff;
  }
  return r;
}

}  // namespace protest
