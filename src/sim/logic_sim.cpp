#include "sim/logic_sim.hpp"

#include <bit>
#include <stdexcept>

namespace protest {

BlockSimulator::BlockSimulator(const Netlist& net)
    : net_(net), values_(net.size(), 0) {
  if (!net.finalized())
    throw std::logic_error("BlockSimulator: netlist must be finalized");
}

void BlockSimulator::eval_gates() {
  for (NodeId n = 0; n < net_.size(); ++n) {
    const Gate& g = net_.gate(n);
    if (g.type == GateType::Input) continue;
    scratch_.clear();
    for (NodeId f : g.fanin) scratch_.push_back(values_[f]);
    values_[n] = eval_gate_word(g.type, scratch_);
  }
}

const std::vector<std::uint64_t>& BlockSimulator::run(const PatternSet& ps,
                                                      std::size_t block) {
  const auto inputs = net_.inputs();
  if (ps.num_inputs() != inputs.size())
    throw std::invalid_argument("BlockSimulator: pattern/input arity mismatch");
  for (std::size_t i = 0; i < inputs.size(); ++i)
    values_[inputs[i]] = ps.word(i, block);
  eval_gates();
  return values_;
}

const std::vector<std::uint64_t>& BlockSimulator::run_words(
    const std::vector<std::uint64_t>& input_words) {
  const auto inputs = net_.inputs();
  if (input_words.size() != inputs.size())
    throw std::invalid_argument("BlockSimulator: word/input arity mismatch");
  for (std::size_t i = 0; i < inputs.size(); ++i)
    values_[inputs[i]] = input_words[i];
  eval_gates();
  return values_;
}

std::vector<bool> simulate_single(const Netlist& net,
                                  const std::vector<bool>& input_values) {
  BlockSimulator sim(net);
  std::vector<std::uint64_t> words(input_values.size());
  for (std::size_t i = 0; i < input_values.size(); ++i)
    words[i] = input_values[i] ? ~std::uint64_t{0} : 0;
  const auto& vals = sim.run_words(words);
  std::vector<bool> out(net.size());
  for (NodeId n = 0; n < net.size(); ++n) out[n] = vals[n] & 1u;
  return out;
}

std::vector<std::size_t> count_ones(const Netlist& net, const PatternSet& ps) {
  BlockSimulator sim(net);
  return count_ones(sim, ps);
}

std::vector<std::size_t> count_ones(BlockSimulator& sim, const PatternSet& ps) {
  std::vector<std::size_t> ones(sim.netlist().size(), 0);
  count_ones(sim, ps, ones);
  return ones;
}

void count_ones(BlockSimulator& sim, const PatternSet& ps,
                std::vector<std::size_t>& ones) {
  const Netlist& net = sim.netlist();
  if (ones.size() != net.size())
    throw std::invalid_argument("count_ones: accumulator/netlist size mismatch");
  for (std::size_t b = 0; b < ps.num_blocks(); ++b) {
    const auto& vals = sim.run(ps, b);
    const std::uint64_t mask = ps.valid_mask(b);
    for (NodeId n = 0; n < net.size(); ++n)
      ones[n] += static_cast<std::size_t>(std::popcount(vals[n] & mask));
  }
}

}  // namespace protest
