#include "sim/logic_sim.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace protest {

// --- BlockSimulator (W = 1 adapter) -----------------------------------------

const std::vector<std::uint64_t>& BlockSimulator::run(const PatternSet& ps,
                                                      std::size_t block) {
  return sim_.run_blocks(ps, block, 1);
}

const std::vector<std::uint64_t>& BlockSimulator::run_words(
    const std::vector<std::uint64_t>& input_words) {
  const auto inputs = sim_.netlist().inputs();
  if (input_words.size() != inputs.size())
    throw std::invalid_argument("BlockSimulator: word/input arity mismatch");
  for (std::size_t i = 0; i < inputs.size(); ++i)
    sim_.input_words(i)[0] = input_words[i];
  sim_.run();
  return sim_.values();
}

// --- LegacyBlockSimulator ---------------------------------------------------

LegacyBlockSimulator::LegacyBlockSimulator(const Netlist& net)
    : net_(net), values_(net.size(), 0) {
  if (!net.finalized())
    throw std::logic_error("LegacyBlockSimulator: netlist must be finalized");
}

void LegacyBlockSimulator::eval_gates() {
  // Indexes straight into values_ per fanin — no per-gate scratch copy
  // (the original copied every fanin word into a scratch vector per gate
  // per block, which dominated the profile).
  for (NodeId n = 0; n < net_.size(); ++n) {
    const Gate& g = net_.gate(n);
    switch (g.type) {
      case GateType::Input:
        break;
      case GateType::Const0:
        values_[n] = 0;
        break;
      case GateType::Const1:
        values_[n] = ~std::uint64_t{0};
        break;
      case GateType::Buf:
        values_[n] = values_[g.fanin[0]];
        break;
      case GateType::Not:
        values_[n] = ~values_[g.fanin[0]];
        break;
      case GateType::And:
      case GateType::Nand: {
        std::uint64_t acc = ~std::uint64_t{0};
        for (NodeId f : g.fanin) acc &= values_[f];
        values_[n] = g.type == GateType::Nand ? ~acc : acc;
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        std::uint64_t acc = 0;
        for (NodeId f : g.fanin) acc |= values_[f];
        values_[n] = g.type == GateType::Nor ? ~acc : acc;
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        std::uint64_t acc = 0;
        for (NodeId f : g.fanin) acc ^= values_[f];
        values_[n] = g.type == GateType::Xnor ? ~acc : acc;
        break;
      }
    }
  }
}

const std::vector<std::uint64_t>& LegacyBlockSimulator::run(
    const PatternSet& ps, std::size_t block) {
  const auto inputs = net_.inputs();
  if (ps.num_inputs() != inputs.size())
    throw std::invalid_argument(
        "LegacyBlockSimulator: pattern/input arity mismatch");
  for (std::size_t i = 0; i < inputs.size(); ++i)
    values_[inputs[i]] = ps.word(i, block);
  eval_gates();
  return values_;
}

const std::vector<std::uint64_t>& LegacyBlockSimulator::run_words(
    const std::vector<std::uint64_t>& input_words) {
  const auto inputs = net_.inputs();
  if (input_words.size() != inputs.size())
    throw std::invalid_argument(
        "LegacyBlockSimulator: word/input arity mismatch");
  for (std::size_t i = 0; i < inputs.size(); ++i)
    values_[inputs[i]] = input_words[i];
  eval_gates();
  return values_;
}

// --- free functions ---------------------------------------------------------

std::vector<bool> simulate_single(const Netlist& net,
                                  const std::vector<bool>& input_values) {
  BlockSimulator sim(net);
  std::vector<std::uint64_t> words(input_values.size());
  for (std::size_t i = 0; i < input_values.size(); ++i)
    words[i] = input_values[i] ? ~std::uint64_t{0} : 0;
  const auto& vals = sim.run_words(words);
  std::vector<bool> out(net.size());
  for (NodeId n = 0; n < net.size(); ++n) out[n] = vals[n] & 1u;
  return out;
}

std::vector<std::size_t> count_ones(const Netlist& net, const PatternSet& ps) {
  WordSimulator sim(net);
  return count_ones(sim, ps);
}

std::vector<std::size_t> count_ones(BlockSimulator& sim, const PatternSet& ps) {
  std::vector<std::size_t> ones(sim.netlist().size(), 0);
  count_ones(sim, ps, ones);
  return ones;
}

void count_ones(BlockSimulator& sim, const PatternSet& ps,
                std::vector<std::size_t>& ones) {
  const Netlist& net = sim.netlist();
  if (ones.size() != net.size())
    throw std::invalid_argument("count_ones: accumulator/netlist size mismatch");
  for (std::size_t b = 0; b < ps.num_blocks(); ++b) {
    const auto& vals = sim.run(ps, b);
    const std::uint64_t mask = ps.valid_mask(b);
    for (NodeId n = 0; n < net.size(); ++n)
      ones[n] += static_cast<std::size_t>(std::popcount(vals[n] & mask));
  }
}

std::vector<std::size_t> count_ones(WordSimulator& sim, const PatternSet& ps) {
  std::vector<std::size_t> ones(sim.netlist().size(), 0);
  count_ones(sim, ps, ones);
  return ones;
}

void count_ones(WordSimulator& sim, const PatternSet& ps,
                std::vector<std::size_t>& ones) {
  const Netlist& net = sim.netlist();
  if (ones.size() != net.size())
    throw std::invalid_argument("count_ones: accumulator/netlist size mismatch");
  const std::size_t W = sim.words_per_block();
  for (std::size_t b = 0; b < ps.num_blocks(); b += W) {
    const std::size_t wb = std::min(W, ps.num_blocks() - b);
    const auto& vals = sim.run_blocks(ps, b, wb);
    // All blocks but possibly the last are full; only the final word of
    // the final group needs masking.
    const bool partial =
        b + wb == ps.num_blocks() && ps.valid_mask(b + wb - 1) != ~std::uint64_t{0};
    for (NodeId n = 0; n < net.size(); ++n) {
      const std::uint64_t* v = vals.data() + std::size_t{n} * W;
      std::size_t acc = 0;
      for (std::size_t w = 0; w < wb; ++w)
        acc += static_cast<std::size_t>(std::popcount(v[w]));
      if (partial)
        acc -= static_cast<std::size_t>(std::popcount(
            v[wb - 1] & ~ps.valid_mask(b + wb - 1)));
      ones[n] += acc;
    }
  }
}

}  // namespace protest
