// Static fault simulation: parallel-pattern good simulation plus per-fault
// event-driven cone resimulation.  Two modes:
//
//   CountDetections  — counts, for every fault, how many patterns detect it.
//                      P_SIM(f) = count / N is the empirical detection
//                      probability the paper correlates PROTEST against
//                      (sect. 4, figs. 5/6).
//   FirstDetection   — records the first detecting pattern index and drops
//                      the fault (fault dropping), for coverage-vs-length
//                      curves (Table 6) and test-set validation (Table 2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/fault.hpp"
#include "sim/pattern.hpp"

namespace protest {

enum class FaultSimMode { CountDetections, FirstDetection };

struct FaultSimResult {
  std::size_t num_patterns = 0;
  /// Per fault: number of detecting patterns (CountDetections mode only).
  std::vector<std::uint64_t> detect_count;
  /// Per fault: index of the first detecting pattern, or -1 (both modes).
  std::vector<std::int64_t> first_detect;

  /// Fraction of faults detected by the whole set.
  double coverage() const;
  /// Fraction of faults whose first detection is < n patterns.
  double coverage_at(std::size_t n) const;
  /// Empirical per-fault detection probabilities (CountDetections mode).
  std::vector<double> detection_probs() const;
};

FaultSimResult simulate_faults(const Netlist& net, std::span<const Fault> faults,
                               const PatternSet& ps, FaultSimMode mode);

}  // namespace protest
