// Static fault simulation: parallel-pattern good simulation plus per-fault
// event-driven cone resimulation.  Two modes:
//
//   CountDetections  — counts, for every fault, how many patterns detect it.
//                      P_SIM(f) = count / N is the empirical detection
//                      probability the paper correlates PROTEST against
//                      (sect. 4, figs. 5/6).
//   FirstDetection   — records the first detecting pattern index and drops
//                      the fault (fault dropping), for coverage-vs-length
//                      curves (Table 6) and test-set validation (Table 2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lint/fault_analyze.hpp"
#include "netlist/netlist.hpp"
#include "sim/fault.hpp"
#include "sim/pattern.hpp"

namespace protest {

enum class FaultSimMode { CountDetections, FirstDetection };

struct FaultSimResult {
  std::size_t num_patterns = 0;
  /// Per fault: number of detecting patterns (CountDetections mode only).
  std::vector<std::uint64_t> detect_count;
  /// Per fault: index of the first detecting pattern, or -1 (both modes).
  std::vector<std::int64_t> first_detect;

  /// Fraction of faults detected by the whole set.
  double coverage() const;
  /// Fraction of faults whose first detection is < n patterns.
  double coverage_at(std::size_t n) const;
  /// Empirical per-fault detection probabilities (CountDetections mode).
  std::vector<double> detection_probs() const;
};

FaultSimResult simulate_faults(const Netlist& net, std::span<const Fault> faults,
                               const PatternSet& ps, FaultSimMode mode);

/// Fault simulation pruned and checked by the static fault analysis
/// (bounds parallel to the fault list, from analyze_faults on the same
/// list).  Proven-undetectable faults are never simulated — they keep
/// detect_count 0 / first_detect -1, which is exact, not an estimate.  In
/// CountDetections mode the static intervals act as a correctness oracle:
/// an empirical detection probability outside [lo - 6*sigma, hi + 6*sigma]
/// (sigma = 1 / (2*sqrt(N)), the worst-case binomial deviation) means
/// either the simulator or the static analysis is broken, and throws
/// std::logic_error.  Throws std::invalid_argument on a size mismatch.
FaultSimResult simulate_faults_pruned(const Netlist& net,
                                      std::span<const Fault> faults,
                                      const PatternSet& ps, FaultSimMode mode,
                                      const FaultAnalysis& fa);

}  // namespace protest
