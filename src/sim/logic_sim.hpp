// 64-way parallel-pattern logic simulation over a finalized netlist.  This
// is the substrate for the "static fault simulation" PROTEST validates
// against (sect. 4/5/6) and for the Monte-Carlo / STAFAN estimators.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/pattern.hpp"

namespace protest {

/// Reusable block simulator: one run() evaluates 64 patterns for every node.
class BlockSimulator {
 public:
  explicit BlockSimulator(const Netlist& net);

  /// Simulates pattern block `block` of `ps`; returns per-node value words.
  const std::vector<std::uint64_t>& run(const PatternSet& ps,
                                        std::size_t block);

  /// Simulates one block given explicit per-input words (inputs in
  /// netlist input order).
  const std::vector<std::uint64_t>& run_words(
      const std::vector<std::uint64_t>& input_words);

  const std::vector<std::uint64_t>& values() const { return values_; }
  const Netlist& netlist() const { return net_; }

 private:
  void eval_gates();

  const Netlist& net_;
  std::vector<std::uint64_t> values_;
  std::vector<std::uint64_t> scratch_;
};

/// Single-pattern convenience wrapper; returns per-node Boolean values.
std::vector<bool> simulate_single(const Netlist& net,
                                  const std::vector<bool>& input_values);

/// Number of '1' evaluations per node over the whole pattern set.
std::vector<std::size_t> count_ones(const Netlist& net, const PatternSet& ps);

/// Same, reusing the caller's simulator — batch evaluation hoists one
/// BlockSimulator across many pattern sets.
std::vector<std::size_t> count_ones(BlockSimulator& sim, const PatternSet& ps);

/// Same, ACCUMULATING into a caller-provided netlist-sized vector (not
/// cleared) — per-shard workers merge partial counts without per-call
/// allocation.  Throws std::invalid_argument on a size mismatch.
void count_ones(BlockSimulator& sim, const PatternSet& ps,
                std::vector<std::size_t>& ones);

}  // namespace protest
