// 64-way parallel-pattern logic simulation over a finalized netlist.  This
// is the substrate for the "static fault simulation" PROTEST validates
// against (sect. 4/5/6) and for the Monte-Carlo / STAFAN estimators.
//
// BlockSimulator is the width-1 adapter over the compiled simulation core
// (sim/word_sim.hpp): it keeps the historical one-word-per-node API while
// evaluation rides the columnar CompiledNetlist layout.  The pre-compiled
// Gate-struct walker survives as LegacyBlockSimulator — the reference
// implementation the parity tests and the throughput bench compare
// against.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/pattern.hpp"
#include "sim/word_sim.hpp"

namespace protest {

/// Reusable block simulator: one run() evaluates 64 patterns for every node.
/// Thin W = 1 adapter over WordSimulator (same compiled evaluation path).
class BlockSimulator {
 public:
  explicit BlockSimulator(const Netlist& net) : sim_(net, 1) {}

  /// Simulates pattern block `block` of `ps`; returns per-node value words.
  const std::vector<std::uint64_t>& run(const PatternSet& ps,
                                        std::size_t block);

  /// Simulates one block given explicit per-input words (inputs in
  /// netlist input order).
  const std::vector<std::uint64_t>& run_words(
      const std::vector<std::uint64_t>& input_words);

  /// Per-node value words of the last run (W = 1: index == NodeId).
  const std::vector<std::uint64_t>& values() const { return sim_.values(); }
  const Netlist& netlist() const { return sim_.netlist(); }

 private:
  WordSimulator sim_;
};

/// The pre-compiled-core simulator: walks the Gate structs directly.  Kept
/// as the independent reference for compiled-vs-legacy parity assertions
/// and as the bench baseline; new code should use BlockSimulator or
/// WordSimulator.
class LegacyBlockSimulator {
 public:
  explicit LegacyBlockSimulator(const Netlist& net);

  const std::vector<std::uint64_t>& run(const PatternSet& ps,
                                        std::size_t block);
  const std::vector<std::uint64_t>& run_words(
      const std::vector<std::uint64_t>& input_words);

  const std::vector<std::uint64_t>& values() const { return values_; }
  const Netlist& netlist() const { return net_; }

 private:
  void eval_gates();

  const Netlist& net_;
  std::vector<std::uint64_t> values_;
};

/// Single-pattern convenience wrapper; returns per-node Boolean values.
std::vector<bool> simulate_single(const Netlist& net,
                                  const std::vector<bool>& input_values);

/// Number of '1' evaluations per node over the whole pattern set.
/// Evaluates word-blocked (WordSimulator default width) on the compiled
/// core.
std::vector<std::size_t> count_ones(const Netlist& net, const PatternSet& ps);

/// Same, reusing the caller's simulator — batch evaluation hoists one
/// BlockSimulator across many pattern sets.
std::vector<std::size_t> count_ones(BlockSimulator& sim, const PatternSet& ps);

/// Same, ACCUMULATING into a caller-provided netlist-sized vector (not
/// cleared) — per-shard workers merge partial counts without per-call
/// allocation.  Throws std::invalid_argument on a size mismatch.
void count_ones(BlockSimulator& sim, const PatternSet& ps,
                std::vector<std::size_t>& ones);

/// Multi-word variants: W x 64 patterns per pass on the caller's
/// WordSimulator.  Bit-identical to the BlockSimulator overloads.
std::vector<std::size_t> count_ones(WordSimulator& sim, const PatternSet& ps);
void count_ones(WordSimulator& sim, const PatternSet& ps,
                std::vector<std::size_t>& ones);

}  // namespace protest
