#include "sim/scan.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "netlist/bench_io.hpp"
#include "sim/logic_sim.hpp"

namespace protest {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool is_dff_line(const std::string& line, std::string* q, std::string* d) {
  const auto eq = line.find('=');
  if (eq == std::string::npos) return false;
  std::string rhs = trim(line.substr(eq + 1));
  std::string op;
  for (char c : rhs) {
    if (c == '(') break;
    op.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  op = trim(op);
  if (op != "DFF") return false;
  const auto lp = rhs.find('(');
  const auto rp = rhs.rfind(')');
  if (lp == std::string::npos || rp == std::string::npos || rp < lp)
    throw BenchParseError("scan: malformed DFF line: " + line);
  *q = trim(line.substr(0, eq));
  *d = trim(rhs.substr(lp + 1, rp - lp - 1));
  if (q->empty() || d->empty() || d->find(',') != std::string::npos)
    throw BenchParseError("scan: DFF takes exactly one data input: " + line);
  return true;
}

}  // namespace

ScanDesign extract_scan_design(const std::string& bench_text) {
  // Rewrite the sequential description into a combinational one:
  //   q = DFF(d)   ->   INPUT(q)  +  q.next = BUFF(d)  +  OUTPUT(q.next)
  // Pseudo-inputs/outputs are appended after the original declarations so
  // that the documented ordering holds.
  std::istringstream in(bench_text);
  std::ostringstream main_part, pseudo_in, pseudo_out;
  ScanDesign design;
  std::string raw;
  while (std::getline(in, raw)) {
    std::string line = raw;
    if (auto pos = line.find('#'); pos != std::string::npos) line.resize(pos);
    line = trim(line);
    if (line.empty()) {
      continue;
    }
    std::string q, d;
    if (is_dff_line(line, &q, &d)) {
      design.flop_names.push_back(q);
      pseudo_in << "INPUT(" << q << ")\n";
      pseudo_out << q << ".next = BUFF(" << d << ")\n"
                 << "OUTPUT(" << q << ".next)\n";
      continue;
    }
    const std::string upper_prefix = [&] {
      std::string u;
      for (char c : line) {
        if (c == '(') break;
        u.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
      }
      return trim(u);
    }();
    if (upper_prefix == "INPUT") ++design.num_primary_inputs;
    if (upper_prefix == "OUTPUT") ++design.num_primary_outputs;
    main_part << line << '\n';
  }

  const std::string combined =
      main_part.str() + pseudo_in.str() + pseudo_out.str();
  design.comb = read_bench_string(combined);
  return design;
}

ScanDesign extract_scan_design_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw BenchParseError("scan: cannot open file '" + path + "'");
  std::ostringstream ss;
  ss << f.rdbuf();
  return extract_scan_design(ss.str());
}

CycleResult clock_cycle(const ScanDesign& design,
                        const std::vector<bool>& primary_inputs,
                        const std::vector<bool>& state) {
  if (primary_inputs.size() != design.num_primary_inputs)
    throw std::invalid_argument("clock_cycle: wrong primary input count");
  if (state.size() != design.num_flops())
    throw std::invalid_argument("clock_cycle: wrong state width");
  std::vector<bool> in = primary_inputs;
  in.insert(in.end(), state.begin(), state.end());
  const auto vals = simulate_single(design.comb, in);

  CycleResult r;
  const auto outs = design.comb.outputs();
  for (std::size_t i = 0; i < design.num_primary_outputs; ++i)
    r.outputs.push_back(vals[outs[i]]);
  for (std::size_t i = 0; i < design.num_flops(); ++i)
    r.next_state.push_back(vals[outs[design.num_primary_outputs + i]]);
  return r;
}

}  // namespace protest
