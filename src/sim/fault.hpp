// Single stuck-at fault model on the gate level (the fault model of the
// paper).  Faults sit either on a node's output stem or on one input pin of
// a gate (a fanout branch).
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace protest {

enum class StuckAt : std::uint8_t { Zero = 0, One = 1 };

struct Fault {
  NodeId node = kNoNode;  ///< gate whose pin is faulty (or the stem node)
  int pin = -1;           ///< -1: output stem of `node`; >=0: that input pin
  StuckAt sa = StuckAt::Zero;

  bool is_stem() const { return pin < 0; }
  friend bool operator==(const Fault&, const Fault&) = default;
};

/// Stem faults on every node plus branch faults on every gate input pin
/// whose driving net has >= 2 fanout branches.  This is the standard
/// structural fault universe (pins on single-fanout nets are electrically
/// the same node as the stem).
std::vector<Fault> structural_fault_list(const Netlist& net);

/// Stem faults on every node plus branch faults on *every* gate input pin.
std::vector<Fault> full_fault_list(const Netlist& net);

/// Equivalence-collapsed list (classic rules: AND in-sa0 == out-sa0,
/// NAND in-sa0 == out-sa1, OR in-sa1 == out-sa1, NOR in-sa1 == out-sa0,
/// NOT/BUF pin faults == stem faults; single-branch pins fold into their
/// stem unless the stem is also a primary output).  One representative per
/// class, stem-most and earliest in topological order.
std::vector<Fault> collapsed_fault_list(const Netlist& net);

/// "g7/2 s-a-1" style display name.
std::string to_string(const Netlist& net, const Fault& f);

}  // namespace protest
