#include "sim/lfsr.hpp"

#include <bit>
#include <stdexcept>

namespace protest {

std::uint64_t Lfsr::taps_for(unsigned width) {
  // Primitive polynomials (tap masks, LSB = stage 0) for maximal-length
  // sequences; standard table entries.
  switch (width) {
    case 2: return 0b11;
    case 3: return 0b110;
    case 4: return 0b1100;
    case 5: return 0b10100;
    case 6: return 0b110000;
    case 7: return 0b1100000;
    case 8: return 0b10111000;
    case 9: return 0b100010000;
    case 10: return 0b1001000000;
    case 11: return 0b10100000000;
    case 12: return 0b111000001000;
    case 13: return 0b1110010000000;
    case 14: return 0b11100000000010;
    case 15: return 0b110000000000000;
    case 16: return 0b1101000000001000;
    case 17: return 0b10010000000000000;
    case 18: return 0b100000010000000000;
    case 19: return 0b1110010000000000000;
    case 20: return 0b10010000000000000000;
    case 21: return 0b101000000000000000000;
    case 22: return 0b1100000000000000000000;
    case 23: return 0b10000100000000000000000;
    case 24: return 0b111000010000000000000000;
    case 25: return 0b1001000000000000000000000;
    case 26: return 0b11100010000000000000000000;
    case 27: return 0b111001000000000000000000000;
    case 28: return 0b1001000000000000000000000000;
    case 29: return 0b10100000000000000000000000000;
    case 30: return 0b110010100000000000000000000000;
    case 31: return 0b1001000000000000000000000000000;
    case 32: return 0b10000000001000000000000000000011u;
    case 64: return 0xD800000000000000ull;
    default:
      throw std::invalid_argument("Lfsr: no tap table entry for width");
  }
}

Lfsr::Lfsr(unsigned width, std::uint64_t seed)
    : width_(width),
      mask_(width >= 64 ? ~std::uint64_t{0}
                        : (std::uint64_t{1} << width) - 1),
      taps_(taps_for(width)),
      state_(seed & mask_) {
  if (state_ == 0) state_ = 1;  // all-zero is the lock-up state
}

std::uint64_t Lfsr::step() {
  const auto parity =
      static_cast<std::uint64_t>(std::popcount(state_ & taps_) & 1);
  state_ = ((state_ << 1) | parity) & mask_;
  return state_;
}

}  // namespace protest
