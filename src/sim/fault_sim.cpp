#include "sim/fault_sim.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <string>

#include "netlist/compiled.hpp"
#include "sim/logic_sim.hpp"

namespace protest {

double FaultSimResult::coverage() const {
  if (first_detect.empty()) return 1.0;
  std::size_t det = 0;
  for (std::int64_t f : first_detect) det += f >= 0;
  return static_cast<double>(det) / static_cast<double>(first_detect.size());
}

double FaultSimResult::coverage_at(std::size_t n) const {
  if (first_detect.empty()) return 1.0;
  std::size_t det = 0;
  for (std::int64_t f : first_detect)
    det += f >= 0 && static_cast<std::size_t>(f) < n;
  return static_cast<double>(det) / static_cast<double>(first_detect.size());
}

std::vector<double> FaultSimResult::detection_probs() const {
  std::vector<double> p(detect_count.size());
  for (std::size_t i = 0; i < p.size(); ++i)
    p[i] = static_cast<double>(detect_count[i]) /
           static_cast<double>(num_patterns);
  return p;
}

namespace {

/// Per-fault faulty-cone propagation state, reused across faults/blocks.
/// Fanin/type lookups ride the compiled columnar view — the event-driven
/// loop touches a handful of gates per fault, and the flat CSR avoids a
/// Gate-struct pointer chase per event.
class ConeSim {
 public:
  explicit ConeSim(const Netlist& net)
      : net_(net),
        cn_(net.compiled()),
        fval_(net.size(), 0),
        val_epoch_(net.size(), 0),
        queued_epoch_(net.size(), 0) {}

  /// Word of faulty values at node n under the current epoch.
  std::uint64_t value(NodeId n, const std::vector<std::uint64_t>& good) const {
    return val_epoch_[n] == epoch_ ? fval_[n] : good[n];
  }

  /// Propagates a difference word injected at `site` with faulty word
  /// `site_value`; returns the OR over primary outputs of (good ^ faulty).
  std::uint64_t propagate(NodeId site, std::uint64_t site_value,
                          const std::vector<std::uint64_t>& good) {
    ++epoch_;
    heap_.clear();
    fval_[site] = site_value;
    val_epoch_[site] = epoch_;
    std::uint64_t detected = 0;
    if (net_.is_output(site)) detected |= site_value ^ good[site];
    push_fanouts(site);
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
      const NodeId n = heap_.back();
      heap_.pop_back();
      ins_.clear();
      for (NodeId f : cn_.fanin(n)) ins_.push_back(value(f, good));
      const std::uint64_t v = eval_gate_word(cn_.type(n), ins_);
      fval_[n] = v;
      val_epoch_[n] = epoch_;
      const std::uint64_t diff = v ^ good[n];
      if (diff == 0) continue;
      if (net_.is_output(n)) detected |= diff;
      push_fanouts(n);
    }
    return detected;
  }

 private:
  void push_fanouts(NodeId n) {
    for (NodeId s : net_.fanout(n)) {
      if (queued_epoch_[s] == epoch_) continue;
      queued_epoch_[s] = epoch_;
      heap_.push_back(s);
      std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    }
  }

  const Netlist& net_;
  const CompiledNetlist& cn_;
  std::vector<std::uint64_t> fval_;
  std::vector<std::uint32_t> val_epoch_;
  std::vector<std::uint32_t> queued_epoch_;
  std::vector<NodeId> heap_;  // min-heap on node id == topological order
  std::vector<std::uint64_t> ins_;
  std::uint32_t epoch_ = 0;
};

/// Faulty word at the fault site given the good values of the block.
std::uint64_t site_value(const Netlist& net, const Fault& f,
                         const std::vector<std::uint64_t>& good,
                         std::vector<std::uint64_t>& scratch) {
  const std::uint64_t forced = f.sa == StuckAt::One ? ~std::uint64_t{0} : 0;
  if (f.is_stem()) return forced;
  const CompiledNetlist& cn = net.compiled();
  const std::span<const NodeId> fanin = cn.fanin(f.node);
  scratch.clear();
  for (std::size_t k = 0; k < fanin.size(); ++k)
    scratch.push_back(static_cast<int>(k) == f.pin ? forced : good[fanin[k]]);
  return eval_gate_word(cn.type(f.node), scratch);
}

}  // namespace

namespace {

/// Shared engine: `fa` non-null prunes proven-undetectable faults from the
/// live list up front (their zero results are exact by proof).
FaultSimResult simulate_impl(const Netlist& net, std::span<const Fault> faults,
                             const PatternSet& ps, FaultSimMode mode,
                             const FaultAnalysis* fa) {
  if (!net.finalized())
    throw std::logic_error("simulate_faults: netlist must be finalized");

  FaultSimResult res;
  res.num_patterns = ps.num_patterns();
  res.first_detect.assign(faults.size(), -1);
  if (mode == FaultSimMode::CountDetections)
    res.detect_count.assign(faults.size(), 0);

  BlockSimulator good_sim(net);
  ConeSim cone(net);
  std::vector<std::uint64_t> scratch;
  std::vector<std::size_t> live;
  live.reserve(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (fa && fa->bounds[i].verdict == FaultClass::ProvenUndetectable)
      continue;
    live.push_back(i);
  }

  for (std::size_t b = 0; b < ps.num_blocks(); ++b) {
    const auto& good = good_sim.run(ps, b);
    const std::uint64_t mask = ps.valid_mask(b);
    std::size_t kept = 0;
    for (std::size_t li = 0; li < live.size(); ++li) {
      const std::size_t fi = live[li];
      const Fault& f = faults[fi];
      const std::uint64_t sv = site_value(net, f, good, scratch);
      const std::uint64_t diff = (sv ^ good[f.node]) & mask;
      std::uint64_t det = 0;
      if (diff != 0) det = cone.propagate(f.node, sv, good) & mask;
      if (det != 0 && res.first_detect[fi] < 0)
        res.first_detect[fi] =
            static_cast<std::int64_t>(b * 64 + std::countr_zero(det));
      if (mode == FaultSimMode::CountDetections) {
        res.detect_count[fi] += static_cast<std::uint64_t>(std::popcount(det));
        live[kept++] = fi;
      } else {
        if (det == 0) live[kept++] = fi;  // drop detected faults
      }
    }
    live.resize(kept);
    if (live.empty()) break;
  }
  return res;
}

}  // namespace

FaultSimResult simulate_faults(const Netlist& net,
                               std::span<const Fault> faults,
                               const PatternSet& ps, FaultSimMode mode) {
  return simulate_impl(net, faults, ps, mode, nullptr);
}

FaultSimResult simulate_faults_pruned(const Netlist& net,
                                      std::span<const Fault> faults,
                                      const PatternSet& ps, FaultSimMode mode,
                                      const FaultAnalysis& fa) {
  if (fa.bounds.size() != faults.size())
    throw std::invalid_argument(
        "simulate_faults_pruned: fault list and analysis size mismatch");
  FaultSimResult res = simulate_impl(net, faults, ps, mode, &fa);

  // The static intervals are sound by construction, so an empirical
  // detection probability beyond worst-case sampling noise is proof of a
  // bug in one of the two layers — fail loudly, never average it away.
  if (mode == FaultSimMode::CountDetections && res.num_patterns > 0) {
    const double n = static_cast<double>(res.num_patterns);
    const double slack = 6.0 * 0.5 / std::sqrt(n);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      const FaultBound& b = fa.bounds[i];
      if (b.verdict == FaultClass::ProvenUndetectable) continue;
      const double p = static_cast<double>(res.detect_count[i]) / n;
      if (p < b.lo - slack || p > b.hi + slack)
        throw std::logic_error(
            "simulate_faults_pruned: empirical detection probability " +
            std::to_string(p) + " of fault " + to_string(net, faults[i]) +
            " falls outside its static interval [" + std::to_string(b.lo) +
            ", " + std::to_string(b.hi) + "] by more than 6 sigma — " +
            "the simulator or the static fault analyzer is broken");
    }
  }
  return res;
}

}  // namespace protest
