// Scan-path extraction.  The paper's premise (sect. 1): scan design "reduces
// ATPG for arbitrary digital systems to ATPG for combinational circuits" —
// every flip-flop becomes a scan cell, so the sequential circuit analyzed by
// PROTEST is its combinational core with flip-flop outputs as pseudo-inputs
// and flip-flop data inputs as pseudo-outputs.
//
// We accept sequential .bench descriptions (`q = DFF(d)`) and extract that
// core.  Input order of the core: original primary inputs first, then one
// pseudo-input per flip-flop (scan order).  Output order: original primary
// outputs first, then one pseudo-output per flip-flop.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace protest {

struct ScanDesign {
  Netlist comb;                        ///< the combinational core
  std::size_t num_primary_inputs = 0;  ///< leading inputs of comb
  std::size_t num_primary_outputs = 0; ///< leading outputs of comb
  std::vector<std::string> flop_names; ///< scan order (pseudo-input names)

  std::size_t num_flops() const { return flop_names.size(); }
};

/// Parses a (possibly sequential) .bench text and extracts the scan core.
/// Purely combinational inputs are accepted too (zero flip-flops).
ScanDesign extract_scan_design(const std::string& bench_text);
ScanDesign extract_scan_design_file(const std::string& path);

/// One clock cycle of the original sequential circuit: evaluates the core
/// on (primary inputs, state) and returns (primary outputs, next state).
/// Used by tests and by users who want to sanity-check an extraction.
struct CycleResult {
  std::vector<bool> outputs;
  std::vector<bool> next_state;
};
CycleResult clock_cycle(const ScanDesign& design,
                        const std::vector<bool>& primary_inputs,
                        const std::vector<bool>& state);

}  // namespace protest
