// Signature analysis — the response-compaction half of self test (sect. 1:
// registers "evaluate and compress the responses by signature analysis"
// [HeLe83]).  A MISR (multiple-input signature register) folds one word of
// primary-output values into an LFSR state per pattern; after the run the
// state is the signature.  A fault is BIST-detected iff its signature
// differs from the good one; a fault that flips outputs but lands on the
// same signature has *aliased* (probability ~ 2^-width).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/fault.hpp"
#include "sim/pattern.hpp"

namespace protest {

/// Multiple-input signature register over GF(2), width 2..64.
class Misr {
 public:
  explicit Misr(unsigned width, std::uint64_t init = 0);

  unsigned width() const { return width_; }
  std::uint64_t state() const { return state_; }

  /// One clock: shift with primitive feedback, XOR the input word in.
  void clock(std::uint64_t inputs);

  void reset(std::uint64_t init = 0) { state_ = init & mask_; }

 private:
  unsigned width_;
  std::uint64_t mask_;
  std::uint64_t taps_;
  std::uint64_t state_;
};

/// Signature of the good circuit over a pattern set (outputs are packed
/// LSB-first into the MISR input word; more than 64 outputs fold onto the
/// stages modulo width).
std::uint64_t good_signature(const Netlist& net, const PatternSet& ps,
                             unsigned width, std::uint64_t init = 0);

struct BistResult {
  std::size_t faults = 0;
  std::size_t detected_by_outputs = 0;  ///< some output differs on some pattern
  std::size_t detected_by_signature = 0;
  std::size_t aliased = 0;  ///< output-detected but signature-equal
  double aliasing_rate() const {
    return detected_by_outputs == 0
               ? 0.0
               : static_cast<double>(aliased) /
                     static_cast<double>(detected_by_outputs);
  }
};

/// Full BIST emulation: per fault, simulate the faulty circuit over the
/// whole pattern set and compare signatures.  Exact but O(faults * patterns
/// * circuit) — meant for validation-sized problems.
BistResult signature_bist(const Netlist& net, std::span<const Fault> faults,
                          const PatternSet& ps, unsigned width,
                          std::uint64_t init = 0);

}  // namespace protest
