// The PROTEST tool facade: one object bundling the full pipeline the paper
// describes in sect. 1 —
//   * signal probability estimation per node,
//   * fault detection probability estimation per fault,
//   * required random test length for (d, e),
//   * optimized input signal probabilities,
//   * weighted random pattern sets,
//   * static fault simulation with those patterns.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "netlist/netlist.hpp"
#include "observe/observability.hpp"
#include "optimize/hill_climb.hpp"
#include "prob/engine.hpp"
#include "sim/fault.hpp"
#include "sim/fault_sim.hpp"
#include "sim/pattern.hpp"
#include "testlen/test_length.hpp"

namespace protest {

enum class FaultUniverse { Structural, Full, Collapsed };

struct ProtestOptions {
  ProtestParams estimator;
  ObservabilityOptions observability;
  FaultUniverse universe = FaultUniverse::Structural;
  /// Signal-probability engine (a make_engine registry key).  The paper's
  /// estimator is the default; "naive", "exact-bdd", "exact-enum" and
  /// "monte-carlo" swap in the alternatives for cross-validation.
  std::string engine = "protest";
  MonteCarloEngineParams monte_carlo;     ///< used when engine=="monte-carlo"
  std::size_t bdd_node_limit = 2'000'000; ///< used when engine=="exact-bdd"
};

/// Result of one analysis run (fixed input-probability tuple).
struct ProtestReport {
  std::string engine;                     ///< engine that produced it
  std::vector<double> input_probs;
  std::vector<double> signal_probs;       ///< per node
  Observability observability;            ///< per stem / pin
  std::vector<double> detection_probs;    ///< per fault (tool fault list)
};

class Protest {
 public:
  explicit Protest(const Netlist& net, ProtestOptions opts = {});

  const Netlist& netlist() const { return net_; }
  const std::vector<Fault>& faults() const { return faults_; }
  const ProtestOptions& options() const { return opts_; }

  /// The signal-probability engine the tool evaluates through.
  const SignalProbEngine& engine() const { return *engine_; }

  /// Signal probabilities, observabilities and detection probabilities for
  /// one input tuple.
  ProtestReport analyze(std::span<const double> input_probs) const;

  /// Batched analysis: one report per tuple, evaluated through the
  /// engine's batched entry point.
  std::vector<ProtestReport> analyze_batch(
      std::span<const InputProbs> input_tuples) const;

  /// Paper sect. 5: smallest N with P_{F_d} >= e given the report.
  std::uint64_t test_length(const ProtestReport& report, double d,
                            double e) const;

  /// Paper sect. 6: optimized input signal probabilities maximizing J_N.
  HillClimbResult optimize(std::uint64_t n_parameter,
                           HillClimbOptions opts = {}) const;

  /// Weighted random patterns implementing a probability tuple.
  PatternSet generate_patterns(std::span<const double> input_probs,
                               std::size_t num_patterns,
                               std::uint64_t seed) const;

  /// Static fault simulation of the tool's fault list.
  FaultSimResult fault_simulate(const PatternSet& ps, FaultSimMode mode) const;

 private:
  ProtestReport make_report(std::span<const double> input_probs,
                            std::vector<double> signal_probs) const;

  const Netlist& net_;
  ProtestOptions opts_;
  std::vector<Fault> faults_;
  std::shared_ptr<const SignalProbEngine> engine_;
};

}  // namespace protest
