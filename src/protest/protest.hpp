// The PROTEST tool facade: one object bundling the full pipeline the paper
// describes in sect. 1 —
//   * signal probability estimation per node,
//   * fault detection probability estimation per fault,
//   * required random test length for (d, e),
//   * optimized input signal probabilities,
//   * weighted random pattern sets,
//   * static fault simulation with those patterns.
#pragma once

#include <cstdint>
#include <span>

#include "netlist/netlist.hpp"
#include "observe/observability.hpp"
#include "optimize/hill_climb.hpp"
#include "prob/protest_estimator.hpp"
#include "sim/fault.hpp"
#include "sim/fault_sim.hpp"
#include "sim/pattern.hpp"
#include "testlen/test_length.hpp"

namespace protest {

enum class FaultUniverse { Structural, Full, Collapsed };

struct ProtestOptions {
  ProtestParams estimator;
  ObservabilityOptions observability;
  FaultUniverse universe = FaultUniverse::Structural;
};

/// Result of one analysis run (fixed input-probability tuple).
struct ProtestReport {
  std::vector<double> input_probs;
  std::vector<double> signal_probs;       ///< per node
  Observability observability;            ///< per stem / pin
  std::vector<double> detection_probs;    ///< per fault (tool fault list)
};

class Protest {
 public:
  explicit Protest(const Netlist& net, ProtestOptions opts = {});

  const Netlist& netlist() const { return net_; }
  const std::vector<Fault>& faults() const { return faults_; }
  const ProtestOptions& options() const { return opts_; }

  /// Signal probabilities, observabilities and detection probabilities for
  /// one input tuple.
  ProtestReport analyze(std::span<const double> input_probs) const;

  /// Paper sect. 5: smallest N with P_{F_d} >= e given the report.
  std::uint64_t test_length(const ProtestReport& report, double d,
                            double e) const;

  /// Paper sect. 6: optimized input signal probabilities maximizing J_N.
  HillClimbResult optimize(std::uint64_t n_parameter,
                           HillClimbOptions opts = {}) const;

  /// Weighted random patterns implementing a probability tuple.
  PatternSet generate_patterns(std::span<const double> input_probs,
                               std::size_t num_patterns,
                               std::uint64_t seed) const;

  /// Static fault simulation of the tool's fault list.
  FaultSimResult fault_simulate(const PatternSet& ps, FaultSimMode mode) const;

 private:
  const Netlist& net_;
  ProtestOptions opts_;
  std::vector<Fault> faults_;
  ProtestEstimator estimator_;
};

}  // namespace protest
