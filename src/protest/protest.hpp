// The PROTEST tool facade: one object bundling the full pipeline the paper
// describes in sect. 1 —
//   * signal probability estimation per node,
//   * fault detection probability estimation per fault,
//   * required random test length for (d, e),
//   * optimized input signal probabilities,
//   * weighted random pattern sets,
//   * static fault simulation with those patterns.
//
// Since the session API landed, the facade is a thin compatibility wrapper
// over an AnalysisSession: analyze() runs a session query and copies the
// artifacts into the eager ProtestReport struct.  Since the service layer
// landed, that session is leased from a private ProtestService — the
// facade is a single-netlist in-process client of the same registry the
// `protest serve` daemon dispatches into, sharing its executor seam.  New
// code that issues repeated or varied queries should hold an
// AnalysisSession (or use session() below) — it exposes the
// request/response interface, the tuple cache, the incremental perturb()
// path, and JSON serialization; multi-netlist callers should hold a
// ProtestService / SessionRegistry directly (protest/service.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "netlist/netlist.hpp"
#include "observe/observability.hpp"
#include "optimize/hill_climb.hpp"
#include "prob/engine.hpp"
#include "protest/session.hpp"
#include "sim/fault.hpp"
#include "sim/fault_sim.hpp"
#include "sim/pattern.hpp"
#include "testlen/test_length.hpp"

namespace protest {

class ProtestService;

/// Facade construction knobs — the session options under their historical
/// name.
using ProtestOptions = SessionOptions;

/// Result of one analysis run (fixed input-probability tuple), fully
/// materialized.  The session API's AnalysisResult is the lazy equivalent.
struct ProtestReport {
  std::string engine;                     ///< engine that produced it
  std::vector<double> input_probs;
  std::vector<double> signal_probs;       ///< per node
  Observability observability;            ///< per stem / pin
  std::vector<double> detection_probs;    ///< per fault (tool fault list)
};

class Protest {
 public:
  explicit Protest(const Netlist& net, ProtestOptions opts = {});
  ~Protest();
  Protest(Protest&&) noexcept;

  const Netlist& netlist() const { return session_->netlist(); }
  const std::vector<Fault>& faults() const { return session_->faults(); }
  const ProtestOptions& options() const { return session_->options(); }

  /// The signal-probability engine the tool evaluates through.
  const SignalProbEngine& engine() const { return session_->engine(); }

  /// The underlying session: cached plans, incremental perturb(), lazy
  /// artifact requests, JSON results.
  AnalysisSession& session() { return *session_; }
  const AnalysisSession& session() const { return *session_; }

  /// The service the facade's session is registered in (netlist name
  /// "default") — the seam to the daemon-facing request protocol.
  ProtestService& service() { return *service_; }

  /// Signal probabilities, observabilities and detection probabilities for
  /// one input tuple.  Repeated tuples hit the session cache.
  ProtestReport analyze(std::span<const double> input_probs) const;

  /// Batched analysis: one report per tuple.  Every report has exact
  /// single-tuple semantics (the session's cached plan already amortizes
  /// the per-tuple setup the engine-level batch used to share).
  std::vector<ProtestReport> analyze_batch(
      std::span<const InputProbs> input_tuples) const;

  /// Paper sect. 5: smallest N with P_{F_d} >= e given the report.
  std::uint64_t test_length(const ProtestReport& report, double d,
                            double e) const;

  /// Paper sect. 6: optimized input signal probabilities maximizing J_N.
  HillClimbResult optimize(std::uint64_t n_parameter,
                           HillClimbOptions opts = {}) const;

  /// Weighted random patterns implementing a probability tuple.
  PatternSet generate_patterns(std::span<const double> input_probs,
                               std::size_t num_patterns,
                               std::uint64_t seed) const;

  /// Static fault simulation of the tool's fault list.
  FaultSimResult fault_simulate(const PatternSet& ps, FaultSimMode mode) const;

 private:
  /// The facade's private service instance; the session is leased from
  /// its registry (registered externally over the caller's netlist, so
  /// netlist() identity is preserved).  The const analyze() API stays —
  /// sessions are internally synchronized and logically const.
  std::unique_ptr<ProtestService> service_;
  std::shared_ptr<AnalysisSession> session_;
};

}  // namespace protest
