#include "protest/session.hpp"

#include <algorithm>
#include <list>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "analysis/json.hpp"
#include "observe/detect.hpp"
#include "prob/parallel_eval.hpp"
#include "sim/pattern.hpp"
#include "testlen/test_length.hpp"

namespace protest {
namespace {

std::vector<Fault> make_fault_list(const Netlist& net, FaultUniverse u) {
  switch (u) {
    case FaultUniverse::Structural: return structural_fault_list(net);
    case FaultUniverse::Full: return full_fault_list(net);
    case FaultUniverse::Collapsed: return collapsed_fault_list(net);
  }
  return structural_fault_list(net);
}

std::shared_ptr<const SignalProbEngine> make_session_engine(
    const Netlist& net, const SessionOptions& opts) {
  EngineConfig cfg;
  cfg.protest = opts.estimator;
  cfg.monte_carlo = opts.monte_carlo;
  cfg.monte_carlo.parallel = opts.parallel;
  cfg.bdd_node_limit = opts.bdd_node_limit;
  return make_engine(opts.engine, net, cfg);
}

}  // namespace

void SessionStats::write(JsonWriter& w) const {
  w.begin_object();
  w.key("analyze_calls").value(analyze_calls);
  w.key("cache_hits").value(cache_hits);
  w.key("cache_misses").value(cache_misses());
  w.key("incremental_evals").value(incremental_evals);
  w.key("screen_evals").value(screen_evals);
  w.key("full_evals").value(full_evals);
  w.key("resident_results").value(resident_results);
  w.key("lint").begin_object();
  w.key("runs").value(lint_runs);
  w.key("errors").value(lint_errors);
  w.key("warnings").value(lint_warnings);
  w.key("infos").value(lint_infos);
  w.end_object();
  w.end_object();
}

std::string SessionStats::to_json(int indent) const {
  JsonWriter w(indent);
  write(w);
  return w.str();
}

AnalysisRequest AnalysisRequest::minimal() {
  AnalysisRequest r;
  r.observability = false;
  r.detection_probs = false;
  return r;
}

AnalysisRequest AnalysisRequest::everything() {
  AnalysisRequest r;
  r.test_lengths = true;
  r.scoap = true;
  r.stafan = true;
  r.fault_bounds = true;
  return r;
}

namespace {

constexpr ArtifactName kArtifactNames[] = {
    {"observability", &AnalysisRequest::observability},
    {"detection_probs", &AnalysisRequest::detection_probs},
    {"test_lengths", &AnalysisRequest::test_lengths},
    {"scoap", &AnalysisRequest::scoap},
    {"stafan", &AnalysisRequest::stafan},
    {"fault_bounds", &AnalysisRequest::fault_bounds},
};

}  // namespace

std::span<const ArtifactName> artifact_name_table() { return kArtifactNames; }

bool set_artifact(AnalysisRequest& req, std::string_view name) {
  if (name == "signal_probs") return true;  // always computed
  for (const ArtifactName& a : kArtifactNames)
    if (name == a.name) {
      req.*a.flag = true;
      return true;
    }
  return false;
}

std::string known_artifact_names() {
  std::string names = "signal_probs";
  for (const ArtifactName& a : kArtifactNames) {
    names += ' ';
    names += a.name;
  }
  return names;
}

// --- shared session state ---------------------------------------------------

/// Everything a result needs to compute artifacts after the query
/// returned: held by shared_ptr so results stay usable independent of the
/// session's cache (and of the session itself).
struct detail::SessionShared {
  SessionShared(const Netlist& n, SessionOptions o,
                std::shared_ptr<const SignalProbEngine> e,
                std::vector<Fault> f)
      : net(n), opts(std::move(o)), engine(std::move(e)), faults(std::move(f)) {}

  const Netlist& net;
  SessionOptions opts;
  std::shared_ptr<const SignalProbEngine> engine;
  std::vector<Fault> faults;
  std::mutex scoap_mu;  ///< guards the lazy init below
  std::optional<ScoapMeasures> scoap;  ///< input-independent, session-wide
};

struct AnalysisResult::State {
  std::shared_ptr<detail::SessionShared> shared;
  std::vector<double> input_probs;
  std::vector<double> signal_probs;
  /// false for perturb_screen() products (frozen-selection numbers);
  /// screened results never enter the cache and cannot seed perturbs.
  bool exact_fidelity = true;
  /// Guards the lazy artifacts: results are shared across copies (and the
  /// session cache), so concurrent accessors memoize exactly once.  Never
  /// held while another lock is taken.
  std::mutex mu;
  // Memoized lazy artifacts (read/written under mu).
  std::optional<Observability> observability;
  std::optional<std::vector<double>> detection_probs;
  std::optional<StafanMeasures> stafan;
  std::optional<FaultAnalysis> fault_bounds;
};

// --- AnalysisResult ---------------------------------------------------------

AnalysisResult::AnalysisResult(std::shared_ptr<State> state,
                               AnalysisRequest request)
    : state_(std::move(state)), request_(std::move(request)) {}

namespace {

AnalysisResult::State& checked(
    const std::shared_ptr<AnalysisResult::State>& state) {
  if (!state)
    throw std::logic_error("AnalysisResult: empty handle (default-"
                           "constructed or moved-from)");
  return *state;
}

/// Lazy-init helper for the accessors below; the caller holds s.mu.  Once
/// materialized, the optionals are never reset, so references handed out
/// stay valid after the lock is released.
const Observability& ensure_observability(AnalysisResult::State& s) {
  if (!s.observability)
    s.observability = compute_observability(s.shared->net, s.signal_probs,
                                            s.shared->opts.observability);
  return *s.observability;
}

}  // namespace

const Netlist& AnalysisResult::netlist() const {
  return checked(state_).shared->net;
}

std::string_view AnalysisResult::engine() const {
  return checked(state_).shared->engine->name();
}

const std::vector<Fault>& AnalysisResult::faults() const {
  return checked(state_).shared->faults;
}

const std::vector<double>& AnalysisResult::input_probs() const {
  return checked(state_).input_probs;
}

const std::vector<double>& AnalysisResult::signal_probs() const {
  return checked(state_).signal_probs;
}

const Observability& AnalysisResult::observability() const {
  State& s = checked(state_);
  const std::lock_guard<std::mutex> lock(s.mu);
  return ensure_observability(s);
}

const std::vector<double>& AnalysisResult::detection_probs() const {
  State& s = checked(state_);
  const std::lock_guard<std::mutex> lock(s.mu);
  if (!s.detection_probs)
    s.detection_probs =
        protest::detection_probs(s.shared->net, s.shared->faults,
                                 s.signal_probs, ensure_observability(s));
  return *s.detection_probs;
}

const ScoapMeasures& AnalysisResult::scoap() const {
  State& s = checked(state_);
  const std::lock_guard<std::mutex> lock(s.shared->scoap_mu);
  if (!s.shared->scoap) s.shared->scoap = compute_scoap(s.shared->net);
  return *s.shared->scoap;
}

const StafanMeasures& AnalysisResult::stafan() const {
  State& s = checked(state_);
  const std::lock_guard<std::mutex> lock(s.mu);
  if (!s.stafan)
    s.stafan = compute_stafan(
        s.shared->net,
        PatternSet::weighted(s.input_probs, s.shared->opts.stafan_patterns,
                             s.shared->opts.stafan_seed));
  return *s.stafan;
}

const FaultAnalysis& AnalysisResult::fault_bounds() const {
  State& s = checked(state_);
  const std::lock_guard<std::mutex> lock(s.mu);
  if (!s.fault_bounds) {
    FaultAnalyzeOptions fo;
    fo.input_probs = s.input_probs;
    s.fault_bounds = analyze_faults(s.shared->net, s.shared->faults, fo);
  }
  return *s.fault_bounds;
}

std::uint64_t AnalysisResult::test_length(double d, double e) const {
  return required_test_length(detection_probs(), d, e);
}

std::string AnalysisResult::to_json(int indent) const {
  State& s = checked(state_);
  const Netlist& net = s.shared->net;
  JsonWriter w(indent);
  w.begin_object();
  w.key("engine").value(engine());

  w.key("circuit").begin_object();
  w.key("inputs").value(net.inputs().size());
  w.key("outputs").value(net.outputs().size());
  w.key("gates").value(net.num_gates());
  w.key("nodes").value(net.size());
  w.key("faults").value(s.shared->faults.size());
  w.end_object();

  w.key("input_probs").begin_array();
  const auto inputs = net.inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    w.begin_object();
    w.key("input").value(net.name_of(inputs[i]));
    w.key("p").value(s.input_probs[i]);
    w.end_object();
  }
  w.end_array();

  w.key("signal_probs").begin_array();
  for (NodeId n = 0; n < net.size(); ++n) {
    if (net.is_input(n)) continue;
    w.begin_object();
    w.key("node").value(net.name_of(n));
    w.key("p1").value(s.signal_probs[n]);
    if (request_.observability)
      w.key("observability").value(observability().stem[n]);
    w.end_object();
  }
  w.end_array();

  if (request_.detection_probs) {
    const std::vector<double>& pf = detection_probs();
    w.key("detection_probs").begin_array();
    for (std::size_t f = 0; f < s.shared->faults.size(); ++f) {
      double v = pf[f];
      if (request_.fault_bounds) {
        // The estimator is a heuristic, the static interval a guarantee:
        // where they disagree, the interval wins.
        const FaultBound& b = fault_bounds().bounds[f];
        v = b.verdict == FaultClass::ProvenUndetectable
                ? 0.0
                : std::clamp(v, b.lo, b.hi);
      }
      w.begin_object();
      w.key("fault").value(to_string(net, s.shared->faults[f]));
      w.key("p_detect").value(v);
      w.end_object();
    }
    w.end_array();
  }

  if (request_.fault_bounds) {
    const FaultAnalysis& fa = fault_bounds();
    w.key("fault_bounds").begin_object();
    w.key("summary").begin_object();
    w.key("faults").value(fa.bounds.size());
    w.key("proven_undetectable").value(fa.undetectable);
    w.key("unexcitable").value(fa.unexcitable);
    w.key("unobservable").value(fa.unobservable);
    w.key("proven_detectable").value(fa.detectable);
    w.key("uncertain").value(fa.uncertain);
    w.key("truncated_sweeps").value(fa.truncated_sweeps);
    w.key("frechet_widened").value(fa.frechet_widened);
    w.key("learned_constants").value(fa.learned_constants);
    w.key("settled_fraction").value(fa.settled_fraction());
    w.end_object();
    w.key("faults").begin_array();
    for (std::size_t f = 0; f < fa.bounds.size(); ++f) {
      const FaultBound& b = fa.bounds[f];
      w.begin_object();
      w.key("fault").value(to_string(net, s.shared->faults[f]));
      w.key("lo").value(b.lo);
      w.key("hi").value(b.hi);
      w.key("verdict").value(to_string(b.verdict));
      if (b.cause != UndetectableCause::None)
        w.key("cause").value(to_string(b.cause));
      if (b.truncated) w.key("truncated").value(true);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  if (request_.test_lengths) {
    w.key("test_lengths").begin_array();
    for (double d : request_.d_grid)
      for (double e : request_.e_grid) {
        w.begin_object();
        w.key("d").value(d);
        w.key("e").value(e);
        const std::uint64_t n = test_length(d, e);
        if (n == kInfiniteTestLength)
          w.key("n").null();
        else
          w.key("n").value(n);
        w.end_object();
      }
    w.end_array();
  }

  if (request_.scoap) {
    const ScoapMeasures& m = scoap();
    w.key("scoap").begin_array();
    for (NodeId n = 0; n < net.size(); ++n) {
      if (net.is_input(n)) continue;
      w.begin_object();
      w.key("node").value(net.name_of(n));
      w.key("cc0").value(static_cast<std::uint64_t>(m.cc0[n]));
      w.key("cc1").value(static_cast<std::uint64_t>(m.cc1[n]));
      w.key("co").value(static_cast<std::uint64_t>(m.co[n]));
      w.end_object();
    }
    w.end_array();
  }

  if (request_.stafan) {
    const StafanMeasures& m = stafan();
    w.key("stafan").begin_array();
    for (NodeId n = 0; n < net.size(); ++n) {
      if (net.is_input(n)) continue;
      w.begin_object();
      w.key("node").value(net.name_of(n));
      w.key("c1").value(m.c1[n]);
      w.key("observability").value(m.obs[n]);
      w.end_object();
    }
    w.end_array();
  }

  w.end_object();
  return w.str();
}

// --- the result cache -------------------------------------------------------

/// LRU over evaluated tuples.  Entries share their State with every
/// AnalysisResult handed out, so eviction only drops the cache's
/// reference — outstanding results stay valid.
class AnalysisSession::ResultCache {
 public:
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  std::shared_ptr<AnalysisResult::State> find(
      const std::vector<double>& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    entries_.splice(entries_.begin(), entries_, it->second);
    return entries_.front().state;
  }

  /// Most-recently-used cached tuple differing from `key` in exactly one
  /// coordinate; returns the state and the differing index.
  std::pair<std::shared_ptr<AnalysisResult::State>, std::size_t> find_near(
      std::span<const double> key) const {
    for (const Entry& e : entries_) {
      if (e.key.size() != key.size()) continue;
      std::size_t diffs = 0, idx = 0;
      for (std::size_t i = 0; i < key.size() && diffs <= 1; ++i) {
        if (e.key[i] != key[i]) {
          ++diffs;
          idx = i;
        }
      }
      if (diffs == 1) return {e.state, idx};
    }
    return {nullptr, 0};
  }

  void insert(std::vector<double> key,
              std::shared_ptr<AnalysisResult::State> state) {
    if (capacity_ == 0) return;
    if (const auto it = index_.find(key); it != index_.end()) {
      it->second->state = std::move(state);
      entries_.splice(entries_.begin(), entries_, it->second);
      return;
    }
    entries_.push_front(Entry{std::move(key), std::move(state)});
    index_.emplace(entries_.front().key, entries_.begin());
    if (entries_.size() > capacity_) {
      index_.erase(entries_.back().key);
      entries_.pop_back();
    }
  }

  void clear() {
    index_.clear();
    entries_.clear();
  }

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::vector<double> key;
    std::shared_ptr<AnalysisResult::State> state;
  };

  struct VecHash {
    std::size_t operator()(const std::vector<double>& v) const {
      std::size_t h = v.size();
      for (double x : v)
        h = h * 1099511628211ull + std::hash<double>{}(x);
      return h;
    }
  };

  std::size_t capacity_;
  std::list<Entry> entries_;  ///< front = most recent
  std::unordered_map<std::vector<double>, std::list<Entry>::iterator, VecHash>
      index_;
};

// --- AnalysisSession --------------------------------------------------------

AnalysisSession::AnalysisSession(const Netlist& net, SessionOptions opts)
    : AnalysisSession(net, make_session_engine(net, opts),
                      make_fault_list(net, opts.universe), opts) {}

AnalysisSession::AnalysisSession(
    const Netlist& net, std::shared_ptr<const SignalProbEngine> engine,
    std::vector<Fault> faults, SessionOptions opts) {
  if (!engine) throw std::invalid_argument("AnalysisSession: null engine");
  if (&engine->netlist() != &net)
    throw std::invalid_argument(
        "AnalysisSession: engine was built on a different netlist");
  cache_ = std::make_unique<ResultCache>(opts.max_cached_results);
  mu_ = std::make_unique<std::mutex>();
  shared_ = std::make_shared<detail::SessionShared>(
      net, std::move(opts), std::move(engine), std::move(faults));
}

AnalysisSession::~AnalysisSession() = default;
AnalysisSession::AnalysisSession(AnalysisSession&&) noexcept = default;

const Netlist& AnalysisSession::netlist() const { return shared_->net; }
const SignalProbEngine& AnalysisSession::engine() const {
  return *shared_->engine;
}
std::shared_ptr<const SignalProbEngine> AnalysisSession::engine_ptr() const {
  return shared_->engine;
}
const std::vector<Fault>& AnalysisSession::faults() const {
  return shared_->faults;
}
const SessionOptions& AnalysisSession::options() const {
  return shared_->opts;
}

SessionStats AnalysisSession::stats() const {
  const std::lock_guard<std::mutex> lock(*mu_);
  SessionStats s = stats_;
  s.resident_results = cache_->size();
  return s;
}

void AnalysisSession::record_lint(std::size_t errors, std::size_t warnings,
                                  std::size_t infos) {
  const std::lock_guard<std::mutex> lock(*mu_);
  ++stats_.lint_runs;
  stats_.lint_errors = errors;
  stats_.lint_warnings = warnings;
  stats_.lint_infos = infos;
}

void AnalysisSession::clear_cache() {
  const std::lock_guard<std::mutex> lock(*mu_);
  cache_->clear();
}

AnalysisResult AnalysisSession::wrap(
    std::shared_ptr<AnalysisResult::State> state,
    const AnalysisRequest& request) {
  AnalysisResult result(std::move(state), request);
  // Materialize the requested artifacts now; anything else stays lazy.
  // The test-length grid is derived per (d, e) on demand, but its input —
  // the detection probabilities — is the expensive part and belongs to
  // query time, not serialization time.
  if (request.observability) result.observability();
  if (request.detection_probs || request.test_lengths)
    result.detection_probs();
  if (request.scoap) result.scoap();
  if (request.stafan) result.stafan();
  if (request.fault_bounds) result.fault_bounds();
  return result;
}

AnalysisResult AnalysisSession::analyze(std::span<const double> input_probs,
                                        AnalysisRequest request) {
  validate_input_probs(shared_->net, input_probs);
  std::shared_ptr<AnalysisResult::State> state;
  {
    // The engine is single-threaded by contract, so the whole lookup/
    // evaluate/insert step serializes; artifact materialization (wrap)
    // happens outside the session lock.
    const std::lock_guard<std::mutex> lock(*mu_);
    ++stats_.analyze_calls;
    std::vector<double> key(input_probs.begin(), input_probs.end());

    if ((state = cache_->find(key))) {
      ++stats_.cache_hits;
    } else {
      std::vector<double> probs;
      if (shared_->engine->incremental()) {
        // A cached tuple one coordinate away feeds the incremental path,
        // which is bit-for-bit equivalent to the full evaluation below.
        if (auto [base, idx] = cache_->find_near(key); base) {
          probs = shared_->engine->signal_probs_perturb(
              base->input_probs, base->signal_probs, idx, key[idx]);
          ++stats_.incremental_evals;
        }
      }
      if (probs.empty()) {
        probs = shared_->engine->signal_probs(key);
        ++stats_.full_evals;
      }

      state = std::make_shared<AnalysisResult::State>();
      state->shared = shared_;
      state->input_probs = key;
      state->signal_probs = std::move(probs);
      cache_->insert(std::move(key), state);
    }
  }
  return wrap(std::move(state), request);
}

std::vector<AnalysisResult> AnalysisSession::analyze_batch(
    std::span<const InputProbs> tuples, AnalysisRequest request) {
  std::vector<AnalysisResult> out;
  out.reserve(tuples.size());
  for (const InputProbs& t : tuples) out.push_back(analyze(t, request));
  return out;
}

void AnalysisSession::check_perturb_args(const AnalysisResult& base,
                                         std::size_t input_index,
                                         double new_p) const {
  if (!base.valid() || base.state_->shared != shared_)
    throw std::invalid_argument(
        "AnalysisSession::perturb: base result does not belong to this "
        "session");
  if (!base.state_->exact_fidelity)
    throw std::invalid_argument(
        "AnalysisSession::perturb: base result has screening fidelity "
        "(perturb_screen product) — re-analyze its tuple exactly first");
  if (input_index >= shared_->net.inputs().size())
    throw std::invalid_argument(
        "AnalysisSession::perturb: input index out of range");
  if (!(new_p >= 0.0 && new_p <= 1.0))
    throw std::invalid_argument(
        "AnalysisSession::perturb: probability outside [0,1]");
}

AnalysisResult AnalysisSession::perturb(const AnalysisResult& base,
                                        std::size_t input_index,
                                        double new_p) {
  check_perturb_args(base, input_index, new_p);
  std::shared_ptr<AnalysisResult::State> state;
  {
    const std::lock_guard<std::mutex> lock(*mu_);
    std::vector<double> key = base.state_->input_probs;
    key[input_index] = new_p;
    if ((state = cache_->find(key))) {
      ++stats_.cache_hits;
    } else {
      std::vector<double> probs = shared_->engine->signal_probs_perturb(
          base.state_->input_probs, base.state_->signal_probs, input_index,
          new_p);
      if (shared_->engine->incremental())
        ++stats_.incremental_evals;
      else
        ++stats_.full_evals;

      state = std::make_shared<AnalysisResult::State>();
      state->shared = shared_;
      state->input_probs = key;
      state->signal_probs = std::move(probs);
      cache_->insert(std::move(key), state);
    }
  }
  return wrap(std::move(state), base.request_);
}

AnalysisResult AnalysisSession::screen_one(const SignalProbEngine& engine,
                                           const AnalysisResult& base,
                                           std::size_t input_index,
                                           double new_p) {
  // No cache lookup and no insertion: the cache holds exact-fidelity
  // tuples only, and screening must yield frozen-selection numbers
  // deterministically (a cached exact value would differ).
  std::vector<double> probs = engine.signal_probs_perturb(
      base.state_->input_probs, base.state_->signal_probs, input_index,
      new_p, PerturbMode::FrozenSelection);
  auto state = std::make_shared<AnalysisResult::State>();
  state->shared = shared_;
  state->input_probs = base.state_->input_probs;
  state->input_probs[input_index] = new_p;
  state->signal_probs = std::move(probs);
  state->exact_fidelity = false;
  return wrap(std::move(state), base.request_);
}

AnalysisResult AnalysisSession::perturb_screen(const AnalysisResult& base,
                                               std::size_t input_index,
                                               double new_p) {
  check_perturb_args(base, input_index, new_p);
  const std::lock_guard<std::mutex> lock(*mu_);
  ++stats_.screen_evals;
  return screen_one(*shared_->engine, base, input_index, new_p);
}

std::vector<AnalysisResult> AnalysisSession::perturb_screen_sweep(
    const AnalysisResult& base, std::size_t input_index,
    std::span<const double> values) {
  for (const double v : values) check_perturb_args(base, input_index, v);
  std::vector<AnalysisResult> out(values.size());
  if (values.empty()) return out;

  const std::lock_guard<std::mutex> lock(*mu_);
  stats_.screen_evals += values.size();
  const SignalProbEngine& engine = *shared_->engine;
  const bool serial = shared_->opts.parallel.resolved() == 1 ||
                      engine.internally_parallel() || values.size() == 1;
  if (serial) {
    // Exactly the perturb_screen loop (internally-parallel engines
    // already fan each candidate across every core).
    for (std::size_t i = 0; i < values.size(); ++i)
      out[i] = screen_one(engine, base, input_index, values[i]);
    return out;
  }

  // Candidates fan out across per-worker engine clones; each worker also
  // materializes the requested artifacts (observability, detection
  // probabilities) inside wrap(), so the whole screening pipeline — not
  // just the signal probabilities — runs in parallel.  Frozen selections
  // depend only on the base tuple, which every clone anchors at, so
  // element i is bit-for-bit the serial perturb_screen result.
  if (!sweep_eval_)
    sweep_eval_ = std::make_unique<ParallelBatchEvaluator>(
        engine, shared_->opts.parallel);
  sweep_eval_->for_each_task(
      values.size(), [&](std::size_t i, const SignalProbEngine& worker) {
        out[i] = screen_one(worker, base, input_index, values[i]);
      });
  return out;
}

}  // namespace protest
