#include "protest/jobs.hpp"

#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace protest {

std::string_view to_string(JobState state) {
  switch (state) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
  }
  return "?";
}

bool job_finished(JobState state) {
  return state == JobState::Done || state == JobState::Failed ||
         state == JobState::Cancelled;
}

struct JobManager::Job {
  std::uint64_t id = 0;
  std::string label;
  JobState state = JobState::Queued;
  CancelToken token = CancelToken::source();
  std::function<std::string()> fn;  ///< cleared once claimed
  std::string payload;
  std::string error;
};

struct JobManager::Impl {
  mutable std::mutex mu;
  /// Signalled on every state transition (poll-to-terminal waiters).
  mutable std::condition_variable state_cv;
  /// Signalled when the queue gains work or stopping flips.
  std::condition_variable work_cv;
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs;  ///< id order
  std::deque<std::shared_ptr<Job>> queue;
  std::vector<std::thread> workers;  ///< spawned on first submit
  std::uint64_t next_id = 1;
  std::size_t max_retained = 1024;
  bool stopping = false;

  /// Erases the oldest FINISHED jobs beyond max_retained (0 = keep all).
  /// Queued/running jobs are untouched — the queue's pointers stay valid.
  void prune_locked() {
    if (max_retained == 0) return;
    std::size_t finished = 0;
    for (const auto& [id, job] : jobs)
      if (job_finished(job->state)) ++finished;
    for (auto it = jobs.begin(); finished > max_retained && it != jobs.end();)
      if (job_finished(it->second->state)) {
        it = jobs.erase(it);
        --finished;
      } else {
        ++it;
      }
  }

  static JobInfo snapshot_locked(const Job& j, bool with_payload) {
    JobInfo info;
    info.id = j.id;
    info.label = j.label;
    info.state = j.state;
    if (with_payload && j.state == JobState::Done) info.payload = j.payload;
    if (j.state == JobState::Failed) info.error = j.error;
    return info;
  }

  /// Flips every unfinished job's token (running jobs stop at their next
  /// checkpoint) and marks queued jobs cancelled outright.
  void cancel_all_locked() {
    for (auto& [id, job] : jobs) {
      if (job_finished(job->state)) continue;
      job->token.request_cancel();
      if (job->state == JobState::Queued) {
        job->state = JobState::Cancelled;
        job->fn = nullptr;
      }
    }
    state_cv.notify_all();
  }
};

JobManager::JobManager(unsigned num_workers, std::size_t max_retained)
    : num_workers_(num_workers == 0 ? 1 : num_workers),
      impl_(std::make_unique<Impl>()) {
  impl_->max_retained = max_retained;
}

std::size_t JobManager::max_retained() const { return impl_->max_retained; }

JobManager::~JobManager() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stopping = true;
    impl_->cancel_all_locked();
    impl_->work_cv.notify_all();
  }
  for (std::thread& t : impl_->workers) t.join();
}

void JobManager::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    std::function<std::string()> fn;
    {
      std::unique_lock<std::mutex> lock(impl_->mu);
      impl_->work_cv.wait(lock, [&] {
        return impl_->stopping || !impl_->queue.empty();
      });
      while (!impl_->queue.empty()) {
        job = std::move(impl_->queue.front());
        impl_->queue.pop_front();
        // A job cancelled while queued stays in the deque but was already
        // marked; skip it.
        if (job->state == JobState::Queued) break;
        job.reset();
      }
      if (!job) {
        if (impl_->stopping) return;
        continue;
      }
      job->state = JobState::Running;
      fn = std::move(job->fn);
      job->fn = nullptr;
      impl_->state_cv.notify_all();
    }
    JobState end = JobState::Done;
    std::string payload;
    std::string error;
    try {
      // The scope makes every checkpoint reached by fn — including ones
      // forwarded onto executor workers — observe THIS job's token.
      const CancelScope scope(job->token);
      payload = fn();
    } catch (const OperationCancelled&) {
      end = JobState::Cancelled;
    } catch (const std::exception& e) {
      end = JobState::Failed;
      error = e.what();
    } catch (...) {
      end = JobState::Failed;
      error = "unknown error";
    }

    {
      const std::lock_guard<std::mutex> lock(impl_->mu);
      // Completion beats a cancel request that no checkpoint observed:
      // the work finished, so the result is valid and reported as done.
      job->state = end;
      job->payload = std::move(payload);
      job->error = std::move(error);
      impl_->state_cv.notify_all();
    }
  }
}

JobTicket JobManager::submit(std::string label,
                             std::function<std::string()> fn) {
  if (!fn) throw std::invalid_argument("JobManager::submit: null job");
  const std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->stopping)
    throw std::runtime_error("JobManager::submit: manager is shutting down");
  if (impl_->workers.empty()) {
    impl_->workers.reserve(num_workers_);
    for (unsigned w = 0; w < num_workers_; ++w)
      impl_->workers.emplace_back([this] { worker_loop(); });
  }
  auto job = std::make_shared<Job>();
  job->id = impl_->next_id++;
  job->label = std::move(label);
  job->fn = std::move(fn);
  impl_->jobs.emplace(job->id, job);
  impl_->queue.push_back(job);
  impl_->prune_locked();
  impl_->work_cv.notify_one();
  return JobTicket{job->id, JobState::Queued};
}

std::optional<JobInfo> JobManager::poll(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->jobs.find(id);
  if (it == impl_->jobs.end()) return std::nullopt;
  return Impl::snapshot_locked(*it->second, /*with_payload=*/true);
}

std::optional<JobInfo> JobManager::wait(
    std::uint64_t id, std::optional<std::chrono::milliseconds> timeout) {
  std::unique_lock<std::mutex> lock(impl_->mu);
  const auto it = impl_->jobs.find(id);
  if (it == impl_->jobs.end()) return std::nullopt;
  const std::shared_ptr<Job> job = it->second;
  const auto finished = [&] { return job_finished(job->state); };
  if (timeout)
    impl_->state_cv.wait_for(lock, *timeout, finished);
  else
    impl_->state_cv.wait(lock, finished);
  return Impl::snapshot_locked(*job, /*with_payload=*/true);
}

bool JobManager::cancel(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->jobs.find(id);
  if (it == impl_->jobs.end()) return false;
  Job& job = *it->second;
  if (job_finished(job.state)) return false;
  job.token.request_cancel();
  if (job.state == JobState::Queued) {
    job.state = JobState::Cancelled;
    job.fn = nullptr;
    impl_->state_cv.notify_all();
  }
  return true;
}

std::vector<JobInfo> JobManager::jobs() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<JobInfo> out;
  out.reserve(impl_->jobs.size());
  for (const auto& [id, job] : impl_->jobs)
    out.push_back(Impl::snapshot_locked(*job, /*with_payload=*/false));
  return out;
}

std::size_t JobManager::num_pending() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  std::size_t n = 0;
  for (const auto& [id, job] : impl_->jobs)
    if (!job_finished(job->state)) ++n;
  return n;
}

void JobManager::cancel_all() {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->cancel_all_locked();
}

}  // namespace protest
