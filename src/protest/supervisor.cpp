#include "protest/supervisor.hpp"

#include <algorithm>
#include <ostream>

#include "analysis/json.hpp"

namespace protest {

// --- placement (platform-neutral, pure) -------------------------------------

std::uint64_t placement_fingerprint(std::string_view name, unsigned worker) {
  // FNV-1a over the name bytes, then a separator, then the worker index —
  // a fixed function of its inputs, so placement is stable across runs,
  // builds, and platforms (the fault-injection CI job pins specific
  // name -> worker assignments).
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](unsigned char byte) {
    h ^= byte;
    h *= 1099511628211ull;
  };
  for (const char c : name) mix(static_cast<unsigned char>(c));
  mix('/');
  for (unsigned v = worker;; v >>= 8) {
    mix(static_cast<unsigned char>(v & 0xff));
    if (v < 0x100) break;
  }
  return h;
}

unsigned worker_for_netlist(std::string_view name, unsigned workers) {
  // Rendezvous hashing: every (name, worker) pair gets a fingerprint and
  // the highest wins.  Unlike mod-N, growing the fleet only rehomes the
  // names whose new worker's fingerprint beats every old one.
  if (workers <= 1) return 0;
  unsigned best = 0;
  std::uint64_t best_fp = placement_fingerprint(name, 0);
  for (unsigned w = 1; w < workers; ++w) {
    const std::uint64_t fp = placement_fingerprint(name, w);
    if (fp > best_fp) {
      best_fp = fp;
      best = w;
    }
  }
  return best;
}

}  // namespace protest

#if defined(__unix__) || defined(__APPLE__)

#include <fcntl.h>
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>

extern char** environ;

namespace protest {
namespace {

/// Strict non-negative integral conversion — the same guard the service
/// protocol applies to request ids.
std::uint64_t guarded_uint(const JsonValue& v) {
  const double d = v.as_number();
  if (!(d >= 0.0) || d != std::floor(d) || d > 9007199254740992.0)
    throw std::runtime_error("expected a non-negative integer");
  return static_cast<std::uint64_t>(d);
}

/// Parses the canonical response head `{"id":<digits>,` every worker
/// response carries (our own JsonWriter emits id first, compactly).
/// Anything else is protocol corruption.
bool parse_response_id(std::string_view line, std::uint64_t* id) {
  constexpr std::string_view kPrefix = "{\"id\":";
  if (line.size() <= kPrefix.size() ||
      line.compare(0, kPrefix.size(), kPrefix) != 0)
    return false;
  std::uint64_t v = 0;
  std::size_t i = kPrefix.size();
  bool any = false;
  for (; i < line.size() && line[i] >= '0' && line[i] <= '9'; ++i) {
    v = v * 10 + static_cast<std::uint64_t>(line[i] - '0');
    any = true;
  }
  if (!any || i >= line.size() || line[i] != ',') return false;
  *id = v;
  return true;
}

/// Splices a new id (and optionally a new verb echo — `wait` is served
/// as a supervisor-side poll loop) into a canonical response line
/// WITHOUT re-encoding the rest: result payloads keep their exact bytes,
/// which is what preserves the service's byte-identity guarantees across
/// the router.
std::string rewrite_response_head(const std::string& line, std::uint64_t id,
                                  const char* new_verb = nullptr) {
  const std::size_t comma = line.find(',');
  if (comma == std::string::npos) return line;
  std::string out = "{\"id\":" + std::to_string(id) + line.substr(comma);
  if (new_verb) {
    constexpr std::string_view kVerbKey = "\"verb\":\"";
    const std::size_t key = out.find(kVerbKey);
    if (key != std::string::npos) {
      const std::size_t open = key + kVerbKey.size();
      const std::size_t close = out.find('"', open);
      if (close != std::string::npos)
        out = out.substr(0, open) + new_verb + out.substr(close);
    }
  }
  return out;
}

/// Rewrites the first `"<marker>":<digits>` occurrence (used to map a
/// worker-local job ticket id to its supervisor-global id in submit /
/// poll / wait responses; the marker sits at a canonical position, ahead
/// of any free-form payload text).
std::string rewrite_number_after(const std::string& line,
                                 std::string_view marker, std::uint64_t value) {
  const std::size_t at = line.find(marker);
  if (at == std::string::npos) return line;
  std::size_t i = at + marker.size();
  std::size_t end = i;
  while (end < line.size() && line[end] >= '0' && line[end] <= '9') ++end;
  if (end == i) return line;
  return line.substr(0, i) + std::to_string(value) + line.substr(end);
}

/// Extracts `"state":"<value>"` from a job payload (canonical format).
std::string job_state_of(const std::string& line) {
  constexpr std::string_view kKey = "\"state\":\"";
  const std::size_t at = line.find(kKey);
  if (at == std::string::npos) return "";
  const std::size_t open = at + kKey.size();
  const std::size_t close = line.find('"', open);
  if (close == std::string::npos) return "";
  return line.substr(open, close - open);
}

std::string failure_line(std::uint64_t id, std::string_view verb,
                         const std::string& code, const std::string& message) {
  return ServiceResponse::failure(id, verb, code, message).to_json(0);
}

/// The poll/wait payload of a job whose worker process died: the ticket
/// survives the restart as an observable failure, never as an orphan.
std::string lost_job_response(std::uint64_t id, std::string_view verb,
                              std::uint64_t job, const std::string& label) {
  JsonWriter w(0);
  w.begin_object();
  w.key("job").value(job);
  w.key("verb").value(label);
  w.key("state").value("failed");
  w.key("error").value(
      "worker_lost: the worker process running this job died");
  w.end_object();
  ServiceResponse resp;
  resp.id = id;
  resp.verb = std::string(verb);
  resp.ok = true;
  resp.result_json = w.str();
  return resp.to_json(0);
}

bool write_fd_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE and friends: the worker is gone
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

using Clock = std::chrono::steady_clock;

struct Pending {
  enum class State { Waiting, Done, Lost };
  State state = State::Waiting;
  std::string response;   ///< raw worker line (internal id still in place)
  bool heartbeat = false; ///< monitor ping: response is discarded
};

struct Worker {
  enum class State {
    Up,          ///< serving; requests forward
    Restarting,  ///< dead; respawn scheduled at restart_at
    Spawning,    ///< respawned; replaying its placement table
    Abandoned,   ///< exceeded max_restarts; requests answer worker_lost
    Exited,      ///< drained and reaped during shutdown
  };

  unsigned index = 0;
  pid_t pid = -1;
  int wfd = -1;  ///< to the worker's stdin
  int rfd = -1;  ///< from the worker's stdout
  State state = State::Restarting;
  std::uint64_t generation = 0;  ///< bumped per spawn (0 = never spawned)
  unsigned consecutive_failures = 0;
  std::uint64_t restarts = 0;  ///< respawns performed (first spawn not counted)
  Clock::time_point restart_at{};
  Clock::time_point last_line{};            ///< any line from the worker
  Clock::time_point last_heartbeat_sent{};
  bool kill_sent = false;
  std::map<std::uint64_t, std::shared_ptr<Pending>> pending;
  std::thread demux;
  std::mutex write_mu;  ///< serializes request lines onto wfd
};

const char* to_string(Worker::State s) {
  switch (s) {
    case Worker::State::Up: return "up";
    case Worker::State::Restarting: return "restarting";
    case Worker::State::Spawning: return "spawning";
    case Worker::State::Abandoned: return "abandoned";
    case Worker::State::Exited: return "exited";
  }
  return "?";
}

}  // namespace

// --- the supervisor ---------------------------------------------------------

struct Supervisor::Impl {
  SupervisorOptions opts;
  std::ostream& log;

  mutable std::mutex mu;            ///< workers, pendings, maps, counters
  std::condition_variable cv;       ///< pending/worker state changed
  std::condition_variable monitor_cv;
  std::vector<std::unique_ptr<Worker>> workers;
  /// name -> the original load_netlist request, replayed into a restarted
  /// worker before it re-enters service.
  std::map<std::string, ServiceRequest> placement;
  struct JobEntry {
    unsigned worker = 0;
    std::uint64_t local = 0;       ///< the worker's ticket id
    std::uint64_t generation = 0;  ///< worker generation the job ran in
    std::string label;             ///< inner verb name
  };
  std::map<std::uint64_t, JobEntry> job_map;  ///< global ticket -> entry
  std::uint64_t next_internal = 1;
  std::uint64_t next_job = 1;
  SupervisorCounters counters;
  std::atomic<bool> shutdown{false};
  bool draining = false;  ///< shutdown in progress: no restarts, no forwards
  bool stopping = false;  ///< monitor exit flag
  std::thread monitor;
  std::string worker_binary;

  Impl(SupervisorOptions o, std::ostream& l) : opts(std::move(o)), log(l) {
    if (opts.workers == 0) opts.workers = 1;
    if (opts.worker_inflight == 0) opts.worker_inflight = 1;
    if (opts.heartbeat_timeout < 2 * opts.heartbeat_interval)
      opts.heartbeat_timeout = 2 * opts.heartbeat_interval;
    ::signal(SIGPIPE, SIG_IGN);  // dead-worker pipe writes fail, not kill
    worker_binary = resolve_worker_binary();
    for (unsigned i = 0; i < opts.workers; ++i) {
      auto w = std::make_unique<Worker>();
      w->index = i;
      workers.push_back(std::move(w));
    }
    for (auto& w : workers) {
      if (!spawn(*w))
        throw ServiceError("internal", "failed to spawn worker " +
                                           std::to_string(w->index) + " (" +
                                           worker_binary + ")");
      w->state = Worker::State::Up;
    }
    monitor = std::thread([this] { monitor_loop(); });
  }

  ~Impl() {
    {
      const std::lock_guard<std::mutex> lock(mu);
      stopping = true;
      draining = true;
      monitor_cv.notify_all();
      cv.notify_all();
    }
    if (monitor.joinable()) monitor.join();
    for (auto& w : workers) {
      const pid_t pid = w->pid;  // -1 once route_shutdown reaped it
      if (pid > 0) ::kill(pid, SIGKILL);
      if (w->wfd >= 0) ::close(w->wfd);
      if (w->demux.joinable()) w->demux.join();
      if (w->rfd >= 0) ::close(w->rfd);
      if (pid > 0) ::waitpid(pid, nullptr, 0);
    }
  }

  std::string resolve_worker_binary() const {
    if (!opts.worker_binary.empty()) return opts.worker_binary;
    if (const char* env = std::getenv("PROTEST_BIN"); env && *env) return env;
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n > 0) {
      buf[n] = '\0';
      return buf;
    }
    throw ServiceError("internal",
                       "cannot resolve the worker binary: set PROTEST_BIN or "
                       "pass --worker-binary");
  }

  /// Spawns a worker process into `w` (pid/fds/generation) and starts its
  /// demultiplexer thread.  Caller owns w.state transitions.
  bool spawn(Worker& w) {
    int in_pipe[2] = {-1, -1}, out_pipe[2] = {-1, -1};
    if (::pipe(in_pipe) != 0) return false;
    if (::pipe(out_pipe) != 0) {
      ::close(in_pipe[0]);
      ::close(in_pipe[1]);
      return false;
    }
    // Parent ends are CLOEXEC so one worker never inherits another's
    // pipes (a leaked write end would keep a sibling's stdin open past
    // its shutdown).  The child's own ends are re-opened by the dup2s.
    for (const int fd : {in_pipe[0], in_pipe[1], out_pipe[0], out_pipe[1]})
      set_cloexec(fd);

    std::vector<std::string> arg_storage = {worker_binary, "__serve-worker",
                                            "--inflight",
                                            std::to_string(opts.worker_inflight)};
    arg_storage.insert(arg_storage.end(), opts.worker_args.begin(),
                       opts.worker_args.end());
    std::vector<char*> argv;
    argv.reserve(arg_storage.size() + 1);
    for (std::string& s : arg_storage) argv.push_back(s.data());
    argv.push_back(nullptr);
    // Rebuild the environment: scrub any inherited fault/index variables,
    // then pin this worker's index.  The fault spec reaches FIRST spawns
    // only — restarted workers run clean, so injected faults are
    // one-shot and the scripted counters stay exact.
    std::vector<std::string> env_storage;
    for (char** e = environ; *e; ++e) {
      const std::string_view entry(*e);
      if (entry.rfind("PROTEST_FAULT_INJECT=", 0) == 0) continue;
      if (entry.rfind("PROTEST_WORKER_INDEX=", 0) == 0) continue;
      env_storage.emplace_back(entry);
    }
    env_storage.push_back("PROTEST_WORKER_INDEX=" + std::to_string(w.index));
    // generation is 0 exactly until this first spawn bumps it below:
    // restarted workers run clean, so injected faults are one-shot.
    if (w.generation == 0 && !opts.fault_spec.empty())
      env_storage.push_back("PROTEST_FAULT_INJECT=" + opts.fault_spec);
    std::vector<char*> envp;
    envp.reserve(env_storage.size() + 1);
    for (std::string& e : env_storage) envp.push_back(e.data());
    envp.push_back(nullptr);

    posix_spawn_file_actions_t fa;
    posix_spawn_file_actions_init(&fa);
    posix_spawn_file_actions_adddup2(&fa, in_pipe[0], 0);
    posix_spawn_file_actions_adddup2(&fa, out_pipe[1], 1);
    pid_t pid = -1;
    const int rc = ::posix_spawn(&pid, worker_binary.c_str(), &fa, nullptr,
                                 argv.data(), envp.data());
    posix_spawn_file_actions_destroy(&fa);
    ::close(in_pipe[0]);
    ::close(out_pipe[1]);
    if (rc != 0) {
      ::close(in_pipe[1]);
      ::close(out_pipe[0]);
      return false;
    }
    w.pid = pid;
    w.wfd = in_pipe[1];
    w.rfd = out_pipe[0];
    w.generation += 1;
    w.kill_sent = false;
    w.last_line = Clock::now();
    w.last_heartbeat_sent = w.last_line;
    log << "protest supervisor: worker " << w.index << " spawned (pid " << pid
        << ", generation " << w.generation << ")\n"
        << std::flush;
    w.demux = std::thread([this, &w] { demux_loop(w); });
    return true;
  }

  // --- worker output demultiplexer ------------------------------------------

  void demux_loop(Worker& w) {
    const int fd = w.rfd;  // stable: closed only after this thread joins
    std::string buf;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::read(fd, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      buf.append(chunk, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (std::size_t nl; (nl = buf.find('\n', start)) != std::string::npos;
           start = nl + 1) {
        std::string line = buf.substr(start, nl - start);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        on_worker_line(w, std::move(line));
      }
      buf.erase(0, start);
    }
    const std::lock_guard<std::mutex> lock(mu);
    on_worker_gone_locked(w);
  }

  void on_worker_line(Worker& w, std::string line) {
    const std::lock_guard<std::mutex> lock(mu);
    w.last_line = Clock::now();
    std::uint64_t id = 0;
    if (!parse_response_id(line, &id)) {
      // Not a response head: protocol corruption.  The worker is beyond
      // trusting — kill it; the EOF path retries/fails its pendings, so
      // corrupt bytes are never forwarded to a client.
      ++counters.garbage;
      log << "protest supervisor: worker " << w.index
          << " emitted garbage; killing it\n"
          << std::flush;
      kill_worker_locked(w);
      return;
    }
    const auto it = w.pending.find(id);
    if (it == w.pending.end()) return;  // abandoned (deadline backstop): drop
    const std::shared_ptr<Pending> p = it->second;
    w.pending.erase(it);
    if (p->heartbeat) {
      // A worker answering heartbeats is healthy: restart streak over.
      w.consecutive_failures = 0;
      p->state = Pending::State::Done;
      return;
    }
    p->state = Pending::State::Done;
    p->response = std::move(line);
    cv.notify_all();
  }

  /// EOF on a worker's stdout: the process crashed, was killed, or
  /// drained out during shutdown.  Every pending request on it resolves
  /// Lost; outside shutdown a respawn is scheduled with capped backoff.
  void on_worker_gone_locked(Worker& w) {
    for (auto& [id, p] : w.pending) {
      p->state = Pending::State::Lost;
    }
    w.pending.clear();
    if (draining) {
      w.state = Worker::State::Exited;
    } else {
      ++w.consecutive_failures;
      if (w.consecutive_failures > opts.max_restarts) {
        w.state = Worker::State::Abandoned;
        log << "protest supervisor: worker " << w.index << " abandoned after "
            << opts.max_restarts << " consecutive failures\n"
            << std::flush;
      } else {
        const auto delay = opts.backoff.delay(w.consecutive_failures - 1);
        w.state = Worker::State::Restarting;
        w.restart_at = Clock::now() + delay;
        log << "protest supervisor: worker " << w.index << " (pid " << w.pid
            << ") died; restarting in " << delay.count() << " ms\n"
            << std::flush;
      }
    }
    cv.notify_all();
    monitor_cv.notify_all();
  }

  void kill_worker_locked(Worker& w) {
    if (w.pid > 0 && !w.kill_sent) {
      ::kill(w.pid, SIGKILL);
      w.kill_sent = true;
    }
  }

  // --- monitor: heartbeats, wedge detection, restarts -----------------------

  void monitor_loop() {
    std::unique_lock<std::mutex> lock(mu);
    while (!stopping) {
      monitor_cv.wait_for(
          lock, std::min<std::chrono::milliseconds>(
                    opts.heartbeat_interval, std::chrono::milliseconds(100)));
      if (stopping) break;
      if (draining) continue;  // shutdown owns the fleet from here
      const auto now = Clock::now();

      // Heartbeats + wedge detection.
      struct Beat {
        int wfd;
        Worker* w;
        std::string line;
      };
      std::vector<Beat> beats;
      for (auto& w : workers) {
        if (w->state != Worker::State::Up) continue;
        if (now - w->last_line > opts.heartbeat_timeout) {
          ++counters.wedges;
          log << "protest supervisor: worker " << w->index
              << " missed heartbeats for "
              << std::chrono::duration_cast<std::chrono::milliseconds>(
                     now - w->last_line)
                     .count()
              << " ms; killing it as wedged\n"
              << std::flush;
          kill_worker_locked(*w);
          continue;
        }
        if (now - w->last_heartbeat_sent < opts.heartbeat_interval) continue;
        const std::uint64_t id = next_internal++;
        auto p = std::make_shared<Pending>();
        p->heartbeat = true;
        w->pending.emplace(id, std::move(p));
        w->last_heartbeat_sent = now;
        beats.push_back(
            {w->wfd, w.get(),
             "{\"verb\":\"stats\",\"id\":" + std::to_string(id) + "}"});
      }
      if (!beats.empty()) {
        // Pipe writes drop the state lock: a worker with a full pipe must
        // stall only its own heartbeat, never the whole supervisor.
        lock.unlock();
        for (Beat& b : beats) {
          const std::lock_guard<std::mutex> wl(b.w->write_mu);
          write_fd_all(b.wfd, b.line + "\n");  // failure -> EOF path soon
        }
        lock.lock();
      }

      // Restarts (the loop re-checks each state under the re-acquired
      // lock, so the heartbeat unlock above cannot stale it).
      for (auto& w : workers) {
        if (w->state != Worker::State::Restarting || draining) continue;
        if (Clock::now() < w->restart_at) continue;
        respawn_locked(lock, *w);
      }
    }
  }

  /// Respawns `w` (lock held on entry and exit, dropped around process
  /// plumbing) and replays its share of the placement table before
  /// marking it Up.
  void respawn_locked(std::unique_lock<std::mutex>& lock, Worker& w) {
    w.state = Worker::State::Spawning;
    const pid_t old_pid = w.pid;
    lock.unlock();
    if (w.demux.joinable()) w.demux.join();
    if (old_pid > 0) {
      ::kill(old_pid, SIGKILL);  // idempotent; guarantees waitpid returns
      ::waitpid(old_pid, nullptr, 0);
    }
    if (w.wfd >= 0) ::close(w.wfd);
    if (w.rfd >= 0) ::close(w.rfd);
    w.wfd = w.rfd = -1;
    w.pid = -1;
    const bool spawned = spawn(w);
    lock.lock();
    if (!spawned) {
      ++w.consecutive_failures;
      if (w.consecutive_failures > opts.max_restarts) {
        w.state = Worker::State::Abandoned;
      } else {
        w.state = Worker::State::Restarting;
        w.restart_at =
            Clock::now() + opts.backoff.delay(w.consecutive_failures - 1);
      }
      cv.notify_all();
      return;
    }
    ++counters.restarts;
    ++w.restarts;

    // Replay this worker's netlists so retried requests land on a worker
    // that knows them.  The worker is Spawning while we replay: client
    // forwards keep waiting.
    std::vector<ServiceRequest> replays;
    for (const auto& [name, req] : placement) {
      if (worker_for_netlist(name, opts.workers) == w.index)
        replays.push_back(req);
    }
    bool ok = true;
    for (ServiceRequest& req : replays) {
      const std::uint64_t id = next_internal++;
      req.id = id;
      auto p = std::make_shared<Pending>();
      w.pending.emplace(id, p);
      const int wfd = w.wfd;
      lock.unlock();
      bool wrote;
      {
        const std::lock_guard<std::mutex> wl(w.write_mu);
        wrote = write_fd_all(wfd, req.to_json(0) + "\n");
      }
      lock.lock();
      if (!wrote) {
        ok = false;
        break;
      }
      const bool done = cv.wait_for(lock, std::chrono::seconds(30), [&] {
        return p->state != Pending::State::Waiting || stopping;
      });
      if (!done || p->state != Pending::State::Done) {
        ok = false;
        break;
      }
    }
    if (!ok) {
      // The fresh worker died or wedged during replay: kill it and let
      // the EOF path schedule the next (backed-off) attempt.
      kill_worker_locked(w);
      return;
    }
    if (w.state == Worker::State::Spawning) {
      w.state = Worker::State::Up;
      log << "protest supervisor: worker " << w.index
          << " back up (generation " << w.generation << ", " << replays.size()
          << " netlist(s) replayed)\n"
          << std::flush;
      cv.notify_all();
    }
  }

  // --- request forwarding ---------------------------------------------------

  struct ForwardResult {
    enum class Kind { Ok, Lost, Timeout, Unavailable };
    Kind kind = Kind::Lost;
    std::string line;  ///< set when Ok: raw worker response (internal id)
  };

  /// Forwards `req` to worker `widx` and waits for its response.
  /// `retryable` re-forwards ONCE after a worker loss (the idempotent
  /// read verbs).  `backstop` is the supervisor-side deadline guard; a
  /// pending that outlives it is abandoned (its late response dropped).
  /// `require_generation`, when set, refuses to wait for a restart —
  /// job-scoped requests are only meaningful against the generation the
  /// ticket lives in.
  ForwardResult forward(unsigned widx, ServiceRequest req, bool retryable,
                        const std::optional<Clock::time_point>& backstop,
                        std::optional<std::uint64_t> require_generation =
                            std::nullopt) {
    for (int attempt = 0;; ++attempt) {
      std::shared_ptr<Pending> p;
      std::uint64_t internal = 0;
      int wfd = -1;
      Worker* wp = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu);
        Worker& w = *workers[widx];
        for (;;) {
          if (draining && w.state != Worker::State::Up)
            return {ForwardResult::Kind::Unavailable, ""};
          if (w.state == Worker::State::Up) {
            if (require_generation && w.generation != *require_generation)
              return {ForwardResult::Kind::Lost, ""};
            break;
          }
          if (w.state == Worker::State::Abandoned)
            return {ForwardResult::Kind::Unavailable, ""};
          if (require_generation)
            return {ForwardResult::Kind::Lost, ""};
          if (backstop) {
            if (cv.wait_until(lock, *backstop) == std::cv_status::timeout &&
                Clock::now() >= *backstop)
              return {ForwardResult::Kind::Timeout, ""};
          } else {
            cv.wait(lock);
          }
        }
        internal = next_internal++;
        req.id = internal;
        p = std::make_shared<Pending>();
        w.pending.emplace(internal, p);
        wfd = w.wfd;
        wp = &w;
      }

      bool wrote;
      {
        const std::lock_guard<std::mutex> wl(wp->write_mu);
        wrote = write_fd_all(wfd, req.to_json(0) + "\n");
      }

      {
        std::unique_lock<std::mutex> lock(mu);
        if (!wrote && p->state == Pending::State::Waiting) {
          wp->pending.erase(internal);
          p->state = Pending::State::Lost;
        }
        while (p->state == Pending::State::Waiting) {
          if (backstop) {
            if (cv.wait_until(lock, *backstop) == std::cv_status::timeout &&
                Clock::now() >= *backstop &&
                p->state == Pending::State::Waiting) {
              // Abandon: the id leaves the map, so a late response from a
              // merely-slow worker is dropped, not misdelivered.
              wp->pending.erase(internal);
              return {ForwardResult::Kind::Timeout, ""};
            }
          } else {
            cv.wait(lock);
          }
        }
        if (p->state == Pending::State::Done)
          return {ForwardResult::Kind::Ok, std::move(p->response)};
        // Lost: the worker died with the request in flight.
        if (retryable && attempt == 0 && !draining) {
          ++counters.retries;
          continue;  // the restarted worker replays netlists before Up
        }
        return {ForwardResult::Kind::Lost, ""};
      }
    }
  }

  /// Converts a non-Ok forward into the structured client response.
  std::string forward_error(const ForwardResult& r, std::uint64_t id,
                            std::string_view verb,
                            const ServiceRequest& req) {
    const std::lock_guard<std::mutex> lock(mu);
    switch (r.kind) {
      case ForwardResult::Kind::Timeout:
        ++counters.timeouts;
        return failure_line(id, verb, "deadline_exceeded",
                            "request exceeded its deadline_ms=" +
                                std::to_string(req.deadline_ms.value_or(0)) +
                                " budget (supervisor backstop)");
      case ForwardResult::Kind::Lost:
      case ForwardResult::Kind::Unavailable:
      default:
        ++counters.worker_lost;
        return failure_line(id, verb, "worker_lost",
                            "the worker owning this request died" +
                                std::string(r.kind ==
                                                    ForwardResult::Kind::
                                                        Unavailable
                                                ? " and is not coming back"
                                                : " while handling it"));
    }
  }

  std::optional<Clock::time_point> backstop_of(const ServiceRequest& req) {
    if (!req.deadline_ms) return std::nullopt;
    return Clock::now() + std::chrono::milliseconds(*req.deadline_ms) +
           opts.deadline_grace;
  }

  /// Relay bookkeeping shared by every Ok forward.
  std::string relay(const ForwardResult& r, std::uint64_t client_id,
                    const char* new_verb = nullptr) {
    if (r.line.find("\"code\":\"deadline_exceeded\"") != std::string::npos) {
      const std::lock_guard<std::mutex> lock(mu);
      ++counters.timeouts;
    }
    return rewrite_response_head(r.line, client_id, new_verb);
  }

  // --- verb routing ---------------------------------------------------------

  std::string route(const ServiceRequest& req) {
    const std::string_view verb = to_string(req.verb);
    switch (req.verb) {
      case ServiceVerb::Stats:
        if (req.netlist.empty()) return local_stats(req);
        [[fallthrough]];
      case ServiceVerb::Analyze:
      case ServiceVerb::Perturb:
      case ServiceVerb::Lint:
      case ServiceVerb::FaultBounds:
        return route_netlist(req, /*retryable=*/true);
      case ServiceVerb::Optimize:
      case ServiceVerb::Evict:
        // Not idempotent (optimize is stochastic and expensive; evict
        // mutates residency): a worker loss answers worker_lost.
        return route_netlist(req, /*retryable=*/false);
      case ServiceVerb::LoadNetlist:
        return route_load(req);
      case ServiceVerb::Submit:
        return route_submit(req);
      case ServiceVerb::Poll:
      case ServiceVerb::Cancel:
        return route_job(req);
      case ServiceVerb::Wait:
        return route_wait(req);
      case ServiceVerb::Jobs:
        return route_jobs(req);
      case ServiceVerb::Shutdown:
        return route_shutdown(req);
    }
    return failure_line(req.id, verb, "unknown_verb", "unhandled verb");
  }

  std::string route_netlist(const ServiceRequest& req, bool retryable) {
    const unsigned widx = worker_for_netlist(req.netlist, opts.workers);
    const ForwardResult r =
        forward(widx, req, retryable, backstop_of(req));
    if (r.kind != ForwardResult::Kind::Ok)
      return forward_error(r, req.id, to_string(req.verb), req);
    return relay(r, req.id);
  }

  std::string route_load(const ServiceRequest& req) {
    const unsigned widx = worker_for_netlist(req.netlist, opts.workers);
    const ForwardResult r =
        forward(widx, req, /*retryable=*/false, backstop_of(req));
    if (r.kind != ForwardResult::Kind::Ok)
      return forward_error(r, req.id, to_string(req.verb), req);
    if (r.line.find("\"ok\":true") != std::string::npos &&
        !req.netlist.empty()) {
      const std::lock_guard<std::mutex> lock(mu);
      placement[req.netlist] = req;  // replayed into restarted workers
    }
    return relay(r, req.id);
  }

  std::string route_submit(const ServiceRequest& req) {
    if (!req.subrequest)
      return failure_line(req.id, "submit", "bad_request",
                          "submit requires a 'request' object (the verb to "
                          "run as a job)");
    const unsigned widx =
        worker_for_netlist(req.subrequest->netlist, opts.workers);
    const ForwardResult r =
        forward(widx, req, /*retryable=*/false, backstop_of(req));
    if (r.kind != ForwardResult::Kind::Ok)
      return forward_error(r, req.id, "submit", req);
    // Map the worker-local ticket to a supervisor-global one.
    std::uint64_t local = 0;
    bool ok = false;
    try {
      const JsonValue doc = parse_json(r.line);
      ok = doc.at("ok").as_bool();
      if (ok) local = guarded_uint(doc.at("result").at("job"));
    } catch (const std::exception&) {
      ok = false;
    }
    if (!ok) return relay(r, req.id);  // validation error: relay as-is
    std::uint64_t global;
    {
      const std::lock_guard<std::mutex> lock(mu);
      global = next_job++;
      job_map[global] = {widx, local, workers[widx]->generation,
                         std::string(to_string(req.subrequest->verb))};
    }
    return rewrite_number_after(relay(r, req.id), "\"result\":{\"job\":",
                                global);
  }

  std::string route_job(const ServiceRequest& req) {
    const std::string_view verb = to_string(req.verb);
    if (!req.job)
      return failure_line(req.id, verb, "bad_request",
                          "verb '" + std::string(verb) +
                              "' requires a 'job' ticket id");
    JobEntry entry;
    bool lost = false;
    {
      const std::lock_guard<std::mutex> lock(mu);
      const auto it = job_map.find(*req.job);
      if (it == job_map.end())
        return failure_line(req.id, verb, "unknown_job",
                            "no job with ticket id " +
                                std::to_string(*req.job));
      entry = it->second;
      const Worker& w = *workers[entry.worker];
      lost = w.state != Worker::State::Up || w.generation != entry.generation;
    }
    if (lost) return lost_response(req, verb, entry);
    ServiceRequest fwd = req;
    fwd.job = entry.local;
    const ForwardResult r = forward(entry.worker, fwd, /*retryable=*/false,
                                    backstop_of(req), entry.generation);
    if (r.kind == ForwardResult::Kind::Lost ||
        r.kind == ForwardResult::Kind::Unavailable)
      return lost_response(req, verb, entry);
    if (r.kind != ForwardResult::Kind::Ok)
      return forward_error(r, req.id, verb, req);
    return rewrite_number_after(relay(r, req.id), "\"result\":{\"job\":",
                                *req.job);
  }

  /// The ticket's process died: poll/wait answer the job as failed with
  /// a worker_lost error; cancel reports nothing left to cancel.
  std::string lost_response(const ServiceRequest& req, std::string_view verb,
                            const JobEntry& entry) {
    if (req.verb == ServiceVerb::Cancel) {
      JsonWriter w(0);
      w.begin_object();
      w.key("job").value(*req.job);
      w.key("requested").value(false);
      w.end_object();
      ServiceResponse resp;
      resp.id = req.id;
      resp.verb = std::string(verb);
      resp.ok = true;
      resp.result_json = w.str();
      return resp.to_json(0);
    }
    return lost_job_response(req.id, verb, *req.job, entry.label);
  }

  /// `wait` never forwards as wait: the worker would block its inline
  /// verb lane (shared with heartbeats) for the whole wait.  The
  /// supervisor polls instead, so a long wait costs the worker nothing
  /// and wedge detection keeps working throughout.
  std::string route_wait(const ServiceRequest& req) {
    if (!req.job)
      return failure_line(req.id, "wait", "bad_request",
                          "verb 'wait' requires a 'job' ticket id");
    const auto started = Clock::now();
    const auto backstop = backstop_of(req);
    const bool bounded = req.timeout_ms.has_value();
    const std::chrono::milliseconds budget{
        bounded ? static_cast<std::int64_t>(*req.timeout_ms) : 0};
    ServiceRequest poll = req;
    poll.verb = ServiceVerb::Poll;
    poll.timeout_ms.reset();
    for (;;) {
      JobEntry entry;
      bool lost = false;
      {
        const std::lock_guard<std::mutex> lock(mu);
        const auto it = job_map.find(*req.job);
        if (it == job_map.end())
          return failure_line(req.id, "wait", "unknown_job",
                              "no job with ticket id " +
                                  std::to_string(*req.job));
        entry = it->second;
        const Worker& w = *workers[entry.worker];
        lost =
            w.state != Worker::State::Up || w.generation != entry.generation;
      }
      if (lost) return lost_job_response(req.id, "wait", *req.job, entry.label);
      ServiceRequest fwd = poll;
      fwd.job = entry.local;
      const ForwardResult r = forward(entry.worker, fwd, /*retryable=*/false,
                                      backstop, entry.generation);
      if (r.kind == ForwardResult::Kind::Lost ||
          r.kind == ForwardResult::Kind::Unavailable)
        return lost_job_response(req.id, "wait", *req.job, entry.label);
      if (r.kind != ForwardResult::Kind::Ok)
        return forward_error(r, req.id, "wait", req);
      const std::string state = job_state_of(r.line);
      const bool terminal =
          state == "done" || state == "failed" || state == "cancelled";
      const bool out_of_time =
          bounded && (Clock::now() - started) >= budget;
      if (terminal || out_of_time || state.empty()) {
        return rewrite_number_after(relay(r, req.id, "wait"),
                                    "\"result\":{\"job\":", *req.job);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }

  std::string route_jobs(const ServiceRequest& req) {
    // Snapshot the fleet, query each live worker, then merge under the
    // global ticket numbering (synthesizing failed entries for tickets
    // whose generation died).
    struct Listed {
      std::uint64_t global;
      std::string label;
      std::string state;
    };
    std::vector<Listed> listed;
    std::vector<std::pair<unsigned, std::uint64_t>> live;  // widx, generation
    {
      const std::lock_guard<std::mutex> lock(mu);
      for (const auto& w : workers)
        if (w->state == Worker::State::Up)
          live.emplace_back(w->index, w->generation);
    }
    std::map<std::pair<unsigned, std::uint64_t>,
             std::map<std::uint64_t, std::string>>
        reported;  // (widx, local) are unique per generation snapshot
    for (const auto& [widx, gen] : live) {
      ServiceRequest fwd;
      fwd.verb = ServiceVerb::Jobs;
      const ForwardResult r =
          forward(widx, fwd, /*retryable=*/false, backstop_of(req), gen);
      if (r.kind != ForwardResult::Kind::Ok) continue;  // merged as lost below
      try {
        const JsonValue doc = parse_json(r.line);
        for (const JsonValue& j :
             doc.at("result").at("jobs").as_array()) {
          reported[{widx, gen}][guarded_uint(j.at("job"))] =
              j.at("state").as_string();
        }
      } catch (const std::exception&) {
        // Unparseable listing: treat as no report; tickets merge as-is.
      }
    }
    {
      const std::lock_guard<std::mutex> lock(mu);
      for (const auto& [global, entry] : job_map) {
        const Worker& w = *workers[entry.worker];
        const bool gone =
            w.state != Worker::State::Up || w.generation != entry.generation;
        if (gone) {
          listed.push_back({global, entry.label, "failed"});
          continue;
        }
        const auto rep = reported.find({entry.worker, entry.generation});
        if (rep != reported.end()) {
          const auto it = rep->second.find(entry.local);
          if (it != rep->second.end())
            listed.push_back({global, entry.label, it->second});
          // Pruned by the worker's retention cap: drop from the listing,
          // matching the single-process behavior.
        }
      }
    }
    std::sort(listed.begin(), listed.end(),
              [](const Listed& a, const Listed& b) { return a.global < b.global; });
    JsonWriter w(0);
    w.begin_object();
    w.key("jobs").begin_array();
    for (const Listed& j : listed) {
      w.begin_object();
      w.key("job").value(j.global);
      w.key("verb").value(j.label);
      w.key("state").value(j.state);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    ServiceResponse resp;
    resp.id = req.id;
    resp.verb = "jobs";
    resp.ok = true;
    resp.result_json = w.str();
    return resp.to_json(0);
  }

  std::string local_stats(const ServiceRequest& req) {
    const std::lock_guard<std::mutex> lock(mu);
    JsonWriter w(0);
    w.begin_object();
    w.key("registered").begin_array();
    for (const auto& entry : placement) w.value(entry.first);
    w.end_array();
    w.key("workers").value(static_cast<std::uint64_t>(opts.workers));
    w.key("supervisor").begin_object();
    w.key("workers").begin_array();
    for (const auto& wk : workers) {
      w.begin_object();
      w.key("index").value(static_cast<std::uint64_t>(wk->index));
      w.key("pid").value(static_cast<std::int64_t>(wk->pid));
      w.key("generation").value(wk->generation);
      w.key("state").value(to_string(wk->state));
      w.key("restarts").value(wk->restarts);
      w.key("netlists").begin_array();
      for (const auto& entry : placement)
        if (worker_for_netlist(entry.first, opts.workers) == wk->index)
          w.value(entry.first);
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.key("counters").begin_object();
    w.key("restarts").value(counters.restarts);
    w.key("retries").value(counters.retries);
    w.key("timeouts").value(counters.timeouts);
    w.key("worker_lost").value(counters.worker_lost);
    w.key("wedges").value(counters.wedges);
    w.key("garbage").value(counters.garbage);
    w.key("drained_requests").value(counters.drained);
    w.end_object();
    w.key("heartbeat_ms").value(static_cast<std::uint64_t>(
        opts.heartbeat_interval.count()));
    w.key("max_restarts").value(static_cast<std::uint64_t>(opts.max_restarts));
    w.end_object();
    w.end_object();
    ServiceResponse resp;
    resp.id = req.id;
    resp.verb = "stats";
    resp.ok = true;
    resp.result_json = w.str();
    return resp.to_json(0);
  }

  /// Drain, then stop every worker, then reap: outstanding requests get
  /// their responses first (counted as drained), each live worker
  /// receives its own shutdown verb (cancelling its jobs at their next
  /// checkpoint), and stragglers are killed — the supervisor never exits
  /// leaving orphan processes behind.
  std::string route_shutdown(const ServiceRequest& req) {
    {
      std::unique_lock<std::mutex> lock(mu);
      if (shutdown.load())  // idempotent: a second shutdown just echoes
        return simple_ok(req.id, "shutdown", "{\"shutting_down\":true}");
      draining = true;
      const auto count_pending = [this] {
        std::size_t n = 0;
        for (const auto& w : workers)
          for (const auto& [id, p] : w->pending)
            if (!p->heartbeat) ++n;
        return n;
      };
      const std::size_t outstanding = count_pending();
      cv.wait_for(lock, std::chrono::seconds(10),
                  [&] { return count_pending() == 0; });
      counters.drained +=
          static_cast<std::uint64_t>(outstanding - count_pending());
    }
    // Ask each live worker to shut down; its serve loop exits after
    // responding, closing its stdout (EOF -> Exited above).
    for (const auto& w : workers) {
      std::uint64_t id = 0;
      int wfd = -1;
      {
        const std::lock_guard<std::mutex> lock(mu);
        if (w->state != Worker::State::Up) continue;
        id = next_internal++;
        auto p = std::make_shared<Pending>();
        p->heartbeat = true;  // response needs no delivery
        w->pending.emplace(id, std::move(p));
        wfd = w->wfd;
      }
      const std::lock_guard<std::mutex> wl(w->write_mu);
      write_fd_all(wfd,
                   "{\"verb\":\"shutdown\",\"id\":" + std::to_string(id) +
                       "}\n");
    }
    // Reap: close stdin (EOF is a second stop signal), give each worker
    // a moment to exit, then force it.
    for (const auto& w : workers) {
      if (w->pid <= 0) continue;
      if (w->wfd >= 0) {
        ::close(w->wfd);
        w->wfd = -1;
      }
      bool reaped = false;
      for (int i = 0; i < 100; ++i) {  // up to ~2 s of polite waiting
        const pid_t r = ::waitpid(w->pid, nullptr, WNOHANG);
        if (r == w->pid || (r < 0 && errno == ECHILD)) {
          reaped = true;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      if (!reaped) {
        ::kill(w->pid, SIGKILL);
        ::waitpid(w->pid, nullptr, 0);
      }
      if (w->demux.joinable()) w->demux.join();
      if (w->rfd >= 0) {
        ::close(w->rfd);
        w->rfd = -1;
      }
      const std::lock_guard<std::mutex> lock(mu);
      w->state = Worker::State::Exited;
      w->pid = -1;
    }
    shutdown.store(true, std::memory_order_release);
    {
      const std::lock_guard<std::mutex> lock(mu);
      cv.notify_all();
      monitor_cv.notify_all();
    }
    return simple_ok(req.id, "shutdown", "{\"shutting_down\":true}");
  }

  static std::string simple_ok(std::uint64_t id, std::string_view verb,
                               std::string payload) {
    ServiceResponse resp;
    resp.id = id;
    resp.verb = std::string(verb);
    resp.ok = true;
    resp.result_json = std::move(payload);
    return resp.to_json(0);
  }
};

Supervisor::Supervisor(SupervisorOptions options, std::ostream& log)
    : impl_(std::make_unique<Impl>(std::move(options), log)) {}

Supervisor::~Supervisor() = default;

bool Supervisor::shutdown_requested() const {
  return impl_->shutdown.load(std::memory_order_acquire);
}

SupervisorCounters Supervisor::counters() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->counters;
}

const SupervisorOptions& Supervisor::options() const { return impl_->opts; }

std::string Supervisor::handle_line(std::string_view line) {
  // Mirrors ProtestService::handle_line: best-effort verb/id extraction
  // so even undecodable requests get a correlatable structured error.
  std::uint64_t id = 0;
  std::string verb;
  try {
    const JsonValue doc = parse_json(line);
    if (doc.is_object()) {
      if (const JsonValue* v = doc.find("verb"); v && v->is_string())
        verb = v->as_string();
      if (const JsonValue* v = doc.find("id"); v && v->is_number()) {
        try {
          id = guarded_uint(*v);
        } catch (const std::exception&) {
          id = 0;
        }
      }
    }
    return impl_->route(ServiceRequest::from_json_value(doc));
  } catch (const ServiceError& e) {
    return failure_line(id, verb, e.code(), e.what());
  } catch (const std::exception& e) {
    return failure_line(id, verb, "bad_request", e.what());
  }
}

bool supervisor_supported() { return true; }

}  // namespace protest

#else  // no POSIX process plumbing

namespace protest {

struct Supervisor::Impl {};

Supervisor::Supervisor(SupervisorOptions, std::ostream&) {
  throw ServiceError("unsupported",
                     "supervised multi-process serving requires POSIX pipes "
                     "and process spawning; use a single-process serve");
}

Supervisor::~Supervisor() = default;

std::string Supervisor::handle_line(std::string_view) { return ""; }

bool Supervisor::shutdown_requested() const { return true; }

SupervisorCounters Supervisor::counters() const { return {}; }

const SupervisorOptions& Supervisor::options() const {
  static const SupervisorOptions opts;
  return opts;
}

bool supervisor_supported() { return false; }

}  // namespace protest

#endif
