// The PROTEST command-line front end (the "CAD tool" shape of sect. 7),
// factored as a library function so tests can drive it directly.
//
//   protest analyze  <file> [--p P] [--d D] [--e E]
//   protest optimize <file> [--n N] [--sweeps S]
//   protest simulate <file> --patterns N [--p P] [--seed S]
//   protest scan     <file>
//   protest serve           [--cap N] [--threads T] [--port P]
//   protest help
//
// analyze/scan lease their session from a service-layer registry
// (protest/service.hpp) — the same dispatch path the `serve` daemon
// exposes over NDJSON; `serve` reads requests from stdin (responses on
// `out`) unless --port selects the TCP front end.
//
// <file> is a .bench netlist or a DSL description (auto-detected by the
// presence of a 'module' definition).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace protest {

/// Runs one CLI invocation; argv excludes the program name.  Returns the
/// process exit code (0 on success); all output goes to `out` / `err`.
int run_cli(const std::vector<std::string>& argv, std::ostream& out,
            std::ostream& err);

}  // namespace protest
