// The tool's human-readable output — the deliverable list of sect. 1:
// signal probability per node, detection probability per fault, required
// pattern counts for a (d, e) grid, and (optionally) the optimized input
// tuple.  Rendered as aligned text; CLI and bench consumers share it.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "protest/protest.hpp"

namespace protest {

struct ReportOptions {
  bool signal_probabilities = true;   ///< per-node p1 + observability
  bool fault_list = true;             ///< per-fault detection probability
  std::size_t max_fault_rows = 40;    ///< 0 = all (hardest first)
  std::span<const double> d_grid;     ///< default {1.0, 0.98}
  std::span<const double> e_grid;     ///< default {0.95, 0.98, 0.999}
};

/// Writes the full testability report for one analysis run.
void write_report(std::ostream& out, const Protest& tool,
                  const ProtestReport& report, ReportOptions opts = {});

std::string report_string(const Protest& tool, const ProtestReport& report,
                          ReportOptions opts = {});

}  // namespace protest
