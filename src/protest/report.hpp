// The tool's human-readable output — the deliverable list of sect. 1:
// signal probability per node, detection probability per fault, required
// pattern counts for a (d, e) grid, and (optionally) the optimized input
// tuple.  Rendered as aligned text; CLI and bench consumers share it.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "protest/protest.hpp"

namespace protest {

struct ReportOptions {
  bool signal_probabilities = true;   ///< per-node p1 + observability
  bool fault_list = true;             ///< per-fault detection probability
  std::size_t max_fault_rows = 40;    ///< 0 = all (hardest first)
  /// Grids for the required-pattern-count table.  Owned vectors (callers
  /// used to pass spans that silently dangled on temporaries); the
  /// defaults are the paper's (d, e) combinations.
  std::vector<double> d_grid = {1.0, 0.98};
  std::vector<double> e_grid = {0.95, 0.98, 0.999};
};

/// Writes the full testability report for one analysis run.
void write_report(std::ostream& out, const Protest& tool,
                  const ProtestReport& report, ReportOptions opts = {});

std::string report_string(const Protest& tool, const ProtestReport& report,
                          ReportOptions opts = {});

/// Session-API equivalents: render an AnalysisResult (artifacts are
/// computed lazily as the report needs them).
void write_report(std::ostream& out, const AnalysisResult& result,
                  ReportOptions opts = {});

std::string report_string(const AnalysisResult& result,
                          ReportOptions opts = {});

}  // namespace protest
