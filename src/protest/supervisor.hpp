// Supervised multi-process serving: crash-isolated workers behind a
// correlating router.
//
// `protest serve --workers N` splits the daemon into a SUPERVISOR (this
// class) and N WORKER processes, each a full single-process service
// (`protest __serve-worker`) speaking the ordinary NDJSON protocol over
// a pipe pair.  The wire format is already request/response with client
// ids, so the router is a correlating multiplexer: it rewrites client
// ids to internal ids on the way in, demultiplexes worker stdout by id
// on the way out, and rewrites back.  Netlists are PLACED: a registry
// name hashes to one worker (worker_for_netlist, a pure rendezvous
// hash), and every verb that names a netlist routes to its home worker —
// sessions never split across processes, so cache locality and the
// byte-identity guarantees of the single-process service carry over
// verb by verb.
//
// Failure is a first-class input:
//
//  - CRASH: a worker that dies (EOF on its stdout) fails every request
//    in flight on it.  Idempotent read verbs (analyze / perturb / lint /
//    stats) are RETRIED once on the restarted worker — restart replays
//    the placement table's load_netlist requests first, so the retry
//    lands on a worker that knows the netlist.  Non-idempotent verbs
//    (optimize, load_netlist, submit, job control) answer a structured
//    `worker_lost` error immediately: never a hang, never a dropped
//    connection.
//  - RESTART: crashed workers respawn with capped exponential backoff
//    (util/backoff.hpp); after `max_restarts` consecutive failures the
//    slot is abandoned and its requests answer `worker_lost`.
//  - WEDGE: the supervisor heartbeats each worker (an inline `stats`
//    ping — workers serve pipelined, so heartbeats answer even while a
//    long Monte-Carlo runs).  A worker silent past the heartbeat timeout
//    is killed and takes the crash path.  This is what catches a stalled
//    reader (fault injection: stall@verb) that an EOF check never would.
//  - GARBAGE: a worker line that doesn't parse as a response head is
//    protocol corruption; the worker is killed and takes the crash path
//    (pending requests retry or answer worker_lost) — corrupted output
//    is never forwarded to a client.
//  - DEADLINE: `deadline_ms` rides through to the worker, whose
//    CancelToken checkpoints answer `deadline_exceeded` (service.hpp).
//    The supervisor adds a BACKSTOP: deadline + grace after forwarding,
//    the pending is abandoned and answered `deadline_exceeded` locally —
//    so even a wedged worker cannot hang a deadlined request; its late
//    response is dropped by the demultiplexer.
//
// Job tickets get GLOBAL ids mapped to (worker, local id, generation).
// A restart bumps the generation, so tickets on the dead process answer
// `state:"failed"` with a worker_lost error from then on — they survive
// the restart as observable failures, never as orphans.  `wait` is
// implemented as a supervisor-side poll loop so a long wait never blocks
// the worker's inline verb lane (which heartbeats share).
//
// `shutdown` drains: outstanding requests get their responses (counted
// as drained_requests), every worker receives its own shutdown and is
// reaped, stragglers are killed.  Supervisor state — worker pids,
// generations, restarts, retry/timeout/wedge/garbage counters — is
// surfaced through the unnamed `stats` verb under "supervisor".
//
// The Supervisor is a ServiceEndpoint: both serve front ends (stdio and
// TCP, serial and pipelined) serve it unchanged.  handle_line is
// synchronous per call — concurrency comes from the front end's
// pipelined dispatch slots and per-connection threads, exactly as with
// the in-process service.
//
// POSIX-only (pipes + posix_spawn); supervisor_supported() reports
// availability, and construction throws ServiceError("unsupported")
// elsewhere.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "protest/service.hpp"
#include "util/backoff.hpp"

namespace protest {

/// Pure placement function: which of `workers` processes owns `name`.
/// Rendezvous (highest-random-weight) hashing over FNV-1a fingerprints:
/// deterministic across runs and platforms (tests pin specific names),
/// and adding a worker moves only the names that rehome to it.
unsigned worker_for_netlist(std::string_view name, unsigned workers);

/// The per-(name, worker) fingerprint behind worker_for_netlist —
/// exposed so tests can check the argmax property directly.
std::uint64_t placement_fingerprint(std::string_view name, unsigned worker);

struct SupervisorOptions {
  unsigned workers = 2;            ///< worker process count (min 1)
  unsigned max_restarts = 5;       ///< consecutive failures before a slot is abandoned
  BackoffPolicy backoff;           ///< restart delay schedule
  std::chrono::milliseconds heartbeat_interval{500};
  /// Silence longer than this marks a worker wedged (clamped to at least
  /// twice the interval so one late beat never kills a healthy worker).
  std::chrono::milliseconds heartbeat_timeout{2500};
  /// Backstop slack past a request's own deadline_ms before the
  /// supervisor abandons the pending and answers deadline_exceeded.
  std::chrono::milliseconds deadline_grace{500};
  /// Pipelined dispatch slots inside each worker (>=1; keeps the inline
  /// verb lane — and with it heartbeats — responsive during long work).
  std::size_t worker_inflight = 4;
  /// Worker executable.  "" resolves PROTEST_BIN, then /proc/self/exe.
  std::string worker_binary;
  /// Extra argv appended to every worker's `__serve-worker --inflight N`
  /// command line (e.g. --cap / --threads pass-through).
  std::vector<std::string> worker_args;
  /// Fault-injection spec forwarded (via PROTEST_FAULT_INJECT) to
  /// GENERATION-0 workers only — restarted workers run clean, so a
  /// scripted fault conversation converges and its counters are exact.
  std::string fault_spec;
};

/// Live counter snapshot (also serialized under stats.supervisor).
struct SupervisorCounters {
  std::uint64_t restarts = 0;      ///< worker respawns performed
  std::uint64_t retries = 0;       ///< idempotent requests re-forwarded
  std::uint64_t timeouts = 0;      ///< deadline_exceeded answers (worker + backstop)
  std::uint64_t worker_lost = 0;   ///< requests answered worker_lost
  std::uint64_t wedges = 0;        ///< workers killed for missed heartbeats
  std::uint64_t garbage = 0;       ///< corrupt worker lines observed
  std::uint64_t drained = 0;       ///< in-flight requests completed during shutdown drain
};

class Supervisor : public ServiceEndpoint {
 public:
  /// Spawns the worker fleet (throws ServiceError on spawn failure or
  /// unsupported platforms).  `log` receives one line per lifecycle
  /// event (spawn, crash, wedge, restart, abandon); it must outlive the
  /// supervisor.
  Supervisor(SupervisorOptions options, std::ostream& log);
  ~Supervisor() override;

  std::string handle_line(std::string_view line) override;
  bool shutdown_requested() const override;

  SupervisorCounters counters() const;
  const SupervisorOptions& options() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// True when this build can run the supervisor (POSIX pipes + spawn).
bool supervisor_supported();

}  // namespace protest
