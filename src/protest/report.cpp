#include "protest/report.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "analysis/table.hpp"
#include "testlen/test_length.hpp"

namespace protest {

void write_report(std::ostream& out, const Protest& tool,
                  const ProtestReport& report, ReportOptions opts) {
  const Netlist& net = tool.netlist();
  out << "PROTEST testability report\n"
      << "==========================\n"
      << "circuit: " << net.inputs().size() << " inputs, "
      << net.outputs().size() << " outputs, " << net.num_gates() << " gates; "
      << tool.faults().size() << " faults analyzed\n";
  if (!report.engine.empty())
    out << "signal-probability engine: " << report.engine << "\n";

  out << "\ninput signal probabilities:\n ";
  const auto inputs = net.inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    out << ' ' << net.name_of(inputs[i]) << '=' << fmt(report.input_probs[i], 3);
    if (i % 8 == 7 && i + 1 < inputs.size()) out << "\n ";
  }
  out << '\n';

  if (opts.signal_probabilities) {
    out << "\nsignal probabilities and observabilities:\n";
    TextTable t({"node", "P(1)", "s(x)"});
    for (NodeId n = 0; n < net.size(); ++n) {
      if (net.is_input(n)) continue;
      t.add_row({net.name_of(n), fmt(report.signal_probs[n], 4),
                 fmt(report.observability.stem[n], 4)});
    }
    out << t.str();
  }

  if (opts.fault_list) {
    out << "\nfault detection probabilities (hardest first):\n";
    std::vector<std::size_t> order(tool.faults().size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return report.detection_probs[a] < report.detection_probs[b];
    });
    const std::size_t rows = opts.max_fault_rows == 0
                                 ? order.size()
                                 : std::min(opts.max_fault_rows, order.size());
    TextTable t({"fault", "P_detect"});
    for (std::size_t i = 0; i < rows; ++i)
      t.add_row({to_string(net, tool.faults()[order[i]]),
                 fmt(report.detection_probs[order[i]], 6)});
    out << t.str();
    if (rows < order.size())
      out << "(" << order.size() - rows << " easier faults omitted)\n";
  }

  static constexpr double kDefaultD[] = {1.0, 0.98};
  static constexpr double kDefaultE[] = {0.95, 0.98, 0.999};
  const std::span<const double> ds =
      opts.d_grid.empty() ? std::span<const double>(kDefaultD) : opts.d_grid;
  const std::span<const double> es =
      opts.e_grid.empty() ? std::span<const double>(kDefaultE) : opts.e_grid;
  out << "\nrequired random-pattern counts:\n";
  TextTable t({"d", "e", "N"});
  for (double d : ds)
    for (double e : es) {
      const std::uint64_t n = required_test_length(report.detection_probs, d, e);
      t.add_row({fmt(d, 2), fmt(e, 3),
                 n == kInfiniteTestLength ? "unreachable" : fmt_int(n)});
    }
  out << t.str();
}

std::string report_string(const Protest& tool, const ProtestReport& report,
                          ReportOptions opts) {
  std::ostringstream os;
  write_report(os, tool, report, opts);
  return os.str();
}

}  // namespace protest
