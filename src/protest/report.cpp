#include "protest/report.hpp"

#include <algorithm>
#include <ostream>
#include <span>
#include <sstream>

#include "analysis/table.hpp"
#include "testlen/test_length.hpp"

namespace protest {
namespace {

/// The shared renderer; both public entry points flatten to this view.
void write_report_impl(std::ostream& out, const Netlist& net,
                       std::span<const Fault> faults, const std::string& engine,
                       std::span<const double> input_probs,
                       std::span<const double> signal_probs,
                       std::span<const double> stem_observability,
                       std::span<const double> detection_probs,
                       const ReportOptions& opts) {
  out << "PROTEST testability report\n"
      << "==========================\n"
      << "circuit: " << net.inputs().size() << " inputs, "
      << net.outputs().size() << " outputs, " << net.num_gates() << " gates; "
      << faults.size() << " faults analyzed\n";
  if (!engine.empty())
    out << "signal-probability engine: " << engine << "\n";

  out << "\ninput signal probabilities:\n ";
  const auto inputs = net.inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    out << ' ' << net.name_of(inputs[i]) << '=' << fmt(input_probs[i], 3);
    if (i % 8 == 7 && i + 1 < inputs.size()) out << "\n ";
  }
  out << '\n';

  if (opts.signal_probabilities) {
    out << "\nsignal probabilities and observabilities:\n";
    TextTable t({"node", "P(1)", "s(x)"});
    for (NodeId n = 0; n < net.size(); ++n) {
      if (net.is_input(n)) continue;
      t.add_row({net.name_of(n), fmt(signal_probs[n], 4),
                 fmt(stem_observability[n], 4)});
    }
    out << t.str();
  }

  if (opts.fault_list) {
    out << "\nfault detection probabilities (hardest first):\n";
    std::vector<std::size_t> order(faults.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return detection_probs[a] < detection_probs[b];
    });
    const std::size_t rows = opts.max_fault_rows == 0
                                 ? order.size()
                                 : std::min(opts.max_fault_rows, order.size());
    TextTable t({"fault", "P_detect"});
    for (std::size_t i = 0; i < rows; ++i)
      t.add_row({to_string(net, faults[order[i]]),
                 fmt(detection_probs[order[i]], 6)});
    out << t.str();
    if (rows < order.size())
      out << "(" << order.size() - rows << " easier faults omitted)\n";
  }

  out << "\nrequired random-pattern counts:\n";
  TextTable t({"d", "e", "N"});
  for (double d : opts.d_grid)
    for (double e : opts.e_grid) {
      const std::uint64_t n = required_test_length(detection_probs, d, e);
      t.add_row({fmt(d, 2), fmt(e, 3),
                 n == kInfiniteTestLength ? "unreachable" : fmt_int(n)});
    }
  out << t.str();
}

}  // namespace

void write_report(std::ostream& out, const Protest& tool,
                  const ProtestReport& report, ReportOptions opts) {
  write_report_impl(out, tool.netlist(), tool.faults(), report.engine,
                    report.input_probs, report.signal_probs,
                    report.observability.stem, report.detection_probs, opts);
}

std::string report_string(const Protest& tool, const ProtestReport& report,
                          ReportOptions opts) {
  std::ostringstream os;
  write_report(os, tool, report, std::move(opts));
  return os.str();
}

void write_report(std::ostream& out, const AnalysisResult& result,
                  ReportOptions opts) {
  write_report_impl(out, result.netlist(), result.faults(),
                    std::string(result.engine()), result.input_probs(),
                    result.signal_probs(), result.observability().stem,
                    result.detection_probs(), opts);
}

std::string report_string(const AnalysisResult& result, ReportOptions opts) {
  std::ostringstream os;
  write_report(os, result, std::move(opts));
  return os.str();
}

}  // namespace protest
