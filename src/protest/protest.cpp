#include "protest/protest.hpp"

#include "optimize/objective.hpp"
#include "protest/service.hpp"

namespace protest {
namespace {

ProtestReport report_from(const AnalysisResult& result) {
  ProtestReport r;
  r.engine = std::string(result.engine());
  r.input_probs = result.input_probs();
  r.signal_probs = result.signal_probs();
  r.observability = result.observability();
  r.detection_probs = result.detection_probs();
  return r;
}

}  // namespace

Protest::Protest(const Netlist& net, ProtestOptions opts) {
  // The facade is a single-netlist client of the service layer: its
  // session lives in a private registry under the name "default", runs on
  // the service's shared executor, and `net` stays caller-owned (external
  // registration — no copy, netlist() identity preserved).
  ServiceConfig cfg;
  cfg.parallel = opts.parallel;
  service_ = std::make_unique<ProtestService>(std::move(cfg));
  service_->registry().register_external("default", net, std::move(opts));
  session_ = service_->registry().open("default");
}

Protest::~Protest() = default;
Protest::Protest(Protest&&) noexcept = default;

ProtestReport Protest::analyze(std::span<const double> input_probs) const {
  return report_from(session_->analyze(input_probs));
}

std::vector<ProtestReport> Protest::analyze_batch(
    std::span<const InputProbs> input_tuples) const {
  std::vector<ProtestReport> reports;
  reports.reserve(input_tuples.size());
  for (const AnalysisResult& r : session_->analyze_batch(input_tuples))
    reports.push_back(report_from(r));
  return reports;
}

std::uint64_t Protest::test_length(const ProtestReport& report, double d,
                                   double e) const {
  return required_test_length(report.detection_probs, d, e);
}

HillClimbResult Protest::optimize(std::uint64_t n_parameter,
                                  HillClimbOptions opts) const {
  // The evaluator's session serializes on its own mutex, so it must not
  // share the facade session's engine instance — a clone (same type and
  // parameters, no shared mutable state) keeps concurrent analyze() /
  // optimize() callers race-free.
  const ObjectiveEvaluator eval(
      std::shared_ptr<const SignalProbEngine>(session_->engine().clone()),
      session_->faults(), n_parameter, options().observability,
      options().parallel);
  return optimize_input_probs(eval, opts);
}

PatternSet Protest::generate_patterns(std::span<const double> input_probs,
                                      std::size_t num_patterns,
                                      std::uint64_t seed) const {
  return PatternSet::weighted(input_probs, num_patterns, seed);
}

FaultSimResult Protest::fault_simulate(const PatternSet& ps,
                                       FaultSimMode mode) const {
  return simulate_faults(netlist(), faults(), ps, mode);
}

}  // namespace protest
