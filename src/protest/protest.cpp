#include "protest/protest.hpp"

#include "observe/detect.hpp"
#include "optimize/objective.hpp"

namespace protest {
namespace {

std::vector<Fault> make_fault_list(const Netlist& net, FaultUniverse u) {
  switch (u) {
    case FaultUniverse::Structural: return structural_fault_list(net);
    case FaultUniverse::Full: return full_fault_list(net);
    case FaultUniverse::Collapsed: return collapsed_fault_list(net);
  }
  return structural_fault_list(net);
}

}  // namespace

Protest::Protest(const Netlist& net, ProtestOptions opts)
    : net_(net),
      opts_(opts),
      faults_(make_fault_list(net, opts.universe)),
      estimator_(net, opts.estimator) {}

ProtestReport Protest::analyze(std::span<const double> input_probs) const {
  ProtestReport r;
  r.input_probs.assign(input_probs.begin(), input_probs.end());
  r.signal_probs = estimator_.signal_probs(input_probs);
  r.observability =
      compute_observability(net_, r.signal_probs, opts_.observability);
  r.detection_probs =
      detection_probs(net_, faults_, r.signal_probs, r.observability);
  return r;
}

std::uint64_t Protest::test_length(const ProtestReport& report, double d,
                                   double e) const {
  return required_test_length(report.detection_probs, d, e);
}

HillClimbResult Protest::optimize(std::uint64_t n_parameter,
                                  HillClimbOptions opts) const {
  const ObjectiveEvaluator eval(net_, faults_, n_parameter, opts_.estimator,
                                opts_.observability);
  return optimize_input_probs(eval, opts);
}

PatternSet Protest::generate_patterns(std::span<const double> input_probs,
                                      std::size_t num_patterns,
                                      std::uint64_t seed) const {
  return PatternSet::weighted(input_probs, num_patterns, seed);
}

FaultSimResult Protest::fault_simulate(const PatternSet& ps,
                                       FaultSimMode mode) const {
  return simulate_faults(net_, faults_, ps, mode);
}

}  // namespace protest
