#include "protest/protest.hpp"

#include "observe/detect.hpp"
#include "optimize/objective.hpp"

namespace protest {
namespace {

std::vector<Fault> make_fault_list(const Netlist& net, FaultUniverse u) {
  switch (u) {
    case FaultUniverse::Structural: return structural_fault_list(net);
    case FaultUniverse::Full: return full_fault_list(net);
    case FaultUniverse::Collapsed: return collapsed_fault_list(net);
  }
  return structural_fault_list(net);
}

std::shared_ptr<const SignalProbEngine> make_tool_engine(
    const Netlist& net, const ProtestOptions& opts) {
  EngineConfig cfg;
  cfg.protest = opts.estimator;
  cfg.monte_carlo = opts.monte_carlo;
  cfg.bdd_node_limit = opts.bdd_node_limit;
  return make_engine(opts.engine, net, cfg);
}

}  // namespace

Protest::Protest(const Netlist& net, ProtestOptions opts)
    : net_(net),
      opts_(std::move(opts)),
      faults_(make_fault_list(net, opts_.universe)),
      engine_(make_tool_engine(net, opts_)) {}

ProtestReport Protest::make_report(std::span<const double> input_probs,
                                   std::vector<double> signal_probs) const {
  ProtestReport r;
  r.engine = std::string(engine_->name());
  r.input_probs.assign(input_probs.begin(), input_probs.end());
  r.signal_probs = std::move(signal_probs);
  r.observability =
      compute_observability(net_, r.signal_probs, opts_.observability);
  r.detection_probs =
      detection_probs(net_, faults_, r.signal_probs, r.observability);
  return r;
}

ProtestReport Protest::analyze(std::span<const double> input_probs) const {
  return make_report(input_probs, engine_->signal_probs(input_probs));
}

std::vector<ProtestReport> Protest::analyze_batch(
    std::span<const InputProbs> input_tuples) const {
  std::vector<std::vector<double>> probs =
      engine_->signal_probs_batch(input_tuples);
  std::vector<ProtestReport> reports;
  reports.reserve(probs.size());
  for (std::size_t i = 0; i < probs.size(); ++i)
    reports.push_back(make_report(input_tuples[i], std::move(probs[i])));
  return reports;
}

std::uint64_t Protest::test_length(const ProtestReport& report, double d,
                                   double e) const {
  return required_test_length(report.detection_probs, d, e);
}

HillClimbResult Protest::optimize(std::uint64_t n_parameter,
                                  HillClimbOptions opts) const {
  const ObjectiveEvaluator eval(engine_, faults_, n_parameter,
                                opts_.observability);
  return optimize_input_probs(eval, opts);
}

PatternSet Protest::generate_patterns(std::span<const double> input_probs,
                                      std::size_t num_patterns,
                                      std::uint64_t seed) const {
  return PatternSet::weighted(input_probs, num_patterns, seed);
}

FaultSimResult Protest::fault_simulate(const PatternSet& ps,
                                       FaultSimMode mode) const {
  return simulate_faults(net_, faults_, ps, mode);
}

}  // namespace protest
