// The session-oriented analysis API.
//
// An AnalysisSession owns one signal-probability engine plus everything
// expensive that outlives a single query: the engine's per-netlist plan
// (cone topology, conditioning-set candidates — cached inside the engine),
// the tool fault list, and an LRU cache of evaluated input tuples.
// Callers describe which artifacts they want with an AnalysisRequest and
// receive an AnalysisResult whose artifacts are computed lazily and
// memoized — asking only for signal probabilities never pays for
// observability, detection probabilities, SCOAP/STAFAN measures or the
// test-length grid.
//
//   AnalysisSession session(net);
//   AnalysisRequest req;
//   req.test_lengths = true;                       // opt into the (d,e) grid
//   AnalysisResult r = session.analyze(probs, req);
//   r.detection_probs();                           // computed on first access
//   std::string json = r.to_json();                // machine-readable result
//
// Repeated tuples are cache hits (the same shared result state comes
// back); near-duplicate tuples — differing from a cached tuple in exactly
// one coordinate — are routed through the engine's incremental path, which
// re-evaluates only the changed input's fanout cone.  perturb() exposes
// that path explicitly and is the backend for the hill climber's
// per-coordinate neighborhood sweeps.  Incremental results are bit-for-bit
// identical to from-scratch evaluation (see SignalProbEngine::
// signal_probs_perturb), so the cache never mixes approximation levels.
//
// Thread safety: a session is safe for CONCURRENT callers.  analyze(),
// perturb(), perturb_screen() and the sweep serialize on an internal
// mutex (the session owns one engine, and engines are single-threaded by
// contract), and lazy artifact materialization on shared AnalysisResults
// is guarded per result — two threads asking the same result for
// detection probabilities compute them once.  Concurrency therefore gives
// SAFETY, not speed-up, at the query level; throughput comes from inside
// a query: the Monte-Carlo engine shards its patterns across threads, and
// perturb_screen_sweep() fans a whole neighborhood across per-worker
// engine clones (SessionOptions::parallel sizes both).  The netlist must
// outlive the session and every result obtained from it.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "lint/fault_analyze.hpp"
#include "measures/scoap.hpp"
#include "measures/stafan.hpp"
#include "observe/observability.hpp"
#include "prob/engine.hpp"
#include "sim/fault.hpp"
#include "util/thread_pool.hpp"

namespace protest {

class ParallelBatchEvaluator;

namespace detail {
struct SessionShared;  ///< netlist + engine + faults + options (internal)
}  // namespace detail

enum class FaultUniverse { Structural, Full, Collapsed };

/// Session construction knobs; the engine-related fields mirror
/// EngineConfig, the rest size the session's own caches and samplers.
struct SessionOptions {
  ProtestParams estimator;
  ObservabilityOptions observability;
  FaultUniverse universe = FaultUniverse::Structural;
  /// Signal-probability engine (a make_engine registry key).  The paper's
  /// estimator is the default; "naive", "exact-bdd", "exact-enum" and
  /// "monte-carlo" swap in the alternatives for cross-validation.
  std::string engine = "protest";
  MonteCarloEngineParams monte_carlo;     ///< used when engine=="monte-carlo"
  std::size_t bdd_node_limit = 2'000'000; ///< used when engine=="exact-bdd"
  /// LRU bound on cached evaluated tuples (0 disables the result cache;
  /// perturb() still works, it just never finds cached bases for
  /// near-duplicate analyze() calls).
  std::size_t max_cached_results = 32;
  std::size_t stafan_patterns = 10'000;   ///< STAFAN artifact sample size
  std::uint64_t stafan_seed = 1;          ///< STAFAN artifact pattern seed
  /// Worker count for everything the session parallelizes: the sharded
  /// Monte-Carlo engine (when engine == "monte-carlo") and the
  /// perturb_screen_sweep neighborhood fan-out.  Results are bit-identical
  /// for every value; 1 is the serial path.
  ParallelConfig parallel;
};

/// Selects the artifacts a query wants.  Requested artifacts are
/// materialized before analyze() returns and included in to_json() /
/// write_report(); everything else remains available lazily through the
/// result's accessors.  Signal probabilities are always computed — they
/// are the base every other artifact derives from.
struct AnalysisRequest {
  bool observability = true;
  bool detection_probs = true;
  bool test_lengths = false;  ///< the (d_grid x e_grid) pattern counts
  bool scoap = false;         ///< SCOAP measures (input-independent)
  bool stafan = false;        ///< STAFAN measures (simulation-sampled)
  /// Static per-fault detection-probability intervals (lint/fault_analyze).
  /// Also disciplines the serialized detection probabilities: estimates
  /// are clamped into their sound [lo, hi], proven-undetectable faults
  /// report exactly 0.
  bool fault_bounds = false;
  std::vector<double> d_grid = {1.0, 0.98};
  std::vector<double> e_grid = {0.95, 0.98, 0.999};

  /// Just signal probabilities — the cheapest request.
  static AnalysisRequest minimal();
  /// Every artifact including SCOAP/STAFAN and the test-length grid.
  static AnalysisRequest everything();
};

/// One row of the artifact-name vocabulary: the wire/CLI name of an
/// optional artifact and the AnalysisRequest flag it selects.
struct ArtifactName {
  std::string_view name;
  bool AnalysisRequest::* flag;
};

/// THE artifact name⇄flag table, shared by every front end — the CLI's
/// `--artifacts` comma list and the service's JSON `artifacts` array both
/// decode through it (and the service encoder iterates it), so an
/// artifact added here is automatically spellable on every surface
/// instead of silently missing from one.  "signal_probs" is not listed:
/// it is always computed (the base every other artifact derives from) and
/// set_artifact() accepts it as a no-op.
std::span<const ArtifactName> artifact_name_table();

/// Sets the flag named `name` on `req`; returns false for unknown names
/// (true for the always-on "signal_probs").
bool set_artifact(AnalysisRequest& req, std::string_view name);

/// Space-separated list of every accepted name, "signal_probs" first —
/// the vocabulary both front ends print in their unknown-artifact errors.
std::string known_artifact_names();

class JsonWriter;

/// Counters for the session's caching behavior (cumulative), plus a
/// point-in-time view of what is resident.  stats() fills both.
struct SessionStats {
  std::size_t analyze_calls = 0;
  std::size_t cache_hits = 0;         ///< exact-tuple cache hits
  std::size_t incremental_evals = 0;  ///< exact perturb-path evaluations
  /// Frozen-selection screening evals.  The first screen after the base
  /// tuple changes may include a hidden full select run inside the engine
  /// (re-anchoring the frozen selections to the new base) — one screen
  /// per base is occasionally netlist-sized, the rest are cone-sized.
  std::size_t screen_evals = 0;
  std::size_t full_evals = 0;         ///< from-scratch engine evaluations
  /// Tuples currently held by the LRU result cache (snapshot, not
  /// cumulative): together with full/incremental counts this is the
  /// resident plan state a service 'stats' query reports.
  std::size_t resident_results = 0;
  /// Static-analysis summary (src/lint): how many lint runs this session
  /// has recorded and the LAST report's severity totals — the service's
  /// `lint` verb and `load_netlist` strict mode both record here.
  std::size_t lint_runs = 0;
  std::size_t lint_errors = 0;
  std::size_t lint_warnings = 0;
  std::size_t lint_infos = 0;

  /// Misses = analyze calls that had to evaluate (full or incremental).
  std::size_t cache_misses() const { return analyze_calls - cache_hits; }

  /// Writes the counters as an object in value position (the wire form
  /// the daemon's `stats` verb embeds).
  void write(JsonWriter& w) const;
  std::string to_json(int indent = 2) const;
};

/// Handle to one analyzed input tuple.  Cheap to copy (shared state);
/// artifacts are memoized in the shared state, so computing one through
/// any copy benefits every other holder, including the session cache.
class AnalysisResult {
 public:
  /// Shared memoization record (opaque; defined in session.cpp).
  struct State;

  AnalysisResult() = default;  ///< empty handle; accessors throw

  bool valid() const { return state_ != nullptr; }
  const Netlist& netlist() const;
  std::string_view engine() const;
  const AnalysisRequest& request() const { return request_; }
  const std::vector<Fault>& faults() const;

  const std::vector<double>& input_probs() const;
  const std::vector<double>& signal_probs() const;
  const Observability& observability() const;         ///< lazy, memoized
  const std::vector<double>& detection_probs() const; ///< lazy, memoized
  const ScoapMeasures& scoap() const;                 ///< lazy, session-shared
  const StafanMeasures& stafan() const;               ///< lazy, memoized
  const FaultAnalysis& fault_bounds() const;          ///< lazy, memoized

  /// Smallest N with P_{F_d} >= e for this tuple (paper sect. 5).
  std::uint64_t test_length(double d, double e) const;

  /// Serializes the requested artifacts (computing any that are missing).
  /// Unreachable test lengths serialize as null.  indent = 0 for compact.
  std::string to_json(int indent = 2) const;

 private:
  friend class AnalysisSession;
  AnalysisResult(std::shared_ptr<State> state, AnalysisRequest request);

  std::shared_ptr<State> state_;
  AnalysisRequest request_;
};

class AnalysisSession {
 public:
  explicit AnalysisSession(const Netlist& net, SessionOptions opts = {});

  /// Evaluates through a caller-provided engine (must be built on `net`)
  /// and an explicit fault list, ignoring opts.engine / opts.universe.
  /// This is how the ObjectiveEvaluator shares its engine and fault list
  /// with a session.
  AnalysisSession(const Netlist& net,
                  std::shared_ptr<const SignalProbEngine> engine,
                  std::vector<Fault> faults, SessionOptions opts = {});

  ~AnalysisSession();
  AnalysisSession(AnalysisSession&&) noexcept;

  const Netlist& netlist() const;
  const SignalProbEngine& engine() const;
  std::shared_ptr<const SignalProbEngine> engine_ptr() const;
  const std::vector<Fault>& faults() const;
  const SessionOptions& options() const;
  /// Snapshot of the cumulative counters (by value: safe to call while
  /// other threads query the session).
  SessionStats stats() const;

  /// Records one lint run's severity totals into the stats (the latest
  /// run wins; lint_runs counts them all).  Thread-safe.
  void record_lint(std::size_t errors, std::size_t warnings,
                   std::size_t infos);

  /// Analyzes one input tuple.  Exact repeats return the cached shared
  /// result; near-duplicates of a cached tuple go through the incremental
  /// path when the engine supports it; everything else is a full engine
  /// evaluation.  All three produce identical numbers.
  AnalysisResult analyze(std::span<const double> input_probs,
                         AnalysisRequest request = {});

  /// analyze() for every tuple, in order.  Unlike the engine-level
  /// signal_probs_batch (which may share conditioning selections across
  /// the batch as an approximation), every element here has exact
  /// single-tuple semantics — the session's plan cache already amortizes
  /// the setup cost that batching used to recover.
  std::vector<AnalysisResult> analyze_batch(std::span<const InputProbs> tuples,
                                            AnalysisRequest request = {});

  /// Incremental re-analysis: the tuple equal to `base` except input
  /// `input_index` carries `new_p`.  Only the changed input's fanout cone
  /// is re-evaluated (for incremental engines); the result is bit-for-bit
  /// what analyze() would return for the perturbed tuple and is inserted
  /// into the cache under that tuple.  The request is inherited from
  /// `base`.  `base` must come from this session and have exact fidelity
  /// (a perturb_screen() product is rejected — the cache must never mix
  /// fidelities).
  AnalysisResult perturb(const AnalysisResult& base, std::size_t input_index,
                         double new_p);

  /// Screening-fidelity perturb for neighborhood sweeps: engines with
  /// tuple-dependent conditioning selections reuse the base tuple's sets
  /// (PerturbMode::FrozenSelection) — bit-for-bit the numbers a batched
  /// evaluation anchored at `base` would produce, at eval-only cost over
  /// the changed input's fanout cone.  The result is NOT inserted into
  /// the session cache (the cache holds exact-fidelity tuples only); use
  /// perturb()/analyze() to confirm a screened candidate exactly.
  AnalysisResult perturb_screen(const AnalysisResult& base,
                                std::size_t input_index, double new_p);

  /// perturb_screen() for every value of `values` (same base, same
  /// coordinate) — the hill climber's per-coordinate neighborhood in one
  /// call.  With > 1 configured worker the candidates fan out across
  /// per-worker engine clones, and the requested artifacts (observability,
  /// detection probabilities) are materialized inside the workers, so the
  /// whole screening pipeline parallelizes.  Element i is bit-for-bit
  /// perturb_screen(base, input_index, values[i]) for any thread count.
  /// Engines that parallelize internally (sharded Monte-Carlo) sweep
  /// serially — each candidate already uses every core.
  std::vector<AnalysisResult> perturb_screen_sweep(
      const AnalysisResult& base, std::size_t input_index,
      std::span<const double> values);

  void clear_cache();

 private:
  class ResultCache;

  AnalysisResult wrap(std::shared_ptr<AnalysisResult::State> state,
                      const AnalysisRequest& request);
  /// One frozen-selection screen through `engine` (the session's own or a
  /// sweep worker's clone): evaluate, build the screening-fidelity state,
  /// materialize the base request's artifacts.  The single body behind
  /// perturb_screen and both perturb_screen_sweep branches.
  AnalysisResult screen_one(const SignalProbEngine& engine,
                            const AnalysisResult& base,
                            std::size_t input_index, double new_p);
  void check_perturb_args(const AnalysisResult& base, std::size_t input_index,
                          double new_p) const;

  std::shared_ptr<detail::SessionShared> shared_;
  std::unique_ptr<ResultCache> cache_;
  SessionStats stats_;
  /// Serializes cache + stats + engine access across concurrent callers
  /// (unique_ptr so the session stays movable).
  std::unique_ptr<std::mutex> mu_;
  /// Lazily-built per-worker engine clones for perturb_screen_sweep.
  std::unique_ptr<ParallelBatchEvaluator> sweep_eval_;
};

}  // namespace protest
