// The async job layer: every service verb as a ticketed, cancellable job.
//
// The service API up to PR 4 was strictly synchronous — a Monte-Carlo
// analyze or an optimize hill climb blocked its caller (and, in `protest
// serve`, the whole request stream) until it finished.  JobManager turns
// any unit of work into a TICKET: submit() enqueues a closure and
// immediately returns a JobTicket (id + state); a small pool of job
// worker threads drains the queue; poll()/wait() observe progress and
// retrieve the finished payload; cancel() stops the work cooperatively at
// its next checkpoint (see util/cancel.hpp) — a queued job is cancelled
// before it ever runs, a running job's CancelToken is flipped and the
// work unwinds with OperationCancelled at the next shard/sweep boundary.
//
// State machine (one-way):
//
//   queued ──> running ──> done      (fn returned a payload)
//     │           ├──────> failed    (fn threw; error recorded)
//     │           └──────> cancelled (fn threw OperationCancelled)
//     └─────────────────> cancelled  (cancel() before a worker claimed it)
//
// A CANCELLED job never carries a payload: cancellation that loses the
// race with completion simply leaves the job done (the work finished; the
// result is valid), and cancellation that wins discards everything the
// job computed.
//
// The payload is an opaque string.  The service layer stores the inner
// ServiceResponse serialized compactly, which is what lets poll/wait
// splice it back into their responses BYTE-IDENTICALLY to the synchronous
// verb (asserted in tests/service_test.cpp) — JobManager itself knows
// nothing about the protocol and has no dependency on service.hpp.
//
// Finished jobs are RETAINED so repeated poll()s keep answering — but
// bounded: beyond `max_retained` finished jobs the oldest are pruned on
// the next submit (their ids answer unknown thereafter), so a resident
// daemon fed submits forever cannot grow without bound — the same
// reasoning as the registry's resident-session cap.  Queued and running
// jobs are never pruned.
//
// Thread safety: every public member is safe for concurrent callers; the
// worker threads are spawned lazily on the first submit(), so a manager
// that never sees an async verb costs nothing.  The destructor cancels
// all unfinished jobs and joins the workers (running jobs unwind at their
// next checkpoint).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/cancel.hpp"

namespace protest {

enum class JobState { Queued, Running, Done, Failed, Cancelled };

/// Wire name ("queued", "running", "done", "failed", "cancelled").
std::string_view to_string(JobState state);

/// True for the terminal states (done/failed/cancelled).
bool job_finished(JobState state);

/// What submit() hands back: the id correlates every later poll/wait/
/// cancel with this job.
struct JobTicket {
  std::uint64_t id = 0;
  JobState state = JobState::Queued;
};

/// Snapshot of one job, as poll()/wait()/jobs() report it.
struct JobInfo {
  std::uint64_t id = 0;
  std::string label;   ///< caller-chosen (the service uses the inner verb)
  JobState state = JobState::Queued;
  std::string payload;  ///< set only when state == Done
  std::string error;    ///< set only when state == Failed
};

class JobManager {
 public:
  /// `num_workers` job threads drain the queue (0 is treated as 1).  This
  /// bounds how many jobs RUN concurrently; sessions and the shared
  /// executor below serialize their own critical sections, so workers
  /// beyond the number of distinct resident sessions mostly add overlap
  /// between one job's compute and another's setup/serialization.
  /// `max_retained` bounds FINISHED jobs kept for polling (0 = unbounded;
  /// see the header comment).
  explicit JobManager(unsigned num_workers = 2,
                      std::size_t max_retained = 1024);

  /// Cancels every unfinished job and joins the workers.
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Enqueues `fn` and returns its ticket immediately.  `fn` runs on a
  /// job worker under this job's CancelScope: checkpoints inside it
  /// (check_cancelled()) observe cancel() calls for this ticket.  A
  /// throwing fn marks the job failed; OperationCancelled marks it
  /// cancelled.
  JobTicket submit(std::string label, std::function<std::string()> fn);

  /// Snapshot of job `id`, or nullopt for unknown ids.  Never blocks.
  std::optional<JobInfo> poll(std::uint64_t id) const;

  /// Blocks until job `id` reaches a terminal state (or `timeout` expires,
  /// when given) and returns its snapshot — a timed-out wait returns the
  /// current, non-terminal snapshot, exactly like poll().  nullopt for
  /// unknown ids.
  std::optional<JobInfo> wait(
      std::uint64_t id,
      std::optional<std::chrono::milliseconds> timeout = std::nullopt);

  /// Requests cancellation of job `id`.  Returns true when the job was
  /// still unfinished (queued jobs flip to cancelled immediately; running
  /// jobs stop at their next checkpoint), false when it was unknown or
  /// already finished.
  bool cancel(std::uint64_t id);

  /// Snapshots of every job this manager has seen, in submission order.
  /// Payloads are omitted (poll the job you want the payload of).
  std::vector<JobInfo> jobs() const;

  /// Jobs not yet in a terminal state (queued + running).
  std::size_t num_pending() const;

  unsigned num_workers() const { return num_workers_; }
  std::size_t max_retained() const;

  /// cancel() for every unfinished job (the shutdown path).
  void cancel_all();

 private:
  struct Job;
  struct Impl;
  void worker_loop();

  unsigned num_workers_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace protest
