#include "protest/cli.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "analysis/json.hpp"
#include "analysis/table.hpp"
#include "circuits/zoo.hpp"
#include "lint/lint.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/dsl.hpp"
#include "netlist/tech.hpp"
#include "optimize/weighted_patterns.hpp"
#include "prob/engine.hpp"
#include "protest/protest.hpp"
#include "protest/service.hpp"
#include "protest/session.hpp"
#include "protest/supervisor.hpp"
#include "sim/scan.hpp"
#include "util/cancel.hpp"
#include "validate/fuzz.hpp"

namespace protest {
namespace {

struct Args {
  std::string command;
  std::string file;
  std::string engine = "protest";
  bool engine_set = false;
  bool json = false;
  bool artifacts_set = false;
  std::string artifacts;  ///< comma list for --artifacts
  double p = 0.5;
  double d = 0.98;
  double e = 0.98;
  std::uint64_t n = 10'000;
  unsigned sweeps = 4;
  std::size_t patterns = 1'000;
  std::uint64_t seed = 1;
  unsigned threads = 0;  ///< --threads: 0 = all hardware threads, 1 = serial
  bool threads_set = false;
  std::size_t cap = 8;   ///< --cap: serve's resident-session bound
  bool cap_set = false;
  unsigned port = 0;     ///< --port: serve over TCP instead of stdin/stdout
  bool port_set = false;
  /// --inflight: serve's pipelined dispatch slots (0 = serial, the
  /// default; N = out-of-order responses with reads stalling at N).
  std::size_t inflight = 0;
  bool inflight_set = false;
  /// --workers: supervised multi-process serve (crash-isolated worker
  /// processes behind a correlating router; protest/supervisor.hpp).
  unsigned workers = 0;
  bool workers_set = false;
  std::uint64_t heartbeat_ms = 500;  ///< --heartbeat-ms: worker ping cadence
  bool heartbeat_set = false;
  unsigned max_restarts = 5;  ///< --max-restarts: failures before abandon
  bool max_restarts_set = false;
  std::string fault_spec;  ///< --fault-inject: deterministic fault script
  bool fault_set = false;
  /// --deadline-ms: client-side wall-clock budget for analyze/optimize/
  /// scan — the work is cancelled at its next checkpoint past it.
  std::uint64_t deadline_ms = 0;
  bool deadline_set = false;
  /// Per-query value flags seen (--p/--d/--e/--n/--sweeps/--patterns/
  /// --seed) — rejected by commands that would silently ignore them.
  std::vector<std::string> query_flags;
  /// --passes: comma list of lint pass ids (lint only; empty = all).
  std::vector<std::string> lint_passes;
  bool passes_set = false;
  /// --faults: opt into the static fault-analysis passes (lint only).
  bool lint_faults = false;
  // fuzz-only flags (the differential validation harness, src/validate).
  bool quick = false;            ///< --quick: the PR-gating smoke tier
  std::size_t circuits = 0;      ///< --circuits: random-circuit count
  bool circuits_set = false;
  double alpha = 1e-6;           ///< --alpha: aggregate false-positive budget
  bool alpha_set = false;
  std::string corpus_dir;        ///< --corpus: repro artifacts land here
  bool corpus_set = false;
  std::string replay_file;       ///< --replay: re-run one repro artifact
  bool replay_set = false;
  bool inject = false;           ///< --inject: plant the deliberate bug
  std::string data_dir;          ///< --data: fixed .bench corpus directory
  bool data_set = false;
};

class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Comma-separated artifact names -> request.  Naming an artifact opts in;
/// artifacts not named are off (signal probabilities are always on — they
/// are the base of everything else).
AnalysisRequest parse_artifacts(const Args& a, double d, double e) {
  AnalysisRequest req;
  req.d_grid = {d};
  req.e_grid = {e};
  if (!a.artifacts_set) {
    req.test_lengths = true;  // the CLI default: the classic report set
    return req;
  }
  // Names resolve through the same artifact_name_table() the service's
  // JSON decoder uses — one vocabulary for both surfaces.
  req.observability = false;
  req.detection_probs = false;
  std::stringstream ss(a.artifacts);
  std::string name;
  while (std::getline(ss, name, ',')) {
    if (!set_artifact(req, name))
      throw UsageError("unknown artifact '" + name +
                       "' (available: " + known_artifact_names() + ")");
  }
  return req;
}

Args parse_args(const std::vector<std::string>& argv) {
  if (argv.empty()) throw UsageError("missing command");
  Args a;
  a.command = argv[0];
  std::size_t i = 1;
  // `__serve-worker` is the hidden child-process entry of the supervised
  // serve: a single-process daemon on stdin/stdout, fault-armable from
  // the environment.  It takes flags like serve, never a file.
  const bool is_serve = a.command == "serve" || a.command == "__serve-worker";
  // fuzz generates its own circuits (plus the --data corpus); no <file>.
  const bool is_fuzz = a.command == "fuzz";
  if (a.command != "help" && !is_serve && !is_fuzz) {
    if (i >= argv.size()) throw UsageError("missing <file> argument");
    a.file = argv[i++];
  }
  auto need_value = [&](const std::string& flag) -> std::string {
    if (i >= argv.size()) throw UsageError("flag " + flag + " needs a value");
    return argv[i++];
  };
  while (i < argv.size()) {
    const std::string flag = argv[i++];
    try {
      if (flag == "--engine") { a.engine = need_value(flag); a.engine_set = true; }
      else if (flag == "--json") a.json = true;
      else if (flag == "--artifacts") { a.artifacts = need_value(flag); a.artifacts_set = true; }
      else if (flag == "--p") { a.p = std::stod(need_value(flag)); a.query_flags.push_back(flag); }
      else if (flag == "--d") { a.d = std::stod(need_value(flag)); a.query_flags.push_back(flag); }
      else if (flag == "--e") { a.e = std::stod(need_value(flag)); a.query_flags.push_back(flag); }
      else if (flag == "--n") { a.n = std::stoull(need_value(flag)); a.query_flags.push_back(flag); }
      else if (flag == "--sweeps") { a.sweeps = static_cast<unsigned>(std::stoul(need_value(flag))); a.query_flags.push_back(flag); }
      else if (flag == "--patterns") { a.patterns = std::stoull(need_value(flag)); a.query_flags.push_back(flag); }
      else if (flag == "--seed") { a.seed = std::stoull(need_value(flag)); a.query_flags.push_back(flag); }
      else if (flag == "--faults") a.lint_faults = true;
      else if (flag == "--passes") {
        a.passes_set = true;
        std::stringstream ss(need_value(flag));
        std::string name;
        while (std::getline(ss, name, ',')) a.lint_passes.push_back(name);
      }
      else if (flag == "--threads") {
        // Cap before narrowing: a 64-bit stoul result (incl. "-1" wrapping
        // to ULONG_MAX) must not truncate to a small, silently-accepted
        // worker count.
        const unsigned long v = std::stoul(need_value(flag));
        if (v > 1024)
          throw UsageError("--threads must be between 0 (= all hardware "
                           "threads) and 1024");
        a.threads = static_cast<unsigned>(v);
        a.threads_set = true;
      }
      else if (flag == "--cap") {
        a.cap = std::stoull(need_value(flag));
        a.cap_set = true;
      }
      else if (flag == "--port") {
        const unsigned long v = std::stoul(need_value(flag));
        if (v > 65535) throw UsageError("--port must be between 0 and 65535");
        a.port = static_cast<unsigned>(v);
        a.port_set = true;
      }
      else if (flag == "--inflight") {
        // Same cap-before-narrowing discipline as --threads: each slot is
        // a dispatch thread, so a wrapped "-1" must not be accepted.
        const unsigned long v = std::stoul(need_value(flag));
        if (v > 1024)
          throw UsageError("--inflight must be between 0 (= serial "
                           "dispatch) and 1024");
        a.inflight = static_cast<std::size_t>(v);
        a.inflight_set = true;
      }
      else if (flag == "--workers") {
        const unsigned long v = std::stoul(need_value(flag));
        if (v < 1 || v > 64)
          throw UsageError("--workers must be between 1 and 64");
        a.workers = static_cast<unsigned>(v);
        a.workers_set = true;
      }
      else if (flag == "--heartbeat-ms") {
        const unsigned long v = std::stoul(need_value(flag));
        if (v < 10 || v > 600000)
          throw UsageError("--heartbeat-ms must be between 10 and 600000");
        a.heartbeat_ms = v;
        a.heartbeat_set = true;
      }
      else if (flag == "--max-restarts") {
        const unsigned long v = std::stoul(need_value(flag));
        if (v > 1000)
          throw UsageError("--max-restarts must be between 0 and 1000");
        a.max_restarts = static_cast<unsigned>(v);
        a.max_restarts_set = true;
      }
      else if (flag == "--fault-inject") {
        a.fault_spec = need_value(flag);
        a.fault_set = true;
      }
      else if (flag == "--quick") a.quick = true;
      else if (flag == "--circuits") {
        const unsigned long long v = std::stoull(need_value(flag));
        if (v < 1 || v > 1'000'000)
          throw UsageError("--circuits must be between 1 and 1000000");
        a.circuits = static_cast<std::size_t>(v);
        a.circuits_set = true;
      }
      else if (flag == "--alpha") {
        a.alpha = std::stod(need_value(flag));
        if (!(a.alpha > 0.0) || !(a.alpha < 1.0))
          throw UsageError("--alpha must be strictly between 0 and 1");
        a.alpha_set = true;
      }
      else if (flag == "--corpus") { a.corpus_dir = need_value(flag); a.corpus_set = true; }
      else if (flag == "--replay") { a.replay_file = need_value(flag); a.replay_set = true; }
      else if (flag == "--inject") a.inject = true;
      else if (flag == "--data") { a.data_dir = need_value(flag); a.data_set = true; }
      else if (flag == "--deadline-ms") {
        // The same guarded-integer discipline the wire protocol applies
        // to deadline_ms: a wrapped negative or oversized value must not
        // become a silently-accepted budget.
        const unsigned long long v = std::stoull(need_value(flag));
        if (v < 1 || v > 9007199254740992ull)
          throw UsageError("--deadline-ms must be a positive integer "
                           "(milliseconds)");
        a.deadline_ms = v;
        a.deadline_set = true;
      }
      else throw UsageError("unknown flag '" + flag + "'");
    } catch (const std::invalid_argument&) {
      throw UsageError("bad value for flag " + flag);
    } catch (const std::out_of_range&) {
      throw UsageError("bad value for flag " + flag);
    }
  }
  // simulate runs weighted patterns through the fault simulator and never
  // evaluates a probability engine; accepting these flags there would
  // silently ignore them.
  if (a.command == "simulate") {
    if (a.engine_set) throw UsageError("--engine is not valid for 'simulate'");
    if (a.json) throw UsageError("--json is not valid for 'simulate'");
    if (a.artifacts_set)
      throw UsageError("--artifacts is not valid for 'simulate'");
    if (a.threads_set)
      throw UsageError("--threads is not valid for 'simulate'");
  }
  if (a.artifacts_set && a.command == "optimize")
    throw UsageError("--artifacts is not valid for 'optimize'");
  // lint never runs an engine or the analysis pipeline; only --p (the
  // prob-bounds input probability), --json, and --passes apply.
  if (a.command == "lint") {
    if (a.engine_set)
      throw UsageError("--engine is not valid for 'lint' (the static "
                       "passes are engine-independent)");
    if (a.artifacts_set) throw UsageError("--artifacts is not valid for 'lint'");
    if (a.threads_set) throw UsageError("--threads is not valid for 'lint'");
    for (const std::string& f : a.query_flags)
      if (f != "--p") throw UsageError(f + " is not valid for 'lint'");
    const auto known = lint_pass_names();
    for (const std::string& p : a.lint_passes) {
      if (std::find(known.begin(), known.end(), p) == known.end()) {
        std::string msg = "unknown lint pass '" + p + "' (available:";
        for (const std::string_view k : known) msg += " " + std::string(k);
        throw UsageError(msg + ")");
      }
    }
  } else if (a.passes_set) {
    throw UsageError("--passes is only valid for 'lint'");
  } else if (a.lint_faults) {
    throw UsageError("--faults is only valid for 'lint'");
  }
  // fuzz runs EVERY engine by design and derives its tolerances from the
  // statistical oracle — flags that would pick one engine or hand-tune a
  // comparison are rejected, not silently ignored.
  if (is_fuzz) {
    if (a.engine_set)
      throw UsageError("--engine is not valid for 'fuzz' (the harness runs "
                       "every registered engine)");
    if (a.artifacts_set) throw UsageError("--artifacts is not valid for 'fuzz'");
    for (const std::string& f : a.query_flags)
      if (f != "--seed" && f != "--patterns")
        throw UsageError(f + " is not valid for 'fuzz'");
    if (a.deadline_set)
      throw UsageError("--deadline-ms is not valid for 'fuzz'");
    if (a.replay_set &&
        (a.quick || a.circuits_set || a.alpha_set || a.inject || a.data_set))
      throw UsageError("--replay re-runs the artifact's own spec; it takes "
                       "no grid flags");
  } else if (a.quick || a.circuits_set || a.alpha_set || a.corpus_set ||
             a.replay_set || a.inject || a.data_set) {
    throw UsageError("--quick/--circuits/--alpha/--corpus/--replay/--inject/"
                     "--data are only valid for 'fuzz'");
  }
  // serve speaks the JSON protocol by construction and loads netlists per
  // request; every per-query flag would be silently ignored, so all of
  // them are rejected, not just the tracked boolean ones.
  if (is_serve) {
    if (a.engine_set) throw UsageError("--engine is not valid for 'serve' "
                                       "(pick the engine per load_netlist "
                                       "request)");
    if (a.json) throw UsageError("--json is not valid for 'serve'");
    if (a.artifacts_set)
      throw UsageError("--artifacts is not valid for 'serve'");
    if (!a.query_flags.empty())
      throw UsageError(a.query_flags.front() +
                       " is not valid for 'serve' (per-query values travel "
                       "in the JSON requests)");
    if (a.deadline_set)
      throw UsageError("--deadline-ms is not valid for 'serve' (deadlines "
                       "travel per request as the deadline_ms member)");
  } else if (a.cap_set || a.port_set || a.inflight_set) {
    throw UsageError("--cap/--port/--inflight are only valid for 'serve'");
  }
  // Supervision flags configure the router, which only `serve` runs — a
  // worker child is itself single-process (its faults arrive via env).
  if (a.command != "serve" &&
      (a.workers_set || a.heartbeat_set || a.max_restarts_set || a.fault_set))
    throw UsageError("--workers/--heartbeat-ms/--max-restarts/"
                     "--fault-inject are only valid for 'serve'");
  if ((a.heartbeat_set || a.max_restarts_set) && !a.workers_set)
    throw UsageError("--heartbeat-ms/--max-restarts need --workers "
                     "(supervised serve)");
  if (a.deadline_set && a.command != "analyze" && a.command != "optimize" &&
      a.command != "scan")
    throw UsageError("--deadline-ms is only valid for "
                     "'analyze'/'optimize'/'scan'");
  // The text report has a fixed layout; accepting --artifacts there would
  // compute the extra artifacts and then silently not print them.
  if (a.artifacts_set && !a.json)
    throw UsageError("--artifacts requires --json");
  const auto engines = engine_names();
  if (std::find(engines.begin(), engines.end(), a.engine) == engines.end()) {
    // Exit status 2 with the registered names on stderr — never a raw
    // exception trace (run_cli turns UsageError into exactly that).
    std::string msg = "unknown engine '" + a.engine + "' (available:";
    for (const std::string& n : engines) msg += " " + n;
    throw UsageError(msg + ")");
  }
  return a;
}

SessionOptions session_options(const Args& a) {
  SessionOptions opts;
  opts.engine = a.engine;
  opts.monte_carlo.seed = a.seed;
  opts.parallel.num_threads = a.threads;
  return opts;
}

ServiceConfig service_config(const Args& a) {
  ServiceConfig cfg;
  cfg.max_resident_sessions = a.cap;
  cfg.parallel.num_threads = a.threads;
  cfg.session_defaults = session_options(a);
  return cfg;
}

/// Installs a --deadline-ms budget as the ambient deadline token: the
/// engine's cancellation checkpoints (Monte-Carlo shards, hill-climb
/// coordinates) then throw OperationCancelled(DeadlineExceeded) past it,
/// which run_cli turns into a structured exit.
std::optional<CancelScope> deadline_scope(const Args& a) {
  if (!a.deadline_set) return std::nullopt;
  return std::optional<CancelScope>(
      std::in_place,
      CancelToken::with_deadline(
          current_cancel_token(),
          std::chrono::steady_clock::now() +
              std::chrono::milliseconds(a.deadline_ms)));
}

Netlist load_netlist(const std::string& path) {
  // "zoo:<name>" loads a built-in circuit (incl. the deterministic
  // stress100k tier) without a file on disk — CI leans on this.
  if (path.rfind("zoo:", 0) == 0) {
    try {
      return make_circuit(path.substr(4));
    } catch (const std::invalid_argument& e) {
      throw UsageError(e.what());
    }
  }
  std::ifstream f(path);
  if (!f) throw UsageError("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();
  // DSL descriptions contain a 'module' definition; .bench never does.
  if (text.find("module ") != std::string::npos) return elaborate_dsl(text);
  return read_bench_string(text);
}

void print_circuit_summary(std::ostream& out, const Netlist& net) {
  out << "circuit: " << net.inputs().size() << " inputs, "
      << net.outputs().size() << " outputs, " << net.num_gates() << " gates, "
      << transistor_count(net) << " transistors ("
      << gate_equivalents(net) << " GE)\n";
}

void print_engine(std::ostream& out, const AnalysisSession& session) {
  out << "signal-probability engine: " << session.engine().name() << "\n";
}

void print_hard_faults(std::ostream& out, const AnalysisResult& result,
                       std::size_t count) {
  const std::vector<double>& pf = result.detection_probs();
  std::vector<std::size_t> order(result.faults().size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return pf[a] < pf[b];
  });
  out << "\nleast testable faults:\n";
  for (std::size_t i = 0; i < std::min(count, order.size()); ++i)
    out << "  " << to_string(result.netlist(), result.faults()[order[i]])
        << "  P_detect = " << fmt(pf[order[i]], 6) << "\n";
}

/// Shared by analyze and scan: one session query, JSON or text rendering.
/// The session is leased from a service-layer registry — the same code
/// path `protest serve` dispatches into — so the CLI is a one-shot client
/// of the served API.
int run_analysis(const Args& a, const Netlist& net, std::ostream& out,
                 const char* testlen_label) {
  ProtestService service(service_config(a));
  service.registry().register_external("cli", net, session_options(a));
  const std::shared_ptr<AnalysisSession> session =
      service.registry().open("cli");
  if (!a.json) {
    // Immediate feedback before the (potentially long) analysis.
    print_circuit_summary(out, net);
    print_engine(out, *session);
  }
  const AnalysisRequest req = parse_artifacts(a, a.d, a.e);
  const std::optional<CancelScope> budget = deadline_scope(a);
  const AnalysisResult result =
      session->analyze(uniform_input_probs(net, a.p), req);
  if (a.json) {
    out << result.to_json() << "\n";
    return 0;
  }
  print_hard_faults(out, result, a.command == "scan" ? 5 : 10);
  const std::uint64_t n = result.test_length(a.d, a.e);
  out << "\n" << testlen_label << " (p = " << fmt(a.p, 2) << ", d = "
      << fmt(a.d, 2) << ", e = " << fmt(a.e, 3) << "): "
      << (n == kInfiniteTestLength ? "unreachable (undetectable faults in F_d)"
                                   : fmt_int(n))
      << "\n";
  return 0;
}

int cmd_analyze(const Args& a, std::ostream& out) {
  const Netlist net = load_netlist(a.file);
  return run_analysis(a, net, out, "required random patterns");
}

int cmd_optimize(const Args& a, std::ostream& out) {
  const Netlist net = load_netlist(a.file);
  SessionOptions popts = session_options(a);
  popts.universe = FaultUniverse::Collapsed;
  const Protest tool(net, popts);
  if (!a.json) {
    // Immediate feedback before the (potentially long) hill climb.
    print_circuit_summary(out, net);
    print_engine(out, tool.session());
  }
  HillClimbOptions opts;
  opts.max_sweeps = a.sweeps;
  const std::optional<CancelScope> budget = deadline_scope(a);
  const HillClimbResult res = tool.optimize(a.n, opts);

  const auto before = tool.analyze(uniform_input_probs(net, 0.5));
  const auto after = tool.analyze(res.probs);
  const std::uint64_t n0 = tool.test_length(before, a.d, a.e);
  const std::uint64_t n1 = tool.test_length(after, a.d, a.e);

  if (a.json) {
    JsonWriter w;
    w.begin_object();
    w.key("engine").value(tool.engine().name());
    w.key("n_parameter").value(a.n);
    w.key("log_objective").value(res.log_objective);
    w.key("evaluations").value(res.evaluations);
    w.key("sweeps").value(static_cast<std::uint64_t>(res.sweeps));
    w.key("optimized_probs").begin_array();
    const auto inputs = net.inputs();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      w.begin_object();
      w.key("input").value(net.name_of(inputs[i]));
      w.key("p").value(res.probs[i]);
      w.end_object();
    }
    w.end_array();
    w.key("test_length").begin_object();
    w.key("d").value(a.d);
    w.key("e").value(a.e);
    if (n0 == kInfiniteTestLength) w.key("uniform").null();
    else w.key("uniform").value(n0);
    if (n1 == kInfiniteTestLength) w.key("optimized").null();
    else w.key("optimized").value(n1);
    w.end_object();
    w.end_object();
    out << w.str() << "\n";
    return 0;
  }

  out << "\noptimized input probabilities (k/16 grid):\n";
  const auto inputs = net.inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    out << "  " << net.name_of(inputs[i]) << " = " << fmt(res.probs[i], 4)
        << "\n";
  }
  out << "\ntest length (d = " << fmt(a.d, 2) << ", e = " << fmt(a.e, 3)
      << "): " << (n0 == kInfiniteTestLength ? "inf" : fmt_int(n0)) << " -> "
      << (n1 == kInfiniteTestLength ? "inf" : fmt_int(n1)) << " patterns\n";
  return 0;
}

int cmd_simulate(const Args& a, std::ostream& out) {
  const Netlist net = load_netlist(a.file);
  print_circuit_summary(out, net);
  const Protest tool(net);
  const PatternSet ps = tool.generate_patterns(
      uniform_input_probs(net, a.p), a.patterns, a.seed);
  const FaultSimResult res = tool.fault_simulate(ps, FaultSimMode::FirstDetection);
  out << "fault coverage after " << fmt_int(a.patterns) << " patterns (p = "
      << fmt(a.p, 2) << "): " << fmt(100.0 * res.coverage(), 2) << " % of "
      << tool.faults().size() << " faults\n";
  return 0;
}

int cmd_lint(const Args& a, std::ostream& out) {
  Netlist net = load_netlist(a.file);
  if (!net.finalized()) net.finalize();
  LintOptions opts;
  opts.p = a.p;
  opts.passes = a.lint_passes;
  opts.faults = a.lint_faults;
  const LintReport report = run_lint(net, opts);
  if (a.json) {
    out << report.to_json() << "\n";
  } else {
    print_circuit_summary(out, net);
    out << report.to_text();
  }
  // Exit 1 on error-severity findings so CI can gate on lint directly.
  return report.errors == 0 ? 0 : 1;
}

int cmd_serve(const Args& a, std::istream& in, std::ostream& out,
              std::ostream& err) {
  ServeOptions serve_opts;
  serve_opts.max_inflight = a.inflight;
  // --workers: supervised multi-process serving — the endpoint becomes a
  // router over crash-isolated worker processes instead of an in-process
  // service.  Both speak ServiceEndpoint, so the front ends don't care.
  if (a.workers_set) {
    if (!supervisor_supported())
      throw UsageError("--workers is not supported on this platform "
                       "(no POSIX pipes/process spawning)");
    SupervisorOptions sup;
    sup.workers = a.workers;
    sup.max_restarts = a.max_restarts;
    if (a.heartbeat_set) {
      sup.heartbeat_interval = std::chrono::milliseconds(a.heartbeat_ms);
      sup.heartbeat_timeout = 5 * sup.heartbeat_interval;
    }
    // Workers keep pipelined lanes even when the front end is serial, so
    // heartbeats answer while a long Monte-Carlo runs.
    sup.worker_inflight = std::max<std::size_t>(a.inflight, 4);
    if (a.fault_set) {
      try {
        FaultInjector::parse(a.fault_spec);  // surface typos before spawning
      } catch (const std::invalid_argument& e) {
        throw UsageError(e.what());
      }
      sup.fault_spec = a.fault_spec;
    }
    // Workers inherit the registry/threading shape of this serve.
    sup.worker_args.push_back("--cap");
    sup.worker_args.push_back(std::to_string(a.cap));
    if (a.threads_set) {
      sup.worker_args.push_back("--threads");
      sup.worker_args.push_back(std::to_string(a.threads));
    }
    Supervisor supervisor(sup, err);
    if (a.port_set) {
      if (!tcp_serve_supported())
        throw UsageError("--port is not supported on this platform "
                         "(no POSIX sockets); use stdin/stdout mode");
      return serve_tcp(supervisor, static_cast<std::uint16_t>(a.port), err,
                       nullptr, serve_opts);
    }
    return serve_ndjson(supervisor, in, out, serve_opts);
  }
  ProtestService service(service_config(a));
  // --fault-inject without --workers arms the injector in-process: the
  // deterministic fault scripts are testable against a plain daemon too.
  FaultInjector injector;
  if (a.fault_set) {
    try {
      injector = FaultInjector::parse(a.fault_spec);
    } catch (const std::invalid_argument& e) {
      throw UsageError(e.what());
    }
    serve_opts.injector = &injector;
  }
  if (a.port_set) {
    if (!tcp_serve_supported())
      throw UsageError("--port is not supported on this platform "
                       "(no POSIX sockets); use stdin/stdout mode");
    return serve_tcp(service, static_cast<std::uint16_t>(a.port), err,
                     nullptr, serve_opts);
  }
  // NDJSON over stdin/stdout: requests in, responses out, diagnostics on
  // stderr only (stdout must stay machine-parseable).
  return serve_ndjson(service, in, out, serve_opts);
}

/// The hidden child-process entry behind `serve --workers`: a plain
/// single-process daemon on stdin/stdout whose fault injector (if any)
/// arrives via PROTEST_FAULT_INJECT / PROTEST_WORKER_INDEX.  A malformed
/// env spec is a hard startup error — a typo'd fault script must fail the
/// run, not silently arm nothing.
int cmd_serve_worker(const Args& a, std::istream& in, std::ostream& out) {
  ProtestService service(service_config(a));
  FaultInjector injector = FaultInjector::from_env();
  ServeOptions serve_opts;
  serve_opts.max_inflight = a.inflight;
  serve_opts.injector = injector.armed() ? &injector : nullptr;
  return serve_ndjson(service, in, out, serve_opts);
}

void print_fuzz_report(const Args& a, const validate::FuzzReport& report,
                       std::ostream& out) {
  if (a.json) {
    JsonWriter w;
    w.begin_object();
    w.key("circuits").value(report.circuits);
    w.key("checks").value(report.checks);
    w.key("disagreements").begin_array();
    for (const validate::FuzzDisagreement& d : report.disagreements) {
      w.begin_object();
      w.key("check").value(d.check);
      w.key("where").value(d.where);
      w.key("detail").value(d.detail);
      w.end_object();
    }
    w.end_array();
    w.key("artifacts").begin_array();
    for (const std::string& p : report.artifact_paths) w.value(p);
    w.end_array();
    w.key("ok").value(report.ok());
    w.end_object();
    out << w.str() << "\n";
    return;
  }
  out << "fuzz: " << report.circuits << " circuits, " << report.checks
      << " checks, " << report.disagreements.size() << " disagreements\n";
  for (const validate::FuzzDisagreement& d : report.disagreements)
    out << "  DISAGREE " << d.check << " @ " << d.where << ": " << d.detail
        << "\n";
  for (const std::string& p : report.artifact_paths)
    out << "  repro artifact: " << p << "\n";
}

/// The differential validation harness (src/validate): exit 0 on a clean
/// matrix, 1 on any disagreement, 2 on usage errors — so CI can gate on
/// it directly and `--inject` proves the non-zero path end to end.
int cmd_fuzz(const Args& a, std::ostream& out, std::ostream& err) {
  if (a.replay_set) {
    const validate::FuzzReport report =
        validate::run_replay(a.replay_file, &err);
    print_fuzz_report(a, report, out);
    return report.ok() ? 0 : 1;
  }
  validate::FuzzOptions opts;
  opts.num_circuits = a.circuits_set ? a.circuits : (a.quick ? 50 : 200);
  opts.seed = a.seed;
  // --patterns rides the shared flag; the fuzz default is sized so the
  // Hoeffding tolerances stay meaningful at the aggregate alpha.
  const bool patterns_set =
      std::find(a.query_flags.begin(), a.query_flags.end(), "--patterns") !=
      a.query_flags.end();
  opts.mc_patterns = patterns_set ? a.patterns : (a.quick ? 8'192 : 32'768);
  opts.aggregate_alpha = a.alpha;
  opts.threads = a.threads_set && a.threads >= 1 ? a.threads : 2;
  opts.corpus_dir = a.corpus_dir;
  opts.inject_disagreement = a.inject;
  // Fixed-seed real circuits: --data DIR, defaulting to $PROTEST_DATA
  // (the path the test harness exports); absent/empty = generated only.
  std::string data = a.data_dir;
  if (!a.data_set) {
    if (const char* env = std::getenv("PROTEST_DATA")) data = env;
  }
  if (!data.empty() && std::filesystem::is_directory(data)) {
    std::vector<std::string> bench;
    for (const auto& entry : std::filesystem::directory_iterator(data))
      if (entry.path().extension() == ".bench")
        bench.push_back(entry.path().string());
    std::sort(bench.begin(), bench.end());  // deterministic corpus order
    opts.bench_files = std::move(bench);
  }
  const validate::FuzzReport report = validate::run_fuzz(opts, &err);
  print_fuzz_report(a, report, out);
  return report.ok() ? 0 : 1;
}

int cmd_scan(const Args& a, std::ostream& out) {
  std::ifstream f(a.file);
  if (!f) throw UsageError("cannot open '" + a.file + "'");
  std::ostringstream ss;
  ss << f.rdbuf();
  const ScanDesign design = extract_scan_design(ss.str());
  if (!a.json) {
    out << "scan extraction: " << design.num_flops() << " scan cells, "
        << design.num_primary_inputs << " primary inputs, "
        << design.num_primary_outputs << " primary outputs\n";
  }
  return run_analysis(a, design.comb, out, "scan-test length");
}

void print_help(std::ostream& out) {
  out << "protest — probabilistic testability analysis (Wunderlich, DAC'85)\n"
         "\n"
         "  protest analyze  <file> [--p P] [--d D] [--e E] [--engine E]\n"
         "                          [--json] [--artifacts LIST] [--threads T]\n"
         "                          [--deadline-ms MS]\n"
         "  protest optimize <file> [--n N] [--sweeps S] [--d D] [--e E] "
         "[--engine E] [--json]\n"
         "                          [--threads T] [--deadline-ms MS]\n"
         "  protest simulate <file> --patterns N [--p P] [--seed S]\n"
         "  protest lint     <file> [--p P] [--passes LIST] [--faults] "
         "[--json]\n"
         "  protest scan     <file> [--p P] [--d D] [--e E] [--engine E]\n"
         "                          [--json] [--artifacts LIST] [--threads T]\n"
         "                          [--deadline-ms MS]\n"
         "  protest serve           [--cap N] [--threads T] [--port P] "
         "[--inflight N]\n"
         "                          [--workers N] [--heartbeat-ms MS] "
         "[--max-restarts N]\n"
         "                          [--fault-inject SPEC]\n"
         "  protest fuzz            [--quick] [--circuits N] [--seed S]\n"
         "                          [--patterns N] [--alpha A] [--threads T]\n"
         "                          [--data DIR] [--corpus DIR] [--inject]\n"
         "                          [--replay FILE] [--json]\n"
         "  protest help\n"
         "\n"
         "<file>: .bench netlist or module DSL (auto-detected), or\n"
         "zoo:<name> for a built-in circuit (c17, alu, ..., stress100k).\n"
         "lint runs the static analyzer (passes: unused-net, dead-gate,\n"
         "const-gate, duplicate-gate, prob-bounds, structure; --passes\n"
         "selects a subset) and exits 1 on error-severity findings.\n"
         "--faults adds the static fault-analysis passes (redundant-fault,\n"
         "untestable-fault): implication-proven undetectable faults and\n"
         "per-fault detection-probability intervals.\n"
         "--engine selects the signal-probability engine: protest (default),\n"
         "naive, exact-bdd, exact-enum, monte-carlo.\n"
         "--threads T sizes the worker pool (Monte-Carlo pattern shards,\n"
         "optimize neighborhood sweeps); 0 = all hardware threads (default),\n"
         "1 = serial.  Results are bit-identical for every thread count.\n"
         "--json emits the analysis result as JSON instead of text.\n"
         "--artifacts (with --json) is a comma list choosing what to\n"
         "compute/serialize:\n"
         "signal_probs, observability, detection_probs, test_lengths,\n"
         "scoap, stafan (default: observability, detection_probs,\n"
         "test_lengths).\n"
         "serve runs the resident-session daemon: newline-delimited JSON\n"
         "requests on stdin (or TCP with --port), one response line each;\n"
         "--cap bounds resident sessions (LRU-evicted, default 8), and\n"
         "--inflight N enables pipelined dispatch: up to N work requests\n"
         "run concurrently, responses return out of order (correlate by\n"
         "id) and reads stall at N in-flight (backpressure).  Long jobs\n"
         "can also be ticketed explicitly: submit/poll/wait/cancel/jobs\n"
         "verbs (see the README's Serving section for the protocol).\n"
         "--workers N serves SUPERVISED: N crash-isolated worker processes\n"
         "behind a correlating router — netlists place by name hash,\n"
         "crashed workers restart with capped backoff (--max-restarts),\n"
         "wedged workers are detected by heartbeat (--heartbeat-ms) and\n"
         "killed, and every request always gets exactly one structured\n"
         "response (result, worker_lost, or deadline_exceeded).\n"
         "--deadline-ms MS bounds analyze/optimize/scan wall-clock: past\n"
         "the budget the work stops at its next checkpoint, exit 3.\n"
         "--fault-inject SPEC arms deterministic fault injection\n"
         "([w<K>:]crash|stall|garbage@<verb>[:<nth>], comma-separated) in\n"
         "the workers (or in-process without --workers) for testing.\n"
         "fuzz runs the differential validation harness: seeded random\n"
         "circuits (plus every .bench under --data, default $PROTEST_DATA)\n"
         "through every engine, both perturb fidelities, serial vs threaded\n"
         "and the served round trip, with Monte-Carlo tolerances derived\n"
         "from the --alpha false-positive budget (default 1e-6 per run).\n"
         "Disagreements exit 1 and serialize self-contained repro\n"
         "artifacts to --corpus; --replay FILE re-runs one artifact\n"
         "deterministically, and --inject plants a deliberate bug to\n"
         "prove the harness catches it.  --quick is the PR-gating tier\n"
         "(50 circuits); the default grid is the nightly tier (200).\n";
}

}  // namespace

int run_cli(const std::vector<std::string>& argv, std::ostream& out,
            std::ostream& err) {
  try {
    const Args a = parse_args(argv);
    if (a.command == "help") {
      print_help(out);
      return 0;
    }
    if (a.command == "analyze") return cmd_analyze(a, out);
    if (a.command == "optimize") return cmd_optimize(a, out);
    if (a.command == "simulate") return cmd_simulate(a, out);
    if (a.command == "lint") return cmd_lint(a, out);
    if (a.command == "scan") return cmd_scan(a, out);
    if (a.command == "fuzz") return cmd_fuzz(a, out, err);
    if (a.command == "serve") return cmd_serve(a, std::cin, out, err);
    if (a.command == "__serve-worker")
      return cmd_serve_worker(a, std::cin, out);
    throw UsageError("unknown command '" + a.command + "'");
  } catch (const UsageError& e) {
    err << "error: " << e.what() << "\n";
    print_help(err);
    return 2;
  } catch (const OperationCancelled& e) {
    // A --deadline-ms budget expired: the work was cancelled at its next
    // checkpoint.  Exit 3 so scripts can tell "too slow" from "failed".
    err << "error: " << e.what() << " (--deadline-ms budget)\n";
    return 3;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace protest
