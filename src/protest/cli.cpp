#include "protest/cli.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "analysis/table.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/dsl.hpp"
#include "netlist/tech.hpp"
#include "optimize/weighted_patterns.hpp"
#include "prob/engine.hpp"
#include "protest/protest.hpp"
#include "sim/scan.hpp"

namespace protest {
namespace {

struct Args {
  std::string command;
  std::string file;
  std::string engine = "protest";
  bool engine_set = false;
  double p = 0.5;
  double d = 0.98;
  double e = 0.98;
  std::uint64_t n = 10'000;
  unsigned sweeps = 4;
  std::size_t patterns = 1'000;
  std::uint64_t seed = 1;
};

class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

Args parse_args(const std::vector<std::string>& argv) {
  if (argv.empty()) throw UsageError("missing command");
  Args a;
  a.command = argv[0];
  std::size_t i = 1;
  if (a.command != "help") {
    if (i >= argv.size()) throw UsageError("missing <file> argument");
    a.file = argv[i++];
  }
  auto need_value = [&](const std::string& flag) -> std::string {
    if (i >= argv.size()) throw UsageError("flag " + flag + " needs a value");
    return argv[i++];
  };
  while (i < argv.size()) {
    const std::string flag = argv[i++];
    try {
      if (flag == "--engine") { a.engine = need_value(flag); a.engine_set = true; }
      else if (flag == "--p") a.p = std::stod(need_value(flag));
      else if (flag == "--d") a.d = std::stod(need_value(flag));
      else if (flag == "--e") a.e = std::stod(need_value(flag));
      else if (flag == "--n") a.n = std::stoull(need_value(flag));
      else if (flag == "--sweeps") a.sweeps = static_cast<unsigned>(std::stoul(need_value(flag)));
      else if (flag == "--patterns") a.patterns = std::stoull(need_value(flag));
      else if (flag == "--seed") a.seed = std::stoull(need_value(flag));
      else throw UsageError("unknown flag '" + flag + "'");
    } catch (const std::invalid_argument&) {
      throw UsageError("bad value for flag " + flag);
    }
  }
  // simulate runs weighted patterns through the fault simulator and never
  // evaluates a probability engine; accepting --engine there would
  // silently ignore it.
  if (a.engine_set && a.command == "simulate")
    throw UsageError("--engine is not valid for 'simulate'");
  const auto engines = engine_names();
  if (std::find(engines.begin(), engines.end(), a.engine) == engines.end()) {
    std::string msg = "unknown engine '" + a.engine + "' (available:";
    for (const std::string& n : engines) msg += " " + n;
    throw UsageError(msg + ")");
  }
  return a;
}

ProtestOptions tool_options(const Args& a) {
  ProtestOptions opts;
  opts.engine = a.engine;
  opts.monte_carlo.seed = a.seed;
  return opts;
}

Netlist load_netlist(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw UsageError("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();
  // DSL descriptions contain a 'module' definition; .bench never does.
  if (text.find("module ") != std::string::npos) return elaborate_dsl(text);
  return read_bench_string(text);
}

void print_circuit_summary(std::ostream& out, const Netlist& net) {
  out << "circuit: " << net.inputs().size() << " inputs, "
      << net.outputs().size() << " outputs, " << net.num_gates() << " gates, "
      << transistor_count(net) << " transistors ("
      << gate_equivalents(net) << " GE)\n";
}

void print_engine(std::ostream& out, const Protest& tool) {
  out << "signal-probability engine: " << tool.engine().name() << "\n";
}

void print_hard_faults(std::ostream& out, const Protest& tool,
                       const ProtestReport& report, std::size_t count) {
  std::vector<std::size_t> order(tool.faults().size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return report.detection_probs[a] < report.detection_probs[b];
  });
  out << "\nleast testable faults:\n";
  for (std::size_t i = 0; i < std::min(count, order.size()); ++i)
    out << "  " << to_string(tool.netlist(), tool.faults()[order[i]])
        << "  P_detect = " << fmt(report.detection_probs[order[i]], 6) << "\n";
}

int cmd_analyze(const Args& a, std::ostream& out) {
  const Netlist net = load_netlist(a.file);
  print_circuit_summary(out, net);
  const Protest tool(net, tool_options(a));
  print_engine(out, tool);
  const auto report = tool.analyze(uniform_input_probs(net, a.p));
  print_hard_faults(out, tool, report, 10);
  const std::uint64_t n = tool.test_length(report, a.d, a.e);
  out << "\nrequired random patterns (p = " << fmt(a.p, 2) << ", d = "
      << fmt(a.d, 2) << ", e = " << fmt(a.e, 3) << "): "
      << (n == kInfiniteTestLength ? "unreachable (undetectable faults in F_d)"
                                   : fmt_int(n))
      << "\n";
  return 0;
}

int cmd_optimize(const Args& a, std::ostream& out) {
  const Netlist net = load_netlist(a.file);
  print_circuit_summary(out, net);
  ProtestOptions popts = tool_options(a);
  popts.universe = FaultUniverse::Collapsed;
  const Protest tool(net, popts);
  print_engine(out, tool);
  HillClimbOptions opts;
  opts.max_sweeps = a.sweeps;
  const HillClimbResult res = tool.optimize(a.n, opts);

  out << "\noptimized input probabilities (k/16 grid):\n";
  const auto inputs = net.inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    out << "  " << net.name_of(inputs[i]) << " = " << fmt(res.probs[i], 4)
        << "\n";
  }
  const auto before = tool.analyze(uniform_input_probs(net, 0.5));
  const auto after = tool.analyze(res.probs);
  const std::uint64_t n0 = tool.test_length(before, a.d, a.e);
  const std::uint64_t n1 = tool.test_length(after, a.d, a.e);
  out << "\ntest length (d = " << fmt(a.d, 2) << ", e = " << fmt(a.e, 3)
      << "): " << (n0 == kInfiniteTestLength ? "inf" : fmt_int(n0)) << " -> "
      << (n1 == kInfiniteTestLength ? "inf" : fmt_int(n1)) << " patterns\n";
  return 0;
}

int cmd_simulate(const Args& a, std::ostream& out) {
  const Netlist net = load_netlist(a.file);
  print_circuit_summary(out, net);
  const Protest tool(net);
  const PatternSet ps = tool.generate_patterns(
      uniform_input_probs(net, a.p), a.patterns, a.seed);
  const FaultSimResult res = tool.fault_simulate(ps, FaultSimMode::FirstDetection);
  out << "fault coverage after " << fmt_int(a.patterns) << " patterns (p = "
      << fmt(a.p, 2) << "): " << fmt(100.0 * res.coverage(), 2) << " % of "
      << tool.faults().size() << " faults\n";
  return 0;
}

int cmd_scan(const Args& a, std::ostream& out) {
  std::ifstream f(a.file);
  if (!f) throw UsageError("cannot open '" + a.file + "'");
  std::ostringstream ss;
  ss << f.rdbuf();
  const ScanDesign design = extract_scan_design(ss.str());
  out << "scan extraction: " << design.num_flops() << " scan cells, "
      << design.num_primary_inputs << " primary inputs, "
      << design.num_primary_outputs << " primary outputs\n";
  print_circuit_summary(out, design.comb);
  const Protest tool(design.comb, tool_options(a));
  print_engine(out, tool);
  const auto report = tool.analyze(uniform_input_probs(design.comb, a.p));
  print_hard_faults(out, tool, report, 5);
  const std::uint64_t n = tool.test_length(report, a.d, a.e);
  out << "\nscan-test length (d = " << fmt(a.d, 2) << ", e = " << fmt(a.e, 3)
      << "): "
      << (n == kInfiniteTestLength ? "unreachable" : fmt_int(n))
      << " scan loads\n";
  return 0;
}

void print_help(std::ostream& out) {
  out << "protest — probabilistic testability analysis (Wunderlich, DAC'85)\n"
         "\n"
         "  protest analyze  <file> [--p P] [--d D] [--e E] [--engine E]\n"
         "  protest optimize <file> [--n N] [--sweeps S] [--d D] [--e E] "
         "[--engine E]\n"
         "  protest simulate <file> --patterns N [--p P] [--seed S]\n"
         "  protest scan     <file> [--p P] [--d D] [--e E] [--engine E]\n"
         "  protest help\n"
         "\n"
         "<file>: .bench netlist or module DSL (auto-detected).\n"
         "--engine selects the signal-probability engine: protest (default),\n"
         "naive, exact-bdd, exact-enum, monte-carlo.\n";
}

}  // namespace

int run_cli(const std::vector<std::string>& argv, std::ostream& out,
            std::ostream& err) {
  try {
    const Args a = parse_args(argv);
    if (a.command == "help") {
      print_help(out);
      return 0;
    }
    if (a.command == "analyze") return cmd_analyze(a, out);
    if (a.command == "optimize") return cmd_optimize(a, out);
    if (a.command == "simulate") return cmd_simulate(a, out);
    if (a.command == "scan") return cmd_scan(a, out);
    throw UsageError("unknown command '" + a.command + "'");
  } catch (const UsageError& e) {
    err << "error: " << e.what() << "\n";
    print_help(err);
    return 2;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace protest
