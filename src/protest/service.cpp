#include "protest/service.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <thread>

#include "analysis/json.hpp"
#include "circuits/zoo.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/dsl.hpp"
#include "optimize/hill_climb.hpp"
#include "optimize/objective.hpp"

namespace protest {

// --- the registry -----------------------------------------------------------

/// The expensive resident state: for owned registrations the netlist copy
/// the session was built on (sessions hold references, so the copy must
/// live exactly as long as the session), plus the session itself.
/// Held by shared_ptr and co-owned by every handed-out session pointer,
/// so eviction can never pull state out from under an in-flight query.
struct SessionRegistry::Resident {
  Resident(std::unique_ptr<Netlist> own, const Netlist* ext, SessionOptions o)
      : owned(std::move(own)), session(owned ? *owned : *ext, std::move(o)) {}

  std::unique_ptr<Netlist> owned;  ///< null for external registrations
  AnalysisSession session;
};

std::shared_ptr<AnalysisSession> SessionRegistry::lease(
    const std::shared_ptr<Resident>& r) {
  return std::shared_ptr<AnalysisSession>(r, &r->session);
}

SessionRegistry::SessionRegistry(std::size_t max_resident,
                                 ParallelConfig parallel)
    : max_resident_(max_resident), exec_(make_executor(parallel)) {}

void SessionRegistry::register_netlist(std::string name, Netlist net,
                                       SessionOptions opts) {
  const std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[std::move(name)];
  e = Entry{};  // replacing a registration drops its resident session
  e.prototype = std::move(net);
  e.opts = std::move(opts);
}

void SessionRegistry::register_external(std::string name, const Netlist& net,
                                        SessionOptions opts) {
  const std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[std::move(name)];
  e = Entry{};
  e.external = &net;
  e.opts = std::move(opts);
}

std::shared_ptr<AnalysisSession> SessionRegistry::open(
    const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end())
    throw ServiceError("unknown_netlist",
                       "no netlist registered under '" + name + "'");
  Entry& e = it->second;
  e.last_use = ++use_counter_;
  if (!e.resident) {
    // Revival builds the engine and fault list under the registry lock —
    // concurrent opens of OTHER names briefly queue behind it; the
    // expensive per-netlist plans build lazily inside the session later.
    SessionOptions opts = e.opts;
    opts.parallel.executor = exec_;
    std::unique_ptr<Netlist> own =
        e.prototype ? std::make_unique<Netlist>(*e.prototype) : nullptr;
    e.resident = std::make_shared<Resident>(std::move(own), e.external,
                                            std::move(opts));
    enforce_cap_locked(&e);
  }
  return lease(e.resident);
}

std::shared_ptr<AnalysisSession> SessionRegistry::find_resident(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end() || !it->second.resident) return nullptr;
  return lease(it->second.resident);
}

void SessionRegistry::enforce_cap_locked(const Entry* keep) {
  if (max_resident_ == 0) return;
  for (;;) {
    std::size_t resident = 0;
    Entry* lru = nullptr;
    for (auto& [name, e] : entries_) {
      if (!e.resident) continue;
      ++resident;
      if (&e != keep && (!lru || e.last_use < lru->last_use)) lru = &e;
    }
    if (resident <= max_resident_ || !lru) return;
    lru->resident.reset();  // in-flight leases keep their state alive
  }
}

bool SessionRegistry::evict(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end() || !it->second.resident) return false;
  it->second.resident.reset();
  return true;
}

bool SessionRegistry::unregister(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.erase(name) > 0;
}

std::vector<std::string> SessionRegistry::registered_names() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, e] : entries_) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

std::vector<std::string> SessionRegistry::resident_names() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::uint64_t, std::string>> by_use;
  for (const auto& [name, e] : entries_)
    if (e.resident) by_use.emplace_back(e.last_use, name);
  std::sort(by_use.begin(), by_use.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> names;
  names.reserve(by_use.size());
  for (auto& [use, name] : by_use) names.push_back(std::move(name));
  return names;
}

std::size_t SessionRegistry::num_resident() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [name, e] : entries_)
    if (e.resident) ++n;
  return n;
}

// --- the protocol -----------------------------------------------------------

namespace {

constexpr std::pair<ServiceVerb, std::string_view> kVerbNames[] = {
    {ServiceVerb::LoadNetlist, "load_netlist"},
    {ServiceVerb::Analyze, "analyze"},
    {ServiceVerb::Perturb, "perturb"},
    {ServiceVerb::Optimize, "optimize"},
    {ServiceVerb::Stats, "stats"},
    {ServiceVerb::Evict, "evict"},
    {ServiceVerb::Shutdown, "shutdown"},
};

/// Artifact flag <-> wire name (the CLI's --artifacts vocabulary).
constexpr std::pair<bool AnalysisRequest::*, std::string_view>
    kArtifactFlags[] = {
        {&AnalysisRequest::observability, "observability"},
        {&AnalysisRequest::detection_probs, "detection_probs"},
        {&AnalysisRequest::test_lengths, "test_lengths"},
        {&AnalysisRequest::scoap, "scoap"},
        {&AnalysisRequest::stafan, "stafan"},
};

/// Strictly integral, non-negative number (doubles carry protocol
/// integers; exact up to 2^53).
std::uint64_t to_uint(const JsonValue& v) {
  const double d = v.as_number();
  if (!(d >= 0.0) || d != std::floor(d) || d > 9007199254740992.0)
    throw std::runtime_error("expected a non-negative integer");
  return static_cast<std::uint64_t>(d);
}

std::vector<double> to_number_list(const JsonValue& v) {
  std::vector<double> out;
  out.reserve(v.as_array().size());
  for (const JsonValue& e : v.as_array()) out.push_back(e.as_number());
  return out;
}

AnalysisRequest artifacts_from_names(const JsonValue& list) {
  AnalysisRequest req;
  for (auto [flag, name] : kArtifactFlags) req.*flag = false;
  for (const JsonValue& e : list.as_array()) {
    const std::string& name = e.as_string();
    if (name == "signal_probs") continue;  // always computed
    bool known = false;
    for (auto [flag, flag_name] : kArtifactFlags)
      if (name == flag_name) {
        req.*flag = true;
        known = true;
        break;
      }
    if (!known)
      throw std::runtime_error("unknown artifact '" + name + "'");
  }
  return req;
}

void write_number_list(JsonWriter& w, std::string_view key,
                       std::span<const double> values) {
  w.key(key).begin_array();
  for (const double v : values) w.value(v);
  w.end_array();
}

void write_string_list(JsonWriter& w, std::string_view key,
                       std::span<const std::string> values) {
  w.key(key).begin_array();
  for (const std::string& v : values) w.value(v);
  w.end_array();
}

}  // namespace

std::string_view to_string(ServiceVerb verb) {
  for (auto [v, name] : kVerbNames)
    if (v == verb) return name;
  return "?";
}

ServiceVerb verb_from_string(std::string_view name) {
  for (auto [v, verb_name] : kVerbNames)
    if (name == verb_name) return v;
  std::string known;
  for (auto [v, verb_name] : kVerbNames) {
    known += known.empty() ? "" : " ";
    known += verb_name;
  }
  throw ServiceError("unknown_verb", "unknown verb '" + std::string(name) +
                                         "' (available: " + known + ")");
}

std::string ServiceRequest::to_json(int indent) const {
  JsonWriter w(indent);
  w.begin_object();
  w.key("verb").value(to_string(verb));
  w.key("id").value(id);
  if (!netlist.empty()) w.key("netlist").value(netlist);
  if (!circuit.empty()) w.key("circuit").value(circuit);
  if (!source.empty()) w.key("source").value(source);
  if (!engine.empty()) w.key("engine").value(engine);
  if (seed) w.key("seed").value(*seed);
  if (max_cached_results)
    w.key("max_cached_results").value(*max_cached_results);
  if (p) w.key("p").value(*p);
  if (!input_probs.empty()) write_number_list(w, "input_probs", input_probs);
  if (artifacts) {
    std::vector<std::string> names;
    for (auto [flag, name] : kArtifactFlags)
      if ((*artifacts).*flag) names.emplace_back(name);
    write_string_list(w, "artifacts", names);
    write_number_list(w, "d_grid", artifacts->d_grid);
    write_number_list(w, "e_grid", artifacts->e_grid);
  }
  if (verb == ServiceVerb::Perturb) {
    w.key("input_index").value(input_index);
    w.key("new_p").value(new_p);
    if (screen) w.key("screen").value(true);
  }
  if (n_parameter) w.key("n").value(*n_parameter);
  if (sweeps) w.key("sweeps").value(*sweeps);
  w.end_object();
  return w.str();
}

ServiceRequest ServiceRequest::from_json_value(const JsonValue& doc) {
  if (!doc.is_object())
    throw ServiceError("bad_request", "request must be a JSON object");
  ServiceRequest r;
  bool saw_verb = false;
  std::optional<AnalysisRequest> artifact_flags;
  std::optional<std::vector<double>> d_grid, e_grid;
  for (const JsonValue::Member& m : doc.as_object()) {
    const std::string& key = m.first;
    const JsonValue& v = m.second;
    try {
      if (key == "verb") {
        r.verb = verb_from_string(v.as_string());
        saw_verb = true;
      } else if (key == "id") {
        r.id = to_uint(v);
      } else if (key == "netlist") {
        r.netlist = v.as_string();
      } else if (key == "circuit") {
        r.circuit = v.as_string();
      } else if (key == "source") {
        r.source = v.as_string();
      } else if (key == "engine") {
        r.engine = v.as_string();
      } else if (key == "seed") {
        r.seed = to_uint(v);
      } else if (key == "max_cached_results") {
        r.max_cached_results = static_cast<std::size_t>(to_uint(v));
      } else if (key == "p") {
        r.p = v.as_number();
      } else if (key == "input_probs") {
        r.input_probs = to_number_list(v);
      } else if (key == "artifacts") {
        artifact_flags = artifacts_from_names(v);
      } else if (key == "d_grid") {
        d_grid = to_number_list(v);
      } else if (key == "e_grid") {
        e_grid = to_number_list(v);
      } else if (key == "input_index") {
        r.input_index = static_cast<std::size_t>(to_uint(v));
      } else if (key == "new_p") {
        r.new_p = v.as_number();
      } else if (key == "screen") {
        r.screen = v.as_bool();
      } else if (key == "n") {
        r.n_parameter = to_uint(v);
      } else if (key == "sweeps") {
        r.sweeps = static_cast<unsigned>(to_uint(v));
      } else {
        throw std::runtime_error("unknown request member");
      }
    } catch (const ServiceError&) {
      throw;
    } catch (const std::exception& e) {
      throw ServiceError("bad_request",
                         "member '" + key + "': " + e.what());
    }
  }
  if (!saw_verb) throw ServiceError("bad_request", "missing 'verb'");
  // Grids imply an artifact request (with the default artifact set when
  // none was named explicitly).
  if (artifact_flags || d_grid || e_grid) {
    r.artifacts = artifact_flags.value_or(AnalysisRequest{});
    if (d_grid) r.artifacts->d_grid = std::move(*d_grid);
    if (e_grid) r.artifacts->e_grid = std::move(*e_grid);
  }
  return r;
}

ServiceRequest ServiceRequest::from_json(std::string_view text) {
  try {
    return from_json_value(parse_json(text));
  } catch (const ServiceError&) {
    throw;
  } catch (const std::exception& e) {
    throw ServiceError("bad_request", e.what());
  }
}

ServiceResponse ServiceResponse::success(const ServiceRequest& req,
                                         std::string result_json) {
  ServiceResponse resp;
  resp.id = req.id;
  resp.verb = std::string(to_string(req.verb));
  resp.ok = true;
  resp.result_json = std::move(result_json);
  return resp;
}

ServiceResponse ServiceResponse::failure(std::uint64_t id,
                                         std::string_view verb,
                                         const std::string& code,
                                         const std::string& message) {
  ServiceResponse resp;
  resp.id = id;
  resp.verb = std::string(verb);
  resp.ok = false;
  resp.error_code = code;
  resp.error_message = message;
  return resp;
}

std::string ServiceResponse::to_json(int indent) const {
  JsonWriter w(indent);
  w.begin_object();
  w.key("id").value(id);
  w.key("verb").value(verb);
  w.key("ok").value(ok);
  if (ok) {
    w.key("result");
    if (result_json.empty())
      w.null();
    else
      w.raw(result_json);
  } else {
    w.key("error").begin_object();
    w.key("code").value(error_code);
    w.key("message").value(error_message);
    w.end_object();
  }
  w.end_object();
  return w.str();
}

ServiceResponse ServiceResponse::from_json_value(const JsonValue& doc) {
  if (!doc.is_object())
    throw ServiceError("bad_request", "response must be a JSON object");
  ServiceResponse resp;
  try {
    resp.id = to_uint(doc.at("id"));
    resp.verb = doc.at("verb").as_string();
    resp.ok = doc.at("ok").as_bool();
    if (resp.ok) {
      const JsonValue& result = doc.at("result");
      // Re-serializing reproduces the original bytes: both sides use the
      // same writer and its double format round-trips.
      if (!result.is_null()) resp.result_json = protest::to_json(result, 0);
    } else {
      const JsonValue& error = doc.at("error");
      resp.error_code = error.at("code").as_string();
      resp.error_message = error.at("message").as_string();
    }
  } catch (const ServiceError&) {
    throw;
  } catch (const std::exception& e) {
    throw ServiceError("bad_request", e.what());
  }
  return resp;
}

ServiceResponse ServiceResponse::from_json(std::string_view text) {
  try {
    return from_json_value(parse_json(text));
  } catch (const ServiceError&) {
    throw;
  } catch (const std::exception& e) {
    throw ServiceError("bad_request", e.what());
  }
}

// --- the service ------------------------------------------------------------

Netlist netlist_from_text(const std::string& text) {
  // DSL descriptions contain a 'module' definition; .bench never does.
  if (text.find("module ") != std::string::npos) return elaborate_dsl(text);
  return read_bench_string(text);
}

ProtestService::ProtestService(ServiceConfig config)
    : config_(std::move(config)),
      registry_(config_.max_resident_sessions, config_.parallel) {}

namespace {

/// The tuple an analyze/perturb request targets.
InputProbs request_tuple(const ServiceRequest& req, const Netlist& net) {
  if (!req.input_probs.empty()) return req.input_probs;
  return uniform_input_probs(net, req.p.value_or(0.5));
}

void require_netlist_name(const ServiceRequest& req) {
  if (req.netlist.empty())
    throw ServiceError("bad_request",
                       "verb '" + std::string(to_string(req.verb)) +
                           "' requires a 'netlist' name");
}

}  // namespace

std::string ProtestService::dispatch(const ServiceRequest& req) {
  switch (req.verb) {
    case ServiceVerb::LoadNetlist: {
      require_netlist_name(req);
      if (req.circuit.empty() == req.source.empty())
        throw ServiceError("bad_request",
                           "load_netlist requires exactly one of 'circuit' "
                           "(registry name) or 'source' (netlist text)");
      Netlist net = req.circuit.empty() ? netlist_from_text(req.source)
                                        : make_circuit(req.circuit);
      SessionOptions opts = config_.session_defaults;
      if (!req.engine.empty()) opts.engine = req.engine;
      if (req.seed) opts.monte_carlo.seed = *req.seed;
      if (req.max_cached_results)
        opts.max_cached_results = *req.max_cached_results;
      registry_.register_netlist(req.netlist, std::move(net), std::move(opts));
      const std::shared_ptr<AnalysisSession> session =
          registry_.open(req.netlist);
      JsonWriter w(0);
      w.begin_object();
      w.key("netlist").value(req.netlist);
      w.key("engine").value(session->engine().name());
      const Netlist& n = session->netlist();
      w.key("inputs").value(n.inputs().size());
      w.key("outputs").value(n.outputs().size());
      w.key("gates").value(n.num_gates());
      w.key("faults").value(session->faults().size());
      const std::vector<std::string> resident = registry_.resident_names();
      write_string_list(w, "resident", resident);
      w.end_object();
      return w.str();
    }

    case ServiceVerb::Analyze: {
      require_netlist_name(req);
      const std::shared_ptr<AnalysisSession> session =
          registry_.open(req.netlist);
      const AnalysisRequest artifacts =
          req.artifacts.value_or(AnalysisRequest{});
      return session
          ->analyze(request_tuple(req, session->netlist()), artifacts)
          .to_json(0);
    }

    case ServiceVerb::Perturb: {
      require_netlist_name(req);
      const std::shared_ptr<AnalysisSession> session =
          registry_.open(req.netlist);
      const AnalysisRequest artifacts =
          req.artifacts.value_or(AnalysisRequest{});
      // The base analyze is a cache hit when the client analyzed the
      // tuple before — the resident-session payoff: the perturb then
      // re-evaluates only the changed input's fanout cone.
      const AnalysisResult base =
          session->analyze(request_tuple(req, session->netlist()), artifacts);
      const AnalysisResult perturbed =
          req.screen
              ? session->perturb_screen(base, req.input_index, req.new_p)
              : session->perturb(base, req.input_index, req.new_p);
      return perturbed.to_json(0);
    }

    case ServiceVerb::Optimize: {
      require_netlist_name(req);
      const std::shared_ptr<AnalysisSession> session =
          registry_.open(req.netlist);
      const std::uint64_t n_param = req.n_parameter.value_or(10'000);
      // A clone keeps the resident session's engine free for concurrent
      // analyze callers (same reasoning as Protest::optimize).
      const ObjectiveEvaluator eval(
          std::shared_ptr<const SignalProbEngine>(session->engine().clone()),
          session->faults(), n_param, session->options().observability,
          session->options().parallel);
      HillClimbOptions opts;
      if (req.sweeps) opts.max_sweeps = *req.sweeps;
      const HillClimbResult res = optimize_input_probs(eval, opts);
      JsonWriter w(0);
      w.begin_object();
      w.key("netlist").value(req.netlist);
      w.key("engine").value(session->engine().name());
      w.key("n_parameter").value(n_param);
      w.key("log_objective").value(res.log_objective);
      w.key("evaluations").value(res.evaluations);
      w.key("sweeps").value(static_cast<std::uint64_t>(res.sweeps));
      w.key("optimized_probs").begin_array();
      const Netlist& net = session->netlist();
      const auto inputs = net.inputs();
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        w.begin_object();
        w.key("input").value(net.name_of(inputs[i]));
        w.key("p").value(res.probs[i]);
        w.end_object();
      }
      w.end_array();
      w.end_object();
      return w.str();
    }

    case ServiceVerb::Stats: {
      JsonWriter w(0);
      if (req.netlist.empty()) {
        // Registry overview.
        w.begin_object();
        const std::vector<std::string> registered =
            registry_.registered_names();
        const std::vector<std::string> resident = registry_.resident_names();
        write_string_list(w, "registered", registered);
        write_string_list(w, "resident", resident);
        w.key("max_resident").value(registry_.max_resident());
        w.key("executor_workers").value(registry_.executor()->num_workers());
        w.end_object();
        return w.str();
      }
      // Named probe: never revives an evicted session (that would defeat
      // the point of asking) and never touches LRU order.
      const std::vector<std::string> registered = registry_.registered_names();
      if (std::find(registered.begin(), registered.end(), req.netlist) ==
          registered.end())
        throw ServiceError("unknown_netlist",
                           "no netlist registered under '" + req.netlist +
                               "'");
      const std::shared_ptr<AnalysisSession> session =
          registry_.find_resident(req.netlist);
      w.begin_object();
      w.key("netlist").value(req.netlist);
      w.key("resident").value(session != nullptr);
      if (session) {
        w.key("engine").value(session->engine().name());
        w.key("faults").value(session->faults().size());
        w.key("stats");
        session->stats().write(w);
      }
      w.end_object();
      return w.str();
    }

    case ServiceVerb::Evict: {
      require_netlist_name(req);
      const bool evicted = registry_.evict(req.netlist);
      JsonWriter w(0);
      w.begin_object();
      w.key("netlist").value(req.netlist);
      w.key("evicted").value(evicted);
      w.end_object();
      return w.str();
    }

    case ServiceVerb::Shutdown: {
      shutdown_.store(true, std::memory_order_release);
      JsonWriter w(0);
      w.begin_object();
      w.key("shutting_down").value(true);
      w.end_object();
      return w.str();
    }
  }
  throw ServiceError("unknown_verb", "unhandled verb");
}

ServiceResponse ProtestService::handle(const ServiceRequest& request) {
  const std::string_view verb = to_string(request.verb);
  try {
    return ServiceResponse::success(request, dispatch(request));
  } catch (const ServiceError& e) {
    return ServiceResponse::failure(request.id, verb, e.code(), e.what());
  } catch (const std::invalid_argument& e) {
    // Validation thrown by the layers below (bad tuple arity, probability
    // out of range, unknown engine/circuit names, ...).
    return ServiceResponse::failure(request.id, verb, "bad_request", e.what());
  } catch (const std::exception& e) {
    return ServiceResponse::failure(request.id, verb, "internal", e.what());
  }
}

std::string ProtestService::handle_line(std::string_view line) {
  std::uint64_t id = 0;
  std::string verb;
  try {
    const JsonValue doc = parse_json(line);
    // Best-effort id/verb extraction so even undecodable requests get a
    // correlatable error response.
    if (doc.is_object()) {
      if (const JsonValue* v = doc.find("id"); v && v->is_number())
        id = to_uint(*v);
      if (const JsonValue* v = doc.find("verb"); v && v->is_string())
        verb = v->as_string();
    }
    return handle(ServiceRequest::from_json_value(doc)).to_json(0);
  } catch (const ServiceError& e) {
    return ServiceResponse::failure(id, verb, e.code(), e.what()).to_json(0);
  } catch (const std::exception& e) {
    return ServiceResponse::failure(id, verb, "bad_request", e.what())
        .to_json(0);
  }
}

// --- the daemon loops -------------------------------------------------------

int serve_ndjson(ProtestService& service, std::istream& in,
                 std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    out << service.handle_line(line) << "\n" << std::flush;
    if (service.shutdown_requested()) break;
  }
  return 0;
}

}  // namespace protest

// --- TCP front end (POSIX only) ---------------------------------------------

#if defined(__unix__) || defined(__APPLE__)

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace protest {
namespace {

/// Sends the whole buffer, retrying on partial writes and EINTR.  A peer
/// that resets the connection must surface as a failed send on THIS
/// connection, never as a process-wide SIGPIPE killing the daemon —
/// hence MSG_NOSIGNAL (SO_NOSIGPIPE is set on the socket where that
/// flag doesn't exist).
bool write_all(int fd, std::string_view data) {
#ifdef MSG_NOSIGNAL
  constexpr int kSendFlags = MSG_NOSIGNAL;
#else
  constexpr int kSendFlags = 0;
#endif
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), kSendFlags);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

/// True when the fd has readable data (or EOF) within `timeout_ms`.
bool wait_readable(int fd, int timeout_ms) {
  struct pollfd pfd = {fd, POLLIN, 0};
  return ::poll(&pfd, 1, timeout_ms) > 0;
}

/// One client connection: NDJSON request lines in, response lines out.
/// Polls so the thread notices a shutdown triggered by another client.
void serve_connection(ProtestService& service, int fd) {
#ifdef SO_NOSIGPIPE
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof one);
#endif
  std::string pending;
  char buf[4096];
  while (!service.shutdown_requested()) {
    if (!wait_readable(fd, 200)) continue;
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // client closed (or error)
    pending.append(buf, static_cast<std::size_t>(n));
    bool io_ok = true;
    std::size_t start = 0;
    for (std::size_t nl;
         io_ok && (nl = pending.find('\n', start)) != std::string::npos;
         start = nl + 1) {
      std::string_view line(pending.data() + start, nl - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      if (line.find_first_not_of(" \t") == std::string_view::npos) continue;
      const std::string response = service.handle_line(line) + "\n";
      io_ok = write_all(fd, response);
      if (service.shutdown_requested()) break;
    }
    pending.erase(0, start);
    if (!io_ok) break;
  }
  ::close(fd);
}

}  // namespace

bool tcp_serve_supported() { return true; }

int serve_tcp(ProtestService& service, std::uint16_t port, std::ostream& log,
              std::atomic<std::uint16_t>* bound_port) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0)
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0 ||
      ::listen(listen_fd, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd);
    throw std::runtime_error("bind/listen 127.0.0.1:" + std::to_string(port) +
                             ": " + err);
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const std::uint16_t actual_port = ntohs(addr.sin_port);
  if (bound_port) *bound_port = actual_port;
  log << "protest serve: listening on 127.0.0.1:" << actual_port << "\n"
      << std::flush;

  // One thread per live connection.  Finished threads are reaped on
  // every accept-loop pass (their `done` flag flips as the last thing the
  // connection does), so a long-lived daemon serving many short-lived
  // clients never accumulates exited-but-unjoined threads.
  struct Connection {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::vector<Connection> connections;
  const auto reap = [&connections](bool all) {
    for (auto it = connections.begin(); it != connections.end();) {
      if (all || it->done->load(std::memory_order_acquire)) {
        it->thread.join();
        it = connections.erase(it);
      } else {
        ++it;
      }
    }
  };

  while (!service.shutdown_requested()) {
    reap(/*all=*/false);
    // Poll so the accept loop notices a shutdown handled on a connection
    // thread without needing a wake-up connection.
    if (!wait_readable(listen_fd, 200)) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    auto done = std::make_shared<std::atomic<bool>>(false);
    connections.push_back({std::thread([&service, fd, done] {
                             serve_connection(service, fd);
                             done->store(true, std::memory_order_release);
                           }),
                           done});
  }
  ::close(listen_fd);
  reap(/*all=*/true);
  log << "protest serve: shut down\n" << std::flush;
  return 0;
}

}  // namespace protest

#else  // no POSIX sockets

namespace protest {

bool tcp_serve_supported() { return false; }

int serve_tcp(ProtestService&, std::uint16_t, std::ostream&,
              std::atomic<std::uint16_t>*) {
  throw ServiceError("unsupported",
                     "TCP serving is not available on this platform; use "
                     "stdin/stdout NDJSON mode");
}

}  // namespace protest

#endif
