#include "protest/service.hpp"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <functional>
#include <istream>
#include <ostream>
#include <thread>

#include "analysis/json.hpp"
#include "circuits/zoo.hpp"
#include "lint/lint.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/dsl.hpp"
#include "optimize/hill_climb.hpp"
#include "optimize/objective.hpp"

namespace protest {

// --- the registry -----------------------------------------------------------

/// The expensive resident state: for owned registrations the netlist copy
/// the session was built on (sessions hold references, so the copy must
/// live exactly as long as the session), plus the session itself.
/// Held by shared_ptr and co-owned by every handed-out session pointer,
/// so eviction can never pull state out from under an in-flight query.
struct SessionRegistry::Resident {
  Resident(std::unique_ptr<Netlist> own, const Netlist* ext, SessionOptions o)
      : owned(std::move(own)), session(owned ? *owned : *ext, std::move(o)) {}

  std::unique_ptr<Netlist> owned;  ///< null for external registrations
  AnalysisSession session;
};

std::shared_ptr<AnalysisSession> SessionRegistry::lease(
    const std::shared_ptr<Resident>& r) {
  return std::shared_ptr<AnalysisSession>(r, &r->session);
}

SessionRegistry::SessionRegistry(std::size_t max_resident,
                                 ParallelConfig parallel)
    : max_resident_(max_resident), exec_(make_executor(parallel)) {}

void SessionRegistry::register_netlist(std::string name, Netlist net,
                                       SessionOptions opts) {
  const std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[std::move(name)];
  e = Entry{};  // replacing a registration drops its resident session
  e.prototype = std::move(net);
  e.opts = std::move(opts);
}

void SessionRegistry::register_external(std::string name, const Netlist& net,
                                        SessionOptions opts) {
  const std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[std::move(name)];
  e = Entry{};
  e.external = &net;
  e.opts = std::move(opts);
}

std::shared_ptr<AnalysisSession> SessionRegistry::open(
    const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end())
    throw ServiceError("unknown_netlist",
                       "no netlist registered under '" + name + "'");
  Entry& e = it->second;
  e.last_use = ++use_counter_;
  if (!e.resident) {
    // Revival builds the engine and fault list under the registry lock —
    // concurrent opens of OTHER names briefly queue behind it; the
    // expensive per-netlist plans build lazily inside the session later.
    SessionOptions opts = e.opts;
    opts.parallel.executor = exec_;
    std::unique_ptr<Netlist> own =
        e.prototype ? std::make_unique<Netlist>(*e.prototype) : nullptr;
    e.resident = std::make_shared<Resident>(std::move(own), e.external,
                                            std::move(opts));
    enforce_cap_locked(&e);
  }
  return lease(e.resident);
}

std::shared_ptr<AnalysisSession> SessionRegistry::find_resident(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end() || !it->second.resident) return nullptr;
  return lease(it->second.resident);
}

void SessionRegistry::enforce_cap_locked(const Entry* keep) {
  if (max_resident_ == 0) return;
  for (;;) {
    std::size_t resident = 0;
    Entry* lru = nullptr;
    for (auto& [name, e] : entries_) {
      if (!e.resident) continue;
      ++resident;
      if (&e != keep && (!lru || e.last_use < lru->last_use)) lru = &e;
    }
    if (resident <= max_resident_ || !lru) return;
    lru->resident.reset();  // in-flight leases keep their state alive
  }
}

bool SessionRegistry::evict(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end() || !it->second.resident) return false;
  it->second.resident.reset();
  return true;
}

bool SessionRegistry::unregister(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.erase(name) > 0;
}

std::vector<std::string> SessionRegistry::registered_names() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, e] : entries_) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

std::vector<std::string> SessionRegistry::resident_names() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::uint64_t, std::string>> by_use;
  for (const auto& [name, e] : entries_)
    if (e.resident) by_use.emplace_back(e.last_use, name);
  std::sort(by_use.begin(), by_use.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> names;
  names.reserve(by_use.size());
  for (auto& [use, name] : by_use) names.push_back(std::move(name));
  return names;
}

std::size_t SessionRegistry::num_resident() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [name, e] : entries_)
    if (e.resident) ++n;
  return n;
}

// --- the protocol -----------------------------------------------------------

namespace {

constexpr std::pair<ServiceVerb, std::string_view> kVerbNames[] = {
    {ServiceVerb::LoadNetlist, "load_netlist"},
    {ServiceVerb::Lint, "lint"},
    {ServiceVerb::FaultBounds, "fault_bounds"},
    {ServiceVerb::Analyze, "analyze"},
    {ServiceVerb::Perturb, "perturb"},
    {ServiceVerb::Optimize, "optimize"},
    {ServiceVerb::Stats, "stats"},
    {ServiceVerb::Evict, "evict"},
    {ServiceVerb::Shutdown, "shutdown"},
    {ServiceVerb::Submit, "submit"},
    {ServiceVerb::Poll, "poll"},
    {ServiceVerb::Wait, "wait"},
    {ServiceVerb::Cancel, "cancel"},
    {ServiceVerb::Jobs, "jobs"},
};

/// Strictly integral, non-negative number (doubles carry protocol
/// integers; exact up to 2^53).
std::uint64_t to_uint(const JsonValue& v) {
  const double d = v.as_number();
  if (!(d >= 0.0) || d != std::floor(d) || d > 9007199254740992.0)
    throw std::runtime_error("expected a non-negative integer");
  return static_cast<std::uint64_t>(d);
}

std::vector<double> to_number_list(const JsonValue& v) {
  std::vector<double> out;
  out.reserve(v.as_array().size());
  for (const JsonValue& e : v.as_array()) out.push_back(e.as_number());
  return out;
}

AnalysisRequest artifacts_from_names(const JsonValue& list) {
  // Decodes through the artifact_name_table() shared with the CLI's
  // --artifacts parser, so the two surfaces can never drift apart.
  AnalysisRequest req;
  for (const ArtifactName& a : artifact_name_table()) req.*a.flag = false;
  for (const JsonValue& e : list.as_array()) {
    const std::string& name = e.as_string();
    if (!set_artifact(req, name))
      throw std::runtime_error("unknown artifact '" + name +
                               "' (available: " + known_artifact_names() +
                               ")");
  }
  return req;
}

void write_number_list(JsonWriter& w, std::string_view key,
                       std::span<const double> values) {
  w.key(key).begin_array();
  for (const double v : values) w.value(v);
  w.end_array();
}

void write_string_list(JsonWriter& w, std::string_view key,
                       std::span<const std::string> values) {
  w.key(key).begin_array();
  for (const std::string& v : values) w.value(v);
  w.end_array();
}

}  // namespace

std::string_view to_string(ServiceVerb verb) {
  for (auto [v, name] : kVerbNames)
    if (v == verb) return name;
  return "?";
}

ServiceVerb verb_from_string(std::string_view name) {
  for (auto [v, verb_name] : kVerbNames)
    if (name == verb_name) return v;
  std::string known;
  for (auto [v, verb_name] : kVerbNames) {
    known += known.empty() ? "" : " ";
    known += verb_name;
  }
  throw ServiceError("unknown_verb", "unknown verb '" + std::string(name) +
                                         "' (available: " + known + ")");
}

std::string ServiceRequest::to_json(int indent) const {
  JsonWriter w(indent);
  w.begin_object();
  w.key("verb").value(to_string(verb));
  w.key("id").value(id);
  if (!netlist.empty()) w.key("netlist").value(netlist);
  if (!circuit.empty()) w.key("circuit").value(circuit);
  if (!source.empty()) w.key("source").value(source);
  if (!engine.empty()) w.key("engine").value(engine);
  if (seed) w.key("seed").value(*seed);
  if (patterns) w.key("patterns").value(*patterns);
  if (max_cached_results)
    w.key("max_cached_results").value(*max_cached_results);
  if (strict) w.key("strict").value(true);
  if (!passes.empty()) write_string_list(w, "passes", passes);
  if (faults) w.key("faults").value(true);
  if (p) w.key("p").value(*p);
  if (!input_probs.empty()) write_number_list(w, "input_probs", input_probs);
  if (artifacts) {
    std::vector<std::string> names;
    for (const ArtifactName& a : artifact_name_table())
      if ((*artifacts).*a.flag) names.emplace_back(a.name);
    write_string_list(w, "artifacts", names);
    write_number_list(w, "d_grid", artifacts->d_grid);
    write_number_list(w, "e_grid", artifacts->e_grid);
  }
  if (verb == ServiceVerb::Perturb) {
    w.key("input_index").value(input_index);
    w.key("new_p").value(new_p);
    if (screen) w.key("screen").value(true);
  }
  if (n_parameter) w.key("n").value(*n_parameter);
  if (sweeps) w.key("sweeps").value(*sweeps);
  if (subrequest) {
    // The wrapped verb rides along as a compact raw splice: its own
    // to_json is already canonical, so re-encoding stays a fixed point.
    w.key("request");
    w.raw(subrequest->to_json(0));
  }
  if (job) w.key("job").value(*job);
  if (timeout_ms) w.key("timeout_ms").value(*timeout_ms);
  if (deadline_ms) w.key("deadline_ms").value(*deadline_ms);
  w.end_object();
  return w.str();
}

ServiceRequest ServiceRequest::from_json_value(const JsonValue& doc) {
  if (!doc.is_object())
    throw ServiceError("bad_request", "request must be a JSON object");
  ServiceRequest r;
  bool saw_verb = false;
  std::optional<AnalysisRequest> artifact_flags;
  std::optional<std::vector<double>> d_grid, e_grid;
  for (const JsonValue::Member& m : doc.as_object()) {
    const std::string& key = m.first;
    const JsonValue& v = m.second;
    try {
      if (key == "verb") {
        r.verb = verb_from_string(v.as_string());
        saw_verb = true;
      } else if (key == "id") {
        r.id = to_uint(v);
      } else if (key == "netlist") {
        r.netlist = v.as_string();
      } else if (key == "circuit") {
        r.circuit = v.as_string();
      } else if (key == "source") {
        r.source = v.as_string();
      } else if (key == "engine") {
        r.engine = v.as_string();
      } else if (key == "seed") {
        r.seed = to_uint(v);
      } else if (key == "patterns") {
        r.patterns = static_cast<std::size_t>(to_uint(v));
      } else if (key == "max_cached_results") {
        r.max_cached_results = static_cast<std::size_t>(to_uint(v));
      } else if (key == "strict") {
        r.strict = v.as_bool();
      } else if (key == "passes") {
        for (const JsonValue& e : v.as_array())
          r.passes.push_back(e.as_string());
      } else if (key == "faults") {
        r.faults = v.as_bool();
      } else if (key == "p") {
        r.p = v.as_number();
      } else if (key == "input_probs") {
        r.input_probs = to_number_list(v);
      } else if (key == "artifacts") {
        artifact_flags = artifacts_from_names(v);
      } else if (key == "d_grid") {
        d_grid = to_number_list(v);
      } else if (key == "e_grid") {
        e_grid = to_number_list(v);
      } else if (key == "input_index") {
        r.input_index = static_cast<std::size_t>(to_uint(v));
      } else if (key == "new_p") {
        r.new_p = v.as_number();
      } else if (key == "screen") {
        r.screen = v.as_bool();
      } else if (key == "n") {
        r.n_parameter = to_uint(v);
      } else if (key == "sweeps") {
        r.sweeps = static_cast<unsigned>(to_uint(v));
      } else if (key == "request") {
        r.subrequest = std::make_shared<ServiceRequest>(from_json_value(v));
      } else if (key == "job") {
        r.job = to_uint(v);
      } else if (key == "timeout_ms") {
        r.timeout_ms = to_uint(v);
      } else if (key == "deadline_ms") {
        // Same guarded conversion as request ids: negative, fractional,
        // or beyond-2^53 budgets are bad_request, never wrapped into a
        // surprise deadline.
        r.deadline_ms = to_uint(v);
      } else {
        throw std::runtime_error("unknown request member");
      }
    } catch (const ServiceError&) {
      throw;
    } catch (const std::exception& e) {
      throw ServiceError("bad_request",
                         "member '" + key + "': " + e.what());
    }
  }
  if (!saw_verb) throw ServiceError("bad_request", "missing 'verb'");
  // Grids imply an artifact request (with the default artifact set when
  // none was named explicitly).
  if (artifact_flags || d_grid || e_grid) {
    r.artifacts = artifact_flags.value_or(AnalysisRequest{});
    if (d_grid) r.artifacts->d_grid = std::move(*d_grid);
    if (e_grid) r.artifacts->e_grid = std::move(*e_grid);
  }
  return r;
}

ServiceRequest ServiceRequest::from_json(std::string_view text) {
  try {
    return from_json_value(parse_json(text));
  } catch (const ServiceError&) {
    throw;
  } catch (const std::exception& e) {
    throw ServiceError("bad_request", e.what());
  }
}

ServiceResponse ServiceResponse::success(const ServiceRequest& req,
                                         std::string result_json) {
  ServiceResponse resp;
  resp.id = req.id;
  resp.verb = std::string(to_string(req.verb));
  resp.ok = true;
  resp.result_json = std::move(result_json);
  return resp;
}

ServiceResponse ServiceResponse::failure(std::uint64_t id,
                                         std::string_view verb,
                                         const std::string& code,
                                         const std::string& message) {
  ServiceResponse resp;
  resp.id = id;
  resp.verb = std::string(verb);
  resp.ok = false;
  resp.error_code = code;
  resp.error_message = message;
  return resp;
}

std::string ServiceResponse::to_json(int indent) const {
  JsonWriter w(indent);
  w.begin_object();
  w.key("id").value(id);
  w.key("verb").value(verb);
  w.key("ok").value(ok);
  if (ok) {
    w.key("result");
    if (result_json.empty())
      w.null();
    else
      w.raw(result_json);
  } else {
    w.key("error").begin_object();
    w.key("code").value(error_code);
    w.key("message").value(error_message);
    w.end_object();
  }
  w.end_object();
  return w.str();
}

ServiceResponse ServiceResponse::from_json_value(const JsonValue& doc) {
  if (!doc.is_object())
    throw ServiceError("bad_request", "response must be a JSON object");
  ServiceResponse resp;
  try {
    resp.id = to_uint(doc.at("id"));
    resp.verb = doc.at("verb").as_string();
    resp.ok = doc.at("ok").as_bool();
    if (resp.ok) {
      const JsonValue& result = doc.at("result");
      // Re-serializing reproduces the original bytes: both sides use the
      // same writer and its double format round-trips.
      if (!result.is_null()) resp.result_json = protest::to_json(result, 0);
    } else {
      const JsonValue& error = doc.at("error");
      resp.error_code = error.at("code").as_string();
      resp.error_message = error.at("message").as_string();
    }
  } catch (const ServiceError&) {
    throw;
  } catch (const std::exception& e) {
    throw ServiceError("bad_request", e.what());
  }
  return resp;
}

ServiceResponse ServiceResponse::from_json(std::string_view text) {
  try {
    return from_json_value(parse_json(text));
  } catch (const ServiceError&) {
    throw;
  } catch (const std::exception& e) {
    throw ServiceError("bad_request", e.what());
  }
}

// --- the service ------------------------------------------------------------

Netlist netlist_from_text(const std::string& text) {
  // DSL descriptions contain a 'module' definition; .bench never does.
  if (text.find("module ") != std::string::npos) return elaborate_dsl(text);
  return read_bench_string(text);
}

ProtestService::ProtestService(ServiceConfig config)
    : config_(std::move(config)),
      registry_(config_.max_resident_sessions, config_.parallel),
      jobs_(config_.job_workers) {}

namespace {

/// The tuple an analyze/perturb request targets.
InputProbs request_tuple(const ServiceRequest& req, const Netlist& net) {
  if (!req.input_probs.empty()) return req.input_probs;
  return uniform_input_probs(net, req.p.value_or(0.5));
}

void require_netlist_name(const ServiceRequest& req) {
  if (req.netlist.empty())
    throw ServiceError("bad_request",
                       "verb '" + std::string(to_string(req.verb)) +
                           "' requires a 'netlist' name");
}

std::uint64_t require_job_id(const ServiceRequest& req) {
  if (!req.job)
    throw ServiceError("bad_request",
                       "verb '" + std::string(to_string(req.verb)) +
                           "' requires a 'job' ticket id");
  return *req.job;
}

/// Only the three WORK verbs run as jobs — the same class the pipelined
/// front end fans out.  Job-control verbs nesting inside jobs would
/// deadlock (a waiting job occupying the worker its target needs);
/// shutdown must act on the serving loop directly; and the registry-
/// mutating verbs (load_netlist/evict) plus stats are instant and must
/// keep their deterministic ordering relative to the request stream —
/// a ticketed load racing a pipelined analyze would reintroduce exactly
/// the reordering hazard the barrier class rules out.
bool submittable(ServiceVerb verb) {
  switch (verb) {
    case ServiceVerb::Analyze:
    case ServiceVerb::Perturb:
    case ServiceVerb::Optimize:
    case ServiceVerb::Lint:
    case ServiceVerb::FaultBounds:
      return true;
    case ServiceVerb::LoadNetlist:
    case ServiceVerb::Stats:
    case ServiceVerb::Evict:
    case ServiceVerb::Shutdown:
    case ServiceVerb::Submit:
    case ServiceVerb::Poll:
    case ServiceVerb::Wait:
    case ServiceVerb::Cancel:
    case ServiceVerb::Jobs:
      return false;
  }
  return false;
}

/// Builds lint options from a request: pass subset + the prob-bounds
/// input probability.  Unknown pass names surface as bad_request.
LintOptions lint_options_from(const ServiceRequest& req) {
  LintOptions opts;
  opts.passes = req.passes;
  opts.faults = req.faults;
  if (req.p) opts.p = *req.p;
  const auto known = lint_pass_names();
  for (const std::string& p : req.passes) {
    if (std::find(known.begin(), known.end(), p) == known.end()) {
      std::string msg = "unknown lint pass '" + p + "' (available:";
      for (const std::string_view k : known) msg += " " + std::string(k);
      throw ServiceError("bad_request", msg + ")");
    }
  }
  return opts;
}

/// The poll/wait result payload.  A done job splices the inner verb's
/// ServiceResponse back BYTE-IDENTICALLY under "response" — the central
/// async-API guarantee; a cancelled job carries no payload at all.
std::string job_payload(const JobInfo& info) {
  JsonWriter w(0);
  w.begin_object();
  w.key("job").value(info.id);
  w.key("verb").value(info.label);
  w.key("state").value(to_string(info.state));
  if (info.state == JobState::Done) {
    w.key("response");
    if (info.payload.empty())
      w.null();
    else
      w.raw(info.payload);
  }
  if (info.state == JobState::Failed) w.key("error").value(info.error);
  w.end_object();
  return w.str();
}

}  // namespace

std::string ProtestService::dispatch(const ServiceRequest& req) {
  switch (req.verb) {
    case ServiceVerb::LoadNetlist: {
      require_netlist_name(req);
      if (req.circuit.empty() == req.source.empty())
        throw ServiceError("bad_request",
                           "load_netlist requires exactly one of 'circuit' "
                           "(registry name) or 'source' (netlist text)");
      Netlist net = req.circuit.empty() ? netlist_from_text(req.source)
                                        : make_circuit(req.circuit);
      // Strict mode: the correctness gate for the served fleet — reject
      // netlists with error-severity lint findings before they ever
      // become resident.
      LintReport lint_report;
      if (req.strict) {
        lint_report = run_lint(net, lint_options_from(req));
        if (lint_report.errors > 0) {
          std::string first;
          for (const LintDiagnostic& d : lint_report.diagnostics) {
            if (d.severity == LintSeverity::Error) {
              first = d.message;
              break;
            }
          }
          throw ServiceError(
              "lint_failed",
              "strict load rejected '" + req.netlist + "': " +
                  std::to_string(lint_report.errors) +
                  " error-severity lint finding(s); first: " + first);
        }
      }
      SessionOptions opts = config_.session_defaults;
      if (!req.engine.empty()) opts.engine = req.engine;
      if (req.seed) opts.monte_carlo.seed = *req.seed;
      if (req.patterns) opts.monte_carlo.num_patterns = *req.patterns;
      if (req.max_cached_results)
        opts.max_cached_results = *req.max_cached_results;
      registry_.register_netlist(req.netlist, std::move(net), std::move(opts));
      const std::shared_ptr<AnalysisSession> session =
          registry_.open(req.netlist);
      JsonWriter w(0);
      w.begin_object();
      w.key("netlist").value(req.netlist);
      w.key("engine").value(session->engine().name());
      const Netlist& n = session->netlist();
      w.key("inputs").value(n.inputs().size());
      w.key("outputs").value(n.outputs().size());
      w.key("gates").value(n.num_gates());
      w.key("faults").value(session->faults().size());
      if (req.strict) {
        session->record_lint(lint_report.errors, lint_report.warnings,
                             lint_report.infos);
        w.key("lint").begin_object();
        w.key("errors").value(lint_report.errors);
        w.key("warnings").value(lint_report.warnings);
        w.key("infos").value(lint_report.infos);
        w.end_object();
      }
      const std::vector<std::string> resident = registry_.resident_names();
      write_string_list(w, "resident", resident);
      w.end_object();
      return w.str();
    }

    case ServiceVerb::Lint: {
      require_netlist_name(req);
      const std::shared_ptr<AnalysisSession> session =
          registry_.open(req.netlist);
      const LintReport report =
          run_lint(session->netlist(), lint_options_from(req));
      session->record_lint(report.errors, report.warnings, report.infos);
      JsonWriter w(0);
      w.begin_object();
      w.key("netlist").value(req.netlist);
      w.key("report");
      w.raw(report.to_json(0));
      w.end_object();
      return w.str();
    }

    case ServiceVerb::FaultBounds: {
      require_netlist_name(req);
      const std::shared_ptr<AnalysisSession> session =
          registry_.open(req.netlist);
      // Ride the session's memoized artifact: request ONLY fault_bounds
      // so the analyze computes nothing else, then read the analysis off
      // the result.  A repeat query on the same tuple is a cache hit.
      AnalysisRequest artifacts;
      for (const ArtifactName& a : artifact_name_table())
        artifacts.*a.flag = false;
      artifacts.fault_bounds = true;
      const AnalysisResult res =
          session->analyze(request_tuple(req, session->netlist()), artifacts);
      const FaultAnalysis& fa = res.fault_bounds();
      const std::vector<Fault>& faults = session->faults();
      // Large netlists would otherwise dominate the response line; the
      // summary always ships, the per-fault list is capped.
      constexpr std::size_t kMaxFaultEntries = 4096;
      const std::size_t shown = std::min(fa.bounds.size(), kMaxFaultEntries);
      JsonWriter w(0);
      w.begin_object();
      w.key("netlist").value(req.netlist);
      w.key("summary").begin_object();
      w.key("faults").value(fa.bounds.size());
      w.key("proven_undetectable").value(fa.undetectable);
      w.key("unexcitable").value(fa.unexcitable);
      w.key("unobservable").value(fa.unobservable);
      w.key("proven_detectable").value(fa.detectable);
      w.key("uncertain").value(fa.uncertain);
      w.key("truncated_sweeps").value(fa.truncated_sweeps);
      w.key("frechet_widened").value(fa.frechet_widened);
      w.key("learned_constants").value(fa.learned_constants);
      w.key("settled_fraction").value(fa.settled_fraction());
      w.end_object();
      w.key("faults").begin_array();
      const Netlist& net = session->netlist();
      for (std::size_t f = 0; f < shown; ++f) {
        const FaultBound& b = fa.bounds[f];
        w.begin_object();
        w.key("fault").value(to_string(net, faults[f]));
        w.key("lo").value(b.lo);
        w.key("hi").value(b.hi);
        w.key("verdict").value(to_string(b.verdict));
        if (b.cause != UndetectableCause::None)
          w.key("cause").value(to_string(b.cause));
        if (b.truncated) w.key("truncated").value(true);
        w.end_object();
      }
      w.end_array();
      if (shown < fa.bounds.size()) w.key("faults_truncated").value(true);
      w.end_object();
      return w.str();
    }

    case ServiceVerb::Analyze: {
      require_netlist_name(req);
      const std::shared_ptr<AnalysisSession> session =
          registry_.open(req.netlist);
      const AnalysisRequest artifacts =
          req.artifacts.value_or(AnalysisRequest{});
      return session
          ->analyze(request_tuple(req, session->netlist()), artifacts)
          .to_json(0);
    }

    case ServiceVerb::Perturb: {
      require_netlist_name(req);
      const std::shared_ptr<AnalysisSession> session =
          registry_.open(req.netlist);
      const AnalysisRequest artifacts =
          req.artifacts.value_or(AnalysisRequest{});
      // The base analyze is a cache hit when the client analyzed the
      // tuple before — the resident-session payoff: the perturb then
      // re-evaluates only the changed input's fanout cone.
      const AnalysisResult base =
          session->analyze(request_tuple(req, session->netlist()), artifacts);
      const AnalysisResult perturbed =
          req.screen
              ? session->perturb_screen(base, req.input_index, req.new_p)
              : session->perturb(base, req.input_index, req.new_p);
      return perturbed.to_json(0);
    }

    case ServiceVerb::Optimize: {
      require_netlist_name(req);
      const std::shared_ptr<AnalysisSession> session =
          registry_.open(req.netlist);
      const std::uint64_t n_param = req.n_parameter.value_or(10'000);
      // A clone keeps the resident session's engine free for concurrent
      // analyze callers (same reasoning as Protest::optimize).
      const ObjectiveEvaluator eval(
          std::shared_ptr<const SignalProbEngine>(session->engine().clone()),
          session->faults(), n_param, session->options().observability,
          session->options().parallel);
      HillClimbOptions opts;
      if (req.sweeps) opts.max_sweeps = *req.sweeps;
      const HillClimbResult res = optimize_input_probs(eval, opts);
      JsonWriter w(0);
      w.begin_object();
      w.key("netlist").value(req.netlist);
      w.key("engine").value(session->engine().name());
      w.key("n_parameter").value(n_param);
      w.key("log_objective").value(res.log_objective);
      w.key("evaluations").value(res.evaluations);
      w.key("sweeps").value(static_cast<std::uint64_t>(res.sweeps));
      w.key("optimized_probs").begin_array();
      const Netlist& net = session->netlist();
      const auto inputs = net.inputs();
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        w.begin_object();
        w.key("input").value(net.name_of(inputs[i]));
        w.key("p").value(res.probs[i]);
        w.end_object();
      }
      w.end_array();
      w.end_object();
      return w.str();
    }

    case ServiceVerb::Stats: {
      JsonWriter w(0);
      if (req.netlist.empty()) {
        // Registry overview.
        w.begin_object();
        const std::vector<std::string> registered =
            registry_.registered_names();
        const std::vector<std::string> resident = registry_.resident_names();
        write_string_list(w, "registered", registered);
        write_string_list(w, "resident", resident);
        w.key("max_resident").value(registry_.max_resident());
        w.key("executor_workers").value(registry_.executor()->num_workers());
        w.end_object();
        return w.str();
      }
      // Named probe: never revives an evicted session (that would defeat
      // the point of asking) and never touches LRU order.
      const std::vector<std::string> registered = registry_.registered_names();
      if (std::find(registered.begin(), registered.end(), req.netlist) ==
          registered.end())
        throw ServiceError("unknown_netlist",
                           "no netlist registered under '" + req.netlist +
                               "'");
      const std::shared_ptr<AnalysisSession> session =
          registry_.find_resident(req.netlist);
      w.begin_object();
      w.key("netlist").value(req.netlist);
      w.key("resident").value(session != nullptr);
      if (session) {
        w.key("engine").value(session->engine().name());
        w.key("faults").value(session->faults().size());
        w.key("stats");
        session->stats().write(w);
      }
      w.end_object();
      return w.str();
    }

    case ServiceVerb::Evict: {
      require_netlist_name(req);
      const bool evicted = registry_.evict(req.netlist);
      JsonWriter w(0);
      w.begin_object();
      w.key("netlist").value(req.netlist);
      w.key("evicted").value(evicted);
      w.end_object();
      return w.str();
    }

    case ServiceVerb::Shutdown: {
      shutdown_.store(true, std::memory_order_release);
      // Unfinished jobs stop at their next checkpoint instead of pinning
      // the daemon's exit on a long Monte-Carlo budget.
      jobs_.cancel_all();
      JsonWriter w(0);
      w.begin_object();
      w.key("shutting_down").value(true);
      w.end_object();
      return w.str();
    }

    case ServiceVerb::Submit: {
      if (!req.subrequest)
        throw ServiceError("bad_request",
                           "submit requires a 'request' object (the verb to "
                           "run as a job)");
      const ServiceRequest inner = *req.subrequest;
      if (!submittable(inner.verb))
        throw ServiceError("bad_request",
                           "verb '" + std::string(to_string(inner.verb)) +
                               "' cannot run as a job (only the work verbs "
                               "analyze/perturb/optimize are submittable)");
      // The job re-enters handle(): the stored payload IS the synchronous
      // verb's ServiceResponse, serialized compactly — which is what
      // makes poll/wait byte-identical to the synchronous path.
      const JobTicket ticket =
          jobs_.submit(std::string(to_string(inner.verb)),
                       [this, inner] { return handle(inner).to_json(0); });
      JsonWriter w(0);
      w.begin_object();
      w.key("job").value(ticket.id);
      w.key("verb").value(to_string(inner.verb));
      w.key("state").value(to_string(ticket.state));
      w.end_object();
      return w.str();
    }

    case ServiceVerb::Poll:
    case ServiceVerb::Wait: {
      const std::uint64_t id = require_job_id(req);
      const std::optional<JobInfo> info =
          req.verb == ServiceVerb::Poll
              ? jobs_.poll(id)
              : jobs_.wait(id, req.timeout_ms
                                   ? std::optional<std::chrono::milliseconds>(
                                         std::chrono::milliseconds(
                                             *req.timeout_ms))
                                   : std::nullopt);
      if (!info)
        throw ServiceError("unknown_job",
                           "no job with ticket id " + std::to_string(id));
      return job_payload(*info);
    }

    case ServiceVerb::Cancel: {
      const std::uint64_t id = require_job_id(req);
      if (!jobs_.poll(id))
        throw ServiceError("unknown_job",
                           "no job with ticket id " + std::to_string(id));
      // requested == false means the job had already finished — the
      // result stands; a poll will return it.
      const bool requested = jobs_.cancel(id);
      JsonWriter w(0);
      w.begin_object();
      w.key("job").value(id);
      w.key("requested").value(requested);
      w.end_object();
      return w.str();
    }

    case ServiceVerb::Jobs: {
      JsonWriter w(0);
      w.begin_object();
      w.key("jobs").begin_array();
      for (const JobInfo& j : jobs_.jobs()) {
        w.begin_object();
        w.key("job").value(j.id);
        w.key("verb").value(j.label);
        w.key("state").value(to_string(j.state));
        w.end_object();
      }
      w.end_array();
      w.end_object();
      return w.str();
    }
  }
  throw ServiceError("unknown_verb", "unhandled verb");
}

ServiceResponse ProtestService::handle(const ServiceRequest& request) {
  const std::string_view verb = to_string(request.verb);
  // A deadline_ms budget becomes a deadline token linked to the ambient
  // token (a job's cancel, a connection's drop), installed for the span
  // of dispatch.  The existing checkpoints — Monte-Carlo shards, hill-
  // climb coordinates, batch tasks — now observe the deadline for free.
  std::optional<CancelScope> deadline_scope;
  if (request.deadline_ms) {
    deadline_scope.emplace(CancelToken::with_deadline(
        current_cancel_token(),
        std::chrono::steady_clock::now() +
            std::chrono::milliseconds(*request.deadline_ms)));
  }
  try {
    return ServiceResponse::success(request, dispatch(request));
  } catch (const OperationCancelled& e) {
    // An expired deadline THIS request declared answers structurally —
    // the caller asked for a budget and gets told it ran out.  Everything
    // else (explicit job cancel, an outer deadline) propagates to the
    // layer that owns it: the job layer records cancelled, an outer
    // handle() converts its own deadline.
    if (request.deadline_ms && e.reason() == CancelReason::DeadlineExceeded) {
      return ServiceResponse::failure(
          request.id, verb, "deadline_exceeded",
          "request exceeded its deadline_ms=" +
              std::to_string(*request.deadline_ms) + " budget");
    }
    throw;
  } catch (const ServiceError& e) {
    return ServiceResponse::failure(request.id, verb, e.code(), e.what());
  } catch (const std::invalid_argument& e) {
    // Validation thrown by the layers below (bad tuple arity, probability
    // out of range, unknown engine/circuit names, ...).
    return ServiceResponse::failure(request.id, verb, "bad_request", e.what());
  } catch (const std::exception& e) {
    return ServiceResponse::failure(request.id, verb, "internal", e.what());
  }
}

std::string ProtestService::handle_line(std::string_view line) {
  std::uint64_t id = 0;
  std::string verb;
  try {
    const JsonValue doc = parse_json(line);
    // Best-effort verb/id extraction so even undecodable requests get a
    // correlatable error response.  The verb comes FIRST and the id is
    // guarded separately: a malformed id (negative, fractional, beyond
    // 2^53, wrong type) must echo id:0 alongside the bad_request error —
    // never a partially-converted value, and never at the cost of the
    // verb echo.
    if (doc.is_object()) {
      if (const JsonValue* v = doc.find("verb"); v && v->is_string())
        verb = v->as_string();
      if (const JsonValue* v = doc.find("id"); v && v->is_number()) {
        try {
          id = to_uint(*v);
        } catch (const std::exception&) {
          id = 0;  // from_json_value below reports the bad member
        }
      }
    }
    return handle(ServiceRequest::from_json_value(doc)).to_json(0);
  } catch (const OperationCancelled&) {
    throw;  // see handle()
  } catch (const ServiceError& e) {
    return ServiceResponse::failure(id, verb, e.code(), e.what()).to_json(0);
  } catch (const std::exception& e) {
    return ServiceResponse::failure(id, verb, "bad_request", e.what())
        .to_json(0);
  }
}

// --- the daemon loops -------------------------------------------------------

namespace {

/// Verb classes of pipelined dispatch (see ServeOptions): work verbs fan
/// out, control verbs answer inline in request order, registry-mutating
/// verbs barrier.  Classification parses the line once more — noise next
/// to a work verb's evaluation, and the other classes are cheap anyway.
enum class LineClass { Work, Inline, Barrier };

LineClass classify_line(std::string_view line) {
  try {
    const JsonValue doc = parse_json(line);
    if (doc.is_object())
      if (const JsonValue* v = doc.find("verb"); v && v->is_string()) {
        const std::string& name = v->as_string();
        if (name == "analyze" || name == "perturb" || name == "optimize" ||
            name == "lint" || name == "fault_bounds")
          return LineClass::Work;
        if (name == "load_netlist" || name == "evict" || name == "shutdown")
          return LineClass::Barrier;
      }
  } catch (const std::exception&) {
    // Malformed lines answer inline with their structured error.
  }
  return LineClass::Inline;
}

/// Best-effort verb extraction for the fault-injection hook (injection
/// rules trigger on the verb BEFORE dispatch, so a crash-at-verb fault
/// kills the worker with the request genuinely in flight).
std::string peek_verb(std::string_view line) {
  try {
    const JsonValue doc = parse_json(line);
    if (doc.is_object())
      if (const JsonValue* v = doc.find("verb"); v && v->is_string())
        return v->as_string();
  } catch (const std::exception&) {
  }
  return "";
}

/// Applies an armed fault rule for this request line.  Returns true when
/// the request was CONSUMED by the fault (garbage emitted instead of a
/// response) — the caller must not dispatch it.  Crash never returns;
/// stall sleeps the calling (reader) thread, so heartbeats stop being
/// answered and the supervisor sees a wedged worker, then falls through
/// to normal dispatch.
bool apply_fault(FaultInjector* injector, std::string_view line,
                 const std::function<bool(const std::string&)>& emit) {
  if (!injector || !injector->armed()) return false;
  FaultAction action;
  if (!injector->should_fire(peek_verb(line), &action)) return false;
  switch (action) {
    case FaultAction::Crash:
      std::_Exit(9);  // a hard crash: no unwinding, no flushing
    case FaultAction::Stall:
      std::this_thread::sleep_for(injector->stall_duration());
      return false;
    case FaultAction::Garbage:
      emit(FaultInjector::garbage_line());
      return true;
  }
  return false;
}

/// Pipelined out-of-order dispatch for one connection: up to `slots` work
/// lines run concurrently on private threads, responses interleave on the
/// sink (serialized per line), and dispatch() BLOCKS while every slot is
/// busy — the connection-level backpressure that throttles a flooding
/// client by its own unfinished work.
class LineDispatcher {
 public:
  /// `sink` writes one complete response line (it is called under an
  /// internal lock, so lines never interleave) and returns false once the
  /// connection is dead.
  LineDispatcher(ServiceEndpoint& service, std::size_t slots,
                 std::function<bool(const std::string&)> sink)
      : service_(service),
        slots_(slots == 0 ? 1 : slots),
        sink_(std::move(sink)) {}

  ~LineDispatcher() {
    drain();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
      work_cv_.notify_all();
    }
    for (std::thread& t : threads_) t.join();
  }

  /// Routes one trimmed, non-blank request line.  Returns false once the
  /// sink has failed.
  bool dispatch(std::string line) {
    switch (classify_line(line)) {
      case LineClass::Work: {
        std::unique_lock<std::mutex> lock(mu_);
        if (threads_.empty()) {
          threads_.reserve(slots_);
          for (std::size_t i = 0; i < slots_; ++i)
            threads_.emplace_back([this] { worker_loop(); });
        }
        // Backpressure: stall the reader until a slot frees up.
        capacity_cv_.wait(lock, [&] {
          return inflight_ < slots_ || sink_failed_.load();
        });
        if (sink_failed_.load()) return false;
        ++inflight_;
        queue_.push_back(std::move(line));
        work_cv_.notify_one();
        return true;
      }
      case LineClass::Barrier:
        // In-flight work completes first, so "load then query" scripts
        // and evict-after-analyze mean the same thing as in serial mode.
        drain();
        return respond(service_.handle_line(line));
      case LineClass::Inline:
        return respond(service_.handle_line(line));
    }
    return true;
  }

  /// Blocks until every dispatched work line has been answered.
  void drain() {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return inflight_ == 0; });
  }

  /// Cancels every in-flight work line at its next checkpoint.  Called
  /// when the connection is gone (hard reset, failed write): the work's
  /// responses have no reader, so finishing a long Monte-Carlo run would
  /// only burn the shared executor.  Ticketed jobs are NOT affected —
  /// they run under their own job tokens on the JobManager's threads and
  /// stay pollable from other connections.
  void cancel_inflight() { conn_token_.request_cancel(); }

 private:
  void worker_loop() {
    for (;;) {
      std::string line;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping, nothing left
        line = std::move(queue_.front());
        queue_.pop_front();
      }
      try {
        const CancelScope scope(conn_token_);
        const std::string response = service_.handle_line(line);
        respond(response);
      } catch (const OperationCancelled&) {
        // The connection dropped and cancel_inflight() fired: there is
        // nobody left to answer, so just release the slot.
      }
      {
        const std::lock_guard<std::mutex> lock(mu_);
        --inflight_;
        done_cv_.notify_all();
        capacity_cv_.notify_one();
      }
    }
  }

  bool respond(const std::string& response) {
    const std::lock_guard<std::mutex> lock(out_mu_);
    if (sink_failed_.load()) return false;
    if (!sink_(response)) {
      sink_failed_.store(true);
      // Unblock a reader stalled on backpressure and stop burning cycles
      // on work nobody can read; workers still drain the queue (their
      // writes fail fast above).
      cancel_inflight();
      capacity_cv_.notify_all();
      return false;
    }
    return true;
  }

  ServiceEndpoint& service_;
  const std::size_t slots_;
  const std::function<bool(const std::string&)> sink_;
  std::mutex mu_;                       ///< queue + inflight + stopping
  std::mutex out_mu_;                   ///< serializes sink writes
  std::condition_variable work_cv_;     ///< queue gained work / stopping
  std::condition_variable capacity_cv_; ///< a slot freed up
  std::condition_variable done_cv_;     ///< inflight hit zero
  std::deque<std::string> queue_;
  std::vector<std::thread> threads_;    ///< spawned on first work line
  std::size_t inflight_ = 0;            ///< queued + running work lines
  bool stopping_ = false;
  std::atomic<bool> sink_failed_{false};
  /// Connection-lifetime token, ambient around every pipelined dispatch.
  const CancelToken conn_token_ = CancelToken::source();
};

}  // namespace

/// A client that closes its read end must surface as a failed stream
/// write on THIS loop, never as a process-wide SIGPIPE killing the
/// daemon.  Idempotent; called by every serve entry point.
void ignore_sigpipe();

int serve_ndjson(ServiceEndpoint& service, std::istream& in, std::ostream& out,
                 ServeOptions options) {
  ignore_sigpipe();
  const auto emit = [&out](const std::string& response) {
    out << response << "\n" << std::flush;
    return static_cast<bool>(out);
  };
  if (options.max_inflight == 0) {
    // Serial mode: one request at a time, responses in request order.
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.find_first_not_of(" \t") == std::string::npos) continue;
      if (apply_fault(options.injector, line, emit)) continue;
      if (!emit(service.handle_line(line))) break;  // downstream closed
      if (service.shutdown_requested()) break;
    }
    return 0;
  }

  LineDispatcher dispatcher(service, options.max_inflight, emit);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    if (apply_fault(options.injector, line, emit)) continue;
    if (!dispatcher.dispatch(std::move(line))) break;
    if (service.shutdown_requested()) break;
  }
  dispatcher.drain();  // in-flight responses land before we return
  return 0;
}

}  // namespace protest

// --- TCP front end (POSIX only) ---------------------------------------------

#if defined(__unix__) || defined(__APPLE__)

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

namespace protest {

void ignore_sigpipe() {
  // A write to a closed pipe/socket then fails with EPIPE instead of
  // raising a process-killing signal.  Sends additionally pass
  // MSG_NOSIGNAL where available; this covers stdout-pipe serving and
  // platforms without the flag.
  std::signal(SIGPIPE, SIG_IGN);
}

namespace {

/// Sends the whole buffer, retrying on partial writes and EINTR.  A peer
/// that resets the connection must surface as a failed send on THIS
/// connection, never as a process-wide SIGPIPE killing the daemon —
/// hence MSG_NOSIGNAL (SO_NOSIGPIPE is set on the socket where that
/// flag doesn't exist).
bool write_all(int fd, std::string_view data) {
#ifdef MSG_NOSIGNAL
  constexpr int kSendFlags = MSG_NOSIGNAL;
#else
  constexpr int kSendFlags = 0;
#endif
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), kSendFlags);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

/// True when the fd has readable data (or EOF) within `timeout_ms`.
bool wait_readable(int fd, int timeout_ms) {
  struct pollfd pfd = {fd, POLLIN, 0};
  return ::poll(&pfd, 1, timeout_ms) > 0;
}

/// One client connection: NDJSON request lines in, response lines out.
/// Polls so the thread notices a shutdown triggered by another client.
/// With options.max_inflight > 0 the connection pipelines: work-verb
/// responses return out of order and reading stalls while every dispatch
/// slot is busy (see ServeOptions).
///
/// Disconnect handling: a mid-response disconnect (EPIPE/ECONNRESET on
/// write) or a hard reset on read logs-and-closes THIS connection only —
/// SIGPIPE is ignored process-wide, so the daemon survives — and cancels
/// the connection's in-flight pipelined work at its next checkpoint.
/// An orderly EOF instead drains: in-flight responses still complete
/// (the client may have half-closed and be reading).
void serve_connection(ServiceEndpoint& service, int fd,
                      const ServeOptions& options, std::ostream& log,
                      std::mutex& log_mu) {
#ifdef SO_NOSIGPIPE
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof one);
#endif
  std::optional<LineDispatcher> dispatcher;
  if (options.max_inflight > 0)
    dispatcher.emplace(service, options.max_inflight,
                       [fd](const std::string& response) {
                         return write_all(fd, response + "\n");
                       });
  bool client_lost = false;
  std::string pending;
  char buf[4096];
  while (!service.shutdown_requested()) {
    if (!wait_readable(fd, 200)) continue;
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {  // hard drop (reset): nobody will read our responses
      client_lost = true;
      break;
    }
    if (n == 0) break;  // orderly EOF: drain below
    pending.append(buf, static_cast<std::size_t>(n));
    bool io_ok = true;
    std::size_t start = 0;
    for (std::size_t nl;
         io_ok && (nl = pending.find('\n', start)) != std::string::npos;
         start = nl + 1) {
      std::string_view line(pending.data() + start, nl - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      if (line.find_first_not_of(" \t") == std::string_view::npos) continue;
      if (dispatcher) {
        io_ok = dispatcher->dispatch(std::string(line));
      } else {
        const std::string response = service.handle_line(line) + "\n";
        io_ok = write_all(fd, response);
      }
      if (service.shutdown_requested()) break;
    }
    pending.erase(0, start);
    if (!io_ok) {
      client_lost = true;
      break;
    }
  }
  if (dispatcher) {
    if (client_lost) dispatcher->cancel_inflight();
    dispatcher->drain();  // flush (or release) in-flight responses
  }
  if (client_lost) {
    const std::lock_guard<std::mutex> lock(log_mu);
    log << "protest serve: client disconnected mid-response; closing its "
           "connection\n"
        << std::flush;
  }
  ::close(fd);
}

}  // namespace

bool tcp_serve_supported() { return true; }

int serve_tcp(ServiceEndpoint& service, std::uint16_t port, std::ostream& log,
              std::atomic<std::uint16_t>* bound_port, ServeOptions options) {
  ignore_sigpipe();
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0)
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0 ||
      ::listen(listen_fd, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd);
    throw std::runtime_error("bind/listen 127.0.0.1:" + std::to_string(port) +
                             ": " + err);
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const std::uint16_t actual_port = ntohs(addr.sin_port);
  if (bound_port) *bound_port = actual_port;
  log << "protest serve: listening on 127.0.0.1:" << actual_port << "\n"
      << std::flush;

  // One thread per live connection.  Finished threads are reaped on
  // every accept-loop pass (their `done` flag flips as the last thing the
  // connection does), so a long-lived daemon serving many short-lived
  // clients never accumulates exited-but-unjoined threads.
  struct Connection {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::vector<Connection> connections;
  const auto reap = [&connections](bool all) {
    for (auto it = connections.begin(); it != connections.end();) {
      if (all || it->done->load(std::memory_order_acquire)) {
        it->thread.join();
        it = connections.erase(it);
      } else {
        ++it;
      }
    }
  };

  std::mutex log_mu;  // connection threads share the log stream
  while (!service.shutdown_requested()) {
    reap(/*all=*/false);
    // Poll so the accept loop notices a shutdown handled on a connection
    // thread without needing a wake-up connection.
    if (!wait_readable(listen_fd, 200)) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    auto done = std::make_shared<std::atomic<bool>>(false);
    connections.push_back(
        {std::thread([&service, fd, done, options, &log, &log_mu] {
           serve_connection(service, fd, options, log, log_mu);
           done->store(true, std::memory_order_release);
         }),
         done});
  }
  ::close(listen_fd);
  reap(/*all=*/true);
  log << "protest serve: shut down\n" << std::flush;
  return 0;
}

}  // namespace protest

#else  // no POSIX sockets

namespace protest {

void ignore_sigpipe() {}  // no SIGPIPE to ignore

bool tcp_serve_supported() { return false; }

int serve_tcp(ServiceEndpoint&, std::uint16_t, std::ostream&,
              std::atomic<std::uint16_t>*, ServeOptions) {
  throw ServiceError("unsupported",
                     "TCP serving is not available on this platform; use "
                     "stdin/stdout NDJSON mode");
}

}  // namespace protest

#endif
