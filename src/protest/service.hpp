// The service layer: PROTEST as a long-lived, queried back end.
//
// The paper frames PROTEST as an interactive tool a designer queries
// repeatedly while iterating on a circuit.  The session API (PR 2/3) made
// one netlist's analysis state resident and thread-safe; this layer makes
// it SERVED: a SessionRegistry maps caller-chosen netlist names to
// resident AnalysisSessions (LRU-evicted beyond a cap, revivable from
// their registration), a typed ServiceRequest/ServiceResponse protocol
// with a JSON wire encoding carries queries in and results out, and
// ProtestService dispatches requests — from in-process callers, from the
// `protest serve` NDJSON daemon, or from TCP clients — against the
// registry.  All resident sessions run their parallel work on ONE shared
// Executor, so a registry full of hot sessions uses exactly one worker
// pool instead of oversubscribing the machine N-fold.
//
// Wire format (newline-delimited JSON, one request and one response per
// line; `result` payloads for analyze/perturb are byte-identical to the
// corresponding AnalysisResult::to_json(0)):
//
//   > {"verb":"load_netlist","id":1,"netlist":"alu","circuit":"alu"}
//   < {"id":1,"verb":"load_netlist","ok":true,"result":{...}}
//   > {"verb":"analyze","id":2,"netlist":"alu","p":0.5}
//   < {"id":2,"verb":"analyze","ok":true,"result":{"engine":"protest",...}}
//   > {"verb":"bogus","id":3}
//   < {"id":3,"verb":"bogus","ok":false,"error":{"code":"unknown_verb",...}}
//
// Async jobs (PR 5): `submit` wraps any work verb into a ticketed job on
// the service's JobManager (protest/jobs.hpp) and returns immediately;
// `poll`/`wait` observe the ticket and, once done, embed the inner verb's
// ServiceResponse BYTE-IDENTICALLY under "response"; `cancel` stops the
// work cooperatively at its next checkpoint (Monte-Carlo shard, hill-
// climb coordinate); `jobs` lists every ticket.  The synchronous verbs
// are unchanged — they are the degenerate submit+wait.
//
//   > {"verb":"submit","id":4,"request":{"verb":"analyze","id":2,...}}
//   < {"id":4,"verb":"submit","ok":true,"result":{"job":1,"verb":"analyze","state":"queued"}}
//   > {"verb":"wait","id":5,"job":1}
//   < {"id":5,"verb":"wait","ok":true,"result":{"job":1,"verb":"analyze","state":"done","response":{"id":2,"verb":"analyze","ok":true,"result":{...}}}}
//
// Thread safety: ProtestService::handle / handle_line are safe for
// concurrent callers — the registry serializes its map behind a mutex,
// sessions are internally thread-safe (PR 3), and the shared executor
// serializes parallel jobs.  Malformed input yields a structured error
// response, never an exception escaping handle_line (the one deliberate
// exception: OperationCancelled propagates to the job layer so a
// cancelled job is recorded as cancelled, not as an error response).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "protest/jobs.hpp"
#include "protest/session.hpp"
#include "util/executor.hpp"
#include "util/fault_inject.hpp"

namespace protest {

class JsonValue;

/// A protocol-level failure with a machine-readable code ("bad_request",
/// "unknown_verb", "unknown_netlist", "unknown_job", "internal").  Thrown
/// by the typed layer; the dispatch loop converts it into an ok:false
/// response.
class ServiceError : public std::runtime_error {
 public:
  ServiceError(std::string code, const std::string& message)
      : std::runtime_error(message), code_(std::move(code)) {}
  const std::string& code() const { return code_; }

 private:
  std::string code_;
};

// --- the registry -----------------------------------------------------------

/// Thread-safe map of caller-chosen names -> resident AnalysisSessions.
///
/// A REGISTRATION (name, netlist, options) is cheap and persists until
/// unregister(); a RESIDENT session (engine plans, tuple cache, memoized
/// artifacts) is the expensive part and is bounded: at most max_resident
/// sessions stay live, evicted least-recently-used.  open() revives an
/// evicted name from its registration — the caches start cold, but the
/// name keeps working.  Handed-out session pointers co-own the resident
/// state, so eviction never invalidates a session another thread is
/// mid-query on; it only drops the registry's reference.
///
/// Every session opened here gets the registry's shared Executor injected
/// (SessionOptions::parallel.executor), so N resident sessions share one
/// worker pool.
class SessionRegistry {
 public:
  /// max_resident = 0 means unbounded.  `parallel` sizes the shared
  /// executor (0 = hardware concurrency).
  explicit SessionRegistry(std::size_t max_resident = 8,
                           ParallelConfig parallel = {});

  /// Registers (or replaces) `name` with an owned copy of the netlist.
  /// Does not make it resident; the first open() does.
  void register_netlist(std::string name, Netlist net,
                        SessionOptions opts = {});

  /// Registers `name` over a caller-owned netlist WITHOUT copying; `net`
  /// must outlive the registry and every session opened under this name.
  /// This is the in-process facade path.
  void register_external(std::string name, const Netlist& net,
                         SessionOptions opts = {});

  /// The resident session for `name`, reviving it from the registration
  /// if it was evicted (LRU-evicting another resident session beyond the
  /// cap) and marking it most-recently-used.  Throws ServiceError
  /// ("unknown_netlist") for unregistered names.
  std::shared_ptr<AnalysisSession> open(const std::string& name);

  /// The resident session for `name`, or nullptr when not resident /
  /// unregistered.  Never revives and never touches LRU order (a stats
  /// probe must not change eviction behavior).
  std::shared_ptr<AnalysisSession> find_resident(const std::string& name) const;

  /// Drops the resident session (caches, plans) but keeps the
  /// registration; returns false when it was not resident.
  bool evict(const std::string& name);

  /// Drops registration AND resident session; returns false when unknown.
  bool unregister(const std::string& name);

  std::vector<std::string> registered_names() const;  ///< sorted
  std::vector<std::string> resident_names() const;    ///< most recent first

  std::size_t max_resident() const { return max_resident_; }
  std::size_t num_resident() const;
  const std::shared_ptr<Executor>& executor() const { return exec_; }

 private:
  struct Resident;  ///< netlist copy + session (opaque; service.cpp)

  struct Entry {
    /// Owned registrations keep a prototype to copy on revival; external
    /// registrations keep the caller's pointer instead.
    std::optional<Netlist> prototype;
    const Netlist* external = nullptr;
    SessionOptions opts;
    std::shared_ptr<Resident> resident;  ///< null when evicted
    std::uint64_t last_use = 0;          ///< LRU clock value of last open
  };

  /// Session co-owning its resident state (netlist + session) via the
  /// aliasing constructor — eviction drops only the registry's reference.
  static std::shared_ptr<AnalysisSession> lease(
      const std::shared_ptr<Resident>& r);
  void enforce_cap_locked(const Entry* keep);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  std::uint64_t use_counter_ = 0;  ///< LRU clock (bumped per open)
  std::size_t max_resident_;
  std::shared_ptr<Executor> exec_;
};

// --- the protocol -----------------------------------------------------------

enum class ServiceVerb {
  LoadNetlist,  ///< register + open a netlist (zoo circuit or inline source)
  Lint,         ///< static analysis of the named netlist (src/lint passes)
  FaultBounds,  ///< static per-fault detection-probability intervals
  Analyze,      ///< one tuple through the named session
  Perturb,      ///< single-coordinate perturbation of a base tuple
  Optimize,     ///< hill-climb optimized input probabilities
  Stats,        ///< session counters (named) or registry overview (unnamed)
  Evict,        ///< drop the named resident session
  Shutdown,     ///< stop the serving loop after responding
  Submit,       ///< run a wrapped work verb as an async ticketed job
  Poll,         ///< job snapshot (never blocks); done jobs embed the response
  Wait,         ///< block until the job finishes (optional timeout_ms)
  Cancel,       ///< request cooperative cancellation of a job
  Jobs,         ///< list every job ticket this service has issued
};

std::string_view to_string(ServiceVerb verb);
/// Throws ServiceError("unknown_verb") for unrecognized names.
ServiceVerb verb_from_string(std::string_view name);

/// One decoded request.  Optional fields mirror the wire format: absent
/// members stay nullopt / empty and take verb-specific defaults at
/// dispatch.  `artifacts` (+ the grids inside it) selects what analyze /
/// perturb results compute and serialize, exactly like AnalysisRequest.
struct ServiceRequest {
  ServiceVerb verb = ServiceVerb::Stats;
  std::uint64_t id = 0;      ///< echoed verbatim in the response
  std::string netlist;       ///< target name ("" = service-wide for stats)

  // load_netlist: exactly one of `circuit` (zoo name) or `source`
  // (inline .bench / module-DSL text, auto-detected).
  std::string circuit;
  std::string source;
  std::string engine;                        ///< "" = service default
  std::optional<std::uint64_t> seed;         ///< monte-carlo seed
  std::optional<std::size_t> patterns;       ///< monte-carlo pattern budget
  std::optional<std::size_t> max_cached_results;
  /// load_netlist: lint the netlist first and reject it (error code
  /// "lint_failed") when any error-severity finding comes back.
  bool strict = false;

  // lint: pass subset ("" = every pass); prob-bounds reads `p`.
  std::vector<std::string> passes;
  /// lint: also run the opt-in fault passes (redundant-fault /
  /// untestable-fault); fault_bounds reads `p` / `input_probs`.
  bool faults = false;

  // analyze / perturb: the tuple, either explicit or uniform(p).
  std::vector<double> input_probs;
  std::optional<double> p;
  std::optional<AnalysisRequest> artifacts;

  // perturb
  std::size_t input_index = 0;
  double new_p = 0.5;
  bool screen = false;  ///< frozen-selection screening fidelity

  // optimize
  std::optional<std::uint64_t> n_parameter;  ///< default 10'000
  std::optional<unsigned> sweeps;            ///< default 4

  // submit: the wrapped work verb (shared so requests stay cheap to
  // copy; decoded from the wire member "request").
  std::shared_ptr<ServiceRequest> subrequest;

  // poll / wait / cancel
  std::optional<std::uint64_t> job;         ///< the ticket id
  std::optional<std::uint64_t> timeout_ms;  ///< wait only; absent = forever

  /// Any verb: a per-request wall-clock budget.  Work that overruns it is
  /// cancelled at its next checkpoint and answered with a structured
  /// `deadline_exceeded` error (decoded through the same guarded integer
  /// path as request ids — negative/fractional/oversized values are
  /// bad_request, never wrapped).
  std::optional<std::uint64_t> deadline_ms;

  std::string to_json(int indent = 0) const;
  /// Decodes a parsed document.  Throws ServiceError on unknown verbs,
  /// wrong member types, or out-of-range values.
  static ServiceRequest from_json_value(const JsonValue& doc);
  /// parse_json + from_json_value (JsonParseError surfaces as
  /// ServiceError "bad_request").
  static ServiceRequest from_json(std::string_view text);
};

struct ServiceResponse {
  std::uint64_t id = 0;
  std::string verb;  ///< echoed verb name ("" when undecodable)
  bool ok = false;
  /// Pre-serialized verb-specific payload, spliced into the response
  /// byte-for-byte (empty = null).  For analyze/perturb this is exactly
  /// AnalysisResult::to_json(0).
  std::string result_json;
  std::string error_code;     ///< set when !ok
  std::string error_message;  ///< set when !ok

  static ServiceResponse success(const ServiceRequest& req,
                                 std::string result_json);
  static ServiceResponse failure(std::uint64_t id, std::string_view verb,
                                 const std::string& code,
                                 const std::string& message);

  std::string to_json(int indent = 0) const;
  static ServiceResponse from_json_value(const JsonValue& doc);
  static ServiceResponse from_json(std::string_view text);
};

// --- the service ------------------------------------------------------------

struct ServiceConfig {
  std::size_t max_resident_sessions = 8;  ///< registry cap (0 = unbounded)
  ParallelConfig parallel;                ///< sizes the shared executor
  SessionOptions session_defaults;        ///< base options for load_netlist
  /// Threads draining the async job queue (the `submit` verb) — how many
  /// jobs RUN concurrently.  They are spawned lazily on the first submit,
  /// so purely synchronous services never pay for them.
  unsigned job_workers = 2;
};

/// What the serving front ends (serve_ndjson / serve_tcp) actually need
/// from a back end: line-oriented dispatch plus a shutdown signal.  Both
/// ProtestService (in-process dispatch) and Supervisor (multi-process
/// routing, protest/supervisor.hpp) implement it, so every front end —
/// stdio, TCP, serial, pipelined — serves either back end unchanged.
class ServiceEndpoint {
 public:
  virtual ~ServiceEndpoint() = default;

  /// One NDJSON request line in, one compact JSON response line out (no
  /// trailing newline).  Never throws for protocol-level failures; safe
  /// for concurrent callers.  The one deliberate exception:
  /// OperationCancelled propagates (see ProtestService::handle_line).
  virtual std::string handle_line(std::string_view line) = 0;

  /// True once a shutdown request has been handled.
  virtual bool shutdown_requested() const = 0;
};

/// Dispatches requests against a SessionRegistry.  One instance per
/// process/daemon; safe for concurrent handle()/handle_line() callers.
class ProtestService : public ServiceEndpoint {
 public:
  explicit ProtestService(ServiceConfig config = {});

  SessionRegistry& registry() { return registry_; }
  const SessionRegistry& registry() const { return registry_; }
  const ServiceConfig& config() const { return config_; }
  JobManager& jobs() { return jobs_; }
  const JobManager& jobs() const { return jobs_; }

  /// Typed dispatch.  Never throws for protocol-level failures — they
  /// come back as ok:false responses with a structured error.  A request
  /// carrying `deadline_ms` runs under a deadline CancelToken (linked to
  /// the caller's ambient token, so job cancellation still works) and
  /// answers `deadline_exceeded` when the budget expires mid-work.
  ServiceResponse handle(const ServiceRequest& request);

  /// One NDJSON line in, one compact JSON response line out (no trailing
  /// newline).  Never throws.
  std::string handle_line(std::string_view line) override;

  /// True once a shutdown request has been handled.
  bool shutdown_requested() const override {
    return shutdown_.load(std::memory_order_acquire);
  }

 private:
  std::string dispatch(const ServiceRequest& request);  ///< result payload

  ServiceConfig config_;
  SessionRegistry registry_;
  std::atomic<bool> shutdown_{false};
  /// Declared last: its destructor cancels and joins in-flight jobs,
  /// which still dispatch against the registry above.
  JobManager jobs_;
};

/// Auto-detects .bench vs module-DSL text (the CLI's file heuristic) and
/// elaborates it.
Netlist netlist_from_text(const std::string& text);

/// Front-end dispatch knobs (`protest serve --inflight N`).
struct ServeOptions {
  /// 0 (default): serial dispatch — one request at a time, responses in
  /// request order (the historical behavior).
  ///
  /// N >= 1: PIPELINED dispatch.  Work verbs (analyze/perturb/optimize)
  /// fan out across up to N in-flight dispatch slots and their responses
  /// return OUT OF ORDER, correlated by `id`; reading stalls while all N
  /// slots are busy — connection-level backpressure, so a client that
  /// floods requests is throttled by its own unfinished work.  Response
  /// BYTES are identical to serial mode; only the order changes.  Two
  /// verb classes keep deterministic ordering: job-control verbs
  /// (submit/poll/wait/cancel/jobs) and stats run inline on the reading
  /// thread in request order (they are cheap; a `wait` deliberately
  /// blocks the stream — pipelining clients should poll), and registry-
  /// mutating verbs (load_netlist/evict/shutdown) BARRIER: in-flight work
  /// drains first, then they run inline.  That makes scripted
  /// conversations (load, then queries) mean the same thing pipelined as
  /// serial.
  std::size_t max_inflight = 0;

  /// Deterministic fault injection (util/fault_inject.hpp), consulted
  /// once per received request line BEFORE dispatch.  Null = no faults.
  /// This is how `protest __serve-worker` arms PROTEST_FAULT_INJECT; the
  /// pointer must outlive the serve call.
  FaultInjector* injector = nullptr;
};

/// The daemon loop: reads one request per line from `in` (blank lines are
/// skipped), writes one response line to `out` (flushed per response),
/// returns 0 when the stream ends, the output stream fails (a downstream
/// pipe closed — SIGPIPE is ignored on POSIX so the write fails instead
/// of killing the process), or a shutdown verb was handled.  With
/// options.max_inflight > 0, work-verb responses may return out of order
/// (see ServeOptions).
int serve_ndjson(ServiceEndpoint& service, std::istream& in, std::ostream& out,
                 ServeOptions options = {});

/// True when this build can serve TCP (POSIX sockets).
bool tcp_serve_supported();

/// Listens on 127.0.0.1:`port` (0 = OS-assigned) and speaks the NDJSON
/// protocol per connection, each on its own thread — concurrent clients
/// dispatch into the shared registry.  If `bound_port` is non-null it
/// receives the actual port before accepting begins (atomic so an
/// embedding thread can poll it).  `options` applies per connection
/// (pipelined dispatch slots and backpressure are connection-level).
/// A client that disconnects mid-response logs-and-closes its own
/// connection (SIGPIPE ignored, MSG_NOSIGNAL on sends) — never the
/// daemon; a hard drop (reset) additionally cancels that connection's
/// in-flight pipelined work at its next checkpoint, while ticketed jobs
/// keep running and stay pollable from new connections.
/// Returns 0 after a shutdown verb (from any client) stops the loop;
/// throws std::runtime_error on socket failures and
/// ServiceError("unsupported") on platforms without sockets.
int serve_tcp(ServiceEndpoint& service, std::uint16_t port, std::ostream& log,
              std::atomic<std::uint16_t>* bound_port = nullptr,
              ServeOptions options = {});

}  // namespace protest
