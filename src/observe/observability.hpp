// Observability propagation s(x) of sect. 3: the probability that a
// sensitized path runs from pin x to some primary output, computed
// backwards in linear time from per-node signal probabilities.
//
// Stem combination (output pin x driving input pins x1..xm):
//   model A (paper default):  s(x) = s(x1) (*) ... (*) s(xm),
//                             t (*) y = t + y - 2ty
//   model B ("alternative model for circuits with a large number of
//   primary outputs"):        s(x) = 1 - (1-s(x1))...(1-s(xm))
//
// Gate transfer (gate f with output x, input pin e_i):
//   s(e_i) = s(x) * ( f(..,p_{e_i}=0,..) (*) f(..,p_{e_i}=1,..) )
// evaluated on the arithmetic (multilinear) form of f.  This "very simple
// modeling of the signal flow" is what causes the documented systematic
// under-estimation on multi-path circuits (fig. 6); the exact per-gate
// Boolean difference is available as an alternative transfer model.
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace protest {

enum class StemModel {
  XorChain,  ///< model A: t + y - 2ty fold over branches
  OrChain,   ///< model B: 1 - prod(1 - s_i)
};

enum class TransferModel {
  PaperArithmetic,    ///< f0 (*) f1 on the arithmetic form (paper formula)
  BooleanDifference,  ///< exact P(df/de_i) under pin independence
};

struct ObservabilityOptions {
  /// Library default is model B: on the paper's own circuits it reproduces
  /// Table 1 (ALU C=0.97, MULT C~0.9 with the fig. 6 under-estimation
  /// bias), while model A's pairwise cancellation over-penalizes stems
  /// with many branches (measured in bench/table1_correlation).
  StemModel stem = StemModel::OrChain;
  /// On the TTL-style netlists PROTEST analyzed (no XOR primitives) the
  /// paper formula coincides with the exact Boolean difference.
  TransferModel transfer = TransferModel::PaperArithmetic;
};

/// Observability of every output stem and every gate input pin.
struct Observability {
  /// s of node n's output stem.
  std::vector<double> stem;
  /// s of gate n's input pin k: pin[n][k] (empty for inputs/constants).
  std::vector<std::vector<double>> pin;
};

/// node_probs must hold one signal probability per node (any engine).
Observability compute_observability(const Netlist& net,
                                    std::span<const double> node_probs,
                                    ObservabilityOptions opts = {});

/// The sensitization factor of one gate from input pin k, i.e. the
/// probability multiplier applied to s(output): PaperArithmetic gives
/// f0 (*) f1, BooleanDifference gives P(f toggles when pin k toggles).
double gate_transfer(const Netlist& net, NodeId gate, std::size_t pin,
                     std::span<const double> node_probs, TransferModel model);

}  // namespace protest
