#include "observe/observability.hpp"

#include <algorithm>
#include <stdexcept>

namespace protest {
namespace {

double xor_comb(double t, double y) { return t + y - 2.0 * t * y; }

}  // namespace

double gate_transfer(const Netlist& net, NodeId gate, std::size_t pin,
                     std::span<const double> node_probs, TransferModel model) {
  const Gate& g = net.gate(gate);
  if (pin >= g.fanin.size())
    throw std::invalid_argument("gate_transfer: pin index out of range");

  if (model == TransferModel::BooleanDifference) {
    // Exact Boolean-difference probability for the standard gate library:
    // AND/NAND toggle iff all other pins are 1; OR/NOR iff all other 0;
    // XOR/XNOR/NOT/BUF always toggle.
    switch (g.type) {
      case GateType::And:
      case GateType::Nand: {
        double acc = 1.0;
        for (std::size_t j = 0; j < g.fanin.size(); ++j)
          if (j != pin) acc *= node_probs[g.fanin[j]];
        return acc;
      }
      case GateType::Or:
      case GateType::Nor: {
        double acc = 1.0;
        for (std::size_t j = 0; j < g.fanin.size(); ++j)
          if (j != pin) acc *= 1.0 - node_probs[g.fanin[j]];
        return acc;
      }
      case GateType::Buf:
      case GateType::Not:
      case GateType::Xor:
      case GateType::Xnor:
        return 1.0;
      default:
        throw std::logic_error("gate_transfer: gate without inputs");
    }
  }

  // Paper formula: evaluate the arithmetic form with the pin pinned to 0
  // and to 1, then combine with t (*) y = t + y - 2ty.
  std::vector<double> ins(g.fanin.size());
  for (std::size_t j = 0; j < g.fanin.size(); ++j)
    ins[j] = node_probs[g.fanin[j]];
  ins[pin] = 0.0;
  const double f0 = eval_gate_prob(g.type, ins);
  ins[pin] = 1.0;
  const double f1 = eval_gate_prob(g.type, ins);
  return xor_comb(f0, f1);
}

Observability compute_observability(const Netlist& net,
                                    std::span<const double> node_probs,
                                    ObservabilityOptions opts) {
  if (node_probs.size() != net.size())
    throw std::invalid_argument("compute_observability: need one probability per node");

  Observability obs;
  obs.stem.assign(net.size(), 0.0);
  obs.pin.resize(net.size());
  for (NodeId n = 0; n < net.size(); ++n)
    obs.pin[n].assign(net.gate(n).fanin.size(), 0.0);

  // (consumer, pin) pairs per stem; each branch appears exactly once even
  // when one gate consumes the same net on several pins.
  std::vector<std::vector<std::pair<NodeId, std::uint32_t>>> consumers(net.size());
  for (NodeId c = 0; c < net.size(); ++c) {
    const auto& fanin = net.gate(c).fanin;
    for (std::size_t k = 0; k < fanin.size(); ++k)
      consumers[fanin[k]].push_back({c, static_cast<std::uint32_t>(k)});
  }

  // Backward sweep: node ids are topologically ordered, so descending ids
  // visit every consumer before its producers.
  for (NodeId n = net.size(); n-- > 0;) {
    // 1) Combine the stem observability of n from its branches.  A primary
    // output pin contributes a branch with s = 1.
    double s;
    const bool po = net.is_output(n);
    if (opts.stem == StemModel::XorChain) {
      s = po ? 1.0 : 0.0;
      for (const auto& [c, k] : consumers[n]) s = xor_comb(s, obs.pin[c][k]);
    } else {
      double miss = po ? 0.0 : 1.0;
      for (const auto& [c, k] : consumers[n]) miss *= 1.0 - obs.pin[c][k];
      s = 1.0 - miss;
    }
    obs.stem[n] = std::clamp(s, 0.0, 1.0);

    // 2) Push through the gate to its input pins.
    const Gate& g = net.gate(n);
    for (std::size_t k = 0; k < g.fanin.size(); ++k)
      obs.pin[n][k] = std::clamp(
          obs.stem[n] * gate_transfer(net, n, k, node_probs, opts.transfer),
          0.0, 1.0);
  }
  return obs;
}

}  // namespace protest
