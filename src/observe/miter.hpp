// The exact transform of sect. 3's opening remark: "the computation of
// fault detection probabilities can be transformed into the computation of
// signal probabilities ... but this yields quadratic complexity".  For a
// fault f we build a miter: the good circuit, a faulty copy of the fault's
// fanout cone, an XOR per affected output, and an OR over the XORs.  The
// signal probability of the OR *is* the detection probability — exactly
// when computed exactly (BDD), approximately when handed to an estimator.
#pragma once

#include "bdd/bdd.hpp"
#include "netlist/netlist.hpp"
#include "prob/protest_estimator.hpp"
#include "sim/fault.hpp"

namespace protest {

/// Miter netlist: same primary inputs as the original; single output whose
/// signal probability equals the fault's detection probability.
Netlist build_fault_miter(const Netlist& net, const Fault& f);

/// Exact detection probability via BDD on the miter (validation oracle).
double exact_detection_prob_bdd(const Netlist& net, const Fault& f,
                                std::span<const double> input_probs,
                                std::size_t node_limit = 2'000'000);

/// PROTEST's "considerable computing time" option: run the estimator on
/// the miter instead of the simple signal-flow model.  Caveat (measured in
/// bench/ablation_estimator): the miter correlates every node with its
/// faulty twin, so on reconvergence-dense circuits the bounded
/// conditioning degrades and the linear signal-flow model is both cheaper
/// and more accurate; this option shines only on small/shallow cones.
double estimated_detection_prob_miter(const Netlist& net, const Fault& f,
                                      std::span<const double> input_probs,
                                      ProtestParams params = {});

}  // namespace protest
