#include "observe/single_path.hpp"

#include <algorithm>
#include <stdexcept>

namespace protest {
namespace {

/// Probability that the side inputs of `gate` enable propagation from pin k.
double side_enable(const Netlist& net, NodeId gate, std::size_t pin,
                   std::span<const double> node_probs) {
  const Gate& g = net.gate(gate);
  switch (g.type) {
    case GateType::And:
    case GateType::Nand: {
      double acc = 1.0;
      for (std::size_t j = 0; j < g.fanin.size(); ++j)
        if (j != pin) acc *= node_probs[g.fanin[j]];
      return acc;
    }
    case GateType::Or:
    case GateType::Nor: {
      double acc = 1.0;
      for (std::size_t j = 0; j < g.fanin.size(); ++j)
        if (j != pin) acc *= 1.0 - node_probs[g.fanin[j]];
      return acc;
    }
    case GateType::Buf:
    case GateType::Not:
    case GateType::Xor:
    case GateType::Xnor:
      return 1.0;
    default:
      throw std::logic_error("side_enable: gate without inputs");
  }
}

}  // namespace

std::vector<double> single_path_observability(const Netlist& net,
                                              std::span<const double> node_probs) {
  if (node_probs.size() != net.size())
    throw std::invalid_argument("single_path_observability: need one probability per node");
  std::vector<double> best(net.size(), 0.0);
  for (NodeId n = net.size(); n-- > 0;) {
    double s = net.is_output(n) ? 1.0 : 0.0;
    for (NodeId c : net.fanout(n)) {
      const auto& fanin = net.gate(c).fanin;
      for (std::size_t k = 0; k < fanin.size(); ++k) {
        if (fanin[k] != n) continue;
        s = std::max(s, best[c] * side_enable(net, c, k, node_probs));
      }
    }
    best[n] = s;
  }
  return best;
}

std::vector<double> single_path_detection_probs(const Netlist& net,
                                                std::span<const Fault> faults,
                                                std::span<const double> node_probs) {
  const std::vector<double> best = single_path_observability(net, node_probs);
  std::vector<double> out;
  out.reserve(faults.size());
  for (const Fault& f : faults) {
    double value_prob, s;
    if (f.is_stem()) {
      value_prob = node_probs[f.node];
      s = best[f.node];
    } else {
      const NodeId driver = net.gate(f.node).fanin[f.pin];
      value_prob = node_probs[driver];
      s = best[f.node] * side_enable(net, f.node, f.pin, node_probs);
    }
    const double p1 = f.sa == StuckAt::Zero ? value_prob : 1.0 - value_prob;
    out.push_back(std::clamp(p1 * s, 0.0, 1.0));
  }
  return out;
}

}  // namespace protest
