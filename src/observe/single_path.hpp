// The linear-complexity "single path sensitization" option of sect. 3: a
// test sensitizes a single path from pin x to output o if there is exactly
// one path whose node values depend on the value at x.  We estimate a lower
// bound via the best single path: a backward max-product DP where each gate
// contributes the probability that its side inputs hold non-controlling
// values.
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/fault.hpp"

namespace protest {

/// Per-node probability of the most sensitizable single path from the
/// node's output stem to a primary output.
std::vector<double> single_path_observability(const Netlist& net,
                                              std::span<const double> node_probs);

/// Detection estimate: P(pin carries NOT(stuck value)) * best single path.
std::vector<double> single_path_detection_probs(const Netlist& net,
                                                std::span<const Fault> faults,
                                                std::span<const double> node_probs);

}  // namespace protest
