// Fault detection probabilities from signal probabilities + observability
// (sect. 3): a stuck-at-i fault at pin x is detected with the probability
// that x carries NOT(i) and x is observed,
//   x0 := p_x * s(x)        (stuck-at-0)
//   x1 := (1 - p_x) * s(x)  (stuck-at-1)
#pragma once

#include <span>
#include <vector>

#include "observe/observability.hpp"
#include "sim/fault.hpp"

namespace protest {

/// Detection probability of one fault.
double detection_prob(const Netlist& net, const Fault& f,
                      std::span<const double> node_probs,
                      const Observability& obs);

/// Detection probabilities of a fault list (same order).
std::vector<double> detection_probs(const Netlist& net,
                                    std::span<const Fault> faults,
                                    std::span<const double> node_probs,
                                    const Observability& obs);

}  // namespace protest
