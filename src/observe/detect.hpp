// Fault detection probabilities from signal probabilities + observability
// (sect. 3): a stuck-at-i fault at pin x is detected with the probability
// that x carries NOT(i) and x is observed,
//   x0 := p_x * s(x)        (stuck-at-0)
//   x1 := (1 - p_x) * s(x)  (stuck-at-1)
#pragma once

#include <span>
#include <vector>

#include "lint/fault_analyze.hpp"
#include "observe/observability.hpp"
#include "sim/fault.hpp"

namespace protest {

/// Detection probability of one fault.
double detection_prob(const Netlist& net, const Fault& f,
                      std::span<const double> node_probs,
                      const Observability& obs);

/// Detection probabilities of a fault list (same order).
std::vector<double> detection_probs(const Netlist& net,
                                    std::span<const Fault> faults,
                                    std::span<const double> node_probs,
                                    const Observability& obs);

/// Detection probabilities disciplined by the static fault analysis
/// (bounds parallel to the fault list, from analyze_faults on the same
/// list): proven-undetectable faults are not estimated at all (their
/// probability is exactly 0), and every other estimate is clamped into its
/// sound [lo, hi] interval — the estimator is a heuristic, the interval is
/// a guarantee, and where they disagree the interval wins.  Throws
/// std::invalid_argument on a size mismatch.
std::vector<double> detection_probs_bounded(const Netlist& net,
                                            std::span<const Fault> faults,
                                            std::span<const double> node_probs,
                                            const Observability& obs,
                                            const FaultAnalysis& fa);

}  // namespace protest
