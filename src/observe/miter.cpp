#include "observe/miter.hpp"

#include <unordered_map>

#include "netlist/compiled.hpp"
#include "netlist/cone.hpp"
#include "prob/engine.hpp"
#include "prob/exact.hpp"
#include "prob/naive.hpp"

namespace protest {

Netlist build_fault_miter(const Netlist& net, const Fault& f) {
  const CompiledNetlist& cn = net.compiled();
  Netlist m;
  m.reserve(2 * net.size() + net.outputs().size() + 2);
  // Good copy (identical node ids, since construction order is preserved).
  std::vector<NodeId> good(net.size());
  for (NodeId n = 0; n < net.size(); ++n) {
    const auto fanin = cn.fanin(n);
    if (cn.type(n) == GateType::Input) {
      good[n] = m.add_input(net.gate(n).name);
    } else {
      good[n] = m.add_gate(cn.type(n), {fanin.begin(), fanin.end()}, {});
    }
  }

  // Faulty copy of the fanout cone of the fault site.
  const std::vector<NodeId> cone = transitive_fanout(net, f.node);
  std::unordered_map<NodeId, NodeId> faulty;
  const NodeId forced =
      m.add_gate(f.sa == StuckAt::One ? GateType::Const1 : GateType::Const0, {});
  for (NodeId n : cone) {
    const auto fanin = cn.fanin(n);
    if (n == f.node) {
      if (f.is_stem()) {
        faulty[n] = forced;
        continue;
      }
      // Branch fault: re-instantiate the gate with the faulty pin forced.
      std::vector<NodeId> fi;
      for (std::size_t k = 0; k < fanin.size(); ++k)
        fi.push_back(static_cast<int>(k) == f.pin ? forced : good[fanin[k]]);
      faulty[n] = m.add_gate(cn.type(n), std::move(fi), {});
      continue;
    }
    std::vector<NodeId> fi;
    for (NodeId x : fanin) {
      auto it = faulty.find(x);
      fi.push_back(it != faulty.end() ? it->second : good[x]);
    }
    faulty[n] = m.add_gate(cn.type(n), std::move(fi), {});
  }

  // XOR each affected primary output with its good twin; OR them together.
  std::vector<NodeId> xors;
  for (NodeId o : net.outputs()) {
    auto it = faulty.find(o);
    if (it == faulty.end()) continue;  // output unreachable from the fault
    xors.push_back(m.add_gate(GateType::Xor, {good[o], it->second}, {}));
  }
  NodeId root;
  if (xors.empty()) {
    root = m.add_gate(GateType::Const0, {});  // undetectable by structure
  } else if (xors.size() == 1) {
    root = xors[0];
  } else {
    root = m.add_gate(GateType::Or, xors, {});
  }
  m.mark_output(root);
  m.finalize();
  return m;
}

double exact_detection_prob_bdd(const Netlist& net, const Fault& f,
                                std::span<const double> input_probs,
                                std::size_t node_limit) {
  validate_input_probs(net, input_probs);
  const Netlist m = build_fault_miter(net, f);
  Bdd bdd(static_cast<unsigned>(m.inputs().size()), node_limit);
  const auto fs = build_node_bdds(m, bdd);
  return bdd.sat_prob(fs[m.outputs()[0]], input_probs);
}

double estimated_detection_prob_miter(const Netlist& net, const Fault& f,
                                      std::span<const double> input_probs,
                                      ProtestParams params) {
  const Netlist m = build_fault_miter(net, f);
  const ProtestEngine est(m, params);
  return est.signal_probs(input_probs)[m.outputs()[0]];
}

}  // namespace protest
