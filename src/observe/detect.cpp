#include "observe/detect.hpp"

#include <algorithm>
#include <stdexcept>

namespace protest {

double detection_prob(const Netlist& net, const Fault& f,
                      std::span<const double> node_probs,
                      const Observability& obs) {
  double value_prob;  // probability that the pin carries NOT(stuck value)
  double s;
  if (f.is_stem()) {
    value_prob = node_probs[f.node];
    s = obs.stem[f.node];
  } else {
    const NodeId driver = net.gate(f.node).fanin[f.pin];
    value_prob = node_probs[driver];
    s = obs.pin[f.node][f.pin];
  }
  const double p1 = f.sa == StuckAt::Zero ? value_prob : 1.0 - value_prob;
  return std::clamp(p1 * s, 0.0, 1.0);
}

std::vector<double> detection_probs(const Netlist& net,
                                    std::span<const Fault> faults,
                                    std::span<const double> node_probs,
                                    const Observability& obs) {
  std::vector<double> out;
  out.reserve(faults.size());
  for (const Fault& f : faults)
    out.push_back(detection_prob(net, f, node_probs, obs));
  return out;
}

std::vector<double> detection_probs_bounded(const Netlist& net,
                                            std::span<const Fault> faults,
                                            std::span<const double> node_probs,
                                            const Observability& obs,
                                            const FaultAnalysis& fa) {
  if (fa.bounds.size() != faults.size())
    throw std::invalid_argument(
        "detection_probs_bounded: fault list and analysis size mismatch");
  std::vector<double> out;
  out.reserve(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const FaultBound& b = fa.bounds[i];
    if (b.verdict == FaultClass::ProvenUndetectable) {
      out.push_back(0.0);
      continue;
    }
    const double est = detection_prob(net, faults[i], node_probs, obs);
    out.push_back(std::clamp(est, b.lo, b.hi));
  }
  return out;
}

}  // namespace protest
