#include "observe/detect.hpp"

#include <algorithm>

namespace protest {

double detection_prob(const Netlist& net, const Fault& f,
                      std::span<const double> node_probs,
                      const Observability& obs) {
  double value_prob;  // probability that the pin carries NOT(stuck value)
  double s;
  if (f.is_stem()) {
    value_prob = node_probs[f.node];
    s = obs.stem[f.node];
  } else {
    const NodeId driver = net.gate(f.node).fanin[f.pin];
    value_prob = node_probs[driver];
    s = obs.pin[f.node][f.pin];
  }
  const double p1 = f.sa == StuckAt::Zero ? value_prob : 1.0 - value_prob;
  return std::clamp(p1 * s, 0.0, 1.0);
}

std::vector<double> detection_probs(const Netlist& net,
                                    std::span<const Fault> faults,
                                    std::span<const double> node_probs,
                                    const Observability& obs) {
  std::vector<double> out;
  out.reserve(faults.size());
  for (const Fault& f : faults)
    out.push_back(detection_prob(net, f, node_probs, obs));
  return out;
}

}  // namespace protest
