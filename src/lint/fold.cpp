#include "lint/fold.hpp"

#include <stdexcept>
#include <utility>

namespace protest {

std::vector<signed char> propagate_constants(const Netlist& net) {
  std::vector<signed char> value(net.size(), -1);
  for (NodeId id = 0; id < net.size(); ++id) {
    const Gate& g = net.gate(id);
    signed char v = -1;
    switch (g.type) {
      case GateType::Input:
        break;
      case GateType::Const0:
        v = 0;
        break;
      case GateType::Const1:
        v = 1;
        break;
      case GateType::Buf:
        v = value[g.fanin[0]];
        break;
      case GateType::Not: {
        const signed char f = value[g.fanin[0]];
        v = f < 0 ? static_cast<signed char>(-1)
                  : static_cast<signed char>(1 - f);
        break;
      }
      case GateType::And:
      case GateType::Nand:
      case GateType::Or:
      case GateType::Nor: {
        // A controlling fanin decides the gate regardless of the rest.
        const signed char ctl =
            static_cast<signed char>(controlling_value(g.type));
        bool any_ctl = false, all_known = true;
        for (const NodeId f : g.fanin) {
          if (value[f] < 0)
            all_known = false;
          else if (value[f] == ctl)
            any_ctl = true;
        }
        // Core (pre-inversion) output: a controlling fanin forces it to
        // the controlling value (AND: 0 -> 0, OR: 1 -> 1); all fanins
        // known non-controlling forces the opposite.
        if (any_ctl)
          v = ctl;
        else if (all_known)
          v = static_cast<signed char>(1 - ctl);
        if (v >= 0 && is_inverting(g.type)) v = static_cast<signed char>(1 - v);
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        signed char parity = 0;
        for (const NodeId f : g.fanin) {
          if (value[f] < 0) {
            parity = -1;
            break;
          }
          parity = static_cast<signed char>(parity ^ value[f]);
        }
        v = parity;
        if (v >= 0 && is_inverting(g.type)) v = static_cast<signed char>(1 - v);
        break;
      }
    }
    value[id] = v;
  }
  return value;
}

FoldResult fold_constants(const Netlist& net) {
  if (!net.finalized())
    throw std::invalid_argument("fold_constants: netlist must be finalized");
  const std::size_t n = net.size();
  const std::vector<signed char> value = propagate_constants(net);

  // Reverse reachability from the outputs, stopping at constant nodes:
  // logic only feeding folded-away gates is dead in the folded netlist.
  std::vector<char> needed(n, 0);
  std::vector<NodeId> stack;
  for (const NodeId o : net.outputs()) {
    if (value[o] < 0 && !needed[o]) {
      needed[o] = 1;
      stack.push_back(o);
    }
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    for (const NodeId f : net.gate(id).fanin) {
      if (value[f] < 0 && !needed[f]) {
        needed[f] = 1;
        stack.push_back(f);
      }
    }
  }

  FoldResult r;
  r.remap.assign(n, kNoNode);

  // Shared unnamed constant drivers for folded fanins, created on first
  // use so node creation stays topological.
  NodeId shared_const[2] = {kNoNode, kNoNode};
  const auto fanin_const = [&](signed char bit) {
    NodeId& c = shared_const[bit];
    if (c == kNoNode) {
      c = r.netlist.add_gate(bit ? GateType::Const1 : GateType::Const0, {});
      ++r.const_nodes;
    }
    return c;
  };

  for (NodeId id = 0; id < n; ++id) {
    const Gate& g = net.gate(id);
    if (g.type == GateType::Input) {
      // All inputs survive so the folded netlist accepts the same vectors.
      r.remap[id] = r.netlist.add_input(g.name);
      continue;
    }
    if (!needed[id]) continue;
    std::vector<NodeId> fanin;
    fanin.reserve(g.fanin.size());
    for (const NodeId f : g.fanin)
      fanin.push_back(value[f] >= 0 ? fanin_const(value[f]) : r.remap[f]);
    r.remap[id] = r.netlist.add_gate(g.type, std::move(fanin), g.name);
  }

  // Output order is preserved; constant outputs get a dedicated constant
  // node each (a node may be marked output only once) carrying the
  // original net name.
  for (const NodeId o : net.outputs()) {
    if (value[o] >= 0) {
      const NodeId c = r.netlist.add_gate(
          value[o] ? GateType::Const1 : GateType::Const0, {}, net.gate(o).name);
      ++r.const_nodes;
      r.remap[o] = c;
      r.netlist.mark_output(c);
    } else {
      r.netlist.mark_output(r.remap[o]);
    }
  }
  r.netlist.finalize();
  r.removed = net.num_gates() - (r.netlist.num_gates() - r.const_nodes);
  return r;
}

}  // namespace protest
