#include "lint/lint.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "analysis/json.hpp"
#include "lint/fault_analyze.hpp"
#include "lint/fold.hpp"
#include "prob/signal_prob.hpp"

namespace protest {
namespace {

constexpr std::string_view kPassNames[] = {
    "unused-net",  "dead-gate", "const-gate",      "duplicate-gate",
    "prob-bounds", "structure", "redundant-fault", "untestable-fault",
};
constexpr std::size_t kNumPasses = std::size(kPassNames);
enum Pass : std::size_t {
  kUnused = 0,
  kDead,
  kConst,
  kDuplicate,
  kProbBounds,
  kStructure,
  kRedundantFault,
  kUntestableFault,
};

std::string fmt_prob(double p) {
  JsonWriter w(0);
  w.value(p);
  return w.str();
}

LintStructure census(const Netlist& net) {
  LintStructure st;
  st.nodes = net.size();
  st.inputs = net.inputs().size();
  st.outputs = net.outputs().size();
  st.gates = net.num_gates();
  st.depth = net.depth();
  st.stems = net.stems().size();
  std::vector<std::size_t> per_level(static_cast<std::size_t>(net.depth()) + 1,
                                     0);
  for (NodeId id = 0; id < net.size(); ++id) {
    st.max_fanin = std::max(st.max_fanin, net.gate(id).fanin.size());
    st.max_fanout = std::max(st.max_fanout, net.fanout(id).size());
    st.widest_level =
        std::max(st.widest_level, ++per_level[net.level(id)]);
  }
  return st;
}

}  // namespace

std::string_view to_string(LintSeverity s) {
  switch (s) {
    case LintSeverity::Info:
      return "info";
    case LintSeverity::Warning:
      return "warning";
    case LintSeverity::Error:
      return "error";
  }
  return "?";
}

std::span<const std::string_view> lint_pass_names() { return kPassNames; }

LintReport run_lint(const Netlist& net, const LintOptions& opts) {
  if (!net.finalized())
    throw std::invalid_argument("run_lint: netlist must be finalized");

  bool enabled[kNumPasses];
  std::fill(std::begin(enabled), std::end(enabled), opts.passes.empty());
  // The fault passes are opt-in: "all passes" includes them only when
  // LintOptions::faults is set (they run the full static fault analyzer).
  enabled[kRedundantFault] = opts.passes.empty() && opts.faults;
  enabled[kUntestableFault] = opts.passes.empty() && opts.faults;
  for (const std::string& p : opts.passes) {
    const auto* it =
        std::find(std::begin(kPassNames), std::end(kPassNames), p);
    if (it == std::end(kPassNames)) {
      std::string known;
      for (const std::string_view k : kPassNames) {
        if (!known.empty()) known += ", ";
        known += k;
      }
      throw std::invalid_argument("unknown lint pass '" + p +
                                  "' (known passes: " + known + ")");
    }
    enabled[it - std::begin(kPassNames)] = true;
  }

  LintReport rep;
  rep.structure = census(net);
  for (std::size_t i = 0; i < kNumPasses; ++i)
    if (enabled[i]) rep.passes_run.emplace_back(kPassNames[i]);

  // Per-pass emission with the diagnostic cap: totals keep counting,
  // truncation is acknowledged with a closing note — never silent.
  std::string_view cur_pass;
  std::size_t emitted = 0;
  std::size_t suppressed = 0;
  const auto begin_pass = [&](Pass p) {
    cur_pass = kPassNames[p];
    emitted = 0;
    suppressed = 0;
  };
  const auto finding = [&](LintSeverity sev, NodeId node, std::string msg,
                           std::string hint) {
    switch (sev) {
      case LintSeverity::Error:
        ++rep.errors;
        break;
      case LintSeverity::Warning:
        ++rep.warnings;
        break;
      case LintSeverity::Info:
        ++rep.infos;
        break;
    }
    if (emitted >= opts.max_per_pass) {
      ++suppressed;
      return;
    }
    ++emitted;
    rep.diagnostics.push_back({std::string(cur_pass), sev, node,
                               node == kNoNode ? std::string() : net.name_of(node),
                               std::move(msg), std::move(hint)});
  };
  const auto end_pass = [&] {
    if (suppressed == 0) return;
    rep.diagnostics.push_back(
        {std::string(cur_pass), LintSeverity::Info, kNoNode, {},
         std::to_string(suppressed) +
             " further findings suppressed (max_per_pass = " +
             std::to_string(opts.max_per_pass) + ")",
         "raise LintOptions::max_per_pass for the full list"});
  };

  const std::size_t n = net.size();

  if (enabled[kUnused]) {
    begin_pass(kUnused);
    for (NodeId id = 0; id < n; ++id) {
      if (!net.fanout(id).empty() || net.is_output(id)) continue;
      if (net.is_input(id))
        finding(LintSeverity::Warning, id,
                "primary input '" + net.name_of(id) +
                    "' feeds no gate and is not an output",
                "remove the input or wire it into the logic");
      else
        finding(LintSeverity::Warning, id,
                "net '" + net.name_of(id) + "' (" +
                    to_string(net.gate(id).type) +
                    ") feeds nothing and is not an output",
                "delete the gate or mark its net as a primary output");
    }
    end_pass();
  }

  if (enabled[kDead]) {
    begin_pass(kDead);
    // Reverse reachability from the primary outputs over the fanin edges.
    std::vector<char> reach(n, 0);
    std::vector<NodeId> stack;
    for (const NodeId o : net.outputs()) {
      if (!reach[o]) {
        reach[o] = 1;
        stack.push_back(o);
      }
    }
    while (!stack.empty()) {
      const NodeId id = stack.back();
      stack.pop_back();
      for (const NodeId f : net.gate(id).fanin) {
        if (!reach[f]) {
          reach[f] = 1;
          stack.push_back(f);
        }
      }
    }
    for (NodeId id = 0; id < n; ++id) {
      // Fanout-free sinks are the unused-net pass's finding; this pass
      // reports the cones behind them.
      if (reach[id] || net.fanout(id).empty()) continue;
      if (net.is_input(id))
        finding(LintSeverity::Warning, id,
                "primary input '" + net.name_of(id) +
                    "' reaches no primary output (feeds only dead logic)",
                "remove the dead cone or observe it with an output");
      else
        finding(LintSeverity::Warning, id,
                "gate '" + net.name_of(id) + "' (" +
                    to_string(net.gate(id).type) +
                    ") has no path to any primary output",
                "remove the dead cone or observe it with an output");
    }
    end_pass();
  }

  std::vector<signed char> value;
  if (enabled[kConst] || enabled[kProbBounds]) value = propagate_constants(net);

  if (enabled[kConst]) {
    begin_pass(kConst);
    for (NodeId id = 0; id < n; ++id) {
      const GateType t = net.gate(id).type;
      if (t == GateType::Input || t == GateType::Const0 ||
          t == GateType::Const1)
        continue;
      if (value[id] < 0) continue;
      const char bit = static_cast<char>('0' + value[id]);
      if (net.is_output(id))
        finding(LintSeverity::Error, id,
                std::string("primary output '") + net.name_of(id) +
                    "' is provably stuck at " + bit +
                    " — every fault in its cone is undetectable through it",
                "a constant output is almost certainly a capture bug; fix "
                "the netlist or drop the output");
      else
        finding(LintSeverity::Warning, id,
                "gate '" + net.name_of(id) + "' (" + to_string(t) +
                    ") is provably stuck at " + bit,
                "fold_constants() rewrites it to a constant driver");
    }
    end_pass();
  }

  if (enabled[kDuplicate]) {
    begin_pass(kDuplicate);
    // Structural hash key: gate type + sorted fanin ids (every n-ary type
    // in the library is commutative, so the fanin multiset is canonical).
    std::unordered_map<std::string, NodeId> seen;
    std::string key;
    std::vector<NodeId> sorted;
    for (NodeId id = 0; id < n; ++id) {
      const Gate& g = net.gate(id);
      if (g.type == GateType::Input) continue;
      sorted.assign(g.fanin.begin(), g.fanin.end());
      std::sort(sorted.begin(), sorted.end());
      key.clear();
      key.push_back(static_cast<char>(g.type));
      for (const NodeId f : sorted)
        key.append(reinterpret_cast<const char*>(&f), sizeof(f));
      const auto [it, inserted] = seen.emplace(key, id);
      if (inserted) continue;
      finding(LintSeverity::Warning, id,
              "gate '" + net.name_of(id) + "' duplicates gate '" +
                  net.name_of(it->second) + "' (same " +
                  to_string(g.type) + " over the same fanins)",
              "merge the duplicates and reconnect the fanout");
    }
    end_pass();
  }

  SignalProbBounds bounds;
  if (enabled[kProbBounds] || enabled[kStructure]) {
    const InputProbs probs = opts.input_probs.empty()
                                 ? uniform_input_probs(net, opts.p)
                                 : opts.input_probs;
    bounds = signal_prob_bounds(net, probs);
    rep.structure.reconvergent_gates = bounds.frechet_gates;
  }

  if (enabled[kProbBounds]) {
    begin_pass(kProbBounds);
    const double eps = opts.near_constant_eps;
    for (NodeId id = 0; id < n; ++id) {
      const GateType t = net.gate(id).type;
      if (t == GateType::Input || t == GateType::Const0 ||
          t == GateType::Const1)
        continue;
      if (value[id] >= 0) continue;  // const-gate territory
      if (bounds.hi[id] < eps)
        finding(LintSeverity::Warning, id,
                "net '" + net.name_of(id) +
                    "' is statically near-constant 0: P(1) <= " +
                    fmt_prob(bounds.hi[id]) +
                    " — stuck-at-0 faults here are (nearly) undetectable "
                    "by random patterns",
                "add a test point or weighted patterns for this cone");
      else if (bounds.lo[id] > 1.0 - eps)
        finding(LintSeverity::Warning, id,
                "net '" + net.name_of(id) +
                    "' is statically near-constant 1: P(1) >= " +
                    fmt_prob(bounds.lo[id]) +
                    " — stuck-at-1 faults here are (nearly) undetectable "
                    "by random patterns",
                "add a test point or weighted patterns for this cone");
    }
    end_pass();
  }

  if (enabled[kStructure]) {
    begin_pass(kStructure);
    const LintStructure& st = rep.structure;
    finding(LintSeverity::Info, kNoNode,
            "depth " + std::to_string(st.depth) + ", " +
                std::to_string(st.stems) + " stems, max fanin " +
                std::to_string(st.max_fanin) + ", max fanout " +
                std::to_string(st.max_fanout) + ", widest level " +
                std::to_string(st.widest_level) + " nodes, " +
                std::to_string(st.reconvergent_gates) +
                " possibly-reconvergent gates",
            "reconvergence density predicts estimator error; prefer exact "
            "engines on dense cones");
    end_pass();
  }

  if (enabled[kRedundantFault] || enabled[kUntestableFault]) {
    const std::vector<Fault> faults = collapsed_fault_list(net);
    FaultAnalyzeOptions fo;
    fo.p = opts.p;
    fo.input_probs = opts.input_probs;
    const FaultAnalysis fa = analyze_faults(net, faults, fo);

    if (enabled[kRedundantFault]) {
      begin_pass(kRedundantFault);
      for (std::size_t i = 0; i < faults.size(); ++i) {
        const FaultBound& b = fa.bounds[i];
        if (b.verdict != FaultClass::ProvenUndetectable) continue;
        finding(LintSeverity::Warning, faults[i].node,
                "fault " + to_string(net, faults[i]) +
                    " is provably undetectable (" + to_string(b.cause) +
                    ") — the logic it sits on is redundant",
                "no pattern set can detect it; fold the redundant logic and "
                "exclude the fault from test-length budgeting");
      }
      end_pass();
    }

    if (enabled[kUntestableFault]) {
      begin_pass(kUntestableFault);
      const double eps = opts.near_constant_eps;
      for (std::size_t i = 0; i < faults.size(); ++i) {
        const FaultBound& b = fa.bounds[i];
        if (b.hi <= 0.0 || b.hi >= eps) continue;
        finding(LintSeverity::Warning, faults[i].node,
                "fault " + to_string(net, faults[i]) +
                    " has static detection probability <= " + fmt_prob(b.hi) +
                    " — (nearly) untestable by random patterns",
                "add a test point or weighted patterns for this cone");
      }
      finding(LintSeverity::Info, kNoNode,
              std::to_string(faults.size()) + " collapsed faults: " +
                  std::to_string(fa.undetectable) + " proven undetectable (" +
                  std::to_string(fa.unexcitable) + " unexcitable, " +
                  std::to_string(fa.unobservable) + " unobservable), " +
                  std::to_string(fa.detectable) + " proven detectable, " +
                  std::to_string(fa.uncertain) + " uncertain; " +
                  std::to_string(fa.learned_constants) + " learned constants",
              "proven-undetectable faults are skipped by pruned fault "
              "simulation; uncertain ones need dynamic analysis");
      end_pass();
    }
  }

  return rep;
}

void LintReport::write(JsonWriter& w) const {
  w.begin_object();
  w.key("netlist").begin_object();
  w.key("nodes").value(structure.nodes);
  w.key("inputs").value(structure.inputs);
  w.key("outputs").value(structure.outputs);
  w.key("gates").value(structure.gates);
  w.end_object();
  w.key("passes").begin_array();
  for (const std::string& p : passes_run) w.value(p);
  w.end_array();
  w.key("summary").begin_object();
  w.key("errors").value(errors);
  w.key("warnings").value(warnings);
  w.key("infos").value(infos);
  w.key("clean").value(clean());
  w.end_object();
  w.key("structure").begin_object();
  w.key("depth").value(structure.depth);
  w.key("stems").value(structure.stems);
  w.key("max_fanin").value(structure.max_fanin);
  w.key("max_fanout").value(structure.max_fanout);
  w.key("widest_level").value(structure.widest_level);
  w.key("reconvergent_gates").value(structure.reconvergent_gates);
  w.end_object();
  w.key("diagnostics").begin_array();
  for (const LintDiagnostic& d : diagnostics) {
    w.begin_object();
    w.key("pass").value(d.pass);
    w.key("severity").value(to_string(d.severity));
    if (d.node == kNoNode)
      w.key("node").null();
    else
      w.key("node").value(d.node);
    if (!d.name.empty()) w.key("name").value(d.name);
    w.key("message").value(d.message);
    w.key("hint").value(d.hint);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string LintReport::to_json(int indent) const {
  JsonWriter w(indent);
  write(w);
  return w.str();
}

std::string LintReport::to_text() const {
  std::string out;
  for (const LintDiagnostic& d : diagnostics) {
    out += to_string(d.severity);
    out += '[';
    out += d.pass;
    out += "] ";
    out += d.message;
    out += '\n';
    if (!d.hint.empty()) {
      out += "    hint: ";
      out += d.hint;
      out += '\n';
    }
  }
  out += "lint: " + std::to_string(errors) + " error(s), " +
         std::to_string(warnings) + " warning(s), " + std::to_string(infos) +
         " info(s) — " + std::to_string(structure.gates) + " gates, depth " +
         std::to_string(structure.depth) + ", " +
         std::to_string(structure.stems) + " stems\n";
  return out;
}

}  // namespace protest
