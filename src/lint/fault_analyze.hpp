// Static stuck-at fault analysis: sound per-fault detection-probability
// intervals and untestability proofs, with no simulation at all.
//
// Every fault is classified
//
//   proven_undetectable  — hi == 0.  Either UNEXCITABLE (the implication
//                          engine proves the line constant at the stuck
//                          value, so the faulty value never differs) or
//                          UNOBSERVABLE (every propagation path is
//                          statically blocked: the effect cannot reach a
//                          primary output through nodes that can change).
//                          Such a fault is redundant — simulating it is
//                          pure waste, and its (d, e) test length is
//                          meaningless.
//   proven_detectable    — lo > 0.  Random patterns WILL detect it with
//                          probability at least lo; 1/lo bounds the
//                          expected test length from above.
//   uncertain            — the static argument leaves 0 inside [lo, hi].
//
// The interval construction composes three sound layers:
//
//   1. Constant lattices.  The plain forward lattice (`propagate_constants`)
//      gives ROBUST constants: their derivations pass only through other
//      robust constants, so a fault at a non-robust-constant origin can
//      never change them — they soundly BLOCK propagation.  The implication
//      engine (`learn_constants`) adds LEARNED constants (e.g. XOR(a,a)=0),
//      which hold for every good-circuit value — sound for excitation and
//      for unaffected side inputs, but NOT for blocking affected paths
//      (their derivations may pass through the very nodes the fault flips).
//   2. Signal-probability intervals (`signal_prob_bounds`), sharpened by
//      pinning learned constants, bound the good value of every net.
//   3. A per-fault forward EVENT sweep bounds P(node differs from good)
//      through the fault's fanout cone.  When exactly one fanin of a gate
//      is affected, "output differs" = "fanin differs AND the unaffected
//      side inputs sensitize the pin" — side inputs carry good values, so
//      their static intervals apply; the conjunction uses the interval
//      product when the stem Bloom signatures prove the supports disjoint
//      and the Fréchet-AND bound otherwise.  When several fanins are
//      affected (reconvergence of the fault effect), the event is widened
//      to the union bound [0, min(1, sum of driver event his)].  Detection
//      probability is then bracketed by the per-output events:
//      lo = max over POs of E_po.lo, hi = min(1, excitation hi, sum E_po.hi).
//
// Sweeps are budgeted per fault; a truncated sweep soundly falls back to
// [0, excitation hi].
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "lint/implication.hpp"
#include "prob/signal_prob.hpp"
#include "sim/fault.hpp"

namespace protest {

enum class FaultClass : std::uint8_t {
  ProvenUndetectable,
  ProvenDetectable,
  Uncertain,
};

/// Which static argument proved a fault undetectable.
enum class UndetectableCause : std::uint8_t {
  None,          ///< fault is not proven undetectable
  Unexcitable,   ///< line provably constant at the stuck value
  Unobservable,  ///< every propagation path statically blocked
};

std::string to_string(FaultClass c);
std::string to_string(UndetectableCause c);

struct FaultBound {
  double lo = 0.0;  ///< sound lower bound on the detection probability
  double hi = 1.0;  ///< sound upper bound
  FaultClass verdict = FaultClass::Uncertain;
  UndetectableCause cause = UndetectableCause::None;
  /// The forward event sweep hit its node budget; hi fell back to the
  /// excitation bound (still sound, just wider).
  bool truncated = false;
};

struct FaultAnalyzeOptions {
  /// Uniform input probability used when `input_probs` is empty.
  double p = 0.5;
  /// Explicit per-input tuple (validated); empty = uniform p.
  InputProbs input_probs;
  /// Run the implication engine to learn constants beyond the forward
  /// lattice (sharpens excitation bounds and side-input intervals).
  bool learn = true;
  ImplicationOptions implication;
  /// Per-fault budget on nodes visited by the forward event sweep.
  std::size_t max_cone_nodes = 2048;
};

struct FaultAnalysis {
  /// Parallel to the analyzed fault list.
  std::vector<FaultBound> bounds;

  // Census.
  std::size_t undetectable = 0;  ///< = unexcitable + unobservable
  std::size_t unexcitable = 0;
  std::size_t unobservable = 0;
  std::size_t detectable = 0;
  std::size_t uncertain = 0;
  std::size_t truncated_sweeps = 0;
  /// Event/side conjunctions that had to take a Fréchet or union-bound
  /// widening — a reconvergence census for the fault layer.
  std::size_t frechet_widened = 0;
  /// Constants the implication engine proved beyond the forward lattice.
  std::size_t learned_constants = 0;

  /// Fraction of faults settled statically (proven either way).
  double settled_fraction() const {
    return bounds.empty()
               ? 0.0
               : static_cast<double>(undetectable + detectable) /
                     static_cast<double>(bounds.size());
  }
};

/// Analyzes every fault in the list against the finalized netlist.
/// Throws std::invalid_argument on an unfinalized netlist, a bad input
/// tuple, or a fault referencing a nonexistent node/pin.
FaultAnalysis analyze_faults(const Netlist& net, std::span<const Fault> faults,
                             const FaultAnalyzeOptions& opts = {});

}  // namespace protest
