#include "lint/implication.hpp"

#include "lint/fold.hpp"

namespace protest {
namespace {

/// Forward three-valued determination of a gate's output from its fanin
/// lattice values; -1 when the fanins leave it open.  Inputs are free.
signed char forward_const(const Netlist& net, NodeId n,
                          const std::vector<signed char>& val) {
  const Gate& g = net.gate(n);
  switch (g.type) {
    case GateType::Input:
      return -1;
    case GateType::Const0:
      return 0;
    case GateType::Const1:
      return 1;
    default:
      break;
  }
  int num0 = 0, num1 = 0, unknown = 0, parity = 0;
  for (NodeId f : g.fanin) {
    const signed char v = val[f];
    if (v < 0) {
      ++unknown;
    } else if (v) {
      ++num1;
      parity ^= 1;
    } else {
      ++num0;
    }
  }
  switch (g.type) {
    case GateType::Buf:
      return unknown ? -1 : (num1 ? 1 : 0);
    case GateType::Not:
      return unknown ? -1 : (num1 ? 0 : 1);
    case GateType::And:
      return num0 ? 0 : (unknown ? -1 : 1);
    case GateType::Nand:
      return num0 ? 1 : (unknown ? -1 : 0);
    case GateType::Or:
      return num1 ? 1 : (unknown ? -1 : 0);
    case GateType::Nor:
      return num1 ? 0 : (unknown ? -1 : 1);
    case GateType::Xor:
      return unknown ? -1 : static_cast<signed char>(parity);
    case GateType::Xnor:
      return unknown ? -1 : static_cast<signed char>(parity ^ 1);
    default:
      return -1;
  }
}

}  // namespace

ImplicationEngine::ImplicationEngine(const Netlist& net,
                                     std::vector<signed char> base,
                                     ImplicationOptions opts)
    : net_(net), opts_(opts), base_(std::move(base)), val_(base_),
      queued_(net.size(), 0) {}

void ImplicationEngine::enqueue(NodeId g) {
  if (!queued_[g]) {
    queued_[g] = 1;
    queue_.push_back(g);
  }
}

void ImplicationEngine::clear_queue() {
  for (std::size_t i = qhead_; i < queue_.size(); ++i) queued_[queue_[i]] = 0;
  queue_.clear();
  qhead_ = 0;
}

bool ImplicationEngine::assign(NodeId n, signed char v) {
  const signed char cur = val_[n];
  if (cur >= 0) return cur == v;
  val_[n] = v;
  trail_.push_back(n);
  ++stats_.implications;
  enqueue(n);  // its own fanins may now be forced (backward justification)
  for (NodeId c : net_.fanout(n)) enqueue(c);
  return true;
}

void ImplicationEngine::undo_to(std::size_t mark) {
  while (trail_.size() > mark) {
    val_[trail_.back()] = -1;
    trail_.pop_back();
  }
}

bool ImplicationEngine::examine(NodeId g, std::vector<NodeId>* unjustified) {
  const Gate& gate = net_.gate(g);
  switch (gate.type) {
    case GateType::Input:
      return true;
    case GateType::Const0:
      return assign(g, 0);
    case GateType::Const1:
      return assign(g, 1);
    default:
      break;
  }
  int num0 = 0, num1 = 0, unknown = 0, parity = 0;
  NodeId last_unknown = kNoNode;
  for (NodeId f : gate.fanin) {
    const signed char v = val_[f];
    if (v < 0) {
      ++unknown;
      last_unknown = f;
    } else if (v) {
      ++num1;
      parity ^= 1;
    } else {
      ++num0;
    }
  }
  const signed char out = val_[g];
  switch (gate.type) {
    case GateType::Buf:
      if (unknown == 0) return assign(g, num1 ? 1 : 0);
      return out < 0 || assign(last_unknown, out);
    case GateType::Not:
      if (unknown == 0) return assign(g, num1 ? 0 : 1);
      return out < 0 || assign(last_unknown, out ? 0 : 1);
    case GateType::And:
    case GateType::Nand: {
      const bool inv = gate.type == GateType::Nand;
      if (num0 > 0) return assign(g, inv ? 1 : 0);
      if (unknown == 0) return assign(g, inv ? 0 : 1);
      if (out < 0) return true;
      if ((out != 0) != inv) {  // AND core is 1: every fanin must be 1
        for (NodeId f : gate.fanin)
          if (val_[f] < 0 && !assign(f, 1)) return false;
      } else if (unknown == 1) {  // core 0, one candidate left
        return assign(last_unknown, 0);
      } else if (unjustified) {
        unjustified->push_back(g);
      }
      return true;
    }
    case GateType::Or:
    case GateType::Nor: {
      const bool inv = gate.type == GateType::Nor;
      if (num1 > 0) return assign(g, inv ? 0 : 1);
      if (unknown == 0) return assign(g, inv ? 1 : 0);
      if (out < 0) return true;
      if ((out != 0) == inv) {  // OR core is 0: every fanin must be 0
        for (NodeId f : gate.fanin)
          if (val_[f] < 0 && !assign(f, 0)) return false;
      } else if (unknown == 1) {  // core 1, one candidate left
        return assign(last_unknown, 1);
      } else if (unjustified) {
        unjustified->push_back(g);
      }
      return true;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      const bool inv = gate.type == GateType::Xnor;
      if (unknown == 0) {
        const bool v = (parity != 0) != inv;
        return assign(g, v ? 1 : 0);
      }
      if (out < 0) return true;
      if (unknown == 1) {
        const bool core = (out != 0) != inv;       // parity over all fanins
        const bool u = core != (parity != 0);      // what the unknown must be
        return assign(last_unknown, u ? 1 : 0);
      }
      if (unjustified) unjustified->push_back(g);
      return true;
    }
    default:
      return true;
  }
}

bool ImplicationEngine::propagate(std::vector<NodeId>* unjustified) {
  while (qhead_ < queue_.size()) {
    const NodeId g = queue_[qhead_++];
    queued_[g] = 0;
    if (++steps_ > opts_.max_steps) {
      exhausted_ = true;
      break;
    }
    if (!examine(g, unjustified)) {
      clear_queue();
      return false;
    }
  }
  clear_queue();
  return true;
}

bool ImplicationEngine::close(unsigned depth) {
  std::vector<NodeId> unjustified;
  if (!propagate(&unjustified)) return false;
  while (depth > 0 && !exhausted_) {
    bool progress = false;
    std::size_t tried = 0;
    for (std::size_t i = 0;
         i < unjustified.size() && tried < opts_.max_split_gates; ++i) {
      NodeId pivot = kNoNode;
      for (NodeId f : net_.gate(unjustified[i]).fanin)
        if (val_[f] < 0) {
          pivot = f;
          break;
        }
      if (pivot == kNoNode) continue;  // justified meanwhile
      ++tried;
      const bool c0 = refute(pivot, false, depth - 1);
      if (exhausted_) return true;
      const bool c1 = refute(pivot, true, depth - 1);
      if (exhausted_) return true;
      if (c0 && c1) return false;  // pivot has no consistent value
      if (c0 || c1) {
        // One branch refuted: the other value is implied — commit it and
        // re-close, which may surface new unjustified gates to try.
        if (!assign(pivot, c0 ? 1 : 0)) return false;
        if (!propagate(&unjustified)) return false;
        progress = true;
      }
    }
    if (!progress) break;
  }
  return true;
}

bool ImplicationEngine::refute(NodeId node, bool value, unsigned depth) {
  if (exhausted_ || stats_.assumptions >= opts_.max_assumptions) return false;
  ++stats_.assumptions;
  const std::size_t mark = trail_.size();
  bool refuted;
  if (!assign(node, value ? 1 : 0)) {
    refuted = true;
  } else {
    refuted = !close(depth);
  }
  clear_queue();
  undo_to(mark);
  if (refuted) ++stats_.conflicts;
  return refuted;
}

bool ImplicationEngine::proves_conflict(NodeId node, bool value) {
  if (base_[node] >= 0) return base_[node] != (value ? 1 : 0);
  steps_ = 0;
  exhausted_ = false;
  return refute(node, value, opts_.depth);
}

void ImplicationEngine::pin(NodeId node, bool value) {
  if (base_[node] >= 0) return;
  base_[node] = value ? 1 : 0;
  ++stats_.learned;
  // Forward re-closure: node creation order is topological, so a single
  // sweep from the pinned node suffices.
  for (NodeId n = node + 1; n < static_cast<NodeId>(net_.size()); ++n) {
    if (base_[n] >= 0) continue;
    const signed char v = forward_const(net_, n, base_);
    if (v >= 0) base_[n] = v;
  }
  val_ = base_;
}

std::vector<signed char> learn_constants(const Netlist& net,
                                         const ImplicationOptions& opts,
                                         ImplicationStats* stats) {
  ImplicationEngine eng(net, propagate_constants(net), opts);
  for (NodeId n = 0; n < static_cast<NodeId>(net.size()); ++n) {
    if (net.is_input(n)) continue;  // inputs are free variables
    if (eng.base()[n] >= 0) continue;
    if (eng.stats().assumptions >= opts.max_assumptions) break;
    if (eng.proves_conflict(n, true)) {
      eng.pin(n, false);
    } else if (eng.proves_conflict(n, false)) {
      eng.pin(n, true);
    }
  }
  if (stats) *stats = eng.stats();
  return eng.base();
}

}  // namespace protest
