#include "lint/prob_bounds.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "prob/signal_prob.hpp"

namespace protest {
namespace {

/// One fixed Bloom bit per stem id (splitmix64 finalizer).
std::uint64_t stem_bit(NodeId n) {
  std::uint64_t z = n + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return 1ull << (z & 63u);
}

struct Interval {
  double lo = 0.0;
  double hi = 1.0;
};

Interval clamp(Interval v) {
  v.lo = std::clamp(v.lo, 0.0, 1.0);
  v.hi = std::clamp(v.hi, 0.0, 1.0);
  if (v.lo > v.hi) v.lo = v.hi;  // float dust from products near the edges
  return v;
}

/// XOR of two INDEPENDENT nets: f(a, b) = a + b - 2ab is bilinear, so its
/// extrema over the interval box sit at the corners.
Interval xor_independent(Interval a, Interval b) {
  const double c0 = a.lo + b.lo - 2.0 * a.lo * b.lo;
  const double c1 = a.lo + b.hi - 2.0 * a.lo * b.hi;
  const double c2 = a.hi + b.lo - 2.0 * a.hi * b.lo;
  const double c3 = a.hi + b.hi - 2.0 * a.hi * b.hi;
  return {std::min({c0, c1, c2, c3}), std::max({c0, c1, c2, c3})};
}

/// Fréchet folds: sound for ANY joint distribution of the two nets.
Interval and_frechet(Interval a, Interval b) {
  return {std::max(0.0, a.lo + b.lo - 1.0), std::min(a.hi, b.hi)};
}
Interval or_frechet(Interval a, Interval b) {
  return {std::max(a.lo, b.lo), std::min(1.0, a.hi + b.hi)};
}
Interval xor_frechet(Interval a, Interval b) {
  return {std::max({0.0, a.lo - b.hi, b.lo - a.hi}),
          std::min({1.0, a.hi + b.hi, 2.0 - a.lo - b.lo})};
}

}  // namespace

SignalProbBounds signal_prob_bounds(const Netlist& net,
                                    std::span<const double> input_probs) {
  if (!net.finalized())
    throw std::invalid_argument(
        "signal_prob_bounds: netlist must be finalized");
  validate_input_probs(net, input_probs);

  const std::size_t n = net.size();
  SignalProbBounds out;
  out.lo.resize(n);
  out.hi.resize(n);
  out.exact.assign(n, 0);

  // Bloom signature of the stems each net's value depends on.  Signatures
  // that share no bit prove the supports disjoint (a shared stem would set
  // the same bit in both).
  std::vector<std::uint64_t> sig(n, 0);
  std::vector<char> is_stem(n, 0);
  for (const NodeId s : net.stems()) is_stem[s] = 1;

  std::size_t next_input = 0;
  std::vector<Interval> fanin_iv;
  for (NodeId id = 0; id < n; ++id) {
    const Gate& g = net.gate(id);
    Interval v;
    bool exact = true;
    std::uint64_t s = 0;
    switch (g.type) {
      case GateType::Input:
        v.lo = v.hi = input_probs[next_input++];
        break;
      case GateType::Const0:
        v.lo = v.hi = 0.0;
        break;
      case GateType::Const1:
        v.lo = v.hi = 1.0;
        break;
      case GateType::Buf:
      case GateType::Not: {
        const NodeId f = g.fanin[0];
        v = {out.lo[f], out.hi[f]};
        if (g.type == GateType::Not) v = {1.0 - v.hi, 1.0 - v.lo};
        exact = out.exact[f] != 0;
        s = sig[f];
        break;
      }
      default: {
        // n-ary logic op: disjointness of ALL fanin cones decides between
        // the independence fold and the Fréchet fold.
        fanin_iv.clear();
        bool disjoint = true;
        for (const NodeId f : g.fanin) {
          fanin_iv.push_back({out.lo[f], out.hi[f]});
          if (!out.exact[f]) exact = false;
          if ((s & sig[f]) != 0) disjoint = false;
          s |= sig[f];
        }
        exact = exact && disjoint;
        if (!disjoint) ++out.frechet_gates;
        const GateType t = g.type;
        const bool is_and = t == GateType::And || t == GateType::Nand;
        const bool is_or = t == GateType::Or || t == GateType::Nor;
        if (disjoint) {
          if (is_and) {
            v = {1.0, 1.0};
            for (const Interval f : fanin_iv) {
              v.lo *= f.lo;
              v.hi *= f.hi;
            }
          } else if (is_or) {
            double plo = 1.0, phi = 1.0;  // products of the zero-probs
            for (const Interval f : fanin_iv) {
              plo *= 1.0 - f.hi;
              phi *= 1.0 - f.lo;
            }
            v = {1.0 - phi, 1.0 - plo};
          } else {  // Xor / Xnor
            v = fanin_iv[0];
            for (std::size_t i = 1; i < fanin_iv.size(); ++i)
              v = xor_independent(v, fanin_iv[i]);
          }
        } else {
          v = fanin_iv[0];
          for (std::size_t i = 1; i < fanin_iv.size(); ++i) {
            if (is_and)
              v = and_frechet(v, fanin_iv[i]);
            else if (is_or)
              v = or_frechet(v, fanin_iv[i]);
            else
              v = xor_frechet(v, fanin_iv[i]);
          }
        }
        if (is_inverting(t)) v = {1.0 - v.hi, 1.0 - v.lo};
        break;
      }
    }
    v = clamp(v);
    // A net that provably never toggles (bounds pinned at 0 or at 1)
    // carries no randomness downstream: sharing it cannot correlate its
    // consumers, so it contributes nothing to the stem signature.
    const bool deterministic =
        (v.lo == 0.0 && v.hi == 0.0) || (v.lo == 1.0 && v.hi == 1.0);
    if (deterministic)
      s = 0;
    else if (is_stem[id])
      s |= stem_bit(id);
    out.lo[id] = v.lo;
    out.hi[id] = v.hi;
    out.exact[id] = exact ? 1 : 0;
    sig[id] = s;
  }
  out.sig = std::move(sig);
  return out;
}

}  // namespace protest
