// Pass-manager-driven static analysis over a finalized Netlist.
//
// Six passes, each a pure structural check that costs one linear sweep:
//
//   pass id         severity        finds
//   --------------  --------------  -------------------------------------
//   unused-net      warning         nets (incl. primary inputs) that feed
//                                   nothing and are not outputs
//   dead-gate       warning         nodes with fanout but no path to any
//                                   primary output (reverse reachability)
//   const-gate      error on POs,   gates provably stuck at 0/1 by
//                   warning else    three-valued constant propagation
//   duplicate-gate  warning         structurally identical gates (same
//                                   type, same fanin multiset)
//   prob-bounds     warning         nets whose static probability
//                                   interval pins them near 0 or 1 —
//                                   statically hard-to-test cones, found
//                                   before any simulation budget is spent
//   structure       info            depth / fanout / stem / reconvergence
//                                   census for capacity planning
//
// Two further OPT-IN passes lift the analysis to the fault level (they run
// the static fault analyzer, so they cost more than a linear sweep; enable
// them with LintOptions::faults or by naming them explicitly):
//
//   redundant-fault  warning        stuck-at faults proven undetectable
//                                   (redundant logic: detection probability
//                                   is exactly 0, the (d,e) test length is
//                                   meaningless)
//   untestable-fault warning        faults whose static detection interval
//                                   pins them below near_constant_eps —
//                                   random patterns will (almost) never
//                                   catch them; plus a closing census of
//                                   the classification
//
// The PROTEST angle: a stuck or near-constant net is an (almost)
// undetectable fault site, and reconvergence density predicts estimator
// error — all diagnosable from structure alone, which is exactly the
// paper's pitch applied before its own analysis runs.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "lint/prob_bounds.hpp"
#include "netlist/netlist.hpp"

namespace protest {

class JsonWriter;

enum class LintSeverity : std::uint8_t { Info, Warning, Error };

std::string_view to_string(LintSeverity s);

/// One structured finding.
struct LintDiagnostic {
  std::string pass;          ///< pass id, e.g. "const-gate"
  LintSeverity severity = LintSeverity::Warning;
  NodeId node = kNoNode;     ///< subject node (kNoNode for netlist-wide)
  std::string name;          ///< subject net name (Netlist::name_of)
  std::string message;       ///< what is wrong
  std::string hint;          ///< how to fix it
};

/// Netlist-shape census produced by the `structure` pass.
struct LintStructure {
  std::size_t nodes = 0;
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  std::size_t gates = 0;
  unsigned depth = 0;
  std::size_t stems = 0;
  std::size_t max_fanin = 0;
  std::size_t max_fanout = 0;
  std::size_t widest_level = 0;       ///< most nodes on one logic level
  std::size_t reconvergent_gates = 0; ///< Fréchet-folded gates (prob_bounds)
};

struct LintOptions {
  /// Pass ids to run; empty = every pass.  Unknown ids throw.
  std::vector<std::string> passes;
  /// Uniform input signal probability for the prob-bounds pass...
  double p = 0.5;
  /// ...or a full per-input tuple overriding it (size = #inputs).
  std::vector<double> input_probs;
  /// prob-bounds flags nets with hi < eps or lo > 1 - eps; the
  /// untestable-fault pass flags faults with 0 < hi < eps.
  double near_constant_eps = 0.01;
  /// Opt-in: include the fault-level passes (redundant-fault,
  /// untestable-fault) when `passes` is empty.  Naming a fault pass in
  /// `passes` explicitly runs it regardless.
  bool faults = false;
  /// Per-pass diagnostic cap; excess findings are counted in the summary
  /// and acknowledged with one closing info diagnostic (never silent).
  std::size_t max_per_pass = 100;
};

struct LintReport {
  std::vector<LintDiagnostic> diagnostics;
  LintStructure structure;
  std::vector<std::string> passes_run;
  /// Full severity totals — they keep counting past max_per_pass.
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t infos = 0;

  bool clean() const { return errors == 0 && warnings == 0; }

  /// Writes the report as one JSON object in value position.
  void write(JsonWriter& w) const;
  std::string to_json(int indent = 0) const;
  /// Human-readable listing: one line per diagnostic plus a summary.
  std::string to_text() const;
};

/// All pass ids, in execution order.
std::span<const std::string_view> lint_pass_names();

/// Runs the selected passes over a finalized netlist.
LintReport run_lint(const Netlist& net, const LintOptions& opts = {});

}  // namespace protest
