// Implication engine over the three-valued constant lattice: direct
// implications from gate semantics plus fixed-depth recursive learning of
// constant implications.
//
// `propagate_constants` (lint/fold) only sees constants that flow FORWARD
// from Const0/Const1 drivers.  This engine proves more nets constant by
// refutation: assume net n carries v, close the assumption under direct
// implications (forward gate evaluation AND backward justification — an
// AND whose output is 1 forces every fanin to 1, an OR whose output is 1
// with all-but-one fanin known 0 forces the last fanin to 1, ...), and if
// the closure contradicts a known constant then NO input vector gives n
// the value v, i.e. n is constant !v on every vector.  Recursive learning
// (depth >= 1) strengthens the closure at unjustified gates by case
// analysis: if both values of an undetermined fanin refute, the assumption
// refutes; if one value refutes, the other is implied and propagation
// continues.
//
// Everything here is a PROOF procedure: a conflict is only reported when
// the implications genuinely close, so learned constants are sound (the
// fault analyzer builds redundancy proofs on them).  Budgets (per-
// assumption step cap, total assumption cap) only make the engine give up
// early — "no conflict proven" — never unsound.
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/netlist.hpp"

namespace protest {

struct ImplicationOptions {
  /// Recursive-learning depth: 0 = direct implications only, k >= 1 adds
  /// k levels of case analysis at unjustified gates.
  unsigned depth = 1;
  /// Per-assumption budget on gate examinations; a closure that would
  /// exceed it is abandoned inconclusively (sound: nothing is learned).
  std::size_t max_steps = 2048;
  /// Per-level cap on the unjustified gates case-analyzed by recursive
  /// learning (the closest ones to the assumption are tried first).
  std::size_t max_split_gates = 8;
  /// Total budget on assumptions across one learn_constants run; beyond
  /// it the remaining nodes simply stay unknown.
  std::size_t max_assumptions = 1u << 22;
};

struct ImplicationStats {
  std::size_t assumptions = 0;   ///< refutation attempts (incl. recursive)
  std::size_t implications = 0;  ///< direct implications derived
  std::size_t conflicts = 0;     ///< closures that ended in contradiction
  std::size_t learned = 0;       ///< constants proven beyond the base lattice
};

/// Assumption/refutation engine over a finalized netlist and a base
/// constant lattice (-1 unknown, else the proven value — typically the
/// `propagate_constants` result).  Not thread-safe.
class ImplicationEngine {
 public:
  ImplicationEngine(const Netlist& net, std::vector<signed char> base,
                    ImplicationOptions opts = {});

  /// True iff assuming node = value provably contradicts the base
  /// constants under depth-bounded implications — a proof that the node
  /// never carries `value` on any input vector.  False means "no proof"
  /// (NOT "satisfiable").  The engine state is restored on return.
  bool proves_conflict(NodeId node, bool value);

  /// Adds a proven constant to the base lattice and re-closes the lattice
  /// forward (consumers of a newly-constant net may become constant too).
  void pin(NodeId node, bool value);

  const std::vector<signed char>& base() const { return base_; }
  const ImplicationStats& stats() const { return stats_; }

 private:
  bool assign(NodeId n, signed char v);  ///< false = conflict
  void enqueue(NodeId g);
  void clear_queue();
  /// Drains the examination queue; collects gates whose known output is
  /// not yet justified by their fanins.  Returns false on conflict.
  bool propagate(std::vector<NodeId>* unjustified);
  bool examine(NodeId gate, std::vector<NodeId>* unjustified);
  /// Implication closure + depth-bounded case analysis under the current
  /// assumption.  Returns false iff the assumption is refuted.
  bool close(unsigned depth);
  bool refute(NodeId node, bool value, unsigned depth);
  void undo_to(std::size_t mark);

  const Netlist& net_;
  ImplicationOptions opts_;
  std::vector<signed char> base_;  ///< proven constants (grows via pin)
  std::vector<signed char> val_;   ///< base_ + current assumption closure
  std::vector<NodeId> trail_;      ///< nodes assigned since the assumption
  std::vector<NodeId> queue_;      ///< gates awaiting examination
  std::vector<char> queued_;
  std::size_t qhead_ = 0;
  std::size_t steps_ = 0;
  bool exhausted_ = false;  ///< per-assumption step budget ran out
  ImplicationStats stats_;
};

/// The strengthened constant lattice: `propagate_constants` plus every
/// constant the implication engine can learn within the budgets.  Sound:
/// an entry != -1 is a proof the net carries that value on EVERY input
/// vector.
std::vector<signed char> learn_constants(const Netlist& net,
                                         const ImplicationOptions& opts = {},
                                         ImplicationStats* stats = nullptr);

}  // namespace protest
