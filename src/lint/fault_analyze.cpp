#include "lint/fault_analyze.hpp"

#include <algorithm>
#include <cstdint>
#include <queue>
#include <stdexcept>

#include "lint/fold.hpp"
#include "lint/prob_bounds.hpp"

namespace protest {

std::string to_string(FaultClass c) {
  switch (c) {
    case FaultClass::ProvenUndetectable:
      return "proven_undetectable";
    case FaultClass::ProvenDetectable:
      return "proven_detectable";
    case FaultClass::Uncertain:
      return "uncertain";
  }
  return "?";
}

std::string to_string(UndetectableCause c) {
  switch (c) {
    case UndetectableCause::None:
      return "none";
    case UndetectableCause::Unexcitable:
      return "unexcitable";
    case UndetectableCause::Unobservable:
      return "unobservable";
  }
  return "?";
}

namespace {

/// Same fixed Bloom bit per stem id as prob_bounds (splitmix64 finalizer) —
/// used to give the fault-origin variable a bit of its own.
std::uint64_t stem_bit(NodeId n) {
  std::uint64_t z = n + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return 1ull << (z & 63u);
}

struct Interval {
  double lo = 0.0;
  double hi = 1.0;
};

Interval clamp01(Interval v) {
  v.lo = std::clamp(v.lo, 0.0, 1.0);
  v.hi = std::clamp(v.hi, 0.0, 1.0);
  if (v.lo > v.hi) v.lo = v.hi;
  return v;
}

/// Fréchet conjunction: sound for ANY joint distribution.
Interval and_frechet(Interval a, Interval b) {
  return {std::max(0.0, a.lo + b.lo - 1.0), std::min(a.hi, b.hi)};
}

/// The whole per-netlist static context plus per-fault scratch state.
class Analyzer {
 public:
  Analyzer(const Netlist& net, const FaultAnalyzeOptions& opts)
      : net_(net), opts_(opts) {
    if (!net.finalized())
      throw std::invalid_argument("analyze_faults: netlist must be finalized");
    probs_ = opts.input_probs.empty() ? uniform_input_probs(net, opts.p)
                                      : opts.input_probs;
    validate_input_probs(net, probs_);

    robust_ = propagate_constants(net);
    learned_ = robust_;
    if (opts.learn) {
      ImplicationStats st;
      learned_ = learn_constants(net, opts.implication, &st);
      learned_count_ = st.learned;
    }

    sb_ = signal_prob_bounds(net, probs_);
    // Pin the learned constants into the good-value intervals.  Sound: a
    // learned constant IS the good value on every vector, and a constant
    // net carries no randomness, so it also drops out of the signatures.
    // Downstream intervals keep their pre-pin (wider) values.
    for (NodeId n = 0; n < static_cast<NodeId>(net.size()); ++n) {
      if (learned_[n] < 0) continue;
      sb_.lo[n] = sb_.hi[n] = static_cast<double>(learned_[n]);
      sb_.sig[n] = 0;
    }

    // Reverse reachability to the primary outputs: plain, and restricted
    // to nodes the forward lattice leaves free.  A robust constant's
    // derivation passes only through robust constants, so a fault at a
    // robust-free origin can never flip one — robust constants soundly
    // block its propagation paths (the dead-gate argument, fault-lifted).
    const NodeId n = static_cast<NodeId>(net.size());
    plain_reach_.assign(n, 0);
    obs_reach_.assign(n, 0);
    for (NodeId id = n; id-- > 0;) {
      char plain = net.is_output(id) ? 1 : 0;
      char obs = plain;
      for (const NodeId c : net.fanout(id)) {
        plain |= plain_reach_[c];
        obs |= static_cast<char>(robust_[c] < 0 && obs_reach_[c]);
      }
      plain_reach_[id] = plain;
      obs_reach_[id] = obs;
    }

    ev_.resize(n);
    ev_epoch_.assign(n, 0);
    queued_epoch_.assign(n, 0);
  }

  std::size_t learned_count() const { return learned_count_; }
  std::size_t frechet_widened() const { return frechet_widened_; }

  FaultBound analyze(const Fault& f) {
    validate(f);
    const NodeId site =
        f.is_stem() ? f.node : net_.gate(f.node).fanin[f.pin];

    // Excitation: the good value of the faulted line must be the opposite
    // of the stuck value.
    const Interval exc =
        f.sa == StuckAt::Zero
            ? Interval{sb_.lo[site], sb_.hi[site]}
            : Interval{1.0 - sb_.hi[site], 1.0 - sb_.lo[site]};
    if (exc.hi <= 0.0)
      return undetectable(UndetectableCause::Unexcitable);

    // Observability prechecks.  The effect surfaces at the stem node
    // itself, or at the faulted pin's consuming gate.
    const bool origin_free = robust_[site] < 0;
    if (f.is_stem()) {
      if (origin_free ? !obs_reach_[f.node] : !plain_reach_[f.node])
        return undetectable(UndetectableCause::Unobservable);
    } else {
      // A robust-constant gate output is immune to a fault on a pin the
      // lattice did not use to derive it (robust derivations only pass
      // through robust-constant fanins, and this driver is robust-free).
      if (origin_free && robust_[f.node] >= 0)
        return undetectable(UndetectableCause::Unobservable);
      if (origin_free ? !obs_reach_[f.node] : !plain_reach_[f.node])
        return undetectable(UndetectableCause::Unobservable);
    }

    return sweep(f, site, exc, origin_free);
  }

 private:
  static FaultBound undetectable(UndetectableCause cause) {
    return {0.0, 0.0, FaultClass::ProvenUndetectable, cause, false};
  }

  void validate(const Fault& f) const {
    if (f.node >= net_.size())
      throw std::invalid_argument("analyze_faults: fault node out of range");
    if (!f.is_stem() &&
        static_cast<std::size_t>(f.pin) >= net_.gate(f.node).fanin.size())
      throw std::invalid_argument("analyze_faults: fault pin out of range");
  }

  struct Ev {
    Interval iv;
    std::uint64_t sig = 0;
  };

  /// P(E and all unaffected side pins of `gate` sensitize pin `pin`):
  /// the exact event identity for a single affected fanin.
  Ev combine_single(NodeId gate, int pin, Ev e) {
    const Gate& g = net_.gate(gate);
    const GateType t = g.type;
    if (t == GateType::Buf || t == GateType::Not || t == GateType::Xor ||
        t == GateType::Xnor)
      return e;  // a flip on the single affected pin always propagates

    // AND/NAND propagate iff every side pin is 1; OR/NOR iff every side
    // pin is 0.  Side pins are unaffected, so their good-value intervals
    // apply; fold them with the product where the signatures prove
    // disjointness, Fréchet otherwise.
    const bool need_one = t == GateType::And || t == GateType::Nand;
    Interval sens{1.0, 1.0};
    std::uint64_t sens_sig = 0;
    for (std::size_t k = 0; k < g.fanin.size(); ++k) {
      if (static_cast<int>(k) == pin) continue;
      const NodeId f = g.fanin[k];
      const Interval side = need_one
                                ? Interval{sb_.lo[f], sb_.hi[f]}
                                : Interval{1.0 - sb_.hi[f], 1.0 - sb_.lo[f]};
      if ((sens_sig & sb_.sig[f]) == 0) {
        sens.lo *= side.lo;
        sens.hi *= side.hi;
      } else {
        ++frechet_widened_;
        sens = and_frechet(sens, side);
      }
      sens_sig |= sb_.sig[f];
    }
    Ev out;
    if ((e.sig & sens_sig) == 0) {
      out.iv = {e.iv.lo * sens.lo, e.iv.hi * sens.hi};
    } else {
      ++frechet_widened_;
      out.iv = and_frechet(e.iv, sens);
    }
    out.iv = clamp01(out.iv);
    out.sig = e.sig | sens_sig;
    return out;
  }

  void mark(NodeId n, Ev e, double& det_lo, double& det_hi_sum) {
    ev_[n] = e;
    ev_epoch_[n] = epoch_;
    if (net_.is_output(n)) {
      det_lo = std::max(det_lo, e.iv.lo);
      det_hi_sum += e.iv.hi;
    }
  }

  void push_consumers(NodeId n, std::priority_queue<NodeId, std::vector<NodeId>,
                                                    std::greater<>>& heap) {
    for (const NodeId c : net_.fanout(n)) {
      if (queued_epoch_[c] != epoch_) {
        queued_epoch_[c] = epoch_;
        heap.push(c);
      }
    }
  }

  FaultBound sweep(const Fault& f, NodeId site, Interval exc,
                   bool origin_free) {
    ++epoch_;
    std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> heap;
    double det_lo = 0.0, det_hi_sum = 0.0;

    // Seed: the event at the origin.  stem_bit gives the origin variable a
    // signature bit of its own even when its good-value signature is empty
    // (e.g. a learned-constant line).
    Ev origin{exc, sb_.sig[site] | stem_bit(site)};
    if (f.is_stem()) {
      mark(f.node, origin, det_lo, det_hi_sum);
      push_consumers(f.node, heap);
    } else {
      const Ev eg = combine_single(f.node, f.pin, origin);
      if (eg.iv.hi <= 0.0) return undetectable(UndetectableCause::Unobservable);
      mark(f.node, eg, det_lo, det_hi_sum);
      push_consumers(f.node, heap);
    }

    std::size_t visited = 0;
    std::vector<NodeId> drivers;  // distinct affected drivers, reused
    while (!heap.empty()) {
      const NodeId c = heap.top();
      heap.pop();
      if (ev_epoch_[c] == epoch_) continue;  // seeded origin gate
      // A fault at a robust-free origin can never flip a robust constant.
      if (origin_free && robust_[c] >= 0) continue;
      if (++visited > opts_.max_cone_nodes) {
        // Budget: fall back to the excitation bound — still sound.
        FaultBound b{0.0, exc.hi, FaultClass::Uncertain,
                     UndetectableCause::None, true};
        if (b.hi <= 0.0) {  // cannot happen (prechecked), but keep it sound
          b.verdict = FaultClass::ProvenUndetectable;
          b.cause = UndetectableCause::Unexcitable;
        }
        return b;
      }

      const Gate& g = net_.gate(c);
      int affected_pins = 0;
      int single_pin = -1;
      drivers.clear();
      for (std::size_t k = 0; k < g.fanin.size(); ++k) {
        const NodeId d = g.fanin[k];
        if (ev_epoch_[d] != epoch_) continue;
        ++affected_pins;
        single_pin = static_cast<int>(k);
        if (std::find(drivers.begin(), drivers.end(), d) == drivers.end())
          drivers.push_back(d);
      }
      if (affected_pins == 0) continue;

      Ev e;
      if (affected_pins == 1) {
        e = combine_single(c, single_pin, ev_[drivers[0]]);
      } else {
        // Several affected fanins (the fault effect reconverges): the
        // output can only differ if some affected driver differs — union
        // bound over the distinct drivers, lower bound 0 (effects may
        // cancel, e.g. XOR of a stem with itself).
        ++frechet_widened_;
        double hi = 0.0;
        std::uint64_t sig = 0;
        for (const NodeId d : drivers) {
          hi += ev_[d].iv.hi;
          sig |= ev_[d].sig;
        }
        for (const NodeId d : g.fanin) sig |= sb_.sig[d];
        e.iv = clamp01({0.0, hi});
        e.sig = sig;
      }
      if (e.iv.hi <= 0.0) continue;  // provably never differs: cone pruned
      mark(c, e, det_lo, det_hi_sum);
      push_consumers(c, heap);
    }

    Interval det{det_lo, std::min({1.0, det_hi_sum, exc.hi})};
    det = clamp01(det);
    FaultBound b{det.lo, det.hi, FaultClass::Uncertain,
                 UndetectableCause::None, false};
    if (det.hi <= 0.0) {
      b.verdict = FaultClass::ProvenUndetectable;
      b.cause = UndetectableCause::Unobservable;
    } else if (det.lo > 0.0) {
      b.verdict = FaultClass::ProvenDetectable;
    }
    return b;
  }

  const Netlist& net_;
  const FaultAnalyzeOptions& opts_;
  InputProbs probs_;
  std::vector<signed char> robust_;   ///< forward lattice: blocks propagation
  std::vector<signed char> learned_;  ///< + implications: good values only
  SignalProbBounds sb_;               ///< learned-pinned good-value intervals
  std::vector<char> plain_reach_;
  std::vector<char> obs_reach_;
  std::size_t learned_count_ = 0;
  std::size_t frechet_widened_ = 0;

  // Per-fault sweep scratch, epoch-stamped to avoid O(n) clears.
  std::vector<Ev> ev_;
  std::vector<std::uint32_t> ev_epoch_;
  std::vector<std::uint32_t> queued_epoch_;
  std::uint32_t epoch_ = 0;
};

}  // namespace

FaultAnalysis analyze_faults(const Netlist& net, std::span<const Fault> faults,
                             const FaultAnalyzeOptions& opts) {
  Analyzer az(net, opts);
  FaultAnalysis out;
  out.bounds.reserve(faults.size());
  out.learned_constants = az.learned_count();
  for (const Fault& f : faults) {
    const FaultBound b = az.analyze(f);
    switch (b.verdict) {
      case FaultClass::ProvenUndetectable:
        ++out.undetectable;
        if (b.cause == UndetectableCause::Unexcitable)
          ++out.unexcitable;
        else
          ++out.unobservable;
        break;
      case FaultClass::ProvenDetectable:
        ++out.detectable;
        break;
      case FaultClass::Uncertain:
        ++out.uncertain;
        break;
    }
    if (b.truncated) ++out.truncated_sweeps;
    out.bounds.push_back(b);
  }
  out.frechet_widened = az.frechet_widened();
  return out;
}

}  // namespace protest
