// Static signal-probability interval propagation: guaranteed [lo, hi]
// bounds on every net's signal probability, computed in one topological
// sweep — no simulation, no sampling.
//
// The point estimators (prob/) trade soundness for sharpness: they return
// one number per net that may err at reconvergent fanout.  This pass is
// the opposite trade.  Each net gets an interval that provably contains
// its true signal probability:
//
//   * Where a gate's fanin cones are pairwise DISJOINT (no shared stem),
//     the fanins are genuinely independent and the multilinear gate
//     transfer function is applied interval-wise — exact on fanout-free
//     regions (point inputs stay points).
//   * Where cones may overlap (reconvergence), the fold widens to the
//     Fréchet bounds, which hold for ANY joint distribution of the
//     fanins:  P(a&b) in [max(0, la+lb-1), min(ha, hb)],
//              P(a|b) in [max(la, lb), min(1, ha+hb)],
//              P(a^b) in [max(0, la-hb, lb-ha), min(1, ha+hb, 2-la-lb)].
//
// Cone overlap is decided conservatively via a 64-bit Bloom signature of
// the stems (fanout >= 2 nodes) in each net's support: signatures that
// share no bit prove the stem sets disjoint (each stem sets one fixed
// bit), so the independence fold is only used when it is sound; hash
// collisions merely widen, never unsound.
//
// The bounds double as a differential oracle: every engine's estimate
// must lie inside them.  This holds by construction for the exact engines
// (the true probability is inside) and compositionally for the
// independence-based estimators — any per-gate combination of fanin
// values that stays within the gate's Fréchet fold stays within the
// propagated interval (the independence value always does: for AND,
// max(0, a+b-1) <= ab <= min(a, b) on [0,1]^2, and likewise per type).
// Monte-Carlo estimates additionally carry sampling noise and need a
// few-sigma widening (see lint_test's containment suite).
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace protest {

struct SignalProbBounds {
  std::vector<double> lo;   ///< per-node lower bound, indexed by NodeId
  std::vector<double> hi;   ///< per-node upper bound
  /// True when the node's interval came purely from independence folds
  /// over provably-disjoint cones — with point input probabilities the
  /// interval is then a point and equals the true probability.
  std::vector<char> exact;
  /// Bloom signature of the stems in each node's support (one fixed bit
  /// per stem id; deterministic nets carry none).  Signatures that share
  /// no bit prove the supports disjoint — fault_analyze reuses them to
  /// decide independence when composing event intervals.
  std::vector<std::uint64_t> sig;
  /// Gates folded with the Fréchet bounds, i.e. gates whose fanin cones
  /// could not be proven disjoint — a cheap reconvergence census.
  std::size_t frechet_gates = 0;

  double width(NodeId n) const { return hi[n] - lo[n]; }
};

/// Propagates [lo, hi] bounds for the given input tuple (validated like
/// every engine entry point: arity, range, finalized netlist).
SignalProbBounds signal_prob_bounds(const Netlist& net,
                                    std::span<const double> input_probs);

}  // namespace protest
