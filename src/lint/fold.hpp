// Constant propagation and the opt-in constant fold.
//
// `propagate_constants` runs the classic three-valued forward dataflow
// (0 / 1 / unknown) over the netlist: a gate is provably stuck when a
// controlling fanin is stuck at the controlling value, or when every
// fanin is stuck.  The result is purely advisory — it feeds the lint
// `const-gate` pass.
//
// `fold_constants` acts on it: every provably-constant gate is rewritten
// to a Const0/Const1 node and logic reachable only through removed gates
// is dropped.  Primary inputs and output order are preserved exactly, so
// the folded netlist accepts the same input vectors and must produce
// bit-identical output words under WordSimulator — the property
// lint_test asserts on random vectors.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"

namespace protest {

/// Per-node constant lattice value: -1 unknown, else the stuck value 0/1.
std::vector<signed char> propagate_constants(const Netlist& net);

struct FoldResult {
  Netlist netlist;            ///< folded and finalized
  /// Old NodeId -> new NodeId; kNoNode for nodes the fold eliminated.
  /// Constant-valued outputs map to their replacement constant node.
  std::vector<NodeId> remap;
  std::size_t removed = 0;      ///< original gates rewritten away
  std::size_t const_nodes = 0;  ///< replacement constant nodes created
};

/// Rewrites provably-constant gates out of a finalized netlist.  Inputs
/// are all kept (same order and names); outputs keep their order, with
/// constant outputs driven by dedicated constant nodes carrying the
/// original net name.
FoldResult fold_constants(const Netlist& net);

}  // namespace protest
