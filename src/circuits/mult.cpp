#include "circuits/mult.hpp"

#include "circuits/arith.hpp"
#include "netlist/builder.hpp"

namespace protest {

Netlist make_mult() {
  NetlistBuilder bld(XorStyle::NandMacro);
  const Bus a = bld.input_bus("A", 8);
  const Bus b = bld.input_bus("B", 8);
  const Bus c = bld.input_bus("C", 8);
  const Bus d = bld.input_bus("D", 8);

  const Bus cd = array_multiplier(bld, c, d);  // 16 bits
  AddResult ab = ripple_adder(bld, a, b);      // 8 bits + carry
  Bus ab9 = ab.sum;
  if (ab.carry != kNoNode) ab9.push_back(ab.carry);

  AddResult total = ripple_adder(bld, cd, ab9);  // 16 bits + carry
  Bus f = total.sum;
  f.push_back(total.carry == kNoNode ? bld.constant(false) : total.carry);
  bld.output_bus(f, "F");
  return bld.build();
}

Netlist make_multiplier(std::size_t width) {
  NetlistBuilder bld(XorStyle::NandMacro);
  const Bus a = bld.input_bus("A", width);
  const Bus b = bld.input_bus("B", width);
  const Bus p = array_multiplier(bld, a, b);
  bld.output_bus(p, "P");
  return bld.build();
}

}  // namespace protest
