#include "circuits/div16.hpp"

#include "circuits/arith.hpp"
#include "netlist/builder.hpp"

namespace protest {

Netlist make_divider(std::size_t width) {
  NetlistBuilder bld(XorStyle::NandMacro);
  const Bus n = bld.input_bus("N", width);
  const Bus d = bld.input_bus("D", width);

  // high[k] = OR(D[k+1 .. width-1]): if any divisor bit above k is set, a
  // (k+1)-bit partial remainder is certainly smaller than D.
  Bus high(width, kNoNode);
  for (std::size_t k = width - 1; k-- > 0;)
    high[k] = high[k + 1] == kNoNode ? d[k + 1] : bld.or2(d[k + 1], high[k + 1]);

  // Restoring rows with growing remainder width: after k rows the partial
  // remainder is the k-bit value prefix_k(N) mod D — no constant padding,
  // hence no redundant (untestable) row logic.
  Bus r;  // current remainder, LSB first, width grows by one per row
  Bus q(width, kNoNode);
  for (std::size_t row = 0; row < width; ++row) {
    const std::size_t i = width - 1 - row;  // dividend bit of this row
    Bus rs;                                 // r' = (r << 1) | n_i
    rs.reserve(r.size() + 1);
    rs.push_back(n[i]);
    for (NodeId bit : r) rs.push_back(bit);

    Bus d_trunc(d.begin(), d.begin() + rs.size());
    SubResult sub = ripple_subtractor(bld, rs, d_trunc);
    NodeId ge = bld.inv(sub.borrow);  // r' >= D (ignoring high divisor bits)
    if (rs.size() < width && high[rs.size() - 1] != kNoNode)
      ge = bld.and2(ge, bld.inv(high[rs.size() - 1]));
    q[i] = ge;
    r = mux_bus(bld, ge, rs, sub.diff);
  }
  bld.output_bus(q, "Q");
  bld.output_bus(r, "R");
  return bld.build();
}

Netlist make_div16() { return make_divider(16); }

}  // namespace protest
