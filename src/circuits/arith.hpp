// Gate-level arithmetic building blocks used by the evaluation circuits:
// ripple adders/subtractors, array multipliers, equality.  All buses are
// LSB first.
#pragma once

#include "netlist/builder.hpp"

namespace protest {

/// Sum of up to three bits; b and c may be kNoNode (known 0).  Returns
/// {sum, carry}; carry is kNoNode when provably 0.
std::pair<NodeId, NodeId> add_bits(NetlistBuilder& bld, NodeId a, NodeId b,
                                   NodeId c);

struct AddResult {
  Bus sum;       ///< width = max(|a|, |b|)
  NodeId carry;  ///< carry out (kNoNode when provably 0)
};

/// Ripple-carry addition; operands may have different widths.
AddResult ripple_adder(NetlistBuilder& bld, const Bus& a, const Bus& b,
                       NodeId carry_in = kNoNode);

struct SubResult {
  Bus diff;       ///< width = |a| (two's-complement wraparound)
  NodeId borrow;  ///< borrow out: 1 iff a < b
};

/// Ripple-borrow subtraction a - b; |b| <= |a| (b is zero-extended).
SubResult ripple_subtractor(NetlistBuilder& bld, const Bus& a, const Bus& b);

/// Unsigned array multiplier, result width |a| + |b|.
Bus array_multiplier(NetlistBuilder& bld, const Bus& a, const Bus& b);

/// 1 iff a == b (widths must match).
NodeId equality(NetlistBuilder& bld, const Bus& a, const Bus& b);

/// bit-wise 2:1 select: sel ? hi : lo (widths must match).
Bus mux_bus(NetlistBuilder& bld, NodeId sel, const Bus& lo, const Bus& hi);

}  // namespace protest
