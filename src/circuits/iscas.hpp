// Public ISCAS-85 benchmark support: the c17 netlist is embedded (it is
// six NAND gates and appears in every DFT textbook); larger ISCAS circuits
// load from .bench files via read_bench_file.
#pragma once

#include <string>

#include "netlist/netlist.hpp"

namespace protest {

/// The ISCAS-85 c17 benchmark (5 inputs, 2 outputs, 6 NAND2).
Netlist make_c17();

/// The embedded .bench source of c17 (round-trip/parser tests).
const std::string& c17_bench_text();

}  // namespace protest
