// Gate-level SN74181 4-bit ALU — the "ALU" of the paper's Table 1/2 and
// fig. 5 (TTL ALU SN74181).  The implementation follows the classic
// two-AOI-per-bit structure with a flattened carry-lookahead:
//
//   E_i = NOR(A_i, S0*B_i, S1*!B_i)
//   D_i = NOR(S2*A_i*!B_i, S3*A_i*B_i)
//   g_i = !D_i,  p_i = !E_i
//   c_0 = !M * Cn,   c_{i+1} = g_i + p_i c_i   (flattened AND-OR terms)
//   F_i = (E_i xor D_i) xor (M + c_i)
//
// Conventions (documented in DESIGN.md): carry in/out are active high and
// M = 1 (logic mode) blocks the carry chain.  Functional behaviour matches
// the 74181 truth table with Cn = !Cn̄ (checked exhaustively in tests).
//
// Inputs:  A0..A3, B0..B3, S0..S3, M, CN  (14)
// Outputs: F0..F3, COUT, POUT, GOUT, AEQB (8)
#pragma once

#include "netlist/netlist.hpp"

namespace protest {

Netlist make_sn74181();

/// Behavioural reference model (same conventions); returns the 8 output
/// bits keyed like the netlist outputs.  a,b,s are 4-bit values.
struct Alu181Out {
  unsigned f;  ///< 4-bit result
  bool cout, pout, gout, aeqb;
};
Alu181Out alu181_reference(unsigned a, unsigned b, unsigned s, bool m, bool cn);

}  // namespace protest
