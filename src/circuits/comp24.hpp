// COMP: "the connection of 16 slightly modified SN7485 comparators to a
// cascaded 24 bit word comparator" (paper sect. 5, fig. 7, Tables 3-6).
// We cascade 7485-style slices serially over the 24-bit words A and B with
// the three cascade inputs TI1..TI3 feeding the least significant slice —
// the primary inputs are exactly the 51 nets of Table 4
// (A0..A23, B0..B23, TI1, TI2, TI3).
//
// The relevant testability property is preserved: the equality chain
// through all six slices makes the cascade outputs (and every fault that
// must propagate through them) extremely random-pattern resistant at
// p = 0.5 — the reason Table 3 needs 10^8 patterns.
#pragma once

#include "netlist/netlist.hpp"

namespace protest {

/// 51 inputs (A0..A23, B0..B23, TI1=lt, TI2=eq, TI3=gt); outputs LT, EQ, GT.
Netlist make_comp24();

}  // namespace protest
