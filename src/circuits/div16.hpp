// DIV: "the combinatorial part of a 16 bit divider" (paper sect. 5,
// Tables 3/5/6).  Realized as a restoring array divider: 16 rows of
// controlled subtract + select.  The long borrow/select chains make many
// faults random-pattern resistant at p = 0.5 — the property Table 3
// quantifies (~10^5..10^6 patterns required).
#pragma once

#include "netlist/netlist.hpp"

namespace protest {

/// Inputs N0..N15 (dividend), D0..D15 (divisor); outputs Q0..Q15
/// (quotient), R0..R15 (remainder).  For D == 0 the hardware convention is
/// Q = all-ones and R = N (restoring array behaviour).
Netlist make_div16();

/// Generic width (scaling family).
Netlist make_divider(std::size_t width);

}  // namespace protest
