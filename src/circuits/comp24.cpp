#include "circuits/comp24.hpp"

#include "circuits/sn7485.hpp"
#include "netlist/builder.hpp"

namespace protest {

Netlist make_comp24() {
  NetlistBuilder bld(XorStyle::NandMacro);
  const Bus a = bld.input_bus("A", 24);
  const Bus b = bld.input_bus("B", 24);
  // Cascade inputs of the least significant slice (TI1..TI3, Table 4).
  const NodeId ti1 = bld.input("TI1");
  const NodeId ti2 = bld.input("TI2");
  const NodeId ti3 = bld.input("TI3");

  CompareOuts chain{ti1, ti2, ti3};
  for (int s = 0; s < 6; ++s) {
    Bus as(a.begin() + 4 * s, a.begin() + 4 * (s + 1));
    Bus bs(b.begin() + 4 * s, b.begin() + 4 * (s + 1));
    chain = sn7485_slice(bld, as, bs, chain.lt, chain.eq, chain.gt);
  }
  bld.output(chain.lt, "LT");
  bld.output(chain.eq, "EQ");
  bld.output(chain.gt, "GT");
  return bld.build();
}

}  // namespace protest
