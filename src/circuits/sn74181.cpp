#include "circuits/sn74181.hpp"

#include "netlist/builder.hpp"

namespace protest {

Netlist make_sn74181() {
  NetlistBuilder bld(XorStyle::NandMacro);
  const Bus a = bld.input_bus("A", 4);
  const Bus b = bld.input_bus("B", 4);
  const Bus s = bld.input_bus("S", 4);
  const NodeId m = bld.input("M");
  const NodeId cn = bld.input("CN");

  Bus e(4), d(4), g(4), p(4), ed(4);
  for (int i = 0; i < 4; ++i) {
    const NodeId nb = bld.inv(b[i]);
    const NodeId t1 = bld.and2(b[i], s[0]);
    const NodeId t2 = bld.and2(nb, s[1]);
    e[i] = bld.gate(GateType::Nor, {a[i], t1, t2});
    const NodeId t3 = bld.gate(GateType::And, {a[i], nb, s[2]});
    const NodeId t4 = bld.gate(GateType::And, {a[i], b[i], s[3]});
    d[i] = bld.nor2(t3, t4);
    g[i] = bld.inv(d[i]);
    p[i] = bld.inv(e[i]);
    ed[i] = bld.xor2(e[i], d[i]);
  }

  // Flattened carry lookahead (like the real chip's AOI chain).
  const NodeId mn = bld.inv(m);
  Bus c(5);
  c[0] = bld.and2(mn, cn);
  c[1] = bld.or2(g[0], bld.and2(p[0], c[0]));
  c[2] = bld.gate(GateType::Or,
                  {g[1], bld.and2(p[1], g[0]),
                   bld.gate(GateType::And, {p[1], p[0], c[0]})});
  c[3] = bld.gate(GateType::Or,
                  {g[2], bld.and2(p[2], g[1]),
                   bld.gate(GateType::And, {p[2], p[1], g[0]}),
                   bld.gate(GateType::And, {p[2], p[1], p[0], c[0]})});
  const NodeId gout_or = bld.gate(
      GateType::Or, {g[3], bld.and2(p[3], g[2]),
                     bld.gate(GateType::And, {p[3], p[2], g[1]}),
                     bld.gate(GateType::And, {p[3], p[2], p[1], g[0]})});
  const NodeId pout = bld.gate(GateType::And, {p[3], p[2], p[1], p[0]});
  c[4] = bld.or2(gout_or, bld.and2(pout, c[0]));

  Bus f(4);
  for (int i = 0; i < 4; ++i) f[i] = bld.xor2(ed[i], bld.or2(m, c[i]));

  bld.output_bus(f, "F");
  bld.output(c[4], "COUT");
  bld.output(pout, "POUT");
  bld.output(gout_or, "GOUT");
  bld.output(bld.gate(GateType::And, {f[0], f[1], f[2], f[3]}), "AEQB");
  return bld.build();
}

Alu181Out alu181_reference(unsigned a, unsigned b, unsigned s, bool m, bool cn) {
  auto bit = [](unsigned v, int i) { return (v >> i) & 1u; };
  unsigned e = 0, d = 0, gg = 0, pp = 0;
  for (int i = 0; i < 4; ++i) {
    const unsigned ai = bit(a, i), bi = bit(b, i);
    const unsigned ei =
        1u - std::min(1u, ai + (bi & bit(s, 0)) + ((1u - bi) & bit(s, 1)));
    const unsigned di =
        1u - std::min(1u, (ai & (1u - bi) & bit(s, 2)) + (ai & bi & bit(s, 3)));
    e |= ei << i;
    d |= di << i;
    gg |= (1u - di) << i;
    pp |= (1u - ei) << i;
  }
  unsigned c = (!m && cn) ? 1u : 0u;  // c_0
  unsigned carries = c;               // bit i = c_i
  for (int i = 0; i < 3; ++i) {
    c = bit(gg, i) | (bit(pp, i) & c);
    carries |= c << (i + 1);
  }
  const unsigned c4 = bit(gg, 3) | (bit(pp, 3) & c);

  Alu181Out out{};
  out.f = 0;
  for (int i = 0; i < 4; ++i) {
    const unsigned edi = bit(e, i) ^ bit(d, i);
    const unsigned x = (m ? 1u : 0u) | bit(carries, i);
    out.f |= (edi ^ x) << i;
  }
  out.cout = c4;
  out.pout = pp == 0xF;
  unsigned go = bit(gg, 3) | (bit(pp, 3) & bit(gg, 2)) |
                (bit(pp, 3) & bit(pp, 2) & bit(gg, 1)) |
                (bit(pp, 3) & bit(pp, 2) & bit(pp, 1) & bit(gg, 0));
  out.gout = go;
  out.aeqb = out.f == 0xF;
  return out;
}

}  // namespace protest
