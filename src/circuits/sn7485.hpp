// Gate-level 4-bit magnitude comparator slice in the style of the SN7485
// ("slightly modified", exactly as the paper describes its COMP building
// block): compares two 4-bit words with cascade inputs for less-than,
// equal, greater-than.
#pragma once

#include "netlist/builder.hpp"

namespace protest {

struct CompareOuts {
  NodeId lt, eq, gt;
};

/// Instantiates one comparator slice into `bld`.  a/b are 4-bit buses (LSB
/// first); lt_in/eq_in/gt_in are the cascade inputs from the next less
/// significant slice.
CompareOuts sn7485_slice(NetlistBuilder& bld, const Bus& a, const Bus& b,
                         NodeId lt_in, NodeId eq_in, NodeId gt_in);

/// A standalone single-slice comparator netlist (11 inputs, 3 outputs) for
/// unit tests: inputs A0..3, B0..3, LTI, EQI, GTI; outputs LT, EQ, GT.
Netlist make_sn7485();

}  // namespace protest
