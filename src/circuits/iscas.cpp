#include "circuits/iscas.hpp"

#include "netlist/bench_io.hpp"

namespace protest {

const std::string& c17_bench_text() {
  static const std::string text = R"(# ISCAS-85 c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";
  return text;
}

Netlist make_c17() { return read_bench_string(c17_bench_text()); }

}  // namespace protest
