#include "circuits/arith.hpp"

#include <stdexcept>

namespace protest {

std::pair<NodeId, NodeId> add_bits(NetlistBuilder& bld, NodeId a, NodeId b,
                                   NodeId c) {
  // Normalize: gather the present operands.
  NodeId ops[3];
  int n = 0;
  for (NodeId x : {a, b, c})
    if (x != kNoNode) ops[n++] = x;
  if (n == 0) throw std::invalid_argument("add_bits: no operands");
  if (n == 1) return {ops[0], kNoNode};
  if (n == 2) {
    const NodeId sum = bld.xor2(ops[0], ops[1]);
    const NodeId carry = bld.and2(ops[0], ops[1]);
    return {sum, carry};
  }
  const NodeId ab = bld.xor2(ops[0], ops[1]);
  const NodeId sum = bld.xor2(ab, ops[2]);
  const NodeId c1 = bld.and2(ops[0], ops[1]);
  const NodeId c2 = bld.and2(ab, ops[2]);
  const NodeId carry = bld.or2(c1, c2);
  return {sum, carry};
}

AddResult ripple_adder(NetlistBuilder& bld, const Bus& a, const Bus& b,
                       NodeId carry_in) {
  const std::size_t w = std::max(a.size(), b.size());
  AddResult r;
  r.sum.reserve(w);
  NodeId carry = carry_in;
  for (std::size_t i = 0; i < w; ++i) {
    const NodeId ai = i < a.size() ? a[i] : kNoNode;
    const NodeId bi = i < b.size() ? b[i] : kNoNode;
    auto [s, c] = add_bits(bld, ai == kNoNode ? bi : ai,
                           ai == kNoNode ? kNoNode : bi, carry);
    r.sum.push_back(s);
    carry = c;
  }
  r.carry = carry;
  return r;
}

SubResult ripple_subtractor(NetlistBuilder& bld, const Bus& a, const Bus& b) {
  if (b.size() > a.size())
    throw std::invalid_argument("ripple_subtractor: |b| > |a|");
  SubResult r;
  r.diff.reserve(a.size());
  NodeId borrow = kNoNode;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const NodeId ai = a[i];
    const NodeId bi = i < b.size() ? b[i] : kNoNode;
    if (bi == kNoNode && borrow == kNoNode) {
      r.diff.push_back(bld.buf(ai));
      continue;
    }
    if (bi == kNoNode) {
      // a - borrow: diff = a ^ borrow, borrow' = !a & borrow
      r.diff.push_back(bld.xor2(ai, borrow));
      borrow = bld.and2(bld.inv(ai), borrow);
      continue;
    }
    if (borrow == kNoNode) {
      r.diff.push_back(bld.xor2(ai, bi));
      borrow = bld.and2(bld.inv(ai), bi);
      continue;
    }
    const NodeId axb = bld.xor2(ai, bi);
    r.diff.push_back(bld.xor2(axb, borrow));
    const NodeId t1 = bld.and2(bld.inv(ai), bi);
    const NodeId t2 = bld.and2(bld.inv(axb), borrow);
    borrow = bld.or2(t1, t2);
  }
  r.borrow = borrow == kNoNode ? bld.constant(false) : borrow;
  return r;
}

Bus array_multiplier(NetlistBuilder& bld, const Bus& a, const Bus& b) {
  const std::size_t na = a.size(), nb = b.size();
  if (na == 0 || nb == 0)
    throw std::invalid_argument("array_multiplier: empty operand");
  Bus out;
  out.reserve(na + nb);

  // Row 0: plain partial products.
  Bus s(nb);
  for (std::size_t j = 0; j < nb; ++j) s[j] = bld.and2(a[0], b[j]);
  out.push_back(s[0]);
  NodeId prev_top = kNoNode;  // carry out of the previous row

  for (std::size_t i = 1; i < na; ++i) {
    Bus ns(nb);
    NodeId carry = kNoNode;
    for (std::size_t j = 0; j < nb; ++j) {
      const NodeId pp = bld.and2(a[i], b[j]);
      const NodeId addend = j + 1 < nb ? s[j + 1] : prev_top;
      auto [sum, c] = add_bits(bld, pp, addend, carry);
      ns[j] = sum;
      carry = c;
    }
    prev_top = carry;
    s = std::move(ns);
    out.push_back(s[0]);
  }
  for (std::size_t j = 1; j < nb; ++j) out.push_back(s[j]);
  out.push_back(prev_top == kNoNode ? bld.constant(false) : prev_top);
  return out;
}

NodeId equality(NetlistBuilder& bld, const Bus& a, const Bus& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("equality: width mismatch");
  std::vector<NodeId> terms;
  terms.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    terms.push_back(bld.xnor2(a[i], b[i]));
  if (terms.size() == 1) return terms[0];
  return bld.andn(std::move(terms));
}

Bus mux_bus(NetlistBuilder& bld, NodeId sel, const Bus& lo, const Bus& hi) {
  if (lo.size() != hi.size())
    throw std::invalid_argument("mux_bus: width mismatch");
  Bus out;
  out.reserve(lo.size());
  for (std::size_t i = 0; i < lo.size(); ++i)
    out.push_back(bld.mux(sel, lo[i], hi[i]));
  return out;
}

}  // namespace protest
