#include "circuits/zoo.hpp"

#include <stdexcept>

#include "circuits/comp24.hpp"
#include "circuits/div16.hpp"
#include "circuits/iscas.hpp"
#include "circuits/mult.hpp"
#include "circuits/random_circuit.hpp"
#include "circuits/sn74181.hpp"
#include "circuits/sn7485.hpp"

namespace protest {

Netlist make_circuit(const std::string& name) {
  if (name == "c17") return make_c17();
  if (name == "alu") return make_sn74181();
  if (name == "mult") return make_mult();
  if (name == "div") return make_div16();
  if (name == "comp") return make_comp24();
  if (name == "sn7485") return make_sn7485();
  if (name == "mult4") return make_multiplier(4);
  if (name == "mult8") return make_multiplier(8);
  if (name == "mult12") return make_multiplier(12);
  if (name == "mult16") return make_multiplier(16);
  if (name == "mult24") return make_multiplier(24);
  if (name == "mult32") return make_multiplier(32);
  if (name == "div8") return make_divider(8);
  if (name == "div24") return make_divider(24);
  if (name == "div32") return make_divider(32);
  // The 100k-gate stress tier (deterministic seed), so the CLI/CI can
  // exercise capacity paths by name.
  if (name == "stress100k")
    return make_random_circuit(stress_circuit_params(100'000));
  throw std::invalid_argument("make_circuit: unknown circuit '" + name + "'");
}

std::vector<std::string> zoo_names() {
  return {"c17",    "alu",    "mult",   "div",    "comp",  "sn7485",
          "mult4",  "mult8",  "mult12", "mult16", "mult24", "mult32",
          "div8",   "div24",  "div32",  "stress100k"};
}

std::vector<std::string> scaling_family() {
  // Transistor counts grow from a few hundred (ALU, ~500) to ~55 000
  // (mult32), spanning the Table 7/8 range (368 .. 47636 on the paper's
  // CMOS library).
  return {"alu", "comp", "mult", "div", "mult16", "mult24", "mult32"};
}

}  // namespace protest
