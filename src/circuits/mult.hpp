// MULT: "computes A + B + C * D for 8 bit wide data ... built with 1568
// gate equivalents according to the proposal of [Hart80]" (paper sect. 4,
// Table 1/2, fig. 6).  Realized as an 8x8 array multiplier plus ripple
// adders; the deep reconvergent carry/XOR structure reproduces the
// documented P_SIM > P_PROT under-estimation bias.
#pragma once

#include "netlist/netlist.hpp"

namespace protest {

/// Inputs A0..7, B0..7, C0..7, D0..7 (32); outputs F0..F16 (17 bits:
/// max value 2*(2^8-1) + (2^8-1)^2 < 2^17).
Netlist make_mult();

/// Generic n x n multiplier (scaling family of Tables 7/8).
/// Inputs A0.., B0..; outputs P0..P(2n-1).
Netlist make_multiplier(std::size_t width);

}  // namespace protest
