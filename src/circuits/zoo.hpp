// Named circuit registry: the paper's evaluation circuits plus the scaling
// family used for the CPU-time tables.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace protest {

/// Known names: "c17", "alu" (SN74181), "mult" (A+B+C*D, 8 bit),
/// "div" (16-bit restoring divider), "comp" (24-bit cascaded comparator),
/// "sn7485", "mult4".."mult32" (n x n multipliers), "div8"/"div24"/"div32".
Netlist make_circuit(const std::string& name);

/// All registry names.
std::vector<std::string> zoo_names();

/// Circuits of increasing size for Tables 7/8 (name list, small to large).
std::vector<std::string> scaling_family();

}  // namespace protest
