// Seeded random combinational circuits: the workload generator behind the
// property-test sweeps and the "more than 10 circuits" the paper validated
// against.
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"

namespace protest {

struct RandomCircuitParams {
  std::size_t num_inputs = 8;
  std::size_t num_gates = 40;
  unsigned max_fanin = 3;       ///< >= 2
  double inverter_fraction = 0.2;
  double xor_fraction = 0.15;   ///< fraction of XOR/XNOR among logic gates
  std::uint64_t seed = 1;
};

/// Levelized random DAG; all sinks become primary outputs, so every node
/// reaches an output.
Netlist make_random_circuit(const RandomCircuitParams& params);

/// Preset for the 100k+-gate stress tier used by the throughput benchmarks
/// and the large round-trip tests: 64 inputs, mixed fanin up to 4, mild
/// XOR content.  Deterministic for a given (num_gates, seed).
RandomCircuitParams stress_circuit_params(std::size_t num_gates = 100'000,
                                          std::uint64_t seed = 1);

}  // namespace protest
