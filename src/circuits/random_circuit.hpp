// Seeded random combinational circuits: the workload generator behind the
// property-test sweeps and the "more than 10 circuits" the paper validated
// against.
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"

namespace protest {

struct RandomCircuitParams {
  std::size_t num_inputs = 8;
  std::size_t num_gates = 40;
  unsigned max_fanin = 3;       ///< >= 2
  double inverter_fraction = 0.2;
  double xor_fraction = 0.15;   ///< fraction of XOR/XNOR among logic gates
  /// Share of XNOR within the XOR-family picks (0 = all XOR, 1 = all
  /// XNOR).  0.5 reproduces the historical even split bit for bit.
  double xnor_ratio = 0.5;
  /// Probability per gate slot of emitting a forced-reconvergence gadget:
  /// two divergent paths of `reconvergence_depth` gates from one stem,
  /// rejoined by a single gate — the topology that separates the exact
  /// engines from the independence estimators.  0 (default) generates
  /// exactly the historical circuit for a given seed.
  double reconvergence_fraction = 0.0;
  unsigned reconvergence_depth = 2;  ///< >= 1; gates per divergent path
  /// Probability per fanin pick of hammering one of a few fixed "hub"
  /// nodes instead of the usual recency-biased draw, skewing the fanout
  /// distribution toward high-fanout stems.  0 (default) is the
  /// historical unskewed draw, bit for bit.
  double fanout_skew = 0.0;
  std::uint64_t seed = 1;
};

/// Levelized random DAG; all sinks become primary outputs, so every node
/// reaches an output.  Deterministic: equal params (seed included) yield
/// a byte-identical netlist (write_bench_string compares equal), and the
/// default values of the newer shape knobs (xnor_ratio 0.5,
/// reconvergence_fraction 0, fanout_skew 0) reproduce the pre-knob
/// generator exactly — existing seeded tests and benchmarks see the same
/// circuits.
Netlist make_random_circuit(const RandomCircuitParams& params);

/// Preset for the 100k+-gate stress tier used by the throughput benchmarks
/// and the large round-trip tests: 64 inputs, mixed fanin up to 4, mild
/// XOR content.  Deterministic for a given (num_gates, seed).
RandomCircuitParams stress_circuit_params(std::size_t num_gates = 100'000,
                                          std::uint64_t seed = 1);

}  // namespace protest
