#include "circuits/random_circuit.hpp"

#include <random>
#include <stdexcept>

namespace protest {

Netlist make_random_circuit(const RandomCircuitParams& params) {
  if (params.num_inputs == 0 || params.num_gates == 0)
    throw std::invalid_argument("make_random_circuit: empty circuit");
  if (params.max_fanin < 2)
    throw std::invalid_argument("make_random_circuit: max_fanin < 2");
  if (params.reconvergence_fraction > 0.0 && params.reconvergence_depth == 0)
    throw std::invalid_argument("make_random_circuit: reconvergence_depth 0");

  std::mt19937_64 rng(params.seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);

  Netlist net;
  net.reserve(params.num_inputs + params.num_gates);
  for (std::size_t i = 0; i < params.num_inputs; ++i)
    net.add_input("I" + std::to_string(i));

  // Every shape knob that defaults to "off" guards its uni(rng) draw
  // behind `param > 0`, so default parameters consume the exact draw
  // sequence of the pre-knob generator — seeded circuits stay stable.
  std::size_t gates_made = 0;
  while (gates_made < params.num_gates) {
    const NodeId limit = static_cast<NodeId>(net.size());
    auto pick = [&]() -> NodeId {
      // Fanout skew: hammer a few fixed hub nodes.
      if (params.fanout_skew > 0.0 && uni(rng) < params.fanout_skew) {
        const std::size_t hubs = std::min<std::size_t>(limit, 4);
        return static_cast<NodeId>(std::uniform_int_distribution<std::size_t>(
            0, hubs - 1)(rng));
      }
      // Bias toward recent nodes for depth; fall back to uniform.
      if (uni(rng) < 0.6) {
        const std::size_t window =
            std::min<std::size_t>(limit, 2 * params.num_inputs + 4);
        return static_cast<NodeId>(
            limit - 1 - std::uniform_int_distribution<std::size_t>(
                            0, window - 1)(rng));
      }
      return std::uniform_int_distribution<NodeId>(0, limit - 1)(rng);
    };

    // Forced reconvergence: two divergent paths from one stem, rejoined.
    const std::size_t gadget_gates = 2 * params.reconvergence_depth + 1;
    if (params.reconvergence_fraction > 0.0 &&
        gates_made + gadget_gates <= params.num_gates &&
        uni(rng) < params.reconvergence_fraction) {
      const NodeId stem = pick();
      NodeId a = stem;
      NodeId b = stem;
      for (unsigned d = 0; d < params.reconvergence_depth; ++d) {
        a = net.add_gate(uni(rng) < 0.5 ? GateType::Not : GateType::Buf, {a});
        b = net.add_gate(uni(rng) < 0.5 ? GateType::And : GateType::Or,
                         {b, pick()});
        gates_made += 2;
      }
      static constexpr GateType kJoins[] = {GateType::And, GateType::Or,
                                            GateType::Xor, GateType::Nand};
      net.add_gate(kJoins[std::uniform_int_distribution<int>(0, 3)(rng)],
                   {a, b});
      ++gates_made;
      continue;
    }

    if (uni(rng) < params.inverter_fraction) {
      net.add_gate(uni(rng) < 0.7 ? GateType::Not : GateType::Buf, {pick()});
      ++gates_made;
      continue;
    }
    GateType t;
    if (uni(rng) < params.xor_fraction) {
      t = uni(rng) < 1.0 - params.xnor_ratio ? GateType::Xor : GateType::Xnor;
    } else {
      static constexpr GateType kTypes[] = {GateType::And, GateType::Nand,
                                            GateType::Or, GateType::Nor};
      t = kTypes[std::uniform_int_distribution<int>(0, 3)(rng)];
    }
    const unsigned fanin =
        std::uniform_int_distribution<unsigned>(2, params.max_fanin)(rng);
    std::vector<NodeId> ins;
    ins.reserve(fanin);
    for (unsigned k = 0; k < fanin; ++k) ins.push_back(pick());
    net.add_gate(t, std::move(ins));
    ++gates_made;
  }

  // Sinks become outputs; guarantees observability of every node.
  bool any = false;
  std::vector<char> has_fanout(net.size(), 0);
  for (NodeId n = 0; n < net.size(); ++n)
    for (NodeId f : net.gate(n).fanin) has_fanout[f] = 1;
  for (NodeId n = 0; n < net.size(); ++n) {
    if (!has_fanout[n] && !net.is_input(n)) {
      net.mark_output(n);
      any = true;
    }
  }
  if (!any) net.mark_output(static_cast<NodeId>(net.size() - 1));
  net.finalize();
  return net;
}

RandomCircuitParams stress_circuit_params(std::size_t num_gates,
                                          std::uint64_t seed) {
  RandomCircuitParams p;
  p.num_inputs = 64;
  p.num_gates = num_gates;
  p.max_fanin = 4;
  p.inverter_fraction = 0.15;
  p.xor_fraction = 0.10;
  p.seed = seed;
  return p;
}

}  // namespace protest
