#include "circuits/sn7485.hpp"

#include <stdexcept>

namespace protest {

CompareOuts sn7485_slice(NetlistBuilder& bld, const Bus& a, const Bus& b,
                         NodeId lt_in, NodeId eq_in, NodeId gt_in) {
  if (a.size() != 4 || b.size() != 4)
    throw std::invalid_argument("sn7485_slice: operands must be 4 bits");

  Bus x(4);  // per-bit equality
  for (int i = 0; i < 4; ++i) x[i] = bld.xnor2(a[i], b[i]);

  // a > b terms: highest differing bit decides (bit 3 = MSB).
  std::vector<NodeId> gt_terms, lt_terms;
  for (int i = 3; i >= 0; --i) {
    std::vector<NodeId> gt_in_nodes{a[i], bld.inv(b[i])};
    std::vector<NodeId> lt_in_nodes{bld.inv(a[i]), b[i]};
    for (int j = i + 1; j < 4; ++j) {
      gt_in_nodes.push_back(x[j]);
      lt_in_nodes.push_back(x[j]);
    }
    gt_terms.push_back(bld.andn(std::move(gt_in_nodes)));
    lt_terms.push_back(bld.andn(std::move(lt_in_nodes)));
  }
  const NodeId gtw = bld.orn(std::move(gt_terms));
  const NodeId ltw = bld.orn(std::move(lt_terms));
  const NodeId alleq = bld.gate(GateType::And, {x[0], x[1], x[2], x[3]});

  CompareOuts out;
  out.gt = bld.or2(gtw, bld.and2(alleq, gt_in));
  out.lt = bld.or2(ltw, bld.and2(alleq, lt_in));
  out.eq = bld.and2(alleq, eq_in);
  return out;
}

Netlist make_sn7485() {
  NetlistBuilder bld(XorStyle::NandMacro);
  const Bus a = bld.input_bus("A", 4);
  const Bus b = bld.input_bus("B", 4);
  const NodeId lti = bld.input("LTI");
  const NodeId eqi = bld.input("EQI");
  const NodeId gti = bld.input("GTI");
  const CompareOuts o = sn7485_slice(bld, a, b, lti, eqi, gti);
  bld.output(o.lt, "LT");
  bld.output(o.eq, "EQ");
  bld.output(o.gt, "GT");
  return bld.build();
}

}  // namespace protest
