#include "optimize/hill_climb.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace protest {
namespace {

double grid_value(int k, unsigned den) {
  return static_cast<double>(k) / static_cast<double>(den);
}

struct Climber {
  const ObjectiveEvaluator& eval;
  const HillClimbOptions& opts;
  std::size_t evaluations = 0;

  double objective(std::span<const double> x) {
    ++evaluations;
    return eval.log_objective(x);
  }

  /// Climbs from `k` (grid indices per input); returns sweeps used.
  unsigned climb(std::vector<int>& k, double& best) {
    const unsigned den = opts.grid_denominator;
    const std::size_t ni = k.size();
    std::vector<double> x(ni);
    auto materialize = [&] {
      for (std::size_t i = 0; i < ni; ++i) x[i] = grid_value(k[i], den);
    };
    materialize();
    best = objective(x);

    // Geometric neighbor steps: long jumps first, then refinement.
    std::vector<int> steps;
    for (int s = static_cast<int>(den) / 2; s >= 1; s /= 2) {
      steps.push_back(s);
      steps.push_back(-s);
    }

    unsigned sweep = 0;
    for (; sweep < opts.max_sweeps; ++sweep) {
      bool improved = false;
      for (std::size_t i = 0; i < ni; ++i) {
        const int cur = k[i];
        int best_k = cur;
        double best_here = best;
        for (int s : steps) {
          const int cand = cur + s;
          if (cand < 1 || cand > static_cast<int>(den) - 1) continue;
          x[i] = grid_value(cand, den);
          const double v = objective(x);
          if (v > best_here) {
            best_here = v;
            best_k = cand;
          }
        }
        k[i] = best_k;
        x[i] = grid_value(best_k, den);
        if (best_k != cur) {
          best = best_here;
          improved = true;
        }
      }
      if (!improved) break;
    }
    return sweep;
  }
};

}  // namespace

HillClimbResult optimize_input_probs(const ObjectiveEvaluator& evaluator,
                                     HillClimbOptions opts) {
  const unsigned den = opts.grid_denominator;
  if (den < 2) throw std::invalid_argument("hill climb: grid denominator < 2");
  const std::size_t ni = evaluator.netlist().inputs().size();

  Climber climber{evaluator, opts};
  std::vector<int> k(ni, static_cast<int>(den) / 2);  // start at ~0.5
  double best;
  unsigned sweeps = climber.climb(k, best);
  std::vector<int> best_k = k;
  double best_obj = best;

  std::mt19937_64 rng(opts.seed);
  std::uniform_int_distribution<int> dist(1, static_cast<int>(den) - 1);
  for (unsigned r = 0; r < opts.restarts; ++r) {
    for (std::size_t i = 0; i < ni; ++i) k[i] = dist(rng);
    double obj;
    sweeps += climber.climb(k, obj);
    if (obj > best_obj) {
      best_obj = obj;
      best_k = k;
    }
  }

  HillClimbResult res;
  res.probs.resize(ni);
  for (std::size_t i = 0; i < ni; ++i) res.probs[i] = grid_value(best_k[i], den);
  res.log_objective = best_obj;
  res.evaluations = climber.evaluations;
  res.sweeps = sweeps;
  return res;
}

}  // namespace protest
