#include "optimize/hill_climb.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

#include "util/cancel.hpp"

namespace protest {
namespace {

double grid_value(int k, unsigned den) {
  return static_cast<double>(k) / static_cast<double>(den);
}

struct Climber {
  const ObjectiveEvaluator& eval;
  const HillClimbOptions& opts;
  std::size_t evaluations = 0;

  double objective(std::span<const double> x) {
    ++evaluations;
    return eval.log_objective(x);
  }

  /// Climbs from `k` (grid indices per input); returns sweeps used.
  ///
  /// Each coordinate's neighborhood — the current point plus every
  /// in-range geometric step — goes through the evaluator's incremental
  /// path: the current point is analyzed exactly once (a session cache
  /// hit while it doesn't move) and each candidate is a frozen-selection
  /// screening perturb (AnalysisSession::perturb_screen) that
  /// re-evaluates only that coordinate's fanout cone.  Candidate values
  /// are bit-for-bit what the per-coordinate engine batches of the
  /// previous implementation produced, so the climb visits the same
  /// points at a fraction of the cost.
  ///
  /// Screening values under a frozen conditioning selection are
  /// approximate, so an accepted move is not guaranteed to improve the
  /// exact objective.  The climb therefore re-scores its start and each
  /// sweep's endpoint with exact evaluations and returns the best
  /// exactly-scored point — the result can never be worse than the
  /// starting point.
  unsigned climb(std::vector<int>& k, double& best) {
    const unsigned den = opts.grid_denominator;
    const std::size_t ni = k.size();
    std::vector<double> x(ni);
    for (std::size_t i = 0; i < ni; ++i) x[i] = grid_value(k[i], den);
    std::vector<int> best_k = k;
    double best_obj = objective(x);

    // Geometric neighbor steps: long jumps first, then refinement.
    std::vector<int> steps;
    for (int s = static_cast<int>(den) / 2; s >= 1; s /= 2) {
      steps.push_back(s);
      steps.push_back(-s);
    }

    std::vector<double> cand_vals;
    std::vector<int> cand_k;
    unsigned sweep = 0;
    for (; sweep < opts.max_sweeps; ++sweep) {
      bool improved = false;
      for (std::size_t i = 0; i < ni; ++i) {
        // Cancellation checkpoint per coordinate: a cancelled optimize
        // job abandons the climb well within one sweep (the accepted
        // moves so far are simply discarded by the unwind).
        check_cancelled();
        const int cur = k[i];
        cand_vals.clear();
        cand_k.clear();
        for (int s : steps) {
          const int cand = cur + s;
          if (cand < 1 || cand > static_cast<int>(den) - 1) continue;
          cand_vals.push_back(grid_value(cand, den));
          cand_k.push_back(cand);
        }
        const ObjectiveEvaluator::NeighborhoodObjectives nb =
            eval.log_objectives_neighborhood(x, i, cand_vals);
        evaluations += cand_vals.size() + 1;
        int kept = cur;
        double best_here = nb.base;
        for (std::size_t c = 0; c < cand_k.size(); ++c) {
          if (nb.candidates[c] > best_here) {
            best_here = nb.candidates[c];
            kept = cand_k[c];
          }
        }
        k[i] = kept;
        x[i] = grid_value(kept, den);
        if (kept != cur) improved = true;
      }
      if (!improved) break;
      const double exact = objective(x);
      if (exact > best_obj) {
        best_obj = exact;
        best_k = k;
      }
    }
    k = best_k;
    best = best_obj;
    return sweep;
  }
};

}  // namespace

HillClimbResult optimize_input_probs(const ObjectiveEvaluator& evaluator,
                                     HillClimbOptions opts) {
  const unsigned den = opts.grid_denominator;
  if (den < 2) throw std::invalid_argument("hill climb: grid denominator < 2");
  const std::size_t ni = evaluator.netlist().inputs().size();

  Climber climber{evaluator, opts};
  std::vector<int> k(ni, static_cast<int>(den) / 2);  // start at ~0.5
  double best;
  unsigned sweeps = climber.climb(k, best);
  std::vector<int> best_k = k;
  double best_obj = best;

  std::mt19937_64 rng(opts.seed);
  std::uniform_int_distribution<int> dist(1, static_cast<int>(den) - 1);
  for (unsigned r = 0; r < opts.restarts; ++r) {
    for (std::size_t i = 0; i < ni; ++i) k[i] = dist(rng);
    double obj;
    sweeps += climber.climb(k, obj);
    if (obj > best_obj) {
      best_obj = obj;
      best_k = k;
    }
  }

  HillClimbResult res;
  res.probs.resize(ni);
  for (std::size_t i = 0; i < ni; ++i) res.probs[i] = grid_value(best_k[i], den);
  res.log_objective = best_obj;
  res.evaluations = climber.evaluations;
  res.sweeps = sweeps;
  return res;
}

}  // namespace protest
