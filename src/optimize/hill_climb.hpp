// The optimizing procedure of sect. 6: "PROTEST includes an optimizing
// procedure which finds a local maximum of J_N.  The procedure works
// according to the hill climbing principle" [Nils80].
//
// Coordinate ascent over a k/denominator probability grid (the paper's
// Table 4 weights all lie on the k/16 grid — hardware weighted-pattern
// generators realize exactly these).  Each coordinate tries geometric
// neighbor steps; sweeps repeat until no move improves.
#pragma once

#include <cstdint>

#include "optimize/objective.hpp"

namespace protest {

struct HillClimbOptions {
  unsigned grid_denominator = 16;  ///< probabilities are k/denominator
  unsigned max_sweeps = 32;        ///< safety bound on full sweeps
  unsigned restarts = 0;           ///< extra random restarts
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
};

struct HillClimbResult {
  std::vector<double> probs;  ///< optimized input-probability tuple
  double log_objective = 0.0;
  std::size_t evaluations = 0;
  unsigned sweeps = 0;
};

/// Maximizes evaluator.log_objective over the grid, starting from the
/// conventional tuple (0.5, ..., 0.5).  Cooperatively cancellable: when
/// the calling thread's CancelToken (util/cancel.hpp) is cancelled, the
/// climb throws OperationCancelled at the next coordinate — well within
/// one sweep — which is how an async `optimize` job stops early.
HillClimbResult optimize_input_probs(const ObjectiveEvaluator& evaluator,
                                     HillClimbOptions opts = {});

}  // namespace protest
