#include "optimize/objective.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "observe/detect.hpp"

namespace protest {
namespace {

/// The evaluator's state lives in its session: one fault-list copy, one
/// engine handle, the observability options in SessionOptions.
AnalysisSession make_evaluator_session(
    std::shared_ptr<const SignalProbEngine> engine, std::vector<Fault> faults,
    ObservabilityOptions obs_opts, ParallelConfig parallel) {
  if (!engine) throw std::invalid_argument("ObjectiveEvaluator: null engine");
  SessionOptions opts;
  opts.observability = obs_opts;
  opts.parallel = parallel;
  const Netlist& net = engine->netlist();
  return AnalysisSession(net, std::move(engine), std::move(faults),
                         std::move(opts));
}

AnalysisRequest detection_request() {
  AnalysisRequest req;
  req.observability = false;  // still computed, as a detection dependency
  req.detection_probs = true;
  return req;
}

}  // namespace

ObjectiveEvaluator::ObjectiveEvaluator(
    std::shared_ptr<const SignalProbEngine> engine, std::vector<Fault> faults,
    std::uint64_t n_parameter, ObservabilityOptions obs_opts,
    ParallelConfig parallel)
    : n_(n_parameter),
      session_(make_evaluator_session(std::move(engine), std::move(faults),
                                      obs_opts, parallel)) {}

ObjectiveEvaluator::ObjectiveEvaluator(const Netlist& net,
                                       std::vector<Fault> faults,
                                       std::uint64_t n_parameter,
                                       ProtestParams params,
                                       ObservabilityOptions obs_opts,
                                       ParallelConfig parallel)
    : ObjectiveEvaluator(std::make_shared<ProtestEngine>(net, params),
                         std::move(faults), n_parameter, obs_opts, parallel) {}

std::vector<double> ObjectiveEvaluator::detection_probs(
    std::span<const double> input_probs) const {
  return session_.analyze(input_probs, detection_request()).detection_probs();
}

std::vector<std::vector<double>> ObjectiveEvaluator::detection_probs_batch(
    std::span<const InputProbs> batch) const {
  // Deliberately the engine-level batch (shared-selection semantics), not
  // the session: this is the bulk entry point for unrelated tuples.
  const std::vector<std::vector<double>> probs =
      session_.engine().signal_probs_batch(batch);
  const ObservabilityOptions obs_opts = session_.options().observability;
  std::vector<std::vector<double>> out;
  out.reserve(probs.size());
  for (const std::vector<double>& p : probs) {
    const Observability obs = compute_observability(netlist(), p, obs_opts);
    out.push_back(protest::detection_probs(netlist(), faults(), p, obs));
  }
  return out;
}

double ObjectiveEvaluator::log_objective_from_probs(
    std::span<const double> probs) const {
  // Detection probabilities are floored at a tiny epsilon so that circuits
  // with (estimated) undetectable faults still give the climber a finite,
  // comparable objective instead of a flat -inf plateau.
  constexpr double kFloor = 1e-15;
  double acc = 0.0;
  for (double p : probs) {
    p = std::max(p, kFloor);
    if (p >= 1.0) continue;
    const double miss_log = static_cast<double>(n_) * std::log1p(-p);
    acc += miss_log < -745.0 ? 0.0 : std::log1p(-std::exp(miss_log));
  }
  return acc;
}

double ObjectiveEvaluator::log_objective(
    std::span<const double> input_probs) const {
  return log_objective_from_probs(detection_probs(input_probs));
}

std::vector<double> ObjectiveEvaluator::log_objectives_batch(
    std::span<const InputProbs> batch) const {
  const std::vector<std::vector<double>> pf = detection_probs_batch(batch);
  std::vector<double> out;
  out.reserve(pf.size());
  for (const std::vector<double>& probs : pf)
    out.push_back(log_objective_from_probs(probs));
  return out;
}

ObjectiveEvaluator::NeighborhoodObjectives
ObjectiveEvaluator::log_objectives_neighborhood(
    std::span<const double> base, std::size_t coord,
    std::span<const double> values) const {
  const AnalysisResult base_result =
      session_.analyze(base, detection_request());
  NeighborhoodObjectives out;
  out.base = log_objective_from_probs(base_result.detection_probs());
  // One sweep call: candidates (signal probs + observability + detection)
  // fan out across the session's worker clones when parallelism is
  // configured; detection_probs() below is a memoized read either way.
  const std::vector<AnalysisResult> screened =
      session_.perturb_screen_sweep(base_result, coord, values);
  out.candidates.reserve(values.size());
  for (const AnalysisResult& r : screened)
    out.candidates.push_back(log_objective_from_probs(r.detection_probs()));
  return out;
}

}  // namespace protest
