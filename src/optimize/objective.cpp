#include "optimize/objective.hpp"

#include <cmath>
#include <limits>

#include "observe/detect.hpp"

namespace protest {

ObjectiveEvaluator::ObjectiveEvaluator(const Netlist& net,
                                       std::vector<Fault> faults,
                                       std::uint64_t n_parameter,
                                       ProtestParams params,
                                       ObservabilityOptions obs_opts)
    : net_(net),
      faults_(std::move(faults)),
      n_(n_parameter),
      estimator_(net, params),
      obs_opts_(obs_opts) {}

std::vector<double> ObjectiveEvaluator::detection_probs(
    std::span<const double> input_probs) const {
  const std::vector<double> p = estimator_.signal_probs(input_probs);
  const Observability obs = compute_observability(net_, p, obs_opts_);
  return protest::detection_probs(net_, faults_, p, obs);
}

double ObjectiveEvaluator::log_objective_from_probs(
    std::span<const double> probs) const {
  // Detection probabilities are floored at a tiny epsilon so that circuits
  // with (estimated) undetectable faults still give the climber a finite,
  // comparable objective instead of a flat -inf plateau.
  constexpr double kFloor = 1e-15;
  double acc = 0.0;
  for (double p : probs) {
    p = std::max(p, kFloor);
    if (p >= 1.0) continue;
    const double miss_log = static_cast<double>(n_) * std::log1p(-p);
    acc += miss_log < -745.0 ? 0.0 : std::log1p(-std::exp(miss_log));
  }
  return acc;
}

double ObjectiveEvaluator::log_objective(
    std::span<const double> input_probs) const {
  return log_objective_from_probs(detection_probs(input_probs));
}

}  // namespace protest
