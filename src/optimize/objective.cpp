#include "optimize/objective.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "observe/detect.hpp"

namespace protest {

ObjectiveEvaluator::ObjectiveEvaluator(
    std::shared_ptr<const SignalProbEngine> engine, std::vector<Fault> faults,
    std::uint64_t n_parameter, ObservabilityOptions obs_opts)
    : engine_(std::move(engine)),
      faults_(std::move(faults)),
      n_(n_parameter),
      obs_opts_(obs_opts) {
  if (!engine_)
    throw std::invalid_argument("ObjectiveEvaluator: null engine");
}

ObjectiveEvaluator::ObjectiveEvaluator(const Netlist& net,
                                       std::vector<Fault> faults,
                                       std::uint64_t n_parameter,
                                       ProtestParams params,
                                       ObservabilityOptions obs_opts)
    : ObjectiveEvaluator(std::make_shared<ProtestEngine>(net, params),
                         std::move(faults), n_parameter, obs_opts) {}

std::vector<double> ObjectiveEvaluator::detection_probs(
    std::span<const double> input_probs) const {
  const std::vector<double> p = engine_->signal_probs(input_probs);
  const Observability obs = compute_observability(netlist(), p, obs_opts_);
  return protest::detection_probs(netlist(), faults_, p, obs);
}

std::vector<std::vector<double>> ObjectiveEvaluator::detection_probs_batch(
    std::span<const InputProbs> batch) const {
  const std::vector<std::vector<double>> probs =
      engine_->signal_probs_batch(batch);
  std::vector<std::vector<double>> out;
  out.reserve(probs.size());
  for (const std::vector<double>& p : probs) {
    const Observability obs = compute_observability(netlist(), p, obs_opts_);
    out.push_back(protest::detection_probs(netlist(), faults_, p, obs));
  }
  return out;
}

double ObjectiveEvaluator::log_objective_from_probs(
    std::span<const double> probs) const {
  // Detection probabilities are floored at a tiny epsilon so that circuits
  // with (estimated) undetectable faults still give the climber a finite,
  // comparable objective instead of a flat -inf plateau.
  constexpr double kFloor = 1e-15;
  double acc = 0.0;
  for (double p : probs) {
    p = std::max(p, kFloor);
    if (p >= 1.0) continue;
    const double miss_log = static_cast<double>(n_) * std::log1p(-p);
    acc += miss_log < -745.0 ? 0.0 : std::log1p(-std::exp(miss_log));
  }
  return acc;
}

double ObjectiveEvaluator::log_objective(
    std::span<const double> input_probs) const {
  return log_objective_from_probs(detection_probs(input_probs));
}

std::vector<double> ObjectiveEvaluator::log_objectives_batch(
    std::span<const InputProbs> batch) const {
  const std::vector<std::vector<double>> pf = detection_probs_batch(batch);
  std::vector<double> out;
  out.reserve(pf.size());
  for (const std::vector<double>& probs : pf)
    out.push_back(log_objective_from_probs(probs));
  return out;
}

}  // namespace protest
