// Weighted random pattern generation: realizing the optimized input signal
// probabilities of sect. 6 as pattern sets.  Two sources:
//
//  * software: PatternSet::weighted (ideal Bernoulli draws), and
//  * hardware-model: an NLFSR-style generator [KuWu84] that derives each
//    weighted bit from `log2(denominator)` LFSR stages through a threshold
//    comparison — exactly the k/denominator probabilities PROTEST's
//    optimizer emits (sect. 8: non-linear feedback shift registers used in
//    the CADDY self-test strategy).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/lfsr.hpp"
#include "sim/pattern.hpp"

namespace protest {

/// Snaps probabilities to the k/denominator grid, keeping them strictly
/// inside (0,1) (k in 1..denominator-1) so no input is forced constant.
std::vector<double> quantize_to_grid(std::span<const double> probs,
                                     unsigned denominator);

/// Hardware-model weighted generator: one maximal-length LFSR; each input
/// bit is produced by comparing log2(denominator) successive LFSR bits
/// against the input's weight k (probability k/denominator).
class WeightedLfsrGenerator {
 public:
  /// weights[i] = k for probability k/denominator; denominator must be a
  /// power of two (default 16, matching the paper's Table 4 grid).
  WeightedLfsrGenerator(std::vector<unsigned> weights, unsigned denominator = 16,
                        std::uint64_t seed = 1);

  PatternSet generate(std::size_t num_patterns);

  unsigned denominator() const { return denominator_; }

 private:
  std::vector<unsigned> weights_;
  unsigned denominator_;
  unsigned bits_per_draw_;
  Lfsr lfsr_;
};

/// Weights (k of k/denominator) from already-quantized probabilities.
std::vector<unsigned> weights_from_probs(std::span<const double> quantized,
                                         unsigned denominator);

}  // namespace protest
