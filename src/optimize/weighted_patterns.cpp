#include "optimize/weighted_patterns.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace protest {

std::vector<double> quantize_to_grid(std::span<const double> probs,
                                     unsigned denominator) {
  if (denominator < 2)
    throw std::invalid_argument("quantize_to_grid: denominator < 2");
  std::vector<double> out;
  out.reserve(probs.size());
  for (double p : probs) {
    long k = std::lround(p * denominator);
    k = std::max<long>(1, std::min<long>(denominator - 1, k));
    out.push_back(static_cast<double>(k) / denominator);
  }
  return out;
}

std::vector<unsigned> weights_from_probs(std::span<const double> quantized,
                                         unsigned denominator) {
  std::vector<unsigned> w;
  w.reserve(quantized.size());
  for (double p : quantized) {
    const long k = std::lround(p * denominator);
    if (k < 1 || k > static_cast<long>(denominator) - 1)
      throw std::invalid_argument("weights_from_probs: probability off-grid");
    w.push_back(static_cast<unsigned>(k));
  }
  return w;
}

WeightedLfsrGenerator::WeightedLfsrGenerator(std::vector<unsigned> weights,
                                             unsigned denominator,
                                             std::uint64_t seed)
    : weights_(std::move(weights)),
      denominator_(denominator),
      bits_per_draw_(0),
      lfsr_(32, seed) {
  if (!std::has_single_bit(denominator) || denominator < 2)
    throw std::invalid_argument(
        "WeightedLfsrGenerator: denominator must be a power of two >= 2");
  bits_per_draw_ = static_cast<unsigned>(std::countr_zero(denominator));
  for (unsigned w : weights_)
    if (w < 1 || w >= denominator)
      throw std::invalid_argument("WeightedLfsrGenerator: weight out of range");
}

PatternSet WeightedLfsrGenerator::generate(std::size_t num_patterns) {
  PatternSet ps(weights_.size(), num_patterns);
  for (std::size_t pat = 0; pat < num_patterns; ++pat) {
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      unsigned draw = 0;
      for (unsigned b = 0; b < bits_per_draw_; ++b)
        draw = (draw << 1) | static_cast<unsigned>(lfsr_.next_bit());
      if (draw < weights_[i]) ps.set(pat, i, true);
    }
  }
  return ps;
}

}  // namespace protest
