// The optimization objective of sect. 6: for an input-probability tuple X,
//
//   J_N(X) = prod_{f in F} ( 1 - (1 - P_f(X))^N )
//
// "an estimation of the probability that N realizations of X detect the
// whole F".  Maximizing J_N maximizes fault detection; N is only a
// numerical parameter.  We work with log J_N for stability.
#pragma once

#include <span>
#include <vector>

#include "observe/observability.hpp"
#include "prob/protest_estimator.hpp"
#include "sim/fault.hpp"

namespace protest {

/// Bundles the estimation pipeline (signal probabilities -> observability
/// -> detection probabilities) behind a single evaluation call.
class ObjectiveEvaluator {
 public:
  ObjectiveEvaluator(const Netlist& net, std::vector<Fault> faults,
                     std::uint64_t n_parameter, ProtestParams params = {},
                     ObservabilityOptions obs_opts = {});

  /// Estimated detection probability of every fault under X.
  std::vector<double> detection_probs(std::span<const double> input_probs) const;

  /// log J_N(X); -inf if any fault is estimated undetectable.
  double log_objective(std::span<const double> input_probs) const;

  /// log J_N from precomputed detection probabilities.
  double log_objective_from_probs(std::span<const double> detection_probs) const;

  std::uint64_t n_parameter() const { return n_; }
  const std::vector<Fault>& faults() const { return faults_; }
  const Netlist& netlist() const { return net_; }

 private:
  const Netlist& net_;
  std::vector<Fault> faults_;
  std::uint64_t n_;
  ProtestEstimator estimator_;
  ObservabilityOptions obs_opts_;
};

}  // namespace protest
