// The optimization objective of sect. 6: for an input-probability tuple X,
//
//   J_N(X) = prod_{f in F} ( 1 - (1 - P_f(X))^N )
//
// "an estimation of the probability that N realizations of X detect the
// whole F".  Maximizing J_N maximizes fault detection; N is only a
// numerical parameter.  We work with log J_N for stability.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "observe/observability.hpp"
#include "prob/engine.hpp"
#include "protest/session.hpp"
#include "sim/fault.hpp"

namespace protest {

/// Bundles the estimation pipeline (signal probabilities -> observability
/// -> detection probabilities) behind a single evaluation call.  The
/// signal-probability stage is a pluggable SignalProbEngine evaluated
/// through an internal AnalysisSession, so repeated tuples are cache hits
/// and the hill climber's per-coordinate neighborhoods go through the
/// session's incremental perturb() path — each candidate re-evaluates only
/// the changed input's fanout cone, with exact single-tuple semantics.
class ObjectiveEvaluator {
 public:
  /// Evaluates through the given engine (must outlive the evaluator uses).
  /// `parallel` sizes the neighborhood fan-out (per-worker engine clones
  /// inside the session sweep); objective values are bit-identical for
  /// every thread count.
  ObjectiveEvaluator(std::shared_ptr<const SignalProbEngine> engine,
                     std::vector<Fault> faults, std::uint64_t n_parameter,
                     ObservabilityOptions obs_opts = {},
                     ParallelConfig parallel = {});

  /// Convenience: evaluates through the paper's PROTEST engine.
  ObjectiveEvaluator(const Netlist& net, std::vector<Fault> faults,
                     std::uint64_t n_parameter, ProtestParams params = {},
                     ObservabilityOptions obs_opts = {},
                     ParallelConfig parallel = {});

  /// Estimated detection probability of every fault under X.
  std::vector<double> detection_probs(std::span<const double> input_probs) const;

  /// Detection probabilities for every tuple of `batch`, evaluated through
  /// the engine's batched entry point (see the engine for its sharing
  /// semantics across the batch).
  std::vector<std::vector<double>> detection_probs_batch(
      std::span<const InputProbs> batch) const;

  /// log J_N(X); -inf if any fault is estimated undetectable.
  double log_objective(std::span<const double> input_probs) const;

  /// log J_N for every tuple of `batch` (one engine batch call).
  std::vector<double> log_objectives_batch(
      std::span<const InputProbs> batch) const;

  /// log J_N for the base tuple and for every candidate value of one
  /// coordinate — the hill climber's per-coordinate neighborhood, routed
  /// through the session's incremental path: the base is analyzed exactly
  /// once (usually a cache hit within a sweep) and each candidate is a
  /// frozen-selection screening perturb that re-evaluates only coordinate
  /// `coord`'s fanout cone.  With > 1 configured thread the candidates —
  /// including their observability and detection-probability stages — fan
  /// out across per-worker engine clones (session perturb_screen_sweep).
  /// Candidate values are bit-for-bit what the engine-level batch anchored
  /// at `base` produces (the PR 1 hill-climb semantics) at a fraction of
  /// the cost, for any thread count; `base` itself is exact.
  struct NeighborhoodObjectives {
    double base = 0.0;
    std::vector<double> candidates;  ///< one per entry of `values`
  };
  NeighborhoodObjectives log_objectives_neighborhood(
      std::span<const double> base, std::size_t coord,
      std::span<const double> values) const;

  /// log J_N from precomputed detection probabilities.
  double log_objective_from_probs(std::span<const double> detection_probs) const;

  std::uint64_t n_parameter() const { return n_; }
  const std::vector<Fault>& faults() const { return session_.faults(); }
  const Netlist& netlist() const { return session_.netlist(); }
  const SignalProbEngine& engine() const { return session_.engine(); }

 private:
  std::uint64_t n_;
  /// Owns the engine handle, fault list, and observability options, and
  /// provides the evaluation cache + incremental backend; mutable because
  /// objective evaluation is logically const while the session memoizes.
  mutable AnalysisSession session_;
};

}  // namespace protest
