// A small reduced-ordered-BDD package.  PROTEST itself avoids exact signal
// probabilities (the paper proves the problem NP-hard), but the library
// ships an exact oracle for validation: the satisfaction probability of a
// BDD under independent input probabilities is the exact signal probability.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace protest {

/// Raised when a BDD build exceeds the configured node limit (e.g. the
/// middle bits of a wide multiplier — exponential for any variable order).
class BddLimitExceeded : public std::runtime_error {
 public:
  BddLimitExceeded() : std::runtime_error("BDD node limit exceeded") {}
};

class Bdd {
 public:
  /// Handle to a BDD function (index into the shared node store).
  using Ref = std::uint32_t;

  explicit Bdd(unsigned num_vars, std::size_t node_limit = 2'000'000);

  Ref zero() const { return 0; }
  Ref one() const { return 1; }
  /// Projection function of variable v (0-based, also the order position).
  Ref var(unsigned v);

  Ref ite(Ref f, Ref g, Ref h);
  Ref apply_not(Ref f) { return ite(f, zero(), one()); }
  Ref apply_and(Ref f, Ref g) { return ite(f, g, zero()); }
  Ref apply_or(Ref f, Ref g) { return ite(f, one(), g); }
  Ref apply_xor(Ref f, Ref g) { return ite(f, apply_not(g), g); }

  bool is_const(Ref f) const { return f <= 1; }

  /// Exact P(f = 1) for independent variables with P(var v = 1) = probs[v].
  double sat_prob(Ref f, std::span<const double> probs) const;

  /// Number of satisfying assignments over all num_vars variables.
  double sat_count(Ref f) const;

  unsigned num_vars() const { return num_vars_; }
  std::size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    unsigned var;
    Ref lo, hi;
  };
  struct Triple {
    std::uint32_t a, b, c;
    bool operator==(const Triple&) const = default;
  };
  struct TripleHash {
    std::size_t operator()(const Triple& t) const;
  };

  Ref make(unsigned var, Ref lo, Ref hi);
  unsigned var_of(Ref f) const { return nodes_[f].var; }
  Ref cofactor(Ref f, unsigned v, bool positive) const;

  unsigned num_vars_;
  std::size_t node_limit_;
  std::vector<Node> nodes_;
  std::unordered_map<Triple, Ref, TripleHash> unique_;
  std::unordered_map<Triple, Ref, TripleHash> ite_cache_;
};

}  // namespace protest
