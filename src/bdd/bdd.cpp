#include "bdd/bdd.hpp"

#include <algorithm>

namespace protest {

std::size_t Bdd::TripleHash::operator()(const Triple& t) const {
  // splitmix64-style mixing of the three fields.
  std::uint64_t x = (std::uint64_t{t.a} << 42) ^ (std::uint64_t{t.b} << 21) ^
                    std::uint64_t{t.c};
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<std::size_t>(x);
}

Bdd::Bdd(unsigned num_vars, std::size_t node_limit)
    : num_vars_(num_vars), node_limit_(node_limit) {
  // Terminals live at fixed positions with the past-the-end variable level.
  nodes_.push_back({num_vars_, 0, 0});  // false
  nodes_.push_back({num_vars_, 1, 1});  // true
}

Bdd::Ref Bdd::var(unsigned v) {
  if (v >= num_vars_) throw std::out_of_range("Bdd::var: index out of range");
  return make(v, zero(), one());
}

Bdd::Ref Bdd::make(unsigned var, Ref lo, Ref hi) {
  if (lo == hi) return lo;
  const Triple key{var, lo, hi};
  auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  if (nodes_.size() >= node_limit_) throw BddLimitExceeded();
  const Ref r = static_cast<Ref>(nodes_.size());
  nodes_.push_back({var, lo, hi});
  unique_.emplace(key, r);
  return r;
}

Bdd::Ref Bdd::cofactor(Ref f, unsigned v, bool positive) const {
  const Node& n = nodes_[f];
  if (n.var != v) return f;  // f does not depend on v at the top
  return positive ? n.hi : n.lo;
}

Bdd::Ref Bdd::ite(Ref f, Ref g, Ref h) {
  // Terminal cases.
  if (f == one()) return g;
  if (f == zero()) return h;
  if (g == h) return g;
  if (g == one() && h == zero()) return f;

  const Triple key{f, g, h};
  auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) return it->second;

  const unsigned v =
      std::min({var_of(f), var_of(g), var_of(h)});
  const Ref hi = ite(cofactor(f, v, true), cofactor(g, v, true),
                     cofactor(h, v, true));
  const Ref lo = ite(cofactor(f, v, false), cofactor(g, v, false),
                     cofactor(h, v, false));
  const Ref r = make(v, lo, hi);
  ite_cache_.emplace(key, r);
  return r;
}

double Bdd::sat_prob(Ref f, std::span<const double> probs) const {
  if (probs.size() != num_vars_)
    throw std::invalid_argument("Bdd::sat_prob: wrong probability count");
  std::unordered_map<Ref, double> memo;
  // Iterative post-order to keep recursion depth independent of BDD height.
  std::vector<Ref> stack{f};
  memo.emplace(zero(), 0.0);
  memo.emplace(one(), 1.0);
  while (!stack.empty()) {
    const Ref r = stack.back();
    if (memo.contains(r)) {
      stack.pop_back();
      continue;
    }
    const Node& n = nodes_[r];
    const auto lo = memo.find(n.lo);
    const auto hi = memo.find(n.hi);
    if (lo != memo.end() && hi != memo.end()) {
      memo.emplace(r, (1.0 - probs[n.var]) * lo->second +
                          probs[n.var] * hi->second);
      stack.pop_back();
    } else {
      if (lo == memo.end()) stack.push_back(n.lo);
      if (hi == memo.end()) stack.push_back(n.hi);
    }
  }
  return memo.at(f);
}

double Bdd::sat_count(Ref f) const {
  std::vector<double> half(num_vars_, 0.5);
  double scale = 1.0;
  for (unsigned i = 0; i < num_vars_; ++i) scale *= 2.0;
  return sat_prob(f, half) * scale;
}

}  // namespace protest
