// STAFAN-style statistical fault analysis [AgJa84] — "a similar tool ...
// which extrapolates such probabilities from runs of logic simulation"
// (sect. 1).  Controllabilities are one-counts from logic simulation;
// per-pin sensitization frequencies are counted in the same runs;
// observabilities are propagated backwards through those frequencies.
//
// This is the published estimator idea re-implemented on our substrate
// (the original paper's exact one-level formulas involve sequential
// handling we do not need for combinational circuits).
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/fault.hpp"
#include "sim/pattern.hpp"

namespace protest {

struct StafanMeasures {
  std::vector<double> c1;                     ///< one-frequency per node
  std::vector<std::vector<double>> pin_sens;  ///< per gate pin: P(side inputs enable)
  std::vector<double> obs;                    ///< stem observability estimate
  std::vector<std::vector<double>> pin_obs;   ///< pin observability estimate
};

/// Runs logic simulation over `ps` and extracts the STAFAN statistics.
StafanMeasures compute_stafan(const Netlist& net, const PatternSet& ps);

/// Detection probability estimates: D(s-a-0 @ x) = C1(x) * O(x), etc.
std::vector<double> stafan_detection_probs(const Netlist& net,
                                           std::span<const Fault> faults,
                                           const StafanMeasures& m);

}  // namespace protest
