// SCOAP testability measures (Goldstein) and the P_SCOAP transformation —
// the baseline of sect. 4: Agrawal/Mercer [AgMe82] mapped SCOAP values to
// probability-like numbers and found only ~0.4 correlation with simulated
// detection probabilities, versus >0.9 for PROTEST.
//
// Combinational SCOAP: CC0/CC1(k) = minimal number of input assignments to
// set node k to 0/1 (primary inputs cost 1, every gate adds 1); CO(k) =
// minimal assignments to propagate k to a primary output (outputs cost 0).
//
// [AgMe82]'s exact mapping is not reproduced in the PROTEST paper; we use
// the documented monotone surrogate
//     P_SCOAP(s-a-v at x) = 1 / ( CC_{NOT v}(x) + CO(x) )
// (higher effort => lower probability).  Only its rank correlation matters
// for the Table 1-style comparison.
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/fault.hpp"

namespace protest {

struct ScoapMeasures {
  std::vector<unsigned> cc0;  ///< 0-controllability per node
  std::vector<unsigned> cc1;  ///< 1-controllability per node
  std::vector<unsigned> co;   ///< observability of the node's output stem
  std::vector<std::vector<unsigned>> pin_co;  ///< observability per gate pin
};

ScoapMeasures compute_scoap(const Netlist& net);

/// P_SCOAP surrogate per fault (see header comment).
std::vector<double> pscoap_detection_probs(const Netlist& net,
                                           std::span<const Fault> faults,
                                           const ScoapMeasures& m);

}  // namespace protest
