#include "measures/stafan.hpp"

#include <algorithm>
#include <bit>

#include "sim/logic_sim.hpp"

namespace protest {
namespace {

/// Word of patterns in which toggling pin k would toggle the gate output.
std::uint64_t sensitized_word(const Netlist& net, NodeId gate, std::size_t k,
                              const std::vector<std::uint64_t>& vals) {
  const Gate& g = net.gate(gate);
  switch (g.type) {
    case GateType::And:
    case GateType::Nand: {
      std::uint64_t acc = ~std::uint64_t{0};
      for (std::size_t j = 0; j < g.fanin.size(); ++j)
        if (j != k) acc &= vals[g.fanin[j]];
      return acc;
    }
    case GateType::Or:
    case GateType::Nor: {
      std::uint64_t acc = 0;
      for (std::size_t j = 0; j < g.fanin.size(); ++j)
        if (j != k) acc |= vals[g.fanin[j]];
      return ~acc;
    }
    default:
      return ~std::uint64_t{0};  // BUF/NOT/XOR/XNOR always sensitize
  }
}

}  // namespace

StafanMeasures compute_stafan(const Netlist& net, const PatternSet& ps) {
  StafanMeasures m;
  m.c1.assign(net.size(), 0.0);
  m.pin_sens.resize(net.size());
  for (NodeId n = 0; n < net.size(); ++n)
    m.pin_sens[n].assign(net.gate(n).fanin.size(), 0.0);

  BlockSimulator sim(net);
  std::vector<std::uint64_t> ones(net.size(), 0);
  std::vector<std::vector<std::uint64_t>> sens(net.size());
  for (NodeId n = 0; n < net.size(); ++n)
    sens[n].assign(net.gate(n).fanin.size(), 0);

  for (std::size_t b = 0; b < ps.num_blocks(); ++b) {
    const auto& vals = sim.run(ps, b);
    const std::uint64_t mask = ps.valid_mask(b);
    for (NodeId n = 0; n < net.size(); ++n) {
      ones[n] += static_cast<std::uint64_t>(std::popcount(vals[n] & mask));
      const Gate& g = net.gate(n);
      for (std::size_t k = 0; k < g.fanin.size(); ++k)
        sens[n][k] += static_cast<std::uint64_t>(
            std::popcount(sensitized_word(net, n, k, vals) & mask));
    }
  }

  const double total = static_cast<double>(ps.num_patterns());
  for (NodeId n = 0; n < net.size(); ++n) {
    m.c1[n] = static_cast<double>(ones[n]) / total;
    for (std::size_t k = 0; k < m.pin_sens[n].size(); ++k)
      m.pin_sens[n][k] = static_cast<double>(sens[n][k]) / total;
  }

  // Backward observability through the measured sensitization frequencies.
  m.obs.assign(net.size(), 0.0);
  m.pin_obs.resize(net.size());
  for (NodeId n = 0; n < net.size(); ++n)
    m.pin_obs[n].assign(net.gate(n).fanin.size(), 0.0);

  std::vector<std::vector<std::pair<NodeId, std::uint32_t>>> consumers(net.size());
  for (NodeId c = 0; c < net.size(); ++c) {
    const auto& fanin = net.gate(c).fanin;
    for (std::size_t k = 0; k < fanin.size(); ++k)
      consumers[fanin[k]].push_back({c, static_cast<std::uint32_t>(k)});
  }

  for (NodeId n = net.size(); n-- > 0;) {
    double miss = net.is_output(n) ? 0.0 : 1.0;
    for (const auto& [c, k] : consumers[n]) miss *= 1.0 - m.pin_obs[c][k];
    m.obs[n] = std::clamp(1.0 - miss, 0.0, 1.0);
    for (std::size_t k = 0; k < m.pin_obs[n].size(); ++k)
      m.pin_obs[n][k] = std::clamp(m.obs[n] * m.pin_sens[n][k], 0.0, 1.0);
  }
  return m;
}

std::vector<double> stafan_detection_probs(const Netlist& net,
                                           std::span<const Fault> faults,
                                           const StafanMeasures& m) {
  std::vector<double> out;
  out.reserve(faults.size());
  for (const Fault& f : faults) {
    double c1, o;
    if (f.is_stem()) {
      c1 = m.c1[f.node];
      o = m.obs[f.node];
    } else {
      c1 = m.c1[net.gate(f.node).fanin[f.pin]];
      o = m.pin_obs[f.node][f.pin];
    }
    const double p1 = f.sa == StuckAt::Zero ? c1 : 1.0 - c1;
    out.push_back(std::clamp(p1 * o, 0.0, 1.0));
  }
  return out;
}

}  // namespace protest
