#include "measures/scoap.hpp"

#include <algorithm>
#include <stdexcept>

namespace protest {
namespace {

constexpr unsigned kInf = 1'000'000'000u;

unsigned sat_add(unsigned a, unsigned b) {
  if (a >= kInf || b >= kInf) return kInf;
  return a + b;
}

}  // namespace

ScoapMeasures compute_scoap(const Netlist& net) {
  ScoapMeasures m;
  m.cc0.assign(net.size(), kInf);
  m.cc1.assign(net.size(), kInf);

  for (NodeId n = 0; n < net.size(); ++n) {
    const Gate& g = net.gate(n);
    switch (g.type) {
      case GateType::Input:
        m.cc0[n] = m.cc1[n] = 1;
        break;
      case GateType::Const0:
        m.cc0[n] = 0;
        break;
      case GateType::Const1:
        m.cc1[n] = 0;
        break;
      case GateType::Buf:
        m.cc0[n] = sat_add(m.cc0[g.fanin[0]], 1);
        m.cc1[n] = sat_add(m.cc1[g.fanin[0]], 1);
        break;
      case GateType::Not:
        m.cc0[n] = sat_add(m.cc1[g.fanin[0]], 1);
        m.cc1[n] = sat_add(m.cc0[g.fanin[0]], 1);
        break;
      case GateType::And:
      case GateType::Nand: {
        unsigned all1 = 0, min0 = kInf;
        for (NodeId f : g.fanin) {
          all1 = sat_add(all1, m.cc1[f]);
          min0 = std::min(min0, m.cc0[f]);
        }
        const unsigned out1 = sat_add(all1, 1);   // all inputs 1
        const unsigned out0 = sat_add(min0, 1);   // one input 0
        if (g.type == GateType::And) {
          m.cc1[n] = out1;
          m.cc0[n] = out0;
        } else {
          m.cc0[n] = out1;
          m.cc1[n] = out0;
        }
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        unsigned all0 = 0, min1 = kInf;
        for (NodeId f : g.fanin) {
          all0 = sat_add(all0, m.cc0[f]);
          min1 = std::min(min1, m.cc1[f]);
        }
        const unsigned out0 = sat_add(all0, 1);
        const unsigned out1 = sat_add(min1, 1);
        if (g.type == GateType::Or) {
          m.cc0[n] = out0;
          m.cc1[n] = out1;
        } else {
          m.cc1[n] = out0;
          m.cc0[n] = out1;
        }
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        // Fold the parity: cost of even/odd parity over the prefix.
        unsigned even = m.cc0[g.fanin[0]], odd = m.cc1[g.fanin[0]];
        for (std::size_t i = 1; i < g.fanin.size(); ++i) {
          const unsigned c0 = m.cc0[g.fanin[i]], c1 = m.cc1[g.fanin[i]];
          const unsigned new_even = std::min(sat_add(even, c0), sat_add(odd, c1));
          const unsigned new_odd = std::min(sat_add(even, c1), sat_add(odd, c0));
          even = new_even;
          odd = new_odd;
        }
        const unsigned out1 = sat_add(odd, 1), out0 = sat_add(even, 1);
        if (g.type == GateType::Xor) {
          m.cc1[n] = out1;
          m.cc0[n] = out0;
        } else {
          m.cc1[n] = out0;
          m.cc0[n] = out1;
        }
        break;
      }
    }
  }

  // Observability, backward.
  m.co.assign(net.size(), kInf);
  m.pin_co.resize(net.size());
  for (NodeId n = 0; n < net.size(); ++n)
    m.pin_co[n].assign(net.gate(n).fanin.size(), kInf);

  for (NodeId n = net.size(); n-- > 0;) {
    unsigned co = net.is_output(n) ? 0 : kInf;
    for (NodeId c : net.fanout(n)) {
      const auto& fanin = net.gate(c).fanin;
      for (std::size_t k = 0; k < fanin.size(); ++k) {
        if (fanin[k] != n) continue;
        // pin CO is computed lazily below once co[c] is known; consumers
        // have higher ids, so their values are already final here.
        co = std::min(co, m.pin_co[c][k]);
      }
    }
    m.co[n] = co;

    const Gate& g = net.gate(n);
    for (std::size_t k = 0; k < g.fanin.size(); ++k) {
      unsigned side = 0;
      switch (g.type) {
        case GateType::And:
        case GateType::Nand:
          for (std::size_t j = 0; j < g.fanin.size(); ++j)
            if (j != k) side = sat_add(side, m.cc1[g.fanin[j]]);
          break;
        case GateType::Or:
        case GateType::Nor:
          for (std::size_t j = 0; j < g.fanin.size(); ++j)
            if (j != k) side = sat_add(side, m.cc0[g.fanin[j]]);
          break;
        case GateType::Xor:
        case GateType::Xnor:
          for (std::size_t j = 0; j < g.fanin.size(); ++j)
            if (j != k)
              side = sat_add(side, std::min(m.cc0[g.fanin[j]], m.cc1[g.fanin[j]]));
          break;
        case GateType::Buf:
        case GateType::Not:
          break;
        default:
          break;
      }
      m.pin_co[n][k] = sat_add(sat_add(m.co[n], side), 1);
    }
  }
  return m;
}

std::vector<double> pscoap_detection_probs(const Netlist& net,
                                           std::span<const Fault> faults,
                                           const ScoapMeasures& m) {
  std::vector<double> out;
  out.reserve(faults.size());
  for (const Fault& f : faults) {
    unsigned cc, co;
    if (f.is_stem()) {
      cc = f.sa == StuckAt::Zero ? m.cc1[f.node] : m.cc0[f.node];
      co = m.co[f.node];
    } else {
      const NodeId driver = net.gate(f.node).fanin[f.pin];
      cc = f.sa == StuckAt::Zero ? m.cc1[driver] : m.cc0[driver];
      co = m.pin_co[f.node][f.pin];
    }
    if (cc >= kInf || co >= kInf) {
      out.push_back(0.0);
      continue;
    }
    out.push_back(1.0 / (1.0 + static_cast<double>(cc) + static_cast<double>(co)));
  }
  return out;
}

}  // namespace protest
