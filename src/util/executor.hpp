// Shared executor: a ThreadPool behind a job lock, so INDEPENDENT
// components can run their parallel loops on ONE set of worker threads.
//
// Motivation: every parallel component used to own a private ThreadPool —
// fine for one resident session, but a service keeping N sessions hot
// would spawn N pools and oversubscribe the machine N-fold.  An Executor
// is the sharing seam: inject one instance through
// ParallelConfig::executor and every component it reaches (the sharded
// Monte-Carlo engine, ParallelBatchEvaluator, the session sweeps) runs
// its jobs on the same workers.  Jobs from concurrent callers SERIALIZE —
// each job still spans the full pool, so the machine stays fully used
// and never oversubscribed; what changes is that two sessions' parallel
// phases queue behind each other instead of fighting for cores.
//
// Determinism is untouched: the executor only forwards to
// ThreadPool::parallel_for, and every user keys its work by task index
// (see thread_pool.hpp), so results are bit-identical whether a component
// runs on a private pool or a shared executor of any size.
//
// Reentrancy: a task running on this executor that submits to the SAME
// executor would deadlock on the job lock if it ran on a pool thread.
// parallel_for detects this (thread-local current-executor marker) and
// runs nested jobs inline on the submitting worker instead — degraded to
// serial, but correct.  Current components never nest; the guard is
// insurance for future compositions.
//
// Cancellation: parallel_for captures the submitting thread's current
// CancelToken (util/cancel.hpp) and re-installs it around every task, so
// checkpoints inside shard loops and batch tasks observe the submitting
// job's cancellation even though they run on pool threads.  A cancelled
// task throws OperationCancelled, which the pool rethrows on the
// submitting thread after abandoning the unclaimed tasks.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>

#include "util/thread_pool.hpp"

namespace protest {

class Executor {
 public:
  /// Worker count as in ThreadPool (0 is treated as 1; pass
  /// ParallelConfig{}.resolved() for "all hardware threads").  No threads
  /// are spawned here — the pool is created on the first job, so merely
  /// holding an executor (a registry with no parallel work yet, a CLI
  /// one-shot on a serial engine) costs nothing.
  explicit Executor(unsigned num_workers);
  explicit Executor(ParallelConfig config);

  /// Stable for the executor's lifetime; per-worker scratch in components
  /// sharing this executor can be keyed by the worker index they observe
  /// (only one job runs at a time, so slots never collide across jobs).
  unsigned num_workers() const { return num_workers_; }

  /// ThreadPool::parallel_for semantics (dynamic claiming, caller is
  /// worker 0, first exception rethrown), with concurrent CALLERS
  /// serialized on an internal lock: one job at a time, each spanning the
  /// whole pool.  Called from inside one of this executor's own tasks, the
  /// nested job runs inline on the submitting thread (see header).
  void parallel_for(std::size_t num_tasks,
                    const std::function<void(std::size_t, unsigned)>& fn);

 private:
  unsigned num_workers_;
  std::mutex job_mu_;  ///< serializes jobs from concurrent callers
  std::unique_ptr<ThreadPool> pool_;  ///< spawned lazily under job_mu_
};

/// The executor a component should run its jobs on: `config.executor`
/// when one was injected (the shared-pool path), otherwise a fresh
/// private executor sized by `config.num_threads` (the historical
/// pool-per-component behavior).
std::shared_ptr<Executor> make_executor(const ParallelConfig& config);

}  // namespace protest
