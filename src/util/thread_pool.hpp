// Fixed-size thread pool and parallel_for: the parallel-execution
// substrate behind the sharded Monte-Carlo engine, the per-thread-clone
// batch evaluator, and the session's neighborhood sweeps.
//
// Design constraints (shared by every user):
//   * Determinism lives in the WORK DECOMPOSITION, not the schedule.  Tasks
//     are claimed dynamically (an atomic cursor), so callers must make each
//     task's output depend only on its task index — never on which worker
//     ran it or in what order.  Every current user follows this rule, which
//     is what makes results bit-identical for any thread count.
//   * Worker index stability: fn(task, worker) receives a worker index in
//     [0, num_workers()) that is stable for the lifetime of the pool — the
//     caller participates as worker 0, pool threads are 1..n-1.  Per-worker
//     scratch (simulators, engine clones) can be keyed by it without locks
//     because one worker never runs two tasks concurrently.
//   * Exceptions propagate: the first exception thrown by any task is
//     rethrown on the calling thread after every worker has stopped; the
//     remaining unclaimed tasks are abandoned.  The pool stays usable.
//
// A pool with num_workers() == 1 never spawns a thread: parallel_for runs
// the loop inline on the caller, making `--threads 1` exactly the
// historical serial path.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace protest {

class Executor;

/// Thread-count knob plumbed from SessionOptions / CLI --threads into
/// every parallel entry point.
struct ParallelConfig {
  /// 0 = one worker per hardware thread (std::thread::hardware_concurrency),
  /// 1 = serial (no pool threads), N = exactly N workers.  Results are
  /// bit-identical for every value; only wall-clock changes.
  unsigned num_threads = 0;

  /// Injectable shared executor (util/executor.hpp).  When set, components
  /// reached by this config run their parallel jobs on it instead of
  /// spawning a private pool — the seam the service layer uses to keep N
  /// resident sessions on ONE set of worker threads.  Its worker count
  /// overrides num_threads.  Results are identical either way.
  std::shared_ptr<Executor> executor;

  /// The effective worker count (the executor's when one is injected,
  /// otherwise resolves num_threads; never returns 0).
  unsigned resolved() const;
};

class ThreadPool {
 public:
  /// Spawns `num_workers - 1` threads (the caller is worker 0).
  /// num_workers == 0 is treated as 1.
  explicit ThreadPool(unsigned num_workers);
  explicit ThreadPool(ParallelConfig config) : ThreadPool(config.resolved()) {}
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_workers() const;

  /// Runs fn(task_index, worker_index) for every task_index in
  /// [0, num_tasks).  Tasks are claimed dynamically across workers; the
  /// calling thread participates as worker 0 and the call returns when
  /// every claimed task has finished.  The first exception any task throws
  /// is rethrown here (remaining unclaimed tasks are skipped).
  ///
  /// Not reentrant: parallel_for must not be called from inside a task of
  /// the same pool, and a pool runs one parallel_for at a time.
  void parallel_for(std::size_t num_tasks,
                    const std::function<void(std::size_t, unsigned)>& fn);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace protest
