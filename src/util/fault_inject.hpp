// Deterministic fault injection for the supervised serve stack.
//
// Supervisor behavior — crash detection, restart/backoff, wedge
// detection via missed heartbeats, garbage-tolerant demultiplexing — is
// tested by ACTUALLY crashing, wedging, and corrupting workers, not by
// mocking them.  A FaultInjector is armed from a spec string (the
// `--fault-inject` serve flag or the PROTEST_FAULT_INJECT environment
// variable, which is how spawned workers inherit it) and consulted by the
// worker's serve loop once per received request, before dispatch.
//
// Spec grammar (comma-separated rules):
//
//   [w<K>:]<action>@<verb>[:<nth>]
//
//   action  crash    call _Exit(9) — simulates a hard worker crash
//           stall    sleep the serve loop's reader thread for the
//                    configured stall duration — heartbeats stop
//                    answering, simulating a wedged worker
//           garbage  emit one non-JSON line on stdout instead of
//                    dispatching — simulates protocol corruption
//   verb    the request verb that triggers the rule ("*" = any)
//   nth     1-based count of MATCHING requests seen before firing
//           (default 1 = fire on the first match); each rule fires
//           exactly once
//   w<K>:   only arm this rule in the worker whose index is K
//           (workers learn their index via PROTEST_WORKER_INDEX)
//
// Example: "w0:crash@monte_carlo_analyze,w1:stall@analyze:2" kills worker
// 0 on its first monte-carlo request and wedges worker 1 on its second
// exact analyze.  Everything is counter-based and single-threaded within
// a worker's reader loop, so a given conversation replays byte-for-byte
// deterministically — the CI fault-injection job depends on this.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace protest {

enum class FaultAction { Crash, Stall, Garbage };

struct FaultRule {
  FaultAction action = FaultAction::Crash;
  std::string verb;            ///< "*" matches any verb
  std::uint32_t nth = 1;       ///< fire on the nth matching request
  int worker_index = -1;       ///< -1 = any worker
  // Mutable firing state (injector instances are per-process, consulted
  // from one reader thread).
  std::uint32_t seen = 0;
  bool fired = false;
};

class FaultInjector {
 public:
  /// Inert injector: should_fire() never fires.
  FaultInjector() = default;

  /// Parses a spec string; throws std::invalid_argument with the
  /// offending rule quoted on malformed input.
  static FaultInjector parse(const std::string& spec, int worker_index = -1);

  /// Builds an injector from PROTEST_FAULT_INJECT / PROTEST_WORKER_INDEX,
  /// or an inert one when the variable is unset or empty.  Malformed env
  /// specs are a hard error (throws) — silently ignoring a typo'd spec
  /// would make a fault-injection run vacuously green.
  static FaultInjector from_env();

  bool armed() const { return !rules_.empty(); }

  /// Consulted once per received request line.  Returns true (setting
  /// *action) when a rule fires for this verb; a rule fires at most once.
  bool should_fire(const std::string& verb, FaultAction* action);

  /// How long a Stall fault sleeps the reader (long enough to blow any
  /// reasonable heartbeat budget, short enough for tests).
  std::chrono::milliseconds stall_duration() const { return stall_duration_; }

  /// The line emitted for a Garbage fault — deliberately not JSON.
  static const char* garbage_line() { return "!!protest-fault-garbage!!"; }

 private:
  std::vector<FaultRule> rules_;
  std::chrono::milliseconds stall_duration_{10000};
};

}  // namespace protest
