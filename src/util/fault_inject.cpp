#include "util/fault_inject.hpp"

#include <cstdlib>
#include <stdexcept>

namespace protest {
namespace {

// Splits on `sep`, keeping empty segments out.
std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    const std::string part =
        s.substr(start, end == std::string::npos ? std::string::npos : end - start);
    if (!part.empty()) parts.push_back(part);
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return parts;
}

[[noreturn]] void bad_rule(const std::string& rule, const char* why) {
  throw std::invalid_argument("fault-inject rule '" + rule + "': " + why);
}

std::uint32_t parse_number(const std::string& rule, const std::string& text,
                           unsigned long min, const char* what) {
  if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos) {
    bad_rule(rule, what);
  }
  unsigned long v = 0;
  try {
    v = std::stoul(text);
  } catch (const std::exception&) {
    bad_rule(rule, what);
  }
  if (v < min || v > 1000000) bad_rule(rule, what);
  return static_cast<std::uint32_t>(v);
}

}  // namespace

FaultInjector FaultInjector::parse(const std::string& spec, int worker_index) {
  FaultInjector inj;
  for (const std::string& raw : split(spec, ',')) {
    std::string rest = raw;
    FaultRule rule;
    // Optional worker scope: w<K>:
    if (rest.size() >= 2 && rest[0] == 'w' &&
        rest[1] >= '0' && rest[1] <= '9') {
      const std::size_t colon = rest.find(':');
      if (colon == std::string::npos) bad_rule(raw, "missing ':' after worker scope");
      rule.worker_index = static_cast<int>(
          parse_number(raw, rest.substr(1, colon - 1), 0, "bad worker index"));
      rest = rest.substr(colon + 1);
    }
    const std::size_t at = rest.find('@');
    if (at == std::string::npos) bad_rule(raw, "expected <action>@<verb>");
    const std::string action = rest.substr(0, at);
    if (action == "crash") {
      rule.action = FaultAction::Crash;
    } else if (action == "stall") {
      rule.action = FaultAction::Stall;
    } else if (action == "garbage") {
      rule.action = FaultAction::Garbage;
    } else {
      bad_rule(raw, "unknown action (want crash|stall|garbage)");
    }
    std::string verb = rest.substr(at + 1);
    const std::size_t colon = verb.find(':');
    if (colon != std::string::npos) {
      rule.nth = parse_number(raw, verb.substr(colon + 1), 1, "bad occurrence count");
      verb = verb.substr(0, colon);
    }
    if (verb.empty()) bad_rule(raw, "empty verb");
    rule.verb = verb;
    // A rule scoped to a different worker is parsed (so syntax errors
    // surface everywhere) but not armed in this process.
    if (rule.worker_index < 0 || rule.worker_index == worker_index) {
      inj.rules_.push_back(rule);
    }
  }
  return inj;
}

FaultInjector FaultInjector::from_env() {
  const char* spec = std::getenv("PROTEST_FAULT_INJECT");
  if (!spec || !*spec) return FaultInjector();
  int worker_index = -1;
  if (const char* idx = std::getenv("PROTEST_WORKER_INDEX")) {
    try {
      worker_index = std::stoi(idx);
    } catch (const std::exception&) {
      worker_index = -1;
    }
  }
  FaultInjector inj = parse(spec, worker_index);
  // Tests shrink the stall so wedge detection trips in milliseconds, not
  // the 10 s default sized for interactive debugging.
  if (const char* ms = std::getenv("PROTEST_FAULT_STALL_MS"); ms && *ms) {
    try {
      inj.stall_duration_ = std::chrono::milliseconds(std::stol(ms));
    } catch (const std::exception&) {
      // keep the default on malformed values
    }
  }
  return inj;
}

bool FaultInjector::should_fire(const std::string& verb, FaultAction* action) {
  for (FaultRule& rule : rules_) {
    if (rule.fired) continue;
    if (rule.verb != "*" && rule.verb != verb) continue;
    if (++rule.seen < rule.nth) continue;
    rule.fired = true;
    *action = rule.action;
    return true;
  }
  return false;
}

}  // namespace protest
