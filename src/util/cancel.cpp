#include "util/cancel.hpp"

#include <utility>

namespace protest {
namespace {

thread_local CancelToken tl_current_token;

}  // namespace

CancelToken CancelToken::source() {
  CancelToken t;
  t.flag_ = std::make_shared<std::atomic<bool>>(false);
  return t;
}

CancelScope::CancelScope(CancelToken token)
    : prev_(std::exchange(tl_current_token, std::move(token))) {}

CancelScope::~CancelScope() { tl_current_token = std::move(prev_); }

const CancelToken& current_cancel_token() { return tl_current_token; }

void check_cancelled() { tl_current_token.check(); }

}  // namespace protest
