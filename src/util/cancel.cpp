#include "util/cancel.hpp"

#include <utility>

namespace protest {
namespace {

thread_local CancelToken tl_current_token;

}  // namespace

CancelToken CancelToken::source() {
  CancelToken t;
  t.state_ = std::make_shared<State>();
  return t;
}

CancelToken CancelToken::with_deadline(
    const CancelToken& parent, std::chrono::steady_clock::time_point deadline) {
  auto state = std::make_shared<State>();
  state->parent = parent.state_;
  state->has_deadline = true;
  state->deadline = deadline;
  CancelToken t;
  t.state_ = std::move(state);
  return t;
}

CancelReason CancelToken::reason() const {
  // Explicit cancel anywhere in the chain dominates deadline expiry, so
  // scan all flags before consulting the clock.
  bool any_deadline = false;
  std::chrono::steady_clock::time_point earliest{};
  for (const State* s = state_.get(); s; s = s->parent.get()) {
    if (s->flag.load(std::memory_order_acquire)) return CancelReason::Cancelled;
    if (s->has_deadline && (!any_deadline || s->deadline < earliest)) {
      any_deadline = true;
      earliest = s->deadline;
    }
  }
  if (any_deadline && std::chrono::steady_clock::now() >= earliest) {
    return CancelReason::DeadlineExceeded;
  }
  return CancelReason::None;
}

CancelScope::CancelScope(CancelToken token)
    : prev_(std::exchange(tl_current_token, std::move(token))) {}

CancelScope::~CancelScope() { tl_current_token = std::move(prev_); }

const CancelToken& current_cancel_token() { return tl_current_token; }

void check_cancelled() { tl_current_token.check(); }

}  // namespace protest
