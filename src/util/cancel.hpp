// Cooperative cancellation: the substrate behind the async job API and
// the service layer's per-request deadlines.
//
// A CancelToken is a cheap, copyable handle on a shared cancellation flag.
// Long-running work (the Monte-Carlo shard loop, the hill-climb sweep,
// the per-clone batch evaluator) polls the flag at natural CHECKPOINTS —
// shard boundaries, sweep coordinates, batch tasks — and aborts by
// throwing OperationCancelled, which unwinds through the ordinary
// exception-propagation paths (ThreadPool rethrows the first task
// exception on the caller).  Cancellation is therefore cooperative and
// prompt to within one checkpoint, never preemptive: no locks are broken,
// no partial state is published, and caches are only updated by work that
// ran to completion.
//
// Tokens compose two ways beyond the plain source() flag:
//
//  - DEADLINES: deadline_source()/with_deadline() produce tokens that
//    trip automatically once a steady-clock deadline passes — the
//    mechanism behind the service's per-request `deadline_ms`.  A token
//    remembers WHY it tripped (CancelReason), so the service can answer
//    `deadline_exceeded` for an expired deadline while an explicit
//    cancel() still unwinds to the job layer as a cancelled job.
//    An explicit request_cancel() anywhere in the chain wins over an
//    expired deadline when both hold.
//
//  - PARENT LINKS: with_deadline(parent, ...) keeps observing `parent`,
//    so a deadline scope installed INSIDE a job's CancelScope still sees
//    the job's cancel() — nesting scopes never disconnects the outer
//    cancellation path.
//
// Plumbing is AMBIENT rather than parameter-threaded: CancelScope installs
// a token as the calling thread's current token (thread-local), and
// check_cancelled() polls it.  This keeps deep call chains — session ->
// engine -> executor -> shard loop — free of signature churn.  The one
// seam that must forward the token across threads is Executor::
// parallel_for, which captures the submitting thread's current token and
// re-installs it around every pool task, so a checkpoint inside a worker
// observes the same cancellation the submitting job does.
//
// A default-constructed token is INERT: it can never be cancelled,
// request_cancel() is a no-op, and checks against it are two predictable
// branches.  All pre-existing synchronous entry points run under the
// inert token and are unaffected.
//
// Thread safety: request_cancel() / cancel_requested() / reason() are
// atomic (plus a monotonic clock read for deadline tokens) and may race
// freely across threads; CancelScope and current_cancel_token() are
// per-thread by construction.
#pragma once

#include <atomic>
#include <chrono>
#include <exception>
#include <memory>

namespace protest {

/// Why a token tripped.  None = not tripped.  Cancelled (an explicit
/// request_cancel anywhere in the chain) dominates DeadlineExceeded when
/// both hold, so a cancelled job never masquerades as a timeout.
enum class CancelReason { None, Cancelled, DeadlineExceeded };

/// Thrown by cancellation checkpoints.  Deliberately NOT derived from
/// std::runtime_error: the service layer converts runtime errors into
/// structured error responses, while cancellation must propagate past
/// those handlers to the job layer (which records the job as cancelled,
/// never as failed).  Deadline expiry is the one reason the service DOES
/// answer structurally (`deadline_exceeded`) — it branches on reason().
class OperationCancelled : public std::exception {
 public:
  OperationCancelled() = default;
  explicit OperationCancelled(CancelReason reason) : reason_(reason) {}
  const char* what() const noexcept override {
    return reason_ == CancelReason::DeadlineExceeded ? "deadline exceeded"
                                                     : "operation cancelled";
  }
  CancelReason reason() const noexcept { return reason_; }

 private:
  CancelReason reason_ = CancelReason::Cancelled;
};

class CancelToken {
 public:
  /// Inert token: never cancelled, request_cancel() is a no-op.
  CancelToken() = default;

  /// A fresh cancellable token.
  static CancelToken source();

  /// A token that trips with DeadlineExceeded once `deadline` passes AND
  /// keeps observing `parent` (typically current_cancel_token()), so a
  /// deadline scope nested inside a job still sees the job's cancel().
  static CancelToken with_deadline(
      const CancelToken& parent, std::chrono::steady_clock::time_point deadline);

  /// with_deadline() against an inert parent.
  static CancelToken deadline_source(
      std::chrono::steady_clock::time_point deadline) {
    return with_deadline(CancelToken(), deadline);
  }

  /// True for source()/with_deadline() tokens, false for inert ones.
  bool cancellable() const { return state_ != nullptr; }

  /// Flips this token's own flag; every copy of this token (and every
  /// child linked to it) observes it.  Safe from any thread; no-op on an
  /// inert token.  Parents are NOT affected — cancelling a deadline child
  /// never cancels the job it nests inside.
  void request_cancel() const {
    if (state_) state_->flag.store(true, std::memory_order_release);
  }

  /// Why this token has tripped (walking the parent chain), or None.
  CancelReason reason() const;

  bool cancel_requested() const { return reason() != CancelReason::None; }

  /// Throws OperationCancelled (carrying the reason) when tripped.
  void check() const {
    const CancelReason r = reason();
    if (r != CancelReason::None) throw OperationCancelled(r);
  }

 private:
  struct State {
    mutable std::atomic<bool> flag{false};  ///< mutable: set through const chain
    std::shared_ptr<const State> parent;  ///< observed too (null = none)
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
  };

  std::shared_ptr<const State> state_;  ///< null = inert
};

/// Installs `token` as the calling thread's current token for the scope's
/// lifetime (restoring the previous one on exit).  Scopes nest; the
/// innermost wins — link deadline tokens to the previous current token
/// (CancelToken::with_deadline) to keep observing the outer cancellation.
class CancelScope {
 public:
  explicit CancelScope(CancelToken token);
  ~CancelScope();
  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  CancelToken prev_;
};

/// The calling thread's current token (inert outside any CancelScope).
const CancelToken& current_cancel_token();

/// The checkpoint primitive: throws OperationCancelled when the current
/// token has been cancelled.  Cost when no scope is installed: one
/// null-pointer test.
void check_cancelled();

}  // namespace protest
