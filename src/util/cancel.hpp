// Cooperative cancellation: the substrate behind the async job API.
//
// A CancelToken is a cheap, copyable handle on a shared cancellation flag.
// Long-running work (the Monte-Carlo shard loop, the hill-climb sweep,
// the per-clone batch evaluator) polls the flag at natural CHECKPOINTS —
// shard boundaries, sweep coordinates, batch tasks — and aborts by
// throwing OperationCancelled, which unwinds through the ordinary
// exception-propagation paths (ThreadPool rethrows the first task
// exception on the caller).  Cancellation is therefore cooperative and
// prompt to within one checkpoint, never preemptive: no locks are broken,
// no partial state is published, and caches are only updated by work that
// ran to completion.
//
// Plumbing is AMBIENT rather than parameter-threaded: CancelScope installs
// a token as the calling thread's current token (thread-local), and
// check_cancelled() polls it.  This keeps deep call chains — session ->
// engine -> executor -> shard loop — free of signature churn.  The one
// seam that must forward the token across threads is Executor::
// parallel_for, which captures the submitting thread's current token and
// re-installs it around every pool task, so a checkpoint inside a worker
// observes the same cancellation the submitting job does.
//
// A default-constructed token is INERT: it can never be cancelled,
// request_cancel() is a no-op, and checks against it are two predictable
// branches.  All pre-existing synchronous entry points run under the
// inert token and are unaffected.
//
// Thread safety: request_cancel() / cancel_requested() are atomic and may
// race freely across threads; CancelScope and current_cancel_token() are
// per-thread by construction.
#pragma once

#include <atomic>
#include <exception>
#include <memory>

namespace protest {

/// Thrown by cancellation checkpoints.  Deliberately NOT derived from
/// std::runtime_error: the service layer converts runtime errors into
/// structured error responses, while cancellation must propagate past
/// those handlers to the job layer (which records the job as cancelled,
/// never as failed).
class OperationCancelled : public std::exception {
 public:
  const char* what() const noexcept override { return "operation cancelled"; }
};

class CancelToken {
 public:
  /// Inert token: never cancelled, request_cancel() is a no-op.
  CancelToken() = default;

  /// A fresh cancellable token (the only way to obtain one).
  static CancelToken source();

  /// True for source() tokens, false for inert ones.
  bool cancellable() const { return flag_ != nullptr; }

  /// Flips the shared flag; every copy of this token observes it.  Safe
  /// from any thread; no-op on an inert token.
  void request_cancel() const {
    if (flag_) flag_->store(true, std::memory_order_release);
  }

  bool cancel_requested() const {
    return flag_ && flag_->load(std::memory_order_acquire);
  }

  /// Throws OperationCancelled when cancellation was requested.
  void check() const {
    if (cancel_requested()) throw OperationCancelled();
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;  ///< null = inert
};

/// Installs `token` as the calling thread's current token for the scope's
/// lifetime (restoring the previous one on exit).  Scopes nest; the
/// innermost wins.
class CancelScope {
 public:
  explicit CancelScope(CancelToken token);
  ~CancelScope();
  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  CancelToken prev_;
};

/// The calling thread's current token (inert outside any CancelScope).
const CancelToken& current_cancel_token();

/// The checkpoint primitive: throws OperationCancelled when the current
/// token has been cancelled.  Cost when no scope is installed: one
/// null-pointer test.
void check_cancelled();

}  // namespace protest
