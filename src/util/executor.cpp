#include "util/executor.hpp"

#include "util/cancel.hpp"

namespace protest {
namespace {

/// The executor whose task is currently running on this thread (nullptr
/// outside tasks).  Set around every task so nested submissions to the
/// same executor can be detected on pool threads and on the caller.
thread_local const Executor* tl_current_executor = nullptr;

struct CurrentExecutorGuard {
  explicit CurrentExecutorGuard(const Executor* e)
      : prev(tl_current_executor) {
    tl_current_executor = e;
  }
  ~CurrentExecutorGuard() { tl_current_executor = prev; }
  const Executor* prev;
};

}  // namespace

Executor::Executor(unsigned num_workers)
    : num_workers_(num_workers == 0 ? 1 : num_workers) {}
Executor::Executor(ParallelConfig config) : Executor(config.resolved()) {}

void Executor::parallel_for(
    std::size_t num_tasks,
    const std::function<void(std::size_t, unsigned)>& fn) {
  if (num_tasks == 0) return;
  if (tl_current_executor == this) {
    // Nested submission from one of our own tasks: the job lock is held
    // by the enclosing job, so run inline on this worker.  Task-indexed
    // work decomposition makes this produce the same results serially.
    for (std::size_t t = 0; t < num_tasks; ++t) fn(t, 0);
    return;
  }
  // Capture the submitting thread's cancellation token BEFORE queueing
  // behind another job: checkpoints inside our tasks must observe the
  // submitting JOB's cancellation, and pool threads have no scope of
  // their own.
  const CancelToken cancel = current_cancel_token();
  const std::lock_guard<std::mutex> job(job_mu_);
  if (!pool_) pool_ = std::make_unique<ThreadPool>(num_workers_);
  // Mark every task (pool workers AND the caller acting as worker 0) so a
  // nested submission is detected no matter which worker it comes from.
  pool_->parallel_for(num_tasks, [&](std::size_t t, unsigned w) {
    const CurrentExecutorGuard guard(this);
    const CancelScope scope(cancel);
    fn(t, w);
  });
}

std::shared_ptr<Executor> make_executor(const ParallelConfig& config) {
  if (config.executor) return config.executor;
  return std::make_shared<Executor>(config.resolved());
}

}  // namespace protest
