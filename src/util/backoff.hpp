// Deterministic capped exponential backoff for worker restarts.
//
// The supervisor restarts a crashed worker after BackoffPolicy::delay(n),
// where n counts consecutive failures since the last healthy interval.
// The sequence is pure and deterministic — initial * multiplier^n, capped
// at max — with NO jitter: a single supervisor restarting a handful of
// local workers has no thundering-herd problem to solve, and the
// fault-injection CI job asserts restart timing against the exact
// sequence, which randomness would break.
#pragma once

#include <chrono>
#include <cstdint>

namespace protest {

struct BackoffPolicy {
  std::chrono::milliseconds initial{100};
  std::chrono::milliseconds max{5000};
  double multiplier = 2.0;

  /// Delay before restart attempt `attempt` (0-based: the first restart
  /// after a crash waits delay(0) == initial).
  std::chrono::milliseconds delay(std::uint32_t attempt) const;
};

}  // namespace protest
