#include "util/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/executor.hpp"

namespace protest {

unsigned ParallelConfig::resolved() const {
  if (executor) return executor->num_workers();
  if (num_threads != 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable work_cv;  ///< workers: a new job (or shutdown)
  std::condition_variable done_cv;  ///< caller: all workers left the job
  const std::function<void(std::size_t, unsigned)>* job = nullptr;
  std::size_t num_tasks = 0;
  std::atomic<std::size_t> next_task{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;      ///< first exception (guarded by mu)
  std::uint64_t generation = 0;  ///< bumps per job; workers wait on it
  unsigned workers_in_job = 0;   ///< pool threads still inside the job
  bool shutdown = false;
  std::vector<std::thread> threads;

  /// Claims tasks until the cursor runs out or a task failed.  Runs on
  /// pool threads and on the caller (worker 0).
  void drain(const std::function<void(std::size_t, unsigned)>& fn,
             std::size_t ntasks, unsigned worker) {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t t = next_task.fetch_add(1, std::memory_order_relaxed);
      if (t >= ntasks) return;
      try {
        fn(t, worker);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  }

  void worker_main(unsigned worker) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t, unsigned)>* fn;
      std::size_t ntasks;
      {
        std::unique_lock<std::mutex> lock(mu);
        work_cv.wait(lock, [&] { return shutdown || generation != seen; });
        if (shutdown) return;
        seen = generation;
        fn = job;
        ntasks = num_tasks;
      }
      drain(*fn, ntasks, worker);
      {
        const std::lock_guard<std::mutex> lock(mu);
        if (--workers_in_job == 0) done_cv.notify_one();
      }
    }
  }
};

ThreadPool::ThreadPool(unsigned num_workers) : impl_(std::make_unique<Impl>()) {
  if (num_workers == 0) num_workers = 1;
  impl_->threads.reserve(num_workers - 1);
  try {
    for (unsigned w = 1; w < num_workers; ++w)
      impl_->threads.emplace_back([impl = impl_.get(), w] {
        impl->worker_main(w);
      });
  } catch (...) {
    // Thread spawning can fail under resource pressure; join what was
    // started so the std::system_error surfaces instead of the
    // joinable-thread std::terminate.
    {
      const std::lock_guard<std::mutex> lock(impl_->mu);
      impl_->shutdown = true;
    }
    impl_->work_cv.notify_all();
    for (std::thread& t : impl_->threads) t.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->shutdown = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->threads) t.join();
}

unsigned ThreadPool::num_workers() const {
  return static_cast<unsigned>(impl_->threads.size()) + 1;
}

void ThreadPool::parallel_for(
    std::size_t num_tasks,
    const std::function<void(std::size_t, unsigned)>& fn) {
  if (num_tasks == 0) return;
  Impl& im = *impl_;
  if (im.threads.empty() || num_tasks == 1) {
    // The serial path: identical results (work is indexed by task, never
    // by worker), no synchronization, exceptions propagate directly.
    for (std::size_t t = 0; t < num_tasks; ++t) fn(t, 0);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(im.mu);
    im.job = &fn;
    im.num_tasks = num_tasks;
    im.next_task.store(0, std::memory_order_relaxed);
    im.failed.store(false, std::memory_order_relaxed);
    im.error = nullptr;
    im.workers_in_job = static_cast<unsigned>(im.threads.size());
    ++im.generation;
  }
  im.work_cv.notify_all();
  im.drain(fn, num_tasks, 0);
  std::unique_lock<std::mutex> lock(im.mu);
  im.done_cv.wait(lock, [&] { return im.workers_in_job == 0; });
  if (im.error) {
    std::exception_ptr e = im.error;
    im.error = nullptr;
    std::rethrow_exception(e);
  }
}

}  // namespace protest
