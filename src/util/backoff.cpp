#include "util/backoff.hpp"

#include <cmath>

namespace protest {

std::chrono::milliseconds BackoffPolicy::delay(std::uint32_t attempt) const {
  if (initial.count() <= 0) return std::chrono::milliseconds(0);
  // Work in doubles so a large attempt saturates at max instead of
  // overflowing the integer representation.
  const double scaled = static_cast<double>(initial.count()) *
                        std::pow(multiplier, static_cast<double>(attempt));
  const double capped = static_cast<double>(max.count());
  if (!(scaled < capped)) return max;  // also catches inf/NaN
  return std::chrono::milliseconds(static_cast<std::int64_t>(scaled));
}

}  // namespace protest
