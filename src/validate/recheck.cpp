#include "validate/recheck.hpp"

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <utility>

namespace protest::recheck {
namespace {

// --- a deliberately tiny JSON parser ----------------------------------------
// Independent of analysis/json by design: this is the secondary toolchain,
// so it must not inherit the primary parser's bugs.  Recursive descent,
// depth-capped, numbers via strtod, \uXXXX decoded to UTF-8.

struct MiniValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<MiniValue> array;
  std::vector<std::pair<std::string, MiniValue>> object;

  const MiniValue* find(std::string_view key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

class MiniParser {
 public:
  explicit MiniParser(std::string_view text) : text_(text) {}

  bool parse(MiniValue& out) {
    if (!value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const char* what) {
    if (error_.empty())
      error_ = std::string(what) + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool value(MiniValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end");
    switch (text_[pos_]) {
      case 'n':
        out.kind = MiniValue::Kind::Null;
        return literal("null");
      case 't':
        out.kind = MiniValue::Kind::Bool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = MiniValue::Kind::Bool;
        out.boolean = false;
        return literal("false");
      case '"':
        out.kind = MiniValue::Kind::String;
        return string_body(out.string);
      case '[':
        return array_body(out, depth);
      case '{':
        return object_body(out, depth);
      default:
        return number_body(out);
    }
  }

  bool number_body(MiniValue& out) {
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    out.number = std::strtod(begin, &end);
    if (end == begin) return fail("bad number");
    out.kind = MiniValue::Kind::Number;
    pos_ += static_cast<std::size_t>(end - begin);
    return true;
  }

  bool hex4(unsigned& out) {
    out = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) return fail("bad \\u escape");
      const char c = text_[pos_++];
      unsigned d = 0;
      if (c >= '0' && c <= '9')
        d = static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        d = static_cast<unsigned>(c - 'a') + 10;
      else if (c >= 'A' && c <= 'F')
        d = static_cast<unsigned>(c - 'A') + 10;
      else
        return fail("bad \\u escape");
      out = out * 16 + d;
    }
    return true;
  }

  static void append_utf8(std::string& s, unsigned cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool string_body(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          if (!hex4(cp)) return false;
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("bad escape");
      }
    }
  }

  bool array_body(MiniValue& out, int depth) {
    ++pos_;  // '['
    out.kind = MiniValue::Kind::Array;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      MiniValue elem;
      if (!value(elem, depth + 1)) return false;
      out.array.push_back(std::move(elem));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      const char c = text_[pos_++];
      if (c == ']') return true;
      if (c != ',') return fail("expected ',' or ']'");
    }
  }

  bool object_body(MiniValue& out, int depth) {
    ++pos_;  // '{'
    out.kind = MiniValue::Kind::Object;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected object key");
      std::string key;
      if (!string_body(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_++] != ':')
        return fail("expected ':'");
      MiniValue val;
      if (!value(val, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(val));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      const char c = text_[pos_++];
      if (c == '}') return true;
      if (c != ',') return fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

// --- the naive evaluator ----------------------------------------------------
// Own gate semantics switch (not netlist/gate.hpp eval_gate): a second,
// independent reading of what AND/NAND/XOR/... mean.

/// Evaluates one gate over its per-PIN input values.  Pin-indexed (not
/// node-indexed) so a branch fault on one pin leaves sibling pins driven
/// by the same net unaffected.
bool naive_eval(GateType t, const std::vector<char>& pins) {
  switch (t) {
    case GateType::Input:
      return false;  // inputs are assigned, never evaluated
    case GateType::Const0:
      return false;
    case GateType::Const1:
      return true;
    case GateType::Buf:
      return pins[0] != 0;
    case GateType::Not:
      return pins[0] == 0;
    case GateType::And:
    case GateType::Nand: {
      bool all = true;
      for (char v : pins) all = all && v != 0;
      return t == GateType::And ? all : !all;
    }
    case GateType::Or:
    case GateType::Nor: {
      bool any = false;
      for (char v : pins) any = any || v != 0;
      return t == GateType::Or ? any : !any;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      int ones = 0;
      for (char v : pins) ones += v != 0 ? 1 : 0;
      const bool odd = ones % 2 == 1;
      return t == GateType::Xor ? odd : !odd;
    }
  }
  return false;
}

/// One fault under naive simulation; node == kNoNode means fault-free.
struct NaiveFault {
  NodeId node = kNoNode;
  int pin = -1;  ///< -1: output stem; >= 0: that input pin of `node`
  bool value = false;
};

/// Evaluates the whole netlist for one input assignment (bit i of
/// `pattern` drives input i), optionally with one stuck pin/stem.
void naive_simulate(const Netlist& net, std::uint64_t pattern,
                    const NaiveFault& fault, std::vector<char>& vals) {
  vals.assign(net.size(), 0);
  const auto inputs = net.inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i)
    vals[inputs[i]] = (pattern >> i) & 1 ? 1 : 0;
  std::vector<char> pins;
  for (NodeId n = 0; n < net.size(); ++n) {
    const Gate& g = net.gate(n);
    if (g.type != GateType::Input) {
      pins.clear();
      for (std::size_t i = 0; i < g.fanin.size(); ++i) {
        // A branch fault sticks ONE pin; a sibling pin driven by the
        // same net still sees the fault-free value.
        const bool stuck = fault.node == n &&
                           fault.pin == static_cast<int>(i);
        pins.push_back(stuck ? (fault.value ? 1 : 0) : vals[g.fanin[i]]);
      }
      vals[n] = naive_eval(g.type, pins) ? 1 : 0;
    }
    if (fault.node == n && fault.pin < 0) vals[n] = fault.value ? 1 : 0;
  }
}

/// Probability weight of one exhaustive pattern under independent inputs.
double pattern_weight(std::span<const double> input_probs,
                      std::uint64_t pattern) {
  double w = 1.0;
  for (std::size_t i = 0; i < input_probs.size(); ++i)
    w *= (pattern >> i) & 1 ? input_probs[i] : 1.0 - input_probs[i];
  return w;
}

/// Parses the payload's "name" / "name/pin" " s-a-0|1" fault display
/// syntax back into a NaiveFault.  Returns false on anything unexpected.
bool parse_fault_name(const Netlist& net, std::string_view text,
                      NaiveFault& out) {
  std::size_t sa = text.rfind(" s-a-");
  if (sa == std::string_view::npos || sa + 6 != text.size()) return false;
  const char bit = text[sa + 5];
  if (bit != '0' && bit != '1') return false;
  out.value = bit == '1';
  std::string_view site = text.substr(0, sa);
  out.pin = -1;
  const std::size_t slash = site.rfind('/');
  if (slash != std::string_view::npos) {
    const std::string_view pin_text = site.substr(slash + 1);
    if (pin_text.empty()) return false;
    int pin = 0;
    for (char c : pin_text) {
      if (c < '0' || c > '9') return false;
      pin = pin * 10 + (c - '0');
    }
    // "a/1" is only a branch fault if "a" names a gate; net names may
    // themselves contain '/' so fall back to the whole string.
    const NodeId n = net.find(std::string(site.substr(0, slash)));
    if (n != kNoNode &&
        static_cast<std::size_t>(pin) < net.gate(n).fanin.size()) {
      out.node = n;
      out.pin = pin;
      return true;
    }
  }
  const NodeId n = net.find(std::string(site));
  if (n == kNoNode) return false;
  out.node = n;
  out.pin = -1;
  return true;
}

std::string format_double(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

// --- the check driver -------------------------------------------------------

class Rechecker {
 public:
  Rechecker(const Netlist& net, const RecheckOptions& opts,
            RecheckReport& report)
      : net_(net), opts_(opts), report_(report) {}

  void run(std::string_view payload_json) {
    MiniParser parser(payload_json);
    MiniValue root;
    ++report_.checks;
    if (!parser.parse(root)) {
      issue("parse", "payload", parser.error());
      return;
    }
    if (root.kind != MiniValue::Kind::Object) {
      issue("parse", "payload", "top level is not an object");
      return;
    }
    check_circuit(root);
    if (!check_input_probs(root)) return;
    exhaustive_ = net_.inputs().size() <= opts_.max_inputs;
    if (exhaustive_) derive_signal_probs();
    check_signal_probs(root);
    check_detection_probs(root);
    check_fault_bounds(root);
    check_test_lengths(root);
  }

 private:
  void issue(std::string check, std::string where, std::string detail) {
    report_.issues.push_back(
        {std::move(check), std::move(where), std::move(detail)});
  }

  bool expect_count(const MiniValue& obj, std::string_view key,
                    std::size_t want) {
    ++report_.checks;
    const MiniValue* v = obj.find(key);
    if (v == nullptr || v->kind != MiniValue::Kind::Number) {
      issue("circuit", std::string(key), "missing or non-numeric");
      return false;
    }
    if (v->number != static_cast<double>(want)) {
      issue("circuit", std::string(key),
            "payload says " + format_double(v->number) + ", netlist has " +
                std::to_string(want));
      return false;
    }
    return true;
  }

  void check_circuit(const MiniValue& root) {
    const MiniValue* c = root.find("circuit");
    ++report_.checks;
    if (c == nullptr || c->kind != MiniValue::Kind::Object) {
      issue("circuit", "circuit", "missing circuit summary");
      return;
    }
    expect_count(*c, "inputs", net_.inputs().size());
    expect_count(*c, "outputs", net_.outputs().size());
    expect_count(*c, "gates", net_.num_gates());
    expect_count(*c, "nodes", net_.size());
  }

  bool check_input_probs(const MiniValue& root) {
    const MiniValue* arr = root.find("input_probs");
    ++report_.checks;
    if (arr == nullptr || arr->kind != MiniValue::Kind::Array) {
      issue("input_probs", "input_probs", "missing array");
      return false;
    }
    const auto inputs = net_.inputs();
    if (arr->array.size() != inputs.size()) {
      issue("input_probs", "input_probs",
            "payload lists " + std::to_string(arr->array.size()) +
                " inputs, netlist has " + std::to_string(inputs.size()));
      return false;
    }
    input_probs_.resize(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const MiniValue& e = arr->array[i];
      const MiniValue* name = e.find("input");
      const MiniValue* p = e.find("p");
      ++report_.checks;
      if (name == nullptr || name->kind != MiniValue::Kind::String ||
          p == nullptr || p->kind != MiniValue::Kind::Number) {
        issue("input_probs", "entry " + std::to_string(i),
              "expected {input, p}");
        return false;
      }
      if (name->string != net_.name_of(inputs[i])) {
        issue("input_probs", name->string,
              "input order mismatch: expected " + net_.name_of(inputs[i]));
        return false;
      }
      if (!(p->number >= 0.0 && p->number <= 1.0)) {
        issue("input_probs", name->string,
              "p outside [0, 1]: " + format_double(p->number));
        return false;
      }
      input_probs_[i] = p->number;
    }
    return true;
  }

  void derive_signal_probs() {
    true_p1_.assign(net_.size(), 0.0);
    const std::uint64_t patterns = std::uint64_t{1} << net_.inputs().size();
    good_vals_.resize(patterns);
    pattern_weights_.resize(patterns);
    for (std::uint64_t pat = 0; pat < patterns; ++pat) {
      pattern_weights_[pat] = pattern_weight(input_probs_, pat);
      naive_simulate(net_, pat, NaiveFault{}, good_vals_[pat]);
      if (pattern_weights_[pat] == 0.0) continue;
      for (NodeId n = 0; n < net_.size(); ++n)
        if (good_vals_[pat][n] != 0) true_p1_[n] += pattern_weights_[pat];
    }
  }

  void check_signal_probs(const MiniValue& root) {
    const MiniValue* arr = root.find("signal_probs");
    ++report_.checks;
    if (arr == nullptr || arr->kind != MiniValue::Kind::Array) {
      issue("signal_probs", "signal_probs", "missing array");
      return;
    }
    std::size_t seen = 0;
    for (const MiniValue& e : arr->array) {
      const MiniValue* name = e.find("node");
      const MiniValue* p1 = e.find("p1");
      ++report_.checks;
      if (name == nullptr || name->kind != MiniValue::Kind::String ||
          p1 == nullptr || p1->kind != MiniValue::Kind::Number) {
        issue("signal_probs", "entry " + std::to_string(seen),
              "expected {node, p1}");
        continue;
      }
      ++seen;
      const NodeId n = net_.find(name->string);
      if (n == kNoNode) {
        issue("signal_probs", name->string, "unknown node");
        continue;
      }
      if (!(p1->number >= 0.0 && p1->number <= 1.0)) {
        issue("signal_probs", name->string,
              "p1 outside [0, 1]: " + format_double(p1->number));
        continue;
      }
      if (exhaustive_ &&
          !(std::abs(p1->number - true_p1_[n]) <= opts_.tolerance)) {
        issue("signal_probs", name->string,
              "payload p1 = " + format_double(p1->number) +
                  ", exhaustive truth table gives " +
                  format_double(true_p1_[n]) + " (tolerance " +
                  format_double(opts_.tolerance) + ")");
      }
      const MiniValue* obs = e.find("observability");
      if (obs != nullptr) {
        ++report_.checks;
        if (obs->kind != MiniValue::Kind::Number ||
            !(obs->number >= 0.0 && obs->number <= 1.0)) {
          issue("observability", name->string, "outside [0, 1]");
        }
      }
    }
    ++report_.checks;
    if (seen != net_.num_gates()) {
      issue("signal_probs", "signal_probs",
            "payload lists " + std::to_string(seen) + " nodes, netlist has " +
                std::to_string(net_.num_gates()) + " non-input nodes");
    }
  }

  void check_detection_probs(const MiniValue& root) {
    const MiniValue* arr = root.find("detection_probs");
    if (arr == nullptr) return;  // artifact not requested
    ++report_.checks;
    if (arr->kind != MiniValue::Kind::Array) {
      issue("detection_probs", "detection_probs", "not an array");
      return;
    }
    for (const MiniValue& e : arr->array) {
      const MiniValue* name = e.find("fault");
      const MiniValue* p = e.find("p_detect");
      ++report_.checks;
      if (name == nullptr || name->kind != MiniValue::Kind::String ||
          p == nullptr || p->kind != MiniValue::Kind::Number) {
        issue("detection_probs", "entry", "expected {fault, p_detect}");
        continue;
      }
      if (!(p->number >= 0.0 && p->number <= 1.0)) {
        issue("detection_probs", name->string,
              "p_detect outside [0, 1]: " + format_double(p->number));
        continue;
      }
      detect_estimates_.emplace_back(name->string, p->number);
    }
  }

  /// True detection probability of one fault by naive exhaustive fault
  /// simulation: the probability mass of patterns where any primary
  /// output of the faulty circuit differs from the good circuit.
  double naive_detection_prob(const NaiveFault& fault) {
    std::vector<char> bad;
    double p = 0.0;
    const std::uint64_t patterns = std::uint64_t{1} << net_.inputs().size();
    for (std::uint64_t pat = 0; pat < patterns; ++pat) {
      const double w = pattern_weights_[pat];
      if (w == 0.0) continue;
      naive_simulate(net_, pat, fault, bad);
      const std::vector<char>& good = good_vals_[pat];
      for (NodeId out : net_.outputs()) {
        if (good[out] != bad[out]) {
          p += w;
          break;
        }
      }
    }
    return p;
  }

  void check_fault_bounds(const MiniValue& root) {
    const MiniValue* fb = root.find("fault_bounds");
    if (fb == nullptr) return;  // artifact not requested
    ++report_.checks;
    const MiniValue* faults =
        fb->kind == MiniValue::Kind::Object ? fb->find("faults") : nullptr;
    if (faults == nullptr || faults->kind != MiniValue::Kind::Array) {
      issue("fault_bounds", "fault_bounds", "missing faults array");
      return;
    }
    for (const MiniValue& e : faults->array) {
      const MiniValue* name = e.find("fault");
      const MiniValue* lo = e.find("lo");
      const MiniValue* hi = e.find("hi");
      const MiniValue* verdict = e.find("verdict");
      ++report_.checks;
      if (name == nullptr || name->kind != MiniValue::Kind::String ||
          lo == nullptr || lo->kind != MiniValue::Kind::Number ||
          hi == nullptr || hi->kind != MiniValue::Kind::Number ||
          verdict == nullptr || verdict->kind != MiniValue::Kind::String) {
        issue("fault_bounds", "entry", "expected {fault, lo, hi, verdict}");
        continue;
      }
      if (!(0.0 <= lo->number && lo->number <= hi->number &&
            hi->number <= 1.0)) {
        issue("fault_bounds", name->string,
              "interval [" + format_double(lo->number) + ", " +
                  format_double(hi->number) + "] is not a sub-range of [0,1]");
        continue;
      }
      const bool undetectable = verdict->string == "proven_undetectable";

      // The serialized estimate must respect the interval it shipped with.
      for (const auto& [fault_name, estimate] : detect_estimates_) {
        if (fault_name != name->string) continue;
        ++report_.checks;
        const double slack = 1e-12;
        if (undetectable && estimate != 0.0) {
          issue("fault_bounds", name->string,
                "proven undetectable but p_detect = " +
                    format_double(estimate));
        } else if (estimate < lo->number - slack ||
                   estimate > hi->number + slack) {
          issue("fault_bounds", name->string,
                "p_detect = " + format_double(estimate) +
                    " escapes its own interval [" + format_double(lo->number) +
                    ", " + format_double(hi->number) + "]");
        }
      }

      // Soundness from scratch: the true (exhaustively simulated)
      // detection probability must lie inside the claimed interval.
      if (!exhaustive_) continue;
      NaiveFault fault;
      ++report_.checks;
      if (!parse_fault_name(net_, name->string, fault)) {
        issue("fault_bounds", name->string, "unparseable fault name");
        continue;
      }
      const double truth = naive_detection_prob(fault);
      const double slack = 1e-9;
      if (truth < lo->number - slack || truth > hi->number + slack) {
        issue("fault_bounds", name->string,
              "exhaustive fault simulation gives p_detect = " +
                  format_double(truth) + ", outside claimed interval [" +
                  format_double(lo->number) + ", " + format_double(hi->number) +
                  "]");
      } else if (undetectable && truth != 0.0) {
        issue("fault_bounds", name->string,
              "proven undetectable but exhaustive simulation detects it "
              "with probability " +
                  format_double(truth));
      }
    }
  }

  void check_test_lengths(const MiniValue& root) {
    const MiniValue* arr = root.find("test_lengths");
    if (arr == nullptr) return;  // artifact not requested
    ++report_.checks;
    if (arr->kind != MiniValue::Kind::Array) {
      issue("test_lengths", "test_lengths", "not an array");
      return;
    }
    // Entries come d-major from the request grid; within one d the
    // required pattern count must not shrink as the confidence e rises.
    double prev_d = std::numeric_limits<double>::quiet_NaN();
    double prev_e = 0.0;
    double prev_n = 0.0;
    for (const MiniValue& e : arr->array) {
      const MiniValue* d = e.find("d");
      const MiniValue* conf = e.find("e");
      const MiniValue* n = e.find("n");
      ++report_.checks;
      if (d == nullptr || d->kind != MiniValue::Kind::Number ||
          conf == nullptr || conf->kind != MiniValue::Kind::Number ||
          n == nullptr) {
        issue("test_lengths", "entry", "expected {d, e, n}");
        continue;
      }
      const bool infinite = n->kind == MiniValue::Kind::Null;
      const double count = infinite ? std::numeric_limits<double>::infinity()
                                    : n->number;
      if (!infinite && !(count >= 1.0)) {
        issue("test_lengths",
              "d=" + format_double(d->number) + " e=" +
                  format_double(conf->number),
              "pattern count < 1: " + format_double(count));
      }
      if (d->number == prev_d && conf->number > prev_e && count < prev_n) {
        issue("test_lengths",
              "d=" + format_double(d->number) + " e=" +
                  format_double(conf->number),
              "test length shrank as confidence rose: " +
                  format_double(prev_n) + " -> " + format_double(count));
      }
      prev_d = d->number;
      prev_e = conf->number;
      prev_n = count;
    }
  }

  const Netlist& net_;
  const RecheckOptions& opts_;
  RecheckReport& report_;
  std::vector<double> input_probs_;
  std::vector<double> true_p1_;
  /// Exhaustive-mode caches filled by derive_signal_probs: good-circuit
  /// node values and probability weight of every pattern.
  std::vector<std::vector<char>> good_vals_;
  std::vector<double> pattern_weights_;
  std::vector<std::pair<std::string, double>> detect_estimates_;
  bool exhaustive_ = false;
};

}  // namespace

RecheckReport recheck_analyze_payload(const Netlist& net,
                                      std::string_view payload_json,
                                      const RecheckOptions& opts) {
  RecheckReport report;
  Rechecker(net, opts, report).run(payload_json);
  return report;
}

}  // namespace protest::recheck
