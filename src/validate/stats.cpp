#include "validate/stats.hpp"

#include <cmath>
#include <stdexcept>

namespace protest {

double mc_threshold_bias(std::size_t num_inputs) {
  return static_cast<double>(num_inputs) *
         (1.0 / 4294967296.0);  // num_inputs * 2^-32
}

double hoeffding_tolerance(std::size_t num_samples, double alpha) {
  if (num_samples == 0) {
    throw std::invalid_argument("hoeffding_tolerance: num_samples == 0");
  }
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    throw std::invalid_argument("hoeffding_tolerance: alpha outside (0, 1)");
  }
  return std::sqrt(std::log(2.0 / alpha) /
                   (2.0 * static_cast<double>(num_samples)));
}

double mc_tolerance(std::size_t num_samples, std::size_t num_comparisons,
                    std::size_t num_inputs, double aggregate_alpha) {
  if (num_comparisons == 0) {
    throw std::invalid_argument("mc_tolerance: num_comparisons == 0");
  }
  const double per_comparison =
      aggregate_alpha / static_cast<double>(num_comparisons);
  return hoeffding_tolerance(num_samples, per_comparison) +
         mc_threshold_bias(num_inputs);
}

}  // namespace protest
