#include "validate/fuzz.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "analysis/json.hpp"
#include "bdd/bdd.hpp"
#include "lint/fault_analyze.hpp"
#include "lint/prob_bounds.hpp"
#include "netlist/bench_io.hpp"
#include "prob/engine.hpp"
#include "protest/service.hpp"
#include "protest/session.hpp"
#include "sim/fault.hpp"
#include "sim/fault_sim.hpp"
#include "sim/pattern.hpp"
#include "validate/recheck.hpp"
#include "validate/stats.hpp"

namespace protest::validate {
namespace {

// Deterministic derivation stream for the grid (splitmix64): every spec
// field is a pure function of (master seed, position), independent of
// platform library differences.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double unit_draw(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

std::string format_double(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// Exact doubles only: the determinism legs promise bit-identical
/// results, so any difference at all is a finding.
bool same_vector(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) return false;
  return true;
}

/// Runs every differential leg for one spec, appending disagreements
/// (each carrying the spec) and check counts to the report.
class CircuitChecker {
 public:
  CircuitChecker(const FuzzCircuitSpec& spec, FuzzReport& report)
      : spec_(spec), report_(report) {}

  void run() {
    Netlist net;
    try {
      net = spec_.from_bench ? read_bench_string(spec_.bench_text)
                             : make_random_circuit(spec_.gen);
    } catch (const std::exception& e) {
      disagree("build", spec_.name,
               std::string("circuit construction failed: ") + e.what());
      return;
    }
    if (spec_.input_probs.size() != net.inputs().size()) {
      disagree("build", spec_.name,
               "spec carries " + std::to_string(spec_.input_probs.size()) +
                   " input probs for " +
                   std::to_string(net.inputs().size()) + " inputs");
      return;
    }
    check_engines(net);
    check_sessions(net);
    check_serve(net);
    check_faults(net);
  }

 private:
  void disagree(std::string check, std::string where, std::string detail) {
    report_.disagreements.push_back(
        {std::move(check), std::move(where), std::move(detail), spec_});
  }

  void count(std::size_t n = 1) { report_.checks += n; }

  EngineConfig engine_config(unsigned threads) const {
    EngineConfig cfg;
    cfg.monte_carlo.num_patterns = spec_.mc_patterns;
    cfg.monte_carlo.seed = spec_.mc_seed;
    cfg.monte_carlo.parallel.num_threads = threads;
    return cfg;
  }

  // Engine matrix: static-bound containment for every engine, exact
  // engines against each other, Monte-Carlo against exact within the
  // statistical oracle, and the bit-identity legs (batch-of-one, clone,
  // serial vs threaded Monte-Carlo).
  void check_engines(const Netlist& net) {
    const std::span<const double> tuple(spec_.input_probs);
    const SignalProbBounds bounds = signal_prob_bounds(net, tuple);
    const double mc_tol =
        hoeffding_tolerance(spec_.mc_patterns, spec_.per_net_alpha) +
        mc_threshold_bias(net.inputs().size());

    std::map<std::string, std::vector<double>> estimates;
    for (const std::string& name : engine_names()) {
      if (name == "exact-enum" && net.inputs().size() > 24) continue;
      std::unique_ptr<SignalProbEngine> engine;
      std::vector<double> est;
      try {
        engine = make_engine(name, net, engine_config(1));
        est = engine->signal_probs(tuple);
      } catch (const BddLimitExceeded&) {
        continue;  // circuit too wide for the BDD oracle; other legs run
      }

      // Proven-interval containment (lint/prob_bounds): sound for every
      // engine, statistically widened for the sampled one.
      const double tol = name == "monte-carlo" ? mc_tol : 1e-9;
      for (NodeId n = 0; n < net.size(); ++n) {
        count();
        if (est[n] < bounds.lo[n] - tol || est[n] > bounds.hi[n] + tol) {
          disagree("bounds_containment:" + name, net.name_of(n),
                   "estimate " + format_double(est[n]) +
                       " escapes proven interval [" +
                       format_double(bounds.lo[n]) + ", " +
                       format_double(bounds.hi[n]) + "] + tolerance " +
                       format_double(tol));
        }
      }

      // Determinism: a batch of one tuple and a clone must reproduce the
      // single evaluation bit for bit.
      const std::vector<InputProbs> batch = {
          InputProbs(tuple.begin(), tuple.end())};
      count(2);
      if (!same_vector(engine->signal_probs_batch(batch)[0], est))
        disagree("batch_vs_single:" + name, spec_.name,
                 "batch-of-one differs from single evaluation");
      if (!same_vector(engine->clone()->signal_probs(tuple), est))
        disagree("clone_vs_original:" + name, spec_.name,
                 "clone() evaluation differs from original");

      estimates.emplace(name, std::move(est));
    }

    const auto ref_it = estimates.find("exact-bdd");
    if (ref_it == estimates.end()) return;
    std::vector<double> ref = ref_it->second;
    if (spec_.inject) {
      // The deliberate bug: shift one reference value so the harness has
      // a real disagreement to catch, report, and replay.
      const NodeId victim = static_cast<NodeId>(net.size() - 1);
      ref[victim] = ref[victim] <= 0.5 ? ref[victim] + 0.25
                                       : ref[victim] - 0.25;
    }

    if (const auto it = estimates.find("exact-enum"); it != estimates.end()) {
      for (NodeId n = 0; n < net.size(); ++n) {
        count();
        if (!(std::abs(it->second[n] - ref[n]) <= 1e-9)) {
          disagree("enum_vs_bdd", net.name_of(n),
                   "exact-enum " + format_double(it->second[n]) +
                       " vs exact-bdd " + format_double(ref[n]));
        }
      }
    }

    if (const auto it = estimates.find("monte-carlo"); it != estimates.end()) {
      for (NodeId n = 0; n < net.size(); ++n) {
        count();
        if (!(std::abs(it->second[n] - ref[n]) <= mc_tol)) {
          disagree("mc_vs_exact", net.name_of(n),
                   "monte-carlo " + format_double(it->second[n]) +
                       " vs exact " + format_double(ref[n]) +
                       " exceeds Hoeffding tolerance " +
                       format_double(mc_tol) + " (n=" +
                       std::to_string(spec_.mc_patterns) + ", alpha=" +
                       format_double(spec_.per_net_alpha) + ")");
        }
      }

      // Sharded determinism: N worker threads, bit-identical.
      count();
      const auto threaded = make_engine("monte-carlo", net,
                                        engine_config(spec_.threads));
      if (!same_vector(threaded->signal_probs(tuple), it->second))
        disagree("mc_serial_vs_threads", spec_.name,
                 "monte-carlo with " + std::to_string(spec_.threads) +
                     " threads differs from serial");
    }
  }

  // Session fidelities: incremental perturb (Exact) against from-scratch
  // analyze, and the threaded frozen-selection sweep against per-element
  // screening — both promised bit-identical.
  void check_sessions(const Netlist& net) {
    SessionOptions so;
    so.parallel.num_threads = spec_.threads;
    AnalysisSession session(net, so);
    const AnalysisResult base = session.analyze(spec_.input_probs);

    std::vector<double> perturbed = spec_.input_probs;
    perturbed[spec_.perturb_index] = spec_.perturb_p;
    const AnalysisResult incremental =
        session.perturb(base, spec_.perturb_index, spec_.perturb_p);
    AnalysisSession fresh(net, so);
    const AnalysisResult scratch = fresh.analyze(perturbed);
    count();
    if (incremental.to_json(0) != scratch.to_json(0))
      disagree("perturb_vs_scratch", spec_.name,
               "incremental perturb payload differs from from-scratch "
               "analyze of the perturbed tuple");

    const double values[] = {0.2, 0.5, 0.8};
    const std::vector<AnalysisResult> sweep =
        session.perturb_screen_sweep(base, spec_.perturb_index, values);
    for (std::size_t i = 0; i < std::size(values); ++i) {
      const AnalysisResult single =
          session.perturb_screen(base, spec_.perturb_index, values[i]);
      count();
      if (sweep[i].to_json(0) != single.to_json(0))
        disagree("sweep_vs_screen", spec_.name,
                 "perturb_screen_sweep[" + std::to_string(i) +
                     "] differs from perturb_screen at p=" +
                     format_double(values[i]));
    }
  }

  // Transport: the served analyze payload must be byte-identical to the
  // direct AnalysisResult::to_json(0) on the round-tripped netlist, the
  // serve_ndjson front end must emit exactly what handle_line returns,
  // and the independent recheck leg re-derives the payload from scratch.
  void check_serve(const Netlist& net) {
    const std::string bench = write_bench_string(net);
    Netlist round_tripped = read_bench_string(bench);

    ServiceRequest load;
    load.verb = ServiceVerb::LoadNetlist;
    load.id = 1;
    load.netlist = "fuzz";
    load.source = bench;
    load.engine = "exact-bdd";
    ServiceRequest analyze;
    analyze.verb = ServiceVerb::Analyze;
    analyze.id = 2;
    analyze.netlist = "fuzz";
    analyze.input_probs = spec_.input_probs;
    AnalysisRequest artifacts;
    artifacts.test_lengths = true;
    artifacts.fault_bounds = true;
    analyze.artifacts = artifacts;

    ProtestService service;
    const std::string load_line = service.handle_line(load.to_json(0));
    const std::string analyze_line = service.handle_line(analyze.to_json(0));
    ServiceResponse response;
    try {
      count(2);
      if (!ServiceResponse::from_json(load_line).ok) {
        disagree("serve", spec_.name, "load_netlist failed: " + load_line);
        return;
      }
      response = ServiceResponse::from_json(analyze_line);
    } catch (const std::exception& e) {
      disagree("serve", spec_.name,
               std::string("undecodable response: ") + e.what());
      return;
    }
    if (!response.ok) {
      disagree("serve", spec_.name, "analyze failed: " + analyze_line);
      return;
    }

    SessionOptions direct_opts;
    direct_opts.engine = "exact-bdd";
    AnalysisSession direct(round_tripped, direct_opts);
    const std::string expected =
        direct.analyze(spec_.input_probs, artifacts).to_json(0);
    count();
    if (response.result_json != expected)
      disagree("serve_payload", spec_.name,
               "served analyze payload is not byte-identical to "
               "AnalysisResult::to_json(0)");

    // The NDJSON front end is a pure framing layer over handle_line.
    ProtestService fresh_service;
    std::istringstream in(load.to_json(0) + "\n" + analyze.to_json(0) + "\n");
    std::ostringstream out;
    serve_ndjson(fresh_service, in, out);
    count();
    if (out.str() != load_line + "\n" + analyze_line + "\n")
      disagree("serve_ndjson_vs_handle_line", spec_.name,
               "serve_ndjson output differs from direct handle_line");

    if (net.inputs().size() > spec_.max_exhaustive_inputs) return;
    recheck::RecheckOptions ropts;
    ropts.tolerance = 1e-9;  // the served engine is exact
    ropts.max_inputs = spec_.max_exhaustive_inputs;
    const recheck::RecheckReport rr = recheck::recheck_analyze_payload(
        round_tripped, response.result_json, ropts);
    report_.checks += rr.checks;
    for (const recheck::RecheckIssue& issue : rr.issues)
      disagree("recheck:" + issue.check, issue.where, issue.detail);
  }

  // Fault layer: under uniform 0.5 inputs the exhaustive fault
  // simulator's detection probabilities are exact — each must land inside
  // the static analyzer's sound per-fault interval.
  void check_faults(const Netlist& net) {
    if (net.inputs().size() > spec_.max_exhaustive_inputs) return;
    const std::vector<Fault> faults = structural_fault_list(net);
    const FaultAnalysis fa = analyze_faults(net, faults);
    const FaultSimResult sim =
        simulate_faults(net, faults, PatternSet::exhaustive(net.inputs().size()),
                        FaultSimMode::CountDetections);
    const std::vector<double> probs = sim.detection_probs();
    for (std::size_t f = 0; f < faults.size(); ++f) {
      const FaultBound& b = fa.bounds[f];
      count();
      if (probs[f] < b.lo - 1e-9 || probs[f] > b.hi + 1e-9) {
        disagree("fault_interval", to_string(net, faults[f]),
                 "exhaustive detection probability " +
                     format_double(probs[f]) + " outside static interval [" +
                     format_double(b.lo) + ", " + format_double(b.hi) + "]");
      } else if (b.verdict == FaultClass::ProvenUndetectable &&
                 probs[f] != 0.0) {
        disagree("fault_interval", to_string(net, faults[f]),
                 "proven undetectable but exhaustively detected with "
                 "probability " +
                     format_double(probs[f]));
      }
    }
  }

  const FuzzCircuitSpec& spec_;
  FuzzReport& report_;
};

/// Runs one spec; circuit_alpha > 0 assigns the Bonferroni share (fresh
/// fuzz run), 0 keeps spec.per_net_alpha as stored (replay).
void check_circuit(FuzzCircuitSpec& spec, double circuit_alpha,
                   FuzzReport& report, std::ostream* log) {
  if (circuit_alpha > 0.0) {
    std::size_t num_nodes = 0;
    try {
      const Netlist net = spec.from_bench
                              ? read_bench_string(spec.bench_text)
                              : make_random_circuit(spec.gen);
      num_nodes = net.size();
    } catch (const std::exception&) {
      num_nodes = 1;  // CircuitChecker re-raises this as a disagreement
    }
    // Two MC comparisons per net: bounds containment and mc-vs-exact.
    spec.per_net_alpha =
        circuit_alpha / (2.0 * static_cast<double>(std::max<std::size_t>(
                                   num_nodes, 1)));
  }
  const std::size_t before = report.disagreements.size();
  const std::size_t checks_before = report.checks;
  CircuitChecker(spec, report).run();
  ++report.circuits;
  if (log != nullptr) {
    *log << "[fuzz] " << spec.name << ": "
         << report.checks - checks_before << " checks, "
         << report.disagreements.size() - before << " disagreements\n";
    for (std::size_t i = before; i < report.disagreements.size(); ++i) {
      const FuzzDisagreement& d = report.disagreements[i];
      *log << "[fuzz]   DISAGREE " << d.check << " @ " << d.where << ": "
           << d.detail << "\n";
    }
  }
}

FuzzCircuitSpec derive_random_spec(const FuzzOptions& opts, std::size_t index,
                                   std::uint64_t& stream) {
  FuzzCircuitSpec spec;
  spec.name = "rand-" + std::to_string(index);
  RandomCircuitParams g;
  g.num_inputs = 4 + splitmix64(stream) % 7;  // 4..10: exhaustive legs apply
  g.num_gates = 10 + splitmix64(stream) % 60;
  g.max_fanin = 2 + static_cast<unsigned>(splitmix64(stream) % 3);
  g.inverter_fraction = 0.1 + 0.2 * unit_draw(stream);
  g.xor_fraction = 0.05 + 0.25 * unit_draw(stream);
  g.xnor_ratio = unit_draw(stream);
  if (index % 3 == 1) {
    g.reconvergence_fraction = 0.15;
    g.reconvergence_depth = 1 + static_cast<unsigned>(splitmix64(stream) % 3);
  }
  if (index % 4 == 2) g.fanout_skew = 0.25;
  g.seed = splitmix64(stream);
  spec.gen = g;
  spec.input_probs.resize(g.num_inputs);
  for (double& p : spec.input_probs) p = 0.05 + 0.9 * unit_draw(stream);
  spec.perturb_index = splitmix64(stream) % g.num_inputs;
  spec.perturb_p = 0.05 + 0.9 * unit_draw(stream);
  spec.mc_patterns = opts.mc_patterns;
  spec.mc_seed = splitmix64(stream);
  spec.threads = opts.threads;
  spec.max_exhaustive_inputs = opts.max_exhaustive_inputs;
  return spec;
}

// Seeds serialize as decimal strings (see to_json); tolerate numbers for
// hand-written artifacts with small seeds.
std::uint64_t parse_seed(const JsonValue& v) {
  if (v.is_string()) {
    const std::string& s = v.as_string();
    std::size_t used = 0;
    const unsigned long long parsed = std::stoull(s, &used);
    if (used != s.size())
      throw std::runtime_error("fuzz spec: bad seed '" + s + "'");
    return static_cast<std::uint64_t>(parsed);
  }
  return static_cast<std::uint64_t>(v.as_number());
}

}  // namespace

std::string FuzzCircuitSpec::to_json(int indent) const {
  JsonWriter w(indent);
  w.begin_object();
  w.key("name").value(name);
  w.key("kind").value(from_bench ? "bench" : "random");
  if (from_bench) {
    w.key("bench_text").value(bench_text);
  } else {
    w.key("gen").begin_object();
    w.key("num_inputs").value(gen.num_inputs);
    w.key("num_gates").value(gen.num_gates);
    w.key("max_fanin").value(gen.max_fanin);
    w.key("inverter_fraction").value(gen.inverter_fraction);
    w.key("xor_fraction").value(gen.xor_fraction);
    w.key("xnor_ratio").value(gen.xnor_ratio);
    w.key("reconvergence_fraction").value(gen.reconvergence_fraction);
    w.key("reconvergence_depth").value(gen.reconvergence_depth);
    w.key("fanout_skew").value(gen.fanout_skew);
    // Seeds are full 64-bit values; a JSON number (double) only holds 53
    // bits exactly, so they travel as decimal strings.
    w.key("seed").value(std::to_string(gen.seed));
    w.end_object();
  }
  w.key("input_probs").begin_array();
  for (double p : input_probs) w.value(p);
  w.end_array();
  w.key("perturb_index").value(perturb_index);
  w.key("perturb_p").value(perturb_p);
  w.key("mc_patterns").value(mc_patterns);
  w.key("mc_seed").value(std::to_string(mc_seed));
  w.key("threads").value(threads);
  w.key("per_net_alpha").value(per_net_alpha);
  w.key("inject").value(inject);
  w.key("max_exhaustive_inputs").value(max_exhaustive_inputs);
  w.end_object();
  return w.str();
}

FuzzCircuitSpec FuzzCircuitSpec::from_json_value(const JsonValue& doc) {
  FuzzCircuitSpec spec;
  spec.name = doc.at("name").as_string();
  const std::string& kind = doc.at("kind").as_string();
  if (kind == "bench") {
    spec.from_bench = true;
    spec.bench_text = doc.at("bench_text").as_string();
  } else if (kind == "random") {
    const JsonValue& g = doc.at("gen");
    spec.gen.num_inputs =
        static_cast<std::size_t>(g.at("num_inputs").as_number());
    spec.gen.num_gates =
        static_cast<std::size_t>(g.at("num_gates").as_number());
    spec.gen.max_fanin = static_cast<unsigned>(g.at("max_fanin").as_number());
    spec.gen.inverter_fraction = g.at("inverter_fraction").as_number();
    spec.gen.xor_fraction = g.at("xor_fraction").as_number();
    spec.gen.xnor_ratio = g.at("xnor_ratio").as_number();
    spec.gen.reconvergence_fraction =
        g.at("reconvergence_fraction").as_number();
    spec.gen.reconvergence_depth =
        static_cast<unsigned>(g.at("reconvergence_depth").as_number());
    spec.gen.fanout_skew = g.at("fanout_skew").as_number();
    spec.gen.seed = parse_seed(g.at("seed"));
  } else {
    throw std::runtime_error("fuzz spec: unknown kind '" + kind + "'");
  }
  for (const JsonValue& p : doc.at("input_probs").as_array())
    spec.input_probs.push_back(p.as_number());
  spec.perturb_index =
      static_cast<std::size_t>(doc.at("perturb_index").as_number());
  spec.perturb_p = doc.at("perturb_p").as_number();
  spec.mc_patterns =
      static_cast<std::size_t>(doc.at("mc_patterns").as_number());
  spec.mc_seed = parse_seed(doc.at("mc_seed"));
  spec.threads = static_cast<unsigned>(doc.at("threads").as_number());
  spec.per_net_alpha = doc.at("per_net_alpha").as_number();
  spec.inject = doc.at("inject").as_bool();
  spec.max_exhaustive_inputs =
      static_cast<std::size_t>(doc.at("max_exhaustive_inputs").as_number());
  return spec;
}

FuzzReport run_fuzz(const FuzzOptions& opts, std::ostream* log) {
  std::vector<FuzzCircuitSpec> specs;
  std::uint64_t stream = opts.seed;
  for (std::size_t i = 0; i < opts.num_circuits; ++i)
    specs.push_back(derive_random_spec(opts, i, stream));

  // Fixed-seed corpus: real topologies next to the generated grid.
  for (const std::string& path : opts.bench_files) {
    std::ifstream in(path);
    if (!in) {
      FuzzReport broken;
      broken.disagreements.push_back(
          {"corpus", path, "cannot read bench file", FuzzCircuitSpec{}});
      return broken;
    }
    std::ostringstream text;
    text << in.rdbuf();
    FuzzCircuitSpec spec;
    spec.name = std::filesystem::path(path).stem().string();
    spec.from_bench = true;
    spec.bench_text = text.str();
    const Netlist net = read_bench_string(spec.bench_text);
    spec.input_probs.resize(net.inputs().size());
    for (double& p : spec.input_probs) p = 0.05 + 0.9 * unit_draw(stream);
    spec.perturb_index = splitmix64(stream) % net.inputs().size();
    spec.perturb_p = 0.05 + 0.9 * unit_draw(stream);
    spec.mc_patterns = opts.mc_patterns;
    spec.mc_seed = splitmix64(stream);
    spec.threads = opts.threads;
    spec.max_exhaustive_inputs = opts.max_exhaustive_inputs;
    specs.push_back(std::move(spec));
  }

  if (opts.inject_disagreement && !specs.empty()) specs.front().inject = true;

  FuzzReport report;
  const double circuit_alpha =
      opts.aggregate_alpha / static_cast<double>(std::max<std::size_t>(
                                 specs.size(), 1));
  for (FuzzCircuitSpec& spec : specs)
    check_circuit(spec, circuit_alpha, report, log);

  if (!opts.corpus_dir.empty()) {
    for (std::size_t i = 0; i < report.disagreements.size(); ++i)
      report.artifact_paths.push_back(
          write_repro_artifact(report.disagreements[i], opts.corpus_dir, i));
  }
  return report;
}

FuzzReport run_replay(const std::string& path, std::ostream* log) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read repro artifact: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  const JsonValue doc = parse_json(text.str());
  if (doc.find("protest_fuzz_repro") == nullptr)
    throw std::runtime_error("not a fuzz repro artifact: " + path);
  FuzzCircuitSpec spec = FuzzCircuitSpec::from_json_value(doc.at("spec"));
  FuzzReport report;
  check_circuit(spec, /*circuit_alpha=*/0.0, report, log);
  return report;
}

std::string write_repro_artifact(const FuzzDisagreement& d,
                                 const std::string& corpus_dir,
                                 std::size_t ordinal) {
  std::filesystem::create_directories(corpus_dir);
  std::string slug = d.spec.name.empty() ? "unknown" : d.spec.name;
  for (char& c : slug)
    if (!(std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' ||
          c == '_'))
      c = '_';
  const std::filesystem::path path =
      std::filesystem::path(corpus_dir) /
      ("repro-" + slug + "-" + std::to_string(ordinal) + ".json");

  JsonWriter w(2);
  w.begin_object();
  w.key("protest_fuzz_repro").value(1);
  w.key("check").value(d.check);
  w.key("where").value(d.where);
  w.key("detail").value(d.detail);
  w.key("spec").raw(d.spec.to_json(2));
  w.end_object();

  std::ofstream out(path);
  out << w.str() << "\n";
  if (!out) throw std::runtime_error("cannot write " + path.string());
  return path.string();
}

}  // namespace protest::validate
