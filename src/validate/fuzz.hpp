// Cross-engine differential fuzzing: the validation harness's fuzz loop.
//
// The repo computes the same quantities five-plus ways — five
// signal-probability engines, two perturbation fidelities, serial and
// threaded evaluation, in-process and served-NDJSON transports, a static
// interval analyzer and an exhaustive fault simulator.  run_fuzz()
// weaponizes that redundancy: it generates seeded random circuits over a
// size/shape grid (plus fixed real .bench corpus circuits), pushes each
// one through the full matrix, and reports every place two legs disagree
// beyond what determinism or the statistical oracle (validate/stats.hpp)
// permits.  Per circuit:
//
//   reference    exact-BDD signal probabilities for the fuzzed tuple
//   engines      every registered engine's estimate inside the static
//                analyzer's proven [lo, hi] interval per net
//                (lint/prob_bounds); exact-enum == exact-BDD to 1e-9;
//                Monte-Carlo within its Hoeffding tolerance of exact
//   determinism  batch-of-one == single; clone() == original; Monte-Carlo
//                serial == N threads — all bit-identical
//   sessions     perturb (Exact) == from-scratch analyze, bit-identical;
//                perturb_screen_sweep (threaded) == perturb_screen
//                (serial), bit-identical per element
//   transport    served analyze payload == AnalysisResult::to_json(0)
//                byte-for-byte on a round-tripped netlist, and
//                serve_ndjson == direct handle_line per line; payloads
//                re-verified by the independent validate/recheck leg
//   faults       exhaustive fault simulation's detection probabilities
//                inside the static analyzer's per-fault intervals
//
// Every disagreement is serialized as a SELF-CONTAINED repro artifact —
// the full circuit spec (generator params or bench text), input tuple,
// seeds, thread counts, tolerances and the expected/actual values — into
// a corpus directory; run_replay() re-executes exactly that spec, so a
// nightly failure replays deterministically on any machine.  An
// `inject` flag plants a deliberate bug (one perturbed reference value)
// to prove end to end that the harness catches and replays differences.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "circuits/random_circuit.hpp"

namespace protest {
class JsonValue;
}  // namespace protest

namespace protest::validate {

/// One fully self-contained fuzz case: everything needed to rebuild the
/// circuit and re-run every leg bit-identically on another machine.
struct FuzzCircuitSpec {
  std::string name;             ///< display label ("rand-7", "c17", ...)
  bool from_bench = false;      ///< bench_text vs generator params
  std::string bench_text;       ///< the circuit itself when from_bench
  RandomCircuitParams gen;      ///< generator params when !from_bench
  std::vector<double> input_probs;  ///< the fuzzed tuple, explicit
  std::size_t perturb_index = 0;    ///< coordinate the perturb legs move
  double perturb_p = 0.3;
  std::size_t mc_patterns = 16'384;
  std::uint64_t mc_seed = 1;
  unsigned threads = 2;         ///< the "N" of the serial-vs-threads legs
  /// Per-comparison false-positive budget of this circuit's Monte-Carlo
  /// checks (the Bonferroni share run_fuzz assigned it).
  double per_net_alpha = 1e-9;
  bool inject = false;          ///< plant the deliberate reference bug
  std::size_t max_exhaustive_inputs = 10;  ///< fault/recheck leg cap

  std::string to_json(int indent = 0) const;
  /// Throws std::runtime_error on missing/mistyped members.
  static FuzzCircuitSpec from_json_value(const JsonValue& doc);
};

/// One observed disagreement, with the spec that reproduces it embedded.
struct FuzzDisagreement {
  std::string check;   ///< which leg tripped ("mc_vs_exact", ...)
  std::string where;   ///< node / fault / line it tripped on
  std::string detail;  ///< expected vs actual, human-readable
  FuzzCircuitSpec spec;
};

struct FuzzOptions {
  std::size_t num_circuits = 50;  ///< random circuits (corpus rides on top)
  std::uint64_t seed = 1;         ///< master seed for the whole grid
  std::size_t mc_patterns = 16'384;
  /// Harness-wide false-positive budget, Bonferroni-split across every
  /// Monte-Carlo comparison the run makes (validate/stats.hpp).
  double aggregate_alpha = 1e-6;
  unsigned threads = 2;
  /// Where repro artifacts for disagreements get written ("" = don't).
  std::string corpus_dir;
  /// Fixed-seed real circuits (.bench files) fuzzed alongside the grid.
  std::vector<std::string> bench_files;
  /// Plant one deliberate bug in the first circuit's reference values —
  /// the harness must report it and exit non-zero (the watcher-watcher).
  bool inject_disagreement = false;
  /// Circuits with more primary inputs skip the exhaustive legs
  /// (fault-interval containment, independent recheck).
  std::size_t max_exhaustive_inputs = 10;
};

struct FuzzReport {
  std::size_t circuits = 0;
  std::size_t checks = 0;  ///< individual comparisons performed
  std::vector<FuzzDisagreement> disagreements;
  std::vector<std::string> artifact_paths;  ///< repro files written
  bool ok() const { return disagreements.empty(); }
};

/// Runs the full differential matrix over the grid.  `log` (optional)
/// receives one progress line per circuit and one per disagreement.
FuzzReport run_fuzz(const FuzzOptions& opts, std::ostream* log = nullptr);

/// Re-executes the spec inside a repro artifact file exactly; the
/// returned report holds the (re-)observed disagreements.  Throws
/// std::runtime_error when the file is missing or not a repro artifact.
FuzzReport run_replay(const std::string& path, std::ostream* log = nullptr);

/// Serializes one disagreement as a self-contained repro artifact into
/// `corpus_dir` (created if needed); returns the file path.
std::string write_repro_artifact(const FuzzDisagreement& d,
                                 const std::string& corpus_dir,
                                 std::size_t ordinal);

}  // namespace protest::validate
