// Statistical oracles for Monte-Carlo differential testing (ProbTest-style).
//
// The Monte-Carlo engine estimates every node's signal probability as the
// mean of n i.i.d. Bernoulli samples.  Instead of hand-tuned epsilons
// ("EXPECT_NEAR(mc, exact, 0.01)"), every assertion in the harness derives
// its tolerance from the actual pattern budget and an explicit
// false-positive budget:
//
//   Hoeffding:   P(|p_hat - p| >= t) <= 2 exp(-2 n t^2)
//   =>           t(alpha, n) = sqrt(ln(2 / alpha) / (2 n))
//
// is distribution-free (no variance estimate, no normal approximation, no
// p-dependent corner cases near 0/1), so the bound is a GUARANTEE: an
// assertion with per-comparison failure probability alpha fails on a
// correct engine with probability at most alpha.
//
// Controlling the HARNESS-WIDE false-positive rate is a union bound
// (Bonferroni): a run that performs k comparisons at per-comparison level
// alpha/k produces a spurious failure with probability at most alpha.
// Every caller therefore passes the number of comparisons its run makes
// and the aggregate budget (default kHarnessAlpha = 1e-6): a nightly fuzz
// run that diffs 10^5 nets still raises a false alarm less than once per
// million runs.
//
// One systematic term rides on top of the sampling noise: the engine draws
// each input 1 with probability trunc(p * 2^32) / 2^32 (see
// prob/monte_carlo.hpp), so the EXPECTATION of a node estimate can differ
// from the true probability by up to num_inputs * 2^-32 (union bound over
// the per-input threshold truncations).  mc_tolerance adds that bias so
// the bound stays a guarantee; at ~1.5e-8 for 64 inputs it is invisible
// next to any realistic sampling tolerance.
#pragma once

#include <cstddef>

namespace protest {

/// Aggregate false-positive budget the validation harness spends per run:
/// a clean engine matrix triggers a spurious disagreement with probability
/// <= 1e-6 per fuzz run / test binary, however many nets are compared.
inline constexpr double kHarnessAlpha = 1e-6;

/// Per-input threshold-truncation bias of the Monte-Carlo sampler (2^-32;
/// see prob/monte_carlo.hpp): the estimate's expectation may sit this far
/// from the true probability per input, independent of the sample count.
double mc_threshold_bias(std::size_t num_inputs);

/// Two-sided Hoeffding deviation: the smallest t with
/// P(|mean of n i.i.d. [0,1] samples - expectation| >= t) <= alpha.
/// Throws std::invalid_argument for num_samples == 0 or alpha outside
/// (0, 1).
double hoeffding_tolerance(std::size_t num_samples, double alpha);

/// The harness tolerance for one Monte-Carlo-vs-truth comparison:
/// Hoeffding at level aggregate_alpha / num_comparisons (Bonferroni)
/// plus the threshold-truncation bias for num_inputs inputs.  A run that
/// performs num_comparisons such comparisons and fails any of them
/// flags a correct engine with probability <= aggregate_alpha.
double mc_tolerance(std::size_t num_samples, std::size_t num_comparisons,
                    std::size_t num_inputs = 0,
                    double aggregate_alpha = kHarnessAlpha);

}  // namespace protest
