// Independent re-checker for served analyze payloads — the "secondary
// toolchain" leg of the validation harness (à la PyB re-checking ProB).
//
// Everything here is deliberately naive and self-contained: its own
// minimal JSON parser (not analysis/json), its own exhaustive weighted
// truth-table evaluator and its own single-fault simulator (not src/prob,
// src/sim or src/observe).  The only shared vocabulary is the Netlist
// structure itself and the payload's fault-name syntax ("g7/2 s-a-1").
// A bug would have to be implemented twice, independently, to slip
// through both the primary engines and this checker.
//
// Scope: small circuits only — the evaluator enumerates all 2^k input
// assignments, so callers gate on RecheckOptions::max_inputs.  What gets
// verified against a payload produced by AnalysisResult::to_json():
//
//   - the circuit summary counts match the netlist
//   - input_probs echo well-formed probabilities for every input, in order
//   - every signal_probs entry names a real node, p1 lies in [0, 1] and
//     within `tolerance` of the re-derived exhaustive probability
//     (callers pass 1e-9 for exact engines, an mc_tolerance for MC)
//   - observability values lie in [0, 1]
//   - detection_probs lie in [0, 1]; when fault_bounds are present each
//     estimate sits inside its sound [lo, hi] interval and
//     proven-undetectable faults report exactly 0
//   - each fault_bounds interval CONTAINS the true detection probability
//     re-derived by naive exhaustive fault simulation (soundness of the
//     static analyzer, checked from scratch)
//   - test_lengths are >= 1 (or null = infinite) and monotone
//     non-decreasing in the confidence e for a fixed detection target d
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.hpp"

namespace protest::recheck {

struct RecheckOptions {
  /// |payload p1 - exhaustively recomputed p1| bound for signal
  /// probabilities.  1e-9 suits exact engines; Monte-Carlo payloads need
  /// a statistical tolerance (validate/stats.hpp mc_tolerance).
  double tolerance = 1e-9;
  /// Exhaustive enumeration cap: payloads for circuits with more primary
  /// inputs skip the truth-table and fault-simulation checks (the
  /// structural/range checks still run).
  std::size_t max_inputs = 14;
};

/// One failed check: which check tripped, on what (node/fault/field), and
/// a human-readable detail line with expected vs actual.
struct RecheckIssue {
  std::string check;
  std::string where;
  std::string detail;
};

struct RecheckReport {
  std::vector<RecheckIssue> issues;
  std::size_t checks = 0;  ///< individual facts verified (issues included)
  bool ok() const { return issues.empty(); }
};

/// Re-verifies one analyze payload (AnalysisResult::to_json output, any
/// indent) against the netlist it was computed from.  Never throws on bad
/// payloads — malformed JSON or missing fields become issues.
RecheckReport recheck_analyze_payload(const Netlist& net,
                                      std::string_view payload_json,
                                      const RecheckOptions& opts = {});

}  // namespace protest::recheck
