// Statistics used in the paper's validation (sect. 4): maximal error,
// average error Delta = sum |P_PROT - P_SIM| / #faults, and the Pearson
// correlation coefficient C of estimated vs simulated detection
// probabilities (Table 1, figs. 5/6).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace protest {

struct ErrorStats {
  double max_abs_error = 0.0;   ///< "Max" column of Table 1
  double mean_abs_error = 0.0;  ///< "Delta" column of Table 1
  double correlation = 0.0;     ///< "C" column of Table 1
  double mean_signed_error = 0.0;  ///< mean(est - ref): negative = under-estimation
  std::size_t count = 0;
};

double pearson_correlation(std::span<const double> x, std::span<const double> y);

/// est vs ref (e.g. P_PROT vs P_SIM), element-wise.
ErrorStats compare_estimates(std::span<const double> est,
                             std::span<const double> ref);

/// "x y" lines for a scatter plot (figs. 5/6 series).
std::string scatter_series(std::span<const double> x, std::span<const double> y);

/// Coarse ASCII scatter rendering (correlation-diagram style of figs. 5/6).
std::string ascii_scatter(std::span<const double> x, std::span<const double> y,
                          unsigned width = 61, unsigned height = 21);

}  // namespace protest
