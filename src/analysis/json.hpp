// Minimal streaming JSON writer — no external dependency, used by the
// session API's AnalysisResult::to_json and the CLI's --json output.
// Handles nesting, comma placement, indentation, string escaping, and
// shortest-round-trip double formatting (non-finite doubles emit null).
#pragma once

#include <concepts>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace protest {

class JsonWriter {
 public:
  /// indent = spaces per nesting level; 0 writes compact one-line JSON.
  explicit JsonWriter(int indent = 2) : indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by exactly one value or container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  /// Any integer type (size_t, NodeId, int, ...) without overload
  /// ambiguity across platforms' differing typedef identities.
  template <std::integral T>
    requires(!std::same_as<T, bool>)
  JsonWriter& value(T v) {
    if constexpr (std::is_signed_v<T>)
      return write_int(static_cast<long long>(v));
    else
      return write_uint(static_cast<unsigned long long>(v));
  }
  JsonWriter& null();

  /// The document written so far (complete once all containers are closed).
  const std::string& str() const { return out_; }

  /// "text" with JSON escapes, including the surrounding quotes.
  static std::string quote(std::string_view text);

 private:
  JsonWriter& write_int(long long v);
  JsonWriter& write_uint(unsigned long long v);
  void before_value();
  void newline();

  std::string out_;
  int indent_;
  std::vector<char> stack_;      ///< 'o' = object, 'a' = array
  bool first_in_scope_ = true;   ///< no comma needed yet in current scope
  bool after_key_ = false;       ///< next value completes a key
};

}  // namespace protest
