// Minimal JSON layer — no external dependency.
//
// JsonWriter: streaming writer used by the session API's
// AnalysisResult::to_json, the CLI's --json output, and the service
// protocol.  Handles nesting, comma placement, indentation, string
// escaping (every control character < 0x20), and shortest-round-trip
// double formatting (non-finite doubles emit null).
//
// JsonValue / parse_json: a small recursive-descent reader producing an
// ordered document tree — the decode side of the service wire format.
// Strict JSON (RFC 8259): no comments, no trailing commas, \u escapes
// including surrogate pairs.  Numbers are stored as double (integers are
// exact up to 2^53, which covers every id/counter the protocol carries).
// Malformed input throws JsonParseError with the byte offset — never
// crashes — and nesting is capped so adversarial depth bombs fail cleanly
// instead of overflowing the stack.  write_value() re-serializes a tree
// through JsonWriter; because the writer's double format round-trips,
// parse -> write of writer-produced JSON is byte-identical.
#pragma once

#include <concepts>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

namespace protest {

class JsonWriter {
 public:
  /// indent = spaces per nesting level; 0 writes compact one-line JSON.
  explicit JsonWriter(int indent = 2) : indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by exactly one value or container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  /// Any integer type (size_t, NodeId, int, ...) without overload
  /// ambiguity across platforms' differing typedef identities.
  template <std::integral T>
    requires(!std::same_as<T, bool>)
  JsonWriter& value(T v) {
    if constexpr (std::is_signed_v<T>)
      return write_int(static_cast<long long>(v));
    else
      return write_uint(static_cast<unsigned long long>(v));
  }
  JsonWriter& null();

  /// Splices `json` — a complete, pre-serialized JSON value — in value
  /// position, byte for byte.  This is how the service protocol embeds an
  /// AnalysisResult::to_json payload without re-encoding it (the daemon's
  /// byte-identical-artifact guarantee).  The caller vouches for validity.
  JsonWriter& raw(std::string_view json);

  /// The document written so far (complete once all containers are closed).
  const std::string& str() const { return out_; }

  /// "text" with JSON escapes, including the surrounding quotes.
  static std::string quote(std::string_view text);

 private:
  JsonWriter& write_int(long long v);
  JsonWriter& write_uint(unsigned long long v);
  void before_value();
  void newline();

  std::string out_;
  int indent_;
  std::vector<char> stack_;      ///< 'o' = object, 'a' = array
  bool first_in_scope_ = true;   ///< no comma needed yet in current scope
  bool after_key_ = false;       ///< next value completes a key
};

// --- reader -----------------------------------------------------------------

/// Parse failure: `what()` describes the problem, `offset` is the byte
/// position in the input where it was detected.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& message, std::size_t offset);
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// One parsed JSON value.  Objects preserve member order (so writer ->
/// parser -> writer round-trips exactly) and allow duplicate keys
/// (lookups return the first).  Typed accessors throw std::runtime_error
/// naming the expected and actual type — protocol decoding surfaces these
/// as structured "bad_request" errors instead of crashing.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Member = std::pair<std::string, JsonValue>;
  using Object = std::vector<Member>;

  JsonValue() : v_(nullptr) {}
  JsonValue(std::nullptr_t) : v_(nullptr) {}
  JsonValue(bool b) : v_(b) {}
  JsonValue(double d) : v_(d) {}
  JsonValue(std::string s) : v_(std::move(s)) {}
  JsonValue(const char* s) : v_(std::string(s)) {}
  JsonValue(Array a) : v_(std::move(a)) {}
  JsonValue(Object o) : v_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// First member named `key`, or nullptr when absent.  Throws when this
  /// value is not an object.
  const JsonValue* find(std::string_view key) const;
  /// Like find(), but a missing member throws std::runtime_error.
  const JsonValue& at(std::string_view key) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Parses exactly one JSON document (trailing non-whitespace is an
/// error).  Throws JsonParseError on malformed input.
JsonValue parse_json(std::string_view text);

/// Writes `value` (recursively) in value position.
void write_value(JsonWriter& w, const JsonValue& value);

/// The whole tree as a document; indent = 0 for compact (NDJSON) form.
std::string to_json(const JsonValue& value, int indent = 0);

}  // namespace protest
