#include "analysis/table.hpp"

#include <cstdint>
#include <sstream>
#include <stdexcept>

namespace protest {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TextTable: no headers");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("TextTable: cell count mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> w(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      w[c] = std::max(w[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(w[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  emit(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(w[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string fmt_int(std::uint64_t v) {
  // Thousands separators for readability of pattern counts.
  std::string raw = std::to_string(v);
  std::string out;
  const std::size_t n = raw.size();
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(raw[i]);
    const std::size_t rem = n - 1 - i;
    if (rem > 0 && rem % 3 == 0) out.push_back(' ');
  }
  return out;
}

}  // namespace protest
