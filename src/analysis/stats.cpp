#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace protest {

double pearson_correlation(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.empty())
    throw std::invalid_argument("pearson_correlation: size mismatch or empty");
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;  // a constant series
  return sxy / std::sqrt(sxx * syy);
}

ErrorStats compare_estimates(std::span<const double> est,
                             std::span<const double> ref) {
  if (est.size() != ref.size() || est.empty())
    throw std::invalid_argument("compare_estimates: size mismatch or empty");
  ErrorStats s;
  s.count = est.size();
  double abs_sum = 0.0, signed_sum = 0.0;
  for (std::size_t i = 0; i < est.size(); ++i) {
    const double d = est[i] - ref[i];
    s.max_abs_error = std::max(s.max_abs_error, std::abs(d));
    abs_sum += std::abs(d);
    signed_sum += d;
  }
  s.mean_abs_error = abs_sum / static_cast<double>(est.size());
  s.mean_signed_error = signed_sum / static_cast<double>(est.size());
  s.correlation = pearson_correlation(est, ref);
  return s;
}

std::string scatter_series(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size())
    throw std::invalid_argument("scatter_series: size mismatch");
  std::ostringstream os;
  for (std::size_t i = 0; i < x.size(); ++i) os << x[i] << ' ' << y[i] << '\n';
  return os.str();
}

std::string ascii_scatter(std::span<const double> x, std::span<const double> y,
                          unsigned width, unsigned height) {
  if (x.size() != y.size())
    throw std::invalid_argument("ascii_scatter: size mismatch");
  std::vector<std::string> grid(height, std::string(width, ' '));
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double cx = std::clamp(x[i], 0.0, 1.0);
    const double cy = std::clamp(y[i], 0.0, 1.0);
    const unsigned col = static_cast<unsigned>(cx * (width - 1) + 0.5);
    const unsigned row =
        height - 1 - static_cast<unsigned>(cy * (height - 1) + 0.5);
    char& c = grid[row][col];
    c = c == ' ' ? '.' : (c == '.' ? '+' : '*');
  }
  std::ostringstream os;
  os << "P_SIM ^\n";
  for (const std::string& line : grid) os << "      |" << line << '\n';
  os << "      +" << std::string(width, '-') << "> P_PROT\n";
  return os.str();
}

}  // namespace protest
