// Aligned ASCII tables: every bench binary prints paper-style rows through
// this helper so table output is uniform.
#pragma once

#include <string>
#include <vector>

namespace protest {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a header separator.
  std::string str() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision formatting helpers for table cells.
std::string fmt(double v, int precision = 3);
std::string fmt_int(std::uint64_t v);

}  // namespace protest
