#include "analysis/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace protest {

std::string JsonWriter::quote(std::string_view text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void JsonWriter::newline() {
  if (indent_ <= 0) return;
  out_ += '\n';
  out_.append(stack_.size() * static_cast<std::size_t>(indent_), ' ');
}

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (!first_in_scope_) out_ += ',';
    newline();
  }
  first_in_scope_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back('o');
  first_in_scope_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  stack_.pop_back();
  if (!first_in_scope_) newline();
  out_ += '}';
  first_in_scope_ = false;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back('a');
  first_in_scope_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  stack_.pop_back();
  if (!first_in_scope_) newline();
  out_ += ']';
  first_in_scope_ = false;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (!first_in_scope_) out_ += ',';
  newline();
  first_in_scope_ = false;
  out_ += quote(k);
  out_ += indent_ > 0 ? ": " : ":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  // Shortest representation that round-trips: try increasing precision.
  char buf[32];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  before_value();
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::write_uint(unsigned long long v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", v);
  before_value();
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::write_int(long long v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", v);
  before_value();
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += quote(v);
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

}  // namespace protest
